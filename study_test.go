package registrarsec

import (
	"context"
	"strings"
	"sync"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// testStudyOnce shares one full study across the root-package tests.
var (
	tsOnce  sync.Once
	tsStudy *Study
	tsErr   error
)

func testStudy(t *testing.T) *Study {
	t.Helper()
	tsOnce.Do(func() {
		tsStudy, tsErr = NewStudy(Options{Scale: 1.0 / 2000, Seed: 3})
	})
	if tsErr != nil {
		t.Fatal(tsErr)
	}
	return tsStudy
}

func TestStudyTable1(t *testing.T) {
	s := testStudy(t)
	rows := s.Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows: %d", len(rows))
	}
	text := RenderTable1(rows)
	for _, tld := range AllTLDs {
		if !strings.Contains(text, "."+tld) {
			t.Errorf("Table 1 missing .%s:\n%s", tld, text)
		}
	}
	// Directional check: ccTLDs far ahead of gTLDs.
	byTLD := map[string]TLDOverview{}
	for _, r := range rows {
		byTLD[r.TLD] = r
	}
	if byTLD["nl"].PctDNSKEY < 10*byTLD["com"].PctDNSKEY {
		t.Errorf(".nl (%.1f%%) should dwarf .com (%.2f%%)", byTLD["nl"].PctDNSKEY, byTLD["com"].PctDNSKEY)
	}
}

func TestStudyFigure3(t *testing.T) {
	s := testStudy(t)
	all, partial, full := s.Figure3()
	if OperatorsToCover(full, 0.5) > OperatorsToCover(all, 0.5) {
		t.Error("full deployment should be more concentrated than the overall market")
	}
	if len(partial) == 0 || len(full) == 0 {
		t.Fatal("empty CDFs")
	}
}

func TestStudySeriesAndFigures(t *testing.T) {
	s := testStudy(t)
	ovh, gd := s.Figure4(60)
	if len(ovh) == 0 || len(gd) == 0 {
		t.Fatal("empty Figure 4 series")
	}
	if ovh[len(ovh)-1].PctFull() < gd[len(gd)-1].PctFull() {
		t.Error("OVH should far exceed GoDaddy")
	}
	cf := s.Figure8(60)
	if cf[0].WithDNSKEY != 0 {
		t.Error("Cloudflare series should start at zero before launch")
	}
}

func TestStudyProbeCampaigns(t *testing.T) {
	// Fresh study: probing mutates agents.
	s, err := NewStudy(Options{SkipWorld: true})
	if err != nil {
		t.Fatal(err)
	}
	obs := s.ProbeTable2()
	if len(obs) != 20 {
		t.Fatalf("Table 2 observations: %d", len(obs))
	}
	sum := Summarize(obs)
	if sum.HostedSupport != 3 || sum.OwnerSupport != 11 {
		t.Errorf("headline numbers: hosted=%d owner=%d", sum.HostedSupport, sum.OwnerSupport)
	}
	table := s.RenderTable2(obs)
	if !strings.Contains(table, "GoDaddy") || !strings.Contains(table, "OVH") {
		t.Error("Table 2 rendering incomplete")
	}
	rows := s.SurveyTable4()
	if len(rows) != 11 {
		t.Errorf("Table 4 rows: %d", len(rows))
	}
	if RenderTable4(rows) == "" {
		t.Error("empty Table 4")
	}
}

func TestStudyScanSampleAgreesWithModel(t *testing.T) {
	s := testStudy(t)
	snap, health, err := s.ScanSample(context.Background(), simtime.End, 120, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 120 {
		t.Fatalf("scanned %d records", len(snap.Records))
	}
	if !health.Complete() || health.Measured != 120 {
		t.Fatalf("unhealthy sweep over a clean network: %s", health)
	}
	model := s.World.SnapshotAt(simtime.End)
	modelClass := map[string]Deployment{}
	for i := range model.Records {
		modelClass[model.Records[i].Domain] = model.Records[i].Deployment()
	}
	for i := range snap.Records {
		r := &snap.Records[i]
		if want, ok := modelClass[r.Domain]; !ok || r.Deployment() != want {
			t.Errorf("%s: scan %v, model %v", r.Domain, r.Deployment(), want)
		}
	}
}

// TestStudyScanLongitudinal runs the resumable multi-day sweep through the
// public facade: interrupted and uninterrupted runs must converge on
// byte-identical archives.
func TestStudyScanLongitudinal(t *testing.T) {
	s := testStudy(t)
	days := []Day{simtime.Date(2016, 6, 1), simtime.End}
	base := LongitudinalConfig{Days: days, Sample: 40, Workers: 4, Shards: 2}

	store, err := s.ScanLongitudinal(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("snapshots: %d", store.Len())
	}
	var want strings.Builder
	if err := store.WriteArchive(&want); err != nil {
		t.Fatal(err)
	}

	// Checkpointed run interrupted before day two, then resumed.
	cfg := base
	cfg.CheckpointDir = t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ScanLongitudinal(ctx, cfg); err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	var events []string
	cfg.OnEvent = func(f string, a ...any) { events = append(events, f) }
	resumed, err := s.ScanLongitudinal(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := resumed.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Error("resumed archive differs from uninterrupted run")
	}
}

// TestStudyScanDistributed runs the coordinator/worker topology through
// the public facade: the merged archive must be byte-identical to the
// single-process resumable sweep of the same configuration.
func TestStudyScanDistributed(t *testing.T) {
	s := testStudy(t)
	days := []Day{simtime.Date(2016, 6, 1), simtime.End}
	base := LongitudinalConfig{Days: days, Sample: 40, Workers: 4, Shards: 2}

	single, err := s.ScanLongitudinal(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := single.WriteArchive(&want); err != nil {
		t.Fatal(err)
	}

	cfg := DistributedConfig{Longitudinal: base, Fleet: 3}
	cfg.Longitudinal.CheckpointDir = t.TempDir()
	store, res, err := s.ScanDistributed(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := store.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Error("distributed archive differs from single-process sweep")
	}
	if res.Stats.Done != len(days)*base.Shards {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if len(res.HealthByWorker) == 0 {
		t.Fatal("no per-worker health attribution")
	}
}

func TestStudyOptions(t *testing.T) {
	s, err := NewStudy(Options{SkipWorld: true, SkipAgents: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.World != nil || s.Agents != nil {
		t.Error("skip options ignored")
	}
	if s.Eco == nil || len(s.Eco.Registries) != 5 {
		t.Error("ecosystem incomplete")
	}
}
