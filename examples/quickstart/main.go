// Quickstart: sign a zone, serve it over real UDP, query it with the DO
// bit, compute the DS record, and watch validation succeed — then break the
// chain the way a sloppy registrar would and watch it fail.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

func main() {
	// 1. Build a zone.
	z := zone.New("example.test")
	z.MustAdd(dnswire.NewRR("example.test", 3600, &dnswire.SOA{
		MName: "ns1.example.test", RName: "hostmaster.example.test",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR("example.test", 3600, &dnswire.NS{Host: "ns1.example.test"}))
	z.MustAdd(dnswire.NewRR("www.example.test", 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.80")}))

	// 2. Sign it: a KSK/ZSK pair, RRSIGs over every authoritative RRset.
	signer, err := zone.NewSigner(dnswire.AlgECDSAP256SHA256, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	if err := signer.Sign(z); err != nil {
		log.Fatal(err)
	}
	dss, err := signer.DSRecords("example.test", dnswire.DigestSHA256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("zone signed; the DS record a registrar must upload to the registry:")
	fmt.Printf("  example.test. IN DS %s\n\n", dss[0])

	// 3. Serve it over real UDP/TCP on an ephemeral port.
	auth := dnsserver.NewAuthoritative()
	auth.AddZone(z)
	srv := &dnsserver.Server{Handler: auth}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving example.test on %s\n\n", srv.Addr())

	// 4. Query with the DO bit: the answer carries RRSIGs.
	ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(1, "www.example.test", dnswire.TypeA)
	q.SetEDNS(4096, true)
	resp, err := ex.Exchange(context.Background(), srv.Addr(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("response with DO bit set:")
	fmt.Print(resp.String())

	// 5. Verify the A RRset against the zone keys — what a validating
	// resolver does once the chain of trust reaches this zone.
	var rrs []*dnswire.RR
	var sig *dnswire.RRSIG
	for _, rr := range resp.Answers {
		switch d := rr.Data.(type) {
		case *dnswire.A:
			rrs = append(rrs, rr)
		case *dnswire.RRSIG:
			if d.TypeCovered == dnswire.TypeA {
				sig = d
			}
		}
	}
	zsk := signer.ZSK.DNSKEY()
	if err := dnssec.VerifyRRSet(rrs, sig, zsk, time.Now()); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Println("\nRRSIG over www.example.test/A verifies ✓")

	// 6. The DS is the fragile link: check that the published DS matches
	// the KSK, then simulate a registrar accepting a corrupted one.
	if dnssec.MatchDS("example.test", dss[0], signer.KSK.DNSKEY()) {
		fmt.Println("DS matches the KSK ✓ — with this DS at the registry, the domain is FULLY deployed")
	}
	corrupted := *dss[0]
	corrupted.Digest = append([]byte(nil), dss[0].Digest...)
	corrupted.Digest[0] ^= 0xff // one transcription error, as in the isoc.org anecdote
	if !dnssec.MatchDS("example.test", &corrupted, signer.KSK.DNSKEY()) {
		fmt.Println("corrupted DS does NOT match — a registrar that accepts it without validation")
		fmt.Println("takes the whole domain offline for every validating resolver (deployment: broken)")
	}
}
