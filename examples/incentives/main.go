// Financial incentives: reproduce section 6.3's mechanism. A ccTLD registry
// pays registrars a yearly discount per correctly signed domain and audits
// compliance daily; a registrar with broken DNSSEC racks up failures until
// its discount is suspended (".nl registrars should not fail validations
// more than 14 times in six months").
//
// Run with: go run ./examples/incentives
package main

import (
	"context"
	"fmt"
	"log"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/ecosystem"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/simtime"
)

func main() {
	eco, err := ecosystem.New(ecosystem.Config{
		TLDs: []string{"nl"},
		Incentives: map[string]*registry.Incentive{
			"nl": {DiscountPerYear: 0.28, MaxFailures: 14, WindowDays: 180},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(id string, sloppy bool) *registrar.Registrar {
		r, err := registrar.New(registrar.Policy{
			ID: id, Name: id, NSHosts: []string{"ns1." + id + ".nl"},
			HostedDNSSEC: registrar.SupportDefault,
			Roles:        map[string]registrar.Role{"nl": {Kind: registrar.RoleRegistrar}},
		}, registrar.Deps{Registries: eco.Registries, Net: eco.Net, Clock: eco.Clock.Day})
		if err != nil {
			log.Fatal(err)
		}
		r.CreateAccount("c@x.nl")
		return r
	}
	compliant := mk("dutchhost", false)
	sloppy := mk("brokenhost", true)

	// Each registrar hosts ten signed domains.
	for i := 0; i < 10; i++ {
		if err := compliant.Purchase("c@x.nl", fmt.Sprintf("goed%02d.nl", i), ""); err != nil {
			log.Fatal(err)
		}
		if err := sloppy.Purchase("c@x.nl", fmt.Sprintf("kapot%02d.nl", i), ""); err != nil {
			log.Fatal(err)
		}
	}
	// The sloppy registrar corrupts its DS records (transcription errors,
	// no validation): every domain is broken for validating resolvers.
	nl := eco.Registries["nl"]
	for i := 0; i < 10; i++ {
		garbage := &dnswire.DS{KeyTag: uint16(i), Algorithm: dnswire.AlgED25519,
			DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
		if err := nl.SetDS("brokenhost", fmt.Sprintf("kapot%02d.nl", i), []*dnswire.DS{garbage}); err != nil {
			log.Fatal(err)
		}
	}

	// The registry audits daily for 30 days.
	fmt.Println("daily registry audits (the .nl/.se compliance checks):")
	for day := 0; day < 30; day++ {
		d := eco.Clock.Advance(1)
		report, err := nl.HealthCheck(context.Background(), eco.Net, d)
		if err != nil {
			log.Fatal(err)
		}
		if day == 0 || day == 14 || day == 29 {
			fmt.Printf("  %s: checked=%d valid=%d failures=%v discounts=%v\n",
				d, report.Checked, report.Valid, report.FailuresByRegistrar,
				fmtDiscounts(report.DiscountsAccrued))
		}
	}
	totals := nl.Discounts()
	fmt.Printf("\naccrued discounts after 30 days:\n")
	fmt.Printf("  dutchhost:  €%.4f (10 valid domains × €0.28/365 × 30 days)\n", totals["dutchhost"])
	fmt.Printf("  brokenhost: €%.4f — suspended after exceeding 14 failures in the window\n", totals["brokenhost"])
	fmt.Println("\nthe paper: these small discounts made .nl and .se the most-signed TLDs in the study,")
	fmt.Println("and registrars like Loopia/KPN sign ONLY the TLDs where the discount exists (Figure 5).")
	_ = simtime.End
}

func fmtDiscounts(m map[string]float64) string {
	if len(m) == 0 {
		return "{}"
	}
	out := "{"
	for k, v := range m {
		out += fmt.Sprintf("%s:€%.4f ", k, v)
	}
	return out[:len(out)-1] + "}"
}
