// Registrar probe: reproduce the paper's customer-perspective methodology
// against three registrars with very different DNSSEC policies, and watch
// the probe discover — purely from observed behaviour — who signs by
// default, who charges, who validates DS uploads, and who accepts forged
// email.
//
// Run with: go run ./examples/registrar-probe
package main

import (
	"context"
	"fmt"
	"log"

	"securepki.org/registrarsec"
)

func main() {
	study, err := registrarsec.NewStudy(registrarsec.Options{SkipWorld: true})
	if err != nil {
		log.Fatal(err)
	}
	prober := study.Prober()

	for _, id := range []string{"godaddy", "ovh", "binero"} {
		agent := study.Agents[id]
		obs, err := prober.Run(context.Background(), agent)
		if err != nil {
			log.Fatalf("probing %s: %v", id, err)
		}
		fmt.Printf("── %s ──\n", obs.Registrar)
		fmt.Printf("  hosted DNSSEC:       signed=%v default=%v fee=%v → deployment %s\n",
			obs.HostedSigned, obs.HostedByDefault, obs.HostedNeededFee, obs.HostedDeployment)
		fmt.Printf("  owner-run DNSSEC:    supported=%v channel=%s → deployment %s\n",
			obs.OwnerSupported, obs.ChannelUsed, obs.OwnerDeployment)
		fmt.Printf("  rejects bogus DS:    %s\n", obs.RejectsBogusDS)
		fmt.Printf("  rejects forged mail: %s\n", obs.RejectsForgedEmail)
		for _, n := range obs.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}

	fmt.Println("The full campaigns (Tables 2-4) are available via regsec-probe or Study.ProbeTable2/3.")
}
