// Cloudflare DS gap: reproduce section 7 end to end. Ten customers
// delegate their domains to a third-party DNS operator and enable DNSSEC;
// the operator signs and hands each a DS record — but only some customers
// relay it to their registrar. The rest stay partially deployed, invisible
// to validating resolvers. Then a CDS-polling registry (the paper's
// recommendation) closes the gap without any human in the loop.
//
// Run with: go run ./examples/cloudflare-dsgap
package main

import (
	"context"
	"fmt"
	"log"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/ecosystem"
	"securepki.org/registrarsec/internal/operator"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/simtime"
)

func main() {
	eco, err := ecosystem.New(ecosystem.Config{
		TLDs:    []string{"com"},
		CDSTLDs: map[string]bool{"com": true}, // the registry CAN poll CDS (like .cz)
	})
	if err != nil {
		log.Fatal(err)
	}
	eco.Clock.Set(simtime.CloudflareUniversalDNSSEC + 1)

	reg, err := registrar.New(registrar.Policy{
		ID: "webreg", Name: "WebReg", NSHosts: []string{"ns1.webreg.net"},
		OwnerDNSSEC: true, DSChannel: channel.Web,
		Roles: map[string]registrar.Role{"com": {Kind: registrar.RoleRegistrar}},
	}, registrar.Deps{Registries: eco.Registries, Net: eco.Net, Clock: eco.Clock.Day})
	if err != nil {
		log.Fatal(err)
	}

	cf, err := operator.New(operator.Config{
		ID: "cloudflare", Name: "Cloudflare",
		NSHosts:         []string{"ana.ns.cloudflare.com", "bob.ns.cloudflare.com"},
		SupportsDNSSEC:  true,
		DNSSECLaunchDay: simtime.CloudflareUniversalDNSSEC,
		PublishesCDS:    true,
		Clock:           eco.Clock.Day,
		Net:             eco.Net,
	})
	if err != nil {
		log.Fatal(err)
	}

	classify := func(domain string) dnssec.Deployment {
		r, _ := eco.Registries["com"].Registration(domain)
		v := eco.Validating()
		res, chain, err := v.Lookup(context.Background(), domain, dnswire.TypeDNSKEY)
		if err != nil {
			log.Fatal(err)
		}
		hasKey := len(res.RRSet(domain, dnswire.TypeDNSKEY).RRs) > 0
		return dnssec.Classify(hasKey, len(r.DS) > 0, chain.Status == dnssec.Secure)
	}

	// Ten customers sign up; each enables DNSSEC; only 60% complete the
	// DS relay — the paper's measured completion rate.
	fmt.Println("ten Cloudflare customers enable universal DNSSEC;")
	fmt.Println("six relay the DS to their registrar, four do not (the paper's 60/40 split):")
	var domains []string
	for i := 0; i < 10; i++ {
		domain := fmt.Sprintf("site%02d.com", i)
		domains = append(domains, domain)
		email := fmt.Sprintf("owner%02d@example.net", i)
		reg.CreateAccount(email)
		if err := reg.Purchase(email, domain, ""); err != nil {
			log.Fatal(err)
		}
		if _, err := cf.CreateZone(domain); err != nil {
			log.Fatal(err)
		}
		if err := reg.UseExternalNameservers(email, domain, cf.NSHosts()); err != nil {
			log.Fatal(err)
		}
		ds, err := cf.EnableDNSSEC(domain)
		if err != nil {
			log.Fatal(err)
		}
		if i%10 < 6 { // 60% complete the relay
			if err := reg.SubmitDSWeb(context.Background(), email, domain, ds); err != nil {
				log.Fatal(err)
			}
		}
	}

	count := func() map[dnssec.Deployment]int {
		out := map[dnssec.Deployment]int{}
		for _, d := range domains {
			out[classify(d)]++
		}
		return out
	}
	c := count()
	fmt.Printf("  full=%d  partial=%d  (paper: 60.7%% vs 39.3%% of DNSKEY domains)\n\n",
		c[dnssec.DeploymentFull], c[dnssec.DeploymentPartial])

	// The fix: the registry polls CDS/CDNSKEY (RFC 7344/8078) — Cloudflare
	// already publishes them — and installs the DS itself.
	report, err := eco.Registries["com"].ScanCDS(context.Background(), eco.Net, eco.Clock.Day(), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry CDS sweep: scanned=%d bootstrapped=%d updated=%d rejected=%d\n",
		report.Scanned, report.Bootstrapped, report.Updated, report.Rejected)
	c = count()
	fmt.Printf("after the sweep:    full=%d  partial=%d — the relay gap is closed with no human involved\n",
		c[dnssec.DeploymentFull], c[dnssec.DeploymentPartial])
}
