package registrarsec_test

import (
	"context"
	"fmt"

	"securepki.org/registrarsec"
)

// ExampleOperatorsToCover shows the Figure 3 coverage computation over a
// hand-built CDF.
func ExampleOperatorsToCover() {
	cdf := []registrarsec.CDFPoint{
		{Rank: 1, Operator: "ovh.net", Count: 320, CumFrac: 0.40},
		{Rank: 2, Operator: "hyp.net", Count: 94, CumFrac: 0.52},
		{Rank: 3, Operator: "transip.net", Count: 91, CumFrac: 0.63},
	}
	fmt.Println(registrarsec.OperatorsToCover(cdf, 0.5))
	// Output: 2
}

// ExampleRenderTable1 renders a dataset overview.
func ExampleRenderTable1() {
	rows := []registrarsec.TLDOverview{
		{TLD: "com", Domains: 118147, PctDNSKEY: 0.70, PctFull: 0.49, PctPartial: 0.21},
		{TLD: "nl", Domains: 5674, PctDNSKEY: 51.60, PctFull: 49.90, PctPartial: 1.70},
	}
	fmt.Print(registrarsec.RenderTable1(rows))
	// Output:
	// TLD         Domains     %DNSKEY       %Full    %Partial
	// --------------------------------------------------------
	// .com         118147       0.70%       0.49%       0.21%
	// .nl            5674      51.60%      49.90%       1.70%
}

// ExampleNewStudy builds the full environment and probes one registrar.
func ExampleNewStudy() {
	study, err := registrarsec.NewStudy(registrarsec.Options{SkipWorld: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	obs, err := study.Prober().Run(context.Background(), study.Agents["godaddy"])
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(obs.Registrar, "needs a fee for hosted DNSSEC:", obs.HostedNeededFee)
	// Output: GoDaddy needs a fee for hosted DNSSEC: true
}
