// Command regsec-epp runs a live TLD registry: an EPP provisioning endpoint
// (RFC 5730/5734 with the RFC 5910 secDNS extension) in front of a signed
// TLD zone served over DNS. Domain creates and DS updates sent over EPP
// appear in the DNS zone immediately — the full registrar→registry→DNS path
// of the paper, on your loopback.
//
// Usage:
//
//	regsec-epp -tld com -epp 127.0.0.1:7000 -dns 127.0.0.1:5301 -accredit acme:s3cret
//
// Then provision with any EPP client speaking the subset (see
// internal/epp), and watch with:
//
//	regsec-dig -dnssec @127.0.0.1:5301 example.com DS
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/epp"
	"securepki.org/registrarsec/internal/registry"
)

func main() {
	tld := flag.String("tld", "com", "TLD to operate")
	eppAddr := flag.String("epp", "127.0.0.1:7000", "EPP listen address")
	dnsAddr := flag.String("dns", "127.0.0.1:5301", "DNS listen address (UDP+TCP)")
	accredit := flag.String("accredit", "acme:s3cret", "comma-separated registrarID:password pairs")
	axfr := flag.Bool("axfr", false, "allow zone transfers of the TLD zone")
	flag.Parse()

	reg, err := registry.New(registry.Config{
		TLD:       *tld,
		NSHost:    "ns1." + *tld + "-registry.example",
		AcceptsDS: true,
	}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	passwords := map[string]string{}
	for _, pair := range strings.Split(*accredit, ",") {
		id, pw, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -accredit entry %q (want id:password)\n", pair)
			os.Exit(2)
		}
		reg.Accredit(id)
		passwords[id] = pw
	}

	eppSrv := &epp.Server{Registry: reg, Passwords: passwords}
	if err := eppSrv.ListenAndServe(*eppAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer eppSrv.Close()

	auth := reg.Server()
	if *axfr {
		auth.EnableAXFR(func(string) bool { return true })
	}
	dnsSrv := &dnsserver.Server{Handler: auth}
	if err := dnsSrv.ListenAndServe(*dnsAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer dnsSrv.Close()

	dss, err := reg.DSRecords()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf(".%s registry up:\n", reg.TLD())
	fmt.Printf("  EPP:  %s   (registrars: %s)\n", eppSrv.Addr(), strings.Join(keys(passwords), ", "))
	fmt.Printf("  DNS:  %s   (udp+tcp%s)\n", dnsSrv.Addr(), map[bool]string{true: ", axfr open", false: ""}[*axfr])
	fmt.Printf("  trust anchor DS for .%s: %s\n", reg.TLD(), dss[0])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
