// Command regsec-probe runs the paper's hands-on registrar methodology
// against the full simulated catalogue and prints Tables 2, 3 and 4 plus
// the section-5 headline summary and the security findings.
//
// Usage:
//
//	regsec-probe [-notes]
package main

import (
	"flag"
	"fmt"
	"os"

	"securepki.org/registrarsec"
)

func main() {
	notes := flag.Bool("notes", false, "print per-registrar probe notes (anecdotes, vulnerabilities)")
	flag.Parse()

	study, err := registrarsec.NewStudy(registrarsec.Options{SkipWorld: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	obs2 := study.ProbeTable2()
	fmt.Println("Table 2 — the 20 most popular registrars, probed as a customer:")
	fmt.Println(study.RenderTable2(obs2))
	s := registrarsec.Summarize(obs2)
	fmt.Printf("headline: %d/20 sign hosted zones (%d by default, %d paid); %d/20 accept owner DS records;\n",
		s.HostedSupport, s.HostedDefault, s.HostedPaid, s.OwnerSupport)
	fmt.Printf("          %d use email (%d accepted a forged sender); only %d validated the DS record.\n\n",
		s.EmailChannel, s.ForgedEmailOK, s.ValidateDS)

	obs3 := study.ProbeTable3()
	fmt.Println("Table 3 — the registrars operating the most DNSKEY-publishing domains:")
	fmt.Println(study.RenderTable3(obs3))
	s3 := registrarsec.Summarize(obs3)
	fmt.Printf("headline: %d/10 sign by default; %d/10 accept owner DS records; %d validate.\n\n",
		s3.HostedDefault, s3.OwnerSupport, s3.ValidateDS)

	fmt.Println("Table 4 — registrar vs reseller roles per TLD:")
	fmt.Println(registrarsec.RenderTable4(study.SurveyTable4()))

	if *notes {
		fmt.Println("probe notes:")
		for _, group := range [][]*registrarsec.Observation{obs2, obs3} {
			for _, o := range group {
				for _, n := range o.Notes {
					fmt.Printf("  %-16s %s\n", o.Registrar+":", n)
				}
			}
		}
	}
}
