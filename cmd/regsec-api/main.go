// Command regsec-api is the always-on observatory daemon: an HTTP/JSON
// query plane over the registrar-DNSSEC world that keeps itself current
// by tailing a growing scan archive. It resumes from its committed world
// file on start, ingests new checksummed archive sections incrementally
// (no rebuild), and serves:
//
//	GET /healthz            liveness (the process serves HTTP)
//	GET /readyz             readiness (world loaded AND archive poll fresh)
//	GET /v1/status          ingest cursor, counts, gate + supervisor stats
//	GET /v1/table1          Table 1 per-TLD overview    [?day=][&tlds=com,net]
//	GET /v1/series          deployment series           ?operator=[&tld=][&from=][&to=][&step=]
//	GET /v1/operators       per-operator counts         [?day=][&class=][&limit=]
//	GET /v1/registrars      per-registrar counts        [?day=][&tlds=]
//	GET /v1/dsgap           DNSKEY-without-DS share     [?day=][&tlds=]
//
// Usage:
//
//	regsec-api -archive scans.tsv -world world.colstore
//	           [-listen 127.0.0.1:7363] [-poll 500ms] [-ready-max-lag 10s]
//	           [-max-in-flight 64] [-max-queue 256] [-request-timeout 10s]
//
// The daemon is crash-safe by construction: every ingest commit lands the
// world file and its watermark atomically at a section boundary, so a kill
// at any instruction resumes byte-identical to a clean run. SIGINT/SIGTERM
// drain in-flight requests gracefully with a hard deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"securepki.org/registrarsec/internal/apiserv"
	"securepki.org/registrarsec/internal/httpx"
)

func main() {
	os.Exit(run())
}

func run() int {
	archive := flag.String("archive", "", "checksummed scan archive to tail (required)")
	world := flag.String("world", "", "committed world file, created on first ingest (required)")
	watermark := flag.String("watermark", "", "ingest watermark path (default <world>.watermark)")
	listen := flag.String("listen", "127.0.0.1:7363", "query-plane listen address")
	poll := flag.Duration("poll", 500*time.Millisecond, "archive poll cadence")
	commitEvery := flag.Int("commit-every", 1, "archive sections per world commit")
	readyMaxLag := flag.Duration("ready-max-lag", 10*time.Second, "max staleness of the last archive poll before /readyz fails")
	maxInFlight := flag.Int("max-in-flight", 64, "concurrently executing requests before queueing")
	maxQueue := flag.Int("max-queue", 256, "requests waiting for a slot before shedding")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max wait for a slot before shedding with 429")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request work deadline")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "hard deadline for graceful shutdown")
	flag.Parse()

	if *archive == "" || *world == "" {
		fmt.Fprintln(os.Stderr, "regsec-api requires -archive and -world")
		return 2
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	s := apiserv.New(apiserv.Config{
		ArchivePath:    *archive,
		WorldPath:      *world,
		WatermarkPath:  *watermark,
		PollInterval:   *poll,
		CommitEvery:    *commitEvery,
		ReadyMaxLag:    *readyMaxLag,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *requestTimeout,
		Logf:           logf,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := httpx.NewServer(s.Handler())
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	bgDone := make(chan struct{})
	go func() {
		defer close(bgDone)
		s.Run(ctx)
	}()
	logf("regsec-api serving http://%s (archive %s, world %s)", ln.Addr(), *archive, *world)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		stop()
		<-bgDone
		return 1
	case <-ctx.Done():
	}

	// Drain: stop admitting connections, let in-flight requests finish,
	// give up at the hard deadline. Ingest has already committed at its
	// last section boundary, so a hard exit loses nothing.
	logf("regsec-api draining (up to %v)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("regsec-api drain deadline hit: %v", err)
	}
	<-bgDone
	admitted, shed := s.GateStats()
	logf("regsec-api stopped: %d request(s) served, %d shed", admitted, shed)
	return 0
}
