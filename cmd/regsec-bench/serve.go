package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/loadgen"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

// serveBenchConfig parameterizes the authoritative-serving benchmark.
type serveBenchConfig struct {
	ScaleDivisor float64
	Seed         int64
	Sample       int
	Rate         int
	Duration     time.Duration
	MinSpeedup   float64
	MaxAllocs    int64
	OutPath      string
}

// serveBaseline is the BENCH_serve.json schema. The handler section is the
// in-process request path with the network removed — the seed path
// (Unpack → ServeDNS → Pack) against the warm wire fast path — which is
// what the speedup and allocation gates run on, because it is deterministic
// on shared CI runners. The loopback sections drive real sockets with
// regsec-loadgen: closed-loop sustainable QPS for both server paths, and
// an open-loop run at a fixed offered rate for honest latency percentiles.
type serveBaseline struct {
	Schema       string  `json:"schema"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	ScaleDivisor float64 `json:"scale_divisor"`
	Seed         int64   `json:"seed"`
	Sample       int     `json:"sample"`
	QueryMix     int     `json:"query_mix"`

	LegacyNsPerOp    float64 `json:"legacy_ns_per_op"`
	LegacyAllocs     int64   `json:"legacy_allocs_per_op"`
	FastNsPerOp      float64 `json:"fast_ns_per_op"`
	FastAllocs       int64   `json:"fast_allocs_per_op"`
	HandlerSpeedup   float64 `json:"handler_speedup"`
	MinSpeedup       float64 `json:"min_speedup"`
	MaxAllocsAllowed int64   `json:"max_allocs_allowed"`

	LegacyLoop loadgen.Result        `json:"legacy_closed_loop"`
	ServerLoop loadgen.Result        `json:"server_closed_loop"`
	LoopbackX  float64               `json:"loopback_speedup"`
	OpenLoop   loadgen.Result        `json:"open_loop"`
	Server     dnsserver.ServerStats `json:"server_stats"`
	Cache      dnsserver.CacheStats  `json:"cache_stats"`
}

const serveBaselineSchema = "regsec-bench-serve/1"

// runServeBench measures the serving hot path and writes BENCH_serve.json.
// It exits nonzero when the warm fast path is less than MinSpeedup times
// the seed path or allocates more than MaxAllocs per query.
func runServeBench(world *tldsim.World, cfg serveBenchConfig) int {
	fmt.Fprintf(os.Stderr, "serve bench: materializing %d domains...\n", cfg.Sample)
	domains := world.Sample(cfg.Sample, cfg.Seed)
	mat, err := tldsim.Materialize(simtime.End, domains)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	auth := dnsserver.NewAuthoritative()
	sharded := dnsserver.NewSharded(dnsserver.ShardedConfig{})
	for tld, ns := range mat.TLDServers {
		a, ok := mat.Net.Lookup(ns).(*dnsserver.Authoritative)
		if !ok {
			fmt.Fprintf(os.Stderr, "serve bench: no authoritative for %q\n", tld)
			return 1
		}
		z := a.Zone(tld)
		auth.AddZone(z)
		sharded.AddZone(z)
	}

	names := make([]string, 0, 2*len(domains))
	for _, d := range domains {
		names = append(names, d.Name, "www."+d.Name)
	}
	types := []dnswire.Type{dnswire.TypeNS, dnswire.TypeDS, dnswire.TypeSOA, dnswire.TypeA}
	mix, err := loadgen.QueryMix(names, types, 0.3, cfg.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	b := serveBaseline{
		Schema:           serveBaselineSchema,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		ScaleDivisor:     cfg.ScaleDivisor,
		Seed:             cfg.Seed,
		Sample:           cfg.Sample,
		QueryMix:         len(mix),
		MinSpeedup:       cfg.MinSpeedup,
		MaxAllocsAllowed: cfg.MaxAllocs,
	}

	// Warm the cache: run every mix packet through the full wire path once,
	// then confirm the whole mix hits.
	sc := dnsserver.NewWireScratch()
	out := make([]byte, 0, 4096)
	for _, pkt := range mix {
		if resp := sharded.ServeWireFull(out[:0], pkt, sc, true); resp == nil {
			fmt.Fprintln(os.Stderr, "serve bench: warmup query failed the full path")
			return 1
		}
	}
	for _, pkt := range mix {
		if _, hit := sharded.ServeWireFast(out[:0], pkt, sc); !hit {
			fmt.Fprintln(os.Stderr, "serve bench: mix query missed the warm cache")
			return 1
		}
	}

	// In-process handler benchmark: seed path vs warm fast path.
	legacy := testing.Benchmark(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			pkt := mix[i%len(mix)]
			var q dnswire.Message
			if err := q.Unpack(pkt); err != nil {
				tb.Fatal(err)
			}
			resp := auth.ServeDNS(&q)
			if _, err := resp.Pack(); err != nil {
				tb.Fatal(err)
			}
		}
	})
	fast := testing.Benchmark(func(tb *testing.B) {
		sc := dnsserver.NewWireScratch()
		buf := make([]byte, 0, 4096)
		tb.ResetTimer()
		for i := 0; i < tb.N; i++ {
			var hit bool
			buf, hit = sharded.ServeWireFast(buf[:0], mix[i%len(mix)], sc)
			if !hit {
				tb.Fatal("cache miss on warm mix")
			}
		}
	})
	b.LegacyNsPerOp = float64(legacy.T.Nanoseconds()) / float64(legacy.N)
	b.LegacyAllocs = legacy.AllocsPerOp()
	b.FastNsPerOp = float64(fast.T.Nanoseconds()) / float64(fast.N)
	b.FastAllocs = fast.AllocsPerOp()
	if b.FastNsPerOp > 0 {
		b.HandlerSpeedup = b.LegacyNsPerOp / b.FastNsPerOp
	}
	fmt.Fprintf(os.Stderr, "serve bench: handler legacy %.0f ns/op (%d allocs), fast %.0f ns/op (%d allocs), speedup %.1fx\n",
		b.LegacyNsPerOp, b.LegacyAllocs, b.FastNsPerOp, b.FastAllocs, b.HandlerSpeedup)

	// Loopback closed-loop: both real-server paths under the same client.
	runLoop := func(handler dnsserver.Handler, legacyPath bool, mode loadgen.Mode, rate int) (loadgen.Result, *dnsserver.Server, error) {
		srv := &dnsserver.Server{Handler: handler, Legacy: legacyPath}
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			return loadgen.Result{}, nil, err
		}
		lcfg := loadgen.Config{
			Addr:     srv.Addr(),
			Queries:  mix,
			Conns:    8,
			Duration: cfg.Duration,
			Mode:     mode,
			Rate:     rate,
			Seed:     cfg.Seed,
		}
		res, err := loadgen.Run(context.Background(), lcfg)
		return res, srv, err
	}

	legacyLoop, legacySrv, err := runLoop(auth, true, loadgen.Closed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	legacySrv.Close()
	b.LegacyLoop = legacyLoop

	serverLoop, srv, err := runLoop(sharded, false, loadgen.Closed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv.Close()
	b.ServerLoop = serverLoop
	if legacyLoop.QPS > 0 {
		b.LoopbackX = serverLoop.QPS / legacyLoop.QPS
	}
	fmt.Fprintf(os.Stderr, "serve bench: loopback closed-loop legacy %.0f qps, server %.0f qps (%.1fx)\n",
		legacyLoop.QPS, serverLoop.QPS, b.LoopbackX)

	// Open loop at the configured offered rate for honest percentiles.
	openLoop, srv, err := runLoop(sharded, false, loadgen.Open, cfg.Rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	b.OpenLoop = openLoop
	b.Server = srv.Stats()
	b.Cache = sharded.CacheStats()
	srv.Close()
	fmt.Fprintf(os.Stderr, "serve bench: open-loop %.0f qps offered, %.0f achieved, p50=%s p99=%s p999=%s\n",
		openLoop.OfferedQPS, openLoop.QPS, openLoop.P50, openLoop.P99, openLoop.P999)

	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)

	ok := true
	if b.HandlerSpeedup < cfg.MinSpeedup {
		fmt.Fprintf(os.Stderr, "serve bench: FAIL handler speedup %.1fx < %.1fx\n", b.HandlerSpeedup, cfg.MinSpeedup)
		ok = false
	}
	if b.FastAllocs > cfg.MaxAllocs {
		fmt.Fprintf(os.Stderr, "serve bench: FAIL fast path %d allocs/op > %d\n", b.FastAllocs, cfg.MaxAllocs)
		ok = false
	}
	if !ok {
		return 1
	}
	return 0
}
