package main

// The world-scale section: how the streaming columnar pipeline behaves as
// the population approaches real-.com size. For each divisor it measures
// the parallel streaming build (wall-clock, allocation footprint, live
// heap), saves the world to disk, re-loads it, and drives the full
// 21-month snapshot + series + Table 1 workload from the re-loaded world
// — the build-once/load-many lifecycle the world cache uses. Where the
// population is small enough it also runs the legacy materialized build
// and gates on the streaming build allocating strictly less.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

type worldscaleBenchConfig struct {
	Seed     int64
	Divisors []float64
	OutPath  string
}

// worldscaleEntry is one divisor's measurements. Legacy fields are zero
// when the population was too large to materialize record-at-a-time.
type worldscaleEntry struct {
	ScaleDivisor float64 `json:"scale_divisor"`
	Domains      int     `json:"domains"`
	Operators    int     `json:"operators"`
	Workers      int     `json:"workers"`

	BuildMs             float64 `json:"build_ms"`
	BuildAllocBytes     uint64  `json:"build_alloc_bytes"`
	LiveBytesAfterBuild uint64  `json:"live_bytes_after_build"`

	SaveMs    float64 `json:"save_ms"`
	FileBytes int64   `json:"file_bytes"`
	LoadMs    float64 `json:"load_ms"`

	SnapshotMs float64 `json:"snapshot_ms"`
	SeriesMs   float64 `json:"series_ms"`
	Table1Ms   float64 `json:"table1_ms"`

	LegacyBuildMs    float64 `json:"legacy_build_ms,omitempty"`
	LegacyAllocBytes uint64  `json:"legacy_alloc_bytes,omitempty"`
	// AllocReduction is legacy/streaming build allocation bytes.
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
}

type worldscaleBaseline struct {
	Schema     string            `json:"schema"`
	Seed       int64             `json:"seed"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Entries    []worldscaleEntry `json:"entries"`
}

const worldscaleBaselineSchema = "regsec-bench-worldscale/1"

// legacyMaxDomains bounds the populations the legacy comparison runs at:
// materializing millions of DomainStates is exactly the failure mode the
// streaming build removes, so the oracle only runs where it fits easily.
const legacyMaxDomains = 1_000_000

func parseDivisors(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad divisor %q in -worldscale-divisors", part)
		}
		out = append(out, d)
	}
	return out, nil
}

func allocDelta(before, after *runtime.MemStats) uint64 {
	return after.TotalAlloc - before.TotalAlloc
}

func runWorldscaleBench(cfg worldscaleBenchConfig) int {
	tmpDir, err := os.MkdirTemp("", "regsec-worldscale-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(tmpDir)

	baseline := &worldscaleBaseline{
		Schema:     worldscaleBaselineSchema,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	ok := true
	for _, div := range cfg.Divisors {
		wcfg := tldsim.WorldConfig{Scale: 1 / div, Seed: cfg.Seed}
		entry := worldscaleEntry{ScaleDivisor: div, Workers: runtime.GOMAXPROCS(0)}

		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		world, err := tldsim.Build(wcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		entry.BuildMs = ms(start)
		runtime.ReadMemStats(&m1)
		entry.BuildAllocBytes = allocDelta(&m0, &m1)
		runtime.GC()
		runtime.ReadMemStats(&m1)
		entry.LiveBytesAfterBuild = m1.HeapAlloc
		entry.Domains = world.Len()
		entry.Operators = world.Index().Operators()
		fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: built %d domains in %.0f ms (%.0f MB allocated, %.0f MB live)\n",
			div, entry.Domains, entry.BuildMs,
			float64(entry.BuildAllocBytes)/1e6, float64(entry.LiveBytesAfterBuild)/1e6)

		path := filepath.Join(tmpDir, fmt.Sprintf("world-%.0f.rscw", div))
		start = time.Now()
		if err := world.Save(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		entry.SaveMs = ms(start)
		if st, err := os.Stat(path); err == nil {
			entry.FileBytes = st.Size()
		}

		// Drop the built world: everything below runs from the re-loaded
		// one, proving the save/load cycle round-trips the full workload.
		world = nil
		runtime.GC()
		start = time.Now()
		loaded, _, err := tldsim.LoadWorld(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		entry.LoadMs = ms(start)

		start = time.Now()
		snap := loaded.SnapshotAt(simtime.End)
		entry.SnapshotMs = ms(start)
		if len(snap.Records) != entry.Domains {
			fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: reloaded snapshot has %d records, want %d\n",
				div, len(snap.Records), entry.Domains)
			return 1
		}
		snap = nil

		start = time.Now()
		series := loaded.SeriesFor("ovh.net", "", simtime.GTLDStart, simtime.End, 1)
		entry.SeriesMs = ms(start)
		if len(series) == 0 {
			fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: empty series from reloaded world\n", div)
			return 1
		}

		start = time.Now()
		overview := loaded.Index().Overview(simtime.End, tldsim.AllTLDs)
		entry.Table1Ms = ms(start)
		if len(overview) != len(tldsim.AllTLDs) {
			fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: overview covered %d TLDs, want %d\n",
				div, len(overview), len(tldsim.AllTLDs))
			return 1
		}
		loaded.Close()
		fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: save %.0f ms (%.0f MB), load %.0f ms, snapshot %.0f ms, series %.0f ms, table1 %.0f ms\n",
			div, entry.SaveMs, float64(entry.FileBytes)/1e6, entry.LoadMs,
			entry.SnapshotMs, entry.SeriesMs, entry.Table1Ms)

		if entry.Domains <= legacyMaxDomains {
			// The legacy lifecycle the streaming pipeline replaces:
			// materialize []DomainState, then copy it all again into the
			// analytics index.
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start = time.Now()
			lw, err := tldsim.BuildLegacy(wcfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			lw.Index()
			entry.LegacyBuildMs = ms(start)
			runtime.ReadMemStats(&m1)
			entry.LegacyAllocBytes = allocDelta(&m0, &m1)
			if lw.Len() != entry.Domains {
				fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: legacy build has %d domains, streaming %d\n",
					div, lw.Len(), entry.Domains)
				return 1
			}
			if entry.BuildAllocBytes > 0 {
				entry.AllocReduction = float64(entry.LegacyAllocBytes) / float64(entry.BuildAllocBytes)
			}
			fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: legacy build %.0f ms, %.0f MB allocated (streaming allocates %.2fx less)\n",
				div, entry.LegacyBuildMs, float64(entry.LegacyAllocBytes)/1e6, entry.AllocReduction)
			// The gate: the streaming build must allocate strictly less
			// than the legacy materialized build at the same divisor.
			if entry.BuildAllocBytes >= entry.LegacyAllocBytes {
				fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: streaming build allocated %d bytes, not below legacy's %d\n",
					div, entry.BuildAllocBytes, entry.LegacyAllocBytes)
				ok = false
			}
		} else {
			fmt.Fprintf(os.Stderr, "worldscale 1/%.0f: skipping legacy comparison (%d domains > %d)\n",
				div, entry.Domains, legacyMaxDomains)
		}
		baseline.Entries = append(baseline.Entries, entry)
	}

	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)
	if !ok {
		return 1
	}
	return 0
}

func ms(since time.Time) float64 {
	return float64(time.Since(since).Nanoseconds()) / 1e6
}
