package main

// The api section benchmarks the always-on observatory daemon end to end
// through its handler stack (admission gate → deadline → query plane):
// read throughput and tail latency while the tailer ingests new archive
// sections concurrently, then the shed behavior of a deliberately tiny
// admission gate under flood. Results land in BENCH_api.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/apiserv"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

type apiBenchConfig struct {
	Days          int
	DomainsPerDay int
	ReadWorkers   int
	Requests      int
	OutPath       string
}

// apiBaseline is the BENCH_api.json schema.
type apiBaseline struct {
	Schema        string `json:"schema"`
	Days          int    `json:"days"`
	DomainsPerDay int    `json:"domains_per_day"`
	Domains       int    `json:"domains"`
	ReadWorkers   int    `json:"read_workers"`
	Requests      int    `json:"requests"`

	// Steady-state reads with one section ingested concurrently mid-run.
	ReadQPS     float64 `json:"read_qps"`
	P50MicrosRT float64 `json:"p50_us"`
	P99MicrosRT float64 `json:"p99_us"`
	IngestedMid bool    `json:"ingested_during_reads"`

	// Flood against a MaxInFlight=2 gate: shed rate and survivor latency.
	OverloadRequests int     `json:"overload_requests"`
	OverloadShedRate float64 `json:"overload_shed_rate"`
	OverloadP99Us    float64 `json:"overload_p99_us"`
}

const apiBaselineSchema = "regsec-bench-api/1"

// apiSnap generates one deterministic synthetic scan day (the same shape
// the daemon's own tests use: three TLDs, a handful of operators, DNSSEC
// state varying by index and day).
func apiSnap(day simtime.Day, n int) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: day}
	tlds := []string{"com", "net", "org"}
	ops := []string{"alpha-dns", "beta-dns", "gamma-dns", "delta-dns", "epsilon-dns"}
	for i := 0; i < n; i++ {
		r := dataset.Record{
			Domain:   fmt.Sprintf("d%06d.%s", i, tlds[i%3]),
			TLD:      tlds[i%3],
			Operator: ops[i%len(ops)],
			NSHosts:  []string{"ns1." + ops[i%len(ops)] + ".example"},
		}
		r.HasDNSKEY = i%2 == 0
		r.HasRRSIG = r.HasDNSKEY
		r.HasDS = r.HasDNSKEY && (i%4 == 0 || int(day)%100 > i%100)
		r.ChainValid = r.HasDS && i%8 != 4
		snap.Records = append(snap.Records, r)
	}
	snap.Canonicalize()
	return snap
}

func appendAPISection(path string, snap *dataset.Snapshot) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := snap.WriteArchiveSection(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// percentile returns the p-th percentile of sorted durations, in µs.
func percentileUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

func apiStatus(h http.Handler) (apiserv.Status, bool) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	var st apiserv.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		return st, false
	}
	return st, true
}

func waitSections(h http.Handler, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, ok := apiStatus(h); ok && st.Sections >= want && st.Ready {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func runAPIBench(cfg apiBenchConfig) int {
	dir, err := os.MkdirTemp("", "regsec-bench-api-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)
	archive := filepath.Join(dir, "scans.tsv")
	world := filepath.Join(dir, "world.colstore")

	// All days but the last are on disk before the daemon starts; the last
	// is appended mid-benchmark so reads race a real ingest+publish.
	days := make([]simtime.Day, cfg.Days)
	for i := range days {
		days[i] = simtime.Day(100 + 30*i)
	}
	for _, d := range days[:len(days)-1] {
		if err := appendAPISection(archive, apiSnap(d, cfg.DomainsPerDay)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	fmt.Fprintf(os.Stderr, "api bench: %d day(s) × %d domains, %d reader(s), %d requests...\n",
		cfg.Days, cfg.DomainsPerDay, cfg.ReadWorkers, cfg.Requests)
	s := apiserv.New(apiserv.Config{
		ArchivePath:  archive,
		WorldPath:    world,
		PollInterval: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	h := s.Handler()
	if !waitSections(h, cfg.Days-1, 30*time.Second) {
		fmt.Fprintln(os.Stderr, "api bench: daemon never became ready")
		return 1
	}

	// Steady-state reads over a mixed endpoint set, with the final section
	// appended once the run is underway.
	paths := []string{
		"/v1/table1",
		"/v1/operators?class=dnskey",
		"/v1/series?operator=alpha-dns&from=2015-04-11&to=2016-12-31&step=30",
		"/v1/dsgap",
	}
	var next atomic.Int64
	lat := make([][]time.Duration, cfg.ReadWorkers)
	ingested := make(chan bool, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.ReadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) {
					return
				}
				if i == int64(cfg.Requests)/4 {
					// A quarter of the way in: grow the archive under load.
					go func() {
						err := appendAPISection(archive, apiSnap(days[len(days)-1], cfg.DomainsPerDay))
						ingested <- err == nil && waitSections(h, cfg.Days, 30*time.Second)
					}()
				}
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, httptest.NewRequest("GET", paths[i%int64(len(paths))], nil))
				if rec.Code != http.StatusOK {
					continue
				}
				lat[w] = append(lat[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ingestedMid := <-ingested

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	qps := float64(len(all)) / elapsed.Seconds()
	st, _ := apiStatus(h)
	cancel()

	// Overload: a second daemon over the same (already committed) world
	// with a two-slot gate, flooded with the heaviest query in the set.
	over := apiserv.New(apiserv.Config{
		ArchivePath:  archive,
		WorldPath:    world,
		PollInterval: 5 * time.Millisecond,
		MaxInFlight:  2,
		MaxQueue:     2,
		QueueWait:    time.Millisecond,
	})
	octx, ocancel := context.WithCancel(context.Background())
	defer ocancel()
	go over.Run(octx)
	oh := over.Handler()
	if !waitSections(oh, cfg.Days, 30*time.Second) {
		fmt.Fprintln(os.Stderr, "api bench: overload daemon never became ready")
		return 1
	}
	overReqs := cfg.Requests / 2
	var onext atomic.Int64
	var shed atomic.Int64
	olat := make([][]time.Duration, 4*cfg.ReadWorkers)
	for w := range olat {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if onext.Add(1) > int64(overReqs) {
					return
				}
				rec := httptest.NewRecorder()
				t0 := time.Now()
				oh.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/series?operator=alpha-dns&step=1", nil))
				switch rec.Code {
				case http.StatusOK:
					olat[w] = append(olat[w], time.Since(t0))
				case http.StatusTooManyRequests:
					shed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	var oall []time.Duration
	for _, l := range olat {
		oall = append(oall, l...)
	}
	sort.Slice(oall, func(i, j int) bool { return oall[i] < oall[j] })
	shedRate := float64(shed.Load()) / float64(overReqs)

	baseline := &apiBaseline{
		Schema:           apiBaselineSchema,
		Days:             cfg.Days,
		DomainsPerDay:    cfg.DomainsPerDay,
		Domains:          st.Domains,
		ReadWorkers:      cfg.ReadWorkers,
		Requests:         len(all),
		ReadQPS:          qps,
		P50MicrosRT:      percentileUs(all, 0.50),
		P99MicrosRT:      percentileUs(all, 0.99),
		IngestedMid:      ingestedMid,
		OverloadRequests: overReqs,
		OverloadShedRate: shedRate,
		OverloadP99Us:    percentileUs(oall, 0.99),
	}
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "api: %.0f reads/s (p50 %.0fµs, p99 %.0fµs) over %d domains, ingest-under-load %v; overload shed %.0f%% (p99 %.0fµs)\n",
		qps, baseline.P50MicrosRT, baseline.P99MicrosRT, st.Domains, ingestedMid, 100*shedRate, baseline.OverloadP99Us)
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)

	if !ingestedMid {
		fmt.Fprintln(os.Stderr, "api bench: concurrent ingest did not complete during the read phase")
		return 1
	}
	return 0
}
