package main

// The sweep-scale section: how the two sweep pipelines behave as the
// per-day target count approaches full-.com size. For each population
// divisor it runs the identical sweep twice — once on the legacy
// whole-day path (every record of every day resident until the final
// archive write) and once on the streaming path (chunked scan, spill to
// disk past the memory budget, k-way merge on write) — while a sampler
// goroutine tracks the peak live heap over the world-build baseline. The
// two archives must match byte for byte, and at the largest population
// the streaming peak must stay under half the whole-day peak: that bound
// is the point of the streaming pipeline, so the benchmark gates on it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"time"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dsweep"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

type sweepscaleBenchConfig struct {
	Seed      int64
	Divisors  []float64
	Sample    int
	Chunk     int
	MemBudget int64
	OutPath   string
}

// sweepscaleEntry is one divisor's paired measurement.
type sweepscaleEntry struct {
	ScaleDivisor float64 `json:"scale_divisor"`
	Sample       int     `json:"sample"`
	Days         int     `json:"days"`
	Chunk        int     `json:"chunk"`

	WholeWallMs    float64 `json:"whole_wall_ms"`
	WholePeakBytes uint64  `json:"whole_peak_bytes"`

	StreamWallMs    float64 `json:"stream_wall_ms"`
	StreamPeakBytes uint64  `json:"stream_peak_bytes"`

	// PeakRatio is streaming/whole-day peak heap over the shared world
	// baseline; below 1 means streaming was cheaper.
	PeakRatio     float64 `json:"peak_ratio"`
	ByteIdentical bool    `json:"byte_identical"`
}

type sweepscaleBaseline struct {
	Schema         string            `json:"schema"`
	Seed           int64             `json:"seed"`
	GoMaxProcs     int               `json:"gomaxprocs"`
	MemBudgetBytes int64             `json:"mem_budget_bytes"`
	Entries        []sweepscaleEntry `json:"entries"`
}

const sweepscaleBaselineSchema = "regsec-bench-sweepscale/1"

// sweepscaleMaxPeakRatio is the gate at the largest population measured:
// the streaming pipeline's peak heap must stay under this fraction of the
// whole-day pipeline's.
const sweepscaleMaxPeakRatio = 0.5

// liveHeap reads the bytes occupied by objects the last GC mark proved
// live — unlike HeapAlloc it excludes not-yet-collected garbage, so the
// number reflects what the pipeline actually holds, not allocation churn.
func liveHeap() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/live:bytes"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

// heapWatch samples the live heap in the background and keeps the peak.
// The metric updates at each GC mark; the scan's allocation rate keeps
// marks frequent, so the sampler sees every growth step.
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatch {
	w := &heapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				if v := liveHeap(); v > w.peak {
					w.peak = v
				}
			}
		}
	}()
	return w
}

// Peak stops the sampler, forces a final mark so end-of-run state (the
// whole-day path's fully populated store) is counted, and returns the
// peak live heap over the baseline.
func (w *heapWatch) Peak(baseline uint64) uint64 {
	close(w.stop)
	<-w.done
	runtime.GC()
	if v := liveHeap(); v > w.peak {
		w.peak = v
	}
	if w.peak <= baseline {
		return 0
	}
	return w.peak - baseline
}

// heapBaseline collects garbage and reads the settled live heap.
func heapBaseline() uint64 {
	runtime.GC()
	return liveHeap()
}

func runSweepscaleBench(cfg sweepscaleBenchConfig) int {
	tmpDir, err := os.MkdirTemp("", "regsec-sweepscale-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(tmpDir)

	// A tighter GC makes marks (and so live-heap metric updates) more
	// frequent, giving the peak sampler finer resolution on growth steps.
	defer debug.SetGCPercent(debug.SetGCPercent(50))

	days := []simtime.Day{simtime.Date(2016, 6, 1), simtime.End}
	baseline := &sweepscaleBaseline{
		Schema:         sweepscaleBaselineSchema,
		Seed:           cfg.Seed,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		MemBudgetBytes: cfg.MemBudget,
	}
	ok := true
	for i, div := range cfg.Divisors {
		spec := &dsweep.WorldSpec{
			ScaleDiv: div, Seed: cfg.Seed, Sample: cfg.Sample,
			Workers: runtime.GOMAXPROCS(0), Chunk: cfg.Chunk,
		}
		entry := sweepscaleEntry{
			ScaleDivisor: div, Sample: cfg.Sample, Days: len(days), Chunk: cfg.Chunk,
		}

		// Build once, save, and mmap-load — the production -world-cache
		// lifecycle. The loaded world is file-backed, so neither mode
		// carries the population as resident heap and the peak measures the
		// sweep pipeline alone. (An in-heap world would also slow GC marks
		// to the point where mark-window churn, counted live by
		// allocate-black, drowns the streaming pipeline's real footprint.)
		worldPath := filepath.Join(tmpDir, fmt.Sprintf("world-%.0f.rscw", div))
		built, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / div, Seed: cfg.Seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := built.Save(worldPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		built = nil
		runtime.GC()
		world, _, err := tldsim.LoadWorld(worldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}

		// Whole-day: Setup materializes the day's full target slice and Run
		// keeps every day's snapshot resident until the archive write.
		setup, err := spec.BuildWith(world, nil, 0, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		wholePath := filepath.Join(tmpDir, fmt.Sprintf("whole-%.0f.tsv", div))
		base := heapBaseline()
		hw := watchHeap()
		start := time.Now()
		rs := &scan.ResumableSweep{Setup: setup, Shards: 1}
		store, err := rs.Run(context.Background(), days)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		f, err := os.Create(wholePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := store.WriteArchive(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		entry.WholeWallMs = ms(start)
		entry.WholePeakBytes = hw.Peak(base)
		store = nil
		setup = nil
		fmt.Fprintf(os.Stderr, "sweepscale 1/%.0f: whole-day %d targets × %d days in %.0f ms, peak %.1f MB over a %.1f MB baseline\n",
			div, cfg.Sample, len(days), entry.WholeWallMs, float64(entry.WholePeakBytes)/1e6, float64(base)/1e6)

		// Streaming: same spec and world, chunked cursor scan with
		// spill-to-disk past the budget, archive sections written by k-way
		// merge.
		streamSetup, err := spec.BuildStreamWith(world, nil, 0, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		streamPath := filepath.Join(tmpDir, fmt.Sprintf("stream-%.0f.tsv", div))
		base = heapBaseline()
		hw = watchHeap()
		start = time.Now()
		srs := &scan.ResumableSweep{
			StreamSetup: streamSetup, Shards: 1, Chunk: cfg.Chunk,
			Spill: dataset.SpillOptions{Dir: tmpDir, MemBudget: cfg.MemBudget},
		}
		aw, err := dataset.NewArchiveWriter(streamPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		err = srs.RunStream(context.Background(), days, func(day simtime.Day, sw *dataset.SpillWriter) error {
			return aw.Section(sw)
		})
		if err != nil {
			aw.Abort()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := aw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		entry.StreamWallMs = ms(start)
		entry.StreamPeakBytes = hw.Peak(base)
		streamSetup = nil
		fmt.Fprintf(os.Stderr, "sweepscale 1/%.0f: streaming (chunk %d, budget %.0f MB) in %.0f ms, peak %.1f MB over a %.1f MB baseline\n",
			div, cfg.Chunk, float64(cfg.MemBudget)/1e6, entry.StreamWallMs, float64(entry.StreamPeakBytes)/1e6, float64(base)/1e6)

		whole, err := os.ReadFile(wholePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		streamed, err := os.ReadFile(streamPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		world.Close()
		entry.ByteIdentical = bytes.Equal(whole, streamed)
		if !entry.ByteIdentical {
			fmt.Fprintf(os.Stderr, "sweepscale 1/%.0f: streaming archive DIVERGED from the whole-day archive\n", div)
			ok = false
		}
		if entry.WholePeakBytes > 0 {
			entry.PeakRatio = float64(entry.StreamPeakBytes) / float64(entry.WholePeakBytes)
		}
		// The gate applies at the largest population (the last divisor):
		// small populations fit either way, so their ratio is noise.
		if i == len(cfg.Divisors)-1 && entry.PeakRatio >= sweepscaleMaxPeakRatio {
			fmt.Fprintf(os.Stderr, "sweepscale 1/%.0f: streaming peak is %.2fx the whole-day peak, want < %.2f\n",
				div, entry.PeakRatio, sweepscaleMaxPeakRatio)
			ok = false
		}
		baseline.Entries = append(baseline.Entries, entry)
	}

	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)
	if !ok {
		return 1
	}
	return 0
}
