// Command regsec-bench measures the columnar analytics engine against the
// legacy record-materializing path over a generated world and writes the
// BENCH_colstore.json baseline, so the engine's trajectory is tracked
// across PRs. CI runs it on every push and archives the JSON as an
// artifact.
//
// Usage:
//
//	regsec-bench [-scale 1000] [-seed 1] [-o BENCH_colstore.json] [-compare old.json]
//
// Each workload is benchmarked in its colstore and legacy variants via
// testing.Benchmark; the emitted file carries ns/op, allocs/op, B/op and
// the legacy/colstore speedup per workload. With -compare the run is also
// diffed against a previous baseline and regressions are reported (exit 1
// when a workload slowed by more than 2x, so CI can gate on it).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleDiv := flag.Float64("scale", 1000, "population divisor for the benchmark world")
	seed := flag.Int64("seed", 1, "world seed")
	outPath := flag.String("o", "BENCH_colstore.json", "baseline output path")
	compare := flag.String("compare", "", "previous baseline to diff against")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "building world (scale 1/%.0f, seed %d)...\n", *scaleDiv, *seed)
	world, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / *scaleDiv, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	idx := world.Index()
	fmt.Fprintf(os.Stderr, "population: %d domains, %d operators\n", idx.Len(), idx.Operators())

	// One legacy snapshot for the aggregation oracles, built outside the
	// timed regions.
	legacySnap := world.SnapshotAtLegacy(simtime.End)
	inGTLD := func(r *dataset.Record) bool {
		return r.TLD == "com" || r.TLD == "net" || r.TLD == "org"
	}

	type work struct {
		name string
		fn   func(b *testing.B)
	}
	works := []work{
		{"SnapshotAt/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if snap := world.SnapshotAt(simtime.End); len(snap.Records) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SnapshotAt/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if snap := world.SnapshotAtLegacy(simtime.End); len(snap.Records) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SeriesOVH/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pts := world.SeriesFor("ovh.net", "", simtime.GTLDStart, simtime.End, 1); len(pts) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SeriesOVH/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pts := world.SeriesForLegacy("ovh.net", "", simtime.GTLDStart, simtime.End, 1); len(pts) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"OperatorCDF/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if cdf := idx.OperatorCDF(simtime.End, colstore.ClassAny, "com", "net", "org"); len(cdf) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"OperatorCDF/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if cdf := analysis.OperatorCDF(legacySnap, inGTLD); len(cdf) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"Overview/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ov := idx.Overview(simtime.End, tldsim.AllTLDs); len(ov) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"Overview/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ov := analysis.Overview(legacySnap, tldsim.AllTLDs); len(ov) == 0 {
					b.Fatal("empty")
				}
			}
		}},
	}

	baseline := &colstore.Baseline{
		Schema:       colstore.BaselineSchema,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		ScaleDivisor: *scaleDiv,
		Seed:         *seed,
		Domains:      idx.Len(),
		Operators:    idx.Operators(),
	}
	for _, w := range works {
		r := testing.Benchmark(w.fn)
		res := colstore.BenchResult{
			Name:        w.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		baseline.Benchmarks = append(baseline.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %10d allocs/op %12d B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	baseline.ComputeSpeedups()
	var names []string
	for name := range baseline.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "speedup %-16s %.1fx\n", name, baseline.Speedups[name])
	}

	if err := baseline.WriteFile(*outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)

	if *compare != "" {
		prev, err := colstore.ReadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		prevNs := map[string]float64{}
		for _, r := range prev.Benchmarks {
			prevNs[r.Name] = r.NsPerOp
		}
		regressed := false
		for _, r := range baseline.Benchmarks {
			old, ok := prevNs[r.Name]
			if !ok || old <= 0 {
				continue
			}
			ratio := r.NsPerOp / old
			marker := ""
			if ratio > 2 {
				marker = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(os.Stderr, "vs %s: %-24s %.2fx%s\n", *compare, r.Name, ratio, marker)
		}
		if regressed {
			return 1
		}
	}
	return 0
}
