// Command regsec-bench measures the columnar analytics engine against the
// legacy record-materializing path over a generated world and writes the
// BENCH_colstore.json baseline, so the engine's trajectory is tracked
// across PRs. It also benchmarks the DNS exchange stack — repeated scans
// through the cache+dedup middleware versus the bare retry path — and
// writes BENCH_exchange.json. CI runs both on every push and archives the
// JSON files as artifacts.
//
// Usage:
//
//	regsec-bench [-scale 1000] [-seed 1] [-o BENCH_colstore.json] [-compare old.json]
//	             [-exchange-o BENCH_exchange.json] [-exchange-sample 400] [-exchange-passes 3]
//	             [-dsweep-o BENCH_dsweep.json] [-dsweep-scale 4000] [-dsweep-sample 150] [-dsweep-shards 4]
//	             [-worldscale-o BENCH_worldscale.json] [-worldscale-divisors 4000,400,40]
//	             [-sweepscale-o BENCH_sweepscale.json] [-sweepscale-divisors 400,40] [-sweepscale-sample 120000]
//	             [-api-o BENCH_api.json] [-api-days 6] [-api-domains 3000] [-api-readers 8] [-api-requests 4000]
//
// Each analytics workload is benchmarked in its colstore and legacy
// variants via testing.Benchmark; the emitted file carries ns/op,
// allocs/op, B/op and the legacy/colstore speedup per workload. With
// -compare the run is also diffed against a previous baseline and
// regressions are reported (exit 1 when a workload slowed by more than 2x,
// so CI can gate on it).
//
// The exchange section re-scans one materialized day several times (one
// cold pass, the rest warm) with and without the cache+dedup layers,
// verifying the scan output is identical and gating on the transport-
// exchange reduction (exit 1 below -exchange-min-reduction, default 2x).
//
// The dsweep section runs the coordinator/worker topology at fleet sizes
// 1, 2 and 4 over a shared checkpoint directory, recording wall-clock and
// re-lease counts in BENCH_dsweep.json, then kills a worker mid-shard and
// gates on the recovered archive staying byte-identical (exit 1 on any
// divergence).
//
// The worldscale section (enabled with -worldscale-o) measures the
// streaming sharded world build at each -worldscale-divisors population,
// saves the world to disk, re-loads it, and drives the full 21-month
// snapshot+series+Table 1 workload from the re-loaded world. Where the
// population is small enough it also runs the legacy materialized build
// and gates on the streaming build allocating strictly less (exit 1
// otherwise).
//
// The sweepscale section (enabled with -sweepscale-o) runs the same sweep
// through the whole-day and streaming pipelines at each
// -sweepscale-divisors population, recording wall-clock and peak heap
// over the world-build baseline for both. It gates on the archives
// staying byte-identical at every divisor and on the streaming peak
// staying under half the whole-day peak at the largest population (exit 1
// otherwise).
//
// The api section (enabled with -api-o) runs the observatory daemon
// in-process over a synthetic archive: read QPS and p50/p99 latency
// through the full handler stack while one section is ingested
// concurrently (exit 1 if the ingest does not land mid-run), then the
// shed rate of a two-slot admission gate under flood.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleDiv := flag.Float64("scale", 1000, "population divisor for the benchmark world")
	seed := flag.Int64("seed", 1, "world seed")
	outPath := flag.String("o", "BENCH_colstore.json", "baseline output path")
	compare := flag.String("compare", "", "previous baseline to diff against")
	exchangeOut := flag.String("exchange-o", "BENCH_exchange.json", "exchange-stack baseline output path (empty disables)")
	exchangeSample := flag.Int("exchange-sample", 400, "domains materialized for the exchange benchmark")
	exchangePasses := flag.Int("exchange-passes", 3, "same-day scan passes (first cold, rest warm)")
	exchangeMinReduction := flag.Float64("exchange-min-reduction", 2, "minimum cached/uncached transport-exchange reduction (exit 1 below it)")
	dsweepOut := flag.String("dsweep-o", "BENCH_dsweep.json", "distributed-sweep baseline output path (empty disables)")
	dsweepScale := flag.Float64("dsweep-scale", 4000, "population divisor for the distributed-sweep benchmark world")
	dsweepSample := flag.Int("dsweep-sample", 150, "domains per day in the distributed-sweep benchmark")
	dsweepShards := flag.Int("dsweep-shards", 4, "shards per day in the distributed-sweep benchmark")
	worldscaleOut := flag.String("worldscale-o", "", "world-scale streaming-build baseline output path (empty disables)")
	worldscaleDivisors := flag.String("worldscale-divisors", "4000,400,40", "comma-separated population divisors for the world-scale section")
	sweepscaleOut := flag.String("sweepscale-o", "", "sweep-scale streaming-pipeline baseline output path (empty disables)")
	sweepscaleDivisors := flag.String("sweepscale-divisors", "400,40", "comma-separated population divisors for the sweep-scale section")
	sweepscaleSample := flag.Int("sweepscale-sample", 120000, "targets per day in the sweep-scale section")
	sweepscaleChunk := flag.Int("sweepscale-chunk", 4096, "streaming chunk size in the sweep-scale section")
	sweepscaleBudget := flag.Int("sweepscale-budget", 8, "streaming spill budget in MiB in the sweep-scale section")
	apiOut := flag.String("api-o", "", "observatory-daemon baseline output path (empty disables)")
	apiDays := flag.Int("api-days", 6, "archive sections in the api benchmark")
	apiDomains := flag.Int("api-domains", 3000, "domains per section in the api benchmark")
	apiReaders := flag.Int("api-readers", 8, "concurrent read workers in the api benchmark")
	apiRequests := flag.Int("api-requests", 4000, "read requests in the api benchmark")
	serveOut := flag.String("serve-o", "", "authoritative-serving baseline output path (empty disables)")
	serveSample := flag.Int("serve-sample", 60, "domains materialized for the serving benchmark")
	serveRate := flag.Int("serve-rate", 100000, "open-loop offered QPS in the serving benchmark")
	serveDuration := flag.Duration("serve-duration", 1500*time.Millisecond, "measured window per serving load run")
	serveMinSpeedup := flag.Float64("serve-min-speedup", 5, "minimum warm-fast-path/seed-path handler speedup (exit 1 below it)")
	serveMaxAllocs := flag.Int64("serve-max-allocs", 2, "maximum allocations per warm cache-hit query (exit 1 above it)")
	flag.Parse()

	// The legacy materialized build: its []DomainState is what the
	// */legacy workloads below iterate, so the speedup numbers compare the
	// columnar engine against the true record-at-a-time path.
	fmt.Fprintf(os.Stderr, "building world (scale 1/%.0f, seed %d)...\n", *scaleDiv, *seed)
	world, err := tldsim.BuildLegacy(tldsim.WorldConfig{Scale: 1 / *scaleDiv, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	idx := world.Index()
	fmt.Fprintf(os.Stderr, "population: %d domains, %d operators\n", idx.Len(), idx.Operators())

	// One legacy snapshot for the aggregation oracles, built outside the
	// timed regions.
	legacySnap := world.SnapshotAtLegacy(simtime.End)
	inGTLD := func(r *dataset.Record) bool {
		return r.TLD == "com" || r.TLD == "net" || r.TLD == "org"
	}

	type work struct {
		name string
		fn   func(b *testing.B)
	}
	works := []work{
		{"SnapshotAt/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if snap := world.SnapshotAt(simtime.End); len(snap.Records) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SnapshotAt/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if snap := world.SnapshotAtLegacy(simtime.End); len(snap.Records) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SeriesOVH/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pts := world.SeriesFor("ovh.net", "", simtime.GTLDStart, simtime.End, 1); len(pts) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"SeriesOVH/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if pts := world.SeriesForLegacy("ovh.net", "", simtime.GTLDStart, simtime.End, 1); len(pts) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"OperatorCDF/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if cdf := idx.OperatorCDF(simtime.End, colstore.ClassAny, "com", "net", "org"); len(cdf) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"OperatorCDF/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if cdf := analysis.OperatorCDF(legacySnap, inGTLD); len(cdf) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"Overview/colstore", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ov := idx.Overview(simtime.End, tldsim.AllTLDs); len(ov) == 0 {
					b.Fatal("empty")
				}
			}
		}},
		{"Overview/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ov := analysis.Overview(legacySnap, tldsim.AllTLDs); len(ov) == 0 {
					b.Fatal("empty")
				}
			}
		}},
	}

	baseline := &colstore.Baseline{
		Schema:       colstore.BaselineSchema,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		ScaleDivisor: *scaleDiv,
		Seed:         *seed,
		Domains:      idx.Len(),
		Operators:    idx.Operators(),
	}
	for _, w := range works {
		r := testing.Benchmark(w.fn)
		res := colstore.BenchResult{
			Name:        w.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		baseline.Benchmarks = append(baseline.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %10d allocs/op %12d B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	baseline.ComputeSpeedups()
	var names []string
	for name := range baseline.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "speedup %-16s %.1fx\n", name, baseline.Speedups[name])
	}

	if err := baseline.WriteFile(*outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)

	if *compare != "" {
		prev, err := colstore.ReadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		prevNs := map[string]float64{}
		for _, r := range prev.Benchmarks {
			prevNs[r.Name] = r.NsPerOp
		}
		regressed := false
		for _, r := range baseline.Benchmarks {
			old, ok := prevNs[r.Name]
			if !ok || old <= 0 {
				continue
			}
			ratio := r.NsPerOp / old
			marker := ""
			if ratio > 2 {
				marker = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(os.Stderr, "vs %s: %-24s %.2fx%s\n", *compare, r.Name, ratio, marker)
		}
		if regressed {
			return 1
		}
	}

	if *exchangeOut != "" {
		if code := runExchangeBench(world, exchangeBenchConfig{
			ScaleDivisor: *scaleDiv,
			Seed:         *seed,
			Sample:       *exchangeSample,
			Passes:       *exchangePasses,
			MinReduction: *exchangeMinReduction,
			OutPath:      *exchangeOut,
		}); code != 0 {
			return code
		}
	}
	if *dsweepOut != "" {
		if code := runDsweepBench(dsweepBenchConfig{
			ScaleDivisor: *dsweepScale,
			Seed:         *seed,
			Sample:       *dsweepSample,
			Shards:       *dsweepShards,
			OutPath:      *dsweepOut,
		}); code != 0 {
			return code
		}
	}
	if *worldscaleOut != "" {
		divisors, err := parseDivisors(*worldscaleDivisors)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if code := runWorldscaleBench(worldscaleBenchConfig{
			Seed:     *seed,
			Divisors: divisors,
			OutPath:  *worldscaleOut,
		}); code != 0 {
			return code
		}
	}
	if *sweepscaleOut != "" {
		divisors, err := parseDivisors(*sweepscaleDivisors)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if code := runSweepscaleBench(sweepscaleBenchConfig{
			Seed:      *seed,
			Divisors:  divisors,
			Sample:    *sweepscaleSample,
			Chunk:     *sweepscaleChunk,
			MemBudget: int64(*sweepscaleBudget) << 20,
			OutPath:   *sweepscaleOut,
		}); code != 0 {
			return code
		}
	}
	if *apiOut != "" {
		if code := runAPIBench(apiBenchConfig{
			Days:          *apiDays,
			DomainsPerDay: *apiDomains,
			ReadWorkers:   *apiReaders,
			Requests:      *apiRequests,
			OutPath:       *apiOut,
		}); code != 0 {
			return code
		}
	}
	if *serveOut != "" {
		if code := runServeBench(world, serveBenchConfig{
			ScaleDivisor: *scaleDiv,
			Seed:         *seed,
			Sample:       *serveSample,
			Rate:         *serveRate,
			Duration:     *serveDuration,
			MinSpeedup:   *serveMinSpeedup,
			MaxAllocs:    *serveMaxAllocs,
			OutPath:      *serveOut,
		}); code != 0 {
			return code
		}
	}
	return 0
}

// exchangeBenchConfig parameterizes the exchange-stack benchmark.
type exchangeBenchConfig struct {
	ScaleDivisor float64
	Seed         int64
	Sample       int
	Passes       int
	MinReduction float64
	OutPath      string
}

// exchangeBaseline is the BENCH_exchange.json schema: transport-level
// accounting for the same scan workload through the bare retry path and
// through the cache+dedup stack, plus a synthetic concurrent-duplicate
// workload isolating the dedup layer.
type exchangeBaseline struct {
	Schema       string  `json:"schema"`
	ScaleDivisor float64 `json:"scale_divisor"`
	Seed         int64   `json:"seed"`
	Sample       int     `json:"sample"`
	Passes       int     `json:"passes"`
	Workers      int     `json:"workers"`

	// Uncached and Cached are the cumulative stack counters after all
	// passes of the respective configuration.
	Uncached exchange.Counters `json:"uncached"`
	Cached   exchange.Counters `json:"cached"`
	// TransportReduction is uncached/cached transport exchanges.
	TransportReduction float64 `json:"transport_reduction"`
	// IdenticalOutput records that every cached pass produced the same
	// canonicalized snapshot as its uncached counterpart.
	IdenticalOutput bool `json:"identical_output"`

	// DedupOffExchanges / DedupOnExchanges count transport exchanges for
	// the concurrent-duplicate workload with the dedup layer off and on.
	DedupOffExchanges int64 `json:"dedup_off_exchanges"`
	DedupOnExchanges  int64 `json:"dedup_on_exchanges"`
	DedupCoalesced    int64 `json:"dedup_coalesced"`
}

const exchangeBaselineSchema = "regsec-bench-exchange/1"

// canonicalTSV serializes a snapshot with records in domain order, so
// snapshots from sweeps with different worker interleavings compare equal
// exactly when they observed the same things.
func canonicalTSV(snap *dataset.Snapshot) (string, error) {
	c := &dataset.Snapshot{Day: snap.Day, Records: append([]dataset.Record(nil), snap.Records...)}
	sort.Slice(c.Records, func(i, j int) bool { return c.Records[i].Domain < c.Records[j].Domain })
	var buf bytes.Buffer
	if err := c.WriteTSV(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// runExchangeBench measures the resolve path: the same full-sample scan
// repeated cfg.Passes times over one materialized day, through the bare
// retry-only stack and through cache+dedup. The first cached pass is cold;
// the rest ride the warm cache (same-day re-scans keep it, per the
// scanner's flush-on-day-change contract).
func runExchangeBench(world *tldsim.World, cfg exchangeBenchConfig) int {
	const workers = 8
	fmt.Fprintf(os.Stderr, "exchange bench: materializing %d domains...\n", cfg.Sample)
	domains := world.Sample(cfg.Sample, cfg.Seed)
	day := simtime.End
	mat, err := tldsim.Materialize(day, domains)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	targets := make([]scan.Target, 0, len(domains))
	for _, d := range domains {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}

	run := func(cached bool) ([]string, exchange.Counters, error) {
		sc := scan.Config{
			Exchange:   mat.Net,
			TLDServers: mat.TLDServers,
			Workers:    workers,
			Clock:      func() simtime.Day { return day },
			Retry:      retry.Policy{MaxAttempts: 3},
		}
		if cached {
			sc.Cache = &exchange.CacheOptions{}
			sc.Dedup = true
		}
		s, err := scan.New(sc)
		if err != nil {
			return nil, exchange.Counters{}, err
		}
		var tsvs []string
		for p := 0; p < cfg.Passes; p++ {
			snap, _, err := s.ScanDay(context.Background(), day, targets)
			if err != nil {
				return nil, exchange.Counters{}, err
			}
			tsv, err := canonicalTSV(snap)
			if err != nil {
				return nil, exchange.Counters{}, err
			}
			tsvs = append(tsvs, tsv)
		}
		return tsvs, s.Stack().Counters(), nil
	}

	plainTSVs, plainCounters, err := run(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cachedTSVs, cachedCounters, err := run(true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	identical := true
	for p := range plainTSVs {
		if plainTSVs[p] != cachedTSVs[p] {
			identical = false
			fmt.Fprintf(os.Stderr, "exchange bench: pass %d output DIVERGED between cached and uncached stacks\n", p)
		}
	}
	reduction := 0.0
	if cachedCounters.Transport.Exchanges > 0 {
		reduction = float64(plainCounters.Transport.Exchanges) / float64(cachedCounters.Transport.Exchanges)
	}

	// Dedup in isolation: every worker asks the same question at the same
	// moment, so identical queries are genuinely in flight together — the
	// singleflight case a scan's distinct qnames rarely trigger. The
	// in-memory transport answers in well under a microsecond, which is no
	// in-flight window at all, so it gets a network-realistic RTT.
	dedupRun := func(on bool) (int64, int64) {
		rtt := exchange.Func(func(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
			time.Sleep(200 * time.Microsecond)
			return mat.Net.Exchange(ctx, server, q)
		})
		st, err := exchange.Build(exchange.Options{Transport: rtt, Dedup: on})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 0, 0
		}
		for i, t := range targets {
			server, ok := mat.TLDServers[t.TLD]
			if !ok {
				continue
			}
			start := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					q := dnswire.NewQuery(uint16(w*len(targets)+i), t.Domain, dnswire.TypeNS)
					<-start
					st.Exchange(context.Background(), server, q)
				}(w)
			}
			close(start)
			wg.Wait()
		}
		c := st.Counters()
		return c.Transport.Exchanges, c.Dedup.Hits
	}
	dedupOff, _ := dedupRun(false)
	dedupOn, coalesced := dedupRun(true)

	baseline := &exchangeBaseline{
		Schema:             exchangeBaselineSchema,
		ScaleDivisor:       cfg.ScaleDivisor,
		Seed:               cfg.Seed,
		Sample:             cfg.Sample,
		Passes:             cfg.Passes,
		Workers:            workers,
		Uncached:           plainCounters,
		Cached:             cachedCounters,
		TransportReduction: reduction,
		IdenticalOutput:    identical,
		DedupOffExchanges:  dedupOff,
		DedupOnExchanges:   dedupOn,
		DedupCoalesced:     coalesced,
	}
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "exchange: uncached %d vs cached %d transport exchanges (%.1fx reduction), cache %d/%d hit, dedup coalesced %d/%d\n",
		plainCounters.Transport.Exchanges, cachedCounters.Transport.Exchanges, reduction,
		cachedCounters.Cache.Hits, cachedCounters.Cache.Hits+cachedCounters.Cache.Misses,
		coalesced, dedupOff)
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)

	if !identical {
		return 1
	}
	if reduction < cfg.MinReduction {
		fmt.Fprintf(os.Stderr, "exchange bench: transport reduction %.2fx below the %.1fx gate\n", reduction, cfg.MinReduction)
		return 1
	}
	return 0
}
