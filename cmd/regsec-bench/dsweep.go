package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dsweep"
	"securepki.org/registrarsec/internal/simtime"
)

// dsweepBenchConfig parameterizes the distributed-sweep benchmark.
type dsweepBenchConfig struct {
	ScaleDivisor float64
	Seed         int64
	Sample       int
	Shards       int
	OutPath      string
}

// dsweepFleet is one fleet-size measurement: the same plan drained by N
// in-process workers over a shared checkpoint directory.
type dsweepFleet struct {
	Workers    int     `json:"workers"`
	WallMillis float64 `json:"wall_millis"`
	UnitsDone  int     `json:"units_done"`
	Releases   int     `json:"releases"`
	Duplicates int     `json:"duplicates"`
}

// dsweepBaseline is the BENCH_dsweep.json schema: wall-clock scaling of
// the coordinator/worker topology across fleet sizes, plus a chaos drill
// (a worker killed mid-shard) that must still converge byte-identically.
type dsweepBaseline struct {
	Schema       string  `json:"schema"`
	ScaleDivisor float64 `json:"scale_divisor"`
	Seed         int64   `json:"seed"`
	Sample       int     `json:"sample"`
	Days         int     `json:"days"`
	Shards       int     `json:"shards"`

	Fleets []dsweepFleet `json:"fleets"`
	// ByteIdentical records that every fleet size produced the same merged
	// archive, byte for byte.
	ByteIdentical bool `json:"byte_identical"`

	// Chaos drill: one of two workers is killed before its first durable
	// write; the sweep must finish anyway via re-lease.
	ChaosReleases      int  `json:"chaos_releases"`
	ChaosByteIdentical bool `json:"chaos_byte_identical"`
}

const dsweepBaselineSchema = "regsec-bench-dsweep/1"

// runDsweepBench measures the distributed sweep at fleet sizes 1, 2 and 4,
// then runs the chaos drill. Exit 1 when any fleet or the chaos run
// diverges from the fleet-of-one archive — byte-identity is the product
// contract, so the benchmark gates on it.
func runDsweepBench(cfg dsweepBenchConfig) int {
	spec := &dsweep.WorldSpec{
		ScaleDiv: cfg.ScaleDivisor, Seed: cfg.Seed, Sample: cfg.Sample, Workers: 4,
	}
	days := []simtime.Day{simtime.Date(2016, 6, 1), simtime.End}
	plan := spec.PlanFor(days, cfg.Shards)
	fmt.Fprintf(os.Stderr, "dsweep bench: %d units (%d day(s) × %d shard(s)), sample %d\n",
		plan.Units(), len(plan.Days), plan.Shards, cfg.Sample)

	// Each worker builds its own world and exchange stack from the spec,
	// exactly as a separate regsec-scan -worker process would. The world
	// builds happen outside the timed region: the baseline tracks sweep
	// scaling, not startup cost.
	runFleet := func(n int, chaos map[string]*dsweep.Script, ttl time.Duration) (string, *dsweep.Result, time.Duration, error) {
		dir, err := os.MkdirTemp("", "dsweep-bench-*")
		if err != nil {
			return "", nil, 0, err
		}
		defer os.RemoveAll(dir)
		store, err := checkpoint.Open(dir)
		if err != nil {
			return "", nil, 0, err
		}
		workers := make([]dsweep.WorkerSpec, n)
		for i := range workers {
			name := fmt.Sprintf("w%d", i+1)
			setup, err := spec.Build(nil, 0, nil)
			if err != nil {
				return "", nil, 0, err
			}
			workers[i] = dsweep.WorkerSpec{Name: name, Setup: setup, Chaos: chaos[name]}
		}
		start := time.Now()
		merged, res, err := dsweep.RunLocal(context.Background(), dsweep.LocalConfig{
			Plan: plan, Store: store, LeaseTTL: ttl, Workers: workers,
		})
		wall := time.Since(start)
		if err != nil {
			return "", res, wall, err
		}
		var b strings.Builder
		if err := merged.WriteArchive(&b); err != nil {
			return "", res, wall, err
		}
		return b.String(), res, wall, nil
	}

	baseline := &dsweepBaseline{
		Schema:       dsweepBaselineSchema,
		ScaleDivisor: cfg.ScaleDivisor,
		Seed:         cfg.Seed,
		Sample:       cfg.Sample,
		Days:         len(days),
		Shards:       cfg.Shards,
	}
	var reference string
	baseline.ByteIdentical = true
	for _, n := range []int{1, 2, 4} {
		// A 2s lease keeps the GrantWait retry cadence (TTL/8) short, so
		// the tail — workers idling while the last leases finish — reflects
		// the topology rather than the default 30s production TTL.
		archive, res, wall, err := runFleet(n, nil, 2*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if reference == "" {
			reference = archive
		} else if archive != reference {
			baseline.ByteIdentical = false
			fmt.Fprintf(os.Stderr, "dsweep bench: fleet of %d DIVERGED from the fleet-of-one archive\n", n)
		}
		baseline.Fleets = append(baseline.Fleets, dsweepFleet{
			Workers:    n,
			WallMillis: float64(wall.Microseconds()) / 1000,
			UnitsDone:  res.Stats.Done,
			Releases:   res.Stats.Releases,
			Duplicates: res.Stats.Duplicates,
		})
		fmt.Fprintf(os.Stderr, "dsweep fleet %d: %v wall, %d units, %d re-leased, %d duplicate\n",
			n, wall.Round(time.Millisecond), res.Stats.Done, res.Stats.Releases, res.Stats.Duplicates)
	}

	// Chaos drill: w1 dies before its first durable write; w2 must pick up
	// the expired lease and the archive must not change by a byte.
	chaos := map[string]*dsweep.Script{
		"w1": dsweep.NewScript(dsweep.Event{Claim: 1, Act: dsweep.ActKillBeforeWrite}),
	}
	archive, res, _, err := runFleet(2, chaos, 250*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	baseline.ChaosReleases = res.Stats.Releases
	baseline.ChaosByteIdentical = archive == reference
	if !baseline.ChaosByteIdentical {
		fmt.Fprintln(os.Stderr, "dsweep bench: chaos run DIVERGED from the clean archive")
	}
	fmt.Fprintf(os.Stderr, "dsweep chaos: %d re-leased after mid-shard kill, byte-identical=%v\n",
		res.Stats.Releases, baseline.ChaosByteIdentical)

	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.OutPath)

	if !baseline.ByteIdentical || !baseline.ChaosByteIdentical {
		return 1
	}
	return 0
}
