// Command regsec-report regenerates the paper's measurement artifacts from
// the simulated world: the Table 1 dataset overview, the Figure 3 operator
// CDFs, and the Figure 4-8 time series (as CSV suitable for plotting).
//
// Usage:
//
//	regsec-report [-scale 1000] [-seed 1] -artifact table1|figure3|figure4|figure5|figure6|figure7|figure8|all
//	              [-cpuprofile cpu.prof] [-memprofile mem.prof]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"securepki.org/registrarsec"
	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/profdump"
	"securepki.org/registrarsec/internal/simtime"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleDiv := flag.Float64("scale", 1000, "population divisor")
	seed := flag.Int64("seed", 1, "world seed")
	artifact := flag.String("artifact", "all", "which artifact to produce")
	step := flag.Int("step", 7, "series step in days")
	archive := flag.String("archive", "", "analyze a regsec-scan TSV archive instead of the generative model")
	worldCache := flag.String("world-cache", "", "directory caching built worlds keyed by (seed, scale, config): build once, load many")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profdump.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProfiles()

	if *archive != "" {
		if err := reportArchive(*archive); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	study, err := registrarsec.NewStudy(registrarsec.Options{
		Scale: 1 / *scaleDiv, Seed: *seed, SkipAgents: true,
		WorldCacheDir: *worldCache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	runAll := *artifact == "all"
	did := false

	if runAll || *artifact == "table1" {
		did = true
		fmt.Println("Table 1 — dataset overview at 2016-12-31:")
		fmt.Println(registrarsec.RenderTable1(study.Table1()))
	}
	if runAll || *artifact == "figure3" {
		did = true
		all, partial, full := study.Figure3()
		fmt.Println("Figure 3 — cumulative distribution of gTLD domains by DNS operator:")
		fmt.Printf("  operators: all=%d partial=%d full=%d\n", len(all), len(partial), len(full))
		fmt.Printf("  to cover 50%%: all=%d partial=%d full=%d (paper: 26/4/2)\n",
			registrarsec.OperatorsToCover(all, 0.5),
			registrarsec.OperatorsToCover(partial, 0.5),
			registrarsec.OperatorsToCover(full, 0.5))
		fmt.Println("  rank,cum_all,cum_partial,cum_full")
		for _, rank := range []int{1, 2, 4, 10, 26, 100, 1000} {
			fmt.Printf("  %d,%.3f,%.3f,%.3f\n", rank,
				cumAt(all, rank), cumAt(partial, rank), cumAt(full, rank))
		}
		fmt.Println()
	}

	series := func(title, op, tld string, from registrarsec.Day) {
		pts := study.Series(op, tld, from, simtime.End, *step)
		fmt.Printf("%s (%s/.%s)\nday,total,pct_dnskey,pct_full\n", title, op, orAll(tld))
		for _, p := range pts {
			fmt.Printf("%s,%d,%.3f,%.3f\n", p.Day, p.Total, p.PctDNSKEY(), p.PctFull())
		}
		fmt.Println()
	}
	if runAll || *artifact == "figure4" {
		did = true
		series("Figure 4 — OVH", "ovh.net", "", simtime.GTLDStart)
		series("Figure 4 — GoDaddy", "domaincontrol.com", "", simtime.GTLDStart)
	}
	if runAll || *artifact == "figure5" {
		did = true
		series("Figure 5 — Loopia .se", "loopia.se", "se", simtime.SEStart)
		series("Figure 5 — Loopia .com", "loopia.se", "com", simtime.GTLDStart)
		series("Figure 5 — KPN .nl", "is.nl", "nl", simtime.NLStart)
		series("Figure 5 — KPN .com", "is.nl", "com", simtime.GTLDStart)
	}
	if runAll || *artifact == "figure6" {
		did = true
		series("Figure 6 — Antagonist .com", "webhostingserver.nl", "com", simtime.GTLDStart)
		series("Figure 6 — Antagonist .nl", "webhostingserver.nl", "nl", simtime.NLStart)
		series("Figure 6 — Binero .se", "binero.se", "se", simtime.SEStart)
		series("Figure 6 — Binero .com", "binero.se", "com", simtime.GTLDStart)
	}
	if runAll || *artifact == "figure7" {
		did = true
		series("Figure 7 — PCExtreme .com", "pcextreme.nl", "com", simtime.GTLDStart-20)
		series("Figure 7 — TransIP .com", "transip.net", "com", simtime.GTLDStart)
		series("Figure 7 — TransIP .se", "transip.net", "se", simtime.SEStart)
	}
	if runAll || *artifact == "figure8" {
		did = true
		pts := study.Figure8(*step)
		fmt.Println("Figure 8 — Cloudflare (cloudflare.com)\nday,total,pct_dnskey,pct_ds_given_dnskey")
		for _, p := range pts {
			fmt.Printf("%s,%d,%.3f,%.3f\n", p.Day, p.Total, p.PctDNSKEY(), p.PctDSGivenDNSKEY())
		}
		fmt.Println()
	}
	if !did {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *artifact)
		return 2
	}
	return 0
}

// reportArchive summarizes a scan archive: per-day overview plus the
// operator CDFs of the final day. Checksummed archives (sections carrying
// an #end trailer) are read through the salvaging reader, which quarantines
// corrupted sections and reports them instead of mis-parsing; plain TSV
// archives from older regsec-scan builds still read directly.
func reportArchive(path string) error {
	store, err := readAnyArchive(path)
	if err != nil {
		return err
	}
	if store.Len() == 0 {
		return fmt.Errorf("archive %s contains no snapshots", path)
	}
	tlds := map[string]bool{}
	for _, day := range store.Days() {
		snap := store.Get(day)
		for i := range snap.Records {
			tlds[snap.Records[i].TLD] = true
		}
	}
	var order []string
	for tld := range tlds {
		order = append(order, tld)
	}
	sort.Strings(order)
	for _, day := range store.Days() {
		snap := store.Get(day)
		fmt.Printf("snapshot %s (%d records):\n", day, len(snap.Records))
		for _, row := range analysis.Overview(snap, order) {
			fmt.Printf("  .%-4s %8d domains  %6.2f%% DNSKEY  %6.2f%% full  %6.2f%% partial\n",
				row.TLD, row.Domains, row.PctDNSKEY, row.PctFull, row.PctPartial)
		}
	}
	final := store.Latest()
	all := analysis.OperatorCDF(final, analysis.All)
	full := analysis.OperatorCDF(final, analysis.FullyDeployed)
	fmt.Printf("final day: %d operators; 50%% coverage needs %d (all) / %d (full)\n",
		len(all), analysis.OperatorsToCover(all, 0.5), analysis.OperatorsToCover(full, 0.5))
	return nil
}

// readAnyArchive loads either archive flavor, sniffing for the checksummed
// format's trailer lines.
func readAnyArchive(path string) (*dataset.Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.Contains(data, []byte("\n#end\t")) && !bytes.HasPrefix(data, []byte("#end\t")) {
		return dataset.ReadTSV(bytes.NewReader(data))
	}
	store, report, err := dataset.ReadArchive(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if !report.Clean() {
		fmt.Fprintf(os.Stderr, "warning: %s\n", report)
		for _, c := range report.Quarantined {
			fmt.Fprintf(os.Stderr, "  quarantined %s (line %d): %s\n", c.Day, c.Line, c.Reason)
		}
	}
	return store, nil
}

func cumAt(cdf []registrarsec.CDFPoint, rank int) float64 {
	return analysis.CoverageOfTop(cdf, rank)
}

func orAll(tld string) string {
	if tld == "" {
		return "all"
	}
	return tld
}
