// Command regsec-server serves a zone file authoritatively over UDP and
// TCP, optionally DNSSEC-signing it on load. When signing, it prints the DS
// record to hand to the parent zone — the record this whole study is about.
//
// Usage:
//
//	regsec-server -origin example.com -zone example.zone -addr 127.0.0.1:5300 -sign [-drain 5s]
//
// With no -zone argument a small demonstration zone is generated. On
// SIGINT/SIGTERM the server drains: in-flight queries get their answers,
// new ones are refused, and after the -drain deadline any stragglers are
// cut off.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

func main() {
	origin := flag.String("origin", "example.com", "zone origin")
	zonePath := flag.String("zone", "", "zone file (master format); generated demo zone when empty")
	addr := flag.String("addr", "127.0.0.1:5300", "listen address (UDP and TCP)")
	sign := flag.Bool("sign", false, "DNSSEC-sign the zone on load")
	nsec := flag.Bool("nsec", false, "add an NSEC chain when signing")
	algName := flag.String("alg", "ed25519", "signing algorithm: rsa, ecdsa, ed25519")
	drain := flag.Duration("drain", 5*time.Second, "grace period for in-flight queries on shutdown")
	shards := flag.Int("shards", 0, "zone shards (0 = default)")
	cacheEntries := flag.Int("cache", 0, "wire response cache entries (0 = default, negative disables)")
	legacy := flag.Bool("legacy", false, "serve through the goroutine-per-packet path with no wire cache")
	flag.Parse()

	z, err := loadZone(*zonePath, *origin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *sign {
		alg, err := parseAlg(*algName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		signer, err := zone.NewSigner(alg, time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		signer.AddNSEC = *nsec
		if err := signer.Sign(z); err != nil {
			fmt.Fprintf(os.Stderr, "signing: %v\n", err)
			os.Exit(1)
		}
		dss, err := signer.DSRecords(z.Origin, dnswire.DigestSHA256)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("zone signed with %v; give this DS record to your registrar:\n", alg)
		for _, ds := range dss {
			fmt.Printf("  %s. IN DS %s\n", z.Origin, ds)
		}
	}

	var handler dnsserver.Handler
	var sharded *dnsserver.Sharded
	if *legacy {
		auth := dnsserver.NewAuthoritative()
		auth.AddZone(z)
		handler = auth
	} else {
		sharded = dnsserver.NewSharded(dnsserver.ShardedConfig{
			ZoneShards:   *shards,
			CacheEntries: *cacheEntries,
		})
		sharded.AddZone(z)
		handler = sharded
	}
	srv := &dnsserver.Server{Handler: handler, Legacy: *legacy}
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("serving %s (%d records) on %s (udp+tcp)\n", present(z.Origin), z.Len(), srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	fmt.Fprintf(os.Stderr, "shutting down: draining in-flight queries (up to %v)...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain deadline hit; %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries (%d wire-cache hits, %d slow path, %d dropped, %d malformed)\n",
		st.Queries, st.CacheHits, st.SlowPath, st.Dropped, st.Malformed)
	if sharded != nil {
		cs := sharded.CacheStats()
		fmt.Fprintf(os.Stderr, "wire cache: %d entries, %d fills, %d flushed, %d rejected\n",
			cs.Entries, cs.Fills, cs.Flushed, cs.Rejected)
	}
	fmt.Fprintln(os.Stderr, "all in-flight queries answered; bye")
}

func loadZone(path, origin string) (*zone.Zone, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return zone.Parse(f, origin)
	}
	origin = dnswire.CanonicalName(origin)
	z := zone.New(origin)
	z.MustAdd(dnswire.NewRR(origin, 3600, &dnswire.SOA{
		MName: "ns1." + origin, RName: "hostmaster." + origin,
		Serial: uint32(time.Now().Unix()), Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR(origin, 3600, &dnswire.NS{Host: "ns1." + origin}))
	z.MustAdd(dnswire.NewRR("ns1."+origin, 300, &dnswire.A{Addr: netip.MustParseAddr("127.0.0.1")}))
	z.MustAdd(dnswire.NewRR(origin, 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.10")}))
	z.MustAdd(dnswire.NewRR("www."+origin, 300, &dnswire.A{Addr: netip.MustParseAddr("203.0.113.10")}))
	z.MustAdd(dnswire.NewRR(origin, 300, &dnswire.TXT{Strings: []string{"served by regsec-server"}}))
	return z, nil
}

func parseAlg(name string) (dnswire.Algorithm, error) {
	switch strings.ToLower(name) {
	case "rsa", "rsasha256":
		return dnswire.AlgRSASHA256, nil
	case "ecdsa", "p256":
		return dnswire.AlgECDSAP256SHA256, nil
	case "ed25519":
		return dnswire.AlgED25519, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (rsa, ecdsa, ed25519)", name)
}

func present(origin string) string {
	if origin == "" {
		return "."
	}
	return origin + "."
}
