// Command regsec-loadgen drives DNS query load against a regsec
// authoritative server over real UDP and reports throughput and latency
// percentiles.
//
// With no -addr it is self-contained: it builds (or loads from -world-cache)
// a simulated world, materializes a day of signed TLD zones, installs them
// into a Sharded handler behind a real Server on loopback, and measures
// that. With -addr it drives an already-running server (for example
// regsec-server) and builds the same query mix from the same world seed, so
// both sides agree on what names exist.
//
// Closed-loop mode (-mode closed) reports the server's sustainable service
// rate; open-loop mode (-mode open -rate N) offers load at a fixed rate and
// reports honest latency percentiles under that load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/loadgen"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
	"securepki.org/registrarsec/internal/zone"
)

type report struct {
	Addr       string                 `json:"addr"`
	SelfServe  bool                   `json:"self_serve"`
	Legacy     bool                   `json:"legacy,omitempty"`
	Domains    int                    `json:"domains"`
	Queries    int                    `json:"query_mix"`
	DORatio    float64                `json:"do_ratio"`
	Types      string                 `json:"types"`
	Result     loadgen.Result         `json:"result"`
	Server     *dnsserver.ServerStats `json:"server,omitempty"`
	Cache      *dnsserver.CacheStats  `json:"cache,omitempty"`
	BuildSecs  float64                `json:"build_secs,omitempty"`
	WorldScale float64                `json:"world_scale_divisor,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "target server address (empty: self-serve a materialized world on loopback)")
	scaleDiv := flag.Float64("scale", 20000, "population divisor for the query-mix world")
	sample := flag.Int("sample", 120, "domains sampled from the world for the query mix")
	worldCache := flag.String("world-cache", "", "world cache directory (reused across runs)")
	seed := flag.Int64("seed", 1, "world and mix seed")
	conns := flag.Int("conns", 8, "client connections (virtual resolvers)")
	mode := flag.String("mode", "closed", "load model: closed (one outstanding per conn) or open (paced rate)")
	rate := flag.Int("rate", 100000, "offered QPS in open mode")
	ramp := flag.Duration("ramp", 0, "linear rate ramp before the measured window (open mode)")
	duration := flag.Duration("duration", 2*time.Second, "measured window")
	doRatio := flag.Float64("do", 0.3, "fraction of queries carrying the DNSSEC OK bit")
	types := flag.String("types", "NS,DS,SOA,A", "comma-separated query types")
	legacy := flag.Bool("legacy", false, "self-serve through the legacy goroutine-per-packet path with no wire cache (baseline)")
	shards := flag.Int("shards", 0, "zone shards for the self-served handler (0 = default)")
	workers := flag.Int("workers", 0, "UDP worker loops for the self-served server (0 = GOMAXPROCS)")
	outPath := flag.String("o", "", "write the JSON report to this path instead of stdout")
	flag.Parse()

	var qtypes []dnswire.Type
	for _, s := range strings.Split(*types, ",") {
		t, ok := dnswire.TypeFromString(strings.TrimSpace(s))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown query type %q\n", s)
			return 2
		}
		qtypes = append(qtypes, t)
	}

	fmt.Fprintf(os.Stderr, "building world (scale 1/%.0f, seed %d)...\n", *scaleDiv, *seed)
	buildStart := time.Now()
	cfg := tldsim.WorldConfig{Scale: 1 / *scaleDiv, Seed: *seed}
	var world *tldsim.World
	var err error
	if *worldCache != "" {
		world, err = tldsim.BuildCached(*worldCache, cfg)
	} else {
		world, err = tldsim.Build(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	domains := world.Sample(*sample, *seed)
	if len(domains) == 0 {
		fmt.Fprintln(os.Stderr, "world sample is empty; lower -scale")
		return 1
	}
	rep := report{
		SelfServe:  *addr == "",
		Legacy:     *legacy,
		Domains:    len(domains),
		DORatio:    *doRatio,
		Types:      *types,
		WorldScale: *scaleDiv,
	}

	var srv *dnsserver.Server
	var sharded *dnsserver.Sharded
	target := *addr
	if target == "" {
		fmt.Fprintf(os.Stderr, "materializing %d domains at day %d...\n", len(domains), simtime.End)
		mat, err := tldsim.Materialize(simtime.End, domains)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		srv, sharded, err = selfServe(mat, *legacy, *shards, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		target = srv.Addr()
	}
	rep.Addr = target
	rep.BuildSecs = time.Since(buildStart).Seconds()

	// The mix queries the TLD zones: apex sets, delegations and the DS
	// proofs at each cut — the question mix a TLD server actually sees.
	names := make([]string, 0, 2*len(domains))
	for _, d := range domains {
		names = append(names, d.Name, "www."+d.Name)
	}
	mix, err := loadgen.QueryMix(names, qtypes, *doRatio, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rep.Queries = len(mix)

	lcfg := loadgen.Config{
		Addr:     target,
		Queries:  mix,
		Conns:    *conns,
		Duration: *duration,
		Ramp:     *ramp,
		Seed:     *seed,
	}
	switch *mode {
	case "closed":
	case "open":
		lcfg.Mode = loadgen.Open
		lcfg.Rate = *rate
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want closed or open)\n", *mode)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "running %s-loop load against %s for %s...\n", *mode, target, duration)
	res, err := loadgen.Run(ctx, lcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rep.Result = res
	if srv != nil {
		st := srv.Stats()
		rep.Server = &st
	}
	if sharded != nil {
		cst := sharded.CacheStats()
		rep.Cache = &cst
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out = append(out, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	os.Stdout.Write(out)
	fmt.Fprintf(os.Stderr, "qps=%.0f p50=%s p99=%s p999=%s lost=%d\n",
		res.QPS, res.P50, res.P99, res.P999, res.Lost)
	return 0
}

// selfServe collects the materialized TLD zones into one handler behind a
// real Server on an ephemeral loopback port. legacy selects the seed
// goroutine-per-packet path with a plain Authoritative (no wire cache) as
// the benchmark baseline.
func selfServe(mat *tldsim.Materialized, legacy bool, shards, workers int) (*dnsserver.Server, *dnsserver.Sharded, error) {
	var handler dnsserver.Handler
	var sharded *dnsserver.Sharded
	if legacy {
		auth := dnsserver.NewAuthoritative()
		for tld, ns := range mat.TLDServers {
			z := tldZone(mat, tld, ns)
			if z == nil {
				return nil, nil, fmt.Errorf("no zone for TLD %q", tld)
			}
			auth.AddZone(z)
		}
		handler = auth
	} else {
		sharded = dnsserver.NewSharded(dnsserver.ShardedConfig{ZoneShards: shards})
		for tld, ns := range mat.TLDServers {
			z := tldZone(mat, tld, ns)
			if z == nil {
				return nil, nil, fmt.Errorf("no zone for TLD %q", tld)
			}
			sharded.AddZone(z)
		}
		handler = sharded
	}
	srv := &dnsserver.Server{Handler: handler, Legacy: legacy, UDPWorkers: workers}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	return srv, sharded, nil
}

// tldZone digs the signed TLD zone out of the materialized in-memory net:
// Materialize registers one Authoritative per TLD registry nameserver.
func tldZone(mat *tldsim.Materialized, tld, ns string) *zone.Zone {
	auth, ok := mat.Net.Lookup(ns).(*dnsserver.Authoritative)
	if !ok {
		return nil
	}
	return auth.Zone(tld)
}
