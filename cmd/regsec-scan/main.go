// Command regsec-scan materializes a day of the simulated ecosystem as
// real, signed DNS and sweeps it with the OpenINTEL-style scan engine,
// writing one TSV record per domain — the raw dataset every analysis is
// built from.
//
// Usage:
//
//	regsec-scan [-scale 2000] [-seed 1] [-days 2016-06-01,2016-12-31] [-sample 1000] [-workers 16] [-o archive.tsv]
//	            [-retries 3] [-resweeps 2] [-fault-frac 0.5] [-fault-loss 0.2] [-fault-seed 1]
//
// With -o the snapshots are written in the dataset TSV archive format that
// regsec-report -archive can analyze; otherwise records go to stdout. The
// -fault-* flags wrap the materialized network in the fault injector,
// making a configured fraction of DNS operators lossy — a resilience drill
// for the scan path; each day's sweep-health report goes to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

func main() {
	scaleDiv := flag.Float64("scale", 2000, "population divisor (2000 → .com has ~59k domains)")
	seed := flag.Int64("seed", 1, "world seed")
	daysStr := flag.String("days", "2016-12-31", "comma-separated measurement days (YYYY-MM-DD)")
	sample := flag.Int("sample", 1000, "domains to materialize and scan")
	workers := flag.Int("workers", 16, "scan concurrency")
	outPath := flag.String("o", "", "write a TSV snapshot archive instead of stdout records")
	retries := flag.Int("retries", 3, "per-query attempt budget")
	resweeps := flag.Int("resweeps", 2, "re-sweep passes over failed targets (-1 disables)")
	faultFrac := flag.Float64("fault-frac", 0, "fraction of DNS operators made faulty (0 disables injection)")
	faultLoss := flag.Float64("fault-loss", 0.2, "packet-loss probability on faulty operators")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	flag.Parse()

	var days []simtime.Day
	for _, part := range strings.Split(*daysStr, ",") {
		day, err := simtime.Parse(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		days = append(days, day)
	}
	fmt.Fprintf(os.Stderr, "building world (scale 1/%.0f, seed %d)...\n", *scaleDiv, *seed)
	world, err := tldsim.Build(tldsim.WorldConfig{Scale: 1 / *scaleDiv, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	domains := world.Sample(*sample, *seed)
	store := dataset.NewStore()
	start := time.Now()
	var queries int64
	for _, day := range days {
		day := day
		fmt.Fprintf(os.Stderr, "materializing %d domains at %s (real keys, real signatures)...\n", len(domains), day)
		mat, err := tldsim.Materialize(day, domains)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var exchange dnsserver.Exchanger = mat.Net
		if *faultFrac > 0 {
			rules, faulty := tldsim.LossyOperators(domains, *faultFrac, *faultLoss, *faultSeed)
			exchange = faultnet.New(mat.Net, *faultSeed, func() simtime.Day { return day }, rules...)
			fmt.Fprintf(os.Stderr, "injecting %.0f%% loss on %d operator(s)\n", *faultLoss*100, len(faulty))
		}
		scanner, err := scan.New(scan.Config{
			Exchange:    exchange,
			TLDServers:  mat.TLDServers,
			Workers:     *workers,
			Clock:       func() simtime.Day { return day },
			Retry:       retry.Policy{MaxAttempts: *retries},
			MaxResweeps: *resweeps,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		targets := make([]scan.Target, 0, len(domains))
		for _, d := range domains {
			targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
		}
		snap, health, err := scanner.ScanDay(context.Background(), day, targets)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, health)
		store.Add(snap)
		queries += scanner.Queries()
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := store.WriteTSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d snapshot(s) to %s\n", store.Len(), *outPath)
	} else {
		fmt.Println("#domain\ttld\toperator\tns\tdnskey\trrsig\tds\tvalid\tclass")
		for _, day := range store.Days() {
			snap := store.Get(day)
			for i := range snap.Records {
				r := &snap.Records[i]
				class := r.Deployment().String()
				if r.Failed {
					class = "unmeasured(" + r.FailReason + ")"
				}
				fmt.Printf("%s\t%s\t%s\t%s\t%v\t%v\t%v\t%v\t%s\n",
					r.Domain, r.TLD, r.Operator, strings.Join(r.NSHosts, ","),
					r.HasDNSKEY, r.HasRRSIG, r.HasDS, r.ChainValid, class)
			}
		}
	}
	total := 0
	for _, day := range store.Days() {
		total += len(store.Get(day).Records)
	}
	fmt.Fprintf(os.Stderr, "scanned %d records across %d day(s) in %v (%d DNS queries)\n",
		total, store.Len(), time.Since(start).Round(time.Millisecond), queries)
}
