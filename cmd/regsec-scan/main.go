// Command regsec-scan materializes a day of the simulated ecosystem as
// real, signed DNS and sweeps it with the OpenINTEL-style scan engine,
// writing one TSV record per domain — the raw dataset every analysis is
// built from.
//
// Usage:
//
//	regsec-scan [-scale 2000] [-seed 1] [-days 2016-06-01,2016-12-31] [-sample 1000] [-workers 16] [-o archive.tsv]
//	            [-retries 3] [-resweeps 2] [-fault-frac 0.5] [-fault-loss 0.2] [-fault-seed 1]
//	            [-cache] [-dedup] [-world-cache worlds/]
//	            [-checkpoint-dir state/] [-resume] [-shards 4]
//	            [-chunk 4096] [-mem-budget 256] [-spill-dir /scratch]
//	            [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
//	regsec-scan -worker http://coordinator:7353 -checkpoint-dir state/
//	            [-name w1] [-fault-profile vantage.txt] [-vantage-seed 1]
//
// The second form joins a distributed sweep as a worker: the sweep plan
// (days, sample, world, sharding) comes from a regsec-sweepd coordinator,
// so the plan-shaping flags of the first form are rejected. The worker
// claims (day, shard) leases, scans them through its own exchange stack,
// flushes checksummed shard archives into the shared -checkpoint-dir, and
// heartbeats while working; killing it at any instant is safe — the
// coordinator re-leases its unit. -fault-profile overlays this worker's
// own vantage-point fault rules (see faultnet.ParseProfile) without
// affecting the sweep plan.
//
// With -o the snapshots are written as a checksummed TSV archive (each
// day's section carries a length+CRC trailer) that regsec-report -archive
// can analyze and salvage; otherwise records go to stdout. The -fault-*
// flags wrap the materialized network in the fault injector, making a
// configured fraction of DNS operators lossy — a resilience drill for the
// scan path; each day's sweep-health report goes to stderr.
//
// Long sweeps are crash-safe when -checkpoint-dir is set: every completed
// shard is durably checkpointed, and SIGINT/SIGTERM drains the in-flight
// shard's workers and flushes the checkpoint before exiting. Re-running
// with -resume picks up from the last completed shard — finished work is
// verified by checksum, not re-scanned — and the final archive is
// byte-identical to an uninterrupted run.
//
// -chunk switches the sweep to the streaming pipeline for full-.com-scale
// runs: targets come off a cursor in chunks of that many domains, each
// chunk's DNS is materialized (and signed) lazily, completed chunks are
// durably checkpointed, and each day's records flow through a spill-to-disk
// writer bounded by -mem-budget MiB of RAM (run files land in -spill-dir).
// The archive bytes are identical to the whole-day pipeline's; peak memory
// scales with the chunk, not the day. A resumed streaming sweep re-enters
// the interrupted shard at its first missing chunk; the chunk size is part
// of the checkpoint fingerprint, so -resume with a different -chunk is
// refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dsweep"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/profdump"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

func main() {
	os.Exit(run())
}

func run() int {
	scaleDiv := flag.Float64("scale", 2000, "population divisor (2000 → .com has ~59k domains)")
	seed := flag.Int64("seed", 1, "world seed")
	daysStr := flag.String("days", "2016-12-31", "comma-separated measurement days (YYYY-MM-DD)")
	sample := flag.Int("sample", 1000, "domains to materialize and scan")
	workers := flag.Int("workers", 16, "scan concurrency")
	outPath := flag.String("o", "", "write a checksummed TSV snapshot archive instead of stdout records")
	retries := flag.Int("retries", 3, "per-query attempt budget")
	resweeps := flag.Int("resweeps", 2, "re-sweep passes over failed targets (-1 disables)")
	faultFrac := flag.Float64("fault-frac", 0, "fraction of DNS operators made faulty (0 disables injection)")
	faultLoss := flag.Float64("fault-loss", 0.2, "packet-loss probability on faulty operators")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	useCache := flag.Bool("cache", false, "enable the TTL-respecting response cache in the exchange stack")
	useDedup := flag.Bool("dedup", false, "coalesce concurrent identical queries in the exchange stack")
	worldCache := flag.String("world-cache", "", "directory caching built worlds keyed by (seed, scale, config): build once, load many")
	cpDir := flag.String("checkpoint-dir", "", "directory for durable sweep checkpoints (enables crash-safe resume)")
	resume := flag.Bool("resume", false, "continue from an existing checkpoint in -checkpoint-dir")
	shards := flag.Int("shards", 4, "checkpoint units per day (granularity of resume)")
	chunk := flag.Int("chunk", 0, "streaming pipeline: targets per materialize+scan+flush chunk (0 = whole-day pipeline)")
	memBudget := flag.Int("mem-budget", 0, "streaming pipeline: MiB of records buffered per day before spilling sorted runs to disk (default 256)")
	spillDir := flag.String("spill-dir", "", "streaming pipeline: directory for spill run files (default: system temp dir)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	workerURL := flag.String("worker", "", "join a distributed sweep as a worker of the coordinator at this URL")
	workerName := flag.String("name", "", "worker identity (default hostname-pid); unique per sweep")
	faultProfile := flag.String("fault-profile", "", "vantage-point fault profile file for this worker (worker mode only)")
	vantageSeed := flag.Int64("vantage-seed", 1, "seed for the vantage-point fault schedule (worker mode only)")
	flag.Parse()

	// Reject contradictory flag combinations before any work starts.
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProfiles, err := profdump.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProfiles()

	if *workerURL != "" {
		return runWorker(*workerURL, *workerName, *cpDir, *faultProfile, *vantageSeed)
	}

	var days []simtime.Day
	for _, part := range strings.Split(*daysStr, ",") {
		day, err := simtime.Parse(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		days = append(days, day)
	}

	var cp *checkpoint.Store
	if *cpDir != "" {
		cp, err = checkpoint.Open(*cpDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if cp.Exists() && !*resume {
			fmt.Fprintf(os.Stderr, "checkpoint already present in %s: pass -resume to continue it, or remove the directory to start over\n", *cpDir)
			return 2
		}
		if !cp.Exists() && *resume {
			fmt.Fprintf(os.Stderr, "no checkpoint in %s; starting a fresh sweep\n", *cpDir)
		}
	}

	worldCfg := tldsim.WorldConfig{Scale: 1 / *scaleDiv, Seed: *seed}
	var world *tldsim.World
	if *worldCache != "" {
		fmt.Fprintf(os.Stderr, "world cache %s (scale 1/%.0f, seed %d, key %s)...\n",
			*worldCache, *scaleDiv, *seed, worldCfg.Fingerprint())
		world, err = tldsim.BuildCached(*worldCache, worldCfg)
	} else {
		fmt.Fprintf(os.Stderr, "building world (scale 1/%.0f, seed %d)...\n", *scaleDiv, *seed)
		world, err = tldsim.Build(worldCfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	src := world.SampleSource(*sample, *seed)

	// The fingerprint binds a checkpoint to everything that shapes the
	// sweep's output, so a stale or mismatched checkpoint is refused
	// instead of silently mixed into a different configuration. The chunk
	// size shapes the durable chunk files a streaming resume trusts, so it
	// joins the fingerprint too: -resume under a different -chunk is
	// refused instead of fabricating a day out of incompatible pieces.
	fingerprint := fmt.Sprintf("scale=%g seed=%d days=%s sample=%d shards=%d faults=%g/%g/%d retries=%d resweeps=%d",
		*scaleDiv, *seed, *daysStr, *sample, *shards, *faultFrac, *faultLoss, *faultSeed, *retries, *resweeps)
	if *chunk > 0 {
		fingerprint += fmt.Sprintf(" chunk=%d", *chunk)
	}

	// SIGINT/SIGTERM cancel the sweep context: workers drain, the partial
	// shard is discarded, and the checkpoint is flushed before we exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var scanners []*scan.Scanner
	rs := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: fingerprint,
		Shards:      *shards,
		OnDayHealth: func(day simtime.Day, h *scan.SweepHealth) {
			fmt.Fprintln(os.Stderr, h)
		},
		OnEvent: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	if *chunk > 0 {
		rs.Chunk = *chunk
		rs.Spill = dataset.SpillOptions{Dir: *spillDir, MemBudget: int64(*memBudget) << 20}
		rs.StreamSetup = func(ctx context.Context, day simtime.Day) (*scan.Scanner, scan.TargetSource, scan.ChunkPrepare, error) {
			fmt.Fprintf(os.Stderr, "streaming %d domains at %s in chunks of %d (lazy materialization)...\n", src.Len(), day, *chunk)
			sm := tldsim.NewStreamMaterializer(day, src)
			var mw []exchange.Middleware
			if *faultFrac > 0 {
				rules, faulty := tldsim.LossyOperatorsSource(src, *faultFrac, *faultLoss, *faultSeed)
				inj := faultnet.New(nil, *faultSeed, func() simtime.Day { return day }, rules...)
				mw = append(mw, inj.Middleware())
				fmt.Fprintf(os.Stderr, "injecting %.0f%% loss on %d operator(s)\n", *faultLoss*100, len(faulty))
			}
			var cacheOpts *exchange.CacheOptions
			if *useCache {
				cacheOpts = &exchange.CacheOptions{}
			}
			scanner, err := scan.New(scan.Config{
				Exchange:    sm,
				Middleware:  mw,
				Dedup:       *useDedup,
				Cache:       cacheOpts,
				TLDServers:  sm.TLDServers,
				Workers:     *workers,
				Clock:       func() simtime.Day { return day },
				Retry:       retry.Policy{MaxAttempts: *retries},
				MaxResweeps: *resweeps,
			})
			if err != nil {
				return nil, nil, nil, err
			}
			scanners = append(scanners, scanner)
			prepare := func(ctx context.Context, lo, hi int) error {
				// Each chunk's materialization signs with fresh keys, so
				// answers cached from the previous chunk must not survive
				// into this one.
				if *useCache {
					scanner.Stack().FlushCache()
				}
				return sm.Prepare(ctx, lo, hi)
			}
			return scanner, src, prepare, nil
		}
		total, code := runStreamOut(ctx, rs, days, *outPath, cp, *cpDir)
		if code != 0 {
			return code
		}
		reportTotals(scanners, total, len(days), start)
		return 0
	}

	domains := tldsim.Domains(src)
	targets := make([]scan.Target, 0, len(domains))
	for _, d := range domains {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	rs.Setup = func(ctx context.Context, day simtime.Day) (*scan.Scanner, []scan.Target, error) {
		fmt.Fprintf(os.Stderr, "materializing %d domains at %s (real keys, real signatures)...\n", len(domains), day)
		mat, err := tldsim.Materialize(day, domains)
		if err != nil {
			return nil, nil, err
		}
		var mw []exchange.Middleware
		if *faultFrac > 0 {
			rules, faulty := tldsim.LossyOperators(domains, *faultFrac, *faultLoss, *faultSeed)
			inj := faultnet.New(nil, *faultSeed, func() simtime.Day { return day }, rules...)
			mw = append(mw, inj.Middleware())
			fmt.Fprintf(os.Stderr, "injecting %.0f%% loss on %d operator(s)\n", *faultLoss*100, len(faulty))
		}
		var cacheOpts *exchange.CacheOptions
		if *useCache {
			cacheOpts = &exchange.CacheOptions{}
		}
		scanner, err := scan.New(scan.Config{
			Exchange:    mat.Net,
			Middleware:  mw,
			Dedup:       *useDedup,
			Cache:       cacheOpts,
			TLDServers:  mat.TLDServers,
			Workers:     *workers,
			Clock:       func() simtime.Day { return day },
			Retry:       retry.Policy{MaxAttempts: *retries},
			MaxResweeps: *resweeps,
		})
		if err != nil {
			return nil, nil, err
		}
		scanners = append(scanners, scanner)
		return scanner, targets, nil
	}
	store, err := rs.Run(ctx, days)
	if err != nil {
		if errors.Is(err, context.Canceled) && cp != nil {
			fmt.Fprintf(os.Stderr, "interrupted; checkpoint saved in %s — re-run with -resume to continue\n", *cpDir)
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *outPath != "" {
		if err := store.WriteArchiveFile(*outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d snapshot(s) to %s\n", store.Len(), *outPath)
	} else {
		fmt.Println("#domain\ttld\toperator\tns\tdnskey\trrsig\tds\tvalid\tclass")
		for _, day := range store.Days() {
			snap := store.Get(day)
			for i := range snap.Records {
				printRecord(&snap.Records[i])
			}
		}
	}
	// The archive is safely on disk; the checkpoint has served its purpose.
	if cp != nil {
		if err := cp.Clear(); err != nil {
			fmt.Fprintf(os.Stderr, "clearing checkpoint: %v\n", err)
		}
	}
	total := 0
	for _, day := range store.Days() {
		total += len(store.Get(day).Records)
	}
	reportTotals(scanners, total, store.Len(), start)
	return 0
}

// printRecord writes one stdout TSV line in the record format shared by
// the whole-day and streaming output paths.
func printRecord(r *dataset.Record) {
	class := r.Deployment().String()
	if r.Failed {
		class = "unmeasured(" + r.FailReason + ")"
	}
	fmt.Printf("%s\t%s\t%s\t%s\t%v\t%v\t%v\t%v\t%s\n",
		r.Domain, r.TLD, r.Operator, strings.Join(r.NSHosts, ","),
		r.HasDNSKEY, r.HasRRSIG, r.HasDS, r.ChainValid, class)
}

// reportTotals prints the sweep's closing stderr summary.
func reportTotals(scanners []*scan.Scanner, total, days int, start time.Time) {
	var queries int64
	var stackTotals exchange.Counters
	for _, s := range scanners {
		queries += s.Queries()
		stackTotals = stackTotals.Add(s.Stack().Counters())
	}
	fmt.Fprintf(os.Stderr, "scanned %d records across %d day(s) in %v (%d DNS queries)\n",
		total, days, time.Since(start).Round(time.Millisecond), queries)
	fmt.Fprintf(os.Stderr, "exchange stack: %s\n", stackTotals)
}

// runStreamOut drives the streaming sweep and its output path: day
// sections flow straight from each day's spill writer into a streamed
// archive with -o, or through a sorted-record stdout printer without. It
// returns the record total and the process exit code.
func runStreamOut(ctx context.Context, rs *scan.ResumableSweep, days []simtime.Day, outPath string, cp *checkpoint.Store, cpDir string) (int, int) {
	total := 0
	var aw *dataset.ArchiveWriter
	var sink scan.DaySink
	if outPath != "" {
		var err error
		aw, err = dataset.NewArchiveWriter(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 0, 1
		}
		sink = func(day simtime.Day, sw *dataset.SpillWriter) error {
			total += sw.Len()
			return aw.Section(sw)
		}
	} else {
		fmt.Println("#domain\ttld\toperator\tns\tdnskey\trrsig\tds\tvalid\tclass")
		sink = func(day simtime.Day, sw *dataset.SpillWriter) error {
			total += sw.Len()
			return sw.EachSorted(func(r *dataset.Record) error {
				printRecord(r)
				return nil
			})
		}
	}
	if err := rs.RunStream(ctx, days, sink); err != nil {
		if aw != nil {
			aw.Abort()
		}
		if errors.Is(err, context.Canceled) && cp != nil {
			fmt.Fprintf(os.Stderr, "interrupted; checkpoint saved in %s — re-run with -resume to continue\n", cpDir)
			return total, 130
		}
		fmt.Fprintln(os.Stderr, err)
		return total, 1
	}
	if aw != nil {
		if err := aw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return total, 1
		}
		fmt.Fprintf(os.Stderr, "wrote %d snapshot(s) to %s\n", len(days), outPath)
	}
	// The archive is safely on disk; the checkpoint has served its purpose.
	if cp != nil {
		if err := cp.Clear(); err != nil {
			fmt.Fprintf(os.Stderr, "clearing checkpoint: %v\n", err)
		}
	}
	return total, 0
}

// planFlags are the flags that shape a sweep's output. In worker mode the
// plan comes from the coordinator, so setting any of them locally would
// silently disagree with every other participant — reject instead.
var planFlags = []string{
	"scale", "seed", "days", "sample", "shards", "workers", "o", "retries",
	"resweeps", "cache", "dedup", "fault-frac", "fault-loss", "fault-seed",
	"resume", "world-cache", "chunk",
}

// workerOnlyFlags only have meaning when joining a coordinator.
var workerOnlyFlags = []string{"name", "fault-profile", "vantage-seed"}

// streamLocalFlags tune the local streaming pipeline's spill writer. They
// require -chunk, and have no meaning in worker mode, where completed
// chunks go to the shared checkpoint directory instead of a local spill.
var streamLocalFlags = []string{"mem-budget", "spill-dir"}

// validateFlags rejects contradictory combinations of explicitly set
// flags with errors that say which flag to drop or where to set it.
func validateFlags(set map[string]bool) error {
	if set["worker"] {
		var bad []string
		for _, f := range planFlags {
			if set[f] {
				bad = append(bad, "-"+f)
			}
		}
		if len(bad) > 0 {
			return fmt.Errorf("-worker mode takes the sweep plan from the coordinator: drop %s here and set them on regsec-sweepd instead",
				strings.Join(bad, ", "))
		}
		for _, f := range streamLocalFlags {
			if set[f] {
				return fmt.Errorf("-%s does not apply to -worker mode: workers flush chunks into the shared -checkpoint-dir, not a local spill", f)
			}
		}
		if !set["checkpoint-dir"] {
			return fmt.Errorf("-worker requires -checkpoint-dir: the shard store shared with the coordinator")
		}
		return nil
	}
	for _, f := range streamLocalFlags {
		if set[f] && !set["chunk"] {
			return fmt.Errorf("-%s only applies to the streaming pipeline (pass -chunk with the targets-per-chunk size)", f)
		}
	}
	for _, f := range workerOnlyFlags {
		if set[f] {
			return fmt.Errorf("-%s only applies to -worker mode (pass -worker with the coordinator URL)", f)
		}
	}
	if set["resume"] && !set["checkpoint-dir"] {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	return nil
}

// runWorker joins a distributed sweep: fetch the plan, rebuild the world
// from its spec, and claim leases until the coordinator says done.
func runWorker(url, name, cpDir, profilePath string, vantageSeed int64) int {
	eventf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &dsweep.Client{Base: url}
	plan, err := client.FetchPlan(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if plan.Spec == nil {
		fmt.Fprintln(os.Stderr, "coordinator's plan carries no world spec; it was not started by regsec-sweepd")
		return 1
	}
	var vantage []faultnet.Rule
	if profilePath != "" {
		data, err := os.ReadFile(profilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if vantage, err = faultnet.ParseProfile(string(data)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "vantage profile: %d fault rule(s) from %s\n", len(vantage), profilePath)
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "worker %s joining sweep %q (%d day(s) × %d shard(s))\n",
		name, plan.Fingerprint, len(plan.Days), plan.Shards)

	// A chunked plan puts every worker on the streaming path: shards are
	// scanned chunk by chunk with each chunk durably flushed, so killing
	// this process mid-shard only costs the chunk in flight.
	cfg := dsweep.WorkerConfig{Name: name, Coord: client, OnEvent: eventf}
	if plan.Chunk > 0 {
		fmt.Fprintf(os.Stderr, "plan is chunked: streaming shards in chunks of %d targets\n", plan.Chunk)
		cfg.StreamSetup, err = plan.Spec.BuildStream(vantage, vantageSeed, eventf)
	} else {
		cfg.Setup, err = plan.Spec.Build(vantage, vantageSeed, eventf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cfg.Store, err = checkpoint.Open(cpDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	w, err := dsweep.NewWorker(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := w.Run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "worker %s interrupted; its in-flight lease will expire and be re-leased\n", name)
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "worker %s done: plan complete\n", name)
	return 0
}
