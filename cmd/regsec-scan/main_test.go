package main

import (
	"strings"
	"testing"
)

// setOf models "these flags were explicitly passed on the command line".
func setOf(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		want string // substring of the error, "" for accept
	}{
		{"bare scan", setOf(), ""},
		{"plain sweep", setOf("days", "sample", "o", "fault-frac"), ""},
		{"resume with dir", setOf("resume", "checkpoint-dir"), ""},
		{"resume without dir", setOf("resume"), "-resume requires -checkpoint-dir"},
		{"worker minimal", setOf("worker", "checkpoint-dir"), ""},
		{"worker with vantage", setOf("worker", "checkpoint-dir", "name", "fault-profile", "vantage-seed"), ""},
		{"worker with profiling", setOf("worker", "checkpoint-dir", "cpuprofile", "memprofile"), ""},
		{"worker without dir", setOf("worker"), "requires -checkpoint-dir"},
		{"worker with plan flags", setOf("worker", "checkpoint-dir", "days", "sample"), "set them on regsec-sweepd"},
		{"worker with output", setOf("worker", "checkpoint-dir", "o"), "-o"},
		{"worker with resume", setOf("worker", "checkpoint-dir", "resume"), "-resume"},
		{"worker with world cache", setOf("worker", "checkpoint-dir", "world-cache"), "-world-cache"},
		{"name without worker", setOf("name"), "only applies to -worker"},
		{"fault-profile without worker", setOf("fault-profile", "checkpoint-dir"), "only applies to -worker"},
		{"vantage-seed without worker", setOf("vantage-seed"), "only applies to -worker"},
		{"streaming sweep", setOf("chunk", "mem-budget", "spill-dir", "o"), ""},
		{"chunked resume", setOf("chunk", "resume", "checkpoint-dir"), ""},
		{"mem-budget without chunk", setOf("mem-budget"), "-mem-budget only applies to the streaming pipeline"},
		{"spill-dir without chunk", setOf("spill-dir", "o"), "-spill-dir only applies to the streaming pipeline"},
		{"worker with chunk", setOf("worker", "checkpoint-dir", "chunk"), "set them on regsec-sweepd"},
		{"worker with spill-dir", setOf("worker", "checkpoint-dir", "spill-dir"), "does not apply to -worker mode"},
		{"worker with mem-budget", setOf("worker", "checkpoint-dir", "mem-budget"), "does not apply to -worker mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.set)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Every flag name validateFlags special-cases must actually exist, or the
// message would tell the user about a flag that isn't there.
func TestValidateFlagNamesExist(t *testing.T) {
	known := setOf("scale", "seed", "days", "sample", "workers", "o",
		"retries", "resweeps", "fault-frac", "fault-loss", "fault-seed",
		"cache", "dedup", "checkpoint-dir", "resume", "shards",
		"cpuprofile", "memprofile", "worker", "name", "fault-profile",
		"vantage-seed", "world-cache", "chunk", "mem-budget", "spill-dir")
	for _, f := range planFlags {
		if !known[f] {
			t.Errorf("planFlags references unknown flag %q", f)
		}
	}
	for _, f := range workerOnlyFlags {
		if !known[f] {
			t.Errorf("workerOnlyFlags references unknown flag %q", f)
		}
	}
	for _, f := range streamLocalFlags {
		if !known[f] {
			t.Errorf("streamLocalFlags references unknown flag %q", f)
		}
	}
}
