// Command regsec-check is a DNSViz-style DNSSEC health checker: it pulls a
// domain's delegation, DS, DNSKEY and RRSIG records and reports every
// misconfiguration in the chain — missing DS (partial deployment),
// mismatched DS, expired signatures, missing denial chains.
//
// Against live servers (e.g. a local regsec-server plus its parent):
//
//	regsec-check -parent 127.0.0.1:5300 example.com
//
// Or as a self-contained demonstration over an in-memory hierarchy with
// one domain in every misconfiguration class:
//
//	regsec-check -demo
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"securepki.org/registrarsec/internal/diagnose"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

func main() {
	parent := flag.String("parent", "", "address of the parent-zone (TLD) server")
	demo := flag.Bool("demo", false, "run against a built-in demonstration hierarchy")
	timeout := flag.Duration("timeout", 3*time.Second, "per-query timeout")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if *parent == "" || flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: %s -parent host:port DOMAIN  (or -demo)\n", os.Args[0])
		os.Exit(2)
	}
	c := &diagnose.Checker{
		Exchange:     &dnsserver.NetExchanger{Timeout: *timeout},
		ParentServer: *parent,
	}
	rep, err := c.Check(context.Background(), flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printReport(rep)
	if len(rep.Errors()) > 0 {
		os.Exit(1)
	}
}

func printReport(rep *diagnose.Report) {
	fmt.Printf("%s — deployment: %s\n", rep.Domain, rep.Deployment)
	for _, f := range rep.Findings {
		fmt.Printf("  [%-7s] %-20s %s\n", f.Severity, f.Code, f.Message)
	}
}

// runDemo builds a hierarchy containing every misconfiguration class the
// paper's measurements surface, and checks each.
func runDemo() {
	now := time.Now()
	h, err := dnstest.NewHierarchy(now, "com")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	must := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	add := func(name string, mode dnstest.DomainMode) {
		_, _, err := h.AddDomain(name, "ns1.op.net", mode)
		must(err)
	}
	add("unsigned.com", dnstest.Unsigned)
	add("partial.com", dnstest.Partial)
	add("bogus-ds.com", dnstest.BogusDS)

	// A healthy NSEC3-signed domain.
	child, _, err := h.AddDomain("healthy.com", "ns1.op.net", dnstest.Unsigned)
	must(err)
	signer, err := zone.NewSigner(dnswire.AlgECDSAP256SHA256, now)
	must(err)
	signer.NSEC3 = &dnswire.NSEC3PARAM{HashAlg: dnswire.NSEC3HashSHA1, Iterations: 0}
	must(signer.Sign(child))
	tz := h.TLDZone("com")
	dss, err := signer.DSRecords("healthy.com", dnswire.DigestSHA256)
	must(err)
	for _, ds := range dss {
		must(tz.Add(dnswire.NewRR("healthy.com", 86400, ds)))
	}
	must(h.TLDSigner("com").Sign(tz))

	// An expired-signature domain.
	stale, _, err := h.AddDomain("expired.com", "ns1.op.net", dnstest.Unsigned)
	must(err)
	staleSigner, err := zone.NewSigner(dnswire.AlgED25519, now)
	must(err)
	staleSigner.Inception = now.AddDate(0, -3, 0)
	staleSigner.Expiration = now.AddDate(0, -1, 0)
	must(staleSigner.Sign(stale))
	dss, err = staleSigner.DSRecords("expired.com", dnswire.DigestSHA256)
	must(err)
	for _, ds := range dss {
		must(tz.Add(dnswire.NewRR("expired.com", 86400, ds)))
	}
	must(h.TLDSigner("com").Sign(tz))

	c := &diagnose.Checker{
		Exchange:     h.Net,
		ParentServer: dnstest.TLDServerAddr("com"),
		Now:          func() time.Time { return now },
	}
	for _, domain := range []string{
		"healthy.com", "unsigned.com", "partial.com", "bogus-ds.com", "expired.com",
	} {
		rep, err := c.Check(context.Background(), domain)
		must(err)
		printReport(rep)
		fmt.Println()
	}
}
