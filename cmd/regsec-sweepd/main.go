// Command regsec-sweepd is the distributed-sweep coordinator daemon. It
// owns one sweep plan — days × shards over a deterministic world sample —
// and serves the lease/heartbeat/complete control plane over HTTP to
// regsec-scan processes running in -worker mode. Workers flush
// checksum-trailered shard archives into the shared -checkpoint-dir; the
// daemon leases work units with deadlines, re-leases units whose worker
// died or stalled, settles duplicate completions by checksum, and — once
// every unit is complete — writes the CRC-verified merged archive, which
// is byte-identical to a single-process `regsec-scan` of the same
// configuration.
//
// Usage:
//
//	regsec-sweepd -checkpoint-dir state/ -o archive.tsv
//	              [-listen 127.0.0.1:7353] [-lease-ttl 30s] [-resume]
//	              [-days 2016-06-01,2016-12-31] [-sample 1000] [-shards 4]
//	              [-scale 2000] [-seed 1] [-workers 16] [-retries 3] [-resweeps 2]
//	              [-cache] [-dedup] [-fault-frac 0] [-fault-loss 0.2] [-fault-seed 1]
//	              [-chunk 4096]
//
// Then, on any machine sharing the checkpoint directory:
//
//	regsec-scan -worker http://coordinator:7353 -checkpoint-dir state/ [-name w1]
//
// The daemon's own death is recoverable: lease and completion state is
// persisted atomically after every change, so restarting it with -resume
// adopts all completed units and re-leases the rest. SIGINT/SIGTERM stop
// the daemon cleanly with state intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dsweep"
	"securepki.org/registrarsec/internal/httpx"
	"securepki.org/registrarsec/internal/simtime"
)

func main() {
	os.Exit(run())
}

func run() int {
	cpDir := flag.String("checkpoint-dir", "", "shared checkpoint directory workers flush shards into (required)")
	outPath := flag.String("o", "", "write the merged checksummed TSV archive here once the plan completes (required)")
	listen := flag.String("listen", "127.0.0.1:7353", "control-plane listen address")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "lease deadline budget: a worker must complete or heartbeat within it")
	resume := flag.Bool("resume", false, "adopt persisted coordinator state from a previous run in -checkpoint-dir")
	daysStr := flag.String("days", "2016-12-31", "comma-separated measurement days (YYYY-MM-DD)")
	sample := flag.Int("sample", 1000, "domains to sample from the world")
	shards := flag.Int("shards", 4, "work units per day")
	scaleDiv := flag.Float64("scale", 2000, "population divisor (2000 → .com has ~59k domains)")
	seed := flag.Int64("seed", 1, "world seed")
	workers := flag.Int("workers", 16, "per-worker internal scan concurrency")
	retries := flag.Int("retries", 3, "per-query attempt budget")
	resweeps := flag.Int("resweeps", 2, "re-sweep passes over failed targets (-1 disables)")
	useCache := flag.Bool("cache", false, "enable the response cache in every worker's exchange stack")
	useDedup := flag.Bool("dedup", false, "coalesce concurrent identical queries in every worker's exchange stack")
	faultFrac := flag.Float64("fault-frac", 0, "fraction of DNS operators made faulty, identically on every worker")
	faultLoss := flag.Float64("fault-loss", 0.2, "packet-loss probability on faulty operators")
	faultSeed := flag.Int64("fault-seed", 1, "fault schedule seed")
	chunk := flag.Int("chunk", 0, "run workers on the streaming path in chunks of this many targets (0 = whole-shard units)")
	flag.Parse()

	if *cpDir == "" || *outPath == "" {
		fmt.Fprintln(os.Stderr, "regsec-sweepd requires -checkpoint-dir and -o")
		return 2
	}
	var days []simtime.Day
	for _, part := range strings.Split(*daysStr, ",") {
		day, err := simtime.Parse(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		days = append(days, day)
	}

	spec := &dsweep.WorldSpec{
		ScaleDiv: *scaleDiv, Seed: *seed, Sample: *sample, Workers: *workers,
		Retries: *retries, Resweeps: *resweeps, Cache: *useCache, Dedup: *useDedup,
		FaultFrac: *faultFrac, FaultLoss: *faultLoss, FaultSeed: *faultSeed,
		Chunk: *chunk,
	}
	plan := spec.PlanFor(days, *shards)

	store, err := checkpoint.Open(*cpDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if store.Exists() && !*resume {
		// Exists() reports single-process checkpoint state; coordinator
		// state is separate but the refusal semantics are the same.
		fmt.Fprintf(os.Stderr, "checkpoint state already present in %s: pass -resume to continue it, or remove the directory to start over\n", *cpDir)
		return 2
	}

	eventf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	coord, err := dsweep.NewCoordinator(dsweep.CoordinatorConfig{
		Plan: plan, Store: store, LeaseTTL: *leaseTTL, OnEvent: eventf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if owner, pid, ok := store.LockedBy(); ok {
			fmt.Fprintf(os.Stderr, "(directory is held by %s, pid %d)\n", owner, pid)
		}
		return 1
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := httpx.NewServer(dsweep.NewHandler(coord))
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "coordinating %d units (%d day(s) × %d shard(s)) on http://%s — workers: regsec-scan -worker http://%s -checkpoint-dir %s\n",
		plan.Units(), len(plan.Days), plan.Shards, ln.Addr(), ln.Addr(), *cpDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	select {
	case <-ctx.Done():
		srv.Shutdown(context.Background())
		s := coord.Stats()
		fmt.Fprintf(os.Stderr, "interrupted with %d/%d units done; state saved in %s — restart with -resume to continue\n",
			s.Done, s.Units, *cpDir)
		return 130
	case <-coord.Done():
	}
	srv.Shutdown(context.Background())

	merged, err := coord.Merge()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := merged.WriteArchiveFile(*outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	stats := coord.Stats()
	byDay, byWorker := coord.Health()
	for _, day := range plan.Days {
		if h := byDay[day]; h != nil {
			fmt.Fprintln(os.Stderr, h)
		}
	}
	names := make([]string, 0, len(byWorker))
	for name := range byWorker {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := byWorker[name]
		fmt.Fprintf(os.Stderr, "worker %s: %d/%d measured, %d failed\n", name, h.Measured, h.Targets, len(h.Failures))
	}
	fmt.Fprintf(os.Stderr, "sweep complete in %v: %d units (%d recovered, %d re-leased, %d duplicate, %d divergent, %d rejected); archive %s\n",
		time.Since(start).Round(time.Millisecond), stats.Units, stats.Recovered, stats.Releases, stats.Duplicates, stats.Divergent, stats.Rejected, *outPath)

	// The archive is durable; the shards and lease state have served
	// their purpose.
	if err := coord.Clear(); err != nil {
		fmt.Fprintf(os.Stderr, "clearing checkpoint: %v\n", err)
	}
	return 0
}
