// Command regsec-dig is a minimal dig-like DNS query tool built on the
// registrarsec stack: it sends a query over UDP (with TCP fallback on
// truncation) and prints the response in presentation form.
//
// Usage:
//
//	regsec-dig [-dnssec] [-timeout 3s] [-retries 1] @server:port NAME [TYPE]
//
// Example against a local regsec-server:
//
//	regsec-server -origin example.com -addr 127.0.0.1:5300 -sign &
//	regsec-dig -dnssec @127.0.0.1:5300 www.example.com A
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
)

func main() {
	dnssecOK := flag.Bool("dnssec", false, "set the DO bit and request RRSIGs")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	retries := flag.Int("retries", 1, "per-query attempt budget (lame and truncated answers retried when >1)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] @server:port NAME [TYPE]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 || !strings.HasPrefix(args[0], "@") {
		flag.Usage()
		os.Exit(2)
	}
	server := strings.TrimPrefix(args[0], "@")
	name := args[1]
	qtype := dnswire.TypeA
	if len(args) >= 3 {
		t, ok := dnswire.TypeFromString(strings.ToUpper(args[2]))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown type %q\n", args[2])
			os.Exit(2)
		}
		qtype = t
	}

	q := dnswire.NewQuery(uint16(rand.Intn(1<<16)), name, qtype)
	if *dnssecOK {
		q.SetEDNS(4096, true)
	}
	st, err := exchange.Build(exchange.Options{
		Transport:      &dnsserver.NetExchanger{Timeout: *timeout},
		Retry:          &retry.Policy{MaxAttempts: *retries},
		RetryLame:      true,
		RetryTruncated: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building exchange stack: %v\n", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*retries+1)**timeout)
	defer cancel()
	start := time.Now()
	resp, err := st.Exchange(ctx, server, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "query failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(resp.String())
	fmt.Printf(";; query time: %v, server: %s", time.Since(start).Round(time.Microsecond), server)
	if c := st.Counters(); c.Retry.Retries > 0 {
		fmt.Printf(" (%d retries)", c.Retry.Retries)
	}
	fmt.Println()
}
