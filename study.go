// Package registrarsec is a full-system reproduction of "Understanding the
// Role of Registrars in DNSSEC Deployment" (Chung et al., IMC 2017).
//
// It bundles a complete DNSSEC measurement stack — wire format, signing and
// validation, authoritative serving, iterative validating resolution, an
// OpenINTEL-style scan engine — with a behavioural model of the domain
// registration ecosystem: registries (with ccTLD financial incentives and
// RFC 7344 CDS polling), the paper's named registrars and resellers with
// their observed DNSSEC policies, third-party DNS operators, and the
// out-of-band channels (web forms, email, tickets, live chat) through which
// DS records travel — and so often get lost.
//
// The Study type is the top-level entry point: it builds the world, probes
// registrars exactly as the paper's authors did (by buying domains and
// trying to deploy DNSSEC), runs longitudinal measurements, and regenerates
// every table and figure of the paper's evaluation.
package registrarsec

import (
	"context"
	"fmt"
	"strings"
	"time"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dsweep"
	"securepki.org/registrarsec/internal/ecosystem"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/probe"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/tldsim"
)

// Re-exported types forming the public API surface.
type (
	// Observation is one registrar's probe result (a Table 2/3 row).
	Observation = probe.Observation
	// SeriesPoint is one day of a deployment time series.
	SeriesPoint = analysis.SeriesPoint
	// CDFPoint is one step of the Figure 3 operator CDF.
	CDFPoint = analysis.CDFPoint
	// TLDOverview is one Table 1 row.
	TLDOverview = analysis.TLDOverview
	// Snapshot is one day of scan records.
	Snapshot = dataset.Snapshot
	// Archive is a day-indexed snapshot store (the longitudinal dataset).
	Archive = dataset.Store
	// ArchiveReport is the integrity accounting of an archive read.
	ArchiveReport = dataset.ArchiveReport
	// Record is one domain's observed state.
	Record = dataset.Record
	// Deployment is the none/partial/full/broken classification.
	Deployment = dnssec.Deployment
	// Day is a simulation day (days since 2015-01-01).
	Day = simtime.Day
	// SurveyRow is one Table 4 row.
	SurveyRow = probe.SurveyRow
	// SweepHealth is a scan sweep's failure-accounting report.
	SweepHealth = scan.SweepHealth
	// FaultRule declares injected transport faults for one server pattern.
	FaultRule = faultnet.Rule
	// Registrar is a live registrar agent.
	Registrar = registrar.Registrar
	// World is the generated domain population.
	World = tldsim.World
	// DistributedResult is a distributed sweep's outcome accounting:
	// coordinator fault stats plus per-day and per-worker health.
	DistributedResult = dsweep.Result
	// SweepStats is the distributed coordinator's fault accounting.
	SweepStats = dsweep.Stats
)

// Deployment classes.
const (
	DeploymentNone    = dnssec.DeploymentNone
	DeploymentPartial = dnssec.DeploymentPartial
	DeploymentFull    = dnssec.DeploymentFull
	DeploymentBroken  = dnssec.DeploymentBroken
)

// Milestone days of the measurement window.
var (
	WindowStart   = simtime.GTLDStart
	WindowEnd     = simtime.End
	NLWindowStart = simtime.NLStart
	SEWindowStart = simtime.SEStart
	CloudflareDay = simtime.CloudflareUniversalDNSSEC
)

// AllTLDs is the study's TLD set: com, net, org, nl, se.
var AllTLDs = tldsim.AllTLDs

// Options configure a Study.
type Options struct {
	// Scale shrinks the domain populations (default 1/1000).
	Scale float64
	// Seed makes the world reproducible (default 1).
	Seed int64
	// SkipWorld omits the domain-population model (probe-only studies).
	SkipWorld bool
	// SkipAgents omits the live registrar agents (measurement-only
	// studies).
	SkipAgents bool
	// WorldCacheDir, when set, caches the generated world on disk keyed
	// by (seed, scale, config fingerprint): the first study builds and
	// saves it, later studies load it in O(seconds).
	WorldCacheDir string
}

// Study is a fully wired reproduction environment.
type Study struct {
	// Eco is the live substrate: root, registries, network, clock.
	Eco *ecosystem.Ecosystem
	// World is the generated domain population (nil with SkipWorld).
	World *tldsim.World
	// Agents are the catalogue registrars by ID (nil with SkipAgents).
	Agents map[string]*registrar.Registrar
	// Top20 and Top10 are the probe populations of Tables 2 and 3.
	Top20, Top10 []*registrar.Registrar
}

// NewStudy builds the ecosystem, the registrar agents, and the domain
// population model.
func NewStudy(opts Options) (*Study, error) {
	if opts.Scale == 0 {
		opts.Scale = 1.0 / 1000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	eco, err := ecosystem.New(ecosystem.Config{
		TLDs: tldsim.AllTLDs,
		Incentives: map[string]*registry.Incentive{
			// The .nl and .se incentive programs (section 6.3): €0.28/yr
			// and ~10 SEK/yr per correctly signed domain, with compliance
			// auditing.
			"nl": {DiscountPerYear: 0.28, MaxFailures: 14, WindowDays: 180},
			"se": {DiscountPerYear: 1.10, MaxFailures: 14, WindowDays: 180},
		},
	})
	if err != nil {
		return nil, err
	}
	s := &Study{Eco: eco}
	if !opts.SkipAgents {
		byID, top20, top10, err := tldsim.BuildAgents(eco.Registries, eco.Net, eco.Clock.Day)
		if err != nil {
			return nil, err
		}
		s.Agents, s.Top20, s.Top10 = byID, top20, top10
	}
	if !opts.SkipWorld {
		cfg := tldsim.WorldConfig{Scale: opts.Scale, Seed: opts.Seed}
		var world *tldsim.World
		var err error
		if opts.WorldCacheDir != "" {
			world, err = tldsim.BuildCached(opts.WorldCacheDir, cfg)
		} else {
			world, err = tldsim.Build(cfg)
		}
		if err != nil {
			return nil, err
		}
		s.World = world
	}
	return s, nil
}

// Prober returns a prober bound to this study's environment.
func (s *Study) Prober() *probe.Prober {
	return probe.New(&probe.Env{
		Net:        s.Eco.Net,
		Registries: s.Eco.Registries,
		Anchor:     s.Eco.Anchor,
		Clock:      s.Eco.Clock.Day,
	})
}

// ProbeTable2 runs the hands-on methodology against the top-20 registrars.
func (s *Study) ProbeTable2() []*Observation {
	return s.Prober().RunAll(context.Background(), s.Top20)
}

// ProbeTable3 runs it against the ten DNSSEC-heavy registrars.
func (s *Study) ProbeTable3() []*Observation {
	return s.Prober().RunAll(context.Background(), s.Top10)
}

// SurveyTable4 asks the eleven DNSSEC-supporting DNS operators for their
// per-TLD standing.
func (s *Study) SurveyTable4() []SurveyRow {
	ids := []string{
		"ovh", "godaddy", "meshdigital", "domainnameshop", "transip",
		"namecheap", "binero", "pcextreme", "antagonist", "loopia", "kpn",
	}
	regs := make([]*registrar.Registrar, 0, len(ids))
	for _, id := range ids {
		if r := s.Agents[id]; r != nil {
			regs = append(regs, r)
		}
	}
	return probe.Survey(regs, s.Agents, tldsim.AllTLDs)
}

// Table1 computes the dataset overview at the end of the window on the
// columnar engine — no snapshot materialization, sharded parallel tally.
func (s *Study) Table1() []TLDOverview {
	return s.World.Index().Overview(simtime.End, tldsim.AllTLDs)
}

// Figure3 computes the three operator CDFs of Figure 3 over the gTLDs,
// counting per dense operator ID instead of rebuilding string-keyed maps
// from a materialized snapshot.
func (s *Study) Figure3() (all, partial, full []CDFPoint) {
	idx := s.World.Index()
	all = idx.OperatorCDF(simtime.End, colstore.ClassAny, tldsim.GTLDs...)
	partial = idx.OperatorCDF(simtime.End, colstore.ClassPartial, tldsim.GTLDs...)
	full = idx.OperatorCDF(simtime.End, colstore.ClassFull, tldsim.GTLDs...)
	return all, partial, full
}

// OperatorsToCover re-exports the CDF coverage helper.
func OperatorsToCover(cdf []CDFPoint, frac float64) int {
	return analysis.OperatorsToCover(cdf, frac)
}

// Series computes a deployment time series for one operator/TLD pair
// ("" = all TLDs) at the given day step.
func (s *Study) Series(operator, tld string, from, to Day, stepDays int) []SeriesPoint {
	return s.World.SeriesFor(operator, tld, from, to, stepDays)
}

// Figure4 returns the OVH and GoDaddy full-deployment series.
func (s *Study) Figure4(stepDays int) (ovh, godaddy []SeriesPoint) {
	return s.Series("ovh.net", "", simtime.GTLDStart, simtime.End, stepDays),
		s.Series("domaincontrol.com", "", simtime.GTLDStart, simtime.End, stepDays)
}

// Figure8 returns the Cloudflare series (DNSKEY growth and the DS gap).
func (s *Study) Figure8(stepDays int) []SeriesPoint {
	return s.Series("cloudflare.com", "", simtime.GTLDStart, simtime.End, stepDays)
}

// ScanSample materializes n sampled domains as real signed DNS at the given
// day and measures them with the scan engine — the live-measurement
// cross-check of the world model. The returned SweepHealth accounts for
// any target the sweep could not measure.
func (s *Study) ScanSample(ctx context.Context, day Day, n int, workers int) (*Snapshot, *SweepHealth, error) {
	return s.ScanSampleFaulty(ctx, day, n, workers, 0, nil)
}

// ScanSampleFaulty is ScanSample under injected transport faults: the
// materialized network is wrapped in a faultnet.Injector driven by the
// seed and rules, so resilience experiments run through the public facade.
// With no rules it degrades to a clean scan.
func (s *Study) ScanSampleFaulty(ctx context.Context, day Day, n int, workers int, faultSeed int64, rules []faultnet.Rule) (*Snapshot, *SweepHealth, error) {
	sample := s.World.Sample(n, int64(day))
	mat, err := tldsim.Materialize(day, sample)
	if err != nil {
		return nil, nil, err
	}
	var mw []exchange.Middleware
	if len(rules) > 0 {
		inj := faultnet.New(nil, faultSeed, func() simtime.Day { return day }, rules...)
		mw = append(mw, inj.Middleware())
	}
	scanner, err := scan.New(scan.Config{
		Exchange:   mat.Net,
		Middleware: mw,
		TLDServers: mat.TLDServers,
		Workers:    workers,
		Clock:      func() simtime.Day { return day },
	})
	if err != nil {
		return nil, nil, err
	}
	targets := make([]scan.Target, 0, len(sample))
	for _, d := range sample {
		targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
	}
	return scanner.ScanDay(ctx, day, targets)
}

// LongitudinalConfig configures a resumable multi-day sweep.
type LongitudinalConfig struct {
	// Days are the measurement days, oldest first.
	Days []Day
	// Sample is the number of domains drawn from the world (the same
	// sample is tracked across every day, as the paper tracks a fixed
	// population).
	Sample int
	// SampleSeed drives the sample draw (default 1).
	SampleSeed int64
	// Workers is the per-day scan concurrency.
	Workers int
	// Shards is the number of checkpoint units per day (default 4).
	Shards int
	// CheckpointDir, when non-empty, makes the sweep crash-safe: each
	// completed shard is durably checkpointed there, and a re-run resumes
	// from the last completed shard with finished days verified by
	// checksum instead of re-scanned.
	CheckpointDir string
	// FaultSeed and Rules optionally inject transport faults, as in
	// ScanSampleFaulty.
	FaultSeed int64
	Rules     []FaultRule
	// OnDayHealth and OnEvent receive per-day health reports and resume
	// progress lines.
	OnDayHealth func(day Day, h *SweepHealth)
	OnEvent     func(format string, args ...any)
}

// ScanLongitudinal runs a multi-day, checkpoint-resumable measurement
// sweep over one fixed domain sample — the paper's 21-month daily series
// in miniature, hardened against the process dying partway. On context
// cancellation (e.g. SIGINT) it persists a clean checkpoint and returns
// the context's error; calling it again with the same configuration
// resumes instead of restarting, and the final archive is byte-identical
// to an uninterrupted run.
func (s *Study) ScanLongitudinal(ctx context.Context, cfg LongitudinalConfig) (*Archive, error) {
	mkSetup, err := s.longitudinalSetup(&cfg)
	if err != nil {
		return nil, err
	}
	var cp *checkpoint.Store
	if cfg.CheckpointDir != "" {
		if cp, err = checkpoint.Open(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	rs := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: longitudinalFingerprint(&cfg),
		Shards:      cfg.Shards,
		Setup:       mkSetup(),
		OnDayHealth: cfg.OnDayHealth,
		OnEvent:     cfg.OnEvent,
	}
	return rs.Run(ctx, cfg.Days)
}

// longitudinalFingerprint binds checkpoint state to the sweep configuration.
func longitudinalFingerprint(cfg *LongitudinalConfig) string {
	return fmt.Sprintf("sample=%d seed=%d days=%v shards=%d faults=%d",
		cfg.Sample, cfg.SampleSeed, cfg.Days, cfg.Shards, len(cfg.Rules))
}

// longitudinalSetup validates and defaults the configuration, draws the
// sweep's fixed domain sample, and returns a factory of per-worker
// DaySetups: each call yields an independent setup closure over the same
// sample, so concurrent distributed workers never share a scanner or an
// exchange stack.
func (s *Study) longitudinalSetup(cfg *LongitudinalConfig) (func() scan.DaySetup, error) {
	if s.World == nil {
		return nil, fmt.Errorf("study: a longitudinal sweep requires a world (Options.SkipWorld unset)")
	}
	if len(cfg.Days) == 0 {
		return nil, fmt.Errorf("study: no measurement days")
	}
	if cfg.SampleSeed == 0 {
		cfg.SampleSeed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	sample := s.World.Sample(cfg.Sample, cfg.SampleSeed)
	rules := cfg.Rules
	faultSeed := cfg.FaultSeed
	workers := cfg.Workers
	mk := func() scan.DaySetup {
		return func(ctx context.Context, day Day) (*scan.Scanner, []scan.Target, error) {
			mat, err := tldsim.Materialize(day, sample)
			if err != nil {
				return nil, nil, err
			}
			var mw []exchange.Middleware
			if len(rules) > 0 {
				inj := faultnet.New(nil, faultSeed, func() simtime.Day { return day }, rules...)
				mw = append(mw, inj.Middleware())
			}
			scanner, err := scan.New(scan.Config{
				Exchange:   mat.Net,
				Middleware: mw,
				TLDServers: mat.TLDServers,
				Workers:    workers,
				Clock:      func() simtime.Day { return day },
			})
			if err != nil {
				return nil, nil, err
			}
			targets := make([]scan.Target, 0, len(sample))
			for _, d := range sample {
				targets = append(targets, scan.Target{Domain: d.Name, TLD: d.TLD})
			}
			return scanner, targets, nil
		}
	}
	return mk, nil
}

// DistributedConfig configures ScanDistributed.
type DistributedConfig struct {
	// Longitudinal is the sweep definition: days, sample, sharding, faults.
	// CheckpointDir is mandatory — it is the workers' shared shard store.
	Longitudinal LongitudinalConfig
	// Fleet is the number of concurrent sweep workers (default 2). Each
	// worker owns a full exchange stack and claims (day, shard) leases
	// from the in-process coordinator.
	Fleet int
	// LeaseTTL is the coordinator's lease deadline budget (default 30s).
	LeaseTTL time.Duration
}

// ScanDistributed runs the longitudinal sweep through the crash-tolerant
// coordinator/worker topology of internal/dsweep: Fleet workers lease
// (day, shard) units, flush checksummed shard archives into the shared
// checkpoint directory, and the coordinator's CRC-verified merge yields an
// archive byte-identical to ScanLongitudinal of the same configuration. A
// previous partial run in the same checkpoint directory is adopted, not
// redone. The checkpoint directory is left for the caller to clear once
// the archive is durable.
func (s *Study) ScanDistributed(ctx context.Context, cfg DistributedConfig) (*Archive, *DistributedResult, error) {
	lc := cfg.Longitudinal
	mkSetup, err := s.longitudinalSetup(&lc)
	if err != nil {
		return nil, nil, err
	}
	if lc.CheckpointDir == "" {
		return nil, nil, fmt.Errorf("study: a distributed sweep requires a checkpoint directory (the workers' shared shard store)")
	}
	if cfg.Fleet <= 0 {
		cfg.Fleet = 2
	}
	cp, err := checkpoint.Open(lc.CheckpointDir)
	if err != nil {
		return nil, nil, err
	}
	plan := dsweep.Plan{
		Fingerprint: "dsweep " + longitudinalFingerprint(&lc),
		Days:        lc.Days,
		Shards:      lc.Shards,
	}
	workers := make([]dsweep.WorkerSpec, 0, cfg.Fleet)
	for i := 0; i < cfg.Fleet; i++ {
		workers = append(workers, dsweep.WorkerSpec{
			Name:  fmt.Sprintf("w%02d", i+1),
			Setup: mkSetup(),
		})
	}
	store, res, err := dsweep.RunLocal(ctx, dsweep.LocalConfig{
		Plan:     plan,
		Store:    cp,
		LeaseTTL: cfg.LeaseTTL,
		Workers:  workers,
		OnEvent:  lc.OnEvent,
	})
	if err != nil {
		return nil, res, err
	}
	if lc.OnDayHealth != nil {
		for _, day := range lc.Days {
			if h := res.HealthByDay[day]; h != nil {
				lc.OnDayHealth(day, h)
			}
		}
	}
	return store, res, nil
}

// RenderTable2 formats Table 2 observations with per-registrar domain
// counts from the world model.
func (s *Study) RenderTable2(obs []*Observation) string {
	counts := map[string]int{}
	if s.World != nil {
		counts = s.World.DomainsByRegistrar("com", "net", "org")
	}
	return probe.RenderTable2(obs, counts)
}

// RenderTable3 formats Table 3 observations with DNSKEY counts.
func (s *Study) RenderTable3(obs []*Observation) string {
	counts := map[string]int{}
	if s.World != nil {
		counts = s.World.DNSKEYDomainsByRegistrar(simtime.End, "com", "net", "org")
	}
	return probe.RenderTable3(obs, counts)
}

// RenderTable4 formats the survey matrix.
func RenderTable4(rows []SurveyRow) string {
	return probe.RenderTable4(rows, tldsim.AllTLDs)
}

// RenderTable1 formats the dataset overview.
func RenderTable1(rows []TLDOverview) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s  %12s  %10s  %10s  %10s\n", "TLD", "Domains", "%DNSKEY", "%Full", "%Partial")
	sb.WriteString(strings.Repeat("-", 56))
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, ".%-4s  %12d  %9.2f%%  %9.2f%%  %9.2f%%\n",
			r.TLD, r.Domains, r.PctDNSKEY, r.PctFull, r.PctPartial)
	}
	return sb.String()
}

// Summarize tallies probe observations into the section-5 headline counts.
func Summarize(obs []*Observation) probe.Table2Summary {
	return probe.Summarize(obs)
}
