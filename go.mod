module securepki.org/registrarsec

go 1.23
