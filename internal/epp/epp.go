// Package epp implements a compact subset of the Extensible Provisioning
// Protocol — the real protocol registrars use to talk to registries
// (RFC 5730 base, RFC 5731 domain mapping, RFC 5734 TCP transport framing,
// RFC 5910 secDNS extension). This is the wire on which the paper's crucial
// operation rides: a registrar uploading a customer's DS record to the
// registry.
//
// The implementation covers login/logout, domain create/info/update/delete
// and renew, with the secDNS extension carrying DS data on create and
// update. The server side fronts a registry.Registry; every state change it
// makes is therefore immediately visible in the signed TLD zone and to the
// scan engine.
package epp

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"securepki.org/registrarsec/internal/dnswire"
)

// Result codes (RFC 5730 section 3).
const (
	CodeSuccess        = 1000
	CodeSuccessLogout  = 1500
	CodeAuthError      = 2200
	CodeObjectExists   = 2302
	CodeObjectNotFound = 2303
	CodeAuthorization  = 2201
	CodeParamError     = 2005
	CodeCommandFailed  = 2400
)

// Frame I/O: EPP over TCP prefixes each XML document with a 4-octet total
// length (including the prefix itself), RFC 5734 section 4.

// maxFrame bounds accepted frames (1 MiB).
const maxFrame = 1 << 20

// WriteFrame sends one EPP data unit.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload)+4 > maxFrame {
		return errors.New("epp: frame too large")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)+4))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame receives one EPP data unit.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total < 4 || total > maxFrame {
		return nil, fmt.Errorf("epp: bad frame length %d", total)
	}
	payload := make([]byte, total-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ---------------------------------------------------------------- documents

// Epp is the root element of every EPP document.
type Epp struct {
	XMLName  xml.Name  `xml:"epp"`
	Greeting *Greeting `xml:"greeting,omitempty"`
	Command  *Command  `xml:"command,omitempty"`
	Response *Response `xml:"response,omitempty"`
}

// Greeting is the server hello (RFC 5730 section 2.4).
type Greeting struct {
	SvID     string   `xml:"svID"`
	Services []string `xml:"svcMenu>objURI"`
}

// Command is a client request.
type Command struct {
	Login  *Login        `xml:"login,omitempty"`
	Logout *struct{}     `xml:"logout,omitempty"`
	Create *DomainCreate `xml:"create>domain-create,omitempty"`
	Info   *DomainRef    `xml:"info>domain-info,omitempty"`
	Delete *DomainRef    `xml:"delete>domain-delete,omitempty"`
	Renew  *DomainRef    `xml:"renew>domain-renew,omitempty"`
	Update *DomainUpdate `xml:"update>domain-update,omitempty"`
	// Extension carries the secDNS payload for create/update.
	Extension *Extension `xml:"extension,omitempty"`
	ClTRID    string     `xml:"clTRID,omitempty"`
}

// Login authenticates a registrar session (RFC 5730 section 2.9.1.1).
type Login struct {
	ClID string `xml:"clID"`
	Pw   string `xml:"pw"`
}

// DomainRef names a domain for info/delete/renew.
type DomainRef struct {
	Name string `xml:"name"`
}

// DomainCreate provisions a domain with its delegation (RFC 5731 3.2.1).
type DomainCreate struct {
	Name string   `xml:"name"`
	NS   []string `xml:"ns>hostObj"`
}

// DomainUpdate changes a delegation (RFC 5731 3.2.5). A non-empty NS list
// replaces the delegation — a simplification of the RFC's add/rem dance
// that matches how registrar control panels behave.
type DomainUpdate struct {
	Name string   `xml:"name"`
	NS   []string `xml:"chg>ns>hostObj,omitempty"`
}

// Extension wraps protocol extensions; only secDNS is supported.
type Extension struct {
	SecDNS *SecDNS `xml:"secDNS-update,omitempty"`
}

// SecDNS is the RFC 5910 DS data payload. Rem removes all DS data ("urgent
// remove all" in the RFC's terms); Add supplies the new DS set.
type SecDNS struct {
	RemAll bool     `xml:"rem>all,omitempty"`
	Add    []DSData `xml:"add>dsData,omitempty"`
}

// DSData is one DS record in secDNS form.
type DSData struct {
	KeyTag     uint16 `xml:"keyTag"`
	Alg        uint8  `xml:"alg"`
	DigestType uint8  `xml:"digestType"`
	Digest     string `xml:"digest"`
}

// ToDS converts secDNS data to a wire DS record.
func (d DSData) ToDS() (*dnswire.DS, error) {
	digest, err := hex.DecodeString(strings.ToLower(strings.TrimSpace(d.Digest)))
	if err != nil {
		return nil, fmt.Errorf("epp: bad DS digest: %w", err)
	}
	return &dnswire.DS{
		KeyTag:     d.KeyTag,
		Algorithm:  dnswire.Algorithm(d.Alg),
		DigestType: dnswire.DigestType(d.DigestType),
		Digest:     digest,
	}, nil
}

// FromDS converts a wire DS record to secDNS form.
func FromDS(ds *dnswire.DS) DSData {
	return DSData{
		KeyTag:     ds.KeyTag,
		Alg:        uint8(ds.Algorithm),
		DigestType: uint8(ds.DigestType),
		Digest:     strings.ToUpper(hex.EncodeToString(ds.Digest)),
	}
}

// Response is a server reply.
type Response struct {
	Result  Result      `xml:"result"`
	ResData *DomainInfo `xml:"resData>domain-info,omitempty"`
	ClTRID  string      `xml:"trID>clTRID,omitempty"`
	SvTRID  string      `xml:"trID>svTRID,omitempty"`
}

// Result carries the RFC 5730 result code and message.
type Result struct {
	Code int    `xml:"code,attr"`
	Msg  string `xml:"msg"`
}

// OK reports a successful (1xxx) result.
func (r Result) OK() bool { return r.Code >= 1000 && r.Code < 2000 }

// DomainInfo is the info response payload.
type DomainInfo struct {
	Name    string   `xml:"name"`
	ClID    string   `xml:"clID"`
	NS      []string `xml:"ns>hostObj"`
	DS      []DSData `xml:"secDNS>dsData,omitempty"`
	Created string   `xml:"crDate,omitempty"`
	Expires string   `xml:"exDate,omitempty"`
}

// Marshal renders an EPP document with the XML declaration.
func Marshal(doc *Epp) ([]byte, error) {
	body, err := xml.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}

// Unmarshal parses an EPP document.
func Unmarshal(b []byte) (*Epp, error) {
	var doc Epp
	if err := xml.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("epp: %w", err)
	}
	return &doc, nil
}
