package epp_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/epp"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// startServer brings up an ecosystem's .com registry behind an EPP endpoint.
func startServer(t *testing.T) (*dnstest.Ecosystem, *epp.Server) {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{TLDs: []string{"com"}})
	if err != nil {
		t.Fatal(err)
	}
	reg := eco.Registries["com"]
	reg.Accredit("acme")
	reg.Accredit("rival")
	srv := &epp.Server{
		Registry:  reg,
		Passwords: map[string]string{"acme": "s3cret", "rival": "hunter2"},
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return eco, srv
}

func dial(t *testing.T, srv *epp.Server) *epp.Client {
	t.Helper()
	c, err := epp.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("<epp/>")
	if err := epp.WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := epp.ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("frame: %q", got)
	}
	// Hostile lengths are rejected.
	if _, err := epp.ReadFrame(bytes.NewReader([]byte{0, 0, 0, 1})); err == nil {
		t.Error("undersized frame accepted")
	}
	if _, err := epp.ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestLoginRequiredAndAuth(t *testing.T) {
	_, srv := startServer(t)
	c := dial(t, srv)
	// Commands before login are refused.
	if err := c.CreateDomain("early.com", []string{"ns1.op.net"}, nil); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("pre-login create: %v", err)
	}
	// Wrong password.
	if err := c.Login("acme", "wrong"); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("bad login: %v", err)
	}
	if err := c.Login("acme", "s3cret"); err != nil {
		t.Fatalf("login: %v", err)
	}
}

func TestDomainLifecycleOverEPP(t *testing.T) {
	eco, srv := startServer(t)
	c := dial(t, srv)
	if err := c.Login("acme", "s3cret"); err != nil {
		t.Fatal(err)
	}
	// Create with delegation.
	if err := c.CreateDomain("wired.com", []string{"ns1.op.net", "ns2.op.net"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDomain("wired.com", []string{"ns1.op.net"}, nil); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("duplicate create: %v", err)
	}
	info, err := c.Info("wired.com")
	if err != nil {
		t.Fatal(err)
	}
	if info.ClID != "acme" || len(info.NS) != 2 {
		t.Errorf("info: %+v", info)
	}
	// The registration is immediately visible in the signed TLD zone.
	if len(eco.Registries["com"].Zone().Lookup("wired.com", dnswire.TypeNS)) != 2 {
		t.Error("delegation not in zone")
	}
	// Update NS, renew, delete.
	if err := c.UpdateNS("wired.com", []string{"ns9.other.net"}); err != nil {
		t.Fatal(err)
	}
	info, _ = c.Info("wired.com")
	if len(info.NS) != 1 || info.NS[0] != "ns9.other.net" {
		t.Errorf("NS after update: %v", info.NS)
	}
	if err := c.Renew("wired.com"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDomain("wired.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info("wired.com"); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("info after delete: %v", err)
	}
}

func TestSecDNSOverEPPValidatesEndToEnd(t *testing.T) {
	// The paper's critical operation over the real protocol: a registrar
	// uploads a customer's DS via EPP secDNS, and the domain becomes
	// validatable through live DNS.
	eco, srv := startServer(t)
	c := dial(t, srv)
	if err := c.Login("acme", "s3cret"); err != nil {
		t.Fatal(err)
	}
	// The owner runs a signed nameserver.
	z := zone.New("secured.com")
	z.MustAdd(dnswire.NewRR("secured.com", 3600, &dnswire.SOA{
		MName: "ns1.owner.example", RName: "hostmaster.secured.com",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR("secured.com", 3600, &dnswire.NS{Host: "ns1.owner.example"}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, eco.Clock.Day().Time())
	if err != nil {
		t.Fatal(err)
	}
	signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	if err := signer.Sign(z); err != nil {
		t.Fatal(err)
	}
	auth := dnsserver.NewAuthoritative()
	auth.AddZone(z)
	eco.Net.Register("ns1.owner.example", auth)

	if err := c.CreateDomain("secured.com", []string{"ns1.owner.example"}, nil); err != nil {
		t.Fatal(err)
	}
	dss, err := signer.DSRecords("secured.com", dnswire.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateDS("secured.com", dss); err != nil {
		t.Fatal(err)
	}
	// Validate through the live chain.
	v := eco.Validating()
	_, chain, err := v.Lookup(context.Background(), "secured.com", dnswire.TypeDNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Secure {
		t.Fatalf("after EPP secDNS upload: %v (%s)", chain.Status, chain.Reason)
	}
	// Info reflects the DS; a round trip through secDNS form is faithful.
	info, err := c.Info("secured.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.DS) != 1 {
		t.Fatalf("DS in info: %d", len(info.DS))
	}
	back, err := info.DS[0].ToDS()
	if err != nil {
		t.Fatal(err)
	}
	if back.KeyTag != dss[0].KeyTag || !bytes.Equal(back.Digest, dss[0].Digest) {
		t.Error("DS mangled in secDNS round trip")
	}
	// Removing the DS over EPP returns the domain to insecure.
	if err := c.UpdateDS("secured.com", nil); err != nil {
		t.Fatal(err)
	}
	_, chain, err = v.Lookup(context.Background(), "secured.com", dnswire.TypeDNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Status != dnssec.Insecure {
		t.Errorf("after DS removal: %v", chain.Status)
	}
}

func TestCrossRegistrarAuthorizationOverEPP(t *testing.T) {
	_, srv := startServer(t)
	acme := dial(t, srv)
	if err := acme.Login("acme", "s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := acme.CreateDomain("mine.com", []string{"ns1.op.net"}, nil); err != nil {
		t.Fatal(err)
	}
	rival := dial(t, srv)
	if err := rival.Login("rival", "hunter2"); err != nil {
		t.Fatal(err)
	}
	// The rival can read registry data but cannot mutate another
	// registrar's object.
	if _, err := rival.Info("mine.com"); err != nil {
		t.Errorf("info: %v", err)
	}
	if err := rival.UpdateNS("mine.com", []string{"ns1.evil.net"}); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("cross-registrar update: %v", err)
	}
	garbage := &dnswire.DS{KeyTag: 1, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := rival.UpdateDS("mine.com", []*dnswire.DS{garbage}); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("cross-registrar DS: %v", err)
	}
	if err := rival.DeleteDomain("mine.com"); !errors.Is(err, epp.ErrEPPResult) {
		t.Errorf("cross-registrar delete: %v", err)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := &epp.Epp{Command: &epp.Command{
		Create: &epp.DomainCreate{Name: "x.com", NS: []string{"ns1.a.net"}},
		Extension: &epp.Extension{SecDNS: &epp.SecDNS{
			RemAll: true,
			Add:    []epp.DSData{{KeyTag: 60485, Alg: 8, DigestType: 2, Digest: "AABB"}},
		}},
		ClTRID: "CL-1",
	}}
	b, err := epp.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := epp.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command == nil || got.Command.Create == nil || got.Command.Create.Name != "x.com" {
		t.Fatalf("round trip: %+v", got)
	}
	sec := got.Command.Extension.SecDNS
	if sec == nil || !sec.RemAll || len(sec.Add) != 1 || sec.Add[0].KeyTag != 60485 {
		t.Fatalf("secDNS round trip: %+v", sec)
	}
	if _, err := epp.Unmarshal([]byte("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	// Bad digest hex fails conversion.
	if _, err := (epp.DSData{Digest: "zz"}).ToDS(); err == nil {
		t.Error("bad digest accepted")
	}
}
