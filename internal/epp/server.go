package epp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registry"
)

// Server fronts one TLD registry with an EPP endpoint over TCP. Sessions
// authenticate with a registrar ID and password; the registry's own
// accreditation and ownership checks then govern every object operation —
// exactly the trust structure of production registries.
type Server struct {
	// Registry is the backing TLD registry.
	Registry *registry.Registry
	// Passwords maps registrar ID → login password.
	Passwords map[string]string
	// ReadTimeout bounds per-frame reads (default 10s).
	ReadTimeout time.Duration

	mu     sync.Mutex
	ln     net.Listener
	wg     sync.WaitGroup
	closed bool
	svTRID int
}

// ListenAndServe binds addr and serves sessions until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("epp: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for sessions to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) nextTRID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.svTRID++
	return fmt.Sprintf("SV-%06d", s.svTRID)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer conn.Close()
			s.session(conn)
		}(conn)
	}
}

// session runs one EPP connection: greeting, then command/response until
// logout or error.
func (s *Server) session(conn net.Conn) {
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	greeting, err := Marshal(&Epp{Greeting: &Greeting{
		SvID:     "regsec-epp/" + s.Registry.TLD(),
		Services: []string{"urn:ietf:params:xml:ns:domain-1.0", "urn:ietf:params:xml:ns:secDNS-1.1"},
	}})
	if err != nil {
		return
	}
	if err := WriteFrame(conn, greeting); err != nil {
		return
	}
	var clID string // empty until a successful login
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		frame, err := ReadFrame(conn)
		if err != nil {
			return
		}
		doc, err := Unmarshal(frame)
		if err != nil || doc.Command == nil {
			s.reply(conn, "", Result{Code: CodeParamError, Msg: "malformed command"}, nil)
			continue
		}
		cmd := doc.Command
		resp, newClID, done := s.dispatch(clID, cmd)
		clID = newClID
		resp.ClTRID = cmd.ClTRID
		resp.SvTRID = s.nextTRID()
		out, err := Marshal(&Epp{Response: resp})
		if err != nil {
			return
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
		if done {
			return
		}
	}
}

func (s *Server) reply(conn net.Conn, clTRID string, result Result, data *DomainInfo) {
	out, err := Marshal(&Epp{Response: &Response{Result: result, ResData: data, ClTRID: clTRID, SvTRID: s.nextTRID()}})
	if err == nil {
		WriteFrame(conn, out)
	}
}

// dispatch executes one command for the session authenticated as clID.
func (s *Server) dispatch(clID string, cmd *Command) (resp *Response, newClID string, done bool) {
	newClID = clID
	fail := func(code int, format string, args ...any) *Response {
		return &Response{Result: Result{Code: code, Msg: fmt.Sprintf(format, args...)}}
	}
	switch {
	case cmd.Login != nil:
		want, ok := s.Passwords[cmd.Login.ClID]
		if !ok || want != cmd.Login.Pw {
			return fail(CodeAuthError, "authentication failed"), clID, false
		}
		return &Response{Result: Result{Code: CodeSuccess, Msg: "login ok"}}, cmd.Login.ClID, false
	case cmd.Logout != nil:
		return &Response{Result: Result{Code: CodeSuccessLogout, Msg: "goodbye"}}, "", true
	}
	if clID == "" {
		return fail(CodeAuthError, "login required"), clID, false
	}
	reg := s.Registry
	mapErr := func(err error) *Response {
		switch {
		case err == nil:
			return &Response{Result: Result{Code: CodeSuccess, Msg: "command completed"}}
		case errors.Is(err, registry.ErrAlreadyExists):
			return fail(CodeObjectExists, "%v", err)
		case errors.Is(err, registry.ErrNoSuchDomain):
			return fail(CodeObjectNotFound, "%v", err)
		case errors.Is(err, registry.ErrNotAccredited), errors.Is(err, registry.ErrWrongRegistrar):
			return fail(CodeAuthorization, "%v", err)
		case errors.Is(err, registry.ErrOutsideTLD), errors.Is(err, registry.ErrEmptyNameservers):
			return fail(CodeParamError, "%v", err)
		default:
			return fail(CodeCommandFailed, "%v", err)
		}
	}
	applySecDNS := func(domain string) error {
		if cmd.Extension == nil || cmd.Extension.SecDNS == nil {
			return nil
		}
		sec := cmd.Extension.SecDNS
		if sec.RemAll && len(sec.Add) == 0 {
			return reg.DeleteDS(clID, domain)
		}
		var dss []*dnswire.DS
		for _, d := range sec.Add {
			ds, err := d.ToDS()
			if err != nil {
				return err
			}
			dss = append(dss, ds)
		}
		return reg.SetDS(clID, domain, dss)
	}
	switch {
	case cmd.Create != nil:
		if err := reg.Register(clID, cmd.Create.Name, cmd.Create.NS); err != nil {
			return mapErr(err), clID, false
		}
		if err := applySecDNS(cmd.Create.Name); err != nil {
			return mapErr(err), clID, false
		}
		return mapErr(nil), clID, false
	case cmd.Update != nil:
		if len(cmd.Update.NS) > 0 {
			if err := reg.SetNS(clID, cmd.Update.Name, cmd.Update.NS); err != nil {
				return mapErr(err), clID, false
			}
		}
		if err := applySecDNS(cmd.Update.Name); err != nil {
			return mapErr(err), clID, false
		}
		return mapErr(nil), clID, false
	case cmd.Delete != nil:
		return mapErr(reg.Drop(clID, cmd.Delete.Name)), clID, false
	case cmd.Renew != nil:
		return mapErr(reg.Renew(clID, cmd.Renew.Name)), clID, false
	case cmd.Info != nil:
		r, ok := reg.Registration(cmd.Info.Name)
		if !ok {
			return fail(CodeObjectNotFound, "no such domain %s", cmd.Info.Name), clID, false
		}
		info := &DomainInfo{
			Name:    r.Domain,
			ClID:    r.RegistrarID,
			NS:      r.NS,
			Created: r.Created.String(),
			Expires: r.Expires.String(),
		}
		for _, ds := range r.DS {
			info.DS = append(info.DS, FromDS(ds))
		}
		return &Response{Result: Result{Code: CodeSuccess, Msg: "info"}, ResData: info}, clID, false
	}
	return fail(CodeParamError, "unrecognized command"), clID, false
}
