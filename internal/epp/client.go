package epp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// Client is one registrar-side EPP session.
type Client struct {
	// Timeout bounds each request/response exchange (default 10s).
	Timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	trid   int
	logged bool
}

// ErrEPPResult wraps a non-success result code.
var ErrEPPResult = errors.New("epp: command failed")

// Dial connects and consumes the server greeting.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{Timeout: timeout, conn: conn}
	conn.SetReadDeadline(time.Now().Add(timeout))
	frame, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("epp: reading greeting: %w", err)
	}
	doc, err := Unmarshal(frame)
	if err != nil || doc.Greeting == nil {
		conn.Close()
		return nil, errors.New("epp: no greeting from server")
	}
	return c, nil
}

// Close terminates the session (with a logout when logged in).
func (c *Client) Close() error {
	c.mu.Lock()
	logged := c.logged
	c.mu.Unlock()
	if logged {
		_, _ = c.roundTrip(&Command{Logout: &struct{}{}})
	}
	return c.conn.Close()
}

// roundTrip sends one command and reads its response.
func (c *Client) roundTrip(cmd *Command) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trid++
	cmd.ClTRID = fmt.Sprintf("CL-%06d", c.trid)
	out, err := Marshal(&Epp{Command: cmd})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.Timeout)
	c.conn.SetDeadline(deadline)
	if err := WriteFrame(c.conn, out); err != nil {
		return nil, err
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	doc, err := Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if doc.Response == nil {
		return nil, errors.New("epp: response missing")
	}
	return doc.Response, nil
}

// run executes a command and converts failure results to errors.
func (c *Client) run(cmd *Command) (*Response, error) {
	resp, err := c.roundTrip(cmd)
	if err != nil {
		return nil, err
	}
	if !resp.Result.OK() {
		return resp, fmt.Errorf("%w: %d %s", ErrEPPResult, resp.Result.Code, resp.Result.Msg)
	}
	return resp, nil
}

// Login authenticates the session.
func (c *Client) Login(clID, pw string) error {
	_, err := c.run(&Command{Login: &Login{ClID: clID, Pw: pw}})
	if err == nil {
		c.mu.Lock()
		c.logged = true
		c.mu.Unlock()
	}
	return err
}

// CreateDomain registers a domain with its delegation and optional DS set.
func (c *Client) CreateDomain(name string, ns []string, ds []*dnswire.DS) error {
	cmd := &Command{Create: &DomainCreate{Name: name, NS: ns}}
	if len(ds) > 0 {
		cmd.Extension = secDNSAdd(ds)
	}
	_, err := c.run(cmd)
	return err
}

// UpdateNS replaces a domain's delegation.
func (c *Client) UpdateNS(name string, ns []string) error {
	_, err := c.run(&Command{Update: &DomainUpdate{Name: name, NS: ns}})
	return err
}

// UpdateDS replaces a domain's DS RRset (nil removes it) — the operation at
// the heart of the paper.
func (c *Client) UpdateDS(name string, ds []*dnswire.DS) error {
	cmd := &Command{Update: &DomainUpdate{Name: name}}
	if len(ds) == 0 {
		cmd.Extension = &Extension{SecDNS: &SecDNS{RemAll: true}}
	} else {
		cmd.Extension = secDNSAdd(ds)
	}
	_, err := c.run(cmd)
	return err
}

// DeleteDomain drops a registration.
func (c *Client) DeleteDomain(name string) error {
	_, err := c.run(&Command{Delete: &DomainRef{Name: name}})
	return err
}

// Renew extends a registration.
func (c *Client) Renew(name string) error {
	_, err := c.run(&Command{Renew: &DomainRef{Name: name}})
	return err
}

// Info fetches a domain's registry state.
func (c *Client) Info(name string) (*DomainInfo, error) {
	resp, err := c.run(&Command{Info: &DomainRef{Name: name}})
	if err != nil {
		return nil, err
	}
	if resp.ResData == nil {
		return nil, errors.New("epp: info response without data")
	}
	return resp.ResData, nil
}

func secDNSAdd(ds []*dnswire.DS) *Extension {
	sec := &SecDNS{RemAll: true}
	for _, d := range ds {
		sec.Add = append(sec.Add, FromDS(d))
	}
	return &Extension{SecDNS: sec}
}
