// Package operator models third-party DNS operators — organizations such
// as Cloudflare and DNSPod that run authoritative DNS for customers but are
// not registrars (paper section 7). They can generate DNSKEYs and RRSIGs,
// but have no standing to upload DS records: the customer must relay the DS
// to their registrar by hand. The paper finds 40% of Cloudflare customers
// who enabled DNSSEC never completed that relay, leaving their domains
// partially deployed.
//
// The package also implements the two escape hatches discussed in the
// paper: publishing CDS/CDNSKEY records for registries that poll them
// (RFC 7344 — only .cz at the time), and the Cloudflare/CIRA draft where
// the operator calls a registrar-exposed bootstrap API directly.
package operator

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Errors returned by operator flows.
var (
	ErrNoDNSSEC    = errors.New("operator: operator does not support DNSSEC")
	ErrNoSuchZone  = errors.New("operator: zone not managed here")
	ErrNotEnabled  = errors.New("operator: DNSSEC not enabled for this zone")
	ErrNotLaunched = errors.New("operator: DNSSEC product not launched yet")
)

// Config describes a third-party operator.
type Config struct {
	// ID and Name identify the operator ("cloudflare").
	ID, Name string
	// NSHosts are its authoritative nameservers.
	NSHosts []string
	// SupportsDNSSEC distinguishes Cloudflare (yes) from DNSPod (no).
	SupportsDNSSEC bool
	// DNSSECLaunchDay gates EnableDNSSEC (Cloudflare: 2015-11-11). Zero
	// means always available.
	DNSSECLaunchDay simtime.Day
	// PublishesCDS adds CDS/CDNSKEY records to signed zones so polling
	// registries can pick the DS up automatically.
	PublishesCDS bool
	// Algorithm for zone signing (Cloudflare deployed ECDSA P-256).
	Algorithm dnswire.Algorithm
	// Clock supplies the simulation day.
	Clock func() simtime.Day
	// Net hosts the operator's nameservers.
	Net *dnsserver.MemNet
}

// Operator is a third-party DNS operator agent.
type Operator struct {
	cfg Config

	mu      sync.RWMutex
	zones   map[string]*zone.Zone
	signers map[string]*zone.Signer

	srv *dnsserver.Authoritative
}

// New creates the operator and registers its nameservers.
func New(cfg Config) (*Operator, error) {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = dnswire.AlgECDSAP256SHA256
	}
	if cfg.Clock == nil {
		cfg.Clock = func() simtime.Day { return simtime.GTLDStart }
	}
	if len(cfg.NSHosts) == 0 {
		return nil, fmt.Errorf("operator %s: no nameserver hosts", cfg.ID)
	}
	o := &Operator{
		cfg:     cfg,
		zones:   make(map[string]*zone.Zone),
		signers: make(map[string]*zone.Signer),
		srv:     dnsserver.NewAuthoritative(),
	}
	if cfg.Net != nil {
		for _, host := range cfg.NSHosts {
			cfg.Net.Register(host, o.srv)
		}
	}
	return o, nil
}

// Name returns the operator's display name.
func (o *Operator) Name() string { return o.cfg.Name }

// NSHosts returns the nameservers a customer must delegate to.
func (o *Operator) NSHosts() []string { return append([]string(nil), o.cfg.NSHosts...) }

// SupportsDNSSEC reports whether the operator can sign zones at all.
func (o *Operator) SupportsDNSSEC() bool { return o.cfg.SupportsDNSSEC }

// Server exposes the authoritative server (for direct harness queries).
func (o *Operator) Server() *dnsserver.Authoritative { return o.srv }

// CreateZone onboards a domain: the operator builds and serves the zone.
// The customer must separately point the registry delegation at NSHosts via
// their registrar.
func (o *Operator) CreateZone(domain string) (*zone.Zone, error) {
	domain = dnswire.CanonicalName(domain)
	z := zone.New(domain)
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.SOA{
		MName: o.cfg.NSHosts[0], RName: "dns." + dnswire.SecondLevel(o.cfg.NSHosts[0]),
		Serial: 1, Refresh: 10000, Retry: 2400, Expire: 604800, Minimum: 300,
	}))
	for _, host := range o.cfg.NSHosts {
		z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.NS{Host: host}))
	}
	z.MustAdd(dnswire.NewRR(domain, 300, &dnswire.A{Addr: netip.MustParseAddr("104.16.0.1")}))
	z.MustAdd(dnswire.NewRR("www."+domain, 300, &dnswire.A{Addr: netip.MustParseAddr("104.16.0.1")}))
	o.mu.Lock()
	o.zones[domain] = z
	o.mu.Unlock()
	o.srv.AddZone(z)
	return z, nil
}

// Zone returns a managed zone.
func (o *Operator) Zone(domain string) (*zone.Zone, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	z, ok := o.zones[dnswire.CanonicalName(domain)]
	return z, ok
}

// EnableDNSSEC signs the customer's zone and returns the DS record the
// customer must relay to their registrar. This is the handoff step 40% of
// Cloudflare customers never complete.
func (o *Operator) EnableDNSSEC(domain string) (*dnswire.DS, error) {
	if !o.cfg.SupportsDNSSEC {
		return nil, fmt.Errorf("%w (%s)", ErrNoDNSSEC, o.cfg.Name)
	}
	day := o.cfg.Clock()
	if o.cfg.DNSSECLaunchDay != 0 && day < o.cfg.DNSSECLaunchDay {
		return nil, fmt.Errorf("%w: launches %s", ErrNotLaunched, o.cfg.DNSSECLaunchDay)
	}
	domain = dnswire.CanonicalName(domain)
	o.mu.Lock()
	defer o.mu.Unlock()
	z, ok := o.zones[domain]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchZone, domain)
	}
	signer, ok := o.signers[domain]
	if !ok {
		var err error
		signer, err = zone.NewSigner(o.cfg.Algorithm, day.Time())
		if err != nil {
			return nil, err
		}
		signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
		o.signers[domain] = signer
	}
	if err := signer.Sign(z); err != nil {
		return nil, err
	}
	if o.cfg.PublishesCDS {
		if err := signer.PublishCDS(z, dnswire.DigestSHA256); err != nil {
			return nil, err
		}
	}
	dss, err := signer.DSRecords(domain, dnswire.DigestSHA256)
	if err != nil {
		return nil, err
	}
	return dss[0], nil
}

// DisableDNSSEC strips DNSSEC from the zone. The customer is responsible
// for removing the DS first — doing it in the wrong order makes the domain
// bogus, another operational trap.
func (o *Operator) DisableDNSSEC(domain string) error {
	domain = dnswire.CanonicalName(domain)
	o.mu.Lock()
	defer o.mu.Unlock()
	z, ok := o.zones[domain]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchZone, domain)
	}
	zone.Unsign(z)
	delete(o.signers, domain)
	return nil
}

// DSRecord re-issues the DS for an already-signed zone (shown in the
// dashboard for the customer to copy).
func (o *Operator) DSRecord(domain string) (*dnswire.DS, error) {
	domain = dnswire.CanonicalName(domain)
	o.mu.RLock()
	signer, ok := o.signers[domain]
	o.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotEnabled, domain)
	}
	dss, err := signer.DSRecords(domain, dnswire.DigestSHA256)
	if err != nil {
		return nil, err
	}
	return dss[0], nil
}

// RegistrarBootstrapAPI is the registrar-side endpoint of the
// Cloudflare/CIRA third-party-operator draft: a REST-like call with which
// an operator asks the registrar to install a DS record directly, removing
// the customer from the loop. registrarsec's registrar agents expose it
// when they implement the draft.
type RegistrarBootstrapAPI interface {
	// BootstrapDS installs a DS for domain on behalf of its DNS operator.
	// The registrar is expected to verify that the operator actually
	// serves the domain before accepting; ctx bounds that verification's
	// DNS lookups.
	BootstrapDS(ctx context.Context, domain string, ds *dnswire.DS) error
}

// BootstrapViaRegistrar pushes the domain's DS straight to the registrar
// using the draft protocol.
func (o *Operator) BootstrapViaRegistrar(ctx context.Context, domain string, api RegistrarBootstrapAPI) error {
	ds, err := o.DSRecord(domain)
	if err != nil {
		return err
	}
	return api.BootstrapDS(ctx, domain, ds)
}

// SignatureValidUntil reports how long the operator's signatures remain
// valid (test hook).
func (o *Operator) SignatureValidUntil(domain string) (time.Time, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	s, ok := o.signers[dnswire.CanonicalName(domain)]
	if !ok {
		return time.Time{}, false
	}
	return s.Expiration, true
}
