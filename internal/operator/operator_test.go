package operator_test

import (
	"context"
	"errors"
	"testing"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/operator"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/simtime"
)

type fixture struct {
	eco *dnstest.Ecosystem
	op  *operator.Operator
	reg *registrar.Registrar
}

// newFixture wires a Cloudflare-like operator plus a registrar with a web
// DS form, and a customer domain delegated to the operator.
func newFixture(t *testing.T, opCfg operator.Config) *fixture {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{
		TLDs:    []string{"com"},
		CDSTLDs: map[string]bool{"com": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	eco.Clock.Set(simtime.CloudflareUniversalDNSSEC + 30)
	opCfg.Clock = eco.Clock.Day
	opCfg.Net = eco.Net
	op, err := operator.New(opCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registrar.New(registrar.Policy{
		ID: "webreg", Name: "WebReg", NSHosts: []string{"ns1.webreg.net"},
		OwnerDNSSEC: true, DSChannel: channel.Web,
		Roles: map[string]registrar.Role{"com": {Kind: registrar.RoleRegistrar}},
	}, registrar.Deps{Registries: eco.Registries, Net: eco.Net, Clock: eco.Clock.Day})
	if err != nil {
		t.Fatal(err)
	}
	reg.CreateAccount("cust@x.net")
	if err := reg.Purchase("cust@x.net", "site.com", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := op.CreateZone("site.com"); err != nil {
		t.Fatal(err)
	}
	if err := reg.UseExternalNameservers("cust@x.net", "site.com", op.NSHosts()); err != nil {
		t.Fatal(err)
	}
	return &fixture{eco: eco, op: op, reg: reg}
}

func classify(t *testing.T, f *fixture, domain string) dnssec.Deployment {
	t.Helper()
	r, ok := f.eco.Registries["com"].Registration(domain)
	if !ok {
		t.Fatalf("%s not registered", domain)
	}
	v := f.eco.Validating()
	res, chain, err := v.Lookup(context.Background(), domain, dnswire.TypeDNSKEY)
	if err != nil {
		t.Fatal(err)
	}
	hasKey := len(res.RRSet(domain, dnswire.TypeDNSKEY).RRs) > 0
	return dnssec.Classify(hasKey, len(r.DS) > 0, chain.Status == dnssec.Secure)
}

func cloudflareCfg() operator.Config {
	return operator.Config{
		ID: "cloudflare", Name: "Cloudflare",
		NSHosts:         []string{"ana.ns.cloudflare.com", "bob.ns.cloudflare.com"},
		SupportsDNSSEC:  true,
		DNSSECLaunchDay: simtime.CloudflareUniversalDNSSEC,
	}
}

func TestOperatorDSRelayFlow(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	// Delegated, unsigned: none.
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentNone {
		t.Fatalf("before enable: %v", got)
	}
	ds, err := f.op.EnableDNSSEC("site.com")
	if err != nil {
		t.Fatal(err)
	}
	// The operator signed the zone, but the customer has not relayed the
	// DS: the paper's 40% gap state.
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentPartial {
		t.Fatalf("before relay: %v", got)
	}
	// The customer completes the relay through the registrar web form.
	if err := f.reg.SubmitDSWeb(context.Background(), "cust@x.net", "site.com", ds); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentFull {
		t.Fatalf("after relay: %v", got)
	}
	// DSRecord re-issues the same DS.
	again, err := f.op.DSRecord("site.com")
	if err != nil || again.KeyTag != ds.KeyTag {
		t.Errorf("DSRecord: %v %v", again, err)
	}
}

func TestOperatorWithoutDNSSEC(t *testing.T) {
	f := newFixture(t, operator.Config{
		ID: "dnspod", Name: "DNSPod",
		NSHosts:        []string{"ns1.dnspod.net"},
		SupportsDNSSEC: false,
	})
	if _, err := f.op.EnableDNSSEC("site.com"); !errors.Is(err, operator.ErrNoDNSSEC) {
		t.Errorf("DNSPod enabled DNSSEC: %v", err)
	}
}

func TestOperatorLaunchGate(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	f.eco.Clock.Set(simtime.CloudflareUniversalDNSSEC - 10)
	if _, err := f.op.EnableDNSSEC("site.com"); !errors.Is(err, operator.ErrNotLaunched) {
		t.Errorf("pre-launch enable: %v", err)
	}
	f.eco.Clock.Set(simtime.CloudflareUniversalDNSSEC)
	if _, err := f.op.EnableDNSSEC("site.com"); err != nil {
		t.Errorf("launch-day enable: %v", err)
	}
}

func TestOperatorUnknownZone(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	if _, err := f.op.EnableDNSSEC("nothere.com"); !errors.Is(err, operator.ErrNoSuchZone) {
		t.Errorf("unknown zone: %v", err)
	}
	if _, err := f.op.DSRecord("site.com"); !errors.Is(err, operator.ErrNotEnabled) {
		t.Errorf("DSRecord before enable: %v", err)
	}
	if err := f.op.DisableDNSSEC("nothere.com"); !errors.Is(err, operator.ErrNoSuchZone) {
		t.Errorf("disable unknown: %v", err)
	}
}

func TestOperatorDisableOrderMatters(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	ds, err := f.op.EnableDNSSEC("site.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reg.SubmitDSWeb(context.Background(), "cust@x.net", "site.com", ds); err != nil {
		t.Fatal(err)
	}
	// Disabling at the operator while the DS is still in the registry
	// leaves the domain bogus — the operational trap.
	if err := f.op.DisableDNSSEC("site.com"); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentBroken {
		t.Errorf("disable with stale DS: %v", got)
	}
	// Removing the DS restores a clean insecure state.
	if err := f.reg.RemoveDS("cust@x.net", "site.com"); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentNone {
		t.Errorf("after DS removal: %v", got)
	}
}

func TestOperatorCDSAutomation(t *testing.T) {
	cfg := cloudflareCfg()
	cfg.PublishesCDS = true
	f := newFixture(t, cfg)
	if _, err := f.op.EnableDNSSEC("site.com"); err != nil {
		t.Fatal(err)
	}
	// Without the relay, partial...
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentPartial {
		t.Fatalf("before CDS scan: %v", got)
	}
	// ...until the CDS-polling registry bootstraps the DS itself.
	report, err := f.eco.Registries["com"].ScanCDS(context.Background(), f.eco.Net, f.eco.Clock.Day(), true)
	if err != nil {
		t.Fatal(err)
	}
	if report.Bootstrapped != 1 {
		t.Fatalf("CDS report: %+v", report)
	}
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentFull {
		t.Errorf("after CDS scan: %v", got)
	}
}

func TestOperatorBootstrapViaRegistrarDraft(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	if _, err := f.op.EnableDNSSEC("site.com"); err != nil {
		t.Fatal(err)
	}
	// The draft protocol: the operator pushes the DS to the registrar
	// directly, no customer involved.
	if err := f.op.BootstrapViaRegistrar(context.Background(), "site.com", f.reg); err != nil {
		t.Fatal(err)
	}
	if got := classify(t, f, "site.com"); got != dnssec.DeploymentFull {
		t.Errorf("after draft bootstrap: %v", got)
	}
}

func TestOperatorAccessors(t *testing.T) {
	f := newFixture(t, cloudflareCfg())
	if f.op.Name() != "Cloudflare" || !f.op.SupportsDNSSEC() {
		t.Error("identity accessors")
	}
	hosts := f.op.NSHosts()
	if len(hosts) != 2 || hosts[0] != "ana.ns.cloudflare.com" {
		t.Errorf("NSHosts: %v", hosts)
	}
	if f.op.Server() == nil {
		t.Error("Server nil")
	}
	if _, ok := f.op.Zone("site.com"); !ok {
		t.Error("Zone lookup failed")
	}
	if _, ok := f.op.Zone("ghost.com"); ok {
		t.Error("Zone lookup for unknown domain succeeded")
	}
	if _, ok := f.op.SignatureValidUntil("site.com"); ok {
		t.Error("signature window before enable")
	}
	if _, err := f.op.EnableDNSSEC("site.com"); err != nil {
		t.Fatal(err)
	}
	until, ok := f.op.SignatureValidUntil("site.com")
	if !ok || until.Before(f.eco.Clock.Day().Time()) {
		t.Errorf("signature window: %v %v", until, ok)
	}
	// Enabling twice reuses the signer (same DS).
	ds1, err := f.op.DSRecord("site.com")
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f.op.EnableDNSSEC("site.com")
	if err != nil {
		t.Fatal(err)
	}
	if ds1.KeyTag != ds2.KeyTag {
		t.Error("re-enabling rotated the key unexpectedly")
	}
	// Operators without nameservers are rejected at construction.
	if _, err := operator.New(operator.Config{ID: "x", Name: "X"}); err == nil {
		t.Error("operator without NS hosts accepted")
	}
}
