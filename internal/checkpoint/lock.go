package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// lockFile is the owner lockfile inside a checkpoint directory. Exactly one
// process may mutate a checkpoint directory's state at a time: two sweeps
// interleaving Save calls would silently corrupt each other's progress and
// could mix shards of different runs into one archive. The lockfile makes
// the second process fail loudly instead.
const lockFile = "LOCK"

// lockInfo is the lockfile's JSON payload: enough to tell the operator who
// holds the directory and to detect a stale lock left by a dead process.
type lockInfo struct {
	// PID is the holder's process ID, probed for liveness on conflict.
	PID int `json:"pid"`
	// Owner names the holding component ("resumable-sweep", "coordinator").
	Owner string `json:"owner"`
	// Fingerprint is the holder's sweep configuration fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Acquired is the wall-clock acquisition time, for diagnostics only.
	Acquired string `json:"acquired"`
}

// pidAlive reports whether a process with the given PID exists. Signal 0
// performs the existence check without delivering anything; EPERM still
// means "alive, owned by someone else".
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || err == syscall.EPERM
}

// AcquireLock claims exclusive mutation rights over the checkpoint
// directory, returning a release function. A lock held by a live process is
// a hard error — concurrent mutation is exactly the corruption this guards
// against. A lock whose owner process is gone (a crash or SIGKILL) is
// stale: it is broken and re-acquired, since the durable state it protected
// is already consistent (every write in this package is atomic).
func (s *Store) AcquireLock(owner, fingerprint string) (release func() error, err error) {
	path := filepath.Join(s.dir, lockFile)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			info := lockInfo{
				PID: os.Getpid(), Owner: owner, Fingerprint: fingerprint,
				Acquired: time.Now().UTC().Format(time.RFC3339),
			}
			data, merr := json.Marshal(info)
			if merr == nil {
				_, merr = f.Write(append(data, '\n'))
			}
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
			if merr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("checkpoint: writing lock: %w", merr)
			}
			return func() error {
				if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
					return rmErr
				}
				return nil
			}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("checkpoint: lock: %w", err)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between our open and read; retry
			}
			return nil, fmt.Errorf("checkpoint: lock: %w", rerr)
		}
		var held lockInfo
		if jerr := json.Unmarshal(data, &held); jerr == nil && pidAlive(held.PID) {
			return nil, fmt.Errorf(
				"checkpoint: %s is locked by %s (pid %d, fingerprint %q); refusing concurrent mutation of the same checkpoint directory",
				s.dir, held.Owner, held.PID, held.Fingerprint)
		}
		// Unparseable payload (crash mid-write) or dead owner: stale lock.
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, fmt.Errorf("checkpoint: breaking stale lock: %w", rmErr)
		}
	}
	return nil, fmt.Errorf("checkpoint: could not acquire lock in %s", s.dir)
}

// LockedBy reports the current lock holder, if any — diagnostics for CLI
// error messages; it takes no part in acquisition.
func (s *Store) LockedBy() (owner string, pid int, ok bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, lockFile))
	if err != nil {
		return "", 0, false
	}
	var held lockInfo
	if json.Unmarshal(data, &held) != nil {
		return "", 0, false
	}
	return held.Owner, held.PID, true
}
