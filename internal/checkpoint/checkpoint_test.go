package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

func testSnapshot(day simtime.Day) *dataset.Snapshot {
	return &dataset.Snapshot{Day: day, Records: []dataset.Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"},
			HasDNSKEY: true, HasRRSIG: true, HasDS: true, ChainValid: true},
		{Domain: "gap.com", TLD: "com", Failed: true, FailReason: "timeout"},
	}}
}

func TestStateRoundTrip(t *testing.T) {
	cp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cp.Load(); err != nil || st != nil {
		t.Fatalf("fresh dir: %v, %v", st, err)
	}
	if cp.Exists() {
		t.Error("Exists before any save")
	}
	day := simtime.Date(2016, 1, 1)
	st := NewState("fp-1")
	st.Day(day).Shards[0] = &Shard{File: "day-2016-01-01-shard-000.tsv", CRC: 42, Records: 2}
	st.Day(day).Done = true
	if err := cp.Save(st); err != nil {
		t.Fatal(err)
	}
	if !cp.Exists() {
		t.Error("Exists after save")
	}
	got, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != "fp-1" {
		t.Errorf("fingerprint: %q", got.Fingerprint)
	}
	dp := got.Day(day)
	if !dp.Done || dp.Shards[0] == nil || dp.Shards[0].CRC != 42 || dp.Shards[0].Records != 2 {
		t.Errorf("day progress: %+v, shard %+v", dp, dp.Shards[0])
	}
}

func TestCorruptStateFileRejected(t *testing.T) {
	dir := t.TempDir()
	cp, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Load(); err == nil {
		t.Error("corrupt state file accepted")
	}
}

func TestShardWriteLoadVerify(t *testing.T) {
	cp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.Date(2016, 3, 1)
	snap := testSnapshot(day)
	meta, err := cp.WriteShard(day, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Records != 2 || meta.File == "" {
		t.Fatalf("meta: %+v", meta)
	}
	got, err := cp.LoadShard(day, 1, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Records[0].Domain != "a.com" || !got.Records[1].Failed {
		t.Errorf("shard records: %+v", got.Records)
	}

	// Tamper with the shard file: the CRC catches it.
	path := filepath.Join(cp.Dir(), meta.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.LoadShard(day, 1, meta); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered shard: %v", err)
	}

	// A missing shard is an error, not a silent empty snapshot.
	if _, err := cp.LoadShard(day, 7, &Shard{File: "day-2016-03-01-shard-007.tsv"}); err == nil {
		t.Error("missing shard accepted")
	}

	// Wrong record count in the state is detected even with a valid file.
	fixed, err := cp.WriteShard(day, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	fixed.Records = 99
	if _, err := cp.LoadShard(day, 1, fixed); err == nil {
		t.Error("record-count mismatch accepted")
	}
}

func TestClear(t *testing.T) {
	dir := t.TempDir()
	cp, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.Date(2016, 3, 1)
	if _, err := cp.WriteShard(day, 0, testSnapshot(day)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(NewState("fp")); err != nil {
		t.Fatal(err)
	}
	// An unrelated file survives Clear.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cp.Clear(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "notes.txt" {
		t.Errorf("after Clear: %v", entries)
	}
	if cp.Exists() {
		t.Error("Exists after Clear")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}
