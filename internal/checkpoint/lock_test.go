package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLockExcludesLiveHolder(t *testing.T) {
	s := openTestStore(t)
	release, err := s.AcquireLock("sweep-a", "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	// A second acquisition while the holder (this very process) is alive
	// must fail loudly and name the holder.
	if _, err := s.AcquireLock("sweep-b", "fp-2"); err == nil ||
		!strings.Contains(err.Error(), "locked by sweep-a") {
		t.Fatalf("concurrent lock allowed: %v", err)
	}
	owner, pid, ok := s.LockedBy()
	if !ok || owner != "sweep-a" || pid != os.Getpid() {
		t.Fatalf("LockedBy: %q %d %v", owner, pid, ok)
	}
	if err := release(); err != nil {
		t.Fatal(err)
	}
	// Released: the next acquisition succeeds.
	release2, err := s.AcquireLock("sweep-b", "fp-2")
	if err != nil {
		t.Fatal(err)
	}
	if err := release2(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.LockedBy(); ok {
		t.Fatal("lockfile left behind after release")
	}
}

func TestLockBreaksStaleDeadOwner(t *testing.T) {
	s := openTestStore(t)
	// Fabricate a lock held by a process that no longer exists. PID
	// 2^22+1 is above the default pid_max on Linux, so no live process
	// can hold it.
	stale, _ := json.Marshal(lockInfo{PID: 1<<22 + 1, Owner: "dead-sweep", Fingerprint: "fp-x"})
	if err := os.WriteFile(filepath.Join(s.Dir(), lockFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	release, err := s.AcquireLock("sweep-new", "fp-y")
	if err != nil {
		t.Fatalf("stale lock not broken: %v", err)
	}
	defer release()
	if owner, _, _ := s.LockedBy(); owner != "sweep-new" {
		t.Fatalf("lock not re-owned: %q", owner)
	}
}

func TestLockBreaksUnparseablePayload(t *testing.T) {
	s := openTestStore(t)
	// A crash mid-write leaves a torn payload: stale by definition.
	if err := os.WriteFile(filepath.Join(s.Dir(), lockFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	release, err := s.AcquireLock("sweep", "fp")
	if err != nil {
		t.Fatalf("torn lock not broken: %v", err)
	}
	release()
}

func TestWriteShardAsRoundTrip(t *testing.T) {
	s := openTestStore(t)
	day := simtime.Day(42)
	snap := &dataset.Snapshot{Day: day, Records: []dataset.Record{
		{Domain: "b.com", TLD: "com", Operator: "op.net", HasDNSKEY: true},
		{Domain: "a.com", TLD: "com", Operator: "op.net"},
	}}
	snap.Canonicalize()

	plain, err := s.WriteShard(day, 0, snap)
	if err != nil {
		t.Fatal(err)
	}
	owned, err := s.WriteShardAs(day, 0, "worker/1!", snap)
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes, distinct files: racing owners can never clobber each
	// other, and identical content has identical checksums.
	if owned.File == plain.File {
		t.Fatalf("owner-tagged file collides with plain shard file: %s", owned.File)
	}
	if strings.ContainsAny(owned.File, "/!") {
		t.Fatalf("unsafe owner characters leaked into filename: %s", owned.File)
	}
	if owned.CRC != plain.CRC || owned.Records != plain.Records {
		t.Fatalf("same snapshot, different metadata: %+v vs %+v", owned, plain)
	}
	got, err := s.LoadShard(day, 0, owned)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Records[0].Domain != "a.com" {
		t.Fatalf("round-trip: %+v", got.Records)
	}

	// Clear removes owner-tagged shards too.
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadShard(day, 0, owned); err == nil {
		t.Fatal("owner-tagged shard survived Clear")
	}
}

func TestWriteShardAsEmptySnapshot(t *testing.T) {
	s := openTestStore(t)
	day := simtime.Day(7)
	snap := &dataset.Snapshot{Day: day}
	snap.Canonicalize()
	meta, err := s.WriteShardAs(day, 3, "w1", snap)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Records != 0 {
		t.Fatalf("empty shard records: %d", meta.Records)
	}
	got, err := s.LoadShard(day, 3, meta)
	if err != nil {
		t.Fatalf("empty shard does not round-trip: %v", err)
	}
	if len(got.Records) != 0 || got.Day != day {
		t.Fatalf("empty shard loaded as %+v", got)
	}
}
