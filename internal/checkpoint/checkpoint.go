// Package checkpoint persists the progress of a multi-day measurement
// sweep so an interrupted run — crash, SIGINT, OOM kill — resumes from the
// last completed shard instead of day zero. The paper's core evidence is
// an unbroken 21-month daily archive (section 4.1); at production scale a
// sweep that cannot survive its own process dying will eventually put a
// hole in that series.
//
// A checkpoint directory holds one JSON state file plus one trailered
// archive file per completed shard. Every write is durable (temp file +
// fsync + atomic rename), and every shard read back on resume is verified
// twice: the file's bytes against the CRC32C recorded in the state, and
// the archive's own per-section trailers. A shard that fails either check
// is reported damaged and re-scanned rather than trusted.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// stateFile is the JSON progress file inside a checkpoint directory.
const stateFile = "checkpoint.json"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Shard records one completed target shard of one day.
type Shard struct {
	// File is the shard archive's name inside the checkpoint directory.
	File string `json:"file"`
	// CRC is the CRC32C of the shard archive's bytes, verified on load.
	CRC uint32 `json:"crc32c"`
	// Records is the shard snapshot's record count, verified on load.
	Records int `json:"records"`
}

// DayProgress tracks one day of the sweep.
type DayProgress struct {
	// Done is set once every shard of the day has been written.
	Done bool `json:"done"`
	// Shards maps shard index to its completed archive.
	Shards map[int]*Shard `json:"shards"`
	// Partial maps shard index to its chunk-granular progress for
	// streaming sweeps, where the durable unit is a chunk of a shard
	// rather than the whole shard. A streaming day is Done when every
	// chunk of every shard is recorded here; the Shards map stays empty.
	Partial map[int]*ChunkProgress `json:"partial,omitempty"`
}

// ChunkProgress tracks one shard of a streaming day at chunk granularity:
// a SIGKILL mid-shard loses at most the chunk in flight, and a resume
// re-enters the shard at the first chunk missing from Done.
type ChunkProgress struct {
	// Chunk is the chunk size (targets per chunk) the shard was cut with.
	// A resume under a different chunk size is refused — chunk boundaries
	// are part of what the recorded files mean.
	Chunk int `json:"chunk"`
	// Chunks is the shard's total chunk count.
	Chunks int `json:"chunks"`
	// Targets is the shard's target count, so per-chunk target counts
	// (and the health ledger) reconstruct without re-deriving the plan.
	Targets int `json:"targets"`
	// Done maps chunk index to its completed archive.
	Done map[int]*Shard `json:"done"`
}

// Complete reports whether every chunk of the shard is recorded.
func (cp *ChunkProgress) Complete() bool {
	return len(cp.Done) == cp.Chunks
}

// ChunkTargets returns chunk c's target count under this progress' fixed
// chunk size (the last chunk is the remainder).
func (cp *ChunkProgress) ChunkTargets(c int) int {
	lo := c * cp.Chunk
	if lo >= cp.Targets {
		return 0
	}
	if hi := lo + cp.Chunk; hi < cp.Targets {
		return cp.Chunk
	}
	return cp.Targets - lo
}

// State is the whole sweep's progress.
type State struct {
	// Fingerprint identifies the sweep configuration (days, sample,
	// sharding, seeds). Resuming under a different configuration is
	// refused: mixing shards of two different sweeps would fabricate data.
	Fingerprint string `json:"fingerprint"`
	// Days maps day (YYYY-MM-DD) to its progress.
	Days map[string]*DayProgress `json:"days"`
}

// NewState creates an empty state for a sweep configuration.
func NewState(fingerprint string) *State {
	return &State{Fingerprint: fingerprint, Days: make(map[string]*DayProgress)}
}

// Day returns the progress entry for day, creating it if needed.
func (st *State) Day(day simtime.Day) *DayProgress {
	key := day.String()
	dp := st.Days[key]
	if dp == nil {
		dp = &DayProgress{Shards: make(map[int]*Shard)}
		st.Days[key] = dp
	}
	if dp.Shards == nil {
		dp.Shards = make(map[int]*Shard)
	}
	return dp
}

// Store is a checkpoint directory.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the checkpoint directory path.
func (s *Store) Dir() string { return s.dir }

// Exists reports whether a checkpoint state file is present.
func (s *Store) Exists() bool {
	_, err := os.Stat(filepath.Join(s.dir, stateFile))
	return err == nil
}

// Load returns the saved state, or nil when no checkpoint exists yet.
func (s *Store) Load() (*State, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, stateFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st := &State{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt state file %s: %w", stateFile, err)
	}
	if st.Days == nil {
		st.Days = make(map[string]*DayProgress)
	}
	return st, nil
}

// Save atomically and durably replaces the state file.
func (s *Store) Save(st *State) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return dataset.WriteFileAtomic(filepath.Join(s.dir, stateFile), append(data, '\n'))
}

// shardFile names one shard's archive inside the directory.
func shardFile(day simtime.Day, shard int) string {
	return fmt.Sprintf("day-%s-shard-%03d.tsv", day, shard)
}

// shardFileAs names one shard's archive written by a specific owner, so
// two workers racing on a re-leased shard can never clobber each other's
// bytes — each completion is its own file, chosen between by checksum.
func shardFileAs(day simtime.Day, shard int, owner string) string {
	return fmt.Sprintf("day-%s-shard-%03d.w-%s.tsv", day, shard, sanitizeOwner(owner))
}

// sanitizeOwner restricts an owner tag to filename-safe characters.
func sanitizeOwner(owner string) string {
	out := make([]byte, 0, len(owner))
	for i := 0; i < len(owner); i++ {
		c := owner[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "anon"
	}
	return string(out)
}

// WriteShard durably writes one completed shard snapshot as a trailered
// archive and returns its metadata for the state file.
func (s *Store) WriteShard(day simtime.Day, shard int, snap *dataset.Snapshot) (*Shard, error) {
	return s.writeShardFile(shardFile(day, shard), snap)
}

// WriteShardAs is WriteShard under an owner-tagged file name — the variant
// distributed workers use so duplicate completions of a re-leased shard
// land in distinct files instead of racing on one.
func (s *Store) WriteShardAs(day simtime.Day, shard int, owner string, snap *dataset.Snapshot) (*Shard, error) {
	return s.writeShardFile(shardFileAs(day, shard, owner), snap)
}

// writeShardFile durably writes one shard snapshot under the given name.
func (s *Store) writeShardFile(name string, snap *dataset.Snapshot) (*Shard, error) {
	var buf strings.Builder
	if err := snap.WriteArchiveSection(&buf); err != nil {
		return nil, err
	}
	data := []byte(buf.String())
	if err := dataset.WriteFileAtomic(filepath.Join(s.dir, name), data); err != nil {
		return nil, err
	}
	return &Shard{
		File:    name,
		CRC:     crc32.Checksum(data, castagnoli),
		Records: len(snap.Records),
	}, nil
}

// LoadShard re-reads a shard archive, verifying the file's bytes against
// the recorded CRC and the archive against its own trailers. The returned
// snapshot carries exactly the records written at checkpoint time; any
// mismatch is an error so the caller re-scans instead of trusting damage.
func (s *Store) LoadShard(day simtime.Day, shard int, meta *Shard) (*dataset.Snapshot, error) {
	name := meta.File
	if name == "" {
		name = shardFile(day, shard)
	}
	return s.loadVerified(day, name, meta)
}

// loadVerified reads one trailered archive file and verifies it against
// its state metadata: file bytes against the recorded CRC, the archive
// against its own trailers, record count against the state.
func (s *Store) loadVerified(day simtime.Day, name string, meta *Shard) (*dataset.Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: shard %s: %w", name, err)
	}
	if got := crc32.Checksum(data, castagnoli); got != meta.CRC {
		return nil, fmt.Errorf("checkpoint: shard %s: checksum mismatch (state %08x, file %08x)", name, meta.CRC, got)
	}
	store, err := dataset.ReadArchiveStrict(strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: shard %s: %w", name, err)
	}
	snap := store.Get(day)
	if snap == nil {
		return nil, fmt.Errorf("checkpoint: shard %s: no snapshot for %s", name, day)
	}
	if len(snap.Records) != meta.Records {
		return nil, fmt.Errorf("checkpoint: shard %s: %d records, state says %d", name, len(snap.Records), meta.Records)
	}
	return snap, nil
}

// ChunkShard returns the chunk-progress entry for one shard of a
// streaming day, creating it for the given geometry if absent. If an
// existing entry was recorded under a different geometry (chunk size or
// target count), it returns an error instead: the recorded chunk files
// were cut at different boundaries and cannot be reused.
func (dp *DayProgress) ChunkShard(shard, chunkSize, targets int) (*ChunkProgress, error) {
	if dp.Partial == nil {
		dp.Partial = make(map[int]*ChunkProgress)
	}
	cp := dp.Partial[shard]
	if cp == nil {
		nChunks := (targets + chunkSize - 1) / chunkSize
		if targets == 0 {
			nChunks = 0
		}
		cp = &ChunkProgress{Chunk: chunkSize, Chunks: nChunks, Targets: targets, Done: make(map[int]*Shard)}
		dp.Partial[shard] = cp
		return cp, nil
	}
	if cp.Chunk != chunkSize || cp.Targets != targets {
		return nil, fmt.Errorf("checkpoint: shard %d was chunked as %d targets in chunks of %d; this run wants %d in chunks of %d",
			shard, cp.Targets, cp.Chunk, targets, chunkSize)
	}
	if cp.Done == nil {
		cp.Done = make(map[int]*Shard)
	}
	return cp, nil
}

// chunkFile names one chunk's archive inside the directory.
func chunkFile(day simtime.Day, shard, chunk int) string {
	return fmt.Sprintf("day-%s-shard-%03d-chunk-%05d.tsv", day, shard, chunk)
}

// chunkFileAs is the owner-tagged variant for distributed workers (see
// shardFileAs).
func chunkFileAs(day simtime.Day, shard, chunk int, owner string) string {
	return fmt.Sprintf("day-%s-shard-%03d-chunk-%05d.w-%s.tsv", day, shard, chunk, sanitizeOwner(owner))
}

// WriteChunk durably writes one completed chunk snapshot as a trailered
// archive and returns its metadata for the state file.
func (s *Store) WriteChunk(day simtime.Day, shard, chunk int, snap *dataset.Snapshot) (*Shard, error) {
	return s.writeShardFile(chunkFile(day, shard, chunk), snap)
}

// WriteChunkAs is WriteChunk under an owner-tagged file name.
func (s *Store) WriteChunkAs(day simtime.Day, shard, chunk int, owner string, snap *dataset.Snapshot) (*Shard, error) {
	return s.writeShardFile(chunkFileAs(day, shard, chunk, owner), snap)
}

// LoadChunk re-reads a chunk archive with the same double verification as
// LoadShard (state CRC plus archive trailers).
func (s *Store) LoadChunk(day simtime.Day, shard, chunk int, meta *Shard) (*dataset.Snapshot, error) {
	name := meta.File
	if name == "" {
		name = chunkFile(day, shard, chunk)
	}
	return s.loadVerified(day, name, meta)
}

// LoadChunkAs re-reads an owner-tagged chunk archive, verified only by
// its own trailers — there is no recorded CRC because the writer died (or
// lost its lease) before reporting it. A missing file is returned as
// fs.ErrNotExist (via os.ReadFile) so callers can distinguish "never
// written" from "written but damaged".
func (s *Store) LoadChunkAs(day simtime.Day, shard, chunk int, owner string) (*dataset.Snapshot, error) {
	name := chunkFileAs(day, shard, chunk, owner)
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	store, err := dataset.ReadArchiveStrict(strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: chunk %s: %w", name, err)
	}
	snap := store.Get(day)
	if snap == nil {
		return nil, fmt.Errorf("checkpoint: chunk %s: no snapshot for %s", name, day)
	}
	return snap, nil
}

// Clear removes the state file and every shard archive — called after the
// final archive has been durably written, when the checkpoint has nothing
// left to protect.
func (s *Store) Clear() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if name == stateFile || (strings.HasPrefix(name, "day-") && strings.HasSuffix(name, ".tsv")) {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}
