package checkpoint

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

func TestChunkWriteLoadRoundTrip(t *testing.T) {
	cp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.Date(2016, 3, 1)
	snap := testSnapshot(day)
	meta, err := cp.WriteChunk(day, 2, 7, snap)
	if err != nil {
		t.Fatal(err)
	}
	if meta.File != "day-2016-03-01-shard-002-chunk-00007.tsv" {
		t.Errorf("chunk file name: %q", meta.File)
	}
	got, err := cp.LoadChunk(day, 2, 7, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, snap.Records) {
		t.Errorf("records differ after round trip")
	}

	// Corruption is detected.
	path := filepath.Join(cp.Dir(), meta.File)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.LoadChunk(day, 2, 7, meta); err == nil {
		t.Error("corrupt chunk loaded without error")
	}
}

func TestChunkOwnerTaggedLoad(t *testing.T) {
	cp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.Date(2016, 3, 2)
	snap := testSnapshot(day)

	// Never written → fs.ErrNotExist passes through.
	if _, err := cp.LoadChunkAs(day, 0, 0, "w1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing owner chunk: %v, want fs.ErrNotExist", err)
	}

	meta, err := cp.WriteChunkAs(day, 0, 0, "w1", snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.LoadChunkAs(day, 0, 0, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, snap.Records) {
		t.Errorf("records differ after owner-tagged round trip")
	}
	// Another owner's name does not collide.
	if _, err := cp.LoadChunkAs(day, 0, 0, "w2"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("other owner's chunk: %v, want fs.ErrNotExist", err)
	}

	// Trailer damage is detected without a recorded CRC.
	path := filepath.Join(cp.Dir(), meta.File)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.LoadChunkAs(day, 0, 0, "w1"); err == nil {
		t.Error("truncated owner chunk loaded without error")
	}
}

func TestChunkShardGeometry(t *testing.T) {
	dp := &DayProgress{}
	cp, err := dp.ChunkShard(0, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Chunks != 3 || cp.Chunk != 10 || cp.Targets != 25 {
		t.Fatalf("geometry: %+v", cp)
	}
	for c, want := range map[int]int{0: 10, 1: 10, 2: 5, 3: 0} {
		if got := cp.ChunkTargets(c); got != want {
			t.Errorf("ChunkTargets(%d) = %d, want %d", c, got, want)
		}
	}
	if cp.Complete() {
		t.Error("empty progress reported complete")
	}
	cp.Done[0], cp.Done[1], cp.Done[2] = &Shard{}, &Shard{}, &Shard{}
	if !cp.Complete() {
		t.Error("full progress not complete")
	}

	// Same geometry returns the same entry.
	again, err := dp.ChunkShard(0, 10, 25)
	if err != nil || again != cp {
		t.Fatalf("re-entry: %v, same=%v", err, again == cp)
	}
	// Different chunk size is refused.
	if _, err := dp.ChunkShard(0, 8, 25); err == nil {
		t.Error("chunk-size change accepted")
	}
	// Different target count is refused.
	if _, err := dp.ChunkShard(0, 10, 30); err == nil {
		t.Error("target-count change accepted")
	}
	// Empty shard has zero chunks and is trivially complete.
	empty, err := dp.ChunkShard(1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Chunks != 0 || !empty.Complete() {
		t.Errorf("empty shard: %+v", empty)
	}
}

func TestClearRemovesChunkFiles(t *testing.T) {
	cp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	day := simtime.Date(2016, 3, 3)
	if _, err := cp.WriteChunk(day, 0, 0, testSnapshot(day)); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.WriteChunkAs(day, 0, 1, "w1", testSnapshot(day)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(NewState("fp")); err != nil {
		t.Fatal(err)
	}
	if err := cp.Clear(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cp.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("left behind after Clear: %s", e.Name())
	}
}
