// Package registrar models domain registrars as behavioural agents with the
// DNSSEC policies the paper catalogues in Tables 2 and 3: whether they sign
// hosted zones (by default, opt-in, for a fee, or not at all), which TLDs
// they publish DS records for, how customers can convey DS records for
// externally hosted domains (web form, email, support ticket, live chat),
// whether uploaded DS records are validated against the served DNSKEYs, and
// whether email submissions are authenticated.
//
// A Registrar is exercised exactly like the paper exercised real ones: by
// purchasing domains, toggling DNSSEC, switching nameservers and pushing DS
// records through its channels (package probe). Nothing in the probe reads
// the policy struct back — every table cell is an observed behaviour.
package registrar

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Errors returned by registrar operations.
var (
	ErrNotSupported    = errors.New("registrar: operation not supported by this registrar")
	ErrNoSuchAccount   = errors.New("registrar: no such account")
	ErrNoSuchDomain    = errors.New("registrar: no such domain")
	ErrNotYourDomain   = errors.New("registrar: domain belongs to another account")
	ErrTLDNotOffered   = errors.New("registrar: TLD not offered")
	ErrPaymentRequired = errors.New("registrar: DNSSEC requires the paid add-on")
	ErrDSRejected      = errors.New("registrar: DS record failed validation")
	ErrEmailRejected   = errors.New("registrar: email failed authentication")
	ErrNotHosted       = errors.New("registrar: domain does not use registrar DNS")
	ErrHosted          = errors.New("registrar: domain uses registrar DNS")
	ErrPartnerDeclined = errors.New("registrar: partner registrar does not support the operation")
)

// SupportLevel describes a registrar's DNSSEC posture for hosted domains.
type SupportLevel int

const (
	// SupportNone: the registrar cannot sign hosted zones (17 of the top 20
	// registrars in Table 2).
	SupportNone SupportLevel = iota
	// SupportOptIn: free, but the customer must enable it (OVH).
	SupportOptIn
	// SupportPaid: DNSSEC is a paid add-on (GoDaddy, $35/year).
	SupportPaid
	// SupportDefault: zones are signed automatically (most of Table 3).
	SupportDefault
	// SupportDefaultSomePlans: signed by default only on certain DNS plans
	// (NameCheap).
	SupportDefaultSomePlans
)

// String names the support level.
func (s SupportLevel) String() string {
	switch s {
	case SupportOptIn:
		return "opt-in"
	case SupportPaid:
		return "paid"
	case SupportDefault:
		return "default"
	case SupportDefaultSomePlans:
		return "default-some-plans"
	}
	return "none"
}

// EmailAuthLevel describes how a registrar authenticates emailed DS records
// (section 6.4).
type EmailAuthLevel int

const (
	// EmailAuthNone: any email is accepted — even from an address other
	// than the account's (the worst finding).
	EmailAuthNone EmailAuthLevel = iota
	// EmailAuthAddress: the From header must match the account email.
	// Still forgeable, but blocks the trivial attack.
	EmailAuthAddress
	// EmailAuthCode: a security code bound to the account must be quoted.
	EmailAuthCode
)

// RoleKind is a registrar's standing for one TLD.
type RoleKind int

const (
	// RoleNone: the TLD is not offered.
	RoleNone RoleKind = iota
	// RoleRegistrar: accredited, with direct registry access.
	RoleRegistrar
	// RoleReseller: sells through a partner registrar who holds the
	// accreditation.
	RoleReseller
)

// Role is the per-TLD standing, naming the partner for resellers.
type Role struct {
	Kind    RoleKind
	Partner string // registrar ID of the accredited partner
}

// Policy is the complete behavioural configuration of a registrar,
// mirroring the columns of Tables 2-4.
type Policy struct {
	// ID is the stable identifier (used for registry accreditation).
	ID string
	// Name is the display name ("GoDaddy").
	Name string
	// NSHosts are the registrar's hosting nameservers
	// ("ns01.domaincontrol.com", ...). Their second-level domain is what
	// the measurement groups by.
	NSHosts []string

	// HostedDNSSEC is the signing posture for registrar-hosted domains.
	HostedDNSSEC SupportLevel
	// DNSSECFee is the yearly fee when HostedDNSSEC is SupportPaid.
	DNSSECFee float64
	// DNSSECPlans marks which plans sign by default under
	// SupportDefaultSomePlans.
	DNSSECPlans map[string]bool
	// DefaultPlan is assigned when a purchase names no plan.
	DefaultPlan string
	// PublishDSTLDs restricts the TLDs for which the registrar uploads DS
	// records for zones it signs; nil means all TLDs it can reach. (Loopia
	// signs everything but only publishes DS for .se — Table 3.)
	PublishDSTLDs map[string]bool

	// OwnerDNSSEC is whether DS upload is possible at all when the owner
	// runs the nameservers.
	OwnerDNSSEC bool
	// DSChannel is how the DS record is conveyed.
	DSChannel channel.Kind
	// ValidatesDS: check an uploaded DS against the served DNSKEYs before
	// accepting it (only OVH, DreamHost and PCExtreme did).
	ValidatesDS bool
	// AcceptsDNSKEY: the customer uploads a DNSKEY and the registrar
	// derives the DS itself (Amazon).
	AcceptsDNSKEY bool
	// FetchesDNSKEY: the customer merely requests DNSSEC and the registrar
	// fetches the DNSKEY from the domain's nameservers (PCExtreme).
	FetchesDNSKEY bool
	// EmailAuth is the authentication applied to emailed DS records.
	EmailAuth EmailAuthLevel
	// ChatErrorRate is the probability a chat agent installs the DS on the
	// wrong domain.
	ChatErrorRate float64

	// Roles maps TLD → standing.
	Roles map[string]Role
	// DSSupportFrom is the first simulation day this registrar can pass DS
	// records to registries at all; before it, uploads fail (KeySystems
	// "enabled DNSSEC at a later date"). Zero means always.
	DSSupportFrom simtime.Day

	// Algorithm used for zones this registrar signs (default Ed25519).
	Algorithm dnswire.Algorithm
}

// Account is one customer relationship.
type Account struct {
	Email string
	// SecurityCode is the account-bound code used by EmailAuthCode.
	SecurityCode string
	// Paid records purchased add-ons, keyed by "dnssec:<domain>".
	Paid map[string]bool
}

// Domain is one domain under management.
type Domain struct {
	Name         string
	TLD          string
	AccountEmail string
	Plan         string
	// Hosted is true while the registrar runs the authoritative DNS.
	Hosted bool
	// ExternalNS holds the owner's nameservers when not hosted.
	ExternalNS []string
	// DNSSECOn tracks hosted-zone signing state.
	DNSSECOn bool

	zone   *zone.Zone
	signer *zone.Signer
}

// Deps are the registrar's connections to the outside world.
type Deps struct {
	// Registries gives direct access per TLD where the registrar is
	// accredited.
	Registries map[string]*registry.Registry
	// Net carries the registrar's DNSKEY-fetching and validation queries
	// and hosts its nameservers.
	Net *dnsserver.MemNet
	// Clock supplies the simulation day.
	Clock func() simtime.Day
	// Rng drives the chat-agent error model (seeded per registrar).
	Rng *rand.Rand
}

// Registrar is a behavioural registrar agent.
type Registrar struct {
	Policy
	deps Deps

	mu       sync.RWMutex
	accounts map[string]*Account
	domains  map[string]*Domain
	partners map[string]*Registrar // tld -> partner agent

	srv *dnsserver.Authoritative
}

// New creates a registrar, registers its hosting nameservers on the
// network, and requests accreditation at every registry it is a registrar
// for.
func New(p Policy, deps Deps) (*Registrar, error) {
	if p.Algorithm == 0 {
		p.Algorithm = dnswire.AlgED25519
	}
	if deps.Clock == nil {
		deps.Clock = func() simtime.Day { return simtime.GTLDStart }
	}
	if deps.Rng == nil {
		deps.Rng = rand.New(rand.NewSource(int64(len(p.ID)) + 7919))
	}
	if len(p.NSHosts) == 0 {
		return nil, fmt.Errorf("registrar %s: no nameserver hosts", p.ID)
	}
	r := &Registrar{
		Policy:   p,
		deps:     deps,
		accounts: make(map[string]*Account),
		domains:  make(map[string]*Domain),
		partners: make(map[string]*Registrar),
		srv:      dnsserver.NewAuthoritative(),
	}
	for _, host := range p.NSHosts {
		deps.Net.Register(host, r.srv)
	}
	for tld, role := range p.Roles {
		if role.Kind == RoleRegistrar {
			reg, ok := deps.Registries[tld]
			if !ok {
				return nil, fmt.Errorf("registrar %s: no registry for .%s", p.ID, tld)
			}
			reg.Accredit(p.ID)
		}
	}
	return r, nil
}

// SetPartner wires the reseller relationship for one TLD; called by the
// world builder after all registrars exist.
func (r *Registrar) SetPartner(tld string, partner *Registrar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partners[tld] = partner
}

// Server exposes the hosting nameserver (for probe verification).
func (r *Registrar) Server() *dnsserver.Authoritative { return r.srv }

// now returns the wall-clock simulation time.
func (r *Registrar) now() time.Time { return r.deps.Clock().Time() }

// regPath resolves how this registrar reaches the registry for a TLD: the
// registry handle plus the accredited actor ID (its own, or its partner's
// chain). The error reports an unreachable TLD.
type regPath struct {
	reg *registry.Registry
	// actorID is the accredited registrar ID used at the registry.
	actorID string
	// chain are the registrars traversed (self first), used to apply each
	// hop's DS-capability gate.
	chain []*Registrar
}

func (r *Registrar) regPathFor(tld string) (*regPath, error) {
	seen := map[string]bool{}
	cur := r
	path := &regPath{}
	for {
		if seen[cur.ID] {
			return nil, fmt.Errorf("registrar %s: partner cycle at %s", r.ID, cur.ID)
		}
		seen[cur.ID] = true
		path.chain = append(path.chain, cur)
		role, ok := cur.Roles[tld]
		if !ok || role.Kind == RoleNone {
			return nil, fmt.Errorf("%w: %s via %s", ErrTLDNotOffered, tld, cur.ID)
		}
		if role.Kind == RoleRegistrar {
			reg, ok := cur.deps.Registries[tld]
			if !ok {
				return nil, fmt.Errorf("%w: %s has no registry handle for .%s", ErrTLDNotOffered, cur.ID, tld)
			}
			path.reg = reg
			path.actorID = cur.ID
			return path, nil
		}
		cur.mu.RLock()
		next := cur.partners[tld]
		cur.mu.RUnlock()
		if next == nil {
			return nil, fmt.Errorf("%w: %s has no partner for .%s", ErrTLDNotOffered, cur.ID, tld)
		}
		cur = next
	}
}

// dsCapable reports whether every hop in the path can handle DS records on
// the given day.
func (p *regPath) dsCapable(day simtime.Day) bool {
	for _, hop := range p.chain {
		if hop.DSSupportFrom != 0 && day < hop.DSSupportFrom {
			return false
		}
	}
	return true
}

// Plans lists the DNS plans the storefront advertises (the default plan
// first). Public information a probing customer can read off the website.
func (r *Registrar) Plans() []string {
	out := []string{}
	if r.DefaultPlan != "" {
		out = append(out, r.DefaultPlan)
	}
	for plan := range r.DNSSECPlans {
		if plan != r.DefaultPlan {
			out = append(out, plan)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// RoleFor answers the Table 4 survey question: is this organization a
// registrar, a reseller (and through whom), or absent for the given TLD.
func (r *Registrar) RoleFor(tld string) Role {
	role, ok := r.Roles[tld]
	if !ok {
		return Role{Kind: RoleNone}
	}
	return role
}

// CreateAccount opens a customer account.
func (r *Registrar) CreateAccount(email string) *Account {
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.accounts[email]; ok {
		return a
	}
	a := &Account{
		Email:        email,
		SecurityCode: fmt.Sprintf("%s-%04d", r.ID, len(r.accounts)+1137),
		Paid:         make(map[string]bool),
	}
	r.accounts[email] = a
	return a
}

// account looks up an account.
func (r *Registrar) account(email string) (*Account, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.accounts[email]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchAccount, email)
	}
	return a, nil
}

// domain looks up a domain owned by the account.
func (r *Registrar) domain(accountEmail, name string) (*Domain, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.domains[dnswire.CanonicalName(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDomain, name)
	}
	if d.AccountEmail != accountEmail {
		return nil, fmt.Errorf("%w: %s", ErrNotYourDomain, name)
	}
	return d, nil
}

// Domain returns the managed domain record (for probe verification).
func (r *Registrar) Domain(name string) (*Domain, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.domains[dnswire.CanonicalName(name)]
	return d, ok
}

// DomainNames lists all domains under management.
func (r *Registrar) DomainNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.domains))
	for d := range r.domains {
		out = append(out, d)
	}
	return out
}

// Purchase registers a domain with registrar-hosted DNS under the given
// plan (the registrar's default when plan is empty). DNSSEC-by-default
// policies take effect immediately, as the paper observed with the Table 3
// registrars.
func (r *Registrar) Purchase(accountEmail, name, plan string) error {
	if _, err := r.account(accountEmail); err != nil {
		return err
	}
	name = dnswire.CanonicalName(name)
	tld, _ := dnswire.Parent(name)
	path, err := r.regPathFor(tld)
	if err != nil {
		return err
	}
	if plan == "" {
		plan = r.DefaultPlan
	}
	d := &Domain{
		Name:         name,
		TLD:          tld,
		AccountEmail: accountEmail,
		Plan:         plan,
		Hosted:       true,
	}
	d.zone = r.buildHostedZone(name)
	if err := path.reg.Register(path.actorID, name, r.NSHosts); err != nil {
		return err
	}
	r.srv.AddZone(d.zone)
	r.mu.Lock()
	r.domains[name] = d
	r.mu.Unlock()

	if r.signsByDefault(plan) {
		// Best-effort, as in the wild: a failed DS upload leaves a partial
		// deployment rather than failing the purchase.
		_ = r.enableHostedDNSSEC(d, path)
	}
	return nil
}

// signsByDefault reports whether a hosted domain on the plan gets DNSSEC
// without customer action.
func (r *Registrar) signsByDefault(plan string) bool {
	switch r.HostedDNSSEC {
	case SupportDefault:
		return true
	case SupportDefaultSomePlans:
		return r.DNSSECPlans[plan]
	}
	return false
}

// buildHostedZone creates the standard hosting zone contents.
func (r *Registrar) buildHostedZone(name string) *zone.Zone {
	z := zone.New(name)
	z.MustAdd(dnswire.NewRR(name, 3600, &dnswire.SOA{
		MName: r.NSHosts[0], RName: "hostmaster." + dnswire.SecondLevel(r.NSHosts[0]),
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	for _, host := range r.NSHosts {
		z.MustAdd(dnswire.NewRR(name, 3600, &dnswire.NS{Host: host}))
	}
	z.MustAdd(dnswire.NewRR(name, 300, &dnswire.A{Addr: netip.MustParseAddr("198.51.100.10")}))
	z.MustAdd(dnswire.NewRR("www."+name, 300, &dnswire.A{Addr: netip.MustParseAddr("198.51.100.10")}))
	return z
}

// EnableHostedDNSSEC turns on DNSSEC for a registrar-hosted domain, subject
// to the registrar's policy (opt-in, paid, unsupported).
func (r *Registrar) EnableHostedDNSSEC(accountEmail, name string, pay bool) error {
	a, err := r.account(accountEmail)
	if err != nil {
		return err
	}
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	if !d.Hosted {
		return ErrNotHosted
	}
	switch r.HostedDNSSEC {
	case SupportNone:
		return fmt.Errorf("%w: %s does not sign hosted zones", ErrNotSupported, r.Name)
	case SupportPaid:
		if !pay && !a.Paid["dnssec:"+name] {
			return fmt.Errorf("%w: $%.0f/year", ErrPaymentRequired, r.DNSSECFee)
		}
		a.Paid["dnssec:"+name] = true
	case SupportDefaultSomePlans:
		if !r.DNSSECPlans[d.Plan] {
			return fmt.Errorf("%w: plan %q does not include DNSSEC", ErrNotSupported, d.Plan)
		}
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	return r.enableHostedDNSSEC(d, path)
}

// enableHostedDNSSEC signs the hosted zone and uploads the DS when policy
// and the registry path allow. A signed zone whose DS never reaches the
// registry is precisely the paper's "partial deployment".
func (r *Registrar) enableHostedDNSSEC(d *Domain, path *regPath) error {
	if d.signer == nil {
		signer, err := zone.NewSigner(r.Algorithm, r.now())
		if err != nil {
			return err
		}
		// Hosted-zone signatures are kept valid across the whole
		// measurement window; operational re-signing is out of scope.
		signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
		d.signer = signer
	}
	if err := d.signer.Sign(d.zone); err != nil {
		return err
	}
	d.DNSSECOn = true
	if r.PublishDSTLDs != nil && !r.PublishDSTLDs[d.TLD] {
		return nil // signs, but never uploads DS for this TLD
	}
	if !path.dsCapable(r.deps.Clock()) {
		return fmt.Errorf("%w: DS upload path unavailable", ErrPartnerDeclined)
	}
	dss, err := d.signer.DSRecords(d.Name, dnswire.DigestSHA256)
	if err != nil {
		return err
	}
	return path.reg.SetDS(path.actorID, d.Name, dss)
}

// RolloverHostedDNSSEC rotates a hosted domain's keys with a
// make-before-break KSK rollover (RFC 6781 double-DS): the new KSK is
// pre-published alongside the old one, the registry carries DS records for
// both during the transition, then the zone is re-signed with the new keys
// only and the old DS is withdrawn. The domain validates at every step —
// the safe rollover the paper's section 8 asks registrars to offer.
func (r *Registrar) RolloverHostedDNSSEC(accountEmail, name string) error {
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	if !d.Hosted {
		return ErrNotHosted
	}
	if d.signer == nil || !d.DNSSECOn {
		return fmt.Errorf("%w: DNSSEC not enabled on %s", ErrNotSupported, name)
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	newSigner, err := zone.NewSigner(r.Algorithm, r.now())
	if err != nil {
		return err
	}
	newSigner.Expiration = simtime.End.Time().AddDate(1, 0, 0)

	publishesDS := r.PublishDSTLDs == nil || r.PublishDSTLDs[d.TLD]

	// Phase 1: pre-publish the new KSK and install both DS records.
	if err := d.zone.Add(newSigner.KSK.RR(d.Name, 3600)); err != nil {
		return err
	}
	if err := d.signer.SignSet(d.zone, d.Name, dnswire.TypeDNSKEY); err != nil {
		return err
	}
	if publishesDS {
		oldDS, err := d.signer.DSRecords(d.Name, dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		newDS, err := newSigner.DSRecords(d.Name, dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		if err := path.reg.SetDS(path.actorID, d.Name, append(oldDS, newDS...)); err != nil {
			return err
		}
	}

	// Phase 2: re-sign everything with the new keys and retire the old DS.
	// (In production a TTL-derived hold-down separates the phases; the
	// registrar agent applies them back to back, which is still valid —
	// at no point is the served chain unverifiable.)
	if err := newSigner.Sign(d.zone); err != nil {
		return err
	}
	d.signer = newSigner
	if publishesDS {
		newDS, err := newSigner.DSRecords(d.Name, dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		return path.reg.SetDS(path.actorID, d.Name, newDS)
	}
	return nil
}

// DisableHostedDNSSEC removes DNSSEC from a hosted domain (DS first, then
// the zone records, per operational best practice).
func (r *Registrar) DisableHostedDNSSEC(accountEmail, name string) error {
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	if !d.Hosted {
		return ErrNotHosted
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	if err := path.reg.DeleteDS(path.actorID, d.Name); err != nil {
		return err
	}
	zone.Unsign(d.zone)
	d.DNSSECOn = false
	d.signer = nil
	return nil
}

// UseExternalNameservers switches the domain to owner-run DNS: the registry
// delegation is updated and the registrar stops hosting the zone. Any DS at
// the registry is withdrawn, since the registrar's keys no longer apply.
func (r *Registrar) UseExternalNameservers(accountEmail, name string, ns []string) error {
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	if err := path.reg.SetNS(path.actorID, d.Name, ns); err != nil {
		return err
	}
	if len(d.zone.Lookup(d.Name, dnswire.TypeDNSKEY)) > 0 || d.DNSSECOn {
		_ = path.reg.DeleteDS(path.actorID, d.Name)
	}
	r.srv.RemoveZone(d.Name)
	d.Hosted = false
	d.DNSSECOn = false
	d.ExternalNS = append([]string(nil), ns...)
	return nil
}

// UseRegistrarHosting switches the domain back to registrar DNS.
func (r *Registrar) UseRegistrarHosting(accountEmail, name string) error {
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	if err := path.reg.SetNS(path.actorID, d.Name, r.NSHosts); err != nil {
		return err
	}
	_ = path.reg.DeleteDS(path.actorID, d.Name)
	if d.zone == nil {
		d.zone = r.buildHostedZone(d.Name)
	}
	r.srv.AddZone(d.zone)
	d.Hosted = true
	d.ExternalNS = nil
	if r.signsByDefault(d.Plan) {
		_ = r.enableHostedDNSSEC(d, path)
	}
	return nil
}

// TransferIn moves a domain from another registrar to this one (the
// mechanism behind Antagonist's gradual migration in section 6.2: a
// reseller switching partners can only move each domain at the end of its
// registration period). The receiving registrar takes over hosting; its own
// DNSSEC policy then applies.
func (r *Registrar) TransferIn(accountEmail, name string, from *Registrar) error {
	r.CreateAccount(accountEmail)
	name = dnswire.CanonicalName(name)
	tld, _ := dnswire.Parent(name)
	fromPath, err := from.regPathFor(tld)
	if err != nil {
		return err
	}
	toPath, err := r.regPathFor(tld)
	if err != nil {
		return err
	}
	if fromPath.reg != toPath.reg {
		return fmt.Errorf("%w: registrars use different registries for .%s", ErrTLDNotOffered, tld)
	}
	if err := fromPath.reg.TransferRegistrar(fromPath.actorID, toPath.actorID, name); err != nil {
		return err
	}
	// The losing registrar forgets the domain and stops hosting it.
	from.mu.Lock()
	if old := from.domains[name]; old != nil && old.Hosted {
		from.srv.RemoveZone(name)
	}
	delete(from.domains, name)
	from.mu.Unlock()

	d := &Domain{Name: name, TLD: tld, AccountEmail: accountEmail, Plan: r.DefaultPlan, Hosted: true}
	d.zone = r.buildHostedZone(name)
	if err := toPath.reg.SetNS(toPath.actorID, name, r.NSHosts); err != nil {
		return err
	}
	// Stale DS records from the previous operator's keys must go.
	_ = toPath.reg.DeleteDS(toPath.actorID, name)
	r.srv.AddZone(d.zone)
	r.mu.Lock()
	r.domains[name] = d
	r.mu.Unlock()
	if r.signsByDefault(d.Plan) {
		_ = r.enableHostedDNSSEC(d, toPath)
	}
	return nil
}

// fetchDNSKEYs queries the domain's delegated nameservers for DNSKEYs.
// The caller's context bounds the lookups, so probe timeouts and
// cancellation propagate into the registrar's own DNS traffic.
func (r *Registrar) fetchDNSKEYs(ctx context.Context, name string, ns []string) []*dnswire.DNSKEY {
	q := dnswire.NewQuery(uint16(r.deps.Rng.Intn(1<<16)), name, dnswire.TypeDNSKEY)
	q.SetEDNS(4096, true)
	for _, host := range ns {
		resp, err := r.deps.Net.Exchange(ctx, host, q)
		if err != nil || resp.RCode != dnswire.RCodeSuccess {
			continue
		}
		var keys []*dnswire.DNSKEY
		for _, rr := range resp.Answers {
			if dk, ok := rr.Data.(*dnswire.DNSKEY); ok {
				keys = append(keys, dk)
			}
		}
		return keys
	}
	return nil
}

// installDS pushes a DS set to the registry for an externally hosted
// domain, applying the registrar's validation policy.
func (r *Registrar) installDS(ctx context.Context, d *Domain, ds []*dnswire.DS, validate bool) error {
	if d.Hosted {
		return ErrHosted
	}
	if validate {
		keys := r.fetchDNSKEYs(ctx, d.Name, d.ExternalNS)
		if !dnssec.MatchAnyDS(d.Name, ds, keys) {
			return fmt.Errorf("%w: does not match any served DNSKEY", ErrDSRejected)
		}
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	if !path.dsCapable(r.deps.Clock()) {
		return fmt.Errorf("%w: DS upload path unavailable", ErrPartnerDeclined)
	}
	return path.reg.SetDS(path.actorID, d.Name, ds)
}

// RemoveDS withdraws the DS records of a domain.
func (r *Registrar) RemoveDS(accountEmail, name string) error {
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	return path.reg.DeleteDS(path.actorID, d.Name)
}
