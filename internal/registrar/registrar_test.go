package registrar_test

import (
	"context"
	"errors"
	"testing"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// world bundles an ecosystem with helpers for registrar tests.
type world struct {
	*dnstest.Ecosystem
	t *testing.T
}

func newWorld(t *testing.T) *world {
	t.Helper()
	e, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{TLDs: []string{"com", "se"}})
	if err != nil {
		t.Fatal(err)
	}
	return &world{Ecosystem: e, t: t}
}

// newRegistrar builds a registrar agent wired into the world.
func (w *world) newRegistrar(p registrar.Policy) *registrar.Registrar {
	w.t.Helper()
	if p.Roles == nil {
		p.Roles = map[string]registrar.Role{"com": {Kind: registrar.RoleRegistrar}}
	}
	r, err := registrar.New(p, registrar.Deps{
		Registries: w.Registries,
		Net:        w.Net,
		Clock:      w.Clock.Day,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return r
}

// classify reports the paper-style deployment class of a domain, observed
// through DNS.
func (w *world) classify(domain string) dnssec.Deployment {
	w.t.Helper()
	tld, _ := dnswire.Parent(domain)
	reg, ok := w.Registries[tld].Registration(domain)
	if !ok {
		w.t.Fatalf("%s not registered", domain)
	}
	hasDS := len(reg.DS) > 0
	v := w.Validating()
	res, chain, err := v.Lookup(context.Background(), domain, dnswire.TypeDNSKEY)
	if err != nil {
		w.t.Fatalf("lookup %s: %v", domain, err)
	}
	hasKey := len(res.RRSet(domain, dnswire.TypeDNSKEY).RRs) > 0
	return dnssec.Classify(hasKey, hasDS, chain.Status == dnssec.Secure)
}

// ownerNS spins up an owner-run nameserver with a signed zone, returning
// the NS host, the signer and the zone.
func (w *world) ownerNS(domain, host string) (*zone.Signer, *zone.Zone) {
	w.t.Helper()
	z := zone.New(domain)
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.SOA{
		MName: host, RName: "hostmaster." + domain,
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.NS{Host: host}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, w.Clock.Day().Time())
	if err != nil {
		w.t.Fatal(err)
	}
	signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	if err := signer.Sign(z); err != nil {
		w.t.Fatal(err)
	}
	srv := dnsserver.NewAuthoritative()
	srv.AddZone(z)
	w.Net.Register(host, srv)
	return signer, z
}

func TestPurchaseHostedResolves(t *testing.T) {
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "basic", Name: "Basic", NSHosts: []string{"ns1.basic.net", "ns2.basic.net"},
	})
	r.CreateAccount("alice@example.net")
	if err := r.Purchase("alice@example.net", "shop.com", ""); err != nil {
		t.Fatal(err)
	}
	res, err := w.Resolver(false).Resolve(context.Background(), "www.shop.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != dnswire.RCodeSuccess || len(res.Answers) == 0 {
		t.Fatalf("hosted domain does not resolve: %v", res.RCode)
	}
	if w.classify("shop.com") != dnssec.DeploymentNone {
		t.Errorf("no-DNSSEC registrar produced %v", w.classify("shop.com"))
	}
	// Purchase requires an account and an offered TLD.
	if err := r.Purchase("ghost@example.net", "x.com", ""); !errors.Is(err, registrar.ErrNoSuchAccount) {
		t.Errorf("ghost purchase: %v", err)
	}
	if err := r.Purchase("alice@example.net", "x.se", ""); !errors.Is(err, registrar.ErrTLDNotOffered) {
		t.Errorf("unoffered TLD: %v", err)
	}
}

func TestHostedDNSSECPolicies(t *testing.T) {
	w := newWorld(t)

	t.Run("none", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{ID: "noreg", Name: "NoDNSSEC", NSHosts: []string{"ns1.noreg.net"}})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "no1.com", ""); err != nil {
			t.Fatal(err)
		}
		if err := r.EnableHostedDNSSEC("a@x.net", "no1.com", false); !errors.Is(err, registrar.ErrNotSupported) {
			t.Errorf("EnableHostedDNSSEC: %v", err)
		}
	})

	t.Run("optin", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "ovh-like", Name: "OptIn", NSHosts: []string{"ns1.optin.net"},
			HostedDNSSEC: registrar.SupportOptIn,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "opt.com", ""); err != nil {
			t.Fatal(err)
		}
		// Not signed until the customer opts in.
		if got := w.classify("opt.com"); got != dnssec.DeploymentNone {
			t.Fatalf("before opt-in: %v", got)
		}
		if err := r.EnableHostedDNSSEC("a@x.net", "opt.com", false); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("opt.com"); got != dnssec.DeploymentFull {
			t.Fatalf("after opt-in: %v", got)
		}
		if err := r.DisableHostedDNSSEC("a@x.net", "opt.com"); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("opt.com"); got != dnssec.DeploymentNone {
			t.Fatalf("after disable: %v", got)
		}
	})

	t.Run("paid", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "godaddy-like", Name: "Paid", NSHosts: []string{"ns1.paid.net"},
			HostedDNSSEC: registrar.SupportPaid, DNSSECFee: 35,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "premium.com", ""); err != nil {
			t.Fatal(err)
		}
		if err := r.EnableHostedDNSSEC("a@x.net", "premium.com", false); !errors.Is(err, registrar.ErrPaymentRequired) {
			t.Errorf("unpaid enable: %v", err)
		}
		if err := r.EnableHostedDNSSEC("a@x.net", "premium.com", true); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("premium.com"); got != dnssec.DeploymentFull {
			t.Fatalf("after paying: %v", got)
		}
	})

	t.Run("default", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "transip-like", Name: "Default", NSHosts: []string{"ns1.dflt.net"},
			HostedDNSSEC: registrar.SupportDefault,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "auto.com", ""); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("auto.com"); got != dnssec.DeploymentFull {
			t.Fatalf("default signing: %v", got)
		}
	})

	t.Run("some-plans", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "namecheap-like", Name: "SomePlans", NSHosts: []string{"ns1.plans.net"},
			HostedDNSSEC: registrar.SupportDefaultSomePlans,
			DNSSECPlans:  map[string]bool{"premiumdns": true},
			DefaultPlan:  "freedns",
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "free.com", ""); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("free.com"); got != dnssec.DeploymentNone {
			t.Fatalf("free plan signed: %v", got)
		}
		if err := r.EnableHostedDNSSEC("a@x.net", "free.com", false); !errors.Is(err, registrar.ErrNotSupported) {
			t.Errorf("free plan enable: %v", err)
		}
		if err := r.Purchase("a@x.net", "prem.com", "premiumdns"); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("prem.com"); got != dnssec.DeploymentFull {
			t.Fatalf("premium plan: %v", got)
		}
	})
}

func TestPartialDSPublication(t *testing.T) {
	// Loopia-style: signs every hosted zone but uploads DS only for .se.
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "loopia-like", Name: "Partial", NSHosts: []string{"ns1.partial.se"},
		HostedDNSSEC:  registrar.SupportDefault,
		PublishDSTLDs: map[string]bool{"se": true},
		Roles: map[string]registrar.Role{
			"com": {Kind: registrar.RoleRegistrar},
			"se":  {Kind: registrar.RoleRegistrar},
		},
	})
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "svensk.se", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.Purchase("a@x.net", "global.com", ""); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("svensk.se"); got != dnssec.DeploymentFull {
		t.Errorf(".se domain: %v", got)
	}
	// The .com domain is signed (DNSKEY served) but has no DS: partial.
	if got := w.classify("global.com"); got != dnssec.DeploymentPartial {
		t.Errorf(".com domain: %v", got)
	}
}

func TestExternalNameserverSwitch(t *testing.T) {
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "switch", Name: "Switch", NSHosts: []string{"ns1.switch.net"},
		HostedDNSSEC: registrar.SupportDefault,
	})
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "move.com", ""); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("move.com"); got != dnssec.DeploymentFull {
		t.Fatalf("hosted: %v", got)
	}
	w.ownerNS("move.com", "ns1.owner.example")
	if err := r.UseExternalNameservers("a@x.net", "move.com", []string{"ns1.owner.example"}); err != nil {
		t.Fatal(err)
	}
	// The registrar must clear its DS: its keys no longer apply. The owner
	// zone is signed but its DS is not yet uploaded → partial.
	if got := w.classify("move.com"); got != dnssec.DeploymentPartial {
		t.Fatalf("after switch: %v", got)
	}
	reg, _ := w.Registries["com"].Registration("move.com")
	if len(reg.NS) != 1 || reg.NS[0] != "ns1.owner.example" {
		t.Errorf("registry NS: %v", reg.NS)
	}
	// And back to hosted: re-signed with DS by default.
	if err := r.UseRegistrarHosting("a@x.net", "move.com"); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("move.com"); got != dnssec.DeploymentFull {
		t.Fatalf("back to hosted: %v", got)
	}
}

func TestWebDSUploadValidationPolicies(t *testing.T) {
	w := newWorld(t)
	mk := func(id string, validates bool) *registrar.Registrar {
		r := w.newRegistrar(registrar.Policy{
			ID: id, Name: id, NSHosts: []string{"ns1." + id + ".net"},
			OwnerDNSSEC: true, DSChannel: channel.Web, ValidatesDS: validates,
		})
		r.CreateAccount("a@x.net")
		return r
	}
	garbage := &dnswire.DS{KeyTag: 1, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}

	t.Run("validating registrar rejects garbage", func(t *testing.T) {
		r := mk("strict", true)
		if err := r.Purchase("a@x.net", "strict.com", ""); err != nil {
			t.Fatal(err)
		}
		signer, _ := w.ownerNS("strict.com", "ns1.owner1.example")
		if err := r.UseExternalNameservers("a@x.net", "strict.com", []string{"ns1.owner1.example"}); err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDSWeb(context.Background(), "a@x.net", "strict.com", garbage); !errors.Is(err, registrar.ErrDSRejected) {
			t.Errorf("garbage DS: %v", err)
		}
		good, err := signer.DSRecords("strict.com", dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDSWeb(context.Background(), "a@x.net", "strict.com", good[0]); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("strict.com"); got != dnssec.DeploymentFull {
			t.Errorf("after good DS: %v", got)
		}
	})

	t.Run("sloppy registrar accepts garbage and breaks the domain", func(t *testing.T) {
		r := mk("sloppy", false)
		if err := r.Purchase("a@x.net", "sloppy.com", ""); err != nil {
			t.Fatal(err)
		}
		w.ownerNS("sloppy.com", "ns1.owner2.example")
		if err := r.UseExternalNameservers("a@x.net", "sloppy.com", []string{"ns1.owner2.example"}); err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDSWeb(context.Background(), "a@x.net", "sloppy.com", garbage); err != nil {
			t.Fatalf("sloppy registrar rejected: %v", err)
		}
		// The domain is now bogus for validating resolvers.
		if got := w.classify("sloppy.com"); got != dnssec.DeploymentBroken {
			t.Errorf("after garbage DS: %v", got)
		}
	})

	t.Run("no web channel", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "nochannel", Name: "NoChannel", NSHosts: []string{"ns1.noch.net"},
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "noch.com", ""); err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDSWeb(context.Background(), "a@x.net", "noch.com", garbage); !errors.Is(err, registrar.ErrNotSupported) {
			t.Errorf("no-channel submit: %v", err)
		}
	})
}

func TestEmailDSAuthentication(t *testing.T) {
	w := newWorld(t)
	setup := func(id string, auth registrar.EmailAuthLevel) (*registrar.Registrar, *dnswire.DS) {
		r := w.newRegistrar(registrar.Policy{
			ID: id, Name: id, NSHosts: []string{"ns1." + id + ".net"},
			OwnerDNSSEC: true, DSChannel: channel.Email, EmailAuth: auth,
		})
		r.CreateAccount("owner@legit.net")
		if err := r.Purchase("owner@legit.net", id+".com", ""); err != nil {
			t.Fatal(err)
		}
		signer, _ := w.ownerNS(id+".com", "ns1.owner-"+id+".example")
		if err := r.UseExternalNameservers("owner@legit.net", id+".com", []string{"ns1.owner-" + id + ".example"}); err != nil {
			t.Fatal(err)
		}
		ds, err := signer.DSRecords(id+".com", dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		return r, ds[0]
	}
	mail := func(from, domain string, ds *dnswire.DS, code string) channel.EmailMessage {
		return channel.EmailMessage{
			From: from, To: "support@registrar.example", Subject: domain,
			Body: "please install:\n" + channel.FormatDS(domain, ds), AuthCode: code,
		}
	}

	t.Run("no auth accepts forged sender", func(t *testing.T) {
		r, ds := setup("laxmail", registrar.EmailAuthNone)
		// The attack from section 6.4: mail from an address that never
		// registered the domain is accepted.
		if err := r.HandleSupportEmail(context.Background(), mail("attacker@evil.net", "laxmail.com", ds, "")); err != nil {
			t.Fatalf("forged email rejected by no-auth registrar: %v", err)
		}
		if got := w.classify("laxmail.com"); got != dnssec.DeploymentFull {
			t.Errorf("after email: %v", got)
		}
	})

	t.Run("address check blocks other senders", func(t *testing.T) {
		r, ds := setup("addrmail", registrar.EmailAuthAddress)
		if err := r.HandleSupportEmail(context.Background(), mail("attacker@evil.net", "addrmail.com", ds, "")); !errors.Is(err, registrar.ErrEmailRejected) {
			t.Errorf("forged email: %v", err)
		}
		if err := r.HandleSupportEmail(context.Background(), mail("owner@legit.net", "addrmail.com", ds, "")); err != nil {
			t.Fatalf("legit email: %v", err)
		}
	})

	t.Run("code check requires the account code", func(t *testing.T) {
		r, ds := setup("codemail", registrar.EmailAuthCode)
		if err := r.HandleSupportEmail(context.Background(), mail("owner@legit.net", "codemail.com", ds, "wrong")); !errors.Is(err, registrar.ErrEmailRejected) {
			t.Errorf("wrong code: %v", err)
		}
		acct := r.CreateAccount("owner@legit.net") // returns existing
		if err := r.HandleSupportEmail(context.Background(), mail("owner@legit.net", "codemail.com", ds, acct.SecurityCode)); err != nil {
			t.Fatalf("right code: %v", err)
		}
	})

	t.Run("unparseable body", func(t *testing.T) {
		r, _ := setup("parsemail", registrar.EmailAuthNone)
		msg := channel.EmailMessage{From: "x@y.net", Subject: "parsemail.com", Body: "enable dnssec plz"}
		if err := r.HandleSupportEmail(context.Background(), msg); err == nil {
			t.Error("accepted email without a DS record")
		}
	})
}

func TestTicketAndChatChannels(t *testing.T) {
	w := newWorld(t)

	t.Run("ticket", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "ticketreg", Name: "Ticket", NSHosts: []string{"ns1.ticket.net"},
			OwnerDNSSEC: true, DSChannel: channel.Ticket,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "ticket.com", ""); err != nil {
			t.Fatal(err)
		}
		signer, _ := w.ownerNS("ticket.com", "ns1.owner-t.example")
		if err := r.UseExternalNameservers("a@x.net", "ticket.com", []string{"ns1.owner-t.example"}); err != nil {
			t.Fatal(err)
		}
		ds, _ := signer.DSRecords("ticket.com", dnswire.DigestSHA256)
		err := r.HandleTicket(context.Background(), channel.TicketMessage{
			AccountEmail: "a@x.net", Domain: "ticket.com",
			Body: "attaching my DS record:\n" + channel.FormatDS("ticket.com", ds[0]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := w.classify("ticket.com"); got != dnssec.DeploymentFull {
			t.Errorf("after ticket: %v", got)
		}
		// Ticket for someone else's domain is refused (authenticated panel).
		r.CreateAccount("b@x.net")
		err = r.HandleTicket(context.Background(), channel.TicketMessage{AccountEmail: "b@x.net", Domain: "ticket.com", Body: "ds"})
		if !errors.Is(err, registrar.ErrNotYourDomain) {
			t.Errorf("cross-account ticket: %v", err)
		}
	})

	t.Run("chat misapply", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "chatreg", Name: "Chat", NSHosts: []string{"ns1.chat.net"},
			OwnerDNSSEC: true, DSChannel: channel.Chat, ChatErrorRate: 1.0,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "mine.com", ""); err != nil {
			t.Fatal(err)
		}
		if err := r.Purchase("a@x.net", "victim.com", ""); err != nil {
			t.Fatal(err)
		}
		signer, _ := w.ownerNS("mine.com", "ns1.owner-c.example")
		if err := r.UseExternalNameservers("a@x.net", "mine.com", []string{"ns1.owner-c.example"}); err != nil {
			t.Fatal(err)
		}
		ds, _ := signer.DSRecords("mine.com", dnswire.DigestSHA256)
		out, err := r.ChatUploadDS(context.Background(), "a@x.net", "mine.com", ds[0])
		if err != nil {
			t.Fatal(err)
		}
		if !out.Misapplied {
			t.Fatal("agent with error rate 1.0 did not misapply")
		}
		// The victim domain now has a DS that matches nothing it serves:
		// broken for validating resolvers, exactly the paper's anecdote.
		if got := w.classify(out.AppliedDomain); got != dnssec.DeploymentBroken {
			t.Errorf("victim %s: %v", out.AppliedDomain, got)
		}
	})
}

func TestDNSKEYUploadAndFetch(t *testing.T) {
	w := newWorld(t)

	t.Run("amazon-style DNSKEY upload", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "aws-like", Name: "KeyUpload", NSHosts: []string{"ns1.keyup.net"},
			OwnerDNSSEC: true, DSChannel: channel.Web, AcceptsDNSKEY: true,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "keyed.com", ""); err != nil {
			t.Fatal(err)
		}
		signer, _ := w.ownerNS("keyed.com", "ns1.owner-k.example")
		if err := r.UseExternalNameservers("a@x.net", "keyed.com", []string{"ns1.owner-k.example"}); err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDNSKEYWeb(context.Background(), "a@x.net", "keyed.com", signer.KSK.DNSKEY()); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("keyed.com"); got != dnssec.DeploymentFull {
			t.Errorf("after DNSKEY upload: %v", got)
		}
		// "Not perfect": a DNSKEY that is NOT served is accepted too — and
		// produces a broken domain.
		other, err := dnssec.GenerateKeyPair(dnswire.AlgED25519, dnswire.FlagsKSK, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitDNSKEYWeb(context.Background(), "a@x.net", "keyed.com", other.DNSKEY()); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("keyed.com"); got != dnssec.DeploymentBroken {
			t.Errorf("unserved DNSKEY accepted but domain is %v", got)
		}
	})

	t.Run("pcextreme-style DS fetch", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "pcx-like", Name: "Fetcher", NSHosts: []string{"ns1.fetch.net"},
			OwnerDNSSEC: true, DSChannel: channel.Web, FetchesDNSKEY: true, ValidatesDS: true,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "fetched.com", ""); err != nil {
			t.Fatal(err)
		}
		w.ownerNS("fetched.com", "ns1.owner-f.example")
		if err := r.UseExternalNameservers("a@x.net", "fetched.com", []string{"ns1.owner-f.example"}); err != nil {
			t.Fatal(err)
		}
		if err := r.RequestDSFetch(context.Background(), "a@x.net", "fetched.com"); err != nil {
			t.Fatal(err)
		}
		if got := w.classify("fetched.com"); got != dnssec.DeploymentFull {
			t.Errorf("after fetch: %v", got)
		}
		// Only bootstraps the first DS; rollover via fetch is refused.
		if err := r.RequestDSFetch(context.Background(), "a@x.net", "fetched.com"); !errors.Is(err, registrar.ErrNotSupported) {
			t.Errorf("second fetch: %v", err)
		}
	})

	t.Run("cancelled context stops registrar-side lookups", func(t *testing.T) {
		r := w.newRegistrar(registrar.Policy{
			ID: "pcx-cancel", Name: "FetcherC", NSHosts: []string{"ns1.fetchc.net"},
			OwnerDNSSEC: true, DSChannel: channel.Web, FetchesDNSKEY: true, ValidatesDS: true,
		})
		r.CreateAccount("a@x.net")
		if err := r.Purchase("a@x.net", "cancelled.com", ""); err != nil {
			t.Fatal(err)
		}
		w.ownerNS("cancelled.com", "ns1.owner-c.example")
		if err := r.UseExternalNameservers("a@x.net", "cancelled.com", []string{"ns1.owner-c.example"}); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// The registrar's DNSKEY fetch runs under the caller's context, so
		// the dead context must abort the lookup — no DS gets installed.
		if err := r.RequestDSFetch(ctx, "a@x.net", "cancelled.com"); err == nil {
			t.Fatal("DS fetch succeeded under a cancelled context")
		}
		if got := w.classify("cancelled.com"); got == dnssec.DeploymentFull {
			t.Error("DS installed despite cancelled context")
		}
	})
}

func TestResellerPath(t *testing.T) {
	w := newWorld(t)
	partner := w.newRegistrar(registrar.Policy{
		ID: "bigpartner", Name: "BigPartner", NSHosts: []string{"ns1.bigp.net"},
		Roles: map[string]registrar.Role{"com": {Kind: registrar.RoleRegistrar}},
	})
	reseller := w.newRegistrar(registrar.Policy{
		ID: "smallshop", Name: "SmallShop", NSHosts: []string{"ns1.small.net"},
		HostedDNSSEC: registrar.SupportDefault,
		Roles:        map[string]registrar.Role{"com": {Kind: registrar.RoleReseller, Partner: "bigpartner"}},
	})
	reseller.SetPartner("com", partner)
	reseller.CreateAccount("a@x.net")
	if err := reseller.Purchase("a@x.net", "resold.com", ""); err != nil {
		t.Fatal(err)
	}
	// The registry sees the PARTNER as the registrar of record.
	reg, ok := w.Registries["com"].Registration("resold.com")
	if !ok || reg.RegistrarID != "bigpartner" {
		t.Fatalf("registrar of record: %+v", reg)
	}
	// But the DNS operator is the reseller.
	if len(reg.NS) == 0 || dnswire.SecondLevel(reg.NS[0]) != "small.net" {
		t.Errorf("NS: %v", reg.NS)
	}
	if got := w.classify("resold.com"); got != dnssec.DeploymentFull {
		t.Errorf("resold domain: %v", got)
	}
}

func TestResellerPartnerWithoutDSSupport(t *testing.T) {
	// The TransIP/.se case: the partner registrar (KeySystems) enabled
	// DNSSEC "at a later date" — until then DS uploads fail and domains
	// stay partial.
	w := newWorld(t)
	enableDay := simtime.Date(2016, 7, 1)
	partner := w.newRegistrar(registrar.Policy{
		ID: "keysys-like", Name: "KeySys", NSHosts: []string{"ns1.keysys.net"},
		Roles:         map[string]registrar.Role{"se": {Kind: registrar.RoleRegistrar}},
		DSSupportFrom: enableDay,
	})
	reseller := w.newRegistrar(registrar.Policy{
		ID: "transip-like2", Name: "TransIPish", NSHosts: []string{"ns1.tip.net"},
		HostedDNSSEC: registrar.SupportDefault,
		Roles:        map[string]registrar.Role{"se": {Kind: registrar.RoleReseller, Partner: "keysys-like"}},
	})
	reseller.SetPartner("se", partner)
	reseller.CreateAccount("a@x.net")
	if err := reseller.Purchase("a@x.net", "late.se", ""); err != nil {
		t.Fatal(err)
	}
	// Before the partner supports DS: signed but partial.
	if got := w.classify("late.se"); got != dnssec.DeploymentPartial {
		t.Fatalf("before partner support: %v", got)
	}
	// Advance past the enablement and retry.
	w.Clock.Set(enableDay + 1)
	if err := reseller.EnableHostedDNSSEC("a@x.net", "late.se", false); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("late.se"); got != dnssec.DeploymentFull {
		t.Fatalf("after partner support: %v", got)
	}
}

func TestBootstrapDSAPI(t *testing.T) {
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "draftreg", Name: "Draft", NSHosts: []string{"ns1.draft.net"},
		OwnerDNSSEC: true, DSChannel: channel.Web,
	})
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "drafted.com", ""); err != nil {
		t.Fatal(err)
	}
	signer, _ := w.ownerNS("drafted.com", "ns1.owner-d.example")
	if err := r.UseExternalNameservers("a@x.net", "drafted.com", []string{"ns1.owner-d.example"}); err != nil {
		t.Fatal(err)
	}
	ds, _ := signer.DSRecords("drafted.com", dnswire.DigestSHA256)
	if err := r.BootstrapDS(context.Background(), "drafted.com", ds[0]); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("drafted.com"); got != dnssec.DeploymentFull {
		t.Errorf("after bootstrap: %v", got)
	}
	// The draft mandates verification: an unserved DS is refused.
	garbage := &dnswire.DS{KeyTag: 2, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := r.BootstrapDS(context.Background(), "drafted.com", garbage); !errors.Is(err, registrar.ErrDSRejected) {
		t.Errorf("garbage bootstrap: %v", err)
	}
}

func TestRolloverHostedDNSSEC(t *testing.T) {
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "roller", Name: "Roller", NSHosts: []string{"ns1.roller.net"},
		HostedDNSSEC: registrar.SupportDefault,
	})
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "spin.com", ""); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("spin.com"); got != dnssec.DeploymentFull {
		t.Fatalf("before rollover: %v", got)
	}
	regBefore, _ := w.Registries["com"].Registration("spin.com")
	if err := r.RolloverHostedDNSSEC("a@x.net", "spin.com"); err != nil {
		t.Fatal(err)
	}
	// Still fully deployed and valid after the rollover...
	if got := w.classify("spin.com"); got != dnssec.DeploymentFull {
		t.Fatalf("after rollover: %v", got)
	}
	// ...and the DS actually changed.
	regAfter, _ := w.Registries["com"].Registration("spin.com")
	if len(regBefore.DS) == 0 || len(regAfter.DS) == 0 {
		t.Fatal("DS missing")
	}
	if regBefore.DS[0].KeyTag == regAfter.DS[0].KeyTag {
		t.Error("DS key tag unchanged: rollover did not rotate the KSK")
	}
	// Rollover on an unsigned domain is refused.
	if err := r.Purchase("a@x.net", "plainspin.com", ""); err != nil {
		t.Fatal(err)
	}
	r2 := w.newRegistrar(registrar.Policy{
		ID: "noroll", Name: "NoRoll", NSHosts: []string{"ns1.noroll.net"},
	})
	r2.CreateAccount("a@x.net")
	if err := r2.Purchase("a@x.net", "never.com", ""); err != nil {
		t.Fatal(err)
	}
	if err := r2.RolloverHostedDNSSEC("a@x.net", "never.com"); !errors.Is(err, registrar.ErrNotSupported) {
		t.Errorf("rollover without DNSSEC: %v", err)
	}
}

func TestRolloverPartialPublisherStaysPartial(t *testing.T) {
	// A Loopia-like registrar rolls keys for a TLD it never uploads DS
	// for: the domain must remain partial, never broken.
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "partialroll", Name: "PartialRoll", NSHosts: []string{"ns1.proll.se"},
		HostedDNSSEC:  registrar.SupportDefault,
		PublishDSTLDs: map[string]bool{"se": true},
		Roles: map[string]registrar.Role{
			"com": {Kind: registrar.RoleRegistrar},
			"se":  {Kind: registrar.RoleRegistrar},
		},
	})
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "quiet.com", ""); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("quiet.com"); got != dnssec.DeploymentPartial {
		t.Fatalf("before: %v", got)
	}
	if err := r.RolloverHostedDNSSEC("a@x.net", "quiet.com"); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("quiet.com"); got != dnssec.DeploymentPartial {
		t.Errorf("after rollover: %v, want still partial", got)
	}
}

func TestTransferInAppliesNewPolicy(t *testing.T) {
	// The Antagonist mechanism: a domain moves from a no-DNSSEC registrar
	// to a DNSSEC-by-default one and comes out fully deployed.
	w := newWorld(t)
	oldReg := w.newRegistrar(registrar.Policy{
		ID: "oldpartner", Name: "OldPartner", NSHosts: []string{"ns1.oldp.net"},
	})
	newReg := w.newRegistrar(registrar.Policy{
		ID: "newpartner", Name: "NewPartner", NSHosts: []string{"ns1.newp.net"},
		HostedDNSSEC: registrar.SupportDefault,
	})
	oldReg.CreateAccount("a@x.net")
	if err := oldReg.Purchase("a@x.net", "migrating.com", ""); err != nil {
		t.Fatal(err)
	}
	if got := w.classify("migrating.com"); got != dnssec.DeploymentNone {
		t.Fatalf("before transfer: %v", got)
	}
	if err := newReg.TransferIn("a@x.net", "migrating.com", oldReg); err != nil {
		t.Fatal(err)
	}
	reg, _ := w.Registries["com"].Registration("migrating.com")
	if reg.RegistrarID != "newpartner" {
		t.Errorf("registrar of record: %s", reg.RegistrarID)
	}
	if dnswire.SecondLevel(reg.NS[0]) != "newp.net" {
		t.Errorf("NS after transfer: %v", reg.NS)
	}
	if got := w.classify("migrating.com"); got != dnssec.DeploymentFull {
		t.Errorf("after transfer: %v", got)
	}
	// The old registrar no longer knows the domain.
	if _, ok := oldReg.Domain("migrating.com"); ok {
		t.Error("old registrar retained the domain")
	}
}

func TestRegistrarAccessors(t *testing.T) {
	w := newWorld(t)
	r := w.newRegistrar(registrar.Policy{
		ID: "acc", Name: "Accessor", NSHosts: []string{"ns1.acc.net"},
		DefaultPlan: "basic", DNSSECPlans: map[string]bool{"prem": true},
		Roles: map[string]registrar.Role{
			"com": {Kind: registrar.RoleRegistrar},
			"se":  {Kind: registrar.RoleReseller, Partner: "other"},
		},
	})
	plans := r.Plans()
	if len(plans) != 2 || plans[0] != "basic" {
		t.Errorf("Plans: %v", plans)
	}
	if r.RoleFor("com").Kind != registrar.RoleRegistrar ||
		r.RoleFor("se").Partner != "other" ||
		r.RoleFor("nl").Kind != registrar.RoleNone {
		t.Error("RoleFor wrong")
	}
	if r.Server() == nil {
		t.Error("Server nil")
	}
	for lvl, want := range map[registrar.SupportLevel]string{
		registrar.SupportNone: "none", registrar.SupportOptIn: "opt-in",
		registrar.SupportPaid: "paid", registrar.SupportDefault: "default",
		registrar.SupportDefaultSomePlans: "default-some-plans",
	} {
		if lvl.String() != want {
			t.Errorf("SupportLevel(%d) = %q", lvl, lvl.String())
		}
	}
	r.CreateAccount("a@x.net")
	if err := r.Purchase("a@x.net", "acc.com", ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Domain("acc.com"); !ok {
		t.Error("Domain lookup failed")
	}
	if err := r.RemoveDS("a@x.net", "acc.com"); err != nil {
		t.Errorf("RemoveDS on DS-less domain: %v", err)
	}
}
