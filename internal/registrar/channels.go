package registrar

import (
	"context"
	"fmt"
	"strings"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
)

// This file implements the customer-facing DS-upload channels for domains
// whose owner runs the nameservers (paper sections 5.3 and 6.1): web forms,
// DNSKEY uploads, registrar-side DNSKEY fetching, email, support tickets
// and live chat — each with the validation and authentication behaviour
// the study measured.

// SubmitDSWeb uploads a DS record through the registrar's web form. Only
// two of the twelve web forms in the study validated the record; the rest
// accept arbitrary bytes, which a validating resolver will then treat as a
// bogus chain — taking the whole domain offline for DNSSEC-aware clients.
func (r *Registrar) SubmitDSWeb(ctx context.Context, accountEmail, name string, ds *dnswire.DS) error {
	if !r.OwnerDNSSEC || r.DSChannel != channel.Web {
		return fmt.Errorf("%w: no web DS form", ErrNotSupported)
	}
	if r.AcceptsDNSKEY {
		// Amazon-style form: it asks for the DNSKEY and derives the DS
		// itself; raw DS records are not accepted anywhere.
		return fmt.Errorf("%w: form accepts DNSKEY, not DS", ErrNotSupported)
	}
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	return r.installDS(ctx, d, []*dnswire.DS{ds}, r.ValidatesDS)
}

// SubmitDNSKEYWeb uploads a DNSKEY from which the registrar derives the DS
// itself (Amazon's approach). The derivation cannot produce a malformed DS,
// but nothing checks that the key is actually served — the paper calls this
// "not perfect".
func (r *Registrar) SubmitDNSKEYWeb(ctx context.Context, accountEmail, name string, dk *dnswire.DNSKEY) error {
	if !r.OwnerDNSSEC || !r.AcceptsDNSKEY {
		return fmt.Errorf("%w: no DNSKEY upload", ErrNotSupported)
	}
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	ds, err := dnssec.ComputeDS(d.Name, dk, dnswire.DigestSHA256)
	if err != nil {
		return fmt.Errorf("registrar: deriving DS: %w", err)
	}
	return r.installDS(ctx, d, []*dnswire.DS{ds}, false)
}

// RequestDSFetch asks the registrar to fetch the domain's DNSKEY from its
// nameservers and derive and publish the DS itself — PCExtreme's flow,
// which the paper singles out as the least error-prone (section 8,
// recommendation 3). It only bootstraps the first DS; key rollovers go
// through email, with that channel's weaknesses.
func (r *Registrar) RequestDSFetch(ctx context.Context, accountEmail, name string) error {
	if !r.OwnerDNSSEC || !r.FetchesDNSKEY {
		return fmt.Errorf("%w: no DS fetch flow", ErrNotSupported)
	}
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return err
	}
	if d.Hosted {
		return ErrHosted
	}
	path, err := r.regPathFor(d.TLD)
	if err != nil {
		return err
	}
	if reg, ok := path.reg.Registration(d.Name); ok && len(reg.DS) > 0 {
		return fmt.Errorf("%w: DS already present; rollovers require email", ErrNotSupported)
	}
	keys := r.fetchDNSKEYs(ctx, d.Name, d.ExternalNS)
	if len(keys) == 0 {
		return fmt.Errorf("%w: no DNSKEY served", ErrDSRejected)
	}
	var dss []*dnswire.DS
	for _, dk := range keys {
		if !dk.IsSEP() {
			continue
		}
		ds, err := dnssec.ComputeDS(d.Name, dk, dnswire.DigestSHA256)
		if err != nil {
			return err
		}
		dss = append(dss, ds)
	}
	if len(dss) == 0 {
		// No SEP-flagged key; fall back to all keys.
		for _, dk := range keys {
			ds, err := dnssec.ComputeDS(d.Name, dk, dnswire.DigestSHA256)
			if err != nil {
				return err
			}
			dss = append(dss, ds)
		}
	}
	return r.installDS(ctx, d, dss, false)
}

// HandleSupportEmail processes an emailed DS record. The authentication
// applied is exactly the registrar's EmailAuth policy; two of the studied
// registrars applied none, and one accepted mail from an address that had
// never registered the domain.
func (r *Registrar) HandleSupportEmail(ctx context.Context, msg channel.EmailMessage) error {
	if !r.OwnerDNSSEC || r.DSChannel != channel.Email {
		return fmt.Errorf("%w: email DS submission not offered", ErrNotSupported)
	}
	name := dnswire.CanonicalName(strings.TrimSpace(msg.Subject))
	r.mu.RLock()
	d, ok := r.domains[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, name)
	}
	switch r.EmailAuth {
	case EmailAuthAddress:
		if !strings.EqualFold(msg.From, d.AccountEmail) {
			return fmt.Errorf("%w: sender %s is not the registrant", ErrEmailRejected, msg.From)
		}
	case EmailAuthCode:
		a, err := r.account(d.AccountEmail)
		if err != nil {
			return err
		}
		if msg.AuthCode != a.SecurityCode {
			return fmt.Errorf("%w: missing or wrong security code", ErrEmailRejected)
		}
	case EmailAuthNone:
		// Accept anything — the vulnerability the paper disclosed.
	}
	ds, err := channel.ParseDSFromText(msg.Body)
	if err != nil {
		return err
	}
	return r.installDS(ctx, d, []*dnswire.DS{ds}, r.ValidatesDS)
}

// HandleTicket processes a DS record attached to a support ticket
// (123-reg's flow). Tickets are opened from the authenticated control
// panel, so ownership is verified; validation still follows policy.
func (r *Registrar) HandleTicket(ctx context.Context, t channel.TicketMessage) error {
	if !r.OwnerDNSSEC || r.DSChannel != channel.Ticket {
		return fmt.Errorf("%w: ticket DS submission not offered", ErrNotSupported)
	}
	d, err := r.domain(t.AccountEmail, t.Domain)
	if err != nil {
		return err
	}
	ds, err := channel.ParseDSFromText(t.Body)
	if err != nil {
		return err
	}
	return r.installDS(ctx, d, []*dnswire.DS{ds}, r.ValidatesDS)
}

// BootstrapDS implements the Cloudflare/CIRA third-party-operator draft
// (operator.RegistrarBootstrapAPI): a DNS operator asks the registrar to
// install a DS directly, cutting the customer out of the relay. Unlike the
// human channels, the draft mandates verification: the DS must match a
// DNSKEY actually served by the domain's delegated nameservers.
func (r *Registrar) BootstrapDS(ctx context.Context, name string, ds *dnswire.DS) error {
	name = dnswire.CanonicalName(name)
	r.mu.RLock()
	d, ok := r.domains[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDomain, name)
	}
	return r.installDS(ctx, d, []*dnswire.DS{ds}, true)
}

// ChatUploadDS pastes a DS record into a live-chat session (HostGator's
// flow). The returned outcome reveals whether the agent installed it on the
// intended domain — the paper's probe discovered an agent applying a DS to
// an unrelated customer's domain.
func (r *Registrar) ChatUploadDS(ctx context.Context, accountEmail, name string, ds *dnswire.DS) (channel.Outcome, error) {
	if !r.OwnerDNSSEC || r.DSChannel != channel.Chat {
		return channel.Outcome{}, fmt.Errorf("%w: chat DS submission not offered", ErrNotSupported)
	}
	d, err := r.domain(accountEmail, name)
	if err != nil {
		return channel.Outcome{}, err
	}
	session := &channel.ChatSession{
		ErrorRate:    r.ChatErrorRate,
		Rng:          r.deps.Rng,
		OtherDomains: r.DomainNames(),
	}
	outcome := session.Submit(d.Name, ds)
	target := d
	if outcome.Misapplied {
		r.mu.RLock()
		victim := r.domains[outcome.AppliedDomain]
		r.mu.RUnlock()
		if victim != nil {
			target = victim
		} else {
			outcome = channel.Outcome{AppliedDomain: d.Name}
		}
	}
	// Chat agents re-type records by hand; no validation happens.
	if target.Hosted {
		// The agent force-installs at the registry even for hosted domains
		// (that is what makes the misapply so damaging).
		path, err := r.regPathFor(target.TLD)
		if err != nil {
			return outcome, err
		}
		return outcome, path.reg.SetDS(path.actorID, target.Name, []*dnswire.DS{ds})
	}
	return outcome, r.installDS(ctx, target, []*dnswire.DS{ds}, false)
}
