package dnsserver_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/retry"
)

// scriptedExchanger returns the scripted outcomes in order, then succeeds.
type scriptedExchanger struct {
	script []func(q *dnswire.Message) (*dnswire.Message, error)
	calls  atomic.Int64
}

func (e *scriptedExchanger) Exchange(_ context.Context, _ string, q *dnswire.Message) (*dnswire.Message, error) {
	n := int(e.calls.Add(1)) - 1
	if n < len(e.script) {
		return e.script[n](q)
	}
	resp := q.Reply()
	resp.Authoritative = true
	return resp, nil
}

func fail(msg string) func(*dnswire.Message) (*dnswire.Message, error) {
	return func(*dnswire.Message) (*dnswire.Message, error) { return nil, errors.New(msg) }
}

func rcode(rc dnswire.RCode) func(*dnswire.Message) (*dnswire.Message, error) {
	return func(q *dnswire.Message) (*dnswire.Message, error) {
		resp := q.Reply()
		resp.RCode = rc
		return resp, nil
	}
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

func TestRetryingRecoversFromTransientErrors(t *testing.T) {
	inner := &scriptedExchanger{script: []func(*dnswire.Message) (*dnswire.Message, error){
		fail("timeout"), fail("timeout"),
	}}
	ex := dnsserver.NewRetrying(inner, fastPolicy(3))
	resp, err := ex.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "a.com", dnswire.TypeNS))
	if err != nil || !resp.Authoritative {
		t.Fatalf("exchange: %v %v", resp, err)
	}
	if ex.Retries() != 2 || ex.Failures() != 0 {
		t.Errorf("retries=%d failures=%d", ex.Retries(), ex.Failures())
	}
}

func TestRetryingExhaustsBudget(t *testing.T) {
	inner := &scriptedExchanger{script: []func(*dnswire.Message) (*dnswire.Message, error){
		fail("t1"), fail("t2"), fail("t3"), fail("t4"),
	}}
	ex := dnsserver.NewRetrying(inner, fastPolicy(3))
	if _, err := ex.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "a.com", dnswire.TypeNS)); err == nil {
		t.Fatal("expected failure")
	}
	if inner.calls.Load() != 3 {
		t.Errorf("attempts: %d, want 3", inner.calls.Load())
	}
	if ex.Retries() != 2 || ex.Failures() != 1 {
		t.Errorf("retries=%d failures=%d", ex.Retries(), ex.Failures())
	}
}

func TestRetryingNoRouteIsPermanent(t *testing.T) {
	net := dnsserver.NewMemNet()
	ex := dnsserver.NewRetrying(net, fastPolicy(5))
	_, err := ex.Exchange(context.Background(), "dark.example", dnswire.NewQuery(1, "a.com", dnswire.TypeNS))
	if !errors.Is(err, dnsserver.ErrNoRoute) {
		t.Fatalf("err: %v", err)
	}
	if ex.Retries() != 0 {
		t.Errorf("retried a no-route address %d times", ex.Retries())
	}
}

func TestRetryLameRecoversAndGivesUpGracefully(t *testing.T) {
	// Transient SERVFAIL then clean: recovered.
	inner := &scriptedExchanger{script: []func(*dnswire.Message) (*dnswire.Message, error){
		rcode(dnswire.RCodeServerFailure),
	}}
	ex := dnsserver.NewRetrying(inner, fastPolicy(3), dnsserver.RetryLame())
	resp, err := ex.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "a.com", dnswire.TypeNS))
	if err != nil || resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("recovery: %v %v", resp, err)
	}
	if ex.Retries() != 1 {
		t.Errorf("retries: %d", ex.Retries())
	}

	// Persistent SERVFAIL: the caller still sees the rcode, not an error.
	always := &scriptedExchanger{script: []func(*dnswire.Message) (*dnswire.Message, error){
		rcode(dnswire.RCodeServerFailure), rcode(dnswire.RCodeServerFailure), rcode(dnswire.RCodeServerFailure),
	}}
	ex2 := dnsserver.NewRetrying(always, fastPolicy(3), dnsserver.RetryLame())
	resp, err = ex2.Exchange(context.Background(), "srv", dnswire.NewQuery(2, "a.com", dnswire.TypeNS))
	if err != nil || resp.RCode != dnswire.RCodeServerFailure {
		t.Fatalf("persistent lame: %v %v", resp, err)
	}
}

func TestRetryTruncated(t *testing.T) {
	tc := func(q *dnswire.Message) (*dnswire.Message, error) {
		resp := q.Reply()
		resp.Truncated = true
		return resp, nil
	}
	inner := &scriptedExchanger{script: []func(*dnswire.Message) (*dnswire.Message, error){tc}}
	ex := dnsserver.NewRetrying(inner, fastPolicy(3), dnsserver.RetryTruncated())
	resp, err := ex.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "a.com", dnswire.TypeNS))
	if err != nil || resp.Truncated {
		t.Fatalf("truncation retry: %v %v", resp, err)
	}
}
