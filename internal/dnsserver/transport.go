package dnsserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
)

// Server runs a Handler over real UDP and TCP sockets on the same address,
// as a production nameserver would. UDP responses larger than the client's
// advertised payload are truncated with TC=1 so the client retries over TCP
// (RFC 1035 section 4.2).
//
// The UDP request path runs a fixed pool of reader/worker loops (one per
// CPU by default). When the Handler is a *Sharded, each worker first tries
// the zero-alloc wire fast path (lazy parse + response cache) inline;
// misses and off-fast-path packets are dispatched to goroutines bounded by
// a MaxInFlight semaphore — when the semaphore is exhausted the packet is
// dropped and counted, mirroring the apiserv admission gate, so a query
// flood degrades to shed load instead of unbounded goroutines.
type Server struct {
	Handler Handler
	// Logger receives malformed-packet and I/O diagnostics; slog.Default()
	// when nil.
	Logger *slog.Logger
	// ReadTimeout bounds TCP connection reads (default 5s).
	ReadTimeout time.Duration
	// UDPWorkers sets the reader/worker pool size (default GOMAXPROCS).
	UDPWorkers int
	// MaxInFlight caps concurrent slow-path query goroutines (default 512);
	// packets beyond the cap are dropped and counted in Stats.
	MaxInFlight int
	// MaxTCPConns caps concurrently served TCP connections (default 64).
	// The TCP path is goroutine-per-connection with blocking reads — the
	// expensive slow path truncation retries and AXFR land on — so without
	// a cap a connection flood pins one goroutine plus buffers per socket.
	// Connections beyond the cap are closed at accept and counted in Stats,
	// the same shed-don't-queue admission the UDP path applies.
	MaxTCPConns int
	// Legacy selects the original goroutine-per-packet UDP path with no
	// worker pool, pooling, or wire cache. Retained as the benchmark
	// baseline for regsec-bench's serve section.
	Legacy bool

	stats  serverCounters
	sem    chan struct{}
	tcpSem chan struct{}

	mu       sync.Mutex
	pc       net.PacketConn
	ln       net.Listener
	wg       sync.WaitGroup
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
}

type serverCounters struct {
	queries   atomic.Uint64
	cacheHits atomic.Uint64
	slowPath  atomic.Uint64
	dropped   atomic.Uint64
	malformed atomic.Uint64
	tcpShed   atomic.Uint64
}

// ServerStats is a point-in-time snapshot of the UDP path counters.
type ServerStats struct {
	// Queries is the number of UDP packets read.
	Queries uint64 `json:"queries"`
	// CacheHits were answered inline by the wire fast path.
	CacheHits uint64 `json:"cache_hits"`
	// SlowPath queries took the full parse/render path.
	SlowPath uint64 `json:"slow_path"`
	// Dropped packets were shed because MaxInFlight was exhausted.
	Dropped uint64 `json:"dropped"`
	// Malformed packets failed the full parse (or packing) and got no reply.
	Malformed uint64 `json:"malformed"`
	// TCPShed connections were closed at accept because MaxTCPConns was
	// exhausted.
	TCPShed uint64 `json:"tcp_shed"`
}

// Stats snapshots the server's UDP counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Queries:   s.stats.queries.Load(),
		CacheHits: s.stats.cacheHits.Load(),
		SlowPath:  s.stats.slowPath.Load(),
		Dropped:   s.stats.dropped.Load(),
		Malformed: s.stats.malformed.Load(),
		TCPShed:   s.stats.tcpShed.Load(),
	}
}

// wireServer is the raw-packet interface the worker loops prefer; *Sharded
// implements it.
type wireServer interface {
	ServeWireFast(dst, pkt []byte, sc *WireScratch) ([]byte, bool)
	ServeWireFull(dst, pkt []byte, sc *WireScratch, udp bool) []byte
}

// pktPool recycles slow-path packet copies; scratchPool recycles the
// parse/pack scratch the transient slow-path goroutines use.
var pktPool = sync.Pool{New: func() any {
	b := make([]byte, 65535)
	return &b
}}

var scratchPool = sync.Pool{New: func() any { return NewWireScratch() }}

// ListenAndServe binds UDP and TCP on addr ("127.0.0.1:0" for an ephemeral
// port) and serves until Close. It returns once both listeners are active;
// Addr then reports the bound address.
func (s *Server) ListenAndServe(addr string) error {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return fmt.Errorf("dnsserver: udp listen: %w", err)
	}
	// Bind TCP on the identical port so clients can retry after truncation.
	tcpAddr := pc.LocalAddr().String()
	ln, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		pc.Close()
		return fmt.Errorf("dnsserver: tcp listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		pc.Close()
		ln.Close()
		return errors.New("dnsserver: server closed")
	}
	s.pc, s.ln = pc, ln
	if s.sem == nil {
		n := s.MaxInFlight
		if n <= 0 {
			n = 512
		}
		s.sem = make(chan struct{}, n)
	}
	if s.tcpSem == nil {
		n := s.MaxTCPConns
		if n <= 0 {
			n = 64
		}
		s.tcpSem = make(chan struct{}, n)
	}
	s.mu.Unlock()
	udp, isUDP := pc.(*net.UDPConn)
	if s.Legacy || !isUDP {
		s.wg.Add(1)
		go s.serveUDPLegacy(pc)
	} else {
		workers := s.UDPWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go s.udpWorker(udp)
		}
	}
	s.wg.Add(1)
	go s.serveTCP(ln)
	return nil
}

// Addr returns the bound UDP address, or "" before ListenAndServe.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pc == nil {
		return ""
	}
	return s.pc.LocalAddr().String()
}

// Close stops the listeners, severs open connections, and waits for
// in-flight handlers. For an orderly stop that lets in-flight queries
// finish and deliver their responses, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	pc, ln := s.pc, s.ln
	conns := s.snapshotConnsLocked()
	s.mu.Unlock()
	if pc != nil {
		pc.Close()
	}
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown gracefully stops the server: it stops accepting new queries,
// lets in-flight handlers finish and write their responses, then closes
// the sockets. If ctx expires before the drain completes, remaining
// connections are severed and ctx's error is returned; a nil return
// means every in-flight query was answered.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	pc, ln := s.pc, s.ln
	conns := s.snapshotConnsLocked()
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if pc != nil {
		// Stop the UDP read loop without closing the socket: in-flight
		// handlers still need it to write their responses.
		pc.SetReadDeadline(time.Now())
	}
	// Wake idle TCP readers so their goroutines observe the drain; a
	// handler mid-query is unaffected (only the read side is expired)
	// and still delivers its response before the connection closes.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		conns = s.snapshotConnsLocked()
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
	if pc != nil {
		pc.Close()
	}
	return err
}

// snapshotConnsLocked copies the tracked TCP connections; s.mu must be held.
func (s *Server) snapshotConnsLocked() []net.Conn {
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

// trackConn registers a TCP connection for shutdown bookkeeping. It
// reports false when the server is already draining, in which case the
// connection must be dropped rather than served.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// udpWorker is one reader/worker loop: it owns a read buffer, a response
// buffer and parse scratch for its lifetime, answers cache hits inline
// without allocating, and dispatches everything else to semaphore-bounded
// goroutines.
func (s *Server) udpWorker(c *net.UDPConn) {
	defer s.wg.Done()
	ws, _ := s.Handler.(wireServer)
	sc := NewWireScratch()
	in := make([]byte, 65535)
	out := make([]byte, 0, 4096)
	for {
		n, from, err := c.ReadFromUDPAddrPort(in)
		if err != nil {
			return // closed or drain deadline
		}
		s.stats.queries.Add(1)
		if ws != nil {
			var hit bool
			out, hit = ws.ServeWireFast(out[:0], in[:n], sc)
			if hit {
				s.stats.cacheHits.Add(1)
				if _, err := c.WriteToUDPAddrPort(out, from); err != nil {
					s.logger().Debug("udp write", "err", err)
				}
				continue
			}
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.stats.dropped.Add(1)
			continue
		}
		s.stats.slowPath.Add(1)
		pkt := pktPool.Get().(*[]byte)
		copy(*pkt, in[:n])
		s.wg.Add(1)
		go s.serveSlowUDP(c, pkt, n, from, ws)
	}
}

// serveSlowUDP answers one query through the full parse path.
func (s *Server) serveSlowUDP(c *net.UDPConn, pkt *[]byte, n int, from netip.AddrPort, ws wireServer) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer pktPool.Put(pkt)
	sc := scratchPool.Get().(*WireScratch)
	defer scratchPool.Put(sc)
	var out []byte
	if ws != nil {
		out = ws.ServeWireFull(sc.out[:0], (*pkt)[:n], sc, true)
		if out != nil {
			sc.out = out[:0:cap(out)]
		}
	} else {
		out = s.serveGeneric((*pkt)[:n], sc)
	}
	if out == nil {
		s.stats.malformed.Add(1)
		return
	}
	if _, err := c.WriteToUDPAddrPort(out, from); err != nil {
		s.logger().Debug("udp write", "err", err)
	}
}

// serveGeneric is the full Message round trip for Handlers that do not
// implement the wire interface.
func (s *Server) serveGeneric(pkt []byte, sc *WireScratch) []byte {
	q := &sc.q
	if err := q.Unpack(pkt); err != nil {
		s.logger().Debug("dropping malformed query", "err", err)
		return nil
	}
	resp := s.Handler.ServeDNS(q)
	if resp == nil {
		return nil
	}
	out, err := resp.AppendPack(sc.out[:0])
	if err != nil {
		s.logger().Error("packing response", "err", err)
		return nil
	}
	sc.out = out[:0:cap(out)]
	if len(out) > q.MaxPayload() {
		// Truncate: header, question and the responder OPT (when the query
		// carried EDNS — Reply mirrors it), TC set.
		tr := q.Reply()
		tr.RCode = resp.RCode
		tr.Truncated = true
		tr.Authoritative = resp.Authoritative
		if out, err = tr.Pack(); err != nil {
			return nil
		}
	}
	return out
}

// serveUDPLegacy is the seed goroutine-per-packet path, kept as the
// benchmark baseline (Legacy) and for non-UDP PacketConns.
func (s *Server) serveUDPLegacy(pc net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		s.stats.queries.Add(1)
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func(pkt []byte, from net.Addr) {
			defer s.wg.Done()
			var q dnswire.Message
			if err := q.Unpack(pkt); err != nil {
				s.stats.malformed.Add(1)
				s.logger().Debug("dropping malformed query", "from", from, "err", err)
				return
			}
			resp := s.Handler.ServeDNS(&q)
			if resp == nil {
				return
			}
			out, err := resp.Pack()
			if err != nil {
				s.logger().Error("packing response", "err", err)
				return
			}
			if len(out) > q.MaxPayload() {
				// Truncate: header, question and mirrored EDNS, TC set.
				tr := q.Reply()
				tr.RCode = resp.RCode
				tr.Truncated = true
				tr.Authoritative = resp.Authoritative
				if out, err = tr.Pack(); err != nil {
					return
				}
			}
			if _, err := pc.WriteTo(out, from); err != nil {
				s.logger().Debug("udp write", "err", err)
			}
		}(pkt, from)
	}
}

func (s *Server) serveTCP(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		select {
		case s.tcpSem <- struct{}{}:
		default:
			// Admission gate: the connection pool is full, so shed the
			// newcomer at accept instead of queueing it — held-open sockets
			// must not grow goroutines without bound.
			s.stats.tcpShed.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer func() { <-s.tcpSem }()
			defer conn.Close()
			if !s.trackConn(conn) {
				return
			}
			defer s.untrackConn(conn)
			timeout := s.ReadTimeout
			if timeout == 0 {
				timeout = 5 * time.Second
			}
			for {
				if s.isDraining() {
					return
				}
				conn.SetReadDeadline(time.Now().Add(timeout))
				msg, err := readTCPMessage(conn)
				if err != nil {
					return
				}
				var q dnswire.Message
				if err := q.Unpack(msg); err != nil {
					return
				}
				if s.serveAXFR(conn, &q) {
					continue
				}
				resp := s.Handler.ServeDNS(&q)
				if resp == nil {
					return
				}
				out, err := resp.Pack()
				if err != nil {
					return
				}
				if err := writeTCPMessage(conn, out); err != nil {
					return
				}
			}
		}(conn)
	}
}

// readTCPMessage reads one length-prefixed DNS message (RFC 1035 4.2.2).
func readTCPMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// writeTCPMessage writes one length-prefixed DNS message.
func writeTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xffff {
		return errors.New("dnsserver: message too large for TCP framing")
	}
	buf := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(buf, uint16(len(msg)))
	copy(buf[2:], msg)
	_, err := w.Write(buf)
	return err
}

// Exchanger issues one DNS query to a named server and returns the
// response. The canonical definition now lives in internal/exchange, which
// also provides the middleware stack (retry, dedup, cache, health) that
// composes around any transport; this alias keeps dnsserver-facing code
// compiling unchanged.
//
// Deprecated: use exchange.Exchanger.
type Exchanger = exchange.Exchanger

// NetExchanger sends queries over UDP with TCP fallback on truncation.
type NetExchanger struct {
	// Timeout per attempt (default 3s).
	Timeout time.Duration
	// DisableTCPFallback suppresses the TCP retry after TC=1.
	DisableTCPFallback bool
}

// Exchange implements Exchanger. server must be a host:port address.
func (e *NetExchanger) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	timeout := e.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	out, err := q.Pack()
	if err != nil {
		return nil, err
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	resp, err := func() (*dnswire.Message, error) {
		defer conn.Close()
		if _, err := conn.Write(out); err != nil {
			return nil, err
		}
		buf := make([]byte, 65535)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return nil, err
			}
			var m dnswire.Message
			if err := m.Unpack(buf[:n]); err != nil {
				continue // hostile or corrupt datagram; keep waiting
			}
			if m.ID != q.ID {
				continue // not ours
			}
			return &m, nil
		}
	}()
	if err != nil {
		return nil, err
	}
	if resp.Truncated && !e.DisableTCPFallback {
		return e.exchangeTCP(ctx, server, out, q.ID, timeout)
	}
	return resp, nil
}

func (e *NetExchanger) exchangeTCP(ctx context.Context, server string, out []byte, id uint16, timeout time.Duration) (*dnswire.Message, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	if err := writeTCPMessage(conn, out); err != nil {
		return nil, err
	}
	msg, err := readTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	var m dnswire.Message
	if err := m.Unpack(msg); err != nil {
		return nil, err
	}
	if m.ID != id {
		return nil, errors.New("dnsserver: TCP response ID mismatch")
	}
	return &m, nil
}
