package dnsserver

import (
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
)

// RetryingExchanger is the historical name of the retry middleware, which
// now lives in internal/exchange as part of the composable query stack.
//
// Deprecated: use exchange.NewRetry, or assemble a full stack with
// exchange.Build.
type RetryingExchanger = exchange.Retry

// RetryOption tunes a RetryingExchanger.
//
// Deprecated: use exchange.RetryOption.
type RetryOption = exchange.RetryOption

// RetryLame makes SERVFAIL/REFUSED responses count as retryable.
//
// Deprecated: use exchange.RetryLame.
func RetryLame() RetryOption { return exchange.RetryLame() }

// RetryTruncated makes TC=1 responses count as retryable (for transports
// without a TCP fallback of their own).
//
// Deprecated: use exchange.RetryTruncated.
func RetryTruncated() RetryOption { return exchange.RetryTruncated() }

// NewRetrying wraps inner with the policy (zero fields get retry defaults).
//
// Deprecated: use exchange.NewRetry.
func NewRetrying(inner Exchanger, p retry.Policy, opts ...RetryOption) *RetryingExchanger {
	return exchange.NewRetry(inner, p, opts...)
}
