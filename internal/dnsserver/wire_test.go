package dnsserver_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// sweepQueries packs the full question sweep the equivalence tests replay:
// every name × {NS, DS, SOA, A, TXT, ANY} × {no EDNS, EDNS, EDNS+DO}, with
// RD toggled by parity so the cached RD patch is exercised both ways.
func sweepQueries(t *testing.T, names []string) [][]byte {
	t.Helper()
	types := []dnswire.Type{
		dnswire.TypeNS, dnswire.TypeDS, dnswire.TypeSOA,
		dnswire.TypeA, dnswire.TypeTXT, dnswire.TypeANY,
	}
	var out [][]byte
	id := uint16(1)
	for _, name := range names {
		for _, typ := range types {
			for edns := 0; edns < 3; edns++ {
				q := dnswire.NewQuery(id, name, typ)
				q.RecursionDesired = id%2 == 0
				if edns > 0 {
					q.SetEDNS(dnswire.ReplyUDPPayload, edns == 2)
				}
				wire, err := q.Pack()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, wire)
				id++
			}
		}
	}
	return out
}

// sweepNames builds the name list for a TLD zone hosting the given domains:
// the apex, each delegation, glue-ish children and a nonexistent name.
func sweepNames(tld string, domains []string) []string {
	names := []string{tld, "nonexistent-name." + tld}
	for _, d := range domains {
		names = append(names, d, "www."+d, "nx."+d)
	}
	return names
}

// newCachedUncachedPair installs the same zone into a caching Sharded and a
// cache-disabled baseline.
func newCachedUncachedPair(z *zone.Zone) (cached, uncached *dnsserver.Sharded) {
	cached = dnsserver.NewSharded(dnsserver.ShardedConfig{})
	cached.AddZone(z)
	uncached = dnsserver.NewSharded(dnsserver.ShardedConfig{CacheEntries: -1})
	uncached.AddZone(z)
	return cached, uncached
}

// assertSweepEquivalence replays every query against the cached handler
// (twice: fill, then the fast path must hit) and the uncached baseline, and
// requires byte-identical responses. ctxLabel names the assertion site.
func assertSweepEquivalence(t *testing.T, cached, uncached *dnsserver.Sharded, queries [][]byte, ctxLabel string) {
	t.Helper()
	scC := dnsserver.NewWireScratch()
	scU := dnsserver.NewWireScratch()
	var fastBuf []byte
	for i, pkt := range queries {
		want := uncached.ServeWireFull(nil, pkt, scU, true)
		if want == nil {
			t.Fatalf("%s: query %d failed the uncached path", ctxLabel, i)
		}
		want = append([]byte(nil), want...)
		prime := cached.ServeWireFull(nil, pkt, scC, true)
		if prime == nil {
			t.Fatalf("%s: query %d failed the cached full path", ctxLabel, i)
		}
		if !bytes.Equal(prime, want) {
			t.Fatalf("%s: query %d full-path responses diverge", ctxLabel, i)
		}
		var hit bool
		fastBuf, hit = cached.ServeWireFast(fastBuf[:0], pkt, scC)
		if !hit {
			t.Fatalf("%s: query %d missed the cache after priming", ctxLabel, i)
		}
		if !bytes.Equal(fastBuf, want) {
			t.Fatalf("%s: query %d cached response diverges from uncached:\ncached:   %x\nuncached: %x",
				ctxLabel, i, fastBuf, want)
		}
	}
}

// TestCachedUncachedEquivalence is the acceptance sweep: for a signed TLD
// zone (unsigned, NSEC and NSEC3 denial variants), every cached response
// must be byte-identical to the uncached rendering — same sections, same
// RRSIGs, same denial records, same EDNS — with only ID/RD patched per
// client.
func TestCachedUncachedEquivalence(t *testing.T) {
	domains := []string{"signed.com", "unsigned.com", "bogus.com"}
	build := func(t *testing.T, denial string) *zone.Zone {
		h := newHierarchy(t)
		for i, d := range domains {
			mode := []dnstest.DomainMode{dnstest.Full, dnstest.Unsigned, dnstest.BogusDS}[i]
			if _, _, err := h.AddDomain(d, fmt.Sprintf("ns%d.operator.net", i+1), mode); err != nil {
				t.Fatal(err)
			}
		}
		z := h.TLDZone("com")
		signer := h.TLDSigner("com")
		switch denial {
		case "nsec":
			signer.AddNSEC = true
		case "nsec3":
			signer.NSEC3 = &dnswire.NSEC3PARAM{HashAlg: 1}
		}
		if denial != "plain" {
			if err := signer.Sign(z); err != nil {
				t.Fatal(err)
			}
		}
		return z
	}
	for _, denial := range []string{"plain", "nsec", "nsec3"} {
		t.Run(denial, func(t *testing.T) {
			z := build(t, denial)
			cached, uncached := newCachedUncachedPair(z)
			queries := sweepQueries(t, sweepNames("com", domains))
			assertSweepEquivalence(t, cached, uncached, queries, denial)
			if st := cached.CacheStats(); st.Fills == 0 || st.Hits == 0 {
				t.Errorf("cache not exercised: %+v", st)
			}
		})
	}
}

// TestDayTransitionNoStaleCache mirrors what a tldsim day transition does to
// a TLD zone — registry.syncDelegationLocked's mutation sequence (drop
// NS/DS and DS signatures, publish the new delegation, re-sign the DS set,
// bump the serial) plus key rollover and NS changes — and checks after
// every transition that the warm cache never serves a response the uncached
// path would no longer produce.
func TestDayTransitionNoStaleCache(t *testing.T) {
	for _, denial := range []string{"plain", "nsec"} {
		t.Run(denial, func(t *testing.T) {
			h := newHierarchy(t)
			domains := []string{"alpha.com", "beta.com", "gamma.com"}
			for i, d := range domains {
				if _, _, err := h.AddDomain(d, fmt.Sprintf("ns%d.operator.net", i+1), dnstest.Full); err != nil {
					t.Fatal(err)
				}
			}
			z := h.TLDZone("com")
			signer := h.TLDSigner("com")
			if denial == "nsec" {
				signer.AddNSEC = true
				if err := signer.Sign(z); err != nil {
					t.Fatal(err)
				}
			}
			cached, uncached := newCachedUncachedPair(z)
			queries := sweepQueries(t, sweepNames("com", domains))

			// Prime the cache with the whole sweep, then mutate.
			assertSweepEquivalence(t, cached, uncached, queries, "prime")

			syncDelegation := func(domain, nsHost string, ds []*dnswire.DS) {
				t.Helper()
				z.Remove(domain, dnswire.TypeNS)
				z.Remove(domain, dnswire.TypeDS)
				z.RemoveSigs(domain, dnswire.TypeDS)
				z.MustAdd(dnswire.NewRR(domain, 86400, &dnswire.NS{Host: nsHost}))
				for _, d := range ds {
					z.MustAdd(dnswire.NewRR(domain, 86400, d))
				}
				if len(ds) > 0 {
					if err := signer.SignSet(z, domain, dnswire.TypeDS); err != nil {
						t.Fatal(err)
					}
				}
				z.BumpSerial()
			}
			newDS := func(domain string) []*dnswire.DS {
				t.Helper()
				child, err := zone.NewSigner(dnswire.AlgED25519, testNow)
				if err != nil {
					t.Fatal(err)
				}
				ds, err := child.DSRecords(domain, dnswire.DigestSHA256)
				if err != nil {
					t.Fatal(err)
				}
				return ds
			}

			// Day 1: alpha switches operators and rolls its keys (new DS).
			syncDelegation("alpha.com", "ns9.other-operator.net", newDS("alpha.com"))
			assertSweepEquivalence(t, cached, uncached, queries, "rollover")

			// Day 2: beta goes insecure (DS removed, delegation kept).
			syncDelegation("beta.com", "ns2.operator.net", nil)
			assertSweepEquivalence(t, cached, uncached, queries, "ds-removed")

			// Day 3: gamma is dropped from the registry entirely.
			z.Remove("gamma.com", dnswire.TypeNS)
			z.Remove("gamma.com", dnswire.TypeDS)
			z.RemoveSigs("gamma.com", dnswire.TypeDS)
			z.BumpSerial()
			assertSweepEquivalence(t, cached, uncached, queries, "dropped")

			// Day 4: a brand-new delegation appears (structural under NSEC).
			syncDelegation("delta.com", "ns4.operator.net", newDS("delta.com"))
			more := sweepQueries(t, []string{"delta.com", "www.delta.com"})
			assertSweepEquivalence(t, cached, uncached, append(queries, more...), "added")
		})
	}
}

// TestFastPathAllocs pins the zero-allocation property of warm cache hits:
// at most 2 allocations per query are tolerated, and today the path does 0.
func TestFastPathAllocs(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	cached, _ := newCachedUncachedPair(h.TLDZone("com"))
	q := dnswire.NewQuery(7, "example.com", dnswire.TypeDS)
	q.SetEDNS(dnswire.ReplyUDPPayload, true)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	sc := dnsserver.NewWireScratch()
	if resp := cached.ServeWireFull(nil, pkt, sc, true); resp == nil {
		t.Fatal("prime failed")
	}
	out := make([]byte, 0, 4096)
	var hit bool
	out, hit = cached.ServeWireFast(out[:0], pkt, sc)
	if !hit {
		t.Fatal("warm query missed")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		out, hit = cached.ServeWireFast(out[:0], pkt, sc)
		if !hit {
			t.Fatal("warm query missed")
		}
	})
	if allocs > 2 {
		t.Errorf("fast path allocates %.1f/op (max 2)", allocs)
	}
}

// TestTruncatedReplyEchoesEDNS covers the truncation path on both the slow
// and fast paths: a response exceeding the client's advertised payload must
// come back TC with the responder's OPT when (and only when) the query
// carried EDNS, and the two paths must agree byte for byte.
func TestTruncatedReplyEchoesEDNS(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	z := h.TLDZone("com")
	// Fatten the apex so ANY answers cannot fit in 512 bytes.
	for i := 0; i < 8; i++ {
		z.MustAdd(dnswire.NewRR("com", 300, &dnswire.TXT{
			Strings: []string{fmt.Sprintf("padding-%d-%s", i, string(bytes.Repeat([]byte{'x'}, 60)))},
		}))
	}
	cached, uncached := newCachedUncachedPair(z)

	check := func(t *testing.T, pkt []byte, wantOPT bool) {
		scC := dnsserver.NewWireScratch()
		scU := dnsserver.NewWireScratch()
		full := uncached.ServeWireFull(nil, pkt, scU, false)
		if full == nil {
			t.Fatal("uncached render failed")
		}
		if len(full) <= 512 {
			t.Fatalf("test premise broken: response only %d bytes", len(full))
		}
		slowTC := cached.ServeWireFull(nil, pkt, scC, true)
		if slowTC == nil {
			t.Fatal("cached render failed")
		}
		fastTC, hit := cached.ServeWireFast(nil, pkt, scC)
		if !hit {
			t.Fatal("cache miss after fill")
		}
		if !bytes.Equal(slowTC, fastTC) {
			t.Fatalf("slow and fast truncations differ:\nslow: %x\nfast: %x", slowTC, fastTC)
		}
		var m dnswire.Message
		if err := m.Unpack(fastTC); err != nil {
			t.Fatal(err)
		}
		if !m.Truncated {
			t.Error("TC not set")
		}
		if len(m.Answers) != 0 || len(m.Authority) != 0 {
			t.Error("truncated response carries records")
		}
		e := m.EDNS()
		if wantOPT && e == nil {
			t.Error("EDNS query got a TC response without OPT")
		}
		if !wantOPT && e != nil {
			t.Error("plain query got an OPT in the TC response")
		}
		if wantOPT && !e.DNSSECOK {
			t.Error("DO bit not echoed in the TC response")
		}
	}

	t.Run("edns-do", func(t *testing.T) {
		q := dnswire.NewQuery(3, "com", dnswire.TypeANY)
		q.SetEDNS(512, true)
		pkt, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		check(t, pkt, true)
	})
	t.Run("no-edns", func(t *testing.T) {
		q := dnswire.NewQuery(4, "com", dnswire.TypeANY)
		pkt, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		check(t, pkt, false)
	})
}

// TestShardedMatchesAuthoritative is a differential check of the two
// Message-level handlers over the sweep.
func TestShardedMatchesAuthoritative(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	z := h.TLDZone("com")
	auth := dnsserver.NewAuthoritative()
	auth.AddZone(z)
	sh := dnsserver.NewSharded(dnsserver.ShardedConfig{})
	sh.AddZone(z)
	for _, pkt := range sweepQueries(t, sweepNames("com", []string{"example.com"})) {
		var q1, q2 dnswire.Message
		if err := q1.Unpack(pkt); err != nil {
			t.Fatal(err)
		}
		if err := q2.Unpack(pkt); err != nil {
			t.Fatal(err)
		}
		r1, err := auth.ServeDNS(&q1).Pack()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sh.ServeDNS(&q2).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1, r2) {
			t.Fatalf("handlers diverge for %x", pkt)
		}
	}
}

// TestConcurrentMutationEquivalence hammers the cached wire paths from
// several goroutines while a mutator replays day transitions, then checks
// the cache settled to the uncached view. Run under -race this also proves
// the lock-free read paths are sound.
func TestConcurrentMutationEquivalence(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	z := h.TLDZone("com")
	signer := h.TLDSigner("com")
	cached, uncached := newCachedUncachedPair(z)
	queries := sweepQueries(t, sweepNames("com", []string{"example.com"}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := dnsserver.NewWireScratch()
			var buf []byte
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pkt := queries[(i+w)%len(queries)]
				var hit bool
				buf, hit = cached.ServeWireFast(buf[:0], pkt, sc)
				if !hit {
					if out := cached.ServeWireFull(buf[:0], pkt, sc, true); out == nil {
						t.Error("full path failed mid-mutation")
						return
					}
				}
			}
		}(w)
	}
	for round := 0; round < 25; round++ {
		z.Remove("example.com", dnswire.TypeDS)
		z.RemoveSigs("example.com", dnswire.TypeDS)
		child, err := zone.NewSigner(dnswire.AlgED25519, testNow)
		if err != nil {
			t.Fatal(err)
		}
		dss, err := child.DSRecords("example.com", dnswire.DigestSHA256)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range dss {
			z.MustAdd(dnswire.NewRR("example.com", 86400, ds))
		}
		if err := signer.SignSet(z, "example.com", dnswire.TypeDS); err != nil {
			t.Fatal(err)
		}
		z.BumpSerial()
	}
	close(stop)
	wg.Wait()
	assertSweepEquivalence(t, cached, uncached, queries, "post-mutation")
}
