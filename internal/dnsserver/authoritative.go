// Package dnsserver implements an authoritative DNS server for the zones of
// package zone, DNSSEC-aware per RFC 4035 section 3: it includes RRSIGs
// when the DO bit is set, serves referrals with DS records at delegation
// cuts, sets the AA bit, and truncates UDP responses that exceed the
// client's advertised payload size.
//
// Two transports are provided: real UDP/TCP listeners (Server) for
// wire-level integration, and an in-memory network (MemNet) that lets the
// simulation host tens of thousands of "servers" without sockets.
package dnsserver

import (
	"sort"
	"sync"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// Handler answers DNS queries. Implementations must be safe for concurrent
// use.
type Handler interface {
	ServeDNS(q *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q *dnswire.Message) *dnswire.Message

// ServeDNS implements Handler.
func (f HandlerFunc) ServeDNS(q *dnswire.Message) *dnswire.Message { return f(q) }

// Authoritative serves one or more zones.
type Authoritative struct {
	mu    sync.RWMutex
	zones map[string]*zone.Zone
	// axfr gates zone transfers (nil denies all; see EnableAXFR).
	axfr AXFRAllowed
}

// NewAuthoritative creates an empty authoritative server.
func NewAuthoritative() *Authoritative {
	return &Authoritative{zones: make(map[string]*zone.Zone)}
}

// AddZone installs (or replaces) a zone.
func (a *Authoritative) AddZone(z *zone.Zone) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.zones[z.Origin] = z
}

// RemoveZone drops the zone rooted at origin.
func (a *Authoritative) RemoveZone(origin string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.zones, dnswire.CanonicalName(origin))
}

// Zone returns the hosted zone with the given origin, or nil.
func (a *Authoritative) Zone(origin string) *zone.Zone {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.zones[dnswire.CanonicalName(origin)]
}

// ZoneCount returns the number of hosted zones.
func (a *Authoritative) ZoneCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.zones)
}

// findZone returns the most specific zone containing qname.
func (a *Authoritative) findZone(qname string) *zone.Zone {
	a.mu.RLock()
	defer a.mu.RUnlock()
	cur := qname
	for {
		if z, ok := a.zones[cur]; ok {
			return z
		}
		p, ok := dnswire.Parent(cur)
		if !ok {
			return nil
		}
		cur = p
	}
}

// ServeDNS implements Handler.
func (a *Authoritative) ServeDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Questions) != 1 || q.OpCode != dnswire.OpCodeQuery {
		resp.RCode = dnswire.RCodeNotImplemented
		return resp
	}
	qname := dnswire.CanonicalName(q.Questions[0].Name)
	z := a.findZone(qname)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	answerInZone(resp, q, qname, z)
	return resp
}

// answerInZone fills resp with the authoritative answer for q's single
// question out of zone z, per RFC 4035 section 3. It is the shared core of
// Authoritative and Sharded.
func answerInZone(resp *dnswire.Message, q *dnswire.Message, qname string, z *zone.Zone) {
	question := q.Questions[0]
	dnssecOK := q.DNSSECOK()
	resp.Authoritative = true

	// Delegation handling: anything at or below a cut is referred, except a
	// DS query for the cut itself, which the parent answers authoritatively
	// (RFC 4035 section 3.1.4.1).
	if cut, nsSet := z.DelegationFor(qname); cut != "" {
		if qname == cut && question.Type == dnswire.TypeDS {
			if !answerRRSet(resp, z, qname, dnswire.TypeDS, dnssecOK) {
				attachSOA(resp, z, dnssecOK)
			}
			return
		}
		resp.Authoritative = false
		resp.Authority = append(resp.Authority, nsSet...)
		if dnssecOK {
			// DS (or proof of its absence) travels with the referral.
			for _, ds := range z.Lookup(cut, dnswire.TypeDS) {
				resp.Authority = append(resp.Authority, ds)
			}
			appendSigs(resp, z, cut, dnswire.TypeDS, &resp.Authority)
			if len(z.Lookup(cut, dnswire.TypeDS)) == 0 {
				// Prove the delegation is insecure: NSEC at the cut, or
				// the NSEC3 matching its hash.
				if params := nsec3Params(z); params != nil {
					attachNSEC3ForName(resp, z, params, cut)
				} else {
					for _, nsec := range z.Lookup(cut, dnswire.TypeNSEC) {
						resp.Authority = append(resp.Authority, nsec)
					}
					appendSigs(resp, z, cut, dnswire.TypeNSEC, &resp.Authority)
				}
			}
		}
		// Glue for in-bailiwick nameservers.
		for _, ns := range nsSet {
			host := ns.Data.(*dnswire.NS).Host
			if dnswire.IsSubdomain(host, cut) {
				resp.Additional = append(resp.Additional, z.Lookup(host, dnswire.TypeA)...)
				resp.Additional = append(resp.Additional, z.Lookup(host, dnswire.TypeAAAA)...)
			}
		}
		return
	}

	if !z.HasName(qname) {
		resp.RCode = dnswire.RCodeNameError
		attachSOA(resp, z, dnssecOK)
		if dnssecOK {
			if params := nsec3Params(z); params != nil {
				attachNSEC3Denial(resp, z, params, qname)
			} else {
				attachCoveringNSEC(resp, z, qname)
			}
		}
		return
	}

	// CNAME indirection (unless CNAME itself was asked for).
	if question.Type != dnswire.TypeCNAME && question.Type != dnswire.TypeANY {
		if cn := z.Lookup(qname, dnswire.TypeCNAME); len(cn) > 0 {
			resp.Answers = append(resp.Answers, cn...)
			appendSigs(resp, z, qname, dnswire.TypeCNAME, &resp.Answers)
			target := cn[0].Data.(*dnswire.CNAME).Target
			if dnswire.IsSubdomain(target, z.Origin) && z.HasName(target) {
				for _, rr := range z.Lookup(target, question.Type) {
					resp.Answers = append(resp.Answers, rr)
				}
				appendSigs(resp, z, target, question.Type, &resp.Answers)
			}
			return
		}
	}

	if question.Type == dnswire.TypeANY {
		// Render in ascending type order so the response bytes are a pure
		// function of zone content — the wire cache's equivalence contract.
		all := z.LookupAll(qname)
		types := make([]dnswire.Type, 0, len(all))
		for t := range all {
			if t == dnswire.TypeRRSIG && !dnssecOK {
				continue
			}
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			resp.Answers = append(resp.Answers, all[t]...)
		}
		if len(resp.Answers) == 0 {
			attachSOA(resp, z, dnssecOK)
		}
		return
	}

	if !answerRRSet(resp, z, qname, question.Type, dnssecOK) {
		// NODATA: name exists but not this type.
		attachSOA(resp, z, dnssecOK)
		if dnssecOK {
			if params := nsec3Params(z); params != nil {
				attachNSEC3ForName(resp, z, params, qname)
			} else {
				for _, nsec := range z.Lookup(qname, dnswire.TypeNSEC) {
					resp.Authority = append(resp.Authority, nsec)
				}
				appendSigs(resp, z, qname, dnswire.TypeNSEC, &resp.Authority)
			}
		}
	}
}

// answerRRSet copies the RRset (and signatures when dnssecOK) into the
// answer section; it reports whether any records were found.
func answerRRSet(resp *dnswire.Message, z *zone.Zone, name string, t dnswire.Type, dnssecOK bool) bool {
	rrs := z.Lookup(name, t)
	if len(rrs) == 0 {
		return false
	}
	resp.Answers = append(resp.Answers, rrs...)
	if dnssecOK {
		appendSigs(resp, z, name, t, &resp.Answers)
	}
	return true
}

// attachSOA places the zone SOA in the authority section for negative
// responses, with its signature under DO.
func attachSOA(resp *dnswire.Message, z *zone.Zone, dnssecOK bool) {
	if soa := z.SOA(); soa != nil {
		resp.Authority = append(resp.Authority, soa)
		if dnssecOK {
			appendSigs(resp, z, z.Origin, dnswire.TypeSOA, &resp.Authority)
		}
	}
}

// nsec3Params returns the zone's NSEC3PARAM, or nil for NSEC/unsigned
// zones.
func nsec3Params(z *zone.Zone) *dnswire.NSEC3PARAM {
	for _, rr := range z.Lookup(z.Origin, dnswire.TypeNSEC3PARAM) {
		return rr.Data.(*dnswire.NSEC3PARAM)
	}
	return nil
}

// attachNSEC3ForName appends the NSEC3 RRset (with signatures) whose owner
// name is the hash of name, and reports whether one was found.
func attachNSEC3ForName(resp *dnswire.Message, z *zone.Zone, params *dnswire.NSEC3PARAM, name string) bool {
	owner, err := dnssec.NSEC3OwnerName(name, z.Origin, params.Salt, params.Iterations)
	if err != nil {
		return false
	}
	rrs := z.Lookup(owner, dnswire.TypeNSEC3)
	if len(rrs) == 0 {
		return false
	}
	resp.Authority = append(resp.Authority, rrs...)
	appendSigs(resp, z, owner, dnswire.TypeNSEC3, &resp.Authority)
	return true
}

// attachCoveringNSEC3 appends the NSEC3 whose hash span covers name's hash.
func attachCoveringNSEC3(resp *dnswire.Message, z *zone.Zone, params *dnswire.NSEC3PARAM, name string) {
	h, err := dnssec.NSEC3Hash(name, params.Salt, params.Iterations)
	if err != nil {
		return
	}
	for _, owner := range z.Names() {
		for _, rr := range z.Lookup(owner, dnswire.TypeNSEC3) {
			proof := &dnssec.NSEC3Proof{Owner: owner, NSEC3: rr.Data.(*dnswire.NSEC3)}
			if proof.Covers(h) {
				resp.Authority = append(resp.Authority, rr)
				appendSigs(resp, z, owner, dnswire.TypeNSEC3, &resp.Authority)
				return
			}
		}
	}
}

// attachNSEC3Denial builds the RFC 5155 NXDOMAIN proof: the NSEC3 matching
// the closest encloser plus the NSEC3 covering the next-closer name.
func attachNSEC3Denial(resp *dnswire.Message, z *zone.Zone, params *dnswire.NSEC3PARAM, qname string) {
	ce := qname
	nextCloser := ""
	for {
		if z.HasName(ce) || ce == z.Origin {
			break
		}
		nextCloser = ce
		parent, ok := dnswire.Parent(ce)
		if !ok || !dnswire.IsSubdomain(parent, z.Origin) {
			return
		}
		ce = parent
	}
	attachNSEC3ForName(resp, z, params, ce)
	if nextCloser != "" {
		attachCoveringNSEC3(resp, z, params, nextCloser)
	}
}

// attachCoveringNSEC adds the NSEC record proving qname's nonexistence
// (RFC 4035 section 3.1.3.2): the NSEC whose owner/next span covers qname
// in canonical order, plus its signature. Zones signed without an NSEC
// chain simply contribute nothing.
func attachCoveringNSEC(resp *dnswire.Message, z *zone.Zone, qname string) {
	for _, name := range z.Names() {
		for _, rr := range z.Lookup(name, dnswire.TypeNSEC) {
			nsec := rr.Data.(*dnswire.NSEC)
			if nsecCovers(name, nsec.NextName, qname) {
				resp.Authority = append(resp.Authority, rr)
				appendSigs(resp, z, name, dnswire.TypeNSEC, &resp.Authority)
				return
			}
		}
	}
}

// nsecCovers reports whether qname falls in the (owner, next) canonical
// interval of an NSEC record, handling the wrap-around at the end of the
// chain.
func nsecCovers(owner, next, qname string) bool {
	cmpOwner := dnswire.CompareCanonical(owner, qname)
	cmpNext := dnswire.CompareCanonical(qname, next)
	if dnswire.CompareCanonical(owner, next) < 0 {
		return cmpOwner < 0 && cmpNext < 0
	}
	// Last NSEC wraps to the apex: it covers everything after the owner.
	return cmpOwner < 0 || cmpNext < 0
}

// appendSigs adds the RRSIGs covering (name, covered) to the given section.
func appendSigs(resp *dnswire.Message, z *zone.Zone, name string, covered dnswire.Type, section *[]*dnswire.RR) {
	_ = resp
	for _, rr := range z.Lookup(name, dnswire.TypeRRSIG) {
		if rr.Data.(*dnswire.RRSIG).TypeCovered == covered {
			*section = append(*section, rr)
		}
	}
}
