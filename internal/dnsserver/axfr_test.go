package dnsserver_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
)

// startTLDServer exposes the hierarchy's .com server over real sockets with
// AXFR enabled per policy.
func startTLDServer(t *testing.T, h *dnstest.Hierarchy, allow dnsserver.AXFRAllowed) *dnsserver.Server {
	t.Helper()
	auth := h.TLDServer("com")
	auth.EnableAXFR(allow)
	srv := &dnsserver.Server{Handler: auth}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestAXFRTransfersWholeZone(t *testing.T) {
	h := newHierarchy(t)
	for _, d := range []struct {
		name string
		mode dnstest.DomainMode
	}{
		{"alpha.com", dnstest.Full},
		{"beta.com", dnstest.Partial},
		{"gamma.com", dnstest.Unsigned},
	} {
		if _, _, err := h.AddDomain(d.name, "ns1.op.net", d.mode); err != nil {
			t.Fatal(err)
		}
	}
	srv := startTLDServer(t, h, func(string) bool { return true })

	client := &dnsserver.AXFRClient{Timeout: 5 * time.Second}
	z, err := client.Transfer(context.Background(), srv.Addr(), "com")
	if err != nil {
		t.Fatal(err)
	}
	// The transferred zone matches the served one record for record.
	want := h.TLDZone("com")
	if z.Len() != want.Len() {
		t.Errorf("transferred %d records, zone has %d", z.Len(), want.Len())
	}
	if len(z.Lookup("alpha.com", dnswire.TypeNS)) == 0 {
		t.Error("delegation missing after transfer")
	}
	if len(z.Lookup("alpha.com", dnswire.TypeDS)) == 0 {
		t.Error("DS missing after transfer")
	}
	if z.SOA() == nil {
		t.Error("SOA missing after transfer")
	}
}

func TestAXFRDeniedByPolicy(t *testing.T) {
	h := newHierarchy(t)
	srv := startTLDServer(t, h, func(string) bool { return false })
	client := &dnsserver.AXFRClient{Timeout: 2 * time.Second}
	if _, err := client.Transfer(context.Background(), srv.Addr(), "com"); err == nil {
		t.Fatal("denied transfer succeeded")
	}
	// Unknown zones are refused too.
	srv2 := startTLDServer(t, h, func(string) bool { return true })
	if _, err := client.Transfer(context.Background(), srv2.Addr(), "example.net"); err == nil {
		t.Fatal("transfer of unknown zone succeeded")
	}
}

func TestAXFRLargeZoneChunks(t *testing.T) {
	h := newHierarchy(t)
	// Enough delegations that the transfer needs multiple messages.
	for i := 0; i < 400; i++ {
		name := "bulk" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)) + ".com"
		if _, _, err := h.AddDomain(name, "ns1.op.net", dnstest.Unsigned); err != nil {
			t.Fatal(err)
		}
	}
	srv := startTLDServer(t, h, func(string) bool { return true })
	client := &dnsserver.AXFRClient{Timeout: 10 * time.Second}
	z, err := client.Transfer(context.Background(), srv.Addr(), "com")
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != h.TLDZone("com").Len() {
		t.Errorf("transferred %d records, zone has %d", z.Len(), h.TLDZone("com").Len())
	}
	// Normal queries still work on the same connection handling path.
	ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
	resp, err := ex.Exchange(context.Background(), srv.Addr(), dnswire.NewQuery(5, "bulkaaa.com", dnswire.TypeNS))
	if err != nil || resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("post-AXFR query: %v %v", err, resp)
	}
}
