package dnsserver_test

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
)

// slowHandler signals when a query arrives, then waits for release before
// answering — a controllable in-flight query for shutdown drills.
type slowHandler struct {
	entered chan struct{}
	release chan struct{}
}

func (h *slowHandler) ServeDNS(q *dnswire.Message) *dnswire.Message {
	h.entered <- struct{}{}
	<-h.release
	return q.Reply()
}

// tcpQuery writes one length-prefixed query on conn and returns the
// length-prefixed response.
func tcpQuery(conn net.Conn, q *dnswire.Message) (*dnswire.Message, error) {
	out, err := q.Pack()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 2+len(out))
	binary.BigEndian.PutUint16(buf, uint16(len(out)))
	copy(buf[2:], out)
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return nil, err
	}
	var m dnswire.Message
	if err := m.Unpack(msg); err != nil {
		return nil, err
	}
	return &m, nil
}

func TestShutdownDrainsInFlightQueries(t *testing.T) {
	h := &slowHandler{entered: make(chan struct{}, 2), release: make(chan struct{})}
	srv := &dnsserver.Server{Handler: h}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// One in-flight query on each transport.
	udpResp := make(chan error, 1)
	go func() {
		ex := &dnsserver.NetExchanger{Timeout: 5 * time.Second}
		_, err := ex.Exchange(context.Background(), srv.Addr(), dnswire.NewQuery(21, "example.com", dnswire.TypeA))
		udpResp <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tcpResp := make(chan error, 1)
	go func() {
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		_, err := tcpQuery(conn, dnswire.NewQuery(22, "example.com", dnswire.TypeA))
		tcpResp <- err
	}()
	<-h.entered
	<-h.entered

	// Release the handlers just after the drain begins, so both responses
	// are written while the server is shutting down.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(h.release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if err := <-udpResp; err != nil {
		t.Errorf("in-flight UDP query lost during shutdown: %v", err)
	}
	if err := <-tcpResp; err != nil {
		t.Errorf("in-flight TCP query lost during shutdown: %v", err)
	}

	// The server is down: new queries must fail fast.
	ex := &dnsserver.NetExchanger{Timeout: 200 * time.Millisecond}
	if _, err := ex.Exchange(context.Background(), srv.Addr(), dnswire.NewQuery(23, "example.com", dnswire.TypeA)); err == nil {
		t.Error("query answered after shutdown completed")
	}
}

func TestShutdownDeadlineForcesClose(t *testing.T) {
	h := &slowHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := &dnsserver.Server{Handler: h}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tcpResp := make(chan error, 1)
	go func() {
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		_, err := tcpQuery(conn, dnswire.NewQuery(31, "example.com", dnswire.TypeA))
		tcpResp <- err
	}()
	<-h.entered

	// The handler never finishes within the drain budget: Shutdown must
	// give up at the deadline and sever the connection rather than hang.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	close(h.release) // unblock the stuck handler goroutine
	if err := <-tcpResp; err == nil {
		t.Error("client still got a response from a force-closed connection")
	}
}

func TestShutdownIdleServerIsImmediate(t *testing.T) {
	srv := &dnsserver.Server{Handler: dnsserver.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		return q.Reply()
	})}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// An idle TCP connection must not hold the drain open for ReadTimeout.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(20 * time.Millisecond) // let the server accept and park in a read
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("idle shutdown took %v", d)
	}
}
