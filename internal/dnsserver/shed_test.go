package dnsserver_test

import (
	"net"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
)

// blockingHandler parks every query until released, simulating a slow
// rendering path so the admission semaphore fills.
type blockingHandler struct {
	release chan struct{}
}

func (b *blockingHandler) ServeDNS(q *dnswire.Message) *dnswire.Message {
	<-b.release
	return q.Reply()
}

// TestSlowPathShedsLoad pins the apiserv-style admission gate: with
// MaxInFlight exhausted by a stuck handler, excess packets are dropped and
// counted instead of spawning unbounded goroutines.
func TestSlowPathShedsLoad(t *testing.T) {
	bh := &blockingHandler{release: make(chan struct{})}
	srv := &dnsserver.Server{Handler: bh, MaxInFlight: 1, UDPWorkers: 1}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := dnswire.NewQuery(1, "example.com", dnswire.TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := c.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	var st dnsserver.ServerStats
	for time.Now().Before(deadline) {
		st = srv.Stats()
		if st.Dropped > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Dropped == 0 {
		t.Fatalf("no packets shed: %+v", st)
	}
	if st.SlowPath == 0 {
		t.Errorf("no packet admitted: %+v", st)
	}
	// Release the stuck handler so Close's drain terminates, and confirm
	// the admitted query still gets its answer.
	close(bh.release)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("admitted query never answered: %v", err)
	}
}

// replyHandler answers every query immediately.
type replyHandler struct{}

func (replyHandler) ServeDNS(q *dnswire.Message) *dnswire.Message { return q.Reply() }

// TestTCPConnFloodShedsLoad pins the TCP admission gate: a flood of
// held-open connections past MaxTCPConns is shed at accept and counted,
// idle admitted connections are reaped by the read deadline, and the
// server keeps answering fresh queries throughout.
func TestTCPConnFloodShedsLoad(t *testing.T) {
	srv := &dnsserver.Server{
		Handler:     replyHandler{},
		MaxTCPConns: 4,
		ReadTimeout: 200 * time.Millisecond,
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Flood: 50 connections that send nothing and never hang up on their
	// own. At most MaxTCPConns may ever be admitted at once.
	var flood []net.Conn
	defer func() {
		for _, c := range flood {
			c.Close()
		}
	}()
	for i := 0; i < 50; i++ {
		c, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, c)
	}

	deadline := time.Now().Add(5 * time.Second)
	var st dnsserver.ServerStats
	for time.Now().Before(deadline) {
		st = srv.Stats()
		if st.TCPShed > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.TCPShed == 0 {
		t.Fatalf("no connections shed: %+v", st)
	}

	// The server must stay responsive: once the read deadline reaps the
	// idle admitted connections, a fresh connection gets served. Retry
	// until then — a given dial may itself be shed while the pool is full.
	q := dnswire.NewQuery(7, "example.com", dnswire.TypeA)
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(time.Second))
		_, err = tcpQuery(c, q)
		c.Close()
		if err == nil {
			return
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server never answered over TCP after flood: %v (stats %+v)", lastErr, srv.Stats())
}
