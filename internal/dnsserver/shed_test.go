package dnsserver_test

import (
	"net"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
)

// blockingHandler parks every query until released, simulating a slow
// rendering path so the admission semaphore fills.
type blockingHandler struct {
	release chan struct{}
}

func (b *blockingHandler) ServeDNS(q *dnswire.Message) *dnswire.Message {
	<-b.release
	return q.Reply()
}

// TestSlowPathShedsLoad pins the apiserv-style admission gate: with
// MaxInFlight exhausted by a stuck handler, excess packets are dropped and
// counted instead of spawning unbounded goroutines.
func TestSlowPathShedsLoad(t *testing.T) {
	bh := &blockingHandler{release: make(chan struct{})}
	srv := &dnsserver.Server{Handler: bh, MaxInFlight: 1, UDPWorkers: 1}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := dnswire.NewQuery(1, "example.com", dnswire.TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := c.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	var st dnsserver.ServerStats
	for time.Now().Before(deadline) {
		st = srv.Stats()
		if st.Dropped > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Dropped == 0 {
		t.Fatalf("no packets shed: %+v", st)
	}
	if st.SlowPath == 0 {
		t.Errorf("no packet admitted: %+v", st)
	}
	// Release the stuck handler so Close's drain terminates, and confirm
	// the admitted query still gets its answer.
	close(bh.release)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("admitted query never answered: %v", err)
	}
}
