package dnsserver_test

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

var testNow = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func newHierarchy(t *testing.T) *dnstest.Hierarchy {
	t.Helper()
	h, err := dnstest.NewHierarchy(testNow, "com", "org")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func query(t *testing.T, h dnsserver.Handler, name string, typ dnswire.Type, do bool) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(42, name, typ)
	if do {
		q.SetEDNS(4096, true)
	}
	resp := h.ServeDNS(q)
	if resp == nil {
		t.Fatal("nil response")
	}
	return resp
}

func TestAuthoritativeAnswer(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	srv := h.OperatorServer("ns1.operator.net")
	resp := query(t, srv, "www.example.com", dnswire.TypeA, false)
	if !resp.Authoritative || resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("AA=%v rcode=%v", resp.Authoritative, resp.RCode)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnswire.TypeA {
		t.Fatalf("answers: %v", resp.Answers)
	}
	// Without DO, no RRSIGs.
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			t.Error("RRSIG included without DO bit")
		}
	}
	// With DO, RRSIGs ride along.
	resp = query(t, srv, "www.example.com", dnswire.TypeA, true)
	haveSig := false
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			haveSig = true
		}
	}
	if !haveSig {
		t.Error("no RRSIG with DO bit set")
	}
}

func TestReferralWithDS(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	tld := h.TLDServer("com")
	resp := query(t, tld, "www.example.com", dnswire.TypeA, true)
	if resp.Authoritative {
		t.Error("referral must not set AA")
	}
	var sawNS, sawDS, sawSig bool
	for _, rr := range resp.Authority {
		switch rr.Type {
		case dnswire.TypeNS:
			sawNS = true
			if rr.Name != "example.com" {
				t.Errorf("NS owner %q", rr.Name)
			}
		case dnswire.TypeDS:
			sawDS = true
		case dnswire.TypeRRSIG:
			sawSig = true
		}
	}
	if !sawNS || !sawDS || !sawSig {
		t.Errorf("referral sections incomplete: NS=%v DS=%v RRSIG=%v", sawNS, sawDS, sawSig)
	}
	// Without DO no DS in the referral.
	resp = query(t, tld, "www.example.com", dnswire.TypeA, false)
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeDS {
			t.Error("DS included without DO")
		}
	}
}

func TestDSQueryAnsweredByParent(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	tld := h.TLDServer("com")
	resp := query(t, tld, "example.com", dnswire.TypeDS, true)
	if !resp.Authoritative {
		t.Error("parent must answer DS authoritatively")
	}
	if len(resp.Answers) == 0 || resp.Answers[0].Type != dnswire.TypeDS {
		t.Fatalf("DS answer missing: %v", resp.Answers)
	}
	// Unsigned sibling: DS query yields authoritative NODATA with SOA.
	if _, _, err := h.AddDomain("plain.com", "ns1.operator.net", dnstest.Unsigned); err != nil {
		t.Fatal(err)
	}
	resp = query(t, tld, "plain.com", dnswire.TypeDS, true)
	if !resp.Authoritative || len(resp.Answers) != 0 {
		t.Errorf("NODATA expected: AA=%v answers=%d", resp.Authoritative, len(resp.Answers))
	}
	soaSeen := false
	for _, rr := range resp.Authority {
		if rr.Type == dnswire.TypeSOA {
			soaSeen = true
		}
	}
	if !soaSeen {
		t.Error("NODATA without SOA")
	}
}

func TestNXDomainAndNodata(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	srv := h.OperatorServer("ns1.operator.net")
	resp := query(t, srv, "missing.example.com", dnswire.TypeA, false)
	if resp.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.RCode)
	}
	// NODATA: www exists, MX does not.
	resp = query(t, srv, "www.example.com", dnswire.TypeMX, false)
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 0 {
		t.Errorf("NODATA: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
}

func TestCNAMEChase(t *testing.T) {
	h := newHierarchy(t)
	child, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	child.MustAdd(dnswire.NewRR("alias.example.com", 300, &dnswire.CNAME{Target: "www.example.com"}))
	srv := h.OperatorServer("ns1.operator.net")
	resp := query(t, srv, "alias.example.com", dnswire.TypeA, false)
	if len(resp.Answers) != 2 {
		t.Fatalf("CNAME chase answers: %v", resp.Answers)
	}
	if resp.Answers[0].Type != dnswire.TypeCNAME || resp.Answers[1].Type != dnswire.TypeA {
		t.Errorf("answer order: %v, %v", resp.Answers[0].Type, resp.Answers[1].Type)
	}
}

func TestRefusedOutOfBailiwick(t *testing.T) {
	h := newHierarchy(t)
	srv := h.OperatorServer("ns1.operator.net")
	resp := query(t, srv, "www.elsewhere.net", dnswire.TypeA, false)
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestNotImplemented(t *testing.T) {
	h := newHierarchy(t)
	q := dnswire.NewQuery(1, "com", dnswire.TypeA)
	q.OpCode = 4 // NOTIFY
	resp := h.TLDServer("com").ServeDNS(q)
	if resp.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("rcode = %v", resp.RCode)
	}
	q2 := &dnswire.Message{} // zero questions
	resp = h.TLDServer("com").ServeDNS(q2)
	if resp.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("rcode = %v for empty question", resp.RCode)
	}
}

func TestMemNetStrictRoundTrip(t *testing.T) {
	h := newHierarchy(t)
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(9, "www.example.com", dnswire.TypeA)
	q.SetEDNS(4096, true)
	resp, err := h.Net.Exchange(context.Background(), "ns1.operator.net", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) == 0 {
		t.Error("no answers through strict MemNet")
	}
	if _, err := h.Net.Exchange(context.Background(), "nonexistent.example", q); err == nil {
		t.Error("exchange to unregistered address succeeded")
	}
	if h.Net.Queries() < 1 {
		t.Error("query counter not incremented")
	}
}

func TestUDPTCPServer(t *testing.T) {
	h := newHierarchy(t)
	child, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full)
	if err != nil {
		t.Fatal(err)
	}
	// Add enough TXT data that the DNSSEC response exceeds 512 bytes and
	// forces truncation + TCP retry.
	long := strings.Repeat("x", 200)
	child.MustAdd(dnswire.NewRR("big.example.com", 300, &dnswire.TXT{Strings: []string{long, long, long}}))

	auth := dnsserver.NewAuthoritative()
	auth.AddZone(child)
	srv := &dnsserver.Server{Handler: auth}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
	ctx := context.Background()

	q := dnswire.NewQuery(77, "www.example.com", dnswire.TypeA)
	resp, err := ex.Exchange(ctx, srv.Addr(), q)
	if err != nil {
		t.Fatalf("udp exchange: %v", err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers: %v", resp.Answers)
	}

	// >512B answer without EDNS: server truncates, exchanger retries TCP.
	q2 := dnswire.NewQuery(78, "big.example.com", dnswire.TypeTXT)
	resp2, err := ex.Exchange(ctx, srv.Addr(), q2)
	if err != nil {
		t.Fatalf("tcp fallback exchange: %v", err)
	}
	if resp2.Truncated {
		t.Error("final response still truncated")
	}
	if len(resp2.Answers) != 1 {
		t.Fatalf("big answers: %d", len(resp2.Answers))
	}

	// With fallback disabled we must see the truncated response.
	exNoTCP := &dnsserver.NetExchanger{Timeout: 2 * time.Second, DisableTCPFallback: true}
	resp3, err := exNoTCP.Exchange(ctx, srv.Addr(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp3.Truncated {
		t.Error("expected truncated UDP response")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := &dnsserver.Server{Handler: dnsserver.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		return q.Reply()
	})}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZoneManagement(t *testing.T) {
	auth := dnsserver.NewAuthoritative()
	z := zone.New("example.net")
	z.MustAdd(dnswire.NewRR("example.net", 300, &dnswire.A{Addr: netip.MustParseAddr("192.0.2.4")}))
	auth.AddZone(z)
	if auth.ZoneCount() != 1 || auth.Zone("example.net") == nil {
		t.Error("zone not registered")
	}
	auth.RemoveZone("example.net")
	if auth.ZoneCount() != 0 {
		t.Error("zone not removed")
	}
	resp := auth.ServeDNS(dnswire.NewQuery(5, "example.net", dnswire.TypeA))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode after removal: %v", resp.RCode)
	}
}
