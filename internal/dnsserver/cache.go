package dnsserver

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// ResponseCache stores fully packed wire responses keyed by
// (qname, qtype, EDNS state). Entries are normalized — message ID zeroed,
// RD bit cleared — so one rendering serves every client; the hit path
// copies the bytes and patches ID and RD in place.
//
// Reads are lock-free: each bucket holds its entry map behind an atomic
// pointer and writers replace the map copy-on-write under a per-bucket
// mutex. Invalidation is driven by zone.Events (see Sharded.AddZone): a
// name-scoped event flushes the enclosing delegation cut's subtree, an
// apex-scoped event flushes only entries that embed apex-owned records,
// and a zone-scoped event flushes everything rendered from that zone.
//
// A fill races with concurrent zone mutation, so inserts carry a guard:
// the filler pins the zone's generation (and the handler's publish
// generation) before rendering, and insert rejects the entry if either
// moved — a response rendered from half-mutated state can never be cached.
type ResponseCache struct {
	buckets [cacheBuckets]respBucket
	// perBucketCap bounds each bucket's map; inserts into a full bucket are
	// rejected (counted, not evicted — the workload is a closed universe of
	// simulated names, so steady state fits or it doesn't).
	perBucketCap int

	hits     atomic.Uint64
	misses   atomic.Uint64
	fills    atomic.Uint64
	rejected atomic.Uint64
	flushed  atomic.Uint64
}

const cacheBuckets = 256

type respBucket struct {
	m  atomic.Pointer[map[string]*respEntry]
	mu sync.Mutex
}

type respEntry struct {
	// wire is the packed response with ID zeroed and RD cleared.
	wire []byte
	// origin of the zone the response was rendered from.
	origin string
	// apexDep marks responses embedding apex-owned records (SOA in negative
	// answers, apex RRsets): the only entries a ScopeApex event flushes.
	apexDep bool
}

// EDNS-state key byte: responses differ by OPT presence and DO bit, but not
// by the client's advertised size (Reply pins the responder payload).
const (
	ednsNone  = byte(0)
	ednsPlain = byte(1)
	ednsDO    = byte(2)
)

// NewResponseCache creates a cache bounded to roughly maxEntries entries
// (0 means the 256k default).
func NewResponseCache(maxEntries int) *ResponseCache {
	if maxEntries <= 0 {
		maxEntries = 1 << 18
	}
	per := maxEntries / cacheBuckets
	if per < 4 {
		per = 4
	}
	c := &ResponseCache{perBucketCap: per}
	for i := range c.buckets {
		empty := make(map[string]*respEntry)
		c.buckets[i].m.Store(&empty)
	}
	return c
}

// respKey builds the cache key into buf: qname bytes, two qtype bytes, one
// EDNS-state byte.
func respKey(buf []byte, qname []byte, qtype dnswire.Type, edns byte) []byte {
	buf = append(buf[:0], qname...)
	return append(buf, byte(qtype>>8), byte(qtype), edns)
}

// keyQName recovers the qname portion of a key.
func keyQName(key string) string { return key[:len(key)-3] }

func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// unsafeString views b as a string without copying. The result must not
// outlive b and b must not be mutated while the string is live — both hold
// on the lookup path, where the view only lives for one map index.
func unsafeString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// lookup returns the entry for key, or nil. Lock-free.
func (c *ResponseCache) lookup(key []byte) *respEntry {
	b := &c.buckets[hashKey(key)&(cacheBuckets-1)]
	m := *b.m.Load()
	e := m[unsafeString(key)]
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// insert stores e under key unless guard reports the world moved since the
// response was rendered or the bucket is full. guard runs under the bucket
// mutex, after which no invalidation for the pinned state can be missed:
// events fire after the mutation's generation bump, so either guard sees
// the bump (reject) or the event's flush runs after this insert (delete).
func (c *ResponseCache) insert(key []byte, e *respEntry, guard func() bool) {
	b := &c.buckets[hashKey(key)&(cacheBuckets-1)]
	b.mu.Lock()
	defer b.mu.Unlock()
	if !guard() {
		c.rejected.Add(1)
		return
	}
	old := *b.m.Load()
	if _, ok := old[unsafeString(key)]; !ok && len(old) >= c.perBucketCap {
		c.rejected.Add(1)
		return
	}
	next := make(map[string]*respEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[string(key)] = e
	b.m.Store(&next)
	c.fills.Add(1)
}

// applyEvent translates one zone mutation event into the narrowest flush.
func (c *ResponseCache) applyEvent(z *zone.Zone, ev zone.Event) {
	switch ev.Scope {
	case zone.ScopeZone:
		c.flushWhere(func(key string, e *respEntry) bool {
			return e.origin == z.Origin
		})
	case zone.ScopeApex:
		c.flushWhere(func(key string, e *respEntry) bool {
			return e.apexDep && e.origin == z.Origin
		})
	default: // ScopeName
		// A mutation at or under a delegation cut invalidates every referral
		// the cut covers (NS set, DS proof, glue travel with each of them),
		// so widen the flush to the cut's whole subtree.
		target := ev.Name
		if cut, _ := z.DelegationFor(ev.Name); cut != "" {
			target = cut
		}
		c.flushWhere(func(key string, e *respEntry) bool {
			return e.origin == z.Origin && dnswire.IsSubdomain(keyQName(key), target)
		})
	}
}

// FlushSubtree removes every entry whose qname is at or below name,
// regardless of origin zone; used when a zone is installed or removed and
// previous renderings (including from an enclosing zone) may be stale.
func (c *ResponseCache) FlushSubtree(name string) {
	c.flushWhere(func(key string, e *respEntry) bool {
		return dnswire.IsSubdomain(keyQName(key), name)
	})
}

func (c *ResponseCache) flushWhere(match func(string, *respEntry) bool) {
	for i := range c.buckets {
		b := &c.buckets[i]
		b.mu.Lock()
		old := *b.m.Load()
		var doomed []string
		for k, e := range old {
			if match(k, e) {
				doomed = append(doomed, k)
			}
		}
		if len(doomed) > 0 {
			next := make(map[string]*respEntry, len(old)-len(doomed))
			for k, v := range old {
				next[k] = v
			}
			for _, k := range doomed {
				delete(next, k)
			}
			b.m.Store(&next)
			c.flushed.Add(uint64(len(doomed)))
		}
		b.mu.Unlock()
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Fills    uint64 `json:"fills"`
	Rejected uint64 `json:"rejected"`
	Flushed  uint64 `json:"flushed"`
	Entries  int    `json:"entries"`
}

// Stats snapshots the cache counters and current entry count.
func (c *ResponseCache) Stats() CacheStats {
	s := CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Fills:    c.fills.Load(),
		Rejected: c.rejected.Load(),
		Flushed:  c.flushed.Load(),
	}
	for i := range c.buckets {
		s.Entries += len(*c.buckets[i].m.Load())
	}
	return s
}
