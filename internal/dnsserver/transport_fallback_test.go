package dnsserver_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
)

// oversizedHandler answers every query with a TXT RRset far larger than the
// 512-byte classic-UDP payload, so the Server's UDP leg must truncate and
// the exchanger must fall back to TCP. corruptTCPID flips the response ID
// from the second call on — the TCP leg — to simulate a middlebox or buggy
// server mangling the stream.
type oversizedHandler struct {
	calls        atomic.Int32
	corruptTCPID bool
}

func (h *oversizedHandler) ServeDNS(q *dnswire.Message) *dnswire.Message {
	n := h.calls.Add(1)
	resp := q.Reply()
	resp.Authoritative = true
	long := strings.Repeat("y", 220)
	name := q.Questions[0].Name
	for i := 0; i < 4; i++ {
		resp.Answers = append(resp.Answers, dnswire.NewRR(name, 300, &dnswire.TXT{Strings: []string{long}}))
	}
	if h.corruptTCPID && n > 1 {
		resp.ID ^= 0x5a5a
	}
	return resp
}

// TestTruncationFallsBackToTCP drives the truncation path end to end over
// loopback sockets: the oversized UDP answer comes back TC=1, and the
// exchanger's TCP retry delivers the full RRset.
func TestTruncationFallsBackToTCP(t *testing.T) {
	h := &oversizedHandler{}
	srv := &dnsserver.Server{Handler: h}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(4242, "big.example", dnswire.TypeTXT)
	resp, err := ex.Exchange(context.Background(), srv.Addr(), q)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if resp.Truncated {
		t.Error("final response still truncated after TCP fallback")
	}
	if len(resp.Answers) != 4 {
		t.Errorf("answers after fallback: %d, want 4", len(resp.Answers))
	}
	if got := h.calls.Load(); got != 2 {
		t.Errorf("handler calls: %d, want 2 (UDP then TCP)", got)
	}
}

// TestTCPResponseIDMismatch corrupts the ID on the TCP leg only: the UDP
// answer truncates cleanly, the fallback connects, and the exchanger must
// reject the mangled response instead of returning it.
func TestTCPResponseIDMismatch(t *testing.T) {
	h := &oversizedHandler{corruptTCPID: true}
	srv := &dnsserver.Server{Handler: h}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ex := &dnsserver.NetExchanger{Timeout: 2 * time.Second}
	q := dnswire.NewQuery(4243, "big.example", dnswire.TypeTXT)
	_, err := ex.Exchange(context.Background(), srv.Addr(), q)
	if err == nil {
		t.Fatal("exchange accepted a TCP response with a corrupted ID")
	}
	if !strings.Contains(err.Error(), "ID mismatch") {
		t.Errorf("error = %v, want TCP response ID mismatch", err)
	}
	if got := h.calls.Load(); got != 2 {
		t.Errorf("handler calls: %d, want 2 (UDP then TCP)", got)
	}
}
