package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
)

// MemNet is an in-memory "network" of DNS servers keyed by address. It lets
// the ecosystem simulation host one logical server per DNS operator —
// tens of thousands of them — without consuming sockets, while exercising
// the same Handler code the real transport runs.
//
// With Strict set, Exchange still round-trips messages through Pack/Unpack,
// so wire-format bugs cannot hide behind the in-memory shortcut.
type MemNet struct {
	// Strict forces a full wire-format round trip on every exchange.
	Strict bool

	mu       sync.RWMutex
	handlers map[string]Handler

	queries atomic.Int64
}

// ErrNoRoute reports an exchange to an unregistered address. It is the
// same error value as exchange.ErrNoRoute, so errors.Is matches across
// both names.
//
// Deprecated: use exchange.ErrNoRoute.
var ErrNoRoute = exchange.ErrNoRoute

// NewMemNet creates an empty in-memory network.
func NewMemNet() *MemNet {
	return &MemNet{handlers: make(map[string]Handler)}
}

// Register binds a handler to an address, replacing any previous binding.
func (m *MemNet) Register(addr string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unregister removes the binding for addr.
func (m *MemNet) Unregister(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

// Lookup returns the handler bound to addr, or nil.
func (m *MemNet) Lookup(addr string) Handler {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.handlers[addr]
}

// Queries returns the number of exchanges performed, for scan accounting.
func (m *MemNet) Queries() int64 { return m.queries.Load() }

// Exchange implements Exchanger by direct dispatch to the registered
// handler.
func (m *MemNet) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := m.Lookup(server)
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, server)
	}
	m.queries.Add(1)
	if !m.Strict {
		return h.ServeDNS(q), nil
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	var decoded dnswire.Message
	if err := decoded.Unpack(wire); err != nil {
		return nil, err
	}
	resp := h.ServeDNS(&decoded)
	if resp == nil {
		return nil, errors.New("dnsserver: handler returned nil")
	}
	respWire, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	var out dnswire.Message
	if err := out.Unpack(respWire); err != nil {
		return nil, err
	}
	return &out, nil
}
