package dnsserver

import (
	"bytes"
	"encoding/binary"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// Wire-level serving: the raw-packet entry points the UDP worker loops
// drive. ServeWireFast is the zero-alloc cache-hit path (lazy parse → key
// → lock-free lookup → copy + patch ID/RD); ServeWireFull is the miss
// path (full parse → render → pack → guarded cache fill).

// WireScratch is per-worker reusable state for the wire paths. All slices
// grow once and are recycled; Message q is reused across full parses.
type WireScratch struct {
	name []byte
	key  []byte
	pack []byte
	out  []byte
	q    dnswire.Message
}

// NewWireScratch allocates scratch sized for typical authoritative traffic.
func NewWireScratch() *WireScratch {
	return &WireScratch{
		name: make([]byte, 0, 256),
		key:  make([]byte, 0, 272),
		pack: make([]byte, 0, 2048),
		out:  make([]byte, 0, 2048),
	}
}

// header flag bits in packed byte order: byte 2 carries QR..RD, byte 3
// carries RA/AD/CD and the RCode.
const (
	flagQRByte = 0x80
	flagAAByte = 0x04
	flagTCByte = 0x02
	flagRDByte = 0x01
)

// ServeWireFast attempts to answer the raw query pkt from the response
// cache, appending the reply to dst. It reports false (dst unchanged in
// content) when the packet is off the fast path or the cache misses, in
// which case the caller must take ServeWireFull. Steady-state hits do not
// allocate.
func (s *Sharded) ServeWireFast(dst, pkt []byte, sc *WireScratch) ([]byte, bool) {
	if s.cache == nil {
		return dst, false
	}
	v, nameBuf, err := dnswire.ParseQueryView(pkt, sc.name)
	sc.name = nameBuf
	if err != nil {
		return dst, false
	}
	edns := ednsNone
	if v.HasEDNS {
		if v.DNSSECOK {
			edns = ednsDO
		} else {
			edns = ednsPlain
		}
	}
	sc.key = respKey(sc.key, v.Name, v.Type, edns)
	e := s.cache.lookup(sc.key)
	if e == nil {
		return dst, false
	}
	if len(e.wire) > v.MaxPayload() {
		return appendTruncated(dst, &v, e), true
	}
	n := len(dst)
	dst = append(dst, e.wire...)
	binary.BigEndian.PutUint16(dst[n:], v.ID)
	if v.RecursionDesired {
		dst[n+2] |= flagRDByte
	}
	return dst, true
}

// appendTruncated renders the TC response for an oversize cached entry
// from scratch: header, the question, and — when the client sent EDNS —
// the responder OPT, byte-identical to what the slow path's
// Reply/Pack sequence produces (so cached and uncached truncations agree).
func appendTruncated(dst []byte, v *dnswire.QueryView, e *respEntry) []byte {
	dst = binary.BigEndian.AppendUint16(dst, v.ID)
	b2 := byte(flagQRByte) | e.wire[2]&flagAAByte | flagTCByte
	if v.RecursionDesired {
		b2 |= flagRDByte
	}
	dst = append(dst, b2, e.wire[3]&0x0f) // RA/AD/CD clear, RCode preserved
	ar := byte(0)
	if v.HasEDNS {
		ar = 1
	}
	dst = append(dst, 0, 1, 0, 0, 0, 0, 0, ar)
	dst = appendWireName(dst, v.Name)
	dst = binary.BigEndian.AppendUint16(dst, uint16(v.Type))
	dst = binary.BigEndian.AppendUint16(dst, uint16(v.Class))
	if v.HasEDNS {
		dst = append(dst, 0, 0, byte(dnswire.TypeOPT)) // root owner, type 41
		dst = binary.BigEndian.AppendUint16(dst, dnswire.ReplyUDPPayload)
		do := byte(0)
		if v.DNSSECOK {
			do = 0x80
		}
		dst = append(dst, 0, 0, do, 0, 0, 0) // TTL (ext-RCode/version/flags), RDLEN 0
	}
	return dst
}

// appendWireName encodes a canonical name (no trailing dot) as
// uncompressed wire labels.
func appendWireName(dst []byte, name []byte) []byte {
	for len(name) > 0 {
		i := bytes.IndexByte(name, '.')
		label := name
		if i >= 0 {
			label, name = name[:i], name[i+1:]
		} else {
			name = nil
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0)
}

// ServeWireFull serves a raw packet through the full parse/render path,
// appending the response to dst (which must be empty, so packing starts at
// message offset 0) and filling the cache when the response is cacheable.
// It returns nil for packets that must be dropped (malformed, unpackable
// response). udp enables payload-size truncation.
func (s *Sharded) ServeWireFull(dst, pkt []byte, sc *WireScratch, udp bool) []byte {
	q := &sc.q
	if err := q.Unpack(pkt); err != nil {
		return nil
	}
	// Pin the publish generation before consulting the zone set, and the
	// zone generation before rendering: the cache fill below is discarded
	// unless both are even and unmoved at insert time, which makes a
	// response rendered from mid-mutation or superseded state uncacheable.
	pg := s.pubGen.Load()
	resp := q.Reply()
	var z *zone.Zone
	var zg uint64
	if len(q.Questions) != 1 || q.OpCode != dnswire.OpCodeQuery {
		resp.RCode = dnswire.RCodeNotImplemented
	} else {
		qname := dnswire.CanonicalName(q.Questions[0].Name)
		if z = s.findZone(qname); z == nil {
			resp.RCode = dnswire.RCodeRefused
		} else {
			zg = z.Generation()
			answerInZone(resp, q, qname, z)
		}
	}
	wire, err := resp.AppendPack(sc.pack[:0])
	if err != nil {
		return nil
	}
	sc.pack = wire
	// Fill the cache. Only zone-derived INET responses are cacheable:
	// REFUSED/NOTIMP have no invalidation source, and non-INET classes
	// would collide with the INET key space.
	if s.cache != nil && z != nil && q.Questions[0].Class == dnswire.ClassINET {
		edns := ednsNone
		if e := q.EDNS(); e != nil {
			if e.DNSSECOK {
				edns = ednsDO
			} else {
				edns = ednsPlain
			}
		}
		sc.name = append(sc.name[:0], q.Questions[0].Name...)
		sc.key = respKey(sc.key, sc.name, q.Questions[0].Type, edns)
		norm := make([]byte, len(wire))
		copy(norm, wire)
		norm[0], norm[1] = 0, 0
		norm[2] &^= flagRDByte
		entry := &respEntry{
			wire:    norm,
			origin:  z.Origin,
			apexDep: respDependsOnApex(resp, z.Origin),
		}
		zz, zgPin, pgPin := z, zg, pg
		s.cache.insert(sc.key, entry, func() bool {
			return pgPin&1 == 0 && zgPin&1 == 0 &&
				s.pubGen.Load() == pgPin && zz.Generation() == zgPin
		})
	}
	if udp && len(wire) > q.MaxPayload() {
		tr := q.Reply()
		tr.RCode = resp.RCode
		tr.Truncated = true
		tr.Authoritative = resp.Authoritative
		out, err := tr.AppendPack(dst)
		if err != nil {
			return nil
		}
		return out
	}
	return append(dst, wire...)
}

// respDependsOnApex reports whether the response embeds records owned by
// the zone apex (the SOA in negative answers, apex RRset answers). Such
// entries — and only such entries — are flushed by apex-scoped events like
// BumpSerial.
func respDependsOnApex(resp *dnswire.Message, origin string) bool {
	for _, sec := range [][]*dnswire.RR{resp.Answers, resp.Authority, resp.Additional} {
		for _, rr := range sec {
			if rr.Type != dnswire.TypeOPT && rr.Name == origin {
				return true
			}
		}
	}
	return false
}
