package dnsserver

import (
	"strings"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// Sharded is an authoritative handler built for the serving hot path: zone
// lookups are lock-free reads on shard-local snapshots (each shard's
// origin→zone map sits behind an atomic pointer, replaced copy-on-write on
// update — the same publish discipline apiserv uses for its world), and an
// integrated ResponseCache serves repeat questions as pre-packed wire
// bytes without touching the zone at all.
//
// Installing a zone subscribes the cache to the zone's mutation events
// before the zone becomes visible to queries, so every response the cache
// ever holds is covered by the invalidation stream. Zone-set changes
// themselves are guarded by a publish seqlock (pubGen): fills pin it
// alongside the zone generation, so a fill racing AddZone/RemoveZone can
// never strand a response rendered from the superseded zone set.
type Sharded struct {
	shards    []zoneShard
	shardMask uint64
	cache     *ResponseCache

	// pubGen is odd while a zone-set publish (and its cache flush) is in
	// progress; fills pinned across a publish are rejected.
	pubGen atomic.Uint64

	mu         sync.Mutex // serializes publishes and subscription bookkeeping
	subscribed map[*zone.Zone]bool
}

type zoneShard struct {
	zones atomic.Pointer[map[string]*zone.Zone]
}

// ShardedConfig tunes a Sharded handler; the zero value is production-ready.
type ShardedConfig struct {
	// ZoneShards is rounded up to a power of two (default 16).
	ZoneShards int
	// CacheEntries bounds the response cache (0 = default 256k entries,
	// negative = disable caching entirely).
	CacheEntries int
}

// NewSharded creates an empty sharded handler.
func NewSharded(cfg ShardedConfig) *Sharded {
	n := cfg.ZoneShards
	if n <= 0 {
		n = 16
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Sharded{
		shards:     make([]zoneShard, pow),
		shardMask:  uint64(pow - 1),
		subscribed: make(map[*zone.Zone]bool),
	}
	if cfg.CacheEntries >= 0 {
		s.cache = NewResponseCache(cfg.CacheEntries)
	}
	for i := range s.shards {
		empty := make(map[string]*zone.Zone)
		s.shards[i].zones.Store(&empty)
	}
	return s
}

// AddZone installs (or replaces) a zone and wires its mutation events into
// the response cache. Subscription happens before the zone becomes visible
// so no cached response can predate its invalidation coverage.
func (s *Sharded) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil && !s.subscribed[z] {
		s.subscribed[z] = true
		z.OnEvent(func(ev zone.Event) { s.cache.applyEvent(z, ev) })
	}
	s.pubGen.Add(1)
	s.publishLocked(z.Origin, z)
	if s.cache != nil {
		// Stale renderings for this subtree may exist from an enclosing
		// zone (REFUSED never caches, but a parent zone may have answered
		// below its cut before the child zone arrived).
		s.cache.FlushSubtree(z.Origin)
	}
	s.pubGen.Add(1)
}

// RemoveZone drops the zone rooted at origin and flushes its subtree.
func (s *Sharded) RemoveZone(origin string) {
	origin = dnswire.CanonicalName(origin)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pubGen.Add(1)
	s.publishLocked(origin, nil)
	if s.cache != nil {
		s.cache.FlushSubtree(origin)
	}
	s.pubGen.Add(1)
}

// publishLocked swaps one shard's map copy-on-write; z == nil deletes.
func (s *Sharded) publishLocked(origin string, z *zone.Zone) {
	sh := &s.shards[hashString(origin)&s.shardMask]
	old := *sh.zones.Load()
	next := make(map[string]*zone.Zone, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if z == nil {
		delete(next, origin)
	} else {
		next[origin] = z
	}
	sh.zones.Store(&next)
}

// Zone returns the hosted zone with the given origin, or nil.
func (s *Sharded) Zone(origin string) *zone.Zone {
	origin = dnswire.CanonicalName(origin)
	m := *s.shards[hashString(origin)&s.shardMask].zones.Load()
	return m[origin]
}

// ZoneCount returns the number of hosted zones.
func (s *Sharded) ZoneCount() int {
	n := 0
	for i := range s.shards {
		n += len(*s.shards[i].zones.Load())
	}
	return n
}

// CacheStats snapshots the response-cache counters (zero if disabled).
func (s *Sharded) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// findZone returns the most specific zone containing qname. Lock-free.
func (s *Sharded) findZone(qname string) *zone.Zone {
	cur := qname
	for {
		m := *s.shards[hashString(cur)&s.shardMask].zones.Load()
		if z, ok := m[cur]; ok {
			return z
		}
		if cur == "" {
			return nil
		}
		if i := strings.IndexByte(cur, '.'); i >= 0 {
			cur = cur[i+1:]
		} else {
			cur = ""
		}
	}
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ServeDNS implements Handler with the same answering semantics as
// Authoritative, so Sharded drops into MemNet and the Message-level tests
// unchanged.
func (s *Sharded) ServeDNS(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	if len(q.Questions) != 1 || q.OpCode != dnswire.OpCodeQuery {
		resp.RCode = dnswire.RCodeNotImplemented
		return resp
	}
	qname := dnswire.CanonicalName(q.Questions[0].Name)
	z := s.findZone(qname)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	answerInZone(resp, q, qname, z)
	return resp
}
