package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// AXFR zone transfer (RFC 5936). The paper's dataset is built from TLD zone
// files obtained under agreement with the zone operators; AXFR is the
// protocol that moves them. The server side streams a zone SOA-first and
// SOA-last over TCP; the client side collects a full zone and hands the
// scan engine its target list.

// TypeAXFR is the AXFR query type (252).
const TypeAXFR dnswire.Type = 252

// ErrAXFRRefused reports a denied or malformed transfer.
var ErrAXFRRefused = errors.New("dnsserver: AXFR refused")

// AXFRAllowed is the policy hook deciding which zones may be transferred.
// TLD zone files are access-controlled in reality (the paper's footnote 2
// notes the .com/.net/.org/.nl files are under agreement while .se is open
// data); the default denies everything.
type AXFRAllowed func(zoneOrigin string) bool

// EnableAXFR turns on zone transfers for this authoritative server, gated
// by the policy.
func (a *Authoritative) EnableAXFR(policy AXFRAllowed) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.axfr = policy
}

// axfrMessages builds the transfer message sequence for a zone: the SOA,
// every other record, and the SOA again, split into messages that respect
// TCP message size limits.
func axfrMessages(q *dnswire.Message, z *zone.Zone) ([]*dnswire.Message, error) {
	soa := z.SOA()
	if soa == nil {
		return nil, fmt.Errorf("%w: zone %q has no SOA", ErrAXFRRefused, z.Origin)
	}
	var rrs []*dnswire.RR
	rrs = append(rrs, soa)
	z.RRSets(func(name string, t dnswire.Type, set []*dnswire.RR) {
		for _, rr := range set {
			if rr == soa || (name == z.Origin && t == dnswire.TypeSOA) {
				continue
			}
			rrs = append(rrs, rr)
		}
	})
	rrs = append(rrs, soa)

	// Chunk into messages of at most ~16k wire octets each.
	const chunkBudget = 16 * 1024
	var msgs []*dnswire.Message
	cur := q.Reply()
	cur.Authoritative = true
	size := 0
	flush := func() {
		if len(cur.Answers) > 0 {
			msgs = append(msgs, cur)
			cur = q.Reply()
			cur.Authoritative = true
			size = 0
		}
	}
	for _, rr := range rrs {
		wire, err := rr.CanonicalWire()
		if err != nil {
			return nil, err
		}
		if size+len(wire) > chunkBudget {
			flush()
		}
		cur.Answers = append(cur.Answers, rr)
		size += len(wire)
	}
	flush()
	return msgs, nil
}

// serveAXFR handles an AXFR query on an established TCP connection,
// returning true if it consumed the query.
func (s *Server) serveAXFR(conn net.Conn, q *dnswire.Message) bool {
	if len(q.Questions) != 1 || q.Questions[0].Type != TypeAXFR {
		return false
	}
	auth, ok := s.Handler.(*Authoritative)
	refuse := func() {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeRefused
		if out, err := resp.Pack(); err == nil {
			writeTCPMessage(conn, out)
		}
	}
	if !ok {
		refuse()
		return true
	}
	origin := dnswire.CanonicalName(q.Questions[0].Name)
	auth.mu.RLock()
	z := auth.zones[origin]
	policy := auth.axfr
	auth.mu.RUnlock()
	if z == nil || policy == nil || !policy(origin) {
		refuse()
		return true
	}
	msgs, err := axfrMessages(q, z)
	if err != nil {
		refuse()
		return true
	}
	for _, m := range msgs {
		out, err := m.Pack()
		if err != nil {
			return true
		}
		if err := writeTCPMessage(conn, out); err != nil {
			return true
		}
	}
	return true
}

// AXFRClient pulls whole zones over TCP.
type AXFRClient struct {
	// Timeout bounds the whole transfer (default 30s).
	Timeout time.Duration
}

// Transfer requests the zone rooted at origin from server and rebuilds it.
func (c *AXFRClient) Transfer(ctx context.Context, server, origin string) (*zone.Zone, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)

	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), origin, TypeAXFR)
	out, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, out); err != nil {
		return nil, err
	}

	z := zone.New(origin)
	soaSeen := 0
	for soaSeen < 2 {
		raw, err := readTCPMessage(conn)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: AXFR read: %w", err)
		}
		var m dnswire.Message
		if err := m.Unpack(raw); err != nil {
			return nil, err
		}
		if m.RCode != dnswire.RCodeSuccess {
			return nil, fmt.Errorf("%w: %s", ErrAXFRRefused, m.RCode)
		}
		if len(m.Answers) == 0 {
			return nil, fmt.Errorf("%w: empty transfer message", ErrAXFRRefused)
		}
		for _, rr := range m.Answers {
			if rr.Type == dnswire.TypeSOA && rr.Name == z.Origin {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
	return z, nil
}
