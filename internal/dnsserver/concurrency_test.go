package dnsserver_test

import (
	"sync"
	"testing"

	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// TestConcurrentQueriesDuringResigning hammers an authoritative server with
// queries while the zone is being re-signed — the scanner-vs-registrar
// interleaving the simulation produces constantly. Run under -race this
// guards the Zone and Authoritative locking.
func TestConcurrentQueriesDuringResigning(t *testing.T) {
	h := newHierarchy(t)
	child, signer, err := h.AddDomain("busy.com", "ns1.busy-op.net", dnstest.Full)
	if err != nil {
		t.Fatal(err)
	}
	srv := h.OperatorServer("ns1.busy-op.net")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := dnswire.NewQuery(uint16(id*1000+i), "www.busy.com", dnswire.TypeA)
				q.SetEDNS(4096, true)
				resp := srv.ServeDNS(q)
				if resp == nil || resp.RCode != dnswire.RCodeSuccess {
					t.Errorf("worker %d: bad response %v", id, resp)
					return
				}
				i++
			}
		}(w)
	}
	// Re-sign the zone repeatedly while queries fly.
	for i := 0; i < 25; i++ {
		if err := signer.Sign(child); err != nil {
			t.Errorf("re-sign %d: %v", i, err)
			break
		}
	}
	// And rotate keys entirely.
	newSigner, err := zone.NewSigner(dnswire.AlgED25519, h.Now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := newSigner.Sign(child); err != nil {
			t.Errorf("rotate %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
