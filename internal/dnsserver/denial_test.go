package dnsserver_test

import (
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

// buildNSECDomain creates a signed domain with an NSEC chain on the
// hierarchy.
func buildNSECDomain(t *testing.T, h *dnstest.Hierarchy) (*zone.Zone, *zone.Signer) {
	t.Helper()
	child, _, err := h.AddDomain("denial.com", "ns1.denial-op.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := zone.NewSigner(dnswire.AlgED25519, h.Now)
	if err != nil {
		t.Fatal(err)
	}
	signer.AddNSEC = true
	if err := signer.Sign(child); err != nil {
		t.Fatal(err)
	}
	return child, signer
}

func TestNXDomainCarriesCoveringNSEC(t *testing.T) {
	h := newHierarchy(t)
	child, signer := buildNSECDomain(t, h)
	_ = child
	srv := h.OperatorServer("ns1.denial-op.net")

	resp := query(t, srv, "ghost.denial.com", dnswire.TypeA, true)
	if resp.RCode != dnswire.RCodeNameError {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	proofs := dnssec.ExtractDenialProofs(resp.Authority)
	if len(proofs) == 0 {
		t.Fatal("no NSEC proof in NXDOMAIN response")
	}
	keys := []*dnswire.DNSKEY{signer.ZSK.DNSKEY(), signer.KSK.DNSKEY()}
	now := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := dnssec.VerifyNameDenial("ghost.denial.com", proofs, keys, now); err != nil {
		t.Errorf("denial does not verify: %v", err)
	}
	// Without DO, no NSEC is included.
	resp = query(t, srv, "ghost.denial.com", dnswire.TypeA, false)
	if len(dnssec.ExtractDenialProofs(resp.Authority)) != 0 {
		t.Error("NSEC leaked without DO bit")
	}
}

func TestNodataCarriesNSECAtOwner(t *testing.T) {
	h := newHierarchy(t)
	_, signer := buildNSECDomain(t, h)
	srv := h.OperatorServer("ns1.denial-op.net")

	// www.denial.com exists with A only; MX is NODATA.
	resp := query(t, srv, "www.denial.com", dnswire.TypeMX, true)
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 0 {
		t.Fatalf("NODATA expected: rcode=%v answers=%d", resp.RCode, len(resp.Answers))
	}
	proofs := dnssec.ExtractDenialProofs(resp.Authority)
	keys := []*dnswire.DNSKEY{signer.ZSK.DNSKEY(), signer.KSK.DNSKEY()}
	now := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := dnssec.VerifyTypeDenial("www.denial.com", dnswire.TypeMX, proofs, keys, now); err != nil {
		t.Errorf("type denial does not verify: %v", err)
	}
}

func TestNSEC3DenialEndToEnd(t *testing.T) {
	h := newHierarchy(t)
	child, _, err := h.AddDomain("hashed.com", "ns1.hashed-op.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := zone.NewSigner(dnswire.AlgED25519, h.Now)
	if err != nil {
		t.Fatal(err)
	}
	signer.NSEC3 = &dnswire.NSEC3PARAM{
		HashAlg: dnswire.NSEC3HashSHA1, Iterations: 5, Salt: []byte{0xca, 0xfe},
	}
	if err := signer.Sign(child); err != nil {
		t.Fatal(err)
	}
	srv := h.OperatorServer("ns1.hashed-op.net")
	keys := []*dnswire.DNSKEY{signer.ZSK.DNSKEY(), signer.KSK.DNSKEY()}
	now := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

	// The apex advertises the NSEC3 parameters.
	resp := query(t, srv, "hashed.com", dnswire.TypeNSEC3PARAM, true)
	if len(resp.Answers) == 0 {
		t.Fatal("NSEC3PARAM not served")
	}
	params := resp.Answers[0].Data.(*dnswire.NSEC3PARAM)

	// NXDOMAIN carries a verifiable hashed denial.
	resp = query(t, srv, "nothere.hashed.com", dnswire.TypeA, true)
	if resp.RCode != dnswire.RCodeNameError {
		t.Fatalf("rcode = %v", resp.RCode)
	}
	proofs := dnssec.ExtractNSEC3Proofs(resp.Authority)
	if len(proofs) == 0 {
		t.Fatal("no NSEC3 records in NXDOMAIN response")
	}
	if err := dnssec.VerifyNameDenialNSEC3("nothere.hashed.com", "hashed.com", params, proofs, keys, now); err != nil {
		t.Errorf("NSEC3 denial does not verify: %v", err)
	}
	// A deeper nonexistent name verifies through the closest-encloser walk.
	resp = query(t, srv, "a.b.hashed.com", dnswire.TypeA, true)
	proofs = dnssec.ExtractNSEC3Proofs(resp.Authority)
	if err := dnssec.VerifyNameDenialNSEC3("a.b.hashed.com", "hashed.com", params, proofs, keys, now); err != nil {
		t.Errorf("deep NSEC3 denial does not verify: %v", err)
	}

	// NODATA: www exists with A only; TXT query yields a matching NSEC3.
	resp = query(t, srv, "www.hashed.com", dnswire.TypeTXT, true)
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 0 {
		t.Fatalf("NODATA expected: %v / %d answers", resp.RCode, len(resp.Answers))
	}
	proofs = dnssec.ExtractNSEC3Proofs(resp.Authority)
	if err := dnssec.VerifyTypeDenialNSEC3("www.hashed.com", dnswire.TypeTXT, params, proofs, keys, now); err != nil {
		t.Errorf("NSEC3 type denial does not verify: %v", err)
	}
	// But a forged denial of the existing A RRset must fail.
	if err := dnssec.VerifyTypeDenialNSEC3("www.hashed.com", dnswire.TypeA, params, proofs, keys, now); err == nil {
		t.Error("denied an existing type via NSEC3")
	}
	// The zone enumerates only hashes: no plain NSEC records anywhere.
	if nsec := child.Lookup("hashed.com", dnswire.TypeNSEC); len(nsec) != 0 {
		t.Error("NSEC records present in an NSEC3 zone")
	}
}
