package dnsserver_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
)

// fuzzHandler builds one Sharded handler per process for the fuzz target.
var fuzzHandler = sync.OnceValue(func() *dnsserver.Sharded {
	h, err := dnstest.NewHierarchy(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), "com")
	if err != nil {
		panic(err)
	}
	if _, _, err := h.AddDomain("example.com", "ns1.operator.net", dnstest.Full); err != nil {
		panic(err)
	}
	s := dnsserver.NewSharded(dnsserver.ShardedConfig{})
	s.AddZone(h.TLDZone("com"))
	return s
})

// FuzzServeDNS feeds raw packets through both wire entry points and pins
// three properties: nothing panics; a lazy-parse success implies a full
// Unpack success with the identical (qname, qtype, class, DO) view (the
// cache-key soundness contract); and when the fast path answers from cache
// it returns exactly the bytes the full path renders.
func FuzzServeDNS(f *testing.F) {
	seed := func(name string, t dnswire.Type, edns int, rd bool) {
		q := dnswire.NewQuery(0x7e57, name, t)
		q.RecursionDesired = rd
		switch edns {
		case 1:
			q.SetEDNS(1232, false)
		case 2:
			q.SetEDNS(512, true)
		}
		if wire, err := q.Pack(); err == nil {
			f.Add(wire)
		}
	}
	seed("example.com", dnswire.TypeNS, 0, false)
	seed("example.com", dnswire.TypeDS, 2, true)
	seed("www.example.com", dnswire.TypeA, 1, false)
	seed("nonexistent.com", dnswire.TypeA, 2, false)
	seed("com", dnswire.TypeANY, 2, true)
	seed("com", dnswire.TypeSOA, 0, true)
	seed("", dnswire.TypeNS, 0, false)
	f.Add([]byte{})
	f.Add([]byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, pkt []byte) {
		v, _, lazyErr := dnswire.ParseQueryView(pkt, nil)
		var m dnswire.Message
		fullErr := m.Unpack(pkt)
		if lazyErr == nil {
			if fullErr != nil {
				t.Fatalf("lazy parse accepted what Unpack rejects: %v", fullErr)
			}
			if len(m.Questions) != 1 {
				t.Fatalf("lazy-accepted packet has %d questions", len(m.Questions))
			}
			q := m.Questions[0]
			if string(v.Name) != dnswire.CanonicalName(q.Name) ||
				v.Type != q.Type || v.Class != q.Class {
				t.Fatalf("lazy view (%q,%v,%v) != full view (%q,%v,%v)",
					v.Name, v.Type, v.Class, q.Name, q.Type, q.Class)
			}
			e := m.EDNS()
			if v.HasEDNS != (e != nil) || (e != nil && v.DNSSECOK != e.DNSSECOK) {
				t.Fatalf("lazy EDNS view diverges: %+v vs %+v", v, e)
			}
			if v.ID != m.ID || v.RecursionDesired != m.RecursionDesired {
				t.Fatalf("lazy header view diverges")
			}
		}

		s := fuzzHandler()
		sc := dnsserver.NewWireScratch()
		full := s.ServeWireFull(nil, pkt, sc, true)
		if full != nil {
			var resp dnswire.Message
			if err := resp.Unpack(full); err != nil {
				t.Fatalf("emitted unparseable response: %v", err)
			}
		}
		fast, hit := s.ServeWireFast(nil, pkt, sc)
		if hit {
			if full == nil {
				t.Fatal("fast path answered a packet the full path drops")
			}
			if !bytes.Equal(fast, full) {
				t.Fatalf("cached response diverges from rendered:\nfast: %x\nfull: %x", fast, full)
			}
		}
	})
}
