package dnswire

import (
	"encoding/base64"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{
			ID: 0x1234, Response: true, Authoritative: true,
			RecursionDesired: true, AuthenticData: true, RCode: RCodeSuccess,
		},
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassINET}},
		Answers: []*RR{
			NewRR("example.com", 300, &A{Addr: netip.MustParseAddr("192.0.2.1")}),
			NewRR("example.com", 300, &A{Addr: netip.MustParseAddr("192.0.2.2")}),
		},
		Authority: []*RR{
			NewRR("example.com", 3600, &NS{Host: "ns1.example.com"}),
			NewRR("example.com", 3600, &NS{Host: "ns2.example.com"}),
		},
		Additional: []*RR{
			NewRR("ns1.example.com", 3600, &AAAA{Addr: netip.MustParseAddr("2001:db8::1")}),
		},
	}
	b := mustPack(t, m)
	var got Message
	if err := got.Unpack(b); err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(got.Header, m.Header) {
		t.Errorf("header mismatch:\n got %+v\nwant %+v", got.Header, m.Header)
	}
	if !reflect.DeepEqual(got.Questions, m.Questions) {
		t.Errorf("questions mismatch: %+v", got.Questions)
	}
	if len(got.Answers) != 2 || len(got.Authority) != 2 || len(got.Additional) != 1 {
		t.Fatalf("section counts: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	for i := range m.Answers {
		if !reflect.DeepEqual(got.Answers[i], m.Answers[i]) {
			t.Errorf("answer %d: got %v want %v", i, got.Answers[i], m.Answers[i])
		}
	}
}

func TestMessageCompressionSavesSpace(t *testing.T) {
	m := &Message{
		Questions: []Question{{Name: "a.very.long.domain.example.com", Type: TypeNS, Class: ClassINET}},
	}
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, NewRR("a.very.long.domain.example.com", 60,
			&TXT{Strings: []string{"x"}}))
	}
	b := mustPack(t, m)
	// Each repeated owner should cost 2 octets, not 32.
	if len(b) > 12+36+10*(2+10+4) {
		t.Errorf("compression ineffective: %d octets", len(b))
	}
	var got Message
	if err := got.Unpack(b); err != nil {
		t.Fatal(err)
	}
	if got.Answers[9].Name != "a.very.long.domain.example.com" {
		t.Errorf("decompressed name: %q", got.Answers[9].Name)
	}
}

func allRDataSamples() []RData {
	key, _ := base64.StdEncoding.DecodeString("AQPSKmynfzW4kyBvkqbu")
	return []RData{
		&A{Addr: netip.MustParseAddr("203.0.113.7")},
		&AAAA{Addr: netip.MustParseAddr("2001:db8::7")},
		&NS{Host: "ns1.registrar.example"},
		&CNAME{Target: "canonical.example"},
		&PTR{Target: "host.example"},
		&MX{Pref: 10, Host: "mx.example"},
		&TXT{Strings: []string{"v=spf1 -all", "second"}},
		&SOA{MName: "ns1.example", RName: "hostmaster.example",
			Serial: 2016123100, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 3600},
		&DNSKEY{Flags: FlagsKSK, Protocol: 3, Algorithm: AlgRSASHA256, PublicKey: key},
		&CDNSKEY{DNSKEY: DNSKEY{Flags: FlagsZSK, Protocol: 3, Algorithm: AlgECDSAP256SHA256, PublicKey: key}},
		&RRSIG{TypeCovered: TypeA, Algorithm: AlgRSASHA256, Labels: 2,
			OriginalTTL: 300, Expiration: 1483142400, Inception: 1480464000,
			KeyTag: 60485, SignerName: "example.com", Signature: key},
		&DS{KeyTag: 60485, Algorithm: AlgRSASHA256, DigestType: DigestSHA256,
			Digest: []byte{0x2b, 0xb1, 0x83, 0xaf}},
		&CDS{DS: DS{KeyTag: 1, Algorithm: AlgDelete, DigestType: 0, Digest: []byte{0}}},
		&NSEC{NextName: "next.example.com", Types: []Type{TypeA, TypeNS, TypeRRSIG, TypeNSEC, TypeDNSKEY}},
		&NSEC3{HashAlg: NSEC3HashSHA1, Flags: NSEC3FlagOptOut, Iterations: 12,
			Salt: []byte{0xaa, 0xbb, 0xcc, 0xdd}, NextHashed: bytes20(),
			Types: []Type{TypeA, TypeRRSIG}},
		&NSEC3PARAM{HashAlg: NSEC3HashSHA1, Iterations: 12, Salt: []byte{0xaa, 0xbb}},
		&Generic{T: Type(9999), Data: []byte{1, 2, 3}},
	}
}

// bytes20 returns a deterministic 20-octet hash stand-in.
func bytes20() []byte {
	out := make([]byte, 20)
	for i := range out {
		out[i] = byte(i * 11)
	}
	return out
}

func TestRDataRoundTrip(t *testing.T) {
	for _, rd := range allRDataSamples() {
		rr := NewRR("owner.example.com", 42, rd)
		m := &Message{Answers: []*RR{rr}}
		b := mustPack(t, m)
		var got Message
		if err := got.Unpack(b); err != nil {
			t.Fatalf("%T: unpack: %v", rd, err)
		}
		if len(got.Answers) != 1 {
			t.Fatalf("%T: no answer decoded", rd)
		}
		if !reflect.DeepEqual(got.Answers[0].Data, rd) {
			t.Errorf("%T round trip:\n got %#v\nwant %#v", rd, got.Answers[0].Data, rd)
		}
		if got.Answers[0].Data.String() != rd.String() {
			t.Errorf("%T String mismatch: %q vs %q", rd, got.Answers[0].Data.String(), rd.String())
		}
	}
}

func TestKeyTagHandComputed(t *testing.T) {
	// RFC 4034 Appendix B: sum the RDATA as big-endian 16-bit words (odd
	// trailing octet shifted left 8), then fold the carries once.
	//
	// Wire form here is 01 01 | 03 | 08 | 01 02 03:
	//   words 0x0101 + 0x0308 + 0x0102 + 0x0300 = 0x080B = 2059, no carries.
	dk := &DNSKEY{Flags: 0x0101, Protocol: 3, Algorithm: 8, PublicKey: []byte{1, 2, 3}}
	if tag := dk.KeyTag(); tag != 2059 {
		t.Errorf("KeyTag = %d, want 2059", tag)
	}
	// Carry folding: words 0xFFFF * 3 = 0x2FFFD; fold: 0xFFFD + 0x2 = 0xFFFF.
	dk2 := &DNSKEY{Flags: 0xFFFF, Protocol: 0xFF, Algorithm: 0xFF, PublicKey: []byte{0xFF, 0xFF}}
	if tag := dk2.KeyTag(); tag != 0xFFFF {
		t.Errorf("KeyTag carry fold = %#x, want 0xFFFF", tag)
	}
	// An independent straightforward implementation over a pseudo-random key
	// must agree with the production one.
	pk := make([]byte, 129) // odd length on purpose
	for i := range pk {
		pk[i] = byte(i*37 + 11)
	}
	dk3 := &DNSKEY{Flags: FlagsKSK, Protocol: 3, Algorithm: AlgRSASHA256, PublicKey: pk}
	wire, _ := dk3.appendRData(nil)
	var ref uint32
	for i := 0; i+1 < len(wire); i += 2 {
		ref += uint32(wire[i])<<8 | uint32(wire[i+1])
	}
	if len(wire)%2 == 1 {
		ref += uint32(wire[len(wire)-1]) << 8
	}
	ref += ref >> 16 & 0xFFFF
	if got := dk3.KeyTag(); got != uint16(ref) {
		t.Errorf("KeyTag = %d, reference = %d", got, uint16(ref))
	}
}

func TestEDNS(t *testing.T) {
	q := NewQuery(1, "example.com", TypeDNSKEY)
	if q.DNSSECOK() {
		t.Error("DO set on plain query")
	}
	if q.MaxPayload() != 512 {
		t.Errorf("MaxPayload = %d", q.MaxPayload())
	}
	q.SetEDNS(4096, true)
	if !q.DNSSECOK() || q.MaxPayload() != 4096 {
		t.Errorf("EDNS not applied: DO=%v size=%d", q.DNSSECOK(), q.MaxPayload())
	}
	// Survives a pack/unpack cycle.
	b := mustPack(t, q)
	var got Message
	if err := got.Unpack(b); err != nil {
		t.Fatal(err)
	}
	if !got.DNSSECOK() || got.MaxPayload() != 4096 {
		t.Error("EDNS lost in round trip")
	}
	// SetEDNS replaces rather than duplicates.
	got.SetEDNS(1232, false)
	nOPT := 0
	for _, rr := range got.Additional {
		if rr.Type == TypeOPT {
			nOPT++
		}
	}
	if nOPT != 1 {
		t.Errorf("%d OPT records after SetEDNS twice", nOPT)
	}
	if got.DNSSECOK() {
		t.Error("DO bit should be cleared")
	}
}

func TestReplyMirrorsEDNS(t *testing.T) {
	q := NewQuery(7, "example.com", TypeA)
	q.SetEDNS(1232, true)
	r := q.Reply()
	if r.ID != 7 || !r.Response {
		t.Error("Reply header wrong")
	}
	if !r.DNSSECOK() {
		t.Error("Reply should mirror DO bit")
	}
	if len(r.Questions) != 1 || r.Questions[0].Name != "example.com" {
		t.Error("Reply should carry the question")
	}
}

func TestTypeBitmapRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		seen := map[Type]bool{}
		var types []Type
		for _, v := range raw {
			tt := Type(v)
			if !seen[tt] {
				seen[tt] = true
				types = append(types, tt)
			}
		}
		buf, err := appendTypeBitmap(nil, types)
		if err != nil {
			return false
		}
		got, err := parseTypeBitmap(buf)
		if err != nil {
			return false
		}
		if len(got) != len(types) {
			return false
		}
		for _, tt := range got {
			if !seen[tt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnpackFailureInjection(t *testing.T) {
	m := &Message{
		Questions: []Question{{Name: "example.com", Type: TypeA, Class: ClassINET}},
		Answers:   []*RR{NewRR("example.com", 60, &A{Addr: netip.MustParseAddr("192.0.2.1")})},
	}
	good := mustPack(t, m)
	// Every strict prefix must fail to unpack, never panic.
	for i := 0; i < len(good); i++ {
		var got Message
		if err := got.Unpack(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage must be rejected.
	var got Message
	if err := got.Unpack(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestUnpackRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(200))
		r.Read(b)
		var m Message
		_ = m.Unpack(b) // must not panic
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	samples := allRDataSamples()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{ID: uint16(r.Intn(1 << 16)), Response: r.Intn(2) == 0}}
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			name := randomName(r)
			m.Answers = append(m.Answers, NewRR(name, uint32(r.Intn(86400)), samples[r.Intn(len(samples))]))
		}
		b, err := m.Pack()
		if err != nil {
			return false
		}
		var got Message
		if err := got.Unpack(b); err != nil {
			return false
		}
		if len(got.Answers) != len(m.Answers) {
			return false
		}
		for i := range m.Answers {
			if !reflect.DeepEqual(got.Answers[i], m.Answers[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTypeAndClassStrings(t *testing.T) {
	if TypeDNSKEY.String() != "DNSKEY" || Type(999).String() != "TYPE999" {
		t.Error("Type.String")
	}
	if got, ok := TypeFromString("CDNSKEY"); !ok || got != TypeCDNSKEY {
		t.Error("TypeFromString mnemonic")
	}
	if got, ok := TypeFromString("TYPE999"); !ok || got != Type(999) {
		t.Error("TypeFromString TYPEnnn")
	}
	if _, ok := TypeFromString("NOPE"); ok {
		t.Error("TypeFromString accepted junk")
	}
	if ClassINET.String() != "IN" {
		t.Error("Class.String")
	}
	if RCodeNameError.String() != "NXDOMAIN" {
		t.Error("RCode.String")
	}
}

func TestUnpackMutatedMessagesNeverPanic(t *testing.T) {
	// Take a valid packed message and flip bits everywhere: unpack must
	// never panic and must either fail cleanly or produce a decodable
	// message.
	m := &Message{
		Questions: []Question{{Name: "www.example.com", Type: TypeDNSKEY, Class: ClassINET}},
	}
	for _, rd := range allRDataSamples() {
		m.Answers = append(m.Answers, NewRR("www.example.com", 300, rd))
	}
	good := mustPack(t, m)
	for i := 0; i < len(good); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			mutated := append([]byte(nil), good...)
			mutated[i] ^= bit
			var got Message
			_ = got.Unpack(mutated) // must not panic
		}
	}
}
