package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Header is the fixed 12-octet DNS message header (RFC 1035 section 4.1.1)
// with the AD and CD bits of RFC 4035.
type Header struct {
	ID                 uint16
	Response           bool // QR
	OpCode             OpCode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticData      bool // AD
	CheckingDisabled   bool // CD
	RCode              RCode
}

func (h *Header) pack(buf []byte, counts [4]uint16) []byte {
	buf = binary.BigEndian.AppendUint16(buf, h.ID)
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.OpCode&0xf) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	if h.AuthenticData {
		flags |= 1 << 5
	}
	if h.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(h.RCode & 0xf)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	for _, c := range counts {
		buf = binary.BigEndian.AppendUint16(buf, c)
	}
	return buf
}

func (h *Header) unpack(b []byte) (counts [4]uint16, err error) {
	if len(b) < 12 {
		return counts, ErrTruncatedMessage
	}
	h.ID = binary.BigEndian.Uint16(b)
	flags := binary.BigEndian.Uint16(b[2:])
	h.Response = flags&(1<<15) != 0
	h.OpCode = OpCode(flags >> 11 & 0xf)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.AuthenticData = flags&(1<<5) != 0
	h.CheckingDisabled = flags&(1<<4) != 0
	h.RCode = RCode(flags & 0xf)
	for i := range counts {
		counts[i] = binary.BigEndian.Uint16(b[4+2*i:])
	}
	return counts, nil
}

// Question is a query name/type/class triple.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", presentName(q.Name), q.Class, q.Type)
}

// RR is one resource record: shared header plus typed RDATA.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

// NewRR builds an RR whose type code is taken from the payload.
func NewRR(name string, ttl uint32, data RData) *RR {
	return &RR{Name: CanonicalName(name), Type: data.Type(), Class: ClassINET, TTL: ttl, Data: data}
}

// String renders the record in zone-file form.
func (rr *RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		presentName(rr.Name), rr.TTL, rr.Class, rr.Type, rr.Data.String())
}

// pack appends the full record. Owner names may be compressed; RDATA never
// is (see RData).
func (rr *RR) pack(buf []byte, cmp *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, cmp); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	if buf, err = rr.Data.appendRData(buf); err != nil {
		return buf, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xffff {
		return buf, errors.New("dnswire: rdata exceeds 65535 octets")
	}
	binary.BigEndian.PutUint16(buf[lenAt:], uint16(rdlen))
	return buf, nil
}

// CanonicalWire returns the record's RFC 4034 section 6 canonical wire
// form: uncompressed lowercase owner name followed by type, class, TTL and
// RDATA. Owner names are already stored lowercase, so no case mapping is
// needed here.
func (rr *RR) CanonicalWire() ([]byte, error) {
	return rr.pack(nil, nil)
}

func unpackRR(msg []byte, off int) (*RR, int, error) {
	name, off, err := unpackName(msg, off)
	if err != nil {
		return nil, 0, err
	}
	if off+10 > len(msg) {
		return nil, 0, ErrTruncatedMessage
	}
	rr := &RR{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2:])),
		TTL:   binary.BigEndian.Uint32(msg[off+4:]),
	}
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if rr.Data, err = unpackRData(rr.Type, msg, off, rdlen); err != nil {
		return nil, 0, err
	}
	return rr, off + rdlen, nil
}

// Message is a complete DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []*RR
	Authority  []*RR
	Additional []*RR
}

// NewQuery builds a standard query for one name/type with the given ID.
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: false},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassINET}},
	}
}

// Pack encodes the message into wire format.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message, appending to buf.
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	if len(m.Questions) > 0xffff || len(m.Answers) > 0xffff ||
		len(m.Authority) > 0xffff || len(m.Additional) > 0xffff {
		return nil, errors.New("dnswire: section too large")
	}
	counts := [4]uint16{
		uint16(len(m.Questions)), uint16(len(m.Answers)),
		uint16(len(m.Authority)), uint16(len(m.Additional)),
	}
	start := len(buf)
	buf = m.Header.pack(buf, counts)
	cmp := newCompressor()
	// Compression offsets are relative to the start of the DNS message, so
	// packing must begin at offset 0 of the working buffer for pointer
	// arithmetic to hold. Enforce rather than silently corrupt.
	if start != 0 {
		cmp = nil
	}
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, cmp); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]*RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = rr.pack(buf, cmp); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Unpack decodes a wire-format message.
func (m *Message) Unpack(b []byte) error {
	counts, err := m.Header.unpack(b)
	if err != nil {
		return err
	}
	off := 12
	m.Questions = m.Questions[:0]
	for i := 0; i < int(counts[0]); i++ {
		name, n, err := unpackName(b, off)
		if err != nil {
			return err
		}
		if n+4 > len(b) {
			return ErrTruncatedMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(b[n:])),
			Class: Class(binary.BigEndian.Uint16(b[n+2:])),
		})
		off = n + 4
	}
	for i, sec := range []*[]*RR{&m.Answers, &m.Authority, &m.Additional} {
		*sec = (*sec)[:0]
		for j := 0; j < int(counts[i+1]); j++ {
			rr, n, err := unpackRR(b, off)
			if err != nil {
				return err
			}
			*sec = append(*sec, rr)
			off = n
		}
	}
	if off != len(b) {
		return fmt.Errorf("dnswire: %d trailing octets after message", len(b)-off)
	}
	return nil
}

// Reply constructs a response skeleton for this query: same ID and question,
// QR set, and — when the query carried EDNS0 — a responder OPT with the DO
// bit mirrored. The responder advertises its own fixed ReplyUDPPayload
// rather than echoing the client's size, so the response bytes do not vary
// with the client's advertisement (which is what lets a wire-response cache
// store one rendering per question).
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.ID,
			Response:         true,
			OpCode:           m.OpCode,
			RecursionDesired: m.RecursionDesired,
		},
		Questions: append([]Question(nil), m.Questions...),
	}
	if e := m.EDNS(); e != nil {
		r.SetEDNS(ReplyUDPPayload, e.DNSSECOK)
	}
	return r
}

// String renders the whole message in dig-like presentation form.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; opcode: %d, status: %s, id: %d\n", m.OpCode, m.RCode, m.ID)
	fmt.Fprintf(&sb, ";; flags:")
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Response, "qr"}, {m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
		{m.AuthenticData, "ad"}, {m.CheckingDisabled, "cd"},
	} {
		if f.on {
			sb.WriteByte(' ')
			sb.WriteString(f.name)
		}
	}
	sb.WriteByte('\n')
	if len(m.Questions) > 0 {
		sb.WriteString(";; QUESTION SECTION:\n")
		for _, q := range m.Questions {
			fmt.Fprintf(&sb, ";%s\n", q)
		}
	}
	for _, sec := range []struct {
		name string
		rrs  []*RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s SECTION:\n", sec.name)
		for _, rr := range sec.rrs {
			if rr.Type == TypeOPT {
				continue
			}
			sb.WriteString(rr.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
