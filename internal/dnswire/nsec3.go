package dnswire

// NSEC3 and NSEC3PARAM records (RFC 5155): hashed authenticated denial of
// existence. Real-world signed zones — including most of the TLD zones the
// paper scans — use NSEC3 rather than NSEC to prevent trivial zone
// enumeration.

import (
	"encoding/base32"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// NSEC3 record types.
const (
	TypeNSEC3      Type = 50
	TypeNSEC3PARAM Type = 51
)

// NSEC3HashSHA1 is the only hash algorithm defined for NSEC3.
const NSEC3HashSHA1 uint8 = 1

// NSEC3FlagOptOut marks spans that may skip unsigned delegations.
const NSEC3FlagOptOut uint8 = 0x01

// base32Hex is the RFC 4648 extended-hex alphabet without padding, as used
// for NSEC3 owner labels.
var base32Hex = base32.HexEncoding.WithPadding(base32.NoPadding)

// NSEC3 provides hashed denial of existence (RFC 5155 section 3).
type NSEC3 struct {
	HashAlg    uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
	NextHashed []byte // binary hash of the next owner in hash order
	Types      []Type
}

// Type implements RData.
func (*NSEC3) Type() Type { return TypeNSEC3 }

// String implements RData in the standard presentation form.
func (r *NSEC3) String() string {
	salt := "-"
	if len(r.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(r.Salt))
	}
	parts := []string{
		fmt.Sprintf("%d %d %d %s %s", r.HashAlg, r.Flags, r.Iterations, salt,
			strings.ToLower(base32Hex.EncodeToString(r.NextHashed))),
	}
	for _, t := range r.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func (r *NSEC3) appendRData(buf []byte) ([]byte, error) {
	if len(r.Salt) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3 salt exceeds 255 octets")
	}
	if len(r.NextHashed) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3 hash exceeds 255 octets")
	}
	buf = append(buf, r.HashAlg, r.Flags)
	buf = binary.BigEndian.AppendUint16(buf, r.Iterations)
	buf = append(buf, byte(len(r.Salt)))
	buf = append(buf, r.Salt...)
	buf = append(buf, byte(len(r.NextHashed)))
	buf = append(buf, r.NextHashed...)
	return appendTypeBitmap(buf, r.Types)
}

// OptOut reports the opt-out flag.
func (r *NSEC3) OptOut() bool { return r.Flags&NSEC3FlagOptOut != 0 }

// NSEC3PARAM advertises a zone's NSEC3 parameters at the apex (RFC 5155
// section 4).
type NSEC3PARAM struct {
	HashAlg    uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
}

// Type implements RData.
func (*NSEC3PARAM) Type() Type { return TypeNSEC3PARAM }

// String implements RData.
func (r *NSEC3PARAM) String() string {
	salt := "-"
	if len(r.Salt) > 0 {
		salt = strings.ToUpper(hex.EncodeToString(r.Salt))
	}
	return fmt.Sprintf("%d %d %d %s", r.HashAlg, r.Flags, r.Iterations, salt)
}

func (r *NSEC3PARAM) appendRData(buf []byte) ([]byte, error) {
	if len(r.Salt) > 255 {
		return buf, fmt.Errorf("dnswire: NSEC3PARAM salt exceeds 255 octets")
	}
	buf = append(buf, r.HashAlg, r.Flags)
	buf = binary.BigEndian.AppendUint16(buf, r.Iterations)
	buf = append(buf, byte(len(r.Salt)))
	return append(buf, r.Salt...), nil
}

// unpackNSEC3 decodes NSEC3 RDATA.
func unpackNSEC3(rd []byte) (RData, error) {
	if len(rd) < 5 {
		return nil, errRDataLen
	}
	saltLen := int(rd[4])
	if len(rd) < 5+saltLen+1 {
		return nil, errRDataLen
	}
	hashLen := int(rd[5+saltLen])
	if len(rd) < 6+saltLen+hashLen {
		return nil, errRDataLen
	}
	types, err := parseTypeBitmap(rd[6+saltLen+hashLen:])
	if err != nil {
		return nil, err
	}
	return &NSEC3{
		HashAlg:    rd[0],
		Flags:      rd[1],
		Iterations: binary.BigEndian.Uint16(rd[2:]),
		Salt:       append([]byte(nil), rd[5:5+saltLen]...),
		NextHashed: append([]byte(nil), rd[6+saltLen:6+saltLen+hashLen]...),
		Types:      types,
	}, nil
}

// unpackNSEC3PARAM decodes NSEC3PARAM RDATA.
func unpackNSEC3PARAM(rd []byte) (RData, error) {
	if len(rd) < 5 {
		return nil, errRDataLen
	}
	saltLen := int(rd[4])
	if len(rd) != 5+saltLen {
		return nil, errRDataLen
	}
	return &NSEC3PARAM{
		HashAlg:    rd[0],
		Flags:      rd[1],
		Iterations: binary.BigEndian.Uint16(rd[2:]),
		Salt:       append([]byte(nil), rd[5:]...),
	}, nil
}

// Base32HexEncode renders an NSEC3 hash as an owner label (lowercase).
func Base32HexEncode(h []byte) string {
	return strings.ToLower(base32Hex.EncodeToString(h))
}

// Base32HexDecode parses an NSEC3 owner label back to its hash.
func Base32HexDecode(label string) ([]byte, error) {
	return base32Hex.DecodeString(strings.ToUpper(label))
}
