package dnswire

import (
	"encoding/binary"
	"errors"
)

// Lazy query parsing: the serving hot path only needs the question and the
// EDNS DO bit to key a wire-response cache, so it must not pay for a full
// Message materialization (section slices, RData decoding, string
// allocation per label) on every packet. ParseQueryView extracts exactly
// that skeleton straight from the raw datagram into caller-owned scratch.
//
// The fast path deliberately accepts a strict subset of what
// Message.Unpack accepts: one INET question, opcode QUERY, QR clear, empty
// answer/authority sections, and at most one additional record which must
// be an OPT. Anything else — including qnames with non-ASCII octets, whose
// canonicalization would diverge from the strings.ToLower path — falls
// back to the full parser. The subset property is what FuzzServeDNS pins
// down: ParseQueryView success implies Unpack success with an identical
// (qname, qtype, DO) view, so a cache keyed by the lazy view can never
// disagree with a response rendered from the full parse.

var errNotFastPath = errors.New("dnswire: packet outside the lazy-parse fast path")

// QueryView is the routing skeleton of one DNS query. Name aliases the
// scratch buffer passed to ParseQueryView and is only valid until the next
// call reusing that buffer.
type QueryView struct {
	ID               uint16
	RecursionDesired bool
	// Name is the canonical (lowercased, no trailing dot) qname.
	Name  []byte
	Type  Type
	Class Class
	// HasEDNS reports an OPT record in the additional section; UDPSize and
	// DNSSECOK are only meaningful when it is set.
	HasEDNS  bool
	DNSSECOK bool
	UDPSize  uint16
}

// MaxPayload mirrors Message.MaxPayload for the lazy view.
func (v *QueryView) MaxPayload() int {
	if v.HasEDNS {
		return int(v.UDPSize)
	}
	return MaxUDPPayload
}

// ParseQueryView decodes a query's skeleton without materializing a
// Message. buf is caller-owned scratch for the canonical qname; the
// (possibly grown) buffer is returned so callers can recycle it. On any
// deviation from the fast-path subset it returns an error and the caller
// must fall back to Message.Unpack.
func ParseQueryView(pkt, buf []byte) (QueryView, []byte, error) {
	var v QueryView
	if len(pkt) < 12 {
		return v, buf, ErrTruncatedMessage
	}
	v.ID = binary.BigEndian.Uint16(pkt)
	flags := binary.BigEndian.Uint16(pkt[2:])
	if flags&(1<<15) != 0 { // QR: a response, not a query
		return v, buf, errNotFastPath
	}
	if OpCode(flags>>11&0xf) != OpCodeQuery {
		return v, buf, errNotFastPath
	}
	v.RecursionDesired = flags&(1<<8) != 0
	qd := binary.BigEndian.Uint16(pkt[4:])
	an := binary.BigEndian.Uint16(pkt[6:])
	ns := binary.BigEndian.Uint16(pkt[8:])
	ar := binary.BigEndian.Uint16(pkt[10:])
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return v, buf, errNotFastPath
	}
	buf = buf[:0]
	buf, off, err := appendCanonicalName(buf, pkt, 12)
	if err != nil {
		return v, buf, err
	}
	nameLen := len(buf)
	if off+4 > len(pkt) {
		return v, buf, ErrTruncatedMessage
	}
	v.Type = Type(binary.BigEndian.Uint16(pkt[off:]))
	v.Class = Class(binary.BigEndian.Uint16(pkt[off+2:]))
	if v.Class != ClassINET {
		return v, buf, errNotFastPath
	}
	off += 4
	if ar == 1 {
		// The additional record's owner name is walked with the same
		// validation as the qname (so lazy success still implies full-parse
		// success) but its bytes are discarded.
		buf2, n, err := appendCanonicalName(buf, pkt, off)
		buf = buf2[:nameLen]
		if err != nil {
			return v, buf, err
		}
		off = n
		if off+10 > len(pkt) {
			return v, buf, ErrTruncatedMessage
		}
		if Type(binary.BigEndian.Uint16(pkt[off:])) != TypeOPT {
			return v, buf, errNotFastPath
		}
		v.HasEDNS = true
		v.UDPSize = binary.BigEndian.Uint16(pkt[off+2:])
		ttl := binary.BigEndian.Uint32(pkt[off+4:])
		v.DNSSECOK = ttl&doBit != 0
		rdlen := int(binary.BigEndian.Uint16(pkt[off+8:]))
		off += 10 + rdlen
		if off > len(pkt) {
			return v, buf, ErrTruncatedMessage
		}
	}
	if off != len(pkt) {
		return v, buf, errNotFastPath // trailing octets: Unpack rejects these too
	}
	v.Name = buf[:nameLen]
	return v, buf, nil
}

// appendCanonicalName is unpackName with the allocation removed: it appends
// the canonical (lowercased, dot-separated, no trailing dot) name to dst
// and returns the offset just past the name in the original stream. It
// enforces the same compression-pointer and length rules as unpackName,
// plus one extra restriction — labels must be pure ASCII, because
// strings.ToLower rewrites invalid UTF-8 in ways a byte-wise fold cannot
// reproduce. Non-ASCII names take the full-parse path instead.
func appendCanonicalName(dst []byte, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	ptrBudget := 32
	end := -1
	wireLen := 0
	for {
		if off >= len(msg) {
			return dst, 0, ErrTruncatedMessage
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if len(dst) > start {
				dst = dst[:len(dst)-1] // drop the trailing label separator
			}
			return dst, end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return dst, 0, ErrTruncatedMessage
			}
			ptr := (c&0x3f)<<8 | int(msg[off+1])
			if ptr >= off {
				return dst, 0, ErrBadCompression
			}
			if end < 0 {
				end = off + 2
			}
			if ptrBudget--; ptrBudget <= 0 {
				return dst, 0, ErrBadCompression
			}
			off = ptr
		case c&0xc0 != 0:
			return dst, 0, errNotFastPath
		default:
			if off+1+c > len(msg) {
				return dst, 0, ErrTruncatedMessage
			}
			wireLen += 1 + c
			if wireLen+1 > MaxNameWireLen {
				return dst, 0, ErrNameTooLong
			}
			for _, b := range msg[off+1 : off+1+c] {
				// Non-ASCII canonicalizes differently under strings.ToLower,
				// and a literal '.' inside a label is ambiguous in dotted
				// text (the full parser's CanonicalName would strip it when
				// trailing). Both fall back to the full parse.
				if b >= 0x80 || b == '.' {
					return dst, 0, errNotFastPath
				}
				if 'A' <= b && b <= 'Z' {
					b += 'a' - 'A'
				}
				dst = append(dst, b)
			}
			dst = append(dst, '.')
			off += 1 + c
		}
	}
}
