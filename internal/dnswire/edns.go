package dnswire

// EDNS0 support (RFC 6891). The OPT pseudo-record overloads the RR header:
// CLASS carries the requestor's UDP payload size and the TTL carries the
// extended RCODE and flags, including the DO ("DNSSEC OK") bit that a
// resolver sets to request RRSIGs in responses (RFC 3225).

// EDNS captures the decoded fields of an OPT pseudo-record.
type EDNS struct {
	UDPSize  uint16
	DNSSECOK bool
	Version  uint8
}

// doBit is the DO flag position within the OPT TTL field.
const doBit = 1 << 15

// ReplyUDPPayload is the payload size a responder advertises in its own
// OPT record (RFC 6891 section 6.2.5 leaves the choice to each side).
const ReplyUDPPayload = 4096

// SetEDNS adds (or replaces) an OPT pseudo-record in the additional section
// advertising the given UDP payload size and DO bit.
func (m *Message) SetEDNS(udpSize uint16, dnssecOK bool) {
	if udpSize < MaxUDPPayload {
		udpSize = MaxUDPPayload
	}
	var ttl uint32
	if dnssecOK {
		ttl |= doBit
	}
	opt := &RR{
		Name:  "",
		Type:  TypeOPT,
		Class: Class(udpSize),
		TTL:   ttl,
		Data:  &Generic{T: TypeOPT},
	}
	for i, rr := range m.Additional {
		if rr.Type == TypeOPT {
			m.Additional[i] = opt
			return
		}
	}
	m.Additional = append(m.Additional, opt)
}

// EDNS returns the decoded OPT record if the message carries one, else nil.
func (m *Message) EDNS() *EDNS {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			return &EDNS{
				UDPSize:  uint16(rr.Class),
				DNSSECOK: rr.TTL&doBit != 0,
				Version:  uint8(rr.TTL >> 16),
			}
		}
	}
	return nil
}

// DNSSECOK reports whether the message requests DNSSEC records (DO bit set).
func (m *Message) DNSSECOK() bool {
	e := m.EDNS()
	return e != nil && e.DNSSECOK
}

// MaxPayload returns the response size the sender can accept: the EDNS0
// advertised size, or the classic 512-octet limit without EDNS0.
func (m *Message) MaxPayload() int {
	if e := m.EDNS(); e != nil {
		return int(e.UDPSize)
	}
	return MaxUDPPayload
}
