package dnswire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RData is the type-specific payload of a resource record. Implementations
// provide wire encoding (appendRData), presentation formatting (String) and
// their own type code. Names embedded in RDATA are never compressed when
// packing, which keeps the wire form identical to the RFC 4034 canonical
// form used for signing.
type RData interface {
	// Type returns the RR type code this payload belongs to.
	Type() Type
	// String returns the presentation (zone-file) form of the RDATA.
	String() string
	// appendRData appends the wire encoding to buf.
	appendRData(buf []byte) ([]byte, error)
}

// errRDataLen reports an RDATA whose length does not match its type.
var errRDataLen = errors.New("dnswire: bad rdata length")

// ---------------------------------------------------------------- A / AAAA

// A is an IPv4 address record.
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (*A) Type() Type { return TypeA }

// String implements RData.
func (r *A) String() string { return r.Addr.String() }

func (r *A) appendRData(buf []byte) ([]byte, error) {
	if !r.Addr.Is4() {
		return buf, fmt.Errorf("dnswire: A record requires IPv4 address, got %v", r.Addr)
	}
	b := r.Addr.As4()
	return append(buf, b[:]...), nil
}

// AAAA is an IPv6 address record.
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (*AAAA) Type() Type { return TypeAAAA }

// String implements RData.
func (r *AAAA) String() string { return r.Addr.String() }

func (r *AAAA) appendRData(buf []byte) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return buf, fmt.Errorf("dnswire: AAAA record requires IPv6 address, got %v", r.Addr)
	}
	b := r.Addr.As16()
	return append(buf, b[:]...), nil
}

// ------------------------------------------------------- NS / CNAME / PTR

// NS names an authoritative nameserver for the owner zone.
type NS struct {
	Host string
}

// Type implements RData.
func (*NS) Type() Type { return TypeNS }

// String implements RData.
func (r *NS) String() string { return presentName(r.Host) }

func (r *NS) appendRData(buf []byte) ([]byte, error) {
	return appendName(buf, r.Host, nil)
}

// CNAME aliases the owner name to Target.
type CNAME struct {
	Target string
}

// Type implements RData.
func (*CNAME) Type() Type { return TypeCNAME }

// String implements RData.
func (r *CNAME) String() string { return presentName(r.Target) }

func (r *CNAME) appendRData(buf []byte) ([]byte, error) {
	return appendName(buf, r.Target, nil)
}

// PTR maps an address back to a name.
type PTR struct {
	Target string
}

// Type implements RData.
func (*PTR) Type() Type { return TypePTR }

// String implements RData.
func (r *PTR) String() string { return presentName(r.Target) }

func (r *PTR) appendRData(buf []byte) ([]byte, error) {
	return appendName(buf, r.Target, nil)
}

// ---------------------------------------------------------------- MX / TXT

// MX names a mail exchanger with a preference value.
type MX struct {
	Pref uint16
	Host string
}

// Type implements RData.
func (*MX) Type() Type { return TypeMX }

// String implements RData.
func (r *MX) String() string {
	return strconv.Itoa(int(r.Pref)) + " " + presentName(r.Host)
}

func (r *MX) appendRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.Pref)
	return appendName(buf, r.Host, nil)
}

// TXT carries one or more character strings.
type TXT struct {
	Strings []string
}

// Type implements RData.
func (*TXT) Type() Type { return TypeTXT }

// String implements RData.
func (r *TXT) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

func (r *TXT) appendRData(buf []byte) ([]byte, error) {
	if len(r.Strings) == 0 {
		return buf, errors.New("dnswire: TXT record requires at least one string")
	}
	for _, s := range r.Strings {
		if len(s) > 255 {
			return buf, errors.New("dnswire: TXT string exceeds 255 octets")
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

// --------------------------------------------------------------------- SOA

// SOA is the start-of-authority record for a zone.
type SOA struct {
	MName   string // primary nameserver
	RName   string // responsible mailbox (dots-as-at encoding)
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL
}

// Type implements RData.
func (*SOA) Type() Type { return TypeSOA }

// String implements RData.
func (r *SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		presentName(r.MName), presentName(r.RName),
		r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

func (r *SOA) appendRData(buf []byte) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, r.MName, nil); err != nil {
		return buf, err
	}
	if buf, err = appendName(buf, r.RName, nil); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint32(buf, r.Serial)
	buf = binary.BigEndian.AppendUint32(buf, r.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, r.Retry)
	buf = binary.BigEndian.AppendUint32(buf, r.Expire)
	buf = binary.BigEndian.AppendUint32(buf, r.Minimum)
	return buf, nil
}

// ------------------------------------------------------------------ DNSKEY

// DNSKEY is a DNSSEC public key record (RFC 4034 section 2).
type DNSKEY struct {
	Flags     uint16 // FlagsZSK or FlagsKSK in practice
	Protocol  uint8  // must be 3
	Algorithm Algorithm
	PublicKey []byte // algorithm-specific encoding
}

// Type implements RData.
func (*DNSKEY) Type() Type { return TypeDNSKEY }

// String implements RData.
func (r *DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", r.Flags, r.Protocol, uint8(r.Algorithm),
		base64.StdEncoding.EncodeToString(r.PublicKey))
}

func (r *DNSKEY) appendRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.Flags)
	buf = append(buf, r.Protocol, byte(r.Algorithm))
	return append(buf, r.PublicKey...), nil
}

// IsZoneKey reports whether the Zone flag bit is set; keys without it must
// not be used to validate RRSIGs.
func (r *DNSKEY) IsZoneKey() bool { return r.Flags&FlagZone != 0 }

// IsSEP reports whether the Secure Entry Point bit is set (conventionally a
// KSK).
func (r *DNSKEY) IsSEP() bool { return r.Flags&FlagSEP != 0 }

// KeyTag computes the RFC 4034 Appendix B key tag over the record's wire
// form.
func (r *DNSKEY) KeyTag() uint16 {
	wire, err := r.appendRData(nil)
	if err != nil {
		return 0
	}
	var acc uint32
	for i, b := range wire {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xffff
	return uint16(acc)
}

// CDNSKEY is the child copy of a DNSKEY, published to request that the
// parent update its DS RRset (RFC 7344).
type CDNSKEY struct {
	DNSKEY
}

// Type implements RData.
func (*CDNSKEY) Type() Type { return TypeCDNSKEY }

// ------------------------------------------------------------------- RRSIG

// rrsigTimeFormat is the presentation format of RRSIG timestamps.
const rrsigTimeFormat = "20060102150405"

// RRSIG is a DNSSEC signature over one RRset (RFC 4034 section 3).
type RRSIG struct {
	TypeCovered Type
	Algorithm   Algorithm
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32 // seconds since epoch, serial arithmetic
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// Type implements RData.
func (*RRSIG) Type() Type { return TypeRRSIG }

// String implements RData.
func (r *RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %s %s %d %s %s",
		r.TypeCovered, uint8(r.Algorithm), r.Labels, r.OriginalTTL,
		time.Unix(int64(r.Expiration), 0).UTC().Format(rrsigTimeFormat),
		time.Unix(int64(r.Inception), 0).UTC().Format(rrsigTimeFormat),
		r.KeyTag, presentName(r.SignerName),
		base64.StdEncoding.EncodeToString(r.Signature))
}

func (r *RRSIG) appendRData(buf []byte) ([]byte, error) {
	buf = r.AppendSignedFields(buf)
	return append(buf, r.Signature...), nil
}

// AppendSignedFields appends the RDATA fields up to but excluding the
// signature itself — exactly the prefix that is input to the signature
// computation (RFC 4034 section 3.1.8.1).
func (r *RRSIG) AppendSignedFields(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.TypeCovered))
	buf = append(buf, byte(r.Algorithm), r.Labels)
	buf = binary.BigEndian.AppendUint32(buf, r.OriginalTTL)
	buf = binary.BigEndian.AppendUint32(buf, r.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, r.Inception)
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	buf, _ = appendName(buf, r.SignerName, nil)
	return buf
}

// ValidAt reports whether t falls within the signature validity window.
func (r *RRSIG) ValidAt(t time.Time) bool {
	now := uint32(t.Unix())
	// Serial-number arithmetic (RFC 1982) is overkill for our horizon;
	// direct comparison is correct for dates between 1970 and 2106.
	return r.Inception <= now && now <= r.Expiration
}

// ---------------------------------------------------------------- DS / CDS

// DS is a delegation-signer record: a digest of a child zone's KSK,
// published in the parent zone (RFC 4034 section 5). The DS RRset is the
// link in the chain of trust that registrars must upload to the registry —
// the operational step this paper shows is so frequently botched.
type DS struct {
	KeyTag     uint16
	Algorithm  Algorithm
	DigestType DigestType
	Digest     []byte
}

// Type implements RData.
func (*DS) Type() Type { return TypeDS }

// String implements RData.
func (r *DS) String() string {
	return fmt.Sprintf("%d %d %d %s", r.KeyTag, uint8(r.Algorithm),
		uint8(r.DigestType), strings.ToUpper(hex.EncodeToString(r.Digest)))
}

func (r *DS) appendRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	buf = append(buf, byte(r.Algorithm), byte(r.DigestType))
	return append(buf, r.Digest...), nil
}

// CDS is the child's requested DS RRset (RFC 7344).
type CDS struct {
	DS
}

// Type implements RData.
func (*CDS) Type() Type { return TypeCDS }

// -------------------------------------------------------------------- NSEC

// NSEC provides authenticated denial of existence (RFC 4034 section 4).
type NSEC struct {
	NextName string
	Types    []Type // sorted, deduplicated set of types at the owner
}

// Type implements RData.
func (*NSEC) Type() Type { return TypeNSEC }

// String implements RData.
func (r *NSEC) String() string {
	parts := make([]string, 0, len(r.Types)+1)
	parts = append(parts, presentName(r.NextName))
	for _, t := range r.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func (r *NSEC) appendRData(buf []byte) ([]byte, error) {
	buf, err := appendName(buf, r.NextName, nil)
	if err != nil {
		return buf, err
	}
	return appendTypeBitmap(buf, r.Types)
}

// appendTypeBitmap encodes the RFC 4034 section 4.1.2 type bitmap.
func appendTypeBitmap(buf []byte, types []Type) ([]byte, error) {
	if len(types) == 0 {
		return buf, nil
	}
	sorted := append([]Type(nil), types...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var window = -1
	var bits [32]byte
	var maxOctet int
	flush := func() {
		if window >= 0 {
			buf = append(buf, byte(window), byte(maxOctet+1))
			buf = append(buf, bits[:maxOctet+1]...)
		}
	}
	for _, t := range sorted {
		w := int(t >> 8)
		if w != window {
			flush()
			window, maxOctet = w, 0
			bits = [32]byte{}
		}
		low := int(t & 0xff)
		bits[low/8] |= 0x80 >> (low % 8)
		if low/8 > maxOctet {
			maxOctet = low / 8
		}
	}
	flush()
	return buf, nil
}

// parseTypeBitmap decodes an RFC 4034 type bitmap.
func parseTypeBitmap(b []byte) ([]Type, error) {
	var types []Type
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, errRDataLen
		}
		window, n := int(b[0]), int(b[1])
		if n < 1 || n > 32 || len(b) < 2+n {
			return nil, errRDataLen
		}
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if b[2+i]&(0x80>>bit) != 0 {
					types = append(types, Type(window<<8|i*8+bit))
				}
			}
		}
		b = b[2+n:]
	}
	return types, nil
}

// ----------------------------------------------------------------- Generic

// Generic carries the raw RDATA of any type this package does not model,
// preserved verbatim (RFC 3597).
type Generic struct {
	T    Type
	Data []byte
}

// Type implements RData.
func (r *Generic) Type() Type { return r.T }

// String implements RData in the RFC 3597 \# form.
func (r *Generic) String() string {
	return fmt.Sprintf("\\# %d %s", len(r.Data), hex.EncodeToString(r.Data))
}

func (r *Generic) appendRData(buf []byte) ([]byte, error) {
	return append(buf, r.Data...), nil
}

// presentName renders a canonical name in presentation form with the
// trailing dot, "." for the root.
func presentName(name string) string {
	if name == "" {
		return "."
	}
	return name + "."
}

// unpackRData decodes the RDATA of the given type from msg[off:off+rdlen].
// Names inside RDATA may use compression (pointing into the whole message).
func unpackRData(t Type, msg []byte, off, rdlen int) (RData, error) {
	if off+rdlen > len(msg) {
		return nil, ErrTruncatedMessage
	}
	rd := msg[off : off+rdlen]
	switch t {
	case TypeA:
		if rdlen != 4 {
			return nil, errRDataLen
		}
		return &A{Addr: netip.AddrFrom4([4]byte(rd))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, errRDataLen
		}
		return &AAAA{Addr: netip.AddrFrom16([16]byte(rd))}, nil
	case TypeNS, TypeCNAME, TypePTR:
		name, _, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		switch t {
		case TypeNS:
			return &NS{Host: name}, nil
		case TypeCNAME:
			return &CNAME{Target: name}, nil
		default:
			return &PTR{Target: name}, nil
		}
	case TypeMX:
		if rdlen < 3 {
			return nil, errRDataLen
		}
		host, _, err := unpackName(msg, off+2)
		if err != nil {
			return nil, err
		}
		return &MX{Pref: binary.BigEndian.Uint16(rd), Host: host}, nil
	case TypeTXT:
		var ss []string
		for p := 0; p < rdlen; {
			n := int(rd[p])
			if p+1+n > rdlen {
				return nil, errRDataLen
			}
			ss = append(ss, string(rd[p+1:p+1+n]))
			p += 1 + n
		}
		if len(ss) == 0 {
			return nil, errRDataLen
		}
		return &TXT{Strings: ss}, nil
	case TypeSOA:
		mname, p, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, p, err := unpackName(msg, p)
		if err != nil {
			return nil, err
		}
		if p+20 > off+rdlen {
			return nil, errRDataLen
		}
		f := msg[p:]
		return &SOA{
			MName: mname, RName: rname,
			Serial:  binary.BigEndian.Uint32(f[0:]),
			Refresh: binary.BigEndian.Uint32(f[4:]),
			Retry:   binary.BigEndian.Uint32(f[8:]),
			Expire:  binary.BigEndian.Uint32(f[12:]),
			Minimum: binary.BigEndian.Uint32(f[16:]),
		}, nil
	case TypeDNSKEY, TypeCDNSKEY:
		if rdlen < 4 {
			return nil, errRDataLen
		}
		dk := DNSKEY{
			Flags:     binary.BigEndian.Uint16(rd),
			Protocol:  rd[2],
			Algorithm: Algorithm(rd[3]),
			PublicKey: append([]byte(nil), rd[4:]...),
		}
		if t == TypeCDNSKEY {
			return &CDNSKEY{DNSKEY: dk}, nil
		}
		return &dk, nil
	case TypeRRSIG:
		if rdlen < 18 {
			return nil, errRDataLen
		}
		signer, p, err := unpackName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if p > off+rdlen {
			return nil, errRDataLen
		}
		return &RRSIG{
			TypeCovered: Type(binary.BigEndian.Uint16(rd)),
			Algorithm:   Algorithm(rd[2]),
			Labels:      rd[3],
			OriginalTTL: binary.BigEndian.Uint32(rd[4:]),
			Expiration:  binary.BigEndian.Uint32(rd[8:]),
			Inception:   binary.BigEndian.Uint32(rd[12:]),
			KeyTag:      binary.BigEndian.Uint16(rd[16:]),
			SignerName:  signer,
			Signature:   append([]byte(nil), msg[p:off+rdlen]...),
		}, nil
	case TypeDS, TypeCDS:
		if rdlen < 4 {
			return nil, errRDataLen
		}
		ds := DS{
			KeyTag:     binary.BigEndian.Uint16(rd),
			Algorithm:  Algorithm(rd[2]),
			DigestType: DigestType(rd[3]),
			Digest:     append([]byte(nil), rd[4:]...),
		}
		if t == TypeCDS {
			return &CDS{DS: ds}, nil
		}
		return &ds, nil
	case TypeNSEC3:
		return unpackNSEC3(rd)
	case TypeNSEC3PARAM:
		return unpackNSEC3PARAM(rd)
	case TypeNSEC:
		next, p, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if p > off+rdlen {
			// The embedded name ran past the declared RDLENGTH.
			return nil, errRDataLen
		}
		types, err := parseTypeBitmap(msg[p : off+rdlen])
		if err != nil {
			return nil, err
		}
		return &NSEC{NextName: next, Types: types}, nil
	default:
		return &Generic{T: t, Data: append([]byte(nil), rd...)}, nil
	}
}
