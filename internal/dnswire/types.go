// Package dnswire implements the DNS wire format (RFC 1035) together with
// the resource records required for DNSSEC (RFC 4034) and automated
// delegation trust maintenance (RFC 7344): DNSKEY, RRSIG, DS, NSEC, CDS and
// CDNSKEY, plus the EDNS0 OPT pseudo-record (RFC 6891) needed to signal
// DNSSEC-aware queries.
//
// The package is self-contained (standard library only) and is the
// foundation every other layer of registrarsec builds on: the authoritative
// server, the validating resolver, the scan engine and the registrar probe
// all speak this wire format.
//
// Domain names are represented as lowercase presentation-format strings
// without the trailing dot; the root zone is the empty string. This single
// normalized representation makes DNSSEC canonical-form processing
// (RFC 4034 section 6) a no-op for case handling.
package dnswire

import "strconv"

// Type is a DNS resource record type code.
type Type uint16

// Resource record types used throughout this module.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	// TypeNSEC3 and TypeNSEC3PARAM are declared in nsec3.go (50, 51).
	TypeCDS     Type = 59
	TypeCDNSKEY Type = 60
	TypeANY     Type = 255
)

var typeNames = map[Type]string{
	TypeA:          "A",
	TypeNS:         "NS",
	TypeCNAME:      "CNAME",
	TypeSOA:        "SOA",
	TypePTR:        "PTR",
	TypeMX:         "MX",
	TypeTXT:        "TXT",
	TypeAAAA:       "AAAA",
	TypeOPT:        "OPT",
	TypeDS:         "DS",
	TypeRRSIG:      "RRSIG",
	TypeNSEC:       "NSEC",
	TypeDNSKEY:     "DNSKEY",
	TypeNSEC3:      "NSEC3",
	TypeNSEC3PARAM: "NSEC3PARAM",
	TypeCDS:        "CDS",
	TypeCDNSKEY:    "CDNSKEY",
	TypeANY:        "ANY",
}

var typeValues = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// String returns the mnemonic for known types and the RFC 3597 TYPEnnn form
// otherwise.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "TYPE" + strconv.Itoa(int(t))
}

// TypeFromString parses a type mnemonic ("A", "DNSKEY", ...) or an RFC 3597
// TYPEnnn token. It reports false if the token is not recognized.
func TypeFromString(s string) (Type, bool) {
	if t, ok := typeValues[s]; ok {
		return t, true
	}
	if len(s) > 4 && s[:4] == "TYPE" {
		n, err := strconv.Atoi(s[4:])
		if err == nil && n >= 0 && n <= 0xffff {
			return Type(n), true
		}
	}
	return TypeNone, false
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

const (
	ClassINET Class = 1
	ClassANY  Class = 255
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return "CLASS" + strconv.Itoa(int(c))
}

// RCode is a DNS response code.
type RCode uint8

const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

// String returns the standard rcode mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return "RCODE" + strconv.Itoa(int(r))
}

// OpCode is a DNS operation code; only QUERY is implemented.
type OpCode uint8

// OpCodeQuery is the standard query opcode.
const OpCodeQuery OpCode = 0

// Algorithm is a DNSSEC signing algorithm number (RFC 4034 Appendix A.1 and
// successors). registrarsec implements the three algorithms that dominate
// modern deployment.
type Algorithm uint8

const (
	// AlgRSASHA256 is RSA/SHA-256 (RFC 5702), algorithm 8 — the most widely
	// deployed DNSSEC algorithm during the paper's measurement period.
	AlgRSASHA256 Algorithm = 8
	// AlgECDSAP256SHA256 is ECDSA Curve P-256 with SHA-256 (RFC 6605),
	// algorithm 13 — used by Cloudflare's universal DNSSEC rollout.
	AlgECDSAP256SHA256 Algorithm = 13
	// AlgED25519 is Ed25519 (RFC 8080), algorithm 15.
	AlgED25519 Algorithm = 15
	// AlgDelete (0) in a CDS/CDNSKEY record requests removal of the DS RRset
	// at the parent (RFC 8078 section 4).
	AlgDelete Algorithm = 0
)

// String returns the algorithm mnemonic.
func (a Algorithm) String() string {
	switch a {
	case AlgRSASHA256:
		return "RSASHA256"
	case AlgECDSAP256SHA256:
		return "ECDSAP256SHA256"
	case AlgED25519:
		return "ED25519"
	case AlgDelete:
		return "DELETE"
	}
	return "ALG" + strconv.Itoa(int(a))
}

// DigestType identifies the hash used in a DS record (RFC 4034 Appendix
// A.2, RFC 4509, RFC 6605).
type DigestType uint8

const (
	DigestSHA1   DigestType = 1
	DigestSHA256 DigestType = 2
	DigestSHA384 DigestType = 4
)

// String returns the digest mnemonic.
func (d DigestType) String() string {
	switch d {
	case DigestSHA1:
		return "SHA1"
	case DigestSHA256:
		return "SHA256"
	case DigestSHA384:
		return "SHA384"
	}
	return "DIGEST" + strconv.Itoa(int(d))
}

// DNSKEY flag bits (RFC 4034 section 2.1.1).
const (
	// FlagZone marks a zone key; it must be set for the key to be usable for
	// DNSSEC validation.
	FlagZone uint16 = 0x0100
	// FlagSEP is the Secure Entry Point hint, conventionally marking a KSK.
	FlagSEP uint16 = 0x0001

	// FlagsZSK is the conventional flags field of a zone-signing key.
	FlagsZSK = FlagZone
	// FlagsKSK is the conventional flags field of a key-signing key.
	FlagsKSK = FlagZone | FlagSEP
)

// MaxUDPPayload is the conventional maximum DNS message size without EDNS0.
const MaxUDPPayload = 512

// MaxNameWireLen is the maximum wire-format length of a domain name.
const MaxNameWireLen = 255

// MaxLabelLen is the maximum length of a single label.
const MaxLabelLen = 63
