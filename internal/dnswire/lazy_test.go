package dnswire

import (
	"bytes"
	"strings"
	"testing"
)

func packQuery(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// parseBoth runs the lazy and full parsers and, when the lazy parse
// succeeds, checks the agreement contract: full parse must also succeed and
// produce the same (qname, qtype, class, DO, payload) view.
func parseBoth(t *testing.T, pkt []byte) (QueryView, bool) {
	t.Helper()
	v, _, err := ParseQueryView(pkt, nil)
	if err != nil {
		return v, false
	}
	var m Message
	if err := m.Unpack(pkt); err != nil {
		t.Fatalf("lazy parse accepted what Unpack rejects: %v", err)
	}
	if len(m.Questions) != 1 {
		t.Fatalf("full parse question count %d", len(m.Questions))
	}
	q := m.Questions[0]
	if got, want := string(v.Name), CanonicalName(q.Name); got != want {
		t.Errorf("qname: lazy %q full %q", got, want)
	}
	if v.Type != q.Type || v.Class != q.Class {
		t.Errorf("type/class: lazy %v/%v full %v/%v", v.Type, v.Class, q.Type, q.Class)
	}
	if v.ID != m.ID || v.RecursionDesired != m.RecursionDesired {
		t.Errorf("header: lazy id=%d rd=%v full id=%d rd=%v", v.ID, v.RecursionDesired, m.ID, m.RecursionDesired)
	}
	e := m.EDNS()
	if v.HasEDNS != (e != nil) {
		t.Errorf("EDNS presence: lazy %v full %v", v.HasEDNS, e != nil)
	}
	if e != nil && v.DNSSECOK != e.DNSSECOK {
		t.Errorf("DO: lazy %v full %v", v.DNSSECOK, e.DNSSECOK)
	}
	if v.MaxPayload() != m.MaxPayload() {
		t.Errorf("MaxPayload: lazy %d full %d", v.MaxPayload(), m.MaxPayload())
	}
	return v, true
}

func TestParseQueryViewPlain(t *testing.T) {
	q := NewQuery(0x1234, "WWW.Example.COM", TypeA)
	v, ok := parseBoth(t, packQuery(t, q))
	if !ok {
		t.Fatal("plain query rejected by lazy parse")
	}
	if string(v.Name) != "www.example.com" {
		t.Errorf("qname not canonicalized: %q", v.Name)
	}
	if v.HasEDNS || v.DNSSECOK {
		t.Error("phantom EDNS")
	}
	if v.MaxPayload() != MaxUDPPayload {
		t.Errorf("MaxPayload %d without EDNS", v.MaxPayload())
	}
}

func TestParseQueryViewEDNS(t *testing.T) {
	for _, do := range []bool{false, true} {
		q := NewQuery(7, "example.org", TypeDS)
		q.RecursionDesired = true
		q.SetEDNS(1232, do)
		v, ok := parseBoth(t, packQuery(t, q))
		if !ok {
			t.Fatalf("EDNS query (do=%v) rejected by lazy parse", do)
		}
		if !v.HasEDNS || v.DNSSECOK != do || v.UDPSize != 1232 {
			t.Errorf("EDNS view: %+v", v)
		}
		if !v.RecursionDesired {
			t.Error("RD lost")
		}
		if v.MaxPayload() != 1232 {
			t.Errorf("MaxPayload %d", v.MaxPayload())
		}
	}
}

func TestParseQueryViewRootName(t *testing.T) {
	q := NewQuery(1, "", TypeNS)
	v, ok := parseBoth(t, packQuery(t, q))
	if !ok {
		t.Fatal("root query rejected")
	}
	if len(v.Name) != 0 {
		t.Errorf("root qname: %q", v.Name)
	}
}

func TestParseQueryViewScratchReuse(t *testing.T) {
	buf := make([]byte, 0, 8) // deliberately small: must grow and be returned
	q1 := packQuery(t, NewQuery(1, "a-rather-long-name.example.com", TypeA))
	v1, buf, err := ParseQueryView(q1, buf)
	if err != nil {
		t.Fatal(err)
	}
	name1 := string(v1.Name)
	q2 := packQuery(t, NewQuery(2, "other.net", TypeNS))
	v2, _, err := ParseQueryView(q2, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(v2.Name) != "other.net" {
		t.Errorf("second parse: %q", v2.Name)
	}
	if name1 != "a-rather-long-name.example.com" {
		t.Errorf("first name corrupted: %q", name1)
	}
}

// TestParseQueryViewRejections exercises every off-fast-path shape; each
// must return an error (full-parse fallback), never a wrong view.
func TestParseQueryViewRejections(t *testing.T) {
	base := func() []byte {
		q := NewQuery(9, "www.example.com", TypeA)
		q.SetEDNS(4096, true)
		return packQuery(t, q)
	}
	// Offsets in the packed base query: 12-byte header, 17-byte qname,
	// 4-byte type/class, then the OPT RR (root owner at 33, type at 34).
	cases := []struct {
		name string
		pkt  func() []byte
	}{
		{"qr set", func() []byte { p := base(); p[2] |= 0x80; return p }},
		{"bad opcode", func() []byte { p := base(); p[2] |= 0x78; return p }},
		{"qdcount 0", func() []byte { p := base(); p[5] = 0; return p }},
		{"qdcount 2", func() []byte { p := base(); p[5] = 2; return p }},
		{"ancount set", func() []byte { p := base(); p[7] = 1; return p }},
		{"nscount set", func() []byte { p := base(); p[9] = 1; return p }},
		{"arcount 2", func() []byte { p := base(); p[11] = 2; return p }},
		{"trailing octets", func() []byte { return append(base(), 0) }},
		{"truncated header", func() []byte { return base()[:8] }},
		{"truncated question", func() []byte { p := packQuery(t, NewQuery(9, "example.com", TypeA)); return p[:len(p)-1] }},
		{"non-inet class", func() []byte {
			p := packQuery(t, NewQuery(9, "www.example.com", TypeA))
			p[len(p)-1] = 3 // CHAOS
			return p
		}},
		{"additional not OPT", func() []byte { p := base(); p[35] = byte(TypeA); return p }},
		{"opt rdata overruns", func() []byte { p := base(); p[len(p)-1] = 200; return p }},
		{"self compression pointer", func() []byte {
			return []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1}
		}},
		{"forward compression pointer", func() []byte {
			return []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 16, 0, 1, 0, 1}
		}},
		{"non-ascii label", func() []byte {
			return []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 2, 'a', 0x80, 0, 0, 1, 0, 1}
		}},
		{"dot inside label", func() []byte {
			return []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 2, 'a', '.', 0, 0, 1, 0, 1}
		}},
		{"reserved label bits", func() []byte {
			return []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0x40, 0, 0, 1, 0, 1}
		}},
		{"name too long", func() []byte {
			var name bytes.Buffer
			for i := 0; i < 5; i++ {
				name.WriteString(strings.Repeat("a", 63) + ".")
			}
			p := []byte{0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
			for _, label := range strings.Split(strings.TrimSuffix(name.String(), "."), ".") {
				p = append(p, byte(len(label)))
				p = append(p, label...)
			}
			p = append(p, 0, 0, 1, 0, 1)
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ParseQueryView(tc.pkt(), nil); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func BenchmarkParseQueryView(b *testing.B) {
	q := NewQuery(9, "www.example.com", TypeA)
	q.SetEDNS(4096, true)
	pkt, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, buf, err = ParseQueryView(pkt, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
