package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name processing.
var (
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnswire: empty label")
	ErrBadCompression   = errors.New("dnswire: invalid compression pointer")
	ErrTruncatedMessage = errors.New("dnswire: message truncated")
)

// CanonicalName normalizes a presentation-format domain name: lowercases it
// and strips a single trailing dot. The root zone canonicalizes to "".
// It does not validate label lengths; use CheckName for that.
func CanonicalName(s string) string {
	s = strings.TrimSuffix(s, ".")
	return strings.ToLower(s)
}

// CheckName validates that a canonical name has well-formed labels and fits
// in the 255-octet wire limit.
func CheckName(name string) error {
	if name == "" {
		return nil
	}
	wire := 1 // terminating root label
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			return fmt.Errorf("%w in %q", ErrEmptyLabel, name)
		}
		if len(label) > MaxLabelLen {
			return fmt.Errorf("%w: %q", ErrLabelTooLong, label)
		}
		wire += 1 + len(label)
	}
	if wire > MaxNameWireLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	return nil
}

// SplitLabels returns the labels of a canonical name in left-to-right order.
// The root name has zero labels.
func SplitLabels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// CountLabels returns the number of labels in a canonical name, as used by
// the RRSIG Labels field. The root has zero labels.
func CountLabels(name string) int {
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// Parent returns the name with its leftmost label removed and reports
// whether the input had a parent (false only for the root).
func Parent(name string) (string, bool) {
	if name == "" {
		return "", false
	}
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:], true
	}
	return "", true
}

// IsSubdomain reports whether child is equal to or below parent in the DNS
// tree. Both arguments must be canonical. Every name is a subdomain of the
// root ("").
func IsSubdomain(child, parent string) bool {
	if parent == "" {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// SecondLevel returns the second-level domain of a canonical name: the label
// directly below the TLD plus the TLD itself (for "ns1.ovh.net" it returns
// "ovh.net"). Names with fewer than two labels are returned unchanged. This
// is the grouping rule the paper uses to identify DNS operators from NS
// records (section 4.2).
func SecondLevel(name string) string {
	labels := SplitLabels(name)
	if len(labels) <= 2 {
		return name
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// CompareCanonical implements the canonical DNS name ordering of RFC 4034
// section 6.1: names are compared right-to-left, label by label, as
// case-insensitive octet strings. It returns -1, 0 or +1.
func CompareCanonical(a, b string) int {
	la, lb := SplitLabels(a), SplitLabels(b)
	for i := 1; ; i++ {
		if i > len(la) && i > len(lb) {
			return 0
		}
		if i > len(la) {
			return -1
		}
		if i > len(lb) {
			return 1
		}
		x, y := la[len(la)-i], lb[len(lb)-i]
		if c := strings.Compare(x, y); c != 0 {
			return c
		}
	}
}

// compressor tracks name→offset mappings while packing a message so that
// repeated names can be encoded as compression pointers (RFC 1035 section
// 4.1.4). A nil *compressor disables compression, which is required when
// producing the canonical form of RDATA for signing.
type compressor struct {
	offsets map[string]int
}

func newCompressor() *compressor {
	return &compressor{offsets: make(map[string]int)}
}

// appendName appends the wire encoding of a canonical name to buf, using
// compression pointers when cmp is non-nil and the suffix has been seen at a
// pointer-reachable offset.
func appendName(buf []byte, name string, cmp *compressor) ([]byte, error) {
	if err := CheckName(name); err != nil {
		return buf, err
	}
	rest := name
	for rest != "" {
		if cmp != nil {
			if off, ok := cmp.offsets[rest]; ok {
				return append(buf, 0xc0|byte(off>>8), byte(off)), nil
			}
			if len(buf) < 0x3fff {
				cmp.offsets[rest] = len(buf)
			}
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// unpackName decodes a (possibly compressed) name starting at off in msg.
// It returns the canonical name and the offset just past the name in the
// original (uncompressed) stream. Compression pointer chains are bounded to
// defeat loops, and pointers must point strictly backwards.
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := 32 // far more than any legitimate message needs
	end := -1       // offset after the name in the original stream
	wireLen := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		c := int(msg[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			name := sb.String()
			return strings.ToLower(strings.TrimSuffix(name, ".")), end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := (c&0x3f)<<8 | int(msg[off+1])
			if ptr >= off {
				return "", 0, ErrBadCompression
			}
			if end < 0 {
				end = off + 2
			}
			if ptrBudget--; ptrBudget <= 0 {
				return "", 0, ErrBadCompression
			}
			off = ptr
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: unsupported label type 0x%02x", c&0xc0)
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			wireLen += 1 + c
			if wireLen+1 > MaxNameWireLen {
				return "", 0, ErrNameTooLong
			}
			sb.Write(msg[off+1 : off+1+c])
			sb.WriteByte('.')
			off += 1 + c
		}
	}
}
