package dnswire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Example.COM.", "example.com"},
		{"example.com", "example.com"},
		{".", ""},
		{"", ""},
		{"WWW.Example.Org", "www.example.org"},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCheckName(t *testing.T) {
	long := strings.Repeat("a", 64)
	if err := CheckName(long); err == nil {
		t.Error("expected error for 64-octet label")
	}
	if err := CheckName(strings.Repeat("a", 63)); err != nil {
		t.Errorf("63-octet label should be valid: %v", err)
	}
	if err := CheckName("a..b"); err == nil {
		t.Error("expected error for empty label")
	}
	// 255-octet limit: four 63-octet labels = 4*64+1 = 257 > 255.
	four := strings.Join([]string{
		strings.Repeat("a", 63), strings.Repeat("b", 63),
		strings.Repeat("c", 63), strings.Repeat("d", 63),
	}, ".")
	if err := CheckName(four); err == nil {
		t.Error("expected error for name over 255 octets")
	}
	if err := CheckName(""); err != nil {
		t.Errorf("root must be valid: %v", err)
	}
}

func TestParentAndLabels(t *testing.T) {
	if p, ok := Parent("www.example.com"); !ok || p != "example.com" {
		t.Errorf("Parent = %q, %v", p, ok)
	}
	if p, ok := Parent("com"); !ok || p != "" {
		t.Errorf("Parent(com) = %q, %v", p, ok)
	}
	if _, ok := Parent(""); ok {
		t.Error("root must have no parent")
	}
	if n := CountLabels("a.b.c"); n != 3 {
		t.Errorf("CountLabels = %d", n)
	}
	if n := CountLabels(""); n != 0 {
		t.Errorf("CountLabels(root) = %d", n)
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.com", "example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "", true},
		{"badexample.com", "example.com", false},
		{"com", "example.com", false},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestSecondLevel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ns01.domaincontrol.com", "domaincontrol.com"},
		{"a.b.c.ovh.net", "ovh.net"},
		{"ovh.net", "ovh.net"},
		{"com", "com"},
		{"", ""},
	}
	for _, c := range cases {
		if got := SecondLevel(c.in); got != c.want {
			t.Errorf("SecondLevel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCompareCanonical(t *testing.T) {
	// Ordering example straight from RFC 4034 section 6.1.
	sorted := []string{
		"example",
		"a.example",
		"yljkjljk.a.example",
		"z.a.example",
		"zabc.a.example",
		"z.example",
	}
	for i := 0; i < len(sorted); i++ {
		for j := 0; j < len(sorted); j++ {
			got := CompareCanonical(sorted[i], sorted[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CompareCanonical(%q, %q) = %d, want %d", sorted[i], sorted[j], got, want)
			}
		}
	}
}

// randomName produces a random valid canonical name for property tests.
func randomName(r *rand.Rand) string {
	nLabels := r.Intn(4)
	labels := make([]string, nLabels)
	for i := range labels {
		n := 1 + r.Intn(10)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		labels[i] = string(b)
	}
	return strings.Join(labels, ".")
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		buf, err := appendName(nil, name, nil)
		if err != nil {
			return false
		}
		got, off, err := unpackName(buf, 0)
		return err == nil && got == name && off == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNameCompressionRoundTrip(t *testing.T) {
	cmp := newCompressor()
	var buf []byte
	var err error
	names := []string{"example.com", "www.example.com", "example.com", "mail.example.com"}
	var offs []int
	for _, n := range names {
		offs = append(offs, len(buf))
		if buf, err = appendName(buf, n, cmp); err != nil {
			t.Fatal(err)
		}
	}
	// The second occurrence of example.com must compress to a 2-octet pointer.
	if offs[2]+2 != offs[3] {
		t.Errorf("repeated name not compressed: offsets %v", offs)
	}
	for i, n := range names {
		got, _, err := unpackName(buf, offs[i])
		if err != nil {
			t.Fatalf("unpack %d: %v", i, err)
		}
		if got != n {
			t.Errorf("name %d = %q, want %q", i, got, n)
		}
	}
}

func TestUnpackNameHostile(t *testing.T) {
	// Self-referencing pointer must be rejected, not loop.
	if _, _, err := unpackName([]byte{0xc0, 0x00}, 0); err == nil {
		t.Error("self-pointer accepted")
	}
	// Forward pointer.
	if _, _, err := unpackName([]byte{0xc0, 0x04, 0, 0, 0}, 0); err == nil {
		t.Error("forward pointer accepted")
	}
	// Truncated label.
	if _, _, err := unpackName([]byte{5, 'a', 'b'}, 0); err == nil {
		t.Error("truncated label accepted")
	}
	// Truncated pointer.
	if _, _, err := unpackName([]byte{0xc0}, 0); err == nil {
		t.Error("truncated pointer accepted")
	}
	// Unsupported label type.
	if _, _, err := unpackName([]byte{0x80, 0x00}, 0); err == nil {
		t.Error("label type 0x80 accepted")
	}
	// A pointer chain that expands a name beyond 255 octets must be caught.
	var msg []byte
	label := append([]byte{63}, []byte(strings.Repeat("x", 63))...)
	for i := 0; i < 3; i++ {
		msg = append(msg, label...)
	}
	msg = append(msg, label...)
	msg = append(msg, 0xc0, 0x00) // points back to the start: 5 x 64 octets total
	if _, _, err := unpackName(msg, 64*3); err == nil {
		t.Error("over-long expanded name accepted")
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels(""); got != nil {
		t.Errorf("SplitLabels(root) = %v", got)
	}
	if got := SplitLabels("a.b"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("SplitLabels = %v", got)
	}
}
