package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"unsafe"
)

// hostLittleEndian gates the zero-copy column views: the file is always
// little-endian, so reinterpreting its bytes as int32/uint32 slices is
// only legal on a little-endian host.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// Load reads a saved world index from path. Where the platform supports
// it the file is memory-mapped and the columns and strings are zero-copy
// views into the mapping — loading is O(validation), resident memory is
// whatever the page cache keeps warm, and a population larger than RAM
// degrades gracefully instead of OOMing. Call Index.Close to release the
// mapping. On platforms without mmap (or for misaligned files) it falls
// back to reading and copying.
//
// Every section's CRC is verified and every cross-reference (ID ranges,
// offset monotonicity, column lengths) is validated before use: a
// truncated, corrupted, or version-skewed file returns a pointed error,
// never a panic or garbage data.
func Load(path string) (*Index, map[string]string, error) {
	if mmapSupported && hostLittleEndian {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		data, merr := mmapFile(f, int(st.Size()))
		f.Close() // the mapping outlives the descriptor
		if merr == nil {
			x, meta, err := decode(data, true)
			if err != nil {
				munmap(data)
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			x.mapped = data
			return x, meta, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	x, meta, err := LoadBytes(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return x, meta, nil
}

// LoadBytes decodes a saved world from memory, copying out of data: the
// caller may reuse or discard data afterwards. It performs the same full
// validation as Load and is the fuzzing entry point for the reader.
func LoadBytes(data []byte) (*Index, map[string]string, error) {
	return decode(data, false)
}

// section is one validated payload's bounds within the file.
type section struct {
	off, n int
}

func (s section) bytes(data []byte) []byte { return data[s.off : s.off+s.n] }

// parseSections validates the header and walks the section framing,
// checking bounds and CRCs. Unknown or duplicate tags are errors — a
// newer format version fails here instead of half-loading.
func parseSections(data []byte) (map[string]section, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("colstore: world file truncated: %d bytes, want at least a 16-byte header", len(data))
	}
	if string(data[:8]) != worldMagic {
		return nil, fmt.Errorf("colstore: not a world file (magic %q, want %q)", data[:8], worldMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != worldVersion {
		return nil, fmt.Errorf("colstore: world format version %d, this build reads version %d", v, worldVersion)
	}
	if m := binary.LittleEndian.Uint32(data[12:16]); m != endianMarker {
		return nil, fmt.Errorf("colstore: bad endianness marker %#x, want %#x", m, endianMarker)
	}
	known := make(map[string]bool, len(sectionOrder))
	for _, tag := range sectionOrder {
		known[tag] = true
	}
	secs := make(map[string]section, len(sectionOrder))
	off := 16
	for off < len(data) {
		if len(data)-off < 16 {
			return nil, fmt.Errorf("colstore: truncated section header at byte %d", off)
		}
		tag := string(data[off : off+8])
		plen64 := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if !known[tag] {
			return nil, fmt.Errorf("colstore: unknown section %q at byte %d (newer format version?)", strings.TrimRight(tag, "\x00"), off)
		}
		if _, dup := secs[tag]; dup {
			return nil, fmt.Errorf("colstore: duplicate section %q", strings.TrimRight(tag, "\x00"))
		}
		if plen64 > uint64(len(data)-off-16) {
			return nil, fmt.Errorf("colstore: section %q claims %d payload bytes, only %d remain (truncated?)",
				strings.TrimRight(tag, "\x00"), plen64, len(data)-off-16)
		}
		plen := int(plen64)
		payloadOff := off + 16
		pad := (8 - plen%8) % 8
		trailerOff := payloadOff + plen + pad
		if len(data)-trailerOff < 8 {
			return nil, fmt.Errorf("colstore: section %q is missing its CRC trailer", strings.TrimRight(tag, "\x00"))
		}
		want := binary.LittleEndian.Uint32(data[trailerOff : trailerOff+4])
		if got := crc32.Checksum(data[payloadOff:payloadOff+plen], worldCRC); got != want {
			return nil, fmt.Errorf("colstore: section %q CRC mismatch: file says %08x, payload hashes to %08x",
				strings.TrimRight(tag, "\x00"), want, got)
		}
		secs[tag] = section{off: payloadOff, n: plen}
		off = trailerOff + 8
	}
	for _, tag := range sectionOrder {
		if _, ok := secs[tag]; !ok {
			return nil, fmt.Errorf("colstore: world file is missing section %q", strings.TrimRight(tag, "\x00"))
		}
	}
	return secs, nil
}

// decode validates and materializes an Index from a parsed file. With
// zeroCopy the integer columns and strings alias data (which must stay
// alive and little-endian-interpretable); otherwise everything is copied.
func decode(data []byte, zeroCopy bool) (*Index, map[string]string, error) {
	secs, err := parseSections(data)
	if err != nil {
		return nil, nil, err
	}
	meta, err := decodeMeta(secs[secMeta].bytes(data))
	if err != nil {
		return nil, nil, err
	}

	// Population size is structural: the flags column is one byte per
	// domain, and every other column must agree with it.
	n := secs[secFlags].n
	for _, c := range []struct {
		tag   string
		width int
	}{
		{secOpID, 4}, {secTLDID, 2}, {secRegID, 4},
		{secCreated, 4}, {secKeyDay, 4}, {secDSDay, 4},
	} {
		if secs[c.tag].n != c.width*n {
			return nil, nil, fmt.Errorf("colstore: column %q is %d bytes, want %d for %d domains",
				strings.TrimRight(c.tag, "\x00"), secs[c.tag].n, c.width*n, n)
		}
	}

	ops, err := unpackStrings(data, secs[secOps], secs[secOpsOff], 4, -1, "operator", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	nsHosts, err := unpackStrings(data, secs[secOpNS], secs[secOpNSOff], 4, len(ops), "NS-host", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	tlds, err := unpackStrings(data, secs[secTLDs], secs[secTLDsOff], 4, -1, "TLD", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	regs, err := unpackStrings(data, secs[secRegs], secs[secRegsOff], 4, -1, "registrar", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	names, err := unpackStrings(data, secs[secNames], secs[secNamesOff], 8, n, "name", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	if len(tlds) > 1<<16 {
		return nil, nil, fmt.Errorf("colstore: %d TLDs overflow the 16-bit TLD ID column", len(tlds))
	}

	x := &Index{
		names:   names,
		opID:    unpackUint32(data, secs[secOpID], zeroCopy),
		tldID:   unpackUint16(data, secs[secTLDID], zeroCopy),
		regID:   unpackUint32(data, secs[secRegID], zeroCopy),
		created: unpackInt32(data, secs[secCreated], zeroCopy),
		keyDay:  unpackInt32(data, secs[secKeyDay], zeroCopy),
		dsDay:   unpackInt32(data, secs[secDSDay], zeroCopy),
		flags:   secs[secFlags].bytes(data),
		ops:     ops,
		tlds:    tlds,
		regs:    regs,
	}
	if !zeroCopy {
		x.flags = append([]uint8(nil), x.flags...)
	}

	// Cross-reference validation: every ID must land inside its intern
	// table and every flag byte must be known, or downstream code would
	// index out of bounds / misclassify.
	for i := 0; i < n; i++ {
		if int(x.opID[i]) >= len(ops) {
			return nil, nil, fmt.Errorf("colstore: domain %d references operator %d of %d", i, x.opID[i], len(ops))
		}
		if int(x.tldID[i]) >= len(tlds) {
			return nil, nil, fmt.Errorf("colstore: domain %d references TLD %d of %d", i, x.tldID[i], len(tlds))
		}
		if int(x.regID[i]) >= len(regs) {
			return nil, nil, fmt.Errorf("colstore: domain %d references registrar %d of %d", i, x.regID[i], len(regs))
		}
		if x.flags[i]&^(flagBroken|flagExpired) != 0 {
			return nil, nil, fmt.Errorf("colstore: domain %d has unknown flag bits %#x (newer format version?)", i, x.flags[i])
		}
	}

	// Rebuild the intern maps; duplicate table entries would silently
	// shadow each other there, so reject them.
	x.opIDs = make(map[string]uint32, len(ops))
	for i, op := range ops {
		if _, dup := x.opIDs[op]; dup {
			return nil, nil, fmt.Errorf("colstore: duplicate operator %q in intern table", op)
		}
		x.opIDs[op] = uint32(i)
	}
	x.tldIDs = make(map[string]uint16, len(tlds))
	for i, tld := range tlds {
		if _, dup := x.tldIDs[tld]; dup {
			return nil, nil, fmt.Errorf("colstore: duplicate TLD %q in intern table", tld)
		}
		x.tldIDs[tld] = uint16(i)
	}
	x.opNS = make([][]string, len(ops))
	for i, host := range nsHosts {
		x.opNS[i] = []string{host}
	}

	// fullDay is derived state (see Builder.Add); recompute rather than
	// trust the file.
	x.fullDay = make([]int32, n)
	for i := 0; i < n; i++ {
		full := impossible
		if x.flags[i] == 0 {
			full = x.keyDay[i]
			if x.dsDay[i] > full {
				full = x.dsDay[i]
			}
		}
		x.fullDay[i] = full
	}

	x.finish()
	return x, meta, nil
}

// decodeMeta parses the k=v annotation block.
func decodeMeta(payload []byte) (map[string]string, error) {
	meta := map[string]string{}
	if len(payload) == 0 {
		return meta, nil
	}
	body := string(payload)
	if !strings.HasSuffix(body, "\n") {
		return nil, fmt.Errorf("colstore: META section is not newline-terminated")
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		k, v, ok := strings.Cut(line, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("colstore: malformed META line %q", line)
		}
		meta[k] = v
	}
	return meta, nil
}

// unpackStrings rebuilds a string table from its blob + offsets sections.
// offWidth is 4 or 8; wantCount, when >= 0, pins the expected entry count.
// Offsets must start at 0, be non-decreasing, and end at the blob length.
func unpackStrings(data []byte, blob, offs section, offWidth, wantCount int, what string, zeroCopy bool) ([]string, error) {
	if offs.n%offWidth != 0 || offs.n/offWidth < 1 {
		return nil, fmt.Errorf("colstore: %s offsets section is %d bytes, not a positive multiple of %d", what, offs.n, offWidth)
	}
	count := offs.n/offWidth - 1
	if wantCount >= 0 && count != wantCount {
		return nil, fmt.Errorf("colstore: %d %s entries, want %d", count, what, wantCount)
	}
	ob := offs.bytes(data)
	at := func(i int) uint64 {
		if offWidth == 4 {
			return uint64(binary.LittleEndian.Uint32(ob[4*i:]))
		}
		return binary.LittleEndian.Uint64(ob[8*i:])
	}
	if at(0) != 0 {
		return nil, fmt.Errorf("colstore: %s offsets start at %d, want 0", what, at(0))
	}
	if at(count) != uint64(blob.n) {
		return nil, fmt.Errorf("colstore: %s offsets end at %d, blob is %d bytes", what, at(count), blob.n)
	}
	bb := blob.bytes(data)
	out := make([]string, count)
	prev := uint64(0)
	for i := 0; i < count; i++ {
		end := at(i + 1)
		if end < prev || end > uint64(blob.n) {
			return nil, fmt.Errorf("colstore: %s offsets are not monotonic at entry %d", what, i)
		}
		if zeroCopy && end > prev {
			out[i] = unsafe.String(&bb[prev], int(end-prev))
		} else {
			out[i] = string(bb[prev:end])
		}
		prev = end
	}
	return out, nil
}

// The integer-column unpackers: zero-copy reinterpretation of the mapped
// bytes on little-endian hosts (payloads are 8-byte aligned by the
// framing), element-wise copy otherwise.

func unpackUint32(data []byte, s section, zeroCopy bool) []uint32 {
	if s.n == 0 {
		return nil
	}
	b := s.bytes(data)
	if zeroCopy {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), s.n/4)
	}
	out := make([]uint32, s.n/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func unpackUint16(data []byte, s section, zeroCopy bool) []uint16 {
	if s.n == 0 {
		return nil
	}
	b := s.bytes(data)
	if zeroCopy {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), s.n/2)
	}
	out := make([]uint16, s.n/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

func unpackInt32(data []byte, s section, zeroCopy bool) []int32 {
	if s.n == 0 {
		return nil
	}
	b := s.bytes(data)
	if zeroCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), s.n/4)
	}
	out := make([]int32, s.n/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
