// Package colstore is the columnar incremental analytics engine for the
// longitudinal pipeline. The paper's core measurement is O(days × domains)
// — 21 months of daily snapshots over ~150M gTLD SLDs, re-classified into
// none/partial/full and re-grouped by DNS operator every day — and the
// naive reproduction paid that cost by materializing a fresh
// []dataset.Record per day and rebuilding string-keyed maps per analysis.
//
// colstore instead interns operators, TLDs and registrars into dense
// integer IDs once at build time and stores each domain as fixed-width
// columns (opID, tldID, keyDay, dsDay, fullDay, flags). On top of that
// layout it provides:
//
//   - incremental time series: per-(operator, TLD) key/DS/full event days
//     are sorted once, so an N-day series is a cursor sweep costing
//     O(group events + days) instead of O(days × all domains);
//   - sharded parallel aggregation: CountByOperator/CDF/Overview tally
//     into dense per-worker int32 scratch counters (recycled through a
//     pool) and merge, with no per-day map churn;
//   - cheap snapshot materialization: a prebuilt record template is
//     memcpy'd and only the four day-dependent booleans are patched, and
//     every record of an operator shares one NS-host slice.
//
// Results are bit-identical to the legacy record-at-a-time path, which is
// retained as the oracle (see tldsim.World.SnapshotAtLegacy /
// SeriesForLegacy and the equivalence property tests).
package colstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// ErrClosed reports use of an Index after Close released its memory
// mapping. The context-aware query variants (SnapshotCtx, SeriesCtx,
// MaterializeCtx) and Save return it; the legacy error-free variants
// panic with a pointed message instead, since reading an unmapped column
// would otherwise fault the whole process.
var ErrClosed = errors.New("colstore: index is closed")

// never mirrors simtime.Never in the int32 day columns (1<<30 fits).
const never = int32(simtime.Never)

// impossible marks an event that cannot occur at any day, including Never
// itself (a broken chain validating). It must compare greater than never.
const impossible = int32(1<<31 - 1)

// Domain is one domain's full history, the ingest row for a Builder.
type Domain struct {
	Name, TLD, Operator, Registrar string
	// NSHost is the operator's concrete nameserver hostname; every domain
	// of an operator shares one interned []string{NSHost} slice.
	NSHost                 string
	Created, KeyDay, DSDay simtime.Day
	BrokenDS, ExpiredSig   bool
}

const (
	flagBroken  uint8 = 1 << 0
	flagExpired uint8 = 1 << 1
)

// Builder accumulates domains and freezes them into an Index.
type Builder struct {
	idx    *Index
	opIDs  map[string]uint32
	tldIDs map[string]uint16
	regIDs map[string]uint32
}

// NewBuilder returns a builder with capacity hint n.
func NewBuilder(n int) *Builder {
	return &Builder{
		idx: &Index{
			names:   make([]string, 0, n),
			opID:    make([]uint32, 0, n),
			tldID:   make([]uint16, 0, n),
			regID:   make([]uint32, 0, n),
			created: make([]int32, 0, n),
			keyDay:  make([]int32, 0, n),
			dsDay:   make([]int32, 0, n),
			fullDay: make([]int32, 0, n),
			flags:   make([]uint8, 0, n),
			opIDs:   make(map[string]uint32),
			tldIDs:  make(map[string]uint16),
		},
		opIDs:  make(map[string]uint32),
		tldIDs: make(map[string]uint16),
		regIDs: make(map[string]uint32),
	}
}

// Add appends one domain. Rows may arrive in any order; Build sorts the
// derived event lists, not the rows themselves.
func (b *Builder) Add(d Domain) {
	x := b.idx
	op, ok := b.opIDs[d.Operator]
	if !ok {
		op = uint32(len(x.ops))
		b.opIDs[d.Operator] = op
		x.opIDs[d.Operator] = op
		x.ops = append(x.ops, d.Operator)
		x.opNS = append(x.opNS, []string{d.NSHost})
	}
	tld, ok := b.tldIDs[d.TLD]
	if !ok {
		tld = uint16(len(x.tlds))
		b.tldIDs[d.TLD] = tld
		x.tldIDs[d.TLD] = tld
		x.tlds = append(x.tlds, d.TLD)
	}
	reg, ok := b.regIDs[d.Registrar]
	if !ok {
		reg = uint32(len(x.regs))
		b.regIDs[d.Registrar] = reg
		x.regs = append(x.regs, d.Registrar)
	}
	var fl uint8
	if d.BrokenDS {
		fl |= flagBroken
	}
	if d.ExpiredSig {
		fl |= flagExpired
	}
	// fullDay is the precomputed day full deployment begins: a domain is
	// ChainValid once both halves are in place and neither breakage flag
	// is set, i.e. from max(KeyDay, DSDay) on. A broken/expired chain can
	// never validate, which is a strictly stronger condition than "has not
	// happened yet": a query AT day Never matches Never-valued events (the
	// legacy `KeyDay <= day` comparison does), so the impossible case gets
	// its own sentinel above never.
	full := impossible
	if fl == 0 {
		full = int32(d.KeyDay)
		if int32(d.DSDay) > full {
			full = int32(d.DSDay)
		}
	}
	x.names = append(x.names, d.Name)
	x.opID = append(x.opID, op)
	x.tldID = append(x.tldID, tld)
	x.regID = append(x.regID, reg)
	x.created = append(x.created, clampDay(d.Created))
	x.keyDay = append(x.keyDay, int32(d.KeyDay))
	x.dsDay = append(x.dsDay, int32(d.DSDay))
	x.fullDay = append(x.fullDay, full)
	x.flags = append(x.flags, fl)
}

// Build freezes the columns: the per-(operator, TLD) event groups are
// bucketed and day-sorted, and the builder must not be reused. The record
// template is built lazily on the first snapshot.
func (b *Builder) Build() *Index {
	x := b.idx
	b.idx = nil
	x.finish()
	return x
}

// finish derives everything a frozen column set needs to serve queries:
// population size, the day-sorted event groups, and the scratch-counter
// pool. It is shared by the sequential Builder, the parallel shard merge,
// and the on-disk loader, so every construction path yields an identical
// engine.
func (x *Index) finish() {
	x.n = len(x.names)

	// Bucket domains into (operator, TLD) event groups. Group identity is
	// opID<<16|tldID; the per-operator group lists let a tld=="" query
	// sweep an operator's few TLD groups without touching anyone else.
	x.groupIDs = make(map[uint64]int)
	x.opGroups = make([][]int, len(x.ops))
	for i := 0; i < x.n; i++ {
		k := groupKey(x.opID[i], x.tldID[i])
		gi, ok := x.groupIDs[k]
		if !ok {
			gi = len(x.groups)
			x.groupIDs[k] = gi
			x.groups = append(x.groups, eventGroup{op: x.opID[i], tld: x.tldID[i]})
			x.opGroups[x.opID[i]] = append(x.opGroups[x.opID[i]], gi)
		}
		g := &x.groups[gi]
		g.total++
		if x.keyDay[i] != never {
			g.keyDays = append(g.keyDays, x.keyDay[i])
		}
		if x.dsDay[i] != never {
			g.dsDays = append(g.dsDays, x.dsDay[i])
			if x.fullDay[i] != impossible {
				// Mirrors the legacy event list exactly: a DS-holding,
				// unbroken chain contributes max(KeyDay, DSDay) — which may
				// itself be Never when the zone is never signed.
				g.fullDays = append(g.fullDays, x.fullDay[i])
			}
		}
	}
	for gi := range x.groups {
		g := &x.groups[gi]
		sortInt32(g.keyDays)
		sortInt32(g.dsDays)
		sortInt32(g.fullDays)
	}
	x.scratch.New = func() any {
		s := make([]int32, len(x.ops))
		return &s
	}
}

// ensureTemplate builds the day-independent record fields on first use.
// Lazy construction keeps loaded-from-disk and merge-built indexes cheap
// until someone actually materializes a snapshot.
func (x *Index) ensureTemplate() {
	x.tmplOnce.Do(func() {
		x.template = make([]dataset.Record, x.n)
		for i := range x.template {
			x.template[i] = dataset.Record{
				Domain:   x.names[i],
				TLD:      x.tlds[x.tldID[i]],
				NSHosts:  x.opNS[x.opID[i]],
				Operator: x.ops[x.opID[i]],
			}
		}
	})
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func groupKey(op uint32, tld uint16) uint64 {
	return uint64(op)<<16 | uint64(tld)
}

// eventGroup is one (operator, TLD) population's day-sorted adoption
// events; fullDays carries only never-broken chains (a subset of dsDays).
type eventGroup struct {
	op       uint32
	tld      uint16
	total    int
	keyDays  []int32
	dsDays   []int32
	fullDays []int32
}

// Index is the frozen columnar view of one domain population.
type Index struct {
	n int

	// Per-domain fixed-width columns.
	names   []string
	opID    []uint32
	tldID   []uint16
	regID   []uint32
	created []int32
	keyDay  []int32
	dsDay   []int32
	fullDay []int32
	flags   []uint8

	// Intern tables.
	ops    []string
	tlds   []string
	regs   []string
	opNS   [][]string
	opIDs  map[string]uint32
	tldIDs map[string]uint16

	// Lazily built day-independent record fields for Snapshot.
	tmplOnce sync.Once
	template []dataset.Record

	// mapped is the mmap'd file backing a zero-copy Load; Close unmaps it.
	mapped []byte
	// closed latches after Close: a long-running daemon cycling worlds
	// across cache refreshes must get a pointed error (or panic) from a
	// use-after-Close, never a fault from reading unmapped memory.
	closed atomic.Bool

	// Materialized-view cache: the most recently projected days, shared
	// across callers. Projecting a day costs a full population pass and
	// ~100B/record of allocation; analyses overwhelmingly revisit the same
	// few days (usually the window end), so memoization turns the steady
	// state into a map hit.
	snapMu    sync.Mutex
	snapCache [snapCacheSize]*dataset.Snapshot

	// Incremental-series event groups.
	groups   []eventGroup
	groupIDs map[uint64]int
	opGroups [][]int

	// Recycled per-worker operator counters for parallel aggregation.
	scratch sync.Pool
}

// Len returns the domain population size.
func (x *Index) Len() int { return x.n }

// Operators returns the number of distinct operators.
func (x *Index) Operators() int { return len(x.ops) }

// TLDs returns the interned TLD names in first-occurrence order, copied
// out of the index so the caller may hold them past Close.
func (x *Index) TLDs() []string {
	x.mustOpen()
	return append([]string(nil), x.tlds...)
}

// Target returns row i's (domain name, TLD) pair without gathering the
// rest of the row — the cursor accessor the streaming sweep's
// scan.TargetSource contract is built on. Both strings view the index's
// backing (possibly an mmap), so they are valid only while the index is
// open; a chunked sweep that flushes records before Close never notices.
func (x *Index) Target(i int) (domain, tld string) {
	x.mustOpen()
	return x.names[i], x.tlds[x.tldID[i]]
}

// Row projects domain i back into its ingest form — the inverse of
// Builder.Add. Day sentinels round-trip (never → simtime.Never); fullDay
// is derived state and needs no inverse.
func (x *Index) Row(i int) Domain {
	x.mustOpen()
	toDay := func(v int32) simtime.Day {
		if v == never {
			return simtime.Never
		}
		return simtime.Day(v)
	}
	return Domain{
		Name:       x.names[i],
		TLD:        x.tlds[x.tldID[i]],
		Operator:   x.ops[x.opID[i]],
		Registrar:  x.regs[x.regID[i]],
		NSHost:     x.opNS[x.opID[i]][0],
		Created:    toDay(x.created[i]),
		KeyDay:     toDay(x.keyDay[i]),
		DSDay:      toDay(x.dsDay[i]),
		BrokenDS:   x.flags[i]&flagBroken != 0,
		ExpiredSig: x.flags[i]&flagExpired != 0,
	}
}

// Close releases the memory mapping of a zero-copy loaded index. After
// Close every string and column view into the mapping is invalid: queries
// through the context-aware variants return ErrClosed, the legacy
// error-free variants panic with a pointed message, and a second Close is
// itself an error — both are caller lifetime bugs that would otherwise
// surface as a fault deep inside a column scan. For indexes built in
// memory Close releases nothing but the misuse contract is identical, so
// code paths behave the same however their world was constructed.
func (x *Index) Close() error {
	if x.closed.Swap(true) {
		return fmt.Errorf("colstore: Close of already-closed index: %w", ErrClosed)
	}
	if x.mapped == nil {
		return nil
	}
	m := x.mapped
	x.mapped = nil
	return munmap(m)
}

// mustOpen guards the legacy error-free query surface against
// use-after-Close: reading a column of an unmapped world is a process
// fault, so misuse dies here with a message that names the bug instead.
func (x *Index) mustOpen() {
	if x.closed.Load() {
		panic("colstore: use of closed Index: Close already released its backing; keep the world open for the lifetime of its queries (or use the Ctx variants, which return ErrClosed)")
	}
}

// snapCacheSize bounds the materialized-view cache (MRU first).
const snapCacheSize = 2

// Snapshot materializes the whole population at one day. The first
// projection of a day is a single fused pass — each record is the
// prebuilt template entry with the day-dependent booleans patched in
// registers, no per-record slice or string allocation — and the result is
// memoized, so repeated analyses of the same day share one view.
//
// The returned snapshot is that shared view: callers must treat it as
// read-only (in particular, do not Canonicalize it). Use Materialize for
// a private copy.
func (x *Index) Snapshot(day simtime.Day) *dataset.Snapshot {
	x.mustOpen()
	snap, _ := x.SnapshotCtx(context.Background(), day)
	return snap
}

// SnapshotCtx is Snapshot with cancellation: a dropped request stops the
// population pass mid-scan instead of burning a full projection, and a
// closed index answers ErrClosed instead of faulting. The cache hit path
// never blocks on the context.
func (x *Index) SnapshotCtx(ctx context.Context, day simtime.Day) (*dataset.Snapshot, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	x.snapMu.Lock()
	defer x.snapMu.Unlock()
	for i, snap := range x.snapCache {
		if snap != nil && snap.Day == day {
			// Move to front so the working set's days stay resident.
			copy(x.snapCache[1:i+1], x.snapCache[:i])
			x.snapCache[0] = snap
			return snap, nil
		}
	}
	snap, err := x.materializeCtx(ctx, day)
	if err != nil {
		return nil, err
	}
	copy(x.snapCache[1:], x.snapCache[:snapCacheSize-1])
	x.snapCache[0] = snap
	return snap, nil
}

// Materialize projects the population at one day into a freshly allocated
// snapshot the caller owns, bypassing the shared-view cache.
func (x *Index) Materialize(day simtime.Day) *dataset.Snapshot {
	x.mustOpen()
	snap, _ := x.materializeCtx(context.Background(), day)
	return snap
}

// MaterializeCtx is Materialize with cancellation and ErrClosed
// reporting, for callers serving interactive requests off a long-lived
// world.
func (x *Index) MaterializeCtx(ctx context.Context, day simtime.Day) (*dataset.Snapshot, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	return x.materializeCtx(ctx, day)
}

// cancelStride is how many rows (or series steps) a cancellable scan
// processes between context polls: small enough that a dropped request
// stops burning CPU within microseconds, large enough that the poll is
// invisible in throughput.
const cancelStride = 32 << 10

func (x *Index) materializeCtx(ctx context.Context, day simtime.Day) (*dataset.Snapshot, error) {
	x.ensureTemplate()
	recs := make([]dataset.Record, x.n)
	d := clampDay(day)
	for i := range recs {
		if i%cancelStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		r := x.template[i]
		if x.keyDay[i] <= d {
			r.HasDNSKEY = true
			r.HasRRSIG = true
		}
		if x.dsDay[i] <= d {
			r.HasDS = true
		}
		if x.fullDay[i] <= d {
			r.ChainValid = true
		}
		recs[i] = r
	}
	return &dataset.Snapshot{Day: day, Records: recs}, nil
}

// Series computes the daily deployment series for one operator (all its
// TLDs when tld == "") by sweeping cursors over the day-sorted event
// groups: O(group events + days) total, independent of the rest of the
// population. Unknown operators/TLDs yield all-zero points, matching the
// legacy scan.
func (x *Index) Series(operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	x.mustOpen()
	out, _ := x.SeriesCtx(context.Background(), operator, tld, from, to, stepDays)
	return out
}

// SeriesCtx is Series with cancellation: the day sweep polls the context
// every cancelStride steps, so an API request dropped mid-series stops
// paying for the rest of the range, and a closed index answers ErrClosed.
func (x *Index) SeriesCtx(ctx context.Context, operator, tld string, from, to simtime.Day, stepDays int) ([]analysis.SeriesPoint, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	if stepDays <= 0 {
		stepDays = 1
	}
	// One slice carries both the resolved groups and their advancing
	// cursors, sized exactly, so a whole sweep costs two allocations.
	type cursor struct {
		g       *eventGroup
		k, d, f int
	}
	var curs []cursor
	if opID, ok := x.opIDs[operator]; ok {
		if tld == "" {
			ogs := x.opGroups[opID]
			curs = make([]cursor, len(ogs))
			for i, gi := range ogs {
				curs[i].g = &x.groups[gi]
			}
		} else if tldID, ok := x.tldIDs[tld]; ok {
			if gi, ok := x.groupIDs[groupKey(opID, tldID)]; ok {
				curs = []cursor{{g: &x.groups[gi]}}
			}
		}
	}
	total := 0
	for i := range curs {
		total += curs[i].g.total
	}
	var out []analysis.SeriesPoint
	if from <= to {
		out = make([]analysis.SeriesPoint, 0, int(to-from)/stepDays+1)
	}
	// Each cursor only ever advances, so the whole sweep touches every
	// event at most once regardless of the day range.
	withKey, withDS, full := 0, 0, 0
	steps := 0
	for day := from; day <= to; day += simtime.Day(stepDays) {
		if steps%cancelStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		steps++
		d := clampDay(day)
		for i := range curs {
			c := &curs[i]
			g := c.g
			for c.k < len(g.keyDays) && g.keyDays[c.k] <= d {
				c.k++
				withKey++
			}
			for c.d < len(g.dsDays) && g.dsDays[c.d] <= d {
				c.d++
				withDS++
			}
			for c.f < len(g.fullDays) && g.fullDays[c.f] <= d {
				c.f++
				full++
			}
		}
		out = append(out, analysis.SeriesPoint{
			Day:        day,
			Total:      total,
			WithDNSKEY: withKey,
			WithDS:     withDS,
			Full:       full,
		})
	}
	return out, nil
}

// clampDay converts a simtime.Day to the int32 column domain. Days at or
// past Never (including Never itself) saturate to never, preserving the
// "has not happened" comparison semantics.
func clampDay(day simtime.Day) int32 {
	if day >= simtime.Never {
		return never
	}
	return int32(day)
}

// DomainsByRegistrar tallies population per named registrar in the given
// TLDs (all TLDs when none given), via the dense registrar ID column.
func (x *Index) DomainsByRegistrar(tlds ...string) map[string]int {
	return x.registrarCounts(never, tlds)
}

// DNSKEYByRegistrar tallies DNSKEY-publishing domains per named registrar
// at the given day.
func (x *Index) DNSKEYByRegistrar(day simtime.Day, tlds ...string) map[string]int {
	return x.registrarCounts(clampDay(day), tlds)
}

// registrarCounts is the shared dense tally: keyedBy==never counts every
// domain, otherwise only those with keyDay <= keyedBy.
func (x *Index) registrarCounts(keyedBy int32, tlds []string) map[string]int {
	x.mustOpen()
	tldMask := x.tldMask(tlds)
	counts := make([]int32, len(x.regs))
	for i := 0; i < x.n; i++ {
		if x.regs[x.regID[i]] == "" {
			continue
		}
		if tldMask != nil && !tldMask[x.tldID[i]] {
			continue
		}
		if keyedBy != never && x.keyDay[i] > keyedBy {
			continue
		}
		counts[x.regID[i]]++
	}
	out := map[string]int{}
	for id, n := range counts {
		if n > 0 {
			out[x.regs[id]] = int(n)
		}
	}
	return out
}

// tldMask resolves TLD names to a dense bitmap over interned IDs; nil
// means "all TLDs". Unknown names simply match nothing.
func (x *Index) tldMask(tlds []string) []bool {
	if len(tlds) == 0 {
		return nil
	}
	mask := make([]bool, len(x.tlds))
	for _, t := range tlds {
		if id, ok := x.tldIDs[t]; ok {
			mask[id] = true
		}
	}
	return mask
}
