package colstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// BenchResult is one measured benchmark in a Baseline file.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Baseline is the BENCH_colstore.json schema: the colstore engine's
// measured trajectory, emitted by cmd/regsec-bench and archived by CI so
// future PRs can compare against it.
type Baseline struct {
	Schema       string  `json:"schema"`
	GoMaxProcs   int     `json:"go_max_procs"`
	ScaleDivisor float64 `json:"scale_divisor"`
	Seed         int64   `json:"seed"`
	Domains      int     `json:"domains"`
	Operators    int     `json:"operators"`
	// Benchmarks pairs colstore and legacy variants of each workload.
	Benchmarks []BenchResult `json:"benchmarks"`
	// Speedups maps workload name to legacy-ns-per-op / colstore-ns-per-op.
	Speedups map[string]float64 `json:"speedups"`
}

// BaselineSchema versions the JSON layout.
const BaselineSchema = "regsec-colstore-bench/v1"

// ComputeSpeedups fills Speedups from Benchmarks: every "<work>/legacy"
// entry with a "<work>/colstore" sibling yields one ratio.
func (b *Baseline) ComputeSpeedups() {
	ns := map[string]float64{}
	for _, r := range b.Benchmarks {
		ns[r.Name] = r.NsPerOp
	}
	b.Speedups = map[string]float64{}
	for _, r := range b.Benchmarks {
		work, ok := cutSuffix(r.Name, "/colstore")
		if !ok {
			continue
		}
		if legacy, ok := ns[work+"/legacy"]; ok && r.NsPerOp > 0 {
			b.Speedups[work] = legacy / r.NsPerOp
		}
	}
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) < len(suffix) || s[len(s)-len(suffix):] != suffix {
		return s, false
	}
	return s[:len(s)-len(suffix)], true
}

// WriteFile atomically writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	if b.Schema == "" {
		b.Schema = BaselineSchema
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("colstore: encoding baseline: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadBaseline loads a previously written baseline (for trajectory
// comparisons in future PRs).
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(filepath.Clean(path))
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("colstore: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}
