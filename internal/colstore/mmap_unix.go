//go:build unix

package colstore

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only. An empty file maps to an
// empty (nil-backed) slice so callers need no special case.
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
