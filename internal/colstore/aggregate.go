package colstore

import (
	"runtime"
	"sort"
	"sync"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/simtime"
)

// Class selects a deployment population for an aggregation, mirroring the
// analysis package's record filters over the columnar layout.
type Class uint8

const (
	// ClassAny matches every measured domain (the "all domains" CDF).
	ClassAny Class = iota
	// ClassDNSKEY matches domains publishing at least one DNSKEY.
	ClassDNSKEY
	// ClassPartial matches DNSKEY-but-no-DS domains.
	ClassPartial
	// ClassFull matches complete, matching chains.
	ClassFull
	// ClassBroken matches domains with a DS that validates nothing.
	ClassBroken
	// ClassNone matches domains with neither DNSKEY nor DS.
	ClassNone
)

// matches classifies domain i at day d. The branch structure mirrors
// dnssec.Classify(hasDNSKEY, hasDS, chainValid) exactly, with chainValid
// folded into the precomputed fullDay column.
func (x *Index) matches(i int, d int32, c Class) bool {
	switch c {
	case ClassAny:
		return true
	case ClassDNSKEY:
		return x.keyDay[i] <= d
	case ClassPartial:
		return x.keyDay[i] <= d && x.dsDay[i] > d
	case ClassFull:
		return x.fullDay[i] <= d
	case ClassBroken:
		return x.dsDay[i] <= d && x.fullDay[i] > d
	case ClassNone:
		return x.keyDay[i] > d && x.dsDay[i] > d
	}
	return false
}

// aggShardMin is the smallest per-worker slice worth a goroutine; tiny
// populations aggregate serially.
const aggShardMin = 16 << 10

// operatorCounts tallies matching domains per interned operator at day d,
// sharding the column scan across workers. Each worker counts into a
// recycled dense []int32 (no string keys, no maps) and the shards merge at
// the end.
func (x *Index) operatorCounts(d int32, c Class, tldMask []bool) []int32 {
	workers := runtime.GOMAXPROCS(0)
	if max := x.n / aggShardMin; workers > max {
		workers = max
	}
	out := make([]int32, len(x.ops))
	if workers <= 1 {
		x.countRange(0, x.n, d, c, tldMask, out)
		return out
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		stride = (x.n + workers - 1) / workers
	)
	for w := 0; w < workers; w++ {
		lo := w * stride
		hi := lo + stride
		if hi > x.n {
			hi = x.n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			bufp := x.scratch.Get().(*[]int32)
			buf := *bufp
			for i := range buf {
				buf[i] = 0
			}
			x.countRange(lo, hi, d, c, tldMask, buf)
			mu.Lock()
			for i, n := range buf {
				out[i] += n
			}
			mu.Unlock()
			x.scratch.Put(bufp)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func (x *Index) countRange(lo, hi int, d int32, c Class, tldMask []bool, counts []int32) {
	for i := lo; i < hi; i++ {
		if tldMask != nil && !tldMask[x.tldID[i]] {
			continue
		}
		if x.matches(i, d, c) {
			counts[x.opID[i]]++
		}
	}
}

// CountByOperator tallies matching domains per operator at the given day,
// descending by count (operator name breaking ties) — identical output to
// analysis.CountByOperator over the materialized snapshot, without the
// snapshot or the string-keyed map.
func (x *Index) CountByOperator(day simtime.Day, c Class, tlds ...string) []analysis.OperatorCount {
	x.mustOpen()
	counts := x.operatorCounts(clampDay(day), c, x.tldMask(tlds))
	out := make([]analysis.OperatorCount, 0, len(counts))
	for id, n := range counts {
		if n > 0 {
			out = append(out, analysis.OperatorCount{Operator: x.ops[id], Count: int(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Operator < out[j].Operator
	})
	return out
}

// OperatorCDF computes the Figure 3 cumulative distribution of domains
// over operators ranked by size, identical to analysis.OperatorCDF.
func (x *Index) OperatorCDF(day simtime.Day, c Class, tlds ...string) []analysis.CDFPoint {
	counts := x.CountByOperator(day, c, tlds...)
	total := 0
	for _, cnt := range counts {
		total += cnt.Count
	}
	if total == 0 {
		return nil
	}
	out := make([]analysis.CDFPoint, len(counts))
	cum := 0
	for i, cnt := range counts {
		cum += cnt.Count
		out[i] = analysis.CDFPoint{
			Rank: i + 1, Operator: cnt.Operator, Count: cnt.Count,
			CumFrac: float64(cum) / float64(total),
		}
	}
	return out
}

// Overview computes the Table 1 per-TLD dataset summary at the given day,
// identical to analysis.Overview over the materialized snapshot. The scan
// shards across workers, each tallying four counters per requested TLD.
func (x *Index) Overview(day simtime.Day, tlds []string) []analysis.TLDOverview {
	x.mustOpen()
	d := clampDay(day)
	// Dense row index per interned TLD; -1 for TLDs not requested.
	rowOf := make([]int, len(x.tlds))
	for i := range rowOf {
		rowOf[i] = -1
	}
	for row, t := range tlds {
		if id, ok := x.tldIDs[t]; ok && rowOf[id] == -1 {
			rowOf[id] = row
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if max := x.n / aggShardMin; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	stride := (x.n + workers - 1) / workers
	shards := make([][][4]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * stride
		hi := lo + stride
		if hi > x.n {
			hi = x.n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tally := make([][4]int, len(tlds)) // total, dnskey, full, partial
			for i := lo; i < hi; i++ {
				row := rowOf[x.tldID[i]]
				if row < 0 {
					continue
				}
				tally[row][0]++
				hasKey := x.keyDay[i] <= d
				if hasKey {
					tally[row][1]++
				}
				if x.fullDay[i] <= d {
					tally[row][2]++
				} else if hasKey && x.dsDay[i] > d {
					tally[row][3]++
				}
			}
			shards[w] = tally
		}(w, lo, hi)
	}
	wg.Wait()
	out := make([]analysis.TLDOverview, len(tlds))
	for row, t := range tlds {
		var c [4]int
		for _, tally := range shards {
			if tally != nil {
				for k := 0; k < 4; k++ {
					c[k] += tally[row][k]
				}
			}
		}
		out[row] = analysis.TLDOverview{
			TLD:        t,
			Domains:    c[0],
			PctDNSKEY:  pct(c[1], c[0]),
			PctFull:    pct(c[2], c[0]),
			PctPartial: pct(c[3], c[0]),
		}
	}
	return out
}

// DSGapPct computes the share of DNSKEY-publishing domains without a DS at
// the given day — analysis.DSGapPct over the columns.
func (x *Index) DSGapPct(day simtime.Day, tlds ...string) float64 {
	x.mustOpen()
	d := clampDay(day)
	tldMask := x.tldMask(tlds)
	keyed, gap := 0, 0
	for i := 0; i < x.n; i++ {
		if tldMask != nil && !tldMask[x.tldID[i]] {
			continue
		}
		if x.keyDay[i] > d {
			continue
		}
		keyed++
		if x.dsDay[i] > d {
			gap++
		}
	}
	return pct(gap, keyed)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
