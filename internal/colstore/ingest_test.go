package colstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// observedDays renders a domain population into the daily observation
// snapshots a real measurement run would emit, one per sampled day.
func observedDays(domains []Domain, from, to simtime.Day, step int) []*dataset.Snapshot {
	var out []*dataset.Snapshot
	for d := from; d <= to; d += simtime.Day(step) {
		out = append(out, refSnapshot(domains, d))
	}
	return out
}

// ingestAll feeds every snapshot through one ingester.
func ingestAll(t *testing.T, g *Ingester, snaps []*dataset.Snapshot) {
	t.Helper()
	for _, snap := range snaps {
		if _, err := g.AppendDay(snap); err != nil {
			t.Fatal(err)
		}
	}
}

// saveBytes serializes a frozen index with a fixed meta block.
func saveBytes(t *testing.T, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.Save(&buf, map[string]string{"source": "ingest-test"}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestMatchesObservedOracle: after ingesting the full observation
// history, the frozen index materializes the same snapshot a direct
// observation of the final day produces — first-observation event days
// and latched flags reconstruct the measured reality.
func TestIngestMatchesObservedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	domains := randomDomains(rng, 300)
	final := simtime.Day(850)
	snaps := observedDays(domains, 0, final, 1)

	g := NewIngester()
	ingestAll(t, g, snaps)
	x := g.Freeze()

	got := x.Snapshot(final)
	want := refSnapshot(domains, final)
	if len(got.Records) != len(want.Records) {
		t.Fatalf("ingested %d domains, observed %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestIngestCrashResumeByteIdentity is the crash-safety oracle the chaos
// harness leans on: for every possible interruption point, persisting the
// prefix, reloading it, and replaying the remaining sections serializes
// byte-identically to a clean single-pass ingest.
func TestIngestCrashResumeByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	domains := randomDomains(rng, 200)
	snaps := observedDays(domains, 0, 840, 120)

	clean := NewIngester()
	ingestAll(t, clean, snaps)
	want := saveBytes(t, clean.Freeze())

	for k := 0; k <= len(snaps); k++ {
		pre := NewIngester()
		ingestAll(t, pre, snaps[:k])
		persisted := saveBytes(t, pre.Freeze())

		loaded, _, err := LoadBytes(persisted)
		if err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		resumed, err := NewIngesterFromIndex(loaded)
		if err != nil {
			t.Fatalf("split %d: %v", k, err)
		}
		ingestAll(t, resumed, snaps[k:])
		if got := saveBytes(t, resumed.Freeze()); !bytes.Equal(got, want) {
			t.Fatalf("split %d: resumed world diverges from clean single-pass build (%d vs %d bytes)", k, len(got), len(want))
		}
	}
}

// TestIngestResumeFromMmap resumes from an mmap-loaded world file and
// closes the source immediately — the deep copy must not alias the
// released mapping.
func TestIngestResumeFromMmap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	domains := randomDomains(rng, 150)
	snaps := observedDays(domains, 0, 800, 200)

	pre := NewIngester()
	ingestAll(t, pre, snaps[:2])
	path := filepath.Join(t.TempDir(), "world.rscw")
	if err := pre.Freeze().SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}

	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewIngesterFromIndex(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, resumed, snaps[2:])

	clean := NewIngester()
	ingestAll(t, clean, snaps)
	if got, want := saveBytes(t, resumed.Freeze()), saveBytes(t, clean.Freeze()); !bytes.Equal(got, want) {
		t.Fatal("mmap-resumed world diverges from clean build")
	}
}

// TestIngestIdempotentDay: re-ingesting an already-applied section (the
// at-least-once replay after a crash between ingest and watermark) is a
// no-op for the serialized state.
func TestIngestIdempotentDay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	domains := randomDomains(rng, 120)
	snaps := observedDays(domains, 0, 600, 300)

	once := NewIngester()
	ingestAll(t, once, snaps)
	want := saveBytes(t, once.Freeze())

	twice := NewIngester()
	ingestAll(t, twice, snaps[:1])
	ingestAll(t, twice, snaps) // snaps[0] replayed
	if got := saveBytes(t, twice.Freeze()); !bytes.Equal(got, want) {
		t.Fatal("replaying an ingested day changed the serialized state")
	}
}

// TestIngestSemantics pins the row-level rules: first observation creates
// the row, event days record first sight, flags latch the latest
// measurement, Failed records are skipped.
func TestIngestSemantics(t *testing.T) {
	rec := func(name string, key, ds, valid bool) dataset.Record {
		return dataset.Record{
			Domain: name, TLD: "com", NSHosts: []string{"ns1.op.example"},
			Operator:  "op.example",
			HasDNSKEY: key, HasRRSIG: key, HasDS: ds,
			ChainValid: valid,
		}
	}
	g := NewIngester()

	// Day 10: a.com unsigned, b.com fails measurement.
	skipped, err := g.AppendDay(&dataset.Snapshot{Day: 10, Records: []dataset.Record{
		rec("a.com", false, false, false),
		{Domain: "b.com", TLD: "com", Operator: "op.example", Failed: true, FailReason: "timeout"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d failed records, want 1", skipped)
	}
	if g.Len() != 1 {
		t.Fatalf("Len %d after failed record, want 1 (failure must not create a row)", g.Len())
	}

	// Day 20: a.com signs but publishes no DS; b.com appears, fully valid.
	// Day 30: a.com adds a DS that does not validate.
	// Day 40: a.com's chain starts validating.
	for _, step := range []struct {
		day  simtime.Day
		recs []dataset.Record
	}{
		{20, []dataset.Record{rec("a.com", true, false, false), rec("b.com", true, true, true)}},
		{30, []dataset.Record{rec("a.com", true, true, false), rec("b.com", true, true, true)}},
		{40, []dataset.Record{rec("a.com", true, true, true), rec("b.com", true, true, true)}},
	} {
		if _, err := g.AppendDay(&dataset.Snapshot{Day: step.day, Records: step.recs}); err != nil {
			t.Fatal(err)
		}
	}

	x := g.Freeze()
	a, b := x.Row(0), x.Row(1)
	if a.Name != "a.com" || b.Name != "b.com" {
		t.Fatalf("row order %q, %q — want first-observation order", a.Name, b.Name)
	}
	if a.Created != 10 || a.KeyDay != 20 || a.DSDay != 30 {
		t.Fatalf("a.com events Created=%d KeyDay=%d DSDay=%d, want 10/20/30", a.Created, a.KeyDay, a.DSDay)
	}
	if b.Created != 20 || b.KeyDay != 20 || b.DSDay != 20 {
		t.Fatalf("b.com events Created=%d KeyDay=%d DSDay=%d, want 20/20/20", b.Created, b.KeyDay, b.DSDay)
	}
	// a.com's broken flag was latched at day 30 and cleared at day 40, so
	// its chain validates from max(KeyDay, DSDay) = 30 onward.
	for _, tc := range []struct {
		day   simtime.Day
		valid bool
	}{{25, false}, {35, true}, {45, true}} {
		snap := x.Snapshot(tc.day)
		if got := snap.Records[0].ChainValid; got != tc.valid {
			t.Errorf("a.com ChainValid at day %d = %v, want %v", tc.day, got, tc.valid)
		}
	}
	if g.Days() != 4 || g.LastDay() != 40 {
		t.Fatalf("Days=%d LastDay=%d, want 4/40", g.Days(), g.LastDay())
	}
	if NewIngester().LastDay() != simtime.Never {
		t.Fatal("fresh ingester LastDay should be Never")
	}
}

// TestIngestFreezeIsolation: a frozen view must not observe mutations
// from ingest that continues after the freeze.
func TestIngestFreezeIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	domains := randomDomains(rng, 100)
	snaps := observedDays(domains, 0, 800, 100)

	g := NewIngester()
	ingestAll(t, g, snaps[:3])
	frozen := g.Freeze()
	before := saveBytes(t, frozen)
	ingestAll(t, g, snaps[3:])
	extra := randomDomains(rng, 50)
	for i := range extra {
		extra[i].Name = fmt.Sprintf("late%03d.example", i)
	}
	ingestAll(t, g, []*dataset.Snapshot{refSnapshot(extra, 820)})
	if after := saveBytes(t, frozen); !bytes.Equal(before, after) {
		t.Fatal("continued ingest mutated a frozen index")
	}
}

// TestIngestTLDOverflow: the 16-bit TLD column rejects the 65537th TLD
// with an error instead of silently truncating.
func TestIngestTLDOverflow(t *testing.T) {
	g := NewIngester()
	g.tlds = make([]string, 1<<16)
	for i := range g.tlds {
		g.tlds[i] = fmt.Sprintf("tld%d", i)
		g.tldIDs[g.tlds[i]] = uint16(i)
	}
	_, err := g.AppendDay(&dataset.Snapshot{Day: 1, Records: []dataset.Record{
		{Domain: "x.overflow", TLD: "overflow", Operator: "op.example"},
	}})
	if err == nil {
		t.Fatal("ingesting a 65537th TLD should fail")
	}
}

// TestIngestRejectsDuplicateRows: an index with duplicate domain names
// (possible via Builder) cannot seed an ingester, which addresses rows by
// name.
func TestIngestRejectsDuplicateRows(t *testing.T) {
	b := NewBuilder(2)
	d := Domain{Name: "dup.com", TLD: "com", Operator: "op.example", NSHost: "ns1.op.example"}
	b.Add(d)
	b.Add(d)
	if _, err := NewIngesterFromIndex(b.Build()); err == nil {
		t.Fatal("NewIngesterFromIndex should reject duplicate domain names")
	}
}
