package colstore

// Parallel sharded construction: world generation fills one Shard per
// cohort on whatever goroutine happens to run it, and MergeShards splices
// the shards — in cohort order — into an Index identical to what a single
// sequential Builder fed the same rows in the same order would produce.
// Intern IDs are assigned by first occurrence in the merged row sequence,
// so the result does not depend on how the shards were distributed over
// workers, only on their order here. That makes the whole pipeline
// byte-identical for a given seed regardless of worker count.

// Shard is a privately owned column fragment with local intern tables.
// It is not safe for concurrent use; each generating goroutine owns its
// shards exclusively until MergeShards.
//
// Local interning is a backwards linear scan over the tables: rows arrive
// cohort by cohort, so a row's strings are almost always the most recently
// added entries and the scan terminates on the first probe. Maps would
// cost more than they save — a world build allocates thousands of shards,
// and three map headers plus buckets per shard once dominated the whole
// build's allocation footprint at small scale.
type Shard struct {
	names   []string
	opID    []uint32
	tldID   []uint16
	regID   []uint32
	created []int32
	keyDay  []int32
	dsDay   []int32
	fullDay []int32
	flags   []uint8

	// Local intern tables in first-use order, remapped at merge.
	ops  []string
	opNS []string
	tlds []string
	regs []string
}

// NewShard returns a shard with row-capacity hint n.
func NewShard(n int) *Shard {
	return &Shard{
		names:   make([]string, 0, n),
		opID:    make([]uint32, 0, n),
		tldID:   make([]uint16, 0, n),
		regID:   make([]uint32, 0, n),
		created: make([]int32, 0, n),
		keyDay:  make([]int32, 0, n),
		dsDay:   make([]int32, 0, n),
		fullDay: make([]int32, 0, n),
		flags:   make([]uint8, 0, n),
	}
}

// Add appends one domain to the shard, interning against the shard-local
// tables only.
func (s *Shard) Add(d Domain) {
	op := uint32(len(s.ops))
	for i := len(s.ops) - 1; i >= 0; i-- {
		if s.ops[i] == d.Operator {
			op = uint32(i)
			break
		}
	}
	if op == uint32(len(s.ops)) {
		s.ops = append(s.ops, d.Operator)
		s.opNS = append(s.opNS, d.NSHost)
	}
	tld := uint16(len(s.tlds))
	for i := len(s.tlds) - 1; i >= 0; i-- {
		if s.tlds[i] == d.TLD {
			tld = uint16(i)
			break
		}
	}
	if tld == uint16(len(s.tlds)) {
		s.tlds = append(s.tlds, d.TLD)
	}
	reg := uint32(len(s.regs))
	for i := len(s.regs) - 1; i >= 0; i-- {
		if s.regs[i] == d.Registrar {
			reg = uint32(i)
			break
		}
	}
	if reg == uint32(len(s.regs)) {
		s.regs = append(s.regs, d.Registrar)
	}
	var fl uint8
	if d.BrokenDS {
		fl |= flagBroken
	}
	if d.ExpiredSig {
		fl |= flagExpired
	}
	// Same derivation as Builder.Add: see the fullDay comment there.
	full := impossible
	if fl == 0 {
		full = int32(d.KeyDay)
		if int32(d.DSDay) > full {
			full = int32(d.DSDay)
		}
	}
	s.names = append(s.names, d.Name)
	s.opID = append(s.opID, op)
	s.tldID = append(s.tldID, tld)
	s.regID = append(s.regID, reg)
	s.created = append(s.created, clampDay(d.Created))
	s.keyDay = append(s.keyDay, int32(d.KeyDay))
	s.dsDay = append(s.dsDay, int32(d.DSDay))
	s.fullDay = append(s.fullDay, full)
	s.flags = append(s.flags, fl)
}

// Len returns the shard's row count.
func (s *Shard) Len() int { return len(s.names) }

// MergeShards concatenates the shards in the given order into one frozen
// Index, remapping each shard's local intern IDs onto global IDs assigned
// by first occurrence across the merged sequence. Nil shards are skipped.
// The shards must not be used afterwards.
func MergeShards(shards []*Shard) *Index {
	total := 0
	for _, s := range shards {
		if s != nil {
			total += s.Len()
		}
	}
	x := &Index{
		names:   make([]string, 0, total),
		opID:    make([]uint32, 0, total),
		tldID:   make([]uint16, 0, total),
		regID:   make([]uint32, 0, total),
		created: make([]int32, 0, total),
		keyDay:  make([]int32, 0, total),
		dsDay:   make([]int32, 0, total),
		fullDay: make([]int32, 0, total),
		flags:   make([]uint8, 0, total),
		opIDs:   make(map[string]uint32),
		tldIDs:  make(map[string]uint16),
	}
	regIDs := make(map[string]uint32)
	for _, s := range shards {
		if s == nil || s.Len() == 0 {
			continue
		}
		// Local → global remap tables for this shard.
		opMap := make([]uint32, len(s.ops))
		for li, op := range s.ops {
			g, ok := x.opIDs[op]
			if !ok {
				g = uint32(len(x.ops))
				x.opIDs[op] = g
				x.ops = append(x.ops, op)
				x.opNS = append(x.opNS, []string{s.opNS[li]})
			}
			opMap[li] = g
		}
		tldMap := make([]uint16, len(s.tlds))
		for li, tld := range s.tlds {
			g, ok := x.tldIDs[tld]
			if !ok {
				g = uint16(len(x.tlds))
				x.tldIDs[tld] = g
				x.tlds = append(x.tlds, tld)
			}
			tldMap[li] = g
		}
		regMap := make([]uint32, len(s.regs))
		for li, reg := range s.regs {
			g, ok := regIDs[reg]
			if !ok {
				g = uint32(len(x.regs))
				regIDs[reg] = g
				x.regs = append(x.regs, reg)
			}
			regMap[li] = g
		}
		x.names = append(x.names, s.names...)
		for _, id := range s.opID {
			x.opID = append(x.opID, opMap[id])
		}
		for _, id := range s.tldID {
			x.tldID = append(x.tldID, tldMap[id])
		}
		for _, id := range s.regID {
			x.regID = append(x.regID, regMap[id])
		}
		x.created = append(x.created, s.created...)
		x.keyDay = append(x.keyDay, s.keyDay...)
		x.dsDay = append(x.dsDay, s.dsDay...)
		x.fullDay = append(x.fullDay, s.fullDay...)
		x.flags = append(x.flags, s.flags...)
	}
	x.finish()
	return x
}
