package colstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// testIndex builds a small index with adversarial state combinations:
// Never days, broken and expired flags, empty registrar, multi-TLD
// operators.
func testIndex(n int, seed int64) *Index {
	rng := rand.New(rand.NewSource(seed))
	tlds := []string{"com", "net", "org", "nl", "se"}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		op := fmt.Sprintf("op%02d.example", rng.Intn(12))
		reg := ""
		if rng.Intn(2) == 0 {
			reg = "Registrar-" + op
		}
		day := func() simtime.Day {
			if rng.Intn(4) == 0 {
				return simtime.Never
			}
			return simtime.Day(rng.Intn(900) - 100)
		}
		b.Add(Domain{
			Name:       fmt.Sprintf("d%05d.%s", i, tlds[rng.Intn(len(tlds))]),
			TLD:        tlds[rng.Intn(len(tlds))],
			Operator:   op,
			Registrar:  reg,
			NSHost:     "ns1." + op,
			Created:    simtime.Day(rng.Intn(900) - 700),
			KeyDay:     day(),
			DSDay:      day(),
			BrokenDS:   rng.Intn(7) == 0,
			ExpiredSig: rng.Intn(7) == 0,
		})
	}
	return b.Build()
}

// assertIndexEqual compares two indexes via their public query surface.
func assertIndexEqual(t *testing.T, got, want *Index) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if g, w := got.Row(i), want.Row(i); g != w {
			t.Fatalf("row %d differs:\ngot  %+v\nwant %+v", i, g, w)
		}
	}
	for _, day := range []simtime.Day{simtime.GTLDStart, simtime.End, -50} {
		if !reflect.DeepEqual(got.Snapshot(day), want.Snapshot(day)) {
			t.Fatalf("Snapshot(%v) diverges", day)
		}
	}
	if !reflect.DeepEqual(got.DomainsByRegistrar(), want.DomainsByRegistrar()) {
		t.Fatal("DomainsByRegistrar diverges")
	}
	op := want.Row(0).Operator
	if !reflect.DeepEqual(
		got.Series(op, "", 0, simtime.End, 30),
		want.Series(op, "", 0, simtime.End, 30)) {
		t.Fatal("Series diverges")
	}
}

func TestSaveLoadBytesRoundTrip(t *testing.T) {
	x := testIndex(400, 1)
	var buf bytes.Buffer
	meta := map[string]string{"fingerprint": "abc123", "scale": "0.001"}
	if err := x.Save(&buf, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Errorf("meta %v, want %v", gotMeta, meta)
	}
	assertIndexEqual(t, loaded, x)
}

func TestSaveFileLoadRoundTrip(t *testing.T) {
	x := testIndex(300, 2)
	path := filepath.Join(t.TempDir(), "idx.rscw")
	if err := x.SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if len(meta) != 0 {
		t.Errorf("meta %v, want empty", meta)
	}
	assertIndexEqual(t, loaded, x)
}

func TestSaveDeterministic(t *testing.T) {
	x := testIndex(200, 3)
	var a, b bytes.Buffer
	if err := x.Save(&a, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if err := x.Save(&b, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same index differ")
	}
}

func TestEmptyIndexRoundTrip(t *testing.T) {
	x := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := x.Save(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("empty index loaded %d rows", loaded.Len())
	}
}

func TestMetaValidation(t *testing.T) {
	x := NewBuilder(0).Build()
	var buf bytes.Buffer
	for _, bad := range []map[string]string{
		{"a=b": "v"},
		{"a\nb": "v"},
		{"": "v"},
		{"k": "line1\nline2"},
	} {
		if err := x.Save(&buf, bad); err == nil {
			t.Errorf("Save accepted invalid meta %v", bad)
		}
	}
}

// TestLoadRejectsCorruption flips, truncates, and rewrites a valid file
// in targeted ways; every mutation must produce an error, never a load.
func TestLoadRejectsCorruption(t *testing.T) {
	x := testIndex(150, 4)
	var buf bytes.Buffer
	if err := x.Save(&buf, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, _, err := LoadBytes(good); err != nil {
		t.Fatalf("baseline does not load: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = f(b)
		if _, _, err := LoadBytes(b); err == nil {
			t.Errorf("%s: corrupted file loaded without error", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("version skew", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:12], 999)
		return b
	})
	mutate("bad endian marker", func(b []byte) []byte { b[12] ^= 0xFF; return b })
	mutate("truncated mid-section", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated trailer", func(b []byte) []byte { return b[:len(b)-4] })
	mutate("payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })
	mutate("unknown section tag", func(b []byte) []byte { b[16] = 'Z'; return b })
	mutate("section length overflow", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:32], 1<<60)
		return b
	})
	// Flip a flag byte to an undefined bit pattern and re-CRC the FLAGS
	// section so only semantic validation can catch it: FLAGS is the last
	// section, its payload ends 8 bytes before EOF (pad+CRC trailer).
	mutate("unknown flag bits", func(b []byte) []byte {
		n := x.Len()
		pad := (8 - n%8) % 8
		payloadStart := len(b) - 8 - pad - n
		b[payloadStart] = 0x80
		crc := crc32.Checksum(b[payloadStart:payloadStart+n], worldCRC)
		binary.LittleEndian.PutUint32(b[len(b)-8:], crc)
		return b
	})
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "nope.rscw")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// FuzzLoadWorld hammers the reader with mutated files: any input must
// either load cleanly or return an error — no panics, no silent garbage.
func FuzzLoadWorld(f *testing.F) {
	for _, n := range []int{0, 1, 50} {
		var buf bytes.Buffer
		if err := testIndex(n, int64(n)).Save(&buf, map[string]string{"k": "v"}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte(worldMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		x, _, err := LoadBytes(data)
		if err != nil {
			return
		}
		// A successful load must be internally consistent enough to query.
		n := x.Len()
		if n > 0 {
			_ = x.Row(0)
			_ = x.Row(n - 1)
		}
		_ = x.Snapshot(simtime.End)
		_ = x.DomainsByRegistrar()
	})
}
