package colstore

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// mmapWorld saves a small index and re-loads it through the mmap path, the
// long-lived form the API daemon holds across cache refreshes.
func mmapWorld(t *testing.T) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "world.rscw")
	if err := testIndex(120, 5).SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestCloseDoubleClose(t *testing.T) {
	x := mmapWorld(t)
	if err := x.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	err := x.Close()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestQueryAfterClose: the Ctx variants report misuse as ErrClosed; the
// legacy error-free surface panics with a pointed message instead of
// faulting on the released mapping.
func TestQueryAfterClose(t *testing.T) {
	x := mmapWorld(t)
	op := x.Row(0).Operator
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := x.SnapshotCtx(context.Background(), 100); !errors.Is(err, ErrClosed) {
		t.Fatalf("SnapshotCtx after Close = %v, want ErrClosed", err)
	}
	if _, err := x.MaterializeCtx(context.Background(), 100); !errors.Is(err, ErrClosed) {
		t.Fatalf("MaterializeCtx after Close = %v, want ErrClosed", err)
	}
	if _, err := x.SeriesCtx(context.Background(), op, "", 0, simtime.End, 30); !errors.Is(err, ErrClosed) {
		t.Fatalf("SeriesCtx after Close = %v, want ErrClosed", err)
	}
	if err := x.Save(&strings.Builder{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close = %v, want ErrClosed", err)
	}
	if _, err := NewIngesterFromIndex(x); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewIngesterFromIndex after Close = %v, want ErrClosed", err)
	}

	for name, query := range map[string]func(){
		"Snapshot":        func() { x.Snapshot(100) },
		"Materialize":     func() { x.Materialize(100) },
		"Series":          func() { x.Series(op, "", 0, simtime.End, 30) },
		"Row":             func() { x.Row(0) },
		"Overview":        func() { x.Overview(simtime.End, []string{"com"}) },
		"CountByOperator": func() { x.CountByOperator(simtime.End, ClassFull) },
		"DSGapPct":        func() { x.DSGapPct(simtime.End) },
		"TLDs":            func() { x.TLDs() },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s after Close did not panic", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "closed Index") {
					t.Fatalf("%s after Close panicked with %v, want a pointed closed-Index message", name, r)
				}
			}()
			query()
		}()
	}
}

// TestCloseOfHeapIndex: Close on a built (non-mmap) index is still a
// valid lifecycle — it marks the index closed without a mapping to
// release.
func TestCloseOfHeapIndex(t *testing.T) {
	x := testIndex(50, 6)
	if err := x.Close(); err != nil {
		t.Fatalf("Close of heap index: %v", err)
	}
	if err := x.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := x.SnapshotCtx(context.Background(), 100); !errors.Is(err, ErrClosed) {
		t.Fatalf("SnapshotCtx after Close = %v, want ErrClosed", err)
	}
}

// TestQueryCancellation: a canceled request context aborts the scan paths
// a dropped API request would otherwise keep burning CPU on.
func TestQueryCancellation(t *testing.T) {
	x := testIndex(400, 7)
	op := x.Row(0).Operator
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := x.SnapshotCtx(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("SnapshotCtx with canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := x.MaterializeCtx(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaterializeCtx with canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := x.SeriesCtx(ctx, op, "", 0, simtime.End, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SeriesCtx with canceled ctx = %v, want context.Canceled", err)
	}

	// A live context still completes and matches the legacy surface.
	snap, err := x.SnapshotCtx(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != x.Len() {
		t.Fatalf("SnapshotCtx returned %d records, want %d", len(snap.Records), x.Len())
	}
	series, err := x.SeriesCtx(context.Background(), op, "", 0, simtime.End, 30)
	if err != nil {
		t.Fatal(err)
	}
	if want := x.Series(op, "", 0, simtime.End, 30); len(series) != len(want) {
		t.Fatalf("SeriesCtx returned %d points, want %d", len(series), len(want))
	}
}
