package colstore

// Incremental ingest: the observatory path that grows a columnar world
// from observed daily snapshots, one archive section at a time, without
// ever rebuilding from scratch.
//
// The Builder/Shard constructors ingest *domain histories* (each row
// already knows its KeyDay/DSDay); an Ingester instead consumes what a
// long-running measurement actually produces — per-day observation
// snapshots — and derives the event columns on the fly:
//
//   - a domain's row is created the first day it is observed (Created);
//   - KeyDay / DSDay are the first observed days with a DNSKEY / DS;
//   - the breakage flags are latched from the most recent measured
//     observation (a chain that starts validating clears flagBroken);
//   - Failed placeholder records are skipped: "could not measure" never
//     creates or mutates a row.
//
// The resulting state is a pure function of the sequence of ingested
// sections. That purity is the crash-safety contract: persist the frozen
// index after a section prefix, reload it with NewIngesterFromIndex after
// a SIGKILL, replay the remaining sections, and the final index is
// byte-identical to a clean single-pass ingest (the apiserv chaos harness
// holds this as its oracle). Re-ingesting an identical section is
// idempotent for the same reason.
//
// An Ingester is not safe for concurrent use; the daemon's tailer owns it
// on one goroutine and publishes read-only views with Freeze.

import (
	"fmt"
	"strings"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// Ingester accumulates observed daily snapshots into mutable columns and
// freezes read-only Index views on demand.
type Ingester struct {
	rows map[string]int // domain name → row

	names   []string
	opID    []uint32
	tldID   []uint16
	regID   []uint32
	created []int32
	keyDay  []int32
	dsDay   []int32
	fullDay []int32
	flags   []uint8

	// Intern tables in first-occurrence order. Scan records carry no
	// registrar identity, so ingested rows all intern the empty registrar
	// (which every registrar aggregation already excludes).
	ops  []string
	opNS []string
	tlds []string
	regs []string

	opIDs  map[string]uint32
	tldIDs map[string]uint16
	regIDs map[string]uint32

	days    int         // sections ingested by this Ingester instance
	lastDay simtime.Day // day of the most recent ingested section
}

// NewIngester returns an empty ingester.
func NewIngester() *Ingester {
	return &Ingester{
		rows:   make(map[string]int),
		opIDs:  make(map[string]uint32),
		tldIDs: make(map[string]uint16),
		regIDs: make(map[string]uint32),
	}
}

// NewIngesterFromIndex resumes ingest from a previously frozen and
// persisted index: every column and string is deep-copied, so the source
// index — typically an mmap-loaded world file — may be Closed immediately
// afterwards. The index must have been produced by an Ingester (or be
// otherwise free of duplicate domain names); a duplicate name is
// rejected, since ingest addresses rows by name.
func NewIngesterFromIndex(x *Index) (*Ingester, error) {
	if x.closed.Load() {
		return nil, ErrClosed
	}
	g := NewIngester()
	n := x.n
	g.names = make([]string, n)
	g.rows = make(map[string]int, n)
	for i, name := range x.names {
		name = strings.Clone(name)
		g.names[i] = name
		if prev, dup := g.rows[name]; dup {
			return nil, fmt.Errorf("colstore: cannot resume ingest: rows %d and %d are both domain %q", prev, i, name)
		}
		g.rows[name] = i
	}
	g.opID = append([]uint32(nil), x.opID...)
	g.tldID = append([]uint16(nil), x.tldID...)
	g.regID = append([]uint32(nil), x.regID...)
	g.created = append([]int32(nil), x.created...)
	g.keyDay = append([]int32(nil), x.keyDay...)
	g.dsDay = append([]int32(nil), x.dsDay...)
	g.fullDay = append([]int32(nil), x.fullDay...)
	g.flags = append([]uint8(nil), x.flags...)

	g.ops = make([]string, len(x.ops))
	g.opNS = make([]string, len(x.ops))
	for i, op := range x.ops {
		op = strings.Clone(op)
		g.ops[i] = op
		g.opNS[i] = strings.Clone(x.opNS[i][0])
		g.opIDs[op] = uint32(i)
	}
	g.tlds = make([]string, len(x.tlds))
	for i, tld := range x.tlds {
		tld = strings.Clone(tld)
		g.tlds[i] = tld
		g.tldIDs[tld] = uint16(i)
	}
	g.regs = make([]string, len(x.regs))
	for i, reg := range x.regs {
		reg = strings.Clone(reg)
		g.regs[i] = reg
		g.regIDs[reg] = uint32(i)
	}
	return g, nil
}

// Len returns the current domain population.
func (g *Ingester) Len() int { return len(g.names) }

// Days returns how many sections this instance has ingested (resumed
// history is accounted by the caller's watermark, not here).
func (g *Ingester) Days() int { return g.days }

// LastDay returns the day of the most recently ingested section, or
// simtime.Never before the first.
func (g *Ingester) LastDay() simtime.Day {
	if g.days == 0 {
		return simtime.Never
	}
	return g.lastDay
}

// AppendDay folds one observed snapshot into the columns — the
// incremental alternative to rebuilding the world from the full archive.
// Sections may arrive in any day order (re-sweeps, backfills); event days
// record first observation, flags latch the latest. Failed records are
// skipped and counted in the return value.
func (g *Ingester) AppendDay(snap *dataset.Snapshot) (skipped int, err error) {
	day := clampDay(snap.Day)
	for i := range snap.Records {
		rec := &snap.Records[i]
		if rec.Failed {
			skipped++
			continue
		}
		row, ok := g.rows[rec.Domain]
		if !ok {
			if err := g.appendRow(rec, day); err != nil {
				return skipped, err
			}
			continue
		}
		if g.keyDay[row] == never && rec.HasDNSKEY {
			g.keyDay[row] = day
		}
		if g.dsDay[row] == never && rec.HasDS {
			g.dsDay[row] = day
		}
		g.flags[row] = observedFlags(rec)
		g.fullDay[row] = deriveFullDay(g.keyDay[row], g.dsDay[row], g.flags[row])
	}
	g.days++
	g.lastDay = snap.Day
	return skipped, nil
}

// appendRow creates the row for a domain's first observation.
func (g *Ingester) appendRow(rec *dataset.Record, day int32) error {
	op, ok := g.opIDs[rec.Operator]
	if !ok {
		op = uint32(len(g.ops))
		g.opIDs[rec.Operator] = op
		g.ops = append(g.ops, rec.Operator)
		host := ""
		if len(rec.NSHosts) > 0 {
			host = rec.NSHosts[0]
		}
		g.opNS = append(g.opNS, host)
	}
	tld, ok := g.tldIDs[rec.TLD]
	if !ok {
		if len(g.tlds) >= 1<<16 {
			return fmt.Errorf("colstore: ingesting %q would overflow the 16-bit TLD ID column", rec.TLD)
		}
		tld = uint16(len(g.tlds))
		g.tldIDs[rec.TLD] = tld
		g.tlds = append(g.tlds, rec.TLD)
	}
	// Scan records carry no registrar; all ingested rows share the
	// interned empty registrar.
	reg, ok := g.regIDs[""]
	if !ok {
		reg = uint32(len(g.regs))
		g.regIDs[""] = reg
		g.regs = append(g.regs, "")
	}
	fl := observedFlags(rec)
	keyDay, dsDay := never, never
	if rec.HasDNSKEY {
		keyDay = day
	}
	if rec.HasDS {
		dsDay = day
	}
	g.rows[rec.Domain] = len(g.names)
	g.names = append(g.names, rec.Domain)
	g.opID = append(g.opID, op)
	g.tldID = append(g.tldID, tld)
	g.regID = append(g.regID, reg)
	g.created = append(g.created, day)
	g.keyDay = append(g.keyDay, keyDay)
	g.dsDay = append(g.dsDay, dsDay)
	g.fullDay = append(g.fullDay, deriveFullDay(keyDay, dsDay, fl))
	g.flags = append(g.flags, fl)
	return nil
}

// observedFlags infers the breakage flags from one measured observation:
// a DS that validates nothing is a broken chain, a DNSKEY without a
// verifying RRSIG is an expired/absent signature. Absence of the
// prerequisite (no DS, no DNSKEY) infers nothing.
func observedFlags(rec *dataset.Record) uint8 {
	var fl uint8
	if rec.HasDS && !rec.ChainValid {
		fl |= flagBroken
	}
	if rec.HasDNSKEY && !rec.HasRRSIG {
		fl |= flagExpired
	}
	return fl
}

// deriveFullDay mirrors Builder.Add's fullDay derivation over the mutable
// ingest columns (see the comment there for the sentinel semantics).
func deriveFullDay(keyDay, dsDay int32, fl uint8) int32 {
	if fl != 0 {
		return impossible
	}
	full := keyDay
	if dsDay > full {
		full = dsDay
	}
	return full
}

// Freeze publishes the current state as a frozen Index safe for
// concurrent readers while ingest continues. The mutable columns (event
// days, flags) are copied; the append-only columns and intern tables are
// shared by bounded re-slice, so a freeze costs ~13 bytes per domain plus
// the finish() group derivation. The returned index serves queries,
// Save/SaveFile persistence, and — via NewIngesterFromIndex — resume.
func (g *Ingester) Freeze() *Index {
	n := len(g.names)
	x := &Index{
		names:   g.names[:n:n],
		opID:    g.opID[:n:n],
		tldID:   g.tldID[:n:n],
		regID:   g.regID[:n:n],
		created: g.created[:n:n],
		keyDay:  append([]int32(nil), g.keyDay...),
		dsDay:   append([]int32(nil), g.dsDay...),
		fullDay: append([]int32(nil), g.fullDay...),
		flags:   append([]uint8(nil), g.flags...),
		ops:     g.ops[:len(g.ops):len(g.ops)],
		tlds:    g.tlds[:len(g.tlds):len(g.tlds)],
		regs:    g.regs[:len(g.regs):len(g.regs)],
		opIDs:   make(map[string]uint32, len(g.ops)),
		tldIDs:  make(map[string]uint16, len(g.tlds)),
	}
	x.opNS = make([][]string, len(g.opNS))
	for i, host := range g.opNS {
		x.opNS[i] = []string{host}
	}
	for i, op := range x.ops {
		x.opIDs[op] = uint32(i)
	}
	for i, tld := range x.tlds {
		x.tldIDs[tld] = uint16(i)
	}
	x.finish()
	return x
}
