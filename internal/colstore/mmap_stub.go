//go:build !unix

package colstore

import "os"

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, os.ErrInvalid
}

func munmap(data []byte) error { return nil }
