package colstore

import (
	"math/rand"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// benchIndex builds one deterministic 200k-domain population shared by the
// micro-benchmarks: 2k operators, five TLDs, paper-shaped adoption days.
var benchIdx *Index

func getBenchIndex(b *testing.B) *Index {
	b.Helper()
	if benchIdx == nil {
		rng := rand.New(rand.NewSource(42))
		benchIdx = buildIndex(randomDomains(rng, 200_000))
	}
	return benchIdx
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	domains := randomDomains(rng, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := buildIndex(domains); idx.Len() != len(domains) {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	idx := getBenchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := idx.Snapshot(simtime.End); len(snap.Records) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkSeries(b *testing.B) {
	idx := getBenchIndex(b)
	op := idx.ops[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := idx.Series(op, "", simtime.GTLDStart, simtime.End, 1)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkOperatorCDF(b *testing.B) {
	idx := getBenchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cdf := idx.OperatorCDF(simtime.End, ClassAny, "com", "net", "org"); len(cdf) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

func BenchmarkOverview(b *testing.B) {
	idx := getBenchIndex(b)
	tlds := []string{"com", "net", "org", "nl", "se"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ov := idx.Overview(simtime.End, tlds); len(ov) != len(tlds) {
			b.Fatal("bad overview")
		}
	}
}

func BenchmarkCountByOperator(b *testing.B) {
	idx := getBenchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if counts := idx.CountByOperator(simtime.End, ClassDNSKEY); len(counts) == 0 {
			b.Fatal("no counts")
		}
	}
}
