package colstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// randomDomains draws an adversarial synthetic population: every combo of
// Never/real key and DS days, broken/expired flags, shared and unique
// operators, all five TLDs plus an oddball.
func randomDomains(rng *rand.Rand, n int) []Domain {
	tlds := []string{"com", "net", "org", "nl", "se", "xyz"}
	ops := make([]string, 1+rng.Intn(12))
	for i := range ops {
		ops[i] = fmt.Sprintf("op%02d.example", i)
	}
	day := func() simtime.Day {
		if rng.Intn(4) == 0 {
			return simtime.Never
		}
		return simtime.Day(rng.Intn(900) - 100)
	}
	out := make([]Domain, n)
	for i := range out {
		op := ops[rng.Intn(len(ops))]
		reg := ""
		if rng.Intn(2) == 0 {
			reg = "Reg-" + op
		}
		out[i] = Domain{
			Name:       fmt.Sprintf("d%05d.%s", i, op),
			TLD:        tlds[rng.Intn(len(tlds))],
			Operator:   op,
			Registrar:  reg,
			NSHost:     "ns1." + op,
			KeyDay:     day(),
			DSDay:      day(),
			BrokenDS:   rng.Intn(8) == 0,
			ExpiredSig: rng.Intn(8) == 0,
		}
	}
	return out
}

func buildIndex(domains []Domain) *Index {
	b := NewBuilder(len(domains))
	for _, d := range domains {
		b.Add(d)
	}
	return b.Build()
}

// refRecord is the oracle projection: the same rules as
// tldsim.DomainState.RecordAt.
func refRecord(d *Domain, day simtime.Day) dataset.Record {
	hasKey := d.KeyDay <= day
	hasDS := d.DSDay <= day
	return dataset.Record{
		Domain:     d.Name,
		TLD:        d.TLD,
		NSHosts:    []string{d.NSHost},
		Operator:   d.Operator,
		HasDNSKEY:  hasKey,
		HasRRSIG:   hasKey,
		HasDS:      hasDS,
		ChainValid: hasKey && hasDS && !d.BrokenDS && !d.ExpiredSig,
	}
}

func refSnapshot(domains []Domain, day simtime.Day) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, len(domains))}
	for i := range domains {
		snap.Records = append(snap.Records, refRecord(&domains[i], day))
	}
	return snap
}

// refSeries is the oracle series: the original full-scan SeriesFor logic.
func refSeries(domains []Domain, operator, tld string, from, to simtime.Day, stepDays int) []analysis.SeriesPoint {
	if stepDays <= 0 {
		stepDays = 1
	}
	var out []analysis.SeriesPoint
	for day := from; day <= to; day += simtime.Day(stepDays) {
		p := analysis.SeriesPoint{Day: day}
		for i := range domains {
			d := &domains[i]
			if d.Operator != operator || (tld != "" && d.TLD != tld) {
				continue
			}
			p.Total++
			if d.KeyDay != simtime.Never && d.KeyDay <= day {
				p.WithDNSKEY++
			}
			if d.DSDay != simtime.Never && d.DSDay <= day {
				p.WithDS++
				if !d.BrokenDS && !d.ExpiredSig {
					full := d.DSDay
					if d.KeyDay > full {
						full = d.KeyDay
					}
					if full <= day {
						p.Full++
					}
				}
			}
		}
		out = append(out, p)
	}
	return out
}

func classFilter(c Class) analysis.Filter {
	switch c {
	case ClassAny:
		return analysis.All
	case ClassDNSKEY:
		return analysis.WithDNSKEY
	case ClassPartial:
		return analysis.PartiallyDeployed
	case ClassFull:
		return analysis.FullyDeployed
	case ClassBroken:
		return func(r *dataset.Record) bool { return r.Deployment() == DeploymentBrokenRef }
	case ClassNone:
		return func(r *dataset.Record) bool { return r.Deployment() == DeploymentNoneRef }
	}
	panic("unknown class")
}

// Re-derive the dnssec constants through a record so the test does not
// import dnssec directly.
var (
	DeploymentNoneRef   = (&dataset.Record{}).Deployment()
	DeploymentBrokenRef = (&dataset.Record{HasDS: true}).Deployment()
)

func tldFilter(tlds []string) analysis.Filter {
	if len(tlds) == 0 {
		return analysis.All
	}
	set := map[string]bool{}
	for _, t := range tlds {
		set[t] = true
	}
	return func(r *dataset.Record) bool { return set[r.TLD] }
}

func TestSnapshotMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		domains := randomDomains(rng, rng.Intn(400))
		idx := buildIndex(domains)
		for _, day := range []simtime.Day{-200, 0, 17, 400, 850, simtime.Never} {
			got := idx.Snapshot(day)
			want := refSnapshot(domains, day)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d day %v: snapshot mismatch", trial, day)
			}
		}
	}
}

func TestSeriesMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		domains := randomDomains(rng, rng.Intn(300))
		idx := buildIndex(domains)
		operator := "op00.example"
		if len(domains) > 0 && rng.Intn(4) > 0 {
			operator = domains[rng.Intn(len(domains))].Operator
		}
		if rng.Intn(8) == 0 {
			operator = "no-such-op.example"
		}
		tld := ""
		switch rng.Intn(3) {
		case 1:
			tld = []string{"com", "net", "org", "nl", "se", "xyz"}[rng.Intn(6)]
		case 2:
			tld = "nosuchtld"
		}
		from := simtime.Day(rng.Intn(1000) - 300)
		to := from + simtime.Day(rng.Intn(500)-50) // sometimes from > to
		step := rng.Intn(40) - 5                   // sometimes <= 0
		got := idx.Series(operator, tld, from, to, step)
		want := refSeries(domains, operator, tld, from, to, step)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: series mismatch for op=%s tld=%q [%v,%v] step %d\ngot  %v\nwant %v",
				trial, operator, tld, from, to, step, got, want)
		}
	}
}

func TestAggregationsMatchAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		domains := randomDomains(rng, rng.Intn(600))
		idx := buildIndex(domains)
		day := simtime.Day(rng.Intn(900) - 50)
		snap := refSnapshot(domains, day)
		tldSets := [][]string{nil, {"com", "net", "org"}, {"se"}, {"nosuch"}}
		for _, tlds := range tldSets {
			for _, c := range []Class{ClassAny, ClassDNSKEY, ClassPartial, ClassFull, ClassBroken, ClassNone} {
				f := analysis.And(tldFilter(tlds), classFilter(c))
				gotCounts := idx.CountByOperator(day, c, tlds...)
				wantCounts := analysis.CountByOperator(snap, f)
				if len(gotCounts) == 0 && len(wantCounts) == 0 {
					// DeepEqual distinguishes nil from empty; both mean none.
				} else if !reflect.DeepEqual(gotCounts, wantCounts) {
					t.Fatalf("trial %d class %d tlds %v: counts mismatch\ngot  %v\nwant %v",
						trial, c, tlds, gotCounts, wantCounts)
				}
				gotCDF := idx.OperatorCDF(day, c, tlds...)
				wantCDF := analysis.OperatorCDF(snap, f)
				if !reflect.DeepEqual(gotCDF, wantCDF) {
					t.Fatalf("trial %d class %d tlds %v: CDF mismatch", trial, c, tlds)
				}
			}
			gotGap := idx.DSGapPct(day, tlds...)
			wantGap := analysis.DSGapPct(snap, tldFilter(tlds))
			if gotGap != wantGap {
				t.Fatalf("trial %d tlds %v: DS gap %.6f != %.6f", trial, tlds, gotGap, wantGap)
			}
		}
		order := []string{"com", "net", "org", "nl", "se", "xyz", "missing"}
		gotOv := idx.Overview(day, order)
		wantOv := analysis.Overview(snap, order)
		if !reflect.DeepEqual(gotOv, wantOv) {
			t.Fatalf("trial %d: overview mismatch\ngot  %v\nwant %v", trial, gotOv, wantOv)
		}
	}
}

func TestRegistrarCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	domains := randomDomains(rng, 500)
	idx := buildIndex(domains)
	day := simtime.Day(300)
	for _, tlds := range [][]string{nil, {"com"}, {"nl", "se"}} {
		want := map[string]int{}
		wantKeyed := map[string]int{}
		set := map[string]bool{}
		for _, t := range tlds {
			set[t] = true
		}
		for i := range domains {
			d := &domains[i]
			if d.Registrar == "" || (len(set) > 0 && !set[d.TLD]) {
				continue
			}
			want[d.Registrar]++
			if d.KeyDay <= day {
				wantKeyed[d.Registrar]++
			}
		}
		if got := idx.DomainsByRegistrar(tlds...); !reflect.DeepEqual(got, want) {
			t.Fatalf("DomainsByRegistrar(%v) = %v, want %v", tlds, got, want)
		}
		if got := idx.DNSKEYByRegistrar(day, tlds...); !reflect.DeepEqual(got, wantKeyed) {
			t.Fatalf("DNSKEYByRegistrar(%v) = %v, want %v", tlds, got, wantKeyed)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := buildIndex(nil)
	if idx.Len() != 0 || idx.Operators() != 0 {
		t.Fatal("empty index has population")
	}
	if snap := idx.Snapshot(10); len(snap.Records) != 0 {
		t.Fatal("empty snapshot has records")
	}
	pts := idx.Series("x", "", 0, 2, 1)
	if len(pts) != 3 || pts[0].Total != 0 {
		t.Fatalf("series over empty index: %v", pts)
	}
	if cdf := idx.OperatorCDF(10, ClassAny); cdf != nil {
		t.Fatalf("CDF over empty index: %v", cdf)
	}
}

func TestSharedNSHostSlices(t *testing.T) {
	domains := []Domain{
		{Name: "a.com", TLD: "com", Operator: "op.example", NSHost: "ns1.op.example", KeyDay: simtime.Never, DSDay: simtime.Never},
		{Name: "b.com", TLD: "com", Operator: "op.example", NSHost: "ns1.op.example", KeyDay: simtime.Never, DSDay: simtime.Never},
	}
	idx := buildIndex(domains)
	snap := idx.Snapshot(100)
	if &snap.Records[0].NSHosts[0] != &snap.Records[1].NSHosts[0] {
		t.Error("records of one operator should share one NS-host slice")
	}
	snap2 := idx.Snapshot(200)
	if &snap.Records[0].NSHosts[0] != &snap2.Records[0].NSHosts[0] {
		t.Error("NS-host slice should be shared across snapshots")
	}
}

// TestSnapshotAllocs guards the interned snapshot path against alloc
// regressions: materializing N records must stay O(1) allocations (the
// snapshot struct and one records slice), not O(N).
func TestSnapshotAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	domains := randomDomains(rng, 5000)
	idx := buildIndex(domains)
	allocs := testing.AllocsPerRun(10, func() {
		if snap := idx.Snapshot(400); len(snap.Records) != 5000 {
			t.Fatal("bad snapshot")
		}
	})
	if allocs > 4 {
		t.Errorf("Snapshot allocates %.1f objects per call, want <= 4", allocs)
	}
}

// TestSeriesAllocs guards the incremental series sweep: one output slice
// plus bounded cursor state, independent of population size.
func TestSeriesAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	domains := randomDomains(rng, 5000)
	idx := buildIndex(domains)
	op := domains[0].Operator
	allocs := testing.AllocsPerRun(10, func() {
		if pts := idx.Series(op, "", 0, 700, 1); len(pts) != 701 {
			t.Fatal("bad series")
		}
	})
	if allocs > 8 {
		t.Errorf("Series allocates %.1f objects per call, want <= 8", allocs)
	}
}
