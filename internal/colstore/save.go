package colstore

// The on-disk world format: a compact, versioned, little-endian column
// layout mirroring the in-memory Index, so a generated world is built
// once, saved, and re-loaded in O(seconds) — memory-mapped where the
// platform allows, so a population larger than RAM degrades to page-cache
// misses instead of OOMing.
//
// Layout:
//
//	header   = magic "regsecW1" | u32 version | u32 endian-marker
//	section  = tag[8] | u64 payloadLen | payload | pad to 8 | u32 CRC32C | u32 0
//
// Every payload starts 8-byte aligned (header and section framing are
// multiples of 8), which is what makes the zero-copy int32/uint32 views
// legal. Each section carries its own length + CRC32C (Castagnoli)
// trailer, the same integrity idiom as the TSV archive format: a
// truncated or bit-flipped file fails loudly at load, never silently.
//
// String tables are stored as one concatenated blob plus an offsets
// column (u32 for the small intern tables, u64 for domain names, whose
// blob exceeds 4 GiB at real-.com scale). The derived state — fullDay,
// event groups, the record template — is rebuilt or lazily built at load
// and never serialized.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	worldMagic   = "regsecW1"
	worldVersion = 1
	// endianMarker reads back as itself only through a little-endian
	// decode; a byte-swapped file (or a confused writer) is caught at the
	// header.
	endianMarker = 0x01020304
)

// Section tags, fixed order. Load rejects unknown tags, so a future
// version adding sections bumps worldVersion.
const (
	secMeta     = "META\x00\x00\x00\x00"
	secOps      = "OPS\x00\x00\x00\x00\x00"
	secOpsOff   = "OPSOFF\x00\x00"
	secOpNS     = "OPNS\x00\x00\x00\x00"
	secOpNSOff  = "OPNSOFF\x00"
	secTLDs     = "TLDS\x00\x00\x00\x00"
	secTLDsOff  = "TLDSOFF\x00"
	secRegs     = "REGS\x00\x00\x00\x00"
	secRegsOff  = "REGSOFF\x00"
	secNames    = "NAMES\x00\x00\x00"
	secNamesOff = "NAMESOFF"
	secOpID     = "OPID\x00\x00\x00\x00"
	secTLDID    = "TLDID\x00\x00\x00"
	secRegID    = "REGID\x00\x00\x00"
	secCreated  = "CREATED\x00"
	secKeyDay   = "KEYDAY\x00\x00"
	secDSDay    = "DSDAY\x00\x00\x00"
	secFlags    = "FLAGS\x00\x00\x00"
)

// sectionOrder is the exact on-disk sequence, making Save deterministic:
// the same Index always serializes to the same bytes.
var sectionOrder = []string{
	secMeta,
	secOps, secOpsOff, secOpNS, secOpNSOff,
	secTLDs, secTLDsOff, secRegs, secRegsOff,
	secNames, secNamesOff,
	secOpID, secTLDID, secRegID,
	secCreated, secKeyDay, secDSDay, secFlags,
}

var worldCRC = crc32.MakeTable(crc32.Castagnoli)

// Save serializes the index. meta is an arbitrary key=value annotation
// block (world configuration, fingerprints) returned verbatim by Load;
// keys must not contain '=' or newlines, values must not contain
// newlines.
func (x *Index) Save(w io.Writer, meta map[string]string) error {
	if x.closed.Load() {
		return ErrClosed
	}
	metaPayload, err := encodeMeta(meta)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], worldMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], worldVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], endianMarker)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	opsBlob, opsOff := packStrings32(x.ops)
	nsHosts := make([]string, len(x.opNS))
	for i, hosts := range x.opNS {
		nsHosts[i] = hosts[0]
	}
	nsBlob, nsOff := packStrings32(nsHosts)
	tldBlob, tldOff := packStrings32(x.tlds)
	regBlob, regOff := packStrings32(x.regs)
	nameBlob, nameOff := packStrings64(x.names)

	payloads := map[string][]byte{
		secMeta:     metaPayload,
		secOps:      opsBlob,
		secOpsOff:   opsOff,
		secOpNS:     nsBlob,
		secOpNSOff:  nsOff,
		secTLDs:     tldBlob,
		secTLDsOff:  tldOff,
		secRegs:     regBlob,
		secRegsOff:  regOff,
		secNames:    nameBlob,
		secNamesOff: nameOff,
		secOpID:     packUint32(x.opID),
		secTLDID:    packUint16(x.tldID),
		secRegID:    packUint32(x.regID),
		secCreated:  packInt32(x.created),
		secKeyDay:   packInt32(x.keyDay),
		secDSDay:    packInt32(x.dsDay),
		secFlags:    x.flags,
	}
	for _, tag := range sectionOrder {
		if err := writeSection(w, tag, payloads[tag]); err != nil {
			return err
		}
	}
	return nil
}

// SaveFile writes the index to path atomically (temp file + fsync +
// rename + directory fsync): a crash mid-save leaves either the old file
// or none, never a torn one.
func (x *Index) SaveFile(path string, meta map[string]string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".world-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := x.Save(bw, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeSection frames one payload: tag, length, payload, alignment
// padding, CRC32C trailer.
func writeSection(w io.Writer, tag string, payload []byte) error {
	if len(tag) != 8 {
		return fmt.Errorf("colstore: section tag %q is not 8 bytes", tag)
	}
	var hdr [16]byte
	copy(hdr[:8], tag)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [16]byte // up to 7 pad bytes + 8-byte CRC trailer
	pad := (8 - len(payload)%8) % 8
	binary.LittleEndian.PutUint32(trailer[pad:], crc32.Checksum(payload, worldCRC))
	_, err := w.Write(trailer[:pad+8])
	return err
}

// encodeMeta renders the annotation block as sorted k=v lines.
func encodeMeta(meta map[string]string) ([]byte, error) {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		if strings.ContainsAny(k, "=\n") || k == "" {
			return nil, fmt.Errorf("colstore: invalid meta key %q", k)
		}
		if strings.Contains(meta[k], "\n") {
			return nil, fmt.Errorf("colstore: meta value for %q contains a newline", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s=%s\n", k, meta[k])
	}
	return buf.Bytes(), nil
}

// packStrings32 concatenates strings into a blob with n+1 uint32 offsets.
func packStrings32(list []string) (blob, offsets []byte) {
	size := 0
	for _, s := range list {
		size += len(s)
	}
	blob = make([]byte, 0, size)
	offsets = make([]byte, 4*(len(list)+1))
	for i, s := range list {
		binary.LittleEndian.PutUint32(offsets[4*i:], uint32(len(blob)))
		blob = append(blob, s...)
	}
	binary.LittleEndian.PutUint32(offsets[4*len(list):], uint32(len(blob)))
	return blob, offsets
}

// packStrings64 is packStrings32 with uint64 offsets, for the name table
// whose blob can exceed 4 GiB at full scale.
func packStrings64(list []string) (blob, offsets []byte) {
	size := 0
	for _, s := range list {
		size += len(s)
	}
	blob = make([]byte, 0, size)
	offsets = make([]byte, 8*(len(list)+1))
	for i, s := range list {
		binary.LittleEndian.PutUint64(offsets[8*i:], uint64(len(blob)))
		blob = append(blob, s...)
	}
	binary.LittleEndian.PutUint64(offsets[8*len(list):], uint64(len(blob)))
	return blob, offsets
}

func packUint32(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], x)
	}
	return out
}

func packUint16(v []uint16) []byte {
	out := make([]byte, 2*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint16(out[2*i:], x)
	}
	return out
}

func packInt32(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}
