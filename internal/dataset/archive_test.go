package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// archiveFixture builds a two-day store and its archive bytes.
func archiveFixture(t *testing.T) (*Store, []byte) {
	t.Helper()
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 1, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net", "ns2.op.net"},
			HasDNSKEY: true, HasRRSIG: true, HasDS: true, ChainValid: true},
		{Domain: "b.com", TLD: "com", Operator: "other.net", NSHosts: []string{"ns1.other.net"}},
		{Domain: "gap.com", TLD: "com", Failed: true, FailReason: "timeout"},
	}})
	store.Add(&Snapshot{Day: simtime.Date(2016, 6, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"},
			HasDNSKEY: true, HasRRSIG: true},
	}})
	var buf bytes.Buffer
	if err := store.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	return store, buf.Bytes()
}

func TestArchiveRoundTrip(t *testing.T) {
	store, raw := archiveFixture(t)
	got, report, err := ReadArchive(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.Sections != 2 {
		t.Fatalf("report: %s", report)
	}
	if got.Len() != 2 {
		t.Fatalf("snapshots: %d", got.Len())
	}
	for _, day := range store.Days() {
		if !reflect.DeepEqual(got.Get(day).Records, store.Get(day).Records) {
			t.Errorf("day %s records differ", day)
		}
	}
	// Strict mode agrees on clean input.
	if _, err := ReadArchiveStrict(bytes.NewReader(raw)); err != nil {
		t.Errorf("strict read of clean archive: %v", err)
	}
}

func TestArchiveSalvagesIntactSections(t *testing.T) {
	_, raw := archiveFixture(t)
	// Truncate inside the second section: the first must still be salvaged.
	cut := raw[:len(raw)-10]
	got, report, err := ReadArchive(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Fatal("truncated archive reported clean")
	}
	if got.Len() != 1 || got.Get(simtime.Date(2016, 1, 1)) == nil {
		t.Fatalf("salvage kept %d snapshot(s)", got.Len())
	}
	found := false
	for _, c := range report.Quarantined {
		if strings.Contains(c.Reason, "truncated") || strings.Contains(c.Reason, "missing trailer") ||
			strings.Contains(c.Reason, "malformed trailer") {
			found = true
		}
	}
	if !found {
		t.Errorf("no truncation reason in %s", report)
	}
	// A cut landing mid-record reports the truncation precisely.
	midRecord := raw[:bytes.Index(raw, []byte("#end\t2016-06-01"))-5]
	got2, report2, err := ReadArchive(bytes.NewReader(midRecord))
	if err != nil {
		t.Fatal(err)
	}
	if report2.Clean() || got2.Len() != 1 {
		t.Fatalf("mid-record cut: %s, %d snapshot(s)", report2, got2.Len())
	}
	if r := report2.Quarantined[0].Reason; !strings.Contains(r, "truncated") {
		t.Errorf("mid-record cut reason: %s", r)
	}
	// Strict mode refuses the damaged archive outright.
	if _, err := ReadArchiveStrict(bytes.NewReader(cut)); err == nil {
		t.Error("strict read accepted a truncated archive")
	}
}

func TestArchiveTornWriteDetected(t *testing.T) {
	_, raw := archiveFixture(t)
	// Drop the first section's trailer line: a torn write that left the
	// next section's header right after the records.
	lines := strings.SplitAfter(string(raw), "\n")
	var torn strings.Builder
	for _, l := range lines {
		if strings.HasPrefix(l, "#end\t2016-01-01") {
			continue
		}
		torn.WriteString(l)
	}
	got, report, err := ReadArchive(strings.NewReader(torn.String()))
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Fatal("torn archive reported clean")
	}
	if got.Get(simtime.Date(2016, 1, 1)) != nil {
		t.Error("torn section entered the store")
	}
	if got.Get(simtime.Date(2016, 6, 1)) == nil {
		t.Error("intact section after the tear was not salvaged")
	}
}

// TestArchiveBitFlipAlwaysDetected is the integrity drill: every
// single-byte corruption of the archive must be detected — either
// quarantined, or (for damage outside any surviving section's bytes)
// reported as orphaned content. No flip may silently change what parses.
func TestArchiveBitFlipAlwaysDetected(t *testing.T) {
	store, raw := archiveFixture(t)
	for i := range raw {
		for _, mask := range []byte{0x01, 0xff} {
			mut := bytes.Clone(raw)
			mut[i] ^= mask
			got, report, err := ReadArchive(bytes.NewReader(mut))
			if err != nil {
				t.Fatalf("offset %d mask %#x: %v", i, mask, err)
			}
			if report.Clean() {
				t.Fatalf("offset %d mask %#x (%q -> %q): corruption not detected",
					i, mask, raw[i], mut[i])
			}
			// Whatever was salvaged must match the original content.
			for _, day := range got.Days() {
				want := store.Get(day)
				if want == nil || !reflect.DeepEqual(got.Get(day).Records, want.Records) {
					t.Fatalf("offset %d mask %#x: salvaged day %s has divergent content", i, mask, day)
				}
			}
		}
	}
}

func TestArchiveDuplicateDayQuarantined(t *testing.T) {
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 1, 1), Records: []Record{
		{Domain: "a.com", TLD: "com"},
	}})
	var buf bytes.Buffer
	if err := store.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	double := append(bytes.Clone(buf.Bytes()), buf.Bytes()...)
	got, report, err := ReadArchive(bytes.NewReader(double))
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() || got.Len() != 1 {
		t.Fatalf("duplicate day: report %s, %d snapshot(s)", report, got.Len())
	}
	if !strings.Contains(report.Quarantined[0].Reason, "duplicate") {
		t.Errorf("reason: %s", report.Quarantined[0].Reason)
	}
}

func TestWriteArchiveFileAtomic(t *testing.T) {
	store, raw := archiveFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "archive.tsv")
	if err := store.WriteArchiveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Error("file content differs from in-memory archive")
	}
	// Overwrite in place: atomic replacement, no temp litter.
	if err := store.WriteArchiveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "archive.tsv" {
		t.Errorf("directory not clean after rewrite: %v", entries)
	}
	// And the file re-reads clean.
	rt, report, err := ReadArchiveFile(path)
	if err != nil || !report.Clean() || rt.Len() != store.Len() {
		t.Fatalf("re-read: %v, %s", err, report)
	}
}

func TestSnapshotCanonicalize(t *testing.T) {
	s := &Snapshot{Records: []Record{
		{Domain: "z.org", TLD: "org"},
		{Domain: "b.com", TLD: "com"},
		{Domain: "a.com", TLD: "com"},
	}}
	s.Canonicalize()
	order := []string{"a.com", "b.com", "z.org"}
	for i, want := range order {
		if s.Records[i].Domain != want {
			t.Fatalf("position %d: %s, want %s", i, s.Records[i].Domain, want)
		}
	}
}
