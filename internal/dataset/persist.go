package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"securepki.org/registrarsec/internal/simtime"
)

// Snapshot persistence in a TSV format close to what OpenINTEL publishes:
// one record per line, a header line naming the day. Archives written by
// regsec-scan can be re-read by regsec-report and by downstream tooling.
//
// Two dialects share the record layout:
//
//   - the plain TSV format written by WriteTSV / read by ReadTSV, and
//   - the journaled archive format (archive.go), which wraps every
//     snapshot section with a length+CRC32C trailer so torn writes and
//     bit rot are detectable.

// tsvHeader introduces one snapshot section.
const tsvHeader = "#snapshot"

// WriteTSV serializes the snapshot.
func (s *Snapshot) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\t%s\t%d\n", tsvHeader, s.Day, len(s.Records))
	for i := range s.Records {
		writeRecord(bw, &s.Records[i])
	}
	return bw.Flush()
}

// writeRecord renders one record line. The ninth column is the measurement
// status: "ok", or the failure class of an unmeasured target.
func writeRecord(bw io.Writer, r *Record) {
	status := "ok"
	if r.Failed {
		status = r.FailReason
		if status == "" {
			status = "failed"
		}
	}
	fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%t\t%t\t%t\t%t\t%s\n",
		r.Domain, r.TLD, r.Operator, strings.Join(r.NSHosts, ","),
		r.HasDNSKEY, r.HasRRSIG, r.HasDS, r.ChainValid, status)
}

// WriteTSV serializes every snapshot in the store, oldest first.
func (s *Store) WriteTSV(w io.Writer) error {
	for _, day := range s.Days() {
		if err := s.Get(day).WriteTSV(w); err != nil {
			return err
		}
	}
	return nil
}

// parseSnapshotHeader parses a "#snapshot <day> [count]" line. The declared
// record count is -1 when the header omits it (hand-written archives).
func parseSnapshotHeader(fields []string) (simtime.Day, int, error) {
	if len(fields) < 2 {
		return 0, 0, fmt.Errorf("bad snapshot header")
	}
	day, err := simtime.Parse(fields[1])
	if err != nil {
		return 0, 0, err
	}
	declared := -1
	if len(fields) >= 3 {
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad record count %q", fields[2])
		}
		declared = n
	}
	return day, declared, nil
}

// parseRecordFields parses one record line's tab-split fields. Eight fields
// is the legacy (pre-status-column) record layout.
func parseRecordFields(fields []string) (Record, error) {
	if len(fields) != 8 && len(fields) != 9 {
		return Record{}, fmt.Errorf("%d fields, want 8 or 9", len(fields))
	}
	rec := Record{Domain: fields[0], TLD: fields[1], Operator: fields[2]}
	// An empty NS field means "no NS hosts": it must stay nil rather than
	// re-parse as [""], which strings.Split would produce.
	if fields[3] != "" {
		rec.NSHosts = strings.Split(fields[3], ",")
	}
	bools := [4]*bool{&rec.HasDNSKEY, &rec.HasRRSIG, &rec.HasDS, &rec.ChainValid}
	for i, f := range fields[4:8] {
		v, err := strconv.ParseBool(f)
		if err != nil {
			return Record{}, fmt.Errorf("bad bool %q", f)
		}
		*bools[i] = v
	}
	if len(fields) == 9 && fields[8] != "ok" {
		rec.Failed = true
		rec.FailReason = fields[8]
	}
	return rec, nil
}

// ReadTSV parses one or more snapshot sections into a store. It validates
// the record count each section header declares against the records
// actually present, and rejects archives carrying the same day twice —
// both are signs of a torn or hand-mangled file that would otherwise skew
// every downstream series. Trailered archives (sections ending in "#end")
// must be read with ReadArchive instead.
func ReadTSV(r io.Reader) (*Store, error) {
	store := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *Snapshot
	declared := -1
	headerLine := 0
	lineNo := 0
	closeSection := func() error {
		if cur == nil {
			return nil
		}
		if declared >= 0 && declared != len(cur.Records) {
			return fmt.Errorf("dataset: line %d: snapshot %s declares %d records, found %d (truncated or torn archive?)",
				headerLine, cur.Day, declared, len(cur.Records))
		}
		if store.Get(cur.Day) != nil {
			return fmt.Errorf("dataset: line %d: duplicate snapshot day %s", headerLine, cur.Day)
		}
		store.Add(cur)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if fields[0] == tsvHeader {
			if err := closeSection(); err != nil {
				return nil, err
			}
			day, n, err := parseSnapshotHeader(fields)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			cur = &Snapshot{Day: day}
			declared, headerLine = n, lineNo
			if n > 0 {
				cur.Records = make([]Record, 0, n)
			}
			continue
		}
		if strings.HasPrefix(fields[0], "#") {
			if fields[0] == trailerHeader {
				return nil, fmt.Errorf("dataset: line %d: trailered archive section (use ReadArchive)", lineNo)
			}
			return nil, fmt.Errorf("dataset: line %d: unknown directive %q", lineNo, fields[0])
		}
		if cur == nil {
			return nil, fmt.Errorf("dataset: line %d: record before snapshot header", lineNo)
		}
		rec, err := parseRecordFields(fields)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		cur.Records = append(cur.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := closeSection(); err != nil {
		return nil, err
	}
	return store, nil
}
