package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"securepki.org/registrarsec/internal/simtime"
)

// Snapshot persistence in a TSV format close to what OpenINTEL publishes:
// one record per line, a header line naming the day. Archives written by
// regsec-scan can be re-read by regsec-report and by downstream tooling.

// tsvHeader introduces one snapshot section.
const tsvHeader = "#snapshot"

// WriteTSV serializes the snapshot.
func (s *Snapshot) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\t%s\t%d\n", tsvHeader, s.Day, len(s.Records))
	for i := range s.Records {
		r := &s.Records[i]
		// The ninth column is the measurement status: "ok", or the
		// failure class of an unmeasured target.
		status := "ok"
		if r.Failed {
			status = r.FailReason
			if status == "" {
				status = "failed"
			}
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%t\t%t\t%t\t%t\t%s\n",
			r.Domain, r.TLD, r.Operator, strings.Join(r.NSHosts, ","),
			r.HasDNSKEY, r.HasRRSIG, r.HasDS, r.ChainValid, status)
	}
	return bw.Flush()
}

// WriteTSV serializes every snapshot in the store, oldest first.
func (s *Store) WriteTSV(w io.Writer) error {
	for _, day := range s.Days() {
		if err := s.Get(day).WriteTSV(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadTSV parses one or more snapshot sections into a store.
func ReadTSV(r io.Reader) (*Store, error) {
	store := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *Snapshot
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if fields[0] == tsvHeader {
			if cur != nil {
				store.Add(cur)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("dataset: line %d: bad snapshot header", lineNo)
			}
			day, err := simtime.Parse(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			cur = &Snapshot{Day: day}
			if len(fields) >= 3 {
				if n, err := strconv.Atoi(fields[2]); err == nil {
					cur.Records = make([]Record, 0, n)
				}
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dataset: line %d: record before snapshot header", lineNo)
		}
		// Eight fields is the legacy (pre-status-column) record layout.
		if len(fields) != 8 && len(fields) != 9 {
			return nil, fmt.Errorf("dataset: line %d: %d fields, want 8 or 9", lineNo, len(fields))
		}
		rec := Record{Domain: fields[0], TLD: fields[1], Operator: fields[2]}
		if fields[3] != "" {
			rec.NSHosts = strings.Split(fields[3], ",")
		}
		bools := [4]*bool{&rec.HasDNSKEY, &rec.HasRRSIG, &rec.HasDS, &rec.ChainValid}
		for i, f := range fields[4:8] {
			v, err := strconv.ParseBool(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad bool %q", lineNo, f)
			}
			*bools[i] = v
		}
		if len(fields) == 9 && fields[8] != "ok" {
			rec.Failed = true
			rec.FailReason = fields[8]
		}
		cur.Records = append(cur.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		store.Add(cur)
	}
	return store, nil
}
