package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/simtime"
)

func TestGroupOperator(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ns01.domaincontrol.com", "domaincontrol.com"},
		{"NS02.DOMAINCONTROL.COM", "domaincontrol.com"},
		{"dns1.registrar-servers.com", "registrar-servers.com"},
		{"a.b.c.ovh.net", "ovh.net"},
		// Amazon Route 53 convention collapses across TLDs.
		{"ns-123.awsdns-13.net", "awsdns"},
		{"ns-99.awsdns-07.co.uk", "awsdns"},
		// 1&1 per-ccTLD servers collapse.
		{"ns-1and1.co.uk", "1and1"},
		{"ns.1and1.fr", "1and1"},
		{"", ""},
		{"com", "com"},
	}
	for _, c := range cases {
		if got := GroupOperator(c.in); got != c.want {
			t.Errorf("GroupOperator(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := GroupOperatorAll([]string{"ns1.ovh.net", "ns2.other.net"}); got != "ovh.net" {
		t.Errorf("GroupOperatorAll = %q", got)
	}
	if got := GroupOperatorAll(nil); got != "" {
		t.Errorf("GroupOperatorAll(nil) = %q", got)
	}
}

func TestRecordDeployment(t *testing.T) {
	cases := []struct {
		rec  Record
		want dnssec.Deployment
	}{
		{Record{}, dnssec.DeploymentNone},
		{Record{HasDNSKEY: true}, dnssec.DeploymentPartial},
		{Record{HasDNSKEY: true, HasDS: true, ChainValid: true}, dnssec.DeploymentFull},
		{Record{HasDNSKEY: true, HasDS: true}, dnssec.DeploymentBroken},
	}
	for i, c := range cases {
		if got := c.rec.Deployment(); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if s.Latest() != nil || s.Len() != 0 {
		t.Error("empty store misbehaves")
	}
	d1, d2 := simtime.Date(2016, 1, 1), simtime.Date(2016, 6, 1)
	s.Add(&Snapshot{Day: d2})
	s.Add(&Snapshot{Day: d1})
	days := s.Days()
	if len(days) != 2 || days[0] != d1 || days[1] != d2 {
		t.Errorf("days: %v", days)
	}
	if s.Latest().Day != d2 {
		t.Errorf("latest: %v", s.Latest().Day)
	}
	if s.Get(d1) == nil || s.Get(simtime.Date(2015, 1, 1)) != nil {
		t.Error("Get wrong")
	}
	// Replacement.
	s.Add(&Snapshot{Day: d1, Records: []Record{{Domain: "x.com"}}})
	if len(s.Get(d1).Records) != 1 || s.Len() != 2 {
		t.Error("replacement failed")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 1, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net", "ns2.op.net"},
			HasDNSKEY: true, HasRRSIG: true, HasDS: true, ChainValid: true},
		{Domain: "b.com", TLD: "com", Operator: "other.net", NSHosts: []string{"ns1.other.net"}},
	}})
	store.Add(&Snapshot{Day: simtime.Date(2016, 6, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"},
			HasDNSKEY: true, HasRRSIG: true},
	}})
	var buf bytes.Buffer
	if err := store.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("snapshots: %d", got.Len())
	}
	s1 := got.Get(simtime.Date(2016, 1, 1))
	if len(s1.Records) != 2 {
		t.Fatalf("records: %d", len(s1.Records))
	}
	if !reflect.DeepEqual(s1.Records, store.Get(simtime.Date(2016, 1, 1)).Records) {
		t.Errorf("records differ:\n%+v\n%+v", s1.Records, store.Get(simtime.Date(2016, 1, 1)).Records)
	}
}

func TestTSVFailedRecordRoundTrip(t *testing.T) {
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 6, 1), Records: []Record{
		{Domain: "up.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"}, HasDNSKEY: true},
		{Domain: "down.com", TLD: "com", Failed: true, FailReason: "timeout"},
		{Domain: "odd.com", TLD: "com", Failed: true}, // no class recorded
	}})
	var buf bytes.Buffer
	if err := store.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := got.Get(simtime.Date(2016, 6, 1)).Records
	if len(recs) != 3 {
		t.Fatalf("records: %d", len(recs))
	}
	if recs[0].Failed || !recs[0].Measured() {
		t.Errorf("up.com marked failed after round trip: %+v", recs[0])
	}
	if !recs[1].Failed || recs[1].FailReason != "timeout" || recs[1].Measured() {
		t.Errorf("down.com lost its gap marker: %+v", recs[1])
	}
	// A Failed record without a class still round-trips as failed.
	if !recs[2].Failed || recs[2].FailReason != "failed" {
		t.Errorf("odd.com: %+v", recs[2])
	}
	if got.Get(simtime.Date(2016, 6, 1)).MeasuredCount() != 1 {
		t.Errorf("MeasuredCount = %d, want 1", got.Get(simtime.Date(2016, 6, 1)).MeasuredCount())
	}

	// Legacy eight-field archives (no status column) read as measured.
	legacy := "#snapshot\t2016-01-01\t1\nold.com\tcom\top.net\tns1.op.net\ttrue\tfalse\tfalse\tfalse\n"
	old, err := ReadTSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if r := old.Get(simtime.Date(2016, 1, 1)).Records[0]; r.Failed || !r.Measured() {
		t.Errorf("legacy record marked failed: %+v", r)
	}
}

func TestTSVEmptyNSHostsRoundTrip(t *testing.T) {
	// strings.Join(nil, ",") writes an empty NS field; it must come back
	// as no NS hosts, never as [""].
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 1, 1), Records: []Record{
		{Domain: "lame.com", TLD: "com", Operator: ""},
		{Domain: "gap.com", TLD: "com", Failed: true, FailReason: "timeout"},
		{Domain: "ok.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"}},
	}})
	var buf bytes.Buffer
	if err := store.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs := got.Get(simtime.Date(2016, 1, 1)).Records
	for _, i := range []int{0, 1} {
		if n := len(recs[i].NSHosts); n != 0 {
			t.Errorf("%s: NSHosts = %q, want none", recs[i].Domain, recs[i].NSHosts)
		}
		if recs[i].NSHosts != nil {
			t.Errorf("%s: empty NS field parsed as %#v, want nil", recs[i].Domain, recs[i].NSHosts)
		}
	}
	if len(recs[2].NSHosts) != 1 {
		t.Errorf("ok.com: NSHosts = %q", recs[2].NSHosts)
	}
}

func TestReadTSVRecordCountMismatch(t *testing.T) {
	// The header declares 2 records but only 1 survives — a torn write
	// must be an error, not a silently shorter day.
	torn := "#snapshot\t2016-01-01\t2\na.com\tcom\top\tns1.op.net\ttrue\ttrue\ttrue\ttrue\tok\n"
	if _, err := ReadTSV(strings.NewReader(torn)); err == nil {
		t.Error("count mismatch accepted")
	}
	// A headerless count (hand-written archive) is still tolerated.
	loose := "#snapshot\t2016-01-01\na.com\tcom\top\tns1.op.net\ttrue\ttrue\ttrue\ttrue\tok\n"
	if _, err := ReadTSV(strings.NewReader(loose)); err != nil {
		t.Errorf("countless header rejected: %v", err)
	}
	// Mismatch on the final section (EOF close) is caught too.
	tail := "#snapshot\t2016-01-01\t1\na.com\tcom\top\t\ttrue\ttrue\ttrue\ttrue\tok\n#snapshot\t2016-06-01\t3\n"
	if _, err := ReadTSV(strings.NewReader(tail)); err == nil {
		t.Error("trailing count mismatch accepted")
	}
}

func TestReadTSVDuplicateDayRejected(t *testing.T) {
	rec := "a.com\tcom\top\tns1.op.net\ttrue\ttrue\ttrue\ttrue\tok\n"
	dup := "#snapshot\t2016-01-01\t1\n" + rec + "#snapshot\t2016-01-01\t1\n" + rec
	if _, err := ReadTSV(strings.NewReader(dup)); err == nil {
		t.Error("duplicate snapshot day accepted")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"a.com\tcom\top\tns\ttrue\ttrue\ttrue\ttrue\n", // record before header
		"#snapshot\n",                                            // missing day
		"#snapshot\tnot-a-date\t1\n",                             // bad day
		"#snapshot\t2016-01-01\t1\na.com\tcom\top\n",             // short record
		"#snapshot\t2016-01-01\t1\na\tcom\top\tns\tx\tt\tt\tt\n", // bad bool
	}
	for i, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Empty input yields an empty store.
	store, err := ReadTSV(strings.NewReader(""))
	if err != nil || store.Len() != 0 {
		t.Errorf("empty input: %v, %d", err, store.Len())
	}
}
