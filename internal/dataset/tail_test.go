package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// tailSnap builds a small valid snapshot for archive writing.
func tailSnap(day simtime.Day, n int) *Snapshot {
	s := &Snapshot{Day: day}
	for i := 0; i < n; i++ {
		s.Records = append(s.Records, Record{
			Domain: fmt.Sprintf("d%02d-%d.com", i, day), TLD: "com",
			Operator: "op.example", NSHosts: []string{"ns1.op.example"},
			HasDNSKEY: i%2 == 0, HasRRSIG: i%2 == 0,
		})
	}
	return s
}

// sectionBytes renders one trailered section.
func sectionBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteArchiveSection(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTail(t *testing.T, path string, chunks ...[]byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTailConsumesCompleteSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1, s2 := sectionBytes(t, tailSnap(10, 3)), sectionBytes(t, tailSnap(11, 2))
	writeTail(t, path, s1, s2)

	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != 2 || len(res.Quarantined()) != 0 {
		t.Fatalf("got %d snapshots, %d quarantined, want 2/0", len(res.Snapshots()), len(res.Quarantined()))
	}
	if res.Snapshots()[0].Day != 10 || res.Snapshots()[1].Day != 11 {
		t.Fatalf("days %v/%v, want 10/11", res.Snapshots()[0].Day, res.Snapshots()[1].Day)
	}
	if want := int64(len(s1) + len(s2)); res.Offset != want {
		t.Fatalf("Offset %d, want %d", res.Offset, want)
	}

	// A second poll from the resume offset sees nothing new.
	res2, err := TailArchive(path, res.Offset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Snapshots()) != 0 || res2.Offset != res.Offset {
		t.Fatalf("re-poll consumed %d snapshots, offset %d→%d", len(res2.Snapshots()), res.Offset, res2.Offset)
	}
}

// TestTailLeavesGrowingSection: a trailing section with no trailer yet is
// not consumed — the writer may still be appending — and is picked up
// whole once its trailer lands.
func TestTailLeavesGrowingSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1 := sectionBytes(t, tailSnap(10, 3))
	s2 := sectionBytes(t, tailSnap(11, 4))
	for cut := 1; cut < len(s2); cut++ {
		os.Remove(path)
		writeTail(t, path, s1, s2[:cut])
		res, err := TailArchive(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Snapshots()) != 1 || len(res.Quarantined()) != 0 {
			t.Fatalf("cut %d: got %d snapshots, %d quarantined, want 1/0", cut, len(res.Snapshots()), len(res.Quarantined()))
		}
		if res.Offset != int64(len(s1)) {
			t.Fatalf("cut %d: Offset %d, want %d (partial section must stay unconsumed)", cut, res.Offset, len(s1))
		}
		// The rest of the section arrives; the next poll consumes it.
		writeTail(t, path, s2[cut:])
		res2, err := TailArchive(path, res.Offset)
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.Snapshots()) != 1 || res2.Snapshots()[0].Day != 11 || len(res2.Snapshots()[0].Records) != 4 {
			t.Fatalf("cut %d: completed section not consumed on re-poll: %+v", cut, res2)
		}
		if res2.Offset != int64(len(s1)+len(s2)) {
			t.Fatalf("cut %d: final Offset %d, want %d", cut, res2.Offset, len(s1)+len(s2))
		}
	}
}

// TestTailTornSuperseded: a section abandoned without a trailer becomes
// final damage the moment a newer section header follows it.
func TestTailTornSuperseded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1 := sectionBytes(t, tailSnap(10, 3))
	torn := s1[:len(s1)/2]
	if !bytes.HasSuffix(torn, []byte("\n")) {
		torn = s1[:bytes.LastIndexByte(s1[:len(s1)/2], '\n')+1]
	}
	s2 := sectionBytes(t, tailSnap(11, 2))
	writeTail(t, path, torn, s2)

	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != 1 || res.Snapshots()[0].Day != 11 {
		t.Fatalf("snapshots %+v, want just day 11", res.Snapshots())
	}
	if len(res.Quarantined()) != 1 || !strings.Contains(res.Quarantined()[0].Reason, "torn") {
		t.Fatalf("quarantined %+v, want one torn-write entry", res.Quarantined())
	}
	if res.Offset != int64(len(torn)+len(s2)) {
		t.Fatalf("Offset %d, want %d (torn section must be consumed once superseded)", res.Offset, len(torn)+len(s2))
	}
}

// TestTailCorruptSection: a section whose bytes no longer hash to its
// trailer is quarantined and consumed — damage at rest is final.
func TestTailCorruptSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1 := sectionBytes(t, tailSnap(10, 3))
	corrupt := append([]byte(nil), s1...)
	corrupt[bytes.IndexByte(corrupt, '\n')+2] ^= 0x20 // flip a record byte
	s2 := sectionBytes(t, tailSnap(11, 2))
	writeTail(t, path, corrupt, s2)

	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != 1 || res.Snapshots()[0].Day != 11 {
		t.Fatalf("snapshots %+v, want just day 11", res.Snapshots())
	}
	if len(res.Quarantined()) != 1 {
		t.Fatalf("quarantined %+v, want one entry", res.Quarantined())
	}
	if res.Offset != int64(len(corrupt)+len(s2)) {
		t.Fatalf("Offset %d, want %d", res.Offset, len(corrupt)+len(s2))
	}
}

// TestTailStrayBytes: garbage between sections is consumed and reported
// once, and the sections around it still verify.
func TestTailStrayBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1 := sectionBytes(t, tailSnap(10, 2))
	stray := []byte("not\ta\trecord\nmore junk\n\n")
	s2 := sectionBytes(t, tailSnap(11, 2))
	writeTail(t, path, s1, stray, s2)

	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(res.Snapshots()))
	}
	if len(res.Quarantined()) != 1 {
		t.Fatalf("quarantined %+v, want one stray-run entry", res.Quarantined())
	}
	if res.Offset != int64(len(s1)+len(stray)+len(s2)) {
		t.Fatalf("Offset %d, want %d", res.Offset, len(s1)+len(stray)+len(s2))
	}
}

// TestTailTruncatedArchive: an archive smaller than the resume offset is
// a rotation/rewrite, not a tail — the caller must reset.
func TestTailTruncatedArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	writeTail(t, path, sectionBytes(t, tailSnap(10, 2)))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TailArchive(path, st.Size()+1); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("TailArchive past EOF = %v, want ErrTailTruncated", err)
	}
	if _, err := TailArchive(path, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

// TestTailMatchesReadArchive: over a finished archive (mixed damage, no
// open tail) the tail scanner and the batch salvage reader agree on what
// is intact and what is quarantined.
func TestTailMatchesReadArchive(t *testing.T) {
	s1 := sectionBytes(t, tailSnap(10, 3))
	corrupt := append([]byte(nil), sectionBytes(t, tailSnap(11, 2))...)
	corrupt[bytes.IndexByte(corrupt, '\n')+2] ^= 0x20
	s3 := sectionBytes(t, tailSnap(12, 1))
	archive := bytes.Join([][]byte{s1, corrupt, []byte("stray line\n"), s3}, nil)

	path := filepath.Join(t.TempDir(), "a.archive")
	writeTail(t, path, archive)
	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	store, report, err := ReadArchive(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != len(store.Days()) {
		t.Fatalf("tail salvaged %d sections, batch reader %d", len(res.Snapshots()), len(store.Days()))
	}
	for _, snap := range res.Snapshots() {
		got := store.Get(snap.Day)
		if got == nil || len(got.Records) != len(snap.Records) {
			t.Fatalf("day %v: tail and batch reader disagree", snap.Day)
		}
	}
	if len(res.Quarantined()) != len(report.Quarantined) {
		t.Fatalf("tail quarantined %d, batch reader %d:\n%v\nvs\n%v",
			len(res.Quarantined()), len(report.Quarantined), res.Quarantined(), report.Quarantined)
	}
	if res.Offset != int64(len(archive)) {
		t.Fatalf("Offset %d, want %d", res.Offset, len(archive))
	}
}

// TestTailStrayAtEOFStaysPending: a stray run nothing has superseded yet
// must not be consumed — the committed cursor may only cover finalized
// events, or a resumed scan would double-count the damage.
func TestTailStrayAtEOFStaysPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.archive")
	s1 := sectionBytes(t, tailSnap(10, 2))
	writeTail(t, path, s1, []byte("junk line\n"))

	res, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots()) != 1 || len(res.Quarantined()) != 0 {
		t.Fatalf("got %d snapshots, %d quarantined, want 1/0", len(res.Snapshots()), len(res.Quarantined()))
	}
	if res.Offset != int64(len(s1)) {
		t.Fatalf("Offset %d, want %d (pending stray run must stay unconsumed)", res.Offset, len(s1))
	}
	// A section header finalizes the stray run on the next poll.
	s2 := sectionBytes(t, tailSnap(11, 1))
	writeTail(t, path, s2)
	res2, err := TailArchive(path, res.Offset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Snapshots()) != 1 || len(res2.Quarantined()) != 1 {
		t.Fatalf("got %d snapshots, %d quarantined after supersession, want 1/1", len(res2.Snapshots()), len(res2.Quarantined()))
	}
}

// TestTailEventOffsetsAreResumePoints: resuming a scan from any event's
// End yields exactly the events after it — the property that makes a
// cursor committed mid-batch equivalent to one committed at the end.
func TestTailEventOffsetsAreResumePoints(t *testing.T) {
	s1 := sectionBytes(t, tailSnap(10, 2))
	corrupt := append([]byte(nil), sectionBytes(t, tailSnap(11, 2))...)
	corrupt[bytes.IndexByte(corrupt, '\n')+2] ^= 0x20
	s3 := sectionBytes(t, tailSnap(12, 3))
	path := filepath.Join(t.TempDir(), "a.archive")
	writeTail(t, path, s1, corrupt, []byte("stray\n"), s3)

	full, err := TailArchive(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Events) != 4 { // s1, corrupt, stray, s3
		t.Fatalf("got %d events, want 4: %+v", len(full.Events), full.Events)
	}
	for i, ev := range full.Events {
		res, err := TailArchive(path, ev.End)
		if err != nil {
			t.Fatalf("resume at event %d (offset %d): %v", i, ev.End, err)
		}
		if len(res.Events) != len(full.Events)-i-1 {
			t.Fatalf("resume at event %d: got %d events, want %d", i, len(res.Events), len(full.Events)-i-1)
		}
		for j, got := range res.Events {
			want := full.Events[i+1+j]
			if got.End != want.End || (got.Snap == nil) != (want.Snap == nil) {
				t.Fatalf("resume at event %d, event %d: got %+v, want %+v", i, j, got, want)
			}
		}
	}
}
