// Package dataset defines the longitudinal measurement records produced by
// the scan engine — the analogue of the paper's OpenINTEL daily snapshots
// (section 4.1) — together with the DNS-operator grouping rules of section
// 4.2 and a snapshot store for time-series analysis.
package dataset

import (
	"regexp"
	"sort"
	"strings"
	"sync"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
)

// Record is one domain's observed state on one day: the NS, DS, DNSKEY and
// RRSIG facts the paper's dataset carries for every second-level domain.
type Record struct {
	Domain string
	TLD    string
	// NSHosts are the delegation's nameserver names from the TLD zone.
	NSHosts []string
	// Operator is the grouped DNS operator identity (see GroupOperator).
	Operator string
	// HasDNSKEY is whether the domain serves at least one DNSKEY.
	HasDNSKEY bool
	// HasRRSIG is whether the DNSKEY RRset is signed.
	HasRRSIG bool
	// HasDS is whether the TLD zone carries a DS RRset for the domain.
	HasDS bool
	// ChainValid is whether a DS matches a served DNSKEY and the DNSKEY
	// RRset signature verifies.
	ChainValid bool
	// Failed marks a target that could not be measured that day — the
	// OpenINTEL-style measurement-gap marker. A failed record's DNSSEC
	// fields are meaningless and must not enter deployment statistics:
	// "could not measure" is not "no DNSKEY".
	Failed bool
	// FailReason carries the failure class when Failed ("timeout",
	// "lame", ...), empty otherwise.
	FailReason string
}

// Measured reports whether the record carries a real observation.
func (r *Record) Measured() bool { return !r.Failed }

// Deployment classifies the record per the paper's taxonomy.
func (r *Record) Deployment() dnssec.Deployment {
	return dnssec.Classify(r.HasDNSKEY, r.HasDS, r.ChainValid)
}

// Snapshot is all records observed on one day. Records with Failed set are
// placeholders for targets the sweep could not measure; they keep the gap
// visible in the archive without polluting deployment statistics.
type Snapshot struct {
	Day     simtime.Day
	Records []Record
}

// Canonicalize sorts the records into the deterministic archive order (by
// TLD, then domain). Scan sweeps append records in worker-completion
// order; canonicalizing before archiving makes two runs over the same
// targets produce byte-identical archives — the property the
// checkpoint/resume path's integrity checks rely on.
func (s *Snapshot) Canonicalize() {
	sort.Slice(s.Records, func(i, j int) bool {
		a, b := &s.Records[i], &s.Records[j]
		if a.TLD != b.TLD {
			return a.TLD < b.TLD
		}
		return a.Domain < b.Domain
	})
}

// MeasuredCount returns how many records carry real observations.
func (s *Snapshot) MeasuredCount() int {
	n := 0
	for i := range s.Records {
		if s.Records[i].Measured() {
			n++
		}
	}
	return n
}

// awsdnsPattern matches Amazon Route 53's nameserver naming convention,
// awsdns-NN.TLD (footnote 15): the second-level grouping rule would split
// Amazon into one operator per TLD without this special case.
var awsdnsPattern = regexp.MustCompile(`(^|\.)awsdns-\d+\.[a-z.]+$`)

// GroupOperator maps an authoritative nameserver hostname to a DNS-operator
// identity. The base rule is the nameserver's second-level domain; two
// special cases from the paper are applied: Amazon's awsdns-NN.* fleet
// collapses to "awsdns", and 1&1's per-ccTLD nameservers collapse to
// "1and1" (footnotes 13 and 15).
func GroupOperator(nsHost string) string {
	h := dnswire.CanonicalName(nsHost)
	if h == "" {
		return ""
	}
	if awsdnsPattern.MatchString(h) {
		return "awsdns"
	}
	// 1and1 nameservers share the "1and1" second-level label across many
	// ccTLDs (ns-1and1.co.uk, ns.1and1.fr, ...).
	for _, label := range dnswire.SplitLabels(h) {
		if label == "1and1" || strings.HasSuffix(label, "-1and1") {
			return "1and1"
		}
	}
	return dnswire.SecondLevel(h)
}

// GroupOperatorAll groups a whole NS set, using the first host's group (NS
// sets virtually always share an operator; the paper groups by the shared
// second-level domain).
func GroupOperatorAll(nsHosts []string) string {
	if len(nsHosts) == 0 {
		return ""
	}
	return GroupOperator(nsHosts[0])
}

// Store is a day-indexed snapshot archive.
type Store struct {
	mu        sync.RWMutex
	snapshots map[simtime.Day]*Snapshot
}

// NewStore creates an empty archive.
func NewStore() *Store {
	return &Store{snapshots: make(map[simtime.Day]*Snapshot)}
}

// Add inserts or replaces a snapshot.
func (s *Store) Add(snap *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshots[snap.Day] = snap
}

// Get returns the snapshot for day, or nil.
func (s *Store) Get(day simtime.Day) *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapshots[day]
}

// Days returns the archived days in ascending order.
func (s *Store) Days() []simtime.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	days := make([]simtime.Day, 0, len(s.snapshots))
	for d := range s.snapshots {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days
}

// Latest returns the most recent snapshot, or nil when empty.
func (s *Store) Latest() *Snapshot {
	days := s.Days()
	if len(days) == 0 {
		return nil
	}
	return s.Get(days[len(days)-1])
}

// Len returns the number of archived snapshots.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.snapshots)
}
