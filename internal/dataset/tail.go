package dataset

// Incremental archive tailing: the always-on observatory re-reads only
// the archive's growing tail, not the whole file, and must distinguish
// three tail states a batch reader never sees:
//
//   - a complete, verified section → consume it and advance the offset;
//   - damage that is *final* — a section whose trailer fails
//     verification, or a torn/stray run superseded by a newer section
//     header → quarantine and consume;
//   - a trailing section (or stray run) nothing has superseded yet →
//     possibly still being appended: leave it unconsumed and re-examine
//     on the next poll.
//
// The scan yields an ordered event list, each event carrying the exact
// resume offset after consuming it. Consumers that persist their cursor
// commit only at event boundaries (or at Offset, past any trailing blank
// lines), which makes the consumed state a pure function of the archive
// prefix before the cursor — the same purity that makes colstore ingest
// crash-safe: however a run of polls is interrupted and resumed, the
// sequence of events before any committed offset is identical to a
// single clean scan. A partial final line is never consumed (the writer
// may be mid-write), and blank lines between sections are consumed
// silently, mirroring ReadArchive's salvage semantics.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// ErrTailTruncated reports that the archive is now smaller than the
// resume offset: it was rewritten or rotated underneath the tailer, and
// the caller must reset to a full re-ingest rather than resume.
var ErrTailTruncated = errors.New("dataset: archive shrank below the resume offset")

// TailEvent is one consumed outcome: exactly one of Snap and Damage is
// non-nil.
type TailEvent struct {
	// Snap is a verified section's snapshot.
	Snap *Snapshot
	// Damage describes a quarantined section or stray run. Line numbers
	// are 1-based within this scan's window, not the whole file.
	Damage *Corruption
	// End is the absolute archive offset just past this event: resuming
	// a scan there yields exactly the events after this one.
	End int64
}

// TailResult is the outcome of one tail scan.
type TailResult struct {
	// Events lists everything consumed, in file order. Day-level
	// deduplication is deliberately not applied here; the consumer's
	// ingest is idempotent per day.
	Events []TailEvent
	// Offset is the absolute resume offset: at least the last event's
	// End, plus any trailing blank lines. Every byte before it has been
	// consumed, every byte after it has not.
	Offset int64
}

// Snapshots returns the verified sections, in file order.
func (r *TailResult) Snapshots() []*Snapshot {
	var out []*Snapshot
	for _, ev := range r.Events {
		if ev.Snap != nil {
			out = append(out, ev.Snap)
		}
	}
	return out
}

// Quarantined returns the damage entries, in file order.
func (r *TailResult) Quarantined() []Corruption {
	var out []Corruption
	for _, ev := range r.Events {
		if ev.Damage != nil {
			out = append(out, *ev.Damage)
		}
	}
	return out
}

// TailArchive scans path's bytes from offset `from` (the Offset or an
// event End of a previous scan, 0 for a fresh start) and returns whatever
// complete sections have appeared since. An archive smaller than `from`
// returns ErrTailTruncated.
func TailArchive(path string, from int64) (*TailResult, error) {
	if from < 0 {
		return nil, fmt.Errorf("dataset: negative tail offset %d", from)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < from {
		return nil, fmt.Errorf("%w: offset %d, archive is %d bytes", ErrTailTruncated, from, st.Size())
	}
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	res := scanTail(data)
	for i := range res.Events {
		res.Events[i].End += from
	}
	res.Offset += from
	return res, nil
}

// scanTail walks one window of archive bytes and decides, line by line,
// what is consumable. Offsets in the result are relative to the window.
func scanTail(data []byte) *TailResult {
	res := &TailResult{}
	var (
		cur      *section // open snapshot section, nil otherwise
		strayLn  int      // first line of an open stray run, 0 otherwise
		consumed int
		lineNo   int
		off      int
	)
	emit := func(ev TailEvent, end int) {
		ev.End = int64(end)
		res.Events = append(res.Events, ev)
		consumed = end
	}
	// closeStray finalizes an open stray run: it has been superseded by
	// end (the start of a new section header), so the damage is final.
	closeStray := func(end int) {
		if strayLn > 0 {
			emit(TailEvent{Damage: &Corruption{Line: strayLn, Reason: "records outside any section"}}, end)
			strayLn = 0
		}
	}
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		full := nl >= 0
		lineEnd := len(data)
		if full {
			lineEnd = off + nl + 1
		}
		line := string(data[off:lineEnd])
		lineNo++
		text := strings.TrimSuffix(line, "\n")
		fields := strings.Split(text, "\t")

		switch {
		case !full:
			// A line still being written: nothing from here on is
			// decidable yet.
			res.Offset = int64(consumed)
			return res

		case fields[0] == tsvHeader:
			closeStray(off)
			if cur != nil {
				// The writer started a new section without closing the
				// previous one — that tear is final.
				emit(TailEvent{Damage: &Corruption{
					Day: cur.day, Line: cur.headerLn, Reason: "missing trailer (torn write)"}}, off)
			}
			cur = &section{headerLn: lineNo, declared: -1}
			cur.raw.WriteString(line)
			if len(fields) >= 2 {
				cur.day = fields[1]
			}
			day, declared, err := parseSnapshotHeader(fields)
			if err != nil {
				cur.bad = fmt.Sprintf("bad header: %v", err)
			} else {
				cur.parsed, cur.declared = day, declared
				cur.snap = &Snapshot{Day: day}
			}

		case cur != nil:
			if fields[0] == trailerHeader {
				// The trailer is not part of the checksummed section body.
				if reason := checkTrailer(cur, fields, true); reason != "" {
					emit(TailEvent{Damage: &Corruption{Day: cur.day, Line: cur.headerLn, Reason: reason}}, lineEnd)
				} else {
					emit(TailEvent{Snap: cur.snap}, lineEnd)
				}
				cur = nil
				break
			}
			cur.raw.WriteString(line)
			if cur.bad != "" {
				break // keep consuming the damaged section's bytes
			}
			if text == "" {
				cur.bad = "blank line inside section"
				break
			}
			rec, err := parseRecordFields(fields)
			if err != nil {
				cur.bad = fmt.Sprintf("line %d: %v", lineNo, err)
			} else {
				cur.snap.Records = append(cur.snap.Records, rec)
			}

		default:
			// Outside any section: blank lines are consumed silently;
			// anything else opens (or continues) a stray run that stays
			// pending until a section header supersedes it.
			if text == "" && strayLn == 0 {
				consumed = lineEnd
			} else if text != "" && strayLn == 0 {
				strayLn = lineNo
			}
		}
		off = lineEnd
	}
	// A trailing open section or stray run has not been superseded — it
	// may still be growing, so it stays unconsumed for the next poll.
	res.Offset = int64(consumed)
	return res
}

// The trailer line of a section is handled inside the cur != nil branch
// above; a trailer with no open section is stray bytes by definition and
// falls into the stray-run handling, same as ReadArchive's orphan case.
