package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// fakeRecords fabricates a deterministic, shuffled record population with
// every field class exercised (failed records, empty NS sets, multi-host
// NS sets).
func fakeRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	tlds := []string{"com", "net", "org", "nl", "se"}
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		tld := tlds[rng.Intn(len(tlds))]
		r := Record{
			Domain:   fmt.Sprintf("d%06d.%s", i, tld),
			TLD:      tld,
			Operator: fmt.Sprintf("op%d", rng.Intn(40)),
		}
		switch rng.Intn(4) {
		case 0:
			r.Failed, r.FailReason = true, "timeout"
		case 1:
			r.NSHosts = []string{"ns1.x.net", "ns2.x.net"}
			r.HasDNSKEY, r.HasRRSIG = true, true
		case 2:
			r.NSHosts = []string{"ns1.y.net"}
			r.HasDNSKEY, r.HasDS, r.ChainValid, r.HasRRSIG = true, true, true, true
		}
		recs = append(recs, r)
	}
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

// oracleSection renders records through the in-RAM path.
func oracleSection(t *testing.T, day simtime.Day, recs []Record) []byte {
	t.Helper()
	snap := &Snapshot{Day: day, Records: append([]Record(nil), recs...)}
	snap.Canonicalize()
	var buf bytes.Buffer
	if err := snap.WriteArchiveSection(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpillWriterByteIdentity drives the spill writer across budgets that
// force zero, some, and many runs, asserting the streamed section bytes
// equal the in-RAM canonicalize path exactly.
func TestSpillWriterByteIdentity(t *testing.T) {
	day := simtime.Date(2016, 12, 31)
	recs := fakeRecords(500, 7)
	want := oracleSection(t, day, recs)

	for _, budget := range []int64{1, 64, 1 << 10, 16 << 10, 1 << 30} {
		sw := NewSpillWriter(day, SpillOptions{Dir: t.TempDir(), MemBudget: budget})
		// Append in awkward batch sizes to exercise batch boundaries.
		for lo := 0; lo < len(recs); lo += 7 {
			hi := lo + 7
			if hi > len(recs) {
				hi = len(recs)
			}
			if err := sw.Append(recs[lo:hi]...); err != nil {
				t.Fatalf("budget %d: %v", budget, err)
			}
		}
		if sw.Len() != len(recs) {
			t.Fatalf("budget %d: Len = %d, want %d", budget, sw.Len(), len(recs))
		}
		var got bytes.Buffer
		if err := sw.WriteSectionTo(&got); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("budget %d (%d runs): section bytes differ from in-RAM path", budget, sw.Runs())
		}
		if budget == 1 && sw.Runs() < 2 {
			t.Fatalf("budget 1 spilled only %d runs; the merge path is untested", sw.Runs())
		}
		// The merge must be re-runnable until Close.
		var again bytes.Buffer
		if err := sw.WriteSectionTo(&again); err != nil {
			t.Fatalf("budget %d: second merge: %v", budget, err)
		}
		if !bytes.Equal(again.Bytes(), want) {
			t.Fatalf("budget %d: second merge diverged", budget)
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("budget %d: Close: %v", budget, err)
		}
	}
}

// TestSpillWriterSectionParses round-trips a spilled section through the
// strict archive reader.
func TestSpillWriterSectionParses(t *testing.T) {
	day := simtime.Date(2016, 6, 1)
	recs := fakeRecords(200, 3)
	sw := NewSpillWriter(day, SpillOptions{Dir: t.TempDir(), MemBudget: 256})
	if err := sw.Append(recs...); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	var buf bytes.Buffer
	if err := sw.WriteSectionTo(&buf); err != nil {
		t.Fatal(err)
	}
	store, err := ReadArchiveStrict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snap := store.Get(day)
	if snap == nil || len(snap.Records) != len(recs) {
		t.Fatalf("round trip lost records: %v", snap)
	}
}

// TestSpillWriterEachSorted checks the record-level merge view agrees
// with the canonical order and parses every field back.
func TestSpillWriterEachSorted(t *testing.T) {
	day := simtime.Date(2016, 6, 1)
	recs := fakeRecords(120, 11)
	sw := NewSpillWriter(day, SpillOptions{Dir: t.TempDir(), MemBudget: 128})
	if err := sw.Append(recs...); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	want := &Snapshot{Day: day, Records: append([]Record(nil), recs...)}
	want.Canonicalize()
	i := 0
	err := sw.EachSorted(func(r *Record) error {
		w := &want.Records[i]
		if r.Domain != w.Domain || r.TLD != w.TLD || r.Failed != w.Failed || r.HasDNSKEY != w.HasDNSKEY {
			return fmt.Errorf("record %d: got %+v want %+v", i, r, w)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Fatalf("EachSorted yielded %d records, want %d", i, len(recs))
	}
}

// TestSpillWriterCleanup asserts Close removes every run file.
func TestSpillWriterCleanup(t *testing.T) {
	dir := t.TempDir()
	day := simtime.Date(2016, 6, 1)
	sw := NewSpillWriter(day, SpillOptions{Dir: dir, MemBudget: 1})
	if err := sw.Append(fakeRecords(50, 1)...); err != nil {
		t.Fatal(err)
	}
	if sw.Runs() == 0 {
		t.Fatal("expected spilled runs")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("run files left behind: %v", left)
	}
}

// TestArchiveWriterByteIdentity streams a multi-day archive and compares
// it byte-for-byte with Store.WriteArchiveFile over the same snapshots.
func TestArchiveWriterByteIdentity(t *testing.T) {
	days := []simtime.Day{
		simtime.Date(2016, 6, 1),
		simtime.Date(2016, 9, 1),
		simtime.Date(2016, 12, 31),
	}
	store := NewStore()
	byDay := map[simtime.Day][]Record{}
	for i, day := range days {
		recs := fakeRecords(100+i*37, int64(i)+1)
		byDay[day] = recs
		snap := &Snapshot{Day: day, Records: append([]Record(nil), recs...)}
		snap.Canonicalize()
		store.Add(snap)
	}
	dir := t.TempDir()
	wantPath := filepath.Join(dir, "want.tsv")
	if err := store.WriteArchiveFile(wantPath); err != nil {
		t.Fatal(err)
	}

	gotPath := filepath.Join(dir, "got.tsv")
	aw, err := NewArchiveWriter(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range days {
		sw := NewSpillWriter(day, SpillOptions{Dir: dir, MemBudget: 512})
		if err := sw.Append(byDay[day]...); err != nil {
			t.Fatal(err)
		}
		if err := aw.Section(sw); err != nil {
			t.Fatal(err)
		}
		sw.Close()
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed archive differs from Store.WriteArchiveFile")
	}
}

// TestArchiveWriterDayOrder rejects out-of-order and duplicate days.
func TestArchiveWriterDayOrder(t *testing.T) {
	dir := t.TempDir()
	aw, err := NewArchiveWriter(filepath.Join(dir, "a.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer aw.Abort()
	d2 := simtime.Date(2016, 9, 1)
	d1 := simtime.Date(2016, 6, 1)
	if err := aw.Snapshot(&Snapshot{Day: d2}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Snapshot(&Snapshot{Day: d1}); err == nil {
		t.Fatal("out-of-order day accepted")
	}
	if err := aw.Snapshot(&Snapshot{Day: d2}); err == nil {
		t.Fatal("duplicate day accepted")
	}
}

// TestArchiveWriterAbort leaves the previous archive untouched.
func TestArchiveWriterAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.tsv")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	aw, err := NewArchiveWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Snapshot(&Snapshot{Day: simtime.Date(2016, 6, 1)}); err != nil {
		t.Fatal(err)
	}
	aw.Abort()
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "old" {
		t.Fatalf("abort clobbered the previous archive: %q %v", data, err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, ".*tmp*"))
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
}
