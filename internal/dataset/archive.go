package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"securepki.org/registrarsec/internal/simtime"
)

// The journaled archive format wraps each TSV snapshot section with an
// integrity trailer:
//
//	#snapshot <day> <count>
//	<record>
//	...
//	#end <day> <bytes> <crc32c>
//
// <bytes> is the length of the section from the '#' of its header through
// the final record's newline, and <crc32c> is the CRC-32 (Castagnoli) of
// those bytes, in %08x. The trailer makes the two disk failure modes of a
// long-running sweep detectable: a section missing its trailer was
// interrupted mid-write (torn write), and a section whose bytes no longer
// hash to its trailer was corrupted at rest (bit rot, partial overwrite).
// The reader quarantines damaged sections with a precise reason and
// salvages every intact one — a 21-month daily series must never silently
// mis-parse one bad day into its adoption curves.

// trailerHeader closes one archived snapshot section.
const trailerHeader = "#end"

// castagnoli is the CRC-32C polynomial table (the checksum used by ext4,
// btrfs and iSCSI for exactly this job).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteArchiveSection writes the snapshot as one trailered section.
func (s *Snapshot) WriteArchiveSection(w io.Writer) error {
	var buf bytes.Buffer
	if err := s.WriteTSV(&buf); err != nil {
		return err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s\t%s\t%d\t%08x\n", trailerHeader, s.Day,
		buf.Len(), crc32.Checksum(buf.Bytes(), castagnoli))
	return err
}

// WriteArchive writes every snapshot, oldest first, with an integrity
// trailer per section.
func (s *Store) WriteArchive(w io.Writer) error {
	for _, day := range s.Days() {
		if err := s.Get(day).WriteArchiveSection(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteArchiveFile durably replaces path with the archive: the bytes go to
// a temp file in the same directory, are fsynced, and the temp file is
// atomically renamed over path (with a directory fsync after), so a crash
// at any point leaves either the old archive or the complete new one on
// disk — never a torn mixture.
func (s *Store) WriteArchiveFile(path string) error {
	var buf bytes.Buffer
	if err := s.WriteArchive(&buf); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes())
}

// WriteFileAtomic writes data to path via temp file + fsync + rename +
// directory fsync. It is the durability primitive behind archive and
// checkpoint writes.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Corruption describes one quarantined piece of an archive.
type Corruption struct {
	// Day is the section's day token as written (it may itself be damaged;
	// empty when the damage precedes any section header).
	Day string
	// Line is the 1-based line number where the damage was anchored — the
	// section header for section-level damage, the offending line otherwise.
	Line int
	// Reason says which integrity check failed.
	Reason string
}

func (c Corruption) String() string {
	if c.Day == "" {
		return fmt.Sprintf("line %d: %s", c.Line, c.Reason)
	}
	return fmt.Sprintf("section %s (line %d): %s", c.Day, c.Line, c.Reason)
}

// ArchiveReport is the integrity accounting of one ReadArchive pass.
type ArchiveReport struct {
	// Sections counts the snapshot sections encountered, intact or not.
	Sections int
	// Quarantined lists everything that failed verification and was kept
	// out of the store.
	Quarantined []Corruption
}

// Clean reports whether the whole archive verified.
func (r *ArchiveReport) Clean() bool { return len(r.Quarantined) == 0 }

// String renders a one-line summary for logs.
func (r *ArchiveReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("archive: %d section(s), all verified", r.Sections)
	}
	reasons := make([]string, 0, len(r.Quarantined))
	for _, c := range r.Quarantined {
		reasons = append(reasons, c.String())
	}
	return fmt.Sprintf("archive: %d section(s), %d quarantined [%s]",
		r.Sections, len(r.Quarantined), strings.Join(reasons, "; "))
}

// section is the in-flight parse state of one archive section.
type section struct {
	day      string      // raw day token from the header
	parsed   simtime.Day // valid only when bad == ""
	declared int
	headerLn int
	raw      bytes.Buffer // exact section bytes, for the CRC check
	snap     *Snapshot
	bad      string // first structural defect, "" while intact
}

// ReadArchive reads a trailered archive in salvage mode: every section
// whose trailer verifies (length, CRC32C, declared record count, unique
// day) lands in the store; torn, truncated, corrupted and duplicate
// sections are quarantined in the report with a precise reason instead of
// being silently mis-parsed. The returned error is non-nil only for I/O
// failures — corruption is data, not an error.
func ReadArchive(r io.Reader) (*Store, *ArchiveReport, error) {
	store := NewStore()
	report := &ArchiveReport{}
	br := bufio.NewReaderSize(r, 64*1024)

	var cur *section
	quarantine := func(s *section, reason string) {
		report.Quarantined = append(report.Quarantined,
			Corruption{Day: s.day, Line: s.headerLn, Reason: reason})
	}
	orphan := false // suppress repeated reports for one stray run
	lineNo := 0
	for {
		line, readErr := br.ReadString('\n')
		if line != "" {
			lineNo++
			full := strings.HasSuffix(line, "\n")
			text := strings.TrimSuffix(line, "\n")
			fields := strings.Split(text, "\t")
			switch fields[0] {
			case tsvHeader:
				if cur != nil {
					quarantine(cur, "missing trailer (torn write)")
				}
				report.Sections++
				cur = &section{headerLn: lineNo, declared: -1}
				cur.raw.WriteString(line)
				if len(fields) >= 2 {
					cur.day = fields[1]
				}
				day, declared, err := parseSnapshotHeader(fields)
				switch {
				case err != nil:
					cur.bad = fmt.Sprintf("bad header: %v", err)
				case !full:
					cur.bad = "truncated mid-header"
				default:
					cur.parsed, cur.declared = day, declared
					cur.snap = &Snapshot{Day: day}
				}
				orphan = false

			case trailerHeader:
				if cur == nil {
					if !orphan {
						report.Quarantined = append(report.Quarantined,
							Corruption{Line: lineNo, Reason: "trailer without a section"})
						orphan = true
					}
					continue
				}
				if reason := verifyTrailer(cur, fields, full, store); reason != "" {
					quarantine(cur, reason)
				} else {
					store.Add(cur.snap)
				}
				cur = nil

			default:
				if cur == nil {
					if text == "" {
						continue // blank lines between sections are tolerated
					}
					if !orphan {
						report.Quarantined = append(report.Quarantined,
							Corruption{Line: lineNo, Reason: "records outside any section"})
						orphan = true
					}
					continue
				}
				cur.raw.WriteString(line)
				if cur.bad != "" {
					continue // keep consuming the damaged section's bytes
				}
				switch {
				case !full:
					cur.bad = "truncated mid-record"
				case text == "":
					cur.bad = "blank line inside section"
				default:
					rec, err := parseRecordFields(fields)
					if err != nil {
						cur.bad = fmt.Sprintf("line %d: %v", lineNo, err)
					} else {
						cur.snap.Records = append(cur.snap.Records, rec)
					}
				}
			}
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return store, report, readErr
		}
	}
	if cur != nil {
		quarantine(cur, "truncated section (no trailer)")
	}
	return store, report, nil
}

// verifyTrailer runs every integrity check for a section against its
// trailer line, returning "" when the section is intact or the reason it
// must be quarantined.
func verifyTrailer(cur *section, fields []string, full bool, store *Store) string {
	if reason := checkTrailer(cur, fields, full); reason != "" {
		return reason
	}
	if store.Get(cur.parsed) != nil {
		return "duplicate snapshot day"
	}
	return ""
}

// checkTrailer is verifyTrailer minus the store-level duplicate-day check:
// the integrity of one section in isolation, shared with the tail scanner
// (whose duplicate policy is the ingester's idempotency, not a store).
func checkTrailer(cur *section, fields []string, full bool) string {
	if cur.bad != "" {
		return cur.bad
	}
	if !full || len(fields) != 4 {
		return "malformed trailer"
	}
	if fields[1] != cur.day {
		return fmt.Sprintf("trailer day %q does not match section day %q", fields[1], cur.day)
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return fmt.Sprintf("malformed trailer length %q", fields[2])
	}
	wantCRC, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil {
		return fmt.Sprintf("malformed trailer checksum %q", fields[3])
	}
	if wantLen != cur.raw.Len() {
		return fmt.Sprintf("length mismatch: trailer declares %d bytes, section has %d", wantLen, cur.raw.Len())
	}
	if got := crc32.Checksum(cur.raw.Bytes(), castagnoli); got != uint32(wantCRC) {
		return fmt.Sprintf("checksum mismatch: trailer %08x, section %08x", uint32(wantCRC), got)
	}
	if cur.declared >= 0 && cur.declared != len(cur.snap.Records) {
		return fmt.Sprintf("record count mismatch: header declares %d, found %d", cur.declared, len(cur.snap.Records))
	}
	return ""
}

// ReadArchiveStrict is ReadArchive for pipelines that must not proceed on
// damage: any quarantined section is promoted to an error.
func ReadArchiveStrict(r io.Reader) (*Store, error) {
	store, report, err := ReadArchive(r)
	if err != nil {
		return nil, err
	}
	if !report.Clean() {
		return nil, fmt.Errorf("dataset: %s", report)
	}
	return store, nil
}

// ReadArchiveFile opens and salvage-reads an archive file.
func ReadArchiveFile(path string) (*Store, *ArchiveReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadArchive(f)
}
