package dataset

import (
	"bufio"
	"bytes"
	"container/heap"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"securepki.org/registrarsec/internal/simtime"
)

// The streaming snapshot writer: a full-`.com` sweep produces one day
// section of ~150M records, far more than fits in RAM as a Snapshot. The
// SpillWriter accepts records in arrival order under a byte budget,
// spilling sorted run files to disk whenever the buffer fills, and
// finalizes the day as one trailered archive section via a k-way merge of
// the runs — producing bytes identical to the in-RAM
// Snapshot.Canonicalize + WriteArchiveSection path, so every existing
// archive consumer (ReadArchive, salvage, TailArchive, the checkpoint
// store) reads streamed sections without knowing they were streamed.

// DefaultMemBudget is the SpillWriter's buffered-record byte budget when
// SpillOptions leaves it zero: small enough to bound a sweep shard, large
// enough that modest days never spill at all.
const DefaultMemBudget = 256 << 20

// SpillOptions configures the bounded-memory day assembly.
type SpillOptions struct {
	// Dir receives the sorted run files (default: the system temp dir).
	// Runs are ephemeral — they are deleted by Close — but at full scale
	// they hold most of a day, so point this at a disk with room.
	Dir string
	// MemBudget is the approximate byte size of buffered records before a
	// sorted run is spilled (default DefaultMemBudget).
	MemBudget int64
}

// spillRun is one sorted run file on disk.
type spillRun struct {
	path    string
	records int
}

// SpillWriter assembles one day's archive section with bounded memory.
// Records arrive in any order (scan sweeps append in worker-completion
// order); the writer keeps at most MemBudget bytes of them in RAM and
// spills the excess as sorted TSV run files. WriteSectionTo merges buffer
// and runs into canonical (TLD, domain) order on the fly.
//
// The byte-identity contract assumes each (TLD, domain) key appears once
// per day — true for any sweep, whose targets are distinct domains. With
// duplicate keys the merged order is still deterministic (ties break
// toward earlier-spilled runs) but sort.Slice in Canonicalize is
// unstable, so the two paths may legally disagree on duplicate ordering.
type SpillWriter struct {
	day      simtime.Day
	opt      SpillOptions
	buf      []Record
	bufBytes int64
	runs     []spillRun
	total    int
	err      error // first spill failure, made sticky
}

// NewSpillWriter creates a writer for one day's records.
func NewSpillWriter(day simtime.Day, opt SpillOptions) *SpillWriter {
	if opt.Dir == "" {
		opt.Dir = os.TempDir()
	}
	if opt.MemBudget <= 0 {
		opt.MemBudget = DefaultMemBudget
	}
	return &SpillWriter{day: day, opt: opt}
}

// Day returns the section day the writer was created for.
func (w *SpillWriter) Day() simtime.Day { return w.day }

// Len returns the total number of records appended so far.
func (w *SpillWriter) Len() int { return w.total }

// Runs reports how many sorted runs have been spilled to disk.
func (w *SpillWriter) Runs() int { return len(w.runs) }

// recordBytes approximates a record's resident size for the byte budget.
func recordBytes(r *Record) int64 {
	n := len(r.Domain) + len(r.TLD) + len(r.Operator) + len(r.FailReason)
	for _, h := range r.NSHosts {
		n += len(h) + 16
	}
	return int64(n) + 96 // struct header + slice/string overheads
}

// Append adds records, spilling a sorted run when the buffer exceeds the
// byte budget. Appended slices are copied; callers may reuse them.
func (w *SpillWriter) Append(recs ...Record) error {
	if w.err != nil {
		return w.err
	}
	for i := range recs {
		w.buf = append(w.buf, recs[i])
		w.bufBytes += recordBytes(&recs[i])
		w.total++
		if w.bufBytes >= w.opt.MemBudget {
			if err := w.spill(); err != nil {
				w.err = err
				return err
			}
		}
	}
	return nil
}

// sortRecords orders records exactly as Snapshot.Canonicalize does.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.TLD != b.TLD {
			return a.TLD < b.TLD
		}
		return a.Domain < b.Domain
	})
}

// spill sorts the buffer and writes it as one run file.
func (w *SpillWriter) spill() error {
	if len(w.buf) == 0 {
		return nil
	}
	sortRecords(w.buf)
	f, err := os.CreateTemp(w.opt.Dir, fmt.Sprintf("regsec-spill-%s-*.run", w.day))
	if err != nil {
		return fmt.Errorf("dataset: spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	for i := range w.buf {
		writeRecord(bw, &w.buf[i])
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("dataset: spill %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("dataset: spill %s: %w", f.Name(), err)
	}
	w.runs = append(w.runs, spillRun{path: f.Name(), records: len(w.buf)})
	w.buf = w.buf[:0]
	w.bufBytes = 0
	return nil
}

// Close removes every spilled run file. The writer keeps its buffered
// records, so Close after a successful WriteSectionTo is the normal
// cleanup; merging again after Close is an error.
func (w *SpillWriter) Close() error {
	var first error
	for _, r := range w.runs {
		if err := os.Remove(r.path); err != nil && first == nil {
			first = err
		}
	}
	w.runs = nil
	if w.err == nil && first != nil {
		w.err = first
	}
	return first
}

// mergeItem is one source's current line in the k-way merge. Lines keep
// their trailing newline so the merge can copy bytes verbatim.
type mergeItem struct {
	tld, domain string
	line        []byte
	src         int
}

// mergeHeap orders items by (TLD, domain), ties broken by source index so
// the merge is deterministic even with duplicate keys.
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := &h[i], &h[j]
	if a.tld != b.tld {
		return a.tld < b.tld
	}
	if a.domain != b.domain {
		return a.domain < b.domain
	}
	return a.src < b.src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// lineKey extracts the (domain, TLD) sort key from a rendered record line
// (domain and TLD are its first two tab-separated fields).
func lineKey(line []byte) (domain, tld string, err error) {
	t1 := bytes.IndexByte(line, '\t')
	if t1 < 0 {
		return "", "", fmt.Errorf("dataset: malformed run line %q", line)
	}
	rest := line[t1+1:]
	t2 := bytes.IndexByte(rest, '\t')
	if t2 < 0 {
		return "", "", fmt.Errorf("dataset: malformed run line %q", line)
	}
	return string(line[:t1]), string(rest[:t2]), nil
}

// mergeSource yields one source's lines in sorted order.
type mergeSource interface {
	next() (line []byte, ok bool, err error)
	close() error
}

// runSource streams a spilled run file.
type runSource struct {
	f  *os.File
	br *bufio.Reader
}

func openRun(path string) (*runSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &runSource{f: f, br: bufio.NewReaderSize(f, 256<<10)}, nil
}

func (r *runSource) next() ([]byte, bool, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) == 0 && err == io.EOF {
		return nil, false, nil
	}
	if err != nil && err != io.EOF {
		return nil, false, err
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		return nil, false, fmt.Errorf("dataset: truncated run file %s", r.f.Name())
	}
	return line, true, nil
}

func (r *runSource) close() error { return r.f.Close() }

// bufSource renders the in-memory buffer's records lazily.
type bufSource struct {
	recs []Record
	i    int
	line bytes.Buffer
}

func (b *bufSource) next() ([]byte, bool, error) {
	if b.i >= len(b.recs) {
		return nil, false, nil
	}
	b.line.Reset()
	writeRecord(&b.line, &b.recs[b.i])
	b.i++
	return b.line.Bytes(), true, nil
}

func (b *bufSource) close() error { return nil }

// merge runs the k-way merge over every run file plus the sorted buffer,
// calling emit once per record line in canonical order.
func (w *SpillWriter) merge(emit func(line []byte) error) error {
	if w.err != nil {
		return w.err
	}
	sortRecords(w.buf)
	sources := make([]mergeSource, 0, len(w.runs)+1)
	defer func() {
		for _, s := range sources {
			s.close()
		}
	}()
	for _, r := range w.runs {
		rs, err := openRun(r.path)
		if err != nil {
			return fmt.Errorf("dataset: merge: %w", err)
		}
		sources = append(sources, rs)
	}
	sources = append(sources, &bufSource{recs: w.buf})

	h := make(mergeHeap, 0, len(sources))
	advance := func(src int) error {
		line, ok, err := sources[src].next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		domain, tld, err := lineKey(line)
		if err != nil {
			return err
		}
		// The buffer source reuses its line buffer; copy so the heap's
		// view survives the next render. Run lines are fresh allocations.
		heap.Push(&h, mergeItem{tld: tld, domain: domain, line: append([]byte(nil), line...), src: src})
		return nil
	}
	for i := range sources {
		if err := advance(i); err != nil {
			return err
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(&h).(mergeItem)
		if err := emit(it.line); err != nil {
			return err
		}
		if err := advance(it.src); err != nil {
			return err
		}
	}
	return nil
}

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	n   int
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// WriteSectionTo streams the day's records as one trailered archive
// section, byte-identical to writing the same records through
// Snapshot.Canonicalize + WriteArchiveSection. It may be called more than
// once (run files are re-read each time) until Close removes the runs.
func (w *SpillWriter) WriteSectionTo(out io.Writer) error {
	bw := bufio.NewWriterSize(out, 256<<10)
	cw := &crcWriter{w: bw}
	if _, err := fmt.Fprintf(cw, "%s\t%s\t%d\n", tsvHeader, w.day, w.total); err != nil {
		return err
	}
	n := 0
	err := w.merge(func(line []byte) error {
		n++
		_, err := cw.Write(line)
		return err
	})
	if err != nil {
		return err
	}
	if n != w.total {
		return fmt.Errorf("dataset: spill merge for %s produced %d records, appended %d (lost or duplicated run?)", w.day, n, w.total)
	}
	if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%08x\n", trailerHeader, w.day, cw.n, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// EachSorted calls fn for every record in canonical order, parsing run
// lines back into Records — the record-level view used by CLI printers
// that must not hold a day in RAM.
func (w *SpillWriter) EachSorted(fn func(r *Record) error) error {
	return w.merge(func(line []byte) error {
		text := strings.TrimSuffix(string(line), "\n")
		rec, err := parseRecordFields(strings.Split(text, "\t"))
		if err != nil {
			return err
		}
		return fn(&rec)
	})
}

// ArchiveWriter writes a multi-day trailered archive to a file one
// section at a time, with the same durability contract as
// Store.WriteArchiveFile (temp file + fsync + atomic rename + directory
// fsync on Close) but without ever holding more than one section's merge
// state in memory. Sections must arrive in ascending day order — the
// order Store.WriteArchive emits — so streamed and in-RAM archives of the
// same days are byte-identical.
type ArchiveWriter struct {
	path    string
	tmp     *os.File
	bw      *bufio.Writer
	lastDay simtime.Day
	hasDay  bool
	done    bool
}

// NewArchiveWriter starts a streamed archive replacing path on Close.
func NewArchiveWriter(path string) (*ArchiveWriter, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return nil, err
	}
	return &ArchiveWriter{path: path, tmp: tmp, bw: bufio.NewWriterSize(tmp, 256<<10)}, nil
}

// checkDay enforces the ascending-day section order.
func (aw *ArchiveWriter) checkDay(day simtime.Day) error {
	if aw.done {
		return fmt.Errorf("dataset: ArchiveWriter: section after Close")
	}
	if aw.hasDay && day <= aw.lastDay {
		return fmt.Errorf("dataset: ArchiveWriter: day %s not after %s (sections must be appended in ascending day order)", day, aw.lastDay)
	}
	aw.lastDay, aw.hasDay = day, true
	return nil
}

// Section streams one day's section from a SpillWriter.
func (aw *ArchiveWriter) Section(sw *SpillWriter) error {
	if err := aw.checkDay(sw.Day()); err != nil {
		return err
	}
	return sw.WriteSectionTo(aw.bw)
}

// Snapshot writes one in-RAM snapshot as a section (canonicalizing it) —
// the convenience bridge for callers mixing restored and streamed days.
func (aw *ArchiveWriter) Snapshot(snap *Snapshot) error {
	if err := aw.checkDay(snap.Day); err != nil {
		return err
	}
	snap.Canonicalize()
	return snap.WriteArchiveSection(aw.bw)
}

// Abort discards the partial archive, leaving any previous file at the
// target path untouched. Safe after Close (no-op).
func (aw *ArchiveWriter) Abort() {
	if aw.done {
		return
	}
	aw.done = true
	aw.tmp.Close()
	os.Remove(aw.tmp.Name())
}

// Close flushes, fsyncs, and atomically renames the archive into place.
func (aw *ArchiveWriter) Close() error {
	if aw.done {
		return fmt.Errorf("dataset: ArchiveWriter: double Close")
	}
	aw.done = true
	tmpName := aw.tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := aw.bw.Flush(); err != nil {
		aw.tmp.Close()
		return err
	}
	if err := aw.tmp.Sync(); err != nil {
		aw.tmp.Close()
		return err
	}
	if err := aw.tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, aw.path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(aw.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
