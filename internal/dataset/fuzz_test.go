package dataset

import (
	"bytes"
	"testing"

	"securepki.org/registrarsec/internal/simtime"
)

// fuzzSeedArchive builds a small valid trailered archive for seeding.
func fuzzSeedArchive() []byte {
	store := NewStore()
	store.Add(&Snapshot{Day: simtime.Date(2016, 1, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: []string{"ns1.op.net"},
			HasDNSKEY: true, HasRRSIG: true, HasDS: true, ChainValid: true},
		{Domain: "gap.com", TLD: "com", Failed: true, FailReason: "timeout"},
	}})
	store.Add(&Snapshot{Day: simtime.Date(2016, 6, 1), Records: []Record{
		{Domain: "a.com", TLD: "com", Operator: "op.net", NSHosts: nil},
	}})
	var buf bytes.Buffer
	if err := store.WriteArchive(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadTSV exercises both readers with arbitrary bytes: neither may
// panic, and whatever ReadArchive accepts must be internally consistent —
// re-serializing the salvaged store and re-reading it must verify clean
// with the same number of snapshots. A corrupted section that slipped into
// the store "as clean" would break that round trip.
func FuzzReadTSV(f *testing.F) {
	valid := fuzzSeedArchive()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn mid-archive
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x40 // bit rot
	f.Add(flipped)
	f.Add([]byte("#snapshot\t2016-01-01\t1\na.com\tcom\top.net\tns1.op.net\ttrue\tfalse\tfalse\tfalse\n"))
	f.Add([]byte("#snapshot\t2016-01-01\t2\na.com\tcom\top\t\ttrue\ttrue\ttrue\ttrue\tok\n"))
	f.Add([]byte("#end\t2016-01-01\t10\tdeadbeef\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The legacy reader: errors are fine, panics are not; an accepted
		// store must round-trip through the plain TSV dialect.
		if store, err := ReadTSV(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := store.WriteTSV(&buf); err != nil {
				t.Fatalf("re-serialize accepted TSV: %v", err)
			}
			again, err := ReadTSV(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-read own TSV output: %v", err)
			}
			if again.Len() != store.Len() {
				t.Fatalf("TSV round trip changed snapshot count: %d -> %d", store.Len(), again.Len())
			}
		}

		// The salvage reader: never an error on in-memory bytes, never a
		// mislabeled section.
		store, report, err := ReadArchive(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadArchive returned I/O error on bytes: %v", err)
		}
		if store.Len()+len(report.Quarantined) < report.Sections {
			t.Fatalf("sections unaccounted for: %d in store, %d quarantined, %d seen",
				store.Len(), len(report.Quarantined), report.Sections)
		}
		var buf bytes.Buffer
		if err := store.WriteArchive(&buf); err != nil {
			t.Fatalf("re-serialize salvaged store: %v", err)
		}
		again, report2, err := ReadArchive(bytes.NewReader(buf.Bytes()))
		if err != nil || !report2.Clean() {
			t.Fatalf("salvaged store did not re-read clean: %v, %s", err, report2)
		}
		if again.Len() != store.Len() {
			t.Fatalf("archive round trip changed snapshot count: %d -> %d", store.Len(), again.Len())
		}
	})
}
