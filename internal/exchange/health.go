package exchange

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
)

// ErrCircuitOpen marks a fast-fail from an open per-server circuit
// breaker. BreakerError wraps it together with the server's last real
// error, so errors.Is(err, ErrCircuitOpen) detects the breaker while
// failure classification still sees the underlying cause.
var ErrCircuitOpen = errors.New("exchange: server circuit open")

// BreakerError is returned when Health fast-fails an exchange to a server
// whose circuit is open. It carries the server's last observed error so
// callers classify the fast-fail exactly as they would have classified the
// real failure — the breaker saves round trips, it never invents a new
// failure mode.
type BreakerError struct {
	Server string
	Last   error
}

// Error implements error.
func (e *BreakerError) Error() string {
	return fmt.Sprintf("exchange: circuit open for %s (last error: %v)", e.Server, e.Last)
}

// Unwrap exposes the last underlying error for errors.Is/As chains.
func (e *BreakerError) Unwrap() error { return e.Last }

// Is matches ErrCircuitOpen.
func (e *BreakerError) Is(target error) bool { return target == ErrCircuitOpen }

// Timeout mirrors the net.Error convention of the wrapped error, so
// timeout-classifying callers see through the breaker.
func (e *BreakerError) Timeout() bool {
	var to interface{ Timeout() bool }
	return errors.As(e.Last, &to) && to.Timeout()
}

// HealthOptions tunes the Health middleware.
type HealthOptions struct {
	// Threshold is the consecutive-failure count that opens a server's
	// circuit (default 5).
	Threshold int
	// ProbeProb is the probability that a call to an open-circuit server
	// is let through as a half-open probe instead of fast-failing
	// (default 0.25). A successful probe closes the circuit.
	ProbeProb float64
	// Seed drives the deterministic probe draw (default 1).
	Seed int64
	// DisableFastFail keeps the full per-server bookkeeping (trips,
	// ordering, snapshots) but never short-circuits an exchange. The scan
	// engine runs in this mode: its outputs must stay a pure function of
	// the fault schedule, and a fast-fail whose timing depends on worker
	// interleaving would break byte-identical re-runs.
	DisableFastFail bool
}

// withDefaults fills unset fields.
func (o HealthOptions) withDefaults() HealthOptions {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.ProbeProb <= 0 {
		o.ProbeProb = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ServerHealth is a commutative snapshot of one server's history:
// order-independent totals, safe to compare across runs at quiescent
// points (the scan engine snapshots them at re-sweep pass boundaries).
type ServerHealth struct {
	// Successes and Failures count completed exchanges.
	Successes, Failures int64
}

// Dead reports a server that has failed at least once and never
// succeeded — the "known-dead" criterion re-sweep ordering uses.
func (s ServerHealth) Dead() bool { return s.Failures > 0 && s.Successes == 0 }

// serverState is the live breaker state for one server.
type serverState struct {
	successes atomic.Int64
	failures  atomic.Int64

	mu          sync.Mutex
	consecFails int
	open        bool
	draws       uint64 // probe draws since the circuit opened
	lastErr     error
}

// Health tracks per-server outcomes and applies a consecutive-failure
// circuit breaker with probabilistic half-open probes: a server that has
// failed Threshold times in a row stops receiving real traffic — calls
// fast-fail with a BreakerError — except for a deterministic fraction let
// through to detect recovery. This replaces blind server rotation: callers
// ask Order (or Snapshot) which servers are worth trying first instead of
// re-probing known-dead servers in list order.
type Health struct {
	inner Exchanger
	opts  HealthOptions

	mu      sync.RWMutex
	servers map[string]*serverState

	rot        atomic.Uint32
	trips      atomic.Int64
	recoveries atomic.Int64
	fastFails  atomic.Int64
	probes     atomic.Int64
}

// NewHealth creates the health middleware over inner.
func NewHealth(inner Exchanger, opts HealthOptions) *Health {
	return &Health{inner: inner, opts: opts.withDefaults(), servers: make(map[string]*serverState)}
}

// Trips reports closed→open breaker transitions.
func (h *Health) Trips() int64 { return h.trips.Load() }

// Recoveries reports open→closed transitions (successful probes).
func (h *Health) Recoveries() int64 { return h.recoveries.Load() }

// FastFails reports exchanges short-circuited by an open breaker.
func (h *Health) FastFails() int64 { return h.fastFails.Load() }

// Probes reports half-open probe exchanges let through an open breaker.
func (h *Health) Probes() int64 { return h.probes.Load() }

// state returns (creating if needed) the tracked state for server.
func (h *Health) state(server string) *serverState {
	h.mu.RLock()
	s := h.servers[server]
	h.mu.RUnlock()
	if s != nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if s = h.servers[server]; s == nil {
		s = &serverState{}
		h.servers[server] = s
	}
	return s
}

// Snapshot returns the commutative per-server totals. The map is freshly
// allocated; ServerHealth values are copies.
func (h *Health) Snapshot() map[string]ServerHealth {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[string]ServerHealth, len(h.servers))
	for addr, s := range h.servers {
		out[addr] = ServerHealth{Successes: s.successes.Load(), Failures: s.failures.Load()}
	}
	return out
}

// Order returns servers arranged for failover: servers with a closed
// circuit first — rotated by a round-robin offset so load spreads across a
// zone's NS set — followed by open-circuit servers as a last resort. The
// relative order within the open group is preserved.
func (h *Health) Order(servers []string) []string {
	if len(servers) <= 1 {
		return servers
	}
	healthy := make([]string, 0, len(servers))
	var down []string
	for _, addr := range servers {
		h.mu.RLock()
		s := h.servers[addr]
		h.mu.RUnlock()
		isOpen := false
		if s != nil {
			s.mu.Lock()
			isOpen = s.open
			s.mu.Unlock()
		}
		if isOpen {
			down = append(down, addr)
		} else {
			healthy = append(healthy, addr)
		}
	}
	out := make([]string, 0, len(servers))
	if len(healthy) > 0 {
		off := int(h.rot.Add(1)-1) % len(healthy)
		for i := range healthy {
			out = append(out, healthy[(off+i)%len(healthy)])
		}
	}
	return append(out, down...)
}

// probeDraw produces the deterministic uniform sample for the n-th draw
// against server since its circuit opened (same splitmix finalizer the
// fault injector uses, for well-spread consecutive draws).
func (h *Health) probeDraw(server string, n uint64) float64 {
	hsh := fnv.New64a()
	fmt.Fprintf(hsh, "%d|%s|%d", h.opts.Seed, server, n)
	x := hsh.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// observe records one outcome and drives the breaker state machine.
func (h *Health) observe(s *serverState, server string, err error) {
	if err == nil {
		s.successes.Add(1)
		s.mu.Lock()
		if s.open {
			h.recoveries.Add(1)
		}
		s.open = false
		s.consecFails = 0
		s.draws = 0
		s.mu.Unlock()
		return
	}
	s.failures.Add(1)
	s.mu.Lock()
	s.lastErr = err
	s.consecFails++
	if !s.open && s.consecFails >= h.opts.Threshold {
		s.open = true
		s.draws = 0
		h.trips.Add(1)
	}
	s.mu.Unlock()
}

// Exchange implements Exchanger with circuit breaking.
func (h *Health) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	s := h.state(server)
	if !h.opts.DisableFastFail {
		s.mu.Lock()
		if s.open {
			n := s.draws
			s.draws++
			if h.probeDraw(server, n) >= h.opts.ProbeProb {
				last := s.lastErr
				s.mu.Unlock()
				h.fastFails.Add(1)
				return nil, &BreakerError{Server: server, Last: last}
			}
			h.probes.Add(1)
		}
		s.mu.Unlock()
	}
	resp, err := h.inner.Exchange(ctx, server, q)
	// Context death is the caller's condition, not the server's: a sweep
	// being cancelled must not poison every server's breaker.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return resp, err
	}
	h.observe(s, server, err)
	return resp, err
}
