// Package exchange owns the canonical DNS query path of the module: the
// Exchanger interface every transport implements, and a composable
// middleware stack — Dedup (singleflight on identical in-flight queries),
// Cache (TTL-honoring positive and RFC 2308 negative message cache),
// Health (per-server consecutive-failure circuit breaker with half-open
// probes), Retry (bounded per-query retries), and Tap (transport-level
// exchange accounting) — assembled in one declared order by Build.
//
// Before this package, every network-consuming layer built its own ad-hoc
// query path: dnsserver owned the interface plus a retrying wrapper,
// faultnet wrapped it separately, the resolver re-implemented server
// rotation, and the scan engine re-implemented NS-host failover. The
// paper's longitudinal half (section 4.1) issues millions of
// NS/DS/DNSKEY/RRSIG queries per simulated day; real collector fleets get
// their throughput from exactly the machinery consolidated here — query
// dedup, referral caching, and server-health tracking.
//
// The stack composes outermost to innermost as
//
//	Cache → Dedup → Health → Retry → (extra middleware, e.g. faultnet) → Tap → transport
//
// so a cache hit costs nothing downstream, duplicate in-flight queries
// collapse before they can trip a breaker, the breaker observes
// post-retry outcomes (a server is "failing" only after its attempt
// budget is spent), and the Tap counts what actually reached the
// transport.
package exchange

import (
	"context"
	"errors"

	"securepki.org/registrarsec/internal/dnswire"
)

// Exchanger issues one DNS query to a named server and returns the
// response. It is the seam between every consumer and the transport: the
// production implementation speaks UDP/TCP, the simulation implementation
// dispatches in memory, and the middlewares in this package compose around
// either.
type Exchanger interface {
	Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error)
}

// Func adapts a function to the Exchanger interface.
type Func func(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error)

// Exchange implements Exchanger.
func (f Func) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	return f(ctx, server, q)
}

// Middleware wraps an Exchanger with additional behaviour.
type Middleware func(Exchanger) Exchanger

// ErrNoRoute reports an exchange to an address no transport can reach (an
// unregistered in-memory server, a permanently unreachable host). It is a
// permanent condition: the retry layer refuses to spend attempts on it.
var ErrNoRoute = errors.New("exchange: no route to server")

// key is the identity of one logical query: everything that determines the
// response apart from the message ID. Dedup and Cache share it.
type key struct {
	server string
	qname  string
	qtype  dnswire.Type
	do     bool
}

// queryKey derives the dedup/cache key for (server, q); ok is false for
// messages that are not simple single-question queries (those pass through
// uncoalesced and uncached).
func queryKey(server string, q *dnswire.Message) (key, bool) {
	if len(q.Questions) != 1 {
		return key{}, false
	}
	return key{
		server: server,
		qname:  q.Questions[0].Name,
		qtype:  q.Questions[0].Type,
		do:     q.DNSSECOK(),
	}, true
}

// reply returns a shallow copy of a shared response re-addressed to query
// q: same sections (treated as read-only by every consumer), the caller's
// message ID. Shared responses must never be mutated in place — two
// callers with different query IDs may hold them concurrently.
func reply(m *dnswire.Message, q *dnswire.Message) *dnswire.Message {
	cp := *m
	cp.ID = q.ID
	return &cp
}
