package exchange

import (
	"context"
	"fmt"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
)

// Tap is the innermost middleware: a pass-through that counts what
// actually reaches the transport. Because it sits below cache, dedup,
// breaker, and retry, its Exchanges figure is the ground truth those
// layers are judged against — the benchmark's "≥2x fewer transport-level
// exchanges" claim is measured here.
type Tap struct {
	inner Exchanger

	exchanges atomic.Int64
	errors    atomic.Int64
}

// NewTap creates the accounting middleware over inner.
func NewTap(inner Exchanger) *Tap {
	return &Tap{inner: inner}
}

// Exchanges reports exchanges that reached the transport.
func (t *Tap) Exchanges() int64 { return t.exchanges.Load() }

// Errors reports transport exchanges that returned an error.
func (t *Tap) Errors() int64 { return t.errors.Load() }

// Exchange implements Exchanger with transport accounting.
func (t *Tap) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	t.exchanges.Add(1)
	resp, err := t.inner.Exchange(ctx, server, q)
	if err != nil {
		t.errors.Add(1)
	}
	return resp, err
}

// TransportCounters is the Tap's cumulative accounting.
type TransportCounters struct {
	Exchanges int64 `json:"exchanges"`
	Errors    int64 `json:"errors"`
}

// CacheCounters is the Cache layer's cumulative accounting.
type CacheCounters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Stores  int64 `json:"stores"`
	Expired int64 `json:"expired"`
}

// DedupCounters is the Dedup layer's cumulative accounting.
type DedupCounters struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HealthCounters is the Health layer's cumulative accounting.
type HealthCounters struct {
	Trips      int64 `json:"trips"`
	Recoveries int64 `json:"recoveries"`
	FastFails  int64 `json:"fast_fails"`
	Probes     int64 `json:"probes"`
}

// RetryCounters is the Retry layer's cumulative accounting.
type RetryCounters struct {
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`
}

// Counters is a point-in-time snapshot of every layer's accounting.
// Layers absent from the stack report zeros. The struct is plain data:
// JSON-serializable for benchmark artifacts and subtractable for
// per-sweep deltas.
type Counters struct {
	Transport TransportCounters `json:"transport"`
	Cache     CacheCounters     `json:"cache"`
	Dedup     DedupCounters     `json:"dedup"`
	Health    HealthCounters    `json:"health"`
	Retry     RetryCounters     `json:"retry"`
}

// Sub returns the per-field difference c - prev, for interval accounting
// between two snapshots of the same stack.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Transport: TransportCounters{
			Exchanges: c.Transport.Exchanges - prev.Transport.Exchanges,
			Errors:    c.Transport.Errors - prev.Transport.Errors,
		},
		Cache: CacheCounters{
			Hits:    c.Cache.Hits - prev.Cache.Hits,
			Misses:  c.Cache.Misses - prev.Cache.Misses,
			Stores:  c.Cache.Stores - prev.Cache.Stores,
			Expired: c.Cache.Expired - prev.Cache.Expired,
		},
		Dedup: DedupCounters{
			Hits:   c.Dedup.Hits - prev.Dedup.Hits,
			Misses: c.Dedup.Misses - prev.Dedup.Misses,
		},
		Health: HealthCounters{
			Trips:      c.Health.Trips - prev.Health.Trips,
			Recoveries: c.Health.Recoveries - prev.Health.Recoveries,
			FastFails:  c.Health.FastFails - prev.Health.FastFails,
			Probes:     c.Health.Probes - prev.Health.Probes,
		},
		Retry: RetryCounters{
			Retries:  c.Retry.Retries - prev.Retry.Retries,
			Failures: c.Retry.Failures - prev.Retry.Failures,
		},
	}
}

// Add returns the per-field sum c + o, for aggregating per-shard interval
// snapshots into one report.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Transport: TransportCounters{
			Exchanges: c.Transport.Exchanges + o.Transport.Exchanges,
			Errors:    c.Transport.Errors + o.Transport.Errors,
		},
		Cache: CacheCounters{
			Hits:    c.Cache.Hits + o.Cache.Hits,
			Misses:  c.Cache.Misses + o.Cache.Misses,
			Stores:  c.Cache.Stores + o.Cache.Stores,
			Expired: c.Cache.Expired + o.Cache.Expired,
		},
		Dedup: DedupCounters{
			Hits:   c.Dedup.Hits + o.Dedup.Hits,
			Misses: c.Dedup.Misses + o.Dedup.Misses,
		},
		Health: HealthCounters{
			Trips:      c.Health.Trips + o.Health.Trips,
			Recoveries: c.Health.Recoveries + o.Health.Recoveries,
			FastFails:  c.Health.FastFails + o.Health.FastFails,
			Probes:     c.Health.Probes + o.Health.Probes,
		},
		Retry: RetryCounters{
			Retries:  c.Retry.Retries + o.Retry.Retries,
			Failures: c.Retry.Failures + o.Retry.Failures,
		},
	}
}

// String renders the non-trivial layers compactly for health reports.
func (c Counters) String() string {
	s := fmt.Sprintf("transport=%d (%d errors)", c.Transport.Exchanges, c.Transport.Errors)
	if c.Cache.Hits+c.Cache.Misses > 0 {
		s += fmt.Sprintf(", cache=%d/%d hit", c.Cache.Hits, c.Cache.Hits+c.Cache.Misses)
	}
	if c.Dedup.Hits > 0 {
		s += fmt.Sprintf(", dedup=%d coalesced", c.Dedup.Hits)
	}
	if c.Health.Trips > 0 {
		s += fmt.Sprintf(", breaker=%d trips/%d fastfails", c.Health.Trips, c.Health.FastFails)
	}
	if c.Retry.Retries > 0 {
		s += fmt.Sprintf(", retries=%d (%d exhausted)", c.Retry.Retries, c.Retry.Failures)
	}
	return s
}
