package exchange

import (
	"errors"

	"securepki.org/registrarsec/internal/retry"
)

// Options selects which middleware layers Build assembles around a
// transport. The zero value (plus a Transport) yields a bare accounting
// stack: Tap → Transport.
type Options struct {
	// Transport is the innermost Exchanger (required): NetExchanger for
	// real networks, MemNet for the simulation.
	Transport Exchanger

	// Middleware is applied between Retry and the Tap, first element
	// outermost. This is where a fault injector composes: below the retry
	// budget (so injected faults consume attempts exactly as real ones
	// would) and above the Tap (so every injected draw is an accounted
	// transport exchange).
	Middleware []Middleware

	// Retry, when non-nil, adds the Retry layer with this policy.
	Retry *retry.Policy
	// RetryLame and RetryTruncated tune the Retry layer (ignored without
	// Retry).
	RetryLame, RetryTruncated bool

	// Health, when non-nil, adds the per-server breaker/bookkeeping layer.
	Health *HealthOptions

	// Dedup adds the in-flight singleflight layer.
	Dedup bool

	// Cache, when non-nil, adds the TTL message cache.
	Cache *CacheOptions
}

// Stack is an assembled exchange path. It is itself an Exchanger (the
// outermost layer), with typed handles to each optional layer — nil when
// the layer was not selected — so callers can read counters, flush the
// cache, or consult server health without re-plumbing.
type Stack struct {
	Exchanger

	Transport Exchanger
	Tap       *Tap
	Retry     *Retry
	Health    *Health
	Dedup     *Dedup
	Cache     *Cache
}

// Build assembles the middleware stack in the package's canonical order,
//
//	Cache → Dedup → Health → Retry → opts.Middleware... → Tap → Transport,
//
// including only the layers Options selects.
func Build(opts Options) (*Stack, error) {
	if opts.Transport == nil {
		return nil, errors.New("exchange: Build requires a Transport")
	}
	s := &Stack{Transport: opts.Transport}
	s.Tap = NewTap(opts.Transport)
	var ex Exchanger = s.Tap
	for i := len(opts.Middleware) - 1; i >= 0; i-- {
		ex = opts.Middleware[i](ex)
	}
	if opts.Retry != nil {
		var ro []RetryOption
		if opts.RetryLame {
			ro = append(ro, RetryLame())
		}
		if opts.RetryTruncated {
			ro = append(ro, RetryTruncated())
		}
		s.Retry = NewRetry(ex, *opts.Retry, ro...)
		ex = s.Retry
	}
	if opts.Health != nil {
		s.Health = NewHealth(ex, *opts.Health)
		ex = s.Health
	}
	if opts.Dedup {
		s.Dedup = NewDedup(ex)
		ex = s.Dedup
	}
	if opts.Cache != nil {
		s.Cache = NewCache(ex, *opts.Cache)
		ex = s.Cache
	}
	s.Exchanger = ex
	return s, nil
}

// MustBuild is Build for static configurations known to be valid; it
// panics on error.
func MustBuild(opts Options) *Stack {
	s, err := Build(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Counters snapshots every present layer's accounting (absent layers
// report zeros).
func (s *Stack) Counters() Counters {
	var c Counters
	if s.Tap != nil {
		c.Transport = TransportCounters{Exchanges: s.Tap.Exchanges(), Errors: s.Tap.Errors()}
	}
	if s.Cache != nil {
		c.Cache = CacheCounters{Hits: s.Cache.Hits(), Misses: s.Cache.Misses(), Stores: s.Cache.Stores(), Expired: s.Cache.Expired()}
	}
	if s.Dedup != nil {
		c.Dedup = DedupCounters{Hits: s.Dedup.Hits(), Misses: s.Dedup.Misses()}
	}
	if s.Health != nil {
		c.Health = HealthCounters{Trips: s.Health.Trips(), Recoveries: s.Health.Recoveries(), FastFails: s.Health.FastFails(), Probes: s.Health.Probes()}
	}
	if s.Retry != nil {
		c.Retry = RetryCounters{Retries: s.Retry.Retries(), Failures: s.Retry.Failures()}
	}
	return c
}

// OrderServers returns servers in failover-preference order: Health's
// healthy-first rotation when the layer is present, the input unchanged
// otherwise.
func (s *Stack) OrderServers(servers []string) []string {
	if s.Health == nil {
		return servers
	}
	return s.Health.Order(servers)
}

// FlushCache drops every cached response (no-op without a Cache layer).
// Simulations call it when zones mutate between measurement days.
func (s *Stack) FlushCache() {
	if s.Cache != nil {
		s.Cache.Flush()
	}
}
