package exchange

import (
	"context"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
)

// Dedup coalesces identical in-flight queries: while one exchange for
// (server, qname, qtype, DO) is outstanding, further exchanges for the
// same key wait for its result instead of issuing their own — the
// singleflight discipline resolver fleets use to keep a thundering herd of
// identical questions from multiplying upstream load. Each caller receives
// the shared response re-addressed to its own message ID.
//
// Queries that are not simple single-question messages pass through
// unconditionally.
type Dedup struct {
	inner Exchanger

	mu       sync.Mutex
	inflight map[key]*flight

	hits   atomic.Int64 // exchanges answered by piggybacking on a flight
	misses atomic.Int64 // exchanges that had to lead their own flight
}

// flight is one in-progress exchange and its eventual shared outcome.
type flight struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// NewDedup creates the dedup middleware over inner.
func NewDedup(inner Exchanger) *Dedup {
	return &Dedup{inner: inner, inflight: make(map[key]*flight)}
}

// Hits reports how many exchanges were served by joining an existing
// flight (each hit is one upstream exchange avoided).
func (d *Dedup) Hits() int64 { return d.hits.Load() }

// Misses reports how many exchanges led a flight of their own.
func (d *Dedup) Misses() int64 { return d.misses.Load() }

// Exchange implements Exchanger with in-flight coalescing.
func (d *Dedup) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	k, ok := queryKey(server, q)
	if !ok {
		return d.inner.Exchange(ctx, server, q)
	}
	d.mu.Lock()
	if f, exists := d.inflight[k]; exists {
		d.mu.Unlock()
		d.hits.Add(1)
		select {
		case <-f.done:
		case <-ctx.Done():
			// The follower's own context died first; the leader's flight
			// continues for everyone else.
			return nil, ctx.Err()
		}
		if f.err != nil {
			return nil, f.err
		}
		return reply(f.resp, q), nil
	}
	f := &flight{done: make(chan struct{})}
	d.inflight[k] = f
	d.mu.Unlock()
	d.misses.Add(1)

	f.resp, f.err = d.inner.Exchange(ctx, server, q)
	d.mu.Lock()
	delete(d.inflight, k)
	d.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	return reply(f.resp, q), nil
}
