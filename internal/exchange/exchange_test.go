package exchange_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
)

// countingExchanger answers every query authoritatively with a fixed-TTL
// A-like NS record and counts calls; an optional hook overrides responses.
type countingExchanger struct {
	calls atomic.Int64
	hook  func(server string, q *dnswire.Message) (*dnswire.Message, error)

	mu      sync.Mutex
	byQuery map[string]int
}

func (e *countingExchanger) Exchange(_ context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	e.calls.Add(1)
	e.mu.Lock()
	if e.byQuery == nil {
		e.byQuery = make(map[string]int)
	}
	if len(q.Questions) == 1 {
		e.byQuery[fmt.Sprintf("%s|%s|%d", server, q.Questions[0].Name, q.Questions[0].Type)]++
	}
	e.mu.Unlock()
	if e.hook != nil {
		return e.hook(server, q)
	}
	resp := q.Reply()
	resp.Authoritative = true
	resp.Answers = append(resp.Answers, dnswire.NewRR(q.Questions[0].Name, 300, &dnswire.NS{Host: "ns1.example."}))
	return resp, nil
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

func TestCacheServesRepeatsAndHonorsTTL(t *testing.T) {
	inner := &countingExchanger{}
	now := time.Unix(1_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c := exchange.NewCache(inner, exchange.CacheOptions{Now: clock})

	q1 := dnswire.NewQuery(1, "example.com", dnswire.TypeNS)
	r1, err := c.Exchange(context.Background(), "srv", q1)
	if err != nil {
		t.Fatal(err)
	}
	q2 := dnswire.NewQuery(99, "example.com", dnswire.TypeNS)
	r2, err := c.Exchange(context.Background(), "srv", q2)
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("inner calls = %d, want 1 (second query must hit cache)", inner.calls.Load())
	}
	if r2.ID != 99 || r1.ID != 1 {
		t.Fatalf("response IDs not re-addressed: %d, %d", r1.ID, r2.ID)
	}
	if len(r2.Answers) != 1 {
		t.Fatalf("cached answer lost records: %v", r2.Answers)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}

	// Advance past the 300s record TTL: the entry must expire.
	mu.Lock()
	now = now.Add(301 * time.Second)
	mu.Unlock()
	if _, err := c.Exchange(context.Background(), "srv", dnswire.NewQuery(7, "example.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("inner calls after TTL expiry = %d, want 2", inner.calls.Load())
	}
	if c.Expired() != 1 {
		t.Errorf("expired = %d, want 1", c.Expired())
	}
}

func TestCacheKeySeparatesServerTypeAndDOBit(t *testing.T) {
	inner := &countingExchanger{}
	c := exchange.NewCache(inner, exchange.CacheOptions{})
	ctx := context.Background()

	plain := dnswire.NewQuery(1, "example.com", dnswire.TypeNS)
	do := dnswire.NewQuery(2, "example.com", dnswire.TypeNS)
	do.SetEDNS(4096, true)
	if _, err := c.Exchange(ctx, "srv", plain); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(ctx, "srv", do); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(ctx, "other", dnswire.NewQuery(3, "example.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(ctx, "srv", dnswire.NewQuery(4, "example.com", dnswire.TypeDS)); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 4 {
		t.Fatalf("inner calls = %d, want 4 distinct keys", inner.calls.Load())
	}
}

func TestCacheNegativeCachesNXDOMAINPerSOA(t *testing.T) {
	inner := &countingExchanger{hook: func(_ string, q *dnswire.Message) (*dnswire.Message, error) {
		resp := q.Reply()
		resp.RCode = dnswire.RCodeNameError
		resp.Authority = append(resp.Authority, dnswire.NewRR("com.", 900, &dnswire.SOA{
			MName: "a.gtld-servers.net.", RName: "nstld.verisign-grs.com.", Minimum: 120,
		}))
		return resp, nil
	}}
	now := time.Unix(1_000_000, 0)
	var mu sync.Mutex
	c := exchange.NewCache(inner, exchange.CacheOptions{Now: func() time.Time { mu.Lock(); defer mu.Unlock(); return now }})
	ctx := context.Background()

	if _, err := c.Exchange(ctx, "srv", dnswire.NewQuery(1, "nope.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	r, err := c.Exchange(ctx, "srv", dnswire.NewQuery(2, "nope.com", dnswire.TypeNS))
	if err != nil || r.RCode != dnswire.RCodeNameError {
		t.Fatalf("negative answer: %v %v", r, err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("NXDOMAIN not negatively cached: %d inner calls", inner.calls.Load())
	}

	// RFC 2308: lifetime is min(SOA TTL, SOA.Minimum) = 120s, not 900s.
	mu.Lock()
	now = now.Add(121 * time.Second)
	mu.Unlock()
	if _, err := c.Exchange(ctx, "srv", dnswire.NewQuery(3, "nope.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 2 {
		t.Fatalf("negative entry outlived min(SOA TTL, minimum): %d calls", inner.calls.Load())
	}
}

func TestCacheNeverStoresTransientFailures(t *testing.T) {
	mode := "servfail"
	inner := &countingExchanger{hook: func(_ string, q *dnswire.Message) (*dnswire.Message, error) {
		resp := q.Reply()
		switch mode {
		case "servfail":
			resp.RCode = dnswire.RCodeServerFailure
		case "truncated":
			resp.Truncated = true
			resp.Answers = append(resp.Answers, dnswire.NewRR(q.Questions[0].Name, 300, &dnswire.NS{Host: "ns1.example."}))
		case "error":
			return nil, errors.New("transport down")
		}
		return resp, nil
	}}
	c := exchange.NewCache(inner, exchange.CacheOptions{})
	ctx := context.Background()
	for i, m := range []string{"servfail", "truncated", "error"} {
		mode = m
		name := fmt.Sprintf("d%d.com", i)
		c.Exchange(ctx, "srv", dnswire.NewQuery(1, name, dnswire.TypeNS))
		c.Exchange(ctx, "srv", dnswire.NewQuery(2, name, dnswire.TypeNS))
	}
	if got := inner.calls.Load(); got != 6 {
		t.Fatalf("inner calls = %d, want 6: a transient failure was served from cache", got)
	}
	if c.Stores() != 0 {
		t.Errorf("stores = %d, want 0", c.Stores())
	}
}

func TestDedupCoalescesConcurrentIdenticalQueries(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	inner := &countingExchanger{hook: func(_ string, q *dnswire.Message) (*dnswire.Message, error) {
		started <- struct{}{}
		<-release
		resp := q.Reply()
		resp.Authoritative = true
		return resp, nil
	}}
	d := exchange.NewDedup(inner)

	const followers = 15
	var wg sync.WaitGroup
	errs := make(chan error, followers+1)
	ids := make(chan uint16, followers+1)
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			r, err := d.Exchange(context.Background(), "srv", dnswire.NewQuery(id, "example.com", dnswire.TypeDNSKEY))
			if err != nil {
				errs <- err
				return
			}
			ids <- r.ID
		}(uint16(i + 1))
	}
	<-started // leader is inside the transport
	// Give followers a moment to pile onto the flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	close(ids)
	for err := range errs {
		t.Fatal(err)
	}
	seen := make(map[uint16]bool)
	for id := range ids {
		seen[id] = true
	}
	if len(seen) != followers+1 {
		t.Fatalf("each caller must get its own message ID back: %d distinct", len(seen))
	}
	if inner.calls.Load() >= followers+1 {
		t.Fatalf("no coalescing happened: %d transport calls", inner.calls.Load())
	}
	if d.Hits() == 0 {
		t.Error("dedup hits = 0")
	}
	if d.Hits()+d.Misses() != followers+1 {
		t.Errorf("hits+misses = %d, want %d", d.Hits()+d.Misses(), followers+1)
	}
}

func TestDedupFollowerHonorsOwnContext(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	inner := &countingExchanger{hook: func(_ string, q *dnswire.Message) (*dnswire.Message, error) {
		started <- struct{}{}
		<-release
		return q.Reply(), nil
	}}
	d := exchange.NewDedup(inner)
	go d.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "example.com", dnswire.TypeNS))
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.Exchange(ctx, "srv", dnswire.NewQuery(2, "example.com", dnswire.TypeNS))
		done <- err
	}()
	// Let the follower reach the flight, then cancel only its context.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower did not return")
	}
	close(release)
}

func TestHealthBreakerTripsFastFailsAndRecovers(t *testing.T) {
	failing := atomic.Bool{}
	failing.Store(true)
	inner := &countingExchanger{hook: func(server string, q *dnswire.Message) (*dnswire.Message, error) {
		if server == "bad" && failing.Load() {
			return nil, errors.New("connection refused")
		}
		resp := q.Reply()
		resp.Authoritative = true
		return resp, nil
	}}
	h := exchange.NewHealth(inner, exchange.HealthOptions{Threshold: 3, ProbeProb: 0.5, Seed: 7})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := h.Exchange(ctx, "bad", dnswire.NewQuery(uint16(i), "example.com", dnswire.TypeNS)); err == nil {
			t.Fatal("expected failure")
		}
	}
	if h.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", h.Trips())
	}

	// With the circuit open, calls either fast-fail with a BreakerError
	// (classifiable both as ErrCircuitOpen and as the underlying cause) or
	// go through as probes that keep failing.
	sawFastFail := false
	for i := 0; i < 20; i++ {
		_, err := h.Exchange(ctx, "bad", dnswire.NewQuery(uint16(100+i), "example.com", dnswire.TypeNS))
		if err == nil {
			t.Fatal("open breaker returned success while server is down")
		}
		if errors.Is(err, exchange.ErrCircuitOpen) {
			sawFastFail = true
			if !errors.Is(err, exchange.ErrCircuitOpen) || err.Error() == "" {
				t.Fatal("malformed breaker error")
			}
		}
	}
	if !sawFastFail || h.FastFails() == 0 {
		t.Fatal("open breaker never fast-failed")
	}
	if h.Probes() == 0 {
		t.Fatal("open breaker never probed (ProbeProb=0.5, 20 draws)")
	}

	// Server recovers: the next successful probe closes the circuit.
	failing.Store(false)
	recovered := false
	for i := 0; i < 50; i++ {
		if _, err := h.Exchange(ctx, "bad", dnswire.NewQuery(uint16(200+i), "example.com", dnswire.TypeNS)); err == nil {
			recovered = true
			break
		}
	}
	if !recovered || h.Recoveries() != 1 {
		t.Fatalf("breaker did not recover: recoveries=%d", h.Recoveries())
	}
	// And the healthy server never fast-fails again.
	if _, err := h.Exchange(ctx, "bad", dnswire.NewQuery(999, "example.com", dnswire.TypeNS)); err != nil {
		t.Fatalf("closed breaker failed: %v", err)
	}
}

func TestHealthOrderPrefersClosedCircuits(t *testing.T) {
	inner := &countingExchanger{hook: func(server string, q *dnswire.Message) (*dnswire.Message, error) {
		if server == "dead" {
			return nil, errors.New("timeout")
		}
		return q.Reply(), nil
	}}
	h := exchange.NewHealth(inner, exchange.HealthOptions{Threshold: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		h.Exchange(ctx, "dead", dnswire.NewQuery(uint16(i), "x.com", dnswire.TypeNS))
	}
	h.Exchange(ctx, "alive-a", dnswire.NewQuery(10, "x.com", dnswire.TypeNS))
	h.Exchange(ctx, "alive-b", dnswire.NewQuery(11, "x.com", dnswire.TypeNS))

	for i := 0; i < 4; i++ {
		order := h.Order([]string{"dead", "alive-a", "alive-b"})
		if len(order) != 3 {
			t.Fatalf("order lost servers: %v", order)
		}
		if order[2] != "dead" {
			t.Fatalf("open-circuit server not last: %v", order)
		}
	}

	snap := h.Snapshot()
	if !snap["dead"].Dead() {
		t.Errorf("snapshot for dead server: %+v", snap["dead"])
	}
	if snap["alive-a"].Dead() || snap["alive-a"].Successes != 1 {
		t.Errorf("snapshot for alive server: %+v", snap["alive-a"])
	}
}

func TestHealthDisableFastFailStillTracks(t *testing.T) {
	inner := &countingExchanger{hook: func(server string, q *dnswire.Message) (*dnswire.Message, error) {
		return nil, errors.New("down")
	}}
	h := exchange.NewHealth(inner, exchange.HealthOptions{Threshold: 2, DisableFastFail: true})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		h.Exchange(ctx, "srv", dnswire.NewQuery(uint16(i), "x.com", dnswire.TypeNS))
	}
	if inner.calls.Load() != 10 {
		t.Fatalf("DisableFastFail short-circuited: %d transport calls", inner.calls.Load())
	}
	if h.Trips() != 1 || h.FastFails() != 0 {
		t.Errorf("trips=%d fastFails=%d", h.Trips(), h.FastFails())
	}
	if !h.Snapshot()["srv"].Dead() {
		t.Error("bookkeeping lost in DisableFastFail mode")
	}
}

func TestBuildComposesSelectedLayersAndCounts(t *testing.T) {
	inner := &countingExchanger{}
	st, err := exchange.Build(exchange.Options{
		Transport: inner,
		Retry:     &retry.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		Health:    &exchange.HealthOptions{},
		Dedup:     true,
		Cache:     &exchange.CacheOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tap == nil || st.Retry == nil || st.Health == nil || st.Dedup == nil || st.Cache == nil {
		t.Fatal("missing layer handles")
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := st.Exchange(ctx, "srv", dnswire.NewQuery(uint16(i), "example.com", dnswire.TypeNS)); err != nil {
			t.Fatal(err)
		}
	}
	c := st.Counters()
	if c.Transport.Exchanges != 1 {
		t.Fatalf("transport exchanges = %d, want 1 (4 repeats must hit cache)", c.Transport.Exchanges)
	}
	if c.Cache.Hits != 4 || c.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d", c.Cache.Hits, c.Cache.Misses)
	}
	d := st.Counters().Sub(c)
	if d.Transport.Exchanges != 0 || d.Cache.Hits != 0 {
		t.Errorf("Sub of identical snapshots non-zero: %+v", d)
	}

	st.FlushCache()
	if _, err := st.Exchange(ctx, "srv", dnswire.NewQuery(9, "example.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	if st.Counters().Transport.Exchanges != 2 {
		t.Error("FlushCache did not drop entries")
	}

	if _, err := exchange.Build(exchange.Options{}); err == nil {
		t.Fatal("Build without transport must fail")
	}
}

func TestBuildMiddlewareSitsBetweenRetryAndTap(t *testing.T) {
	inner := &countingExchanger{}
	var order []string
	var mu sync.Mutex
	mw := func(name string) exchange.Middleware {
		return func(next exchange.Exchanger) exchange.Exchanger {
			return exchange.Func(func(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return next.Exchange(ctx, server, q)
			})
		}
	}
	st, err := exchange.Build(exchange.Options{
		Transport:  inner,
		Middleware: []exchange.Middleware{mw("outer"), mw("inner")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "example.com", dnswire.TypeNS)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("middleware order: %v", order)
	}
	if st.Counters().Transport.Exchanges != 1 {
		t.Error("tap below middleware did not count")
	}
}

func TestRetryMiddlewareRefusesCircuitOpen(t *testing.T) {
	inner := exchange.Func(func(_ context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
		return nil, &exchange.BreakerError{Server: server, Last: errors.New("timeout")}
	})
	r := exchange.NewRetry(inner, fastPolicy(5))
	_, err := r.Exchange(context.Background(), "srv", dnswire.NewQuery(1, "x.com", dnswire.TypeNS))
	if !errors.Is(err, exchange.ErrCircuitOpen) {
		t.Fatalf("err: %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("retried a fast-fail %d times", r.Retries())
	}
}

func TestBreakerErrorClassification(t *testing.T) {
	be := &exchange.BreakerError{Server: "srv", Last: deadlineish{}}
	if !be.Timeout() {
		t.Error("BreakerError must mirror the wrapped error's Timeout()")
	}
	if !errors.Is(be, exchange.ErrCircuitOpen) {
		t.Error("BreakerError must match ErrCircuitOpen")
	}
	var d deadlineish
	if !errors.As(be, &d) {
		t.Error("BreakerError must unwrap to the underlying cause")
	}
}

// deadlineish is a minimal net.Error-ish timeout error.
type deadlineish struct{}

func (deadlineish) Error() string { return "i/o timeout" }
func (deadlineish) Timeout() bool { return true }
