package exchange

import (
	"context"
	"errors"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/retry"
)

// Retry wraps an Exchanger with the retry.Policy discipline: transport
// errors (and optionally lame rcodes and truncation) are retried against
// the same server up to the attempt budget, with exponential backoff and
// deterministic jitter between attempts. It is the resilience seam of the
// measurement path — a flaky server costs retries, not records.
//
// Counters are cumulative and safe for concurrent use; the scan engine
// samples them around each sweep to fill its SweepHealth report.
type Retry struct {
	inner Exchanger
	doer  *retry.Doer

	// retryLame retries SERVFAIL/REFUSED responses, treating them as
	// transient lameness. When the budget runs out the last lame response
	// is returned (not an error) so callers keep their rcode semantics.
	retryLame bool
	// retryTruncated retries truncated responses. The in-memory transport
	// has no TCP fallback, so re-asking is how a TC'd exchange recovers;
	// NetExchanger does its own TCP fallback and should leave this off.
	retryTruncated bool

	retries  atomic.Int64
	failures atomic.Int64
}

// RetryOption tunes a Retry middleware.
type RetryOption func(*Retry)

// RetryLame makes SERVFAIL/REFUSED responses count as retryable.
func RetryLame() RetryOption { return func(e *Retry) { e.retryLame = true } }

// RetryTruncated makes TC=1 responses count as retryable (for transports
// without a TCP fallback of their own).
func RetryTruncated() RetryOption { return func(e *Retry) { e.retryTruncated = true } }

// NewRetry wraps inner with the policy (zero fields get retry defaults).
func NewRetry(inner Exchanger, p retry.Policy, opts ...RetryOption) *Retry {
	e := &Retry{inner: inner, doer: retry.NewDoer(p)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Retries reports the cumulative retry attempts (attempts beyond each
// query's first).
func (e *Retry) Retries() int64 { return e.retries.Load() }

// Failures reports the cumulative exchanges that failed after exhausting
// their attempt budget.
func (e *Retry) Failures() int64 { return e.failures.Load() }

// errSoftResponse wraps a response whose rcode/TC makes it retryable; if
// the budget runs out the response itself is still returned to the caller.
type errSoftResponse struct{ resp *dnswire.Message }

func (errSoftResponse) Error() string { return "exchange: retryable response" }

// retryable rejects permanent conditions: a dead context and an address
// with no route (an unregistered in-memory server stays unregistered; real
// scheduled outages surface as timeouts, which are retryable). A fast-fail
// from an open circuit breaker is likewise not worth re-attempting — the
// breaker already decided the server is down.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrNoRoute) || errors.Is(err, ErrCircuitOpen) {
		return false
	}
	return true
}

// Exchange implements Exchanger with retries.
func (e *Retry) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	var resp *dnswire.Message
	err := e.doer.Do(ctx, retryable, func(attempt int) error {
		if attempt > 0 {
			e.retries.Add(1)
		}
		m, err := e.inner.Exchange(ctx, server, q)
		if err != nil {
			return err
		}
		if (e.retryLame && (m.RCode == dnswire.RCodeServerFailure || m.RCode == dnswire.RCodeRefused)) ||
			(e.retryTruncated && m.Truncated) {
			return errSoftResponse{resp: m}
		}
		resp = m
		return nil
	})
	if err != nil {
		var soft errSoftResponse
		if errors.As(err, &soft) {
			// Budget exhausted on a lame/truncated answer: hand the caller
			// the response it would have seen without the retry layer.
			return soft.resp, nil
		}
		e.failures.Add(1)
		return nil, err
	}
	return resp, nil
}
