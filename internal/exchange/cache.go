package exchange

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
)

// CacheOptions tunes the message cache.
type CacheOptions struct {
	// Now supplies the cache's clock (default time.Now). Tests inject a
	// fake clock to prove TTL expiry; sweeps under the simulation leave
	// the default, where a day's worth of queries completes well inside
	// the shortest real TTL.
	Now func() time.Time
	// MaxTTL caps how long any positive answer is kept, regardless of its
	// record TTLs (0 = honor record TTLs unconditionally).
	MaxTTL time.Duration
	// NegTTL caps the RFC 2308 negative-caching TTL taken from the SOA
	// (default 1h, mirroring common resolver practice).
	NegTTL time.Duration
	// MaxEntries bounds the cache size (default 1<<18). When full, an
	// arbitrary ~10% of entries are evicted to make room — crude, but the
	// sweeps this cache serves have working sets far below the bound.
	MaxEntries int
}

// Cache is a TTL-honoring DNS message cache keyed by (server, qname,
// qtype, DO bit): positive answers live for the minimum TTL of their
// records, and NXDOMAIN/NODATA answers are negatively cached per RFC 2308
// using the authority SOA's minimum. Referral responses (delegation NS
// sets riding in the authority section) are positive entries too, which is
// what lets a per-SLD sweep stop re-asking the TLD the same delegation —
// one TLD round-trip saved per domain per record type.
//
// Deliberately never cached: truncated responses, SERVFAIL/REFUSED and
// other non-NOERROR/NXDOMAIN rcodes, transport errors, and responses
// carrying no usable TTL. A transient injected fault therefore can never
// be pinned into the cache and replayed past its moment.
type Cache struct {
	inner Exchanger
	opts  CacheOptions

	mu      sync.RWMutex
	entries map[key]cacheEntry

	hits    atomic.Int64
	misses  atomic.Int64
	stores  atomic.Int64
	expired atomic.Int64
}

// cacheEntry is one stored response and its absolute expiry.
type cacheEntry struct {
	resp    *dnswire.Message
	expires time.Time
}

// NewCache creates the cache middleware over inner.
func NewCache(inner Exchanger, opts CacheOptions) *Cache {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.NegTTL <= 0 {
		opts.NegTTL = time.Hour
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 1 << 18
	}
	return &Cache{inner: inner, opts: opts, entries: make(map[key]cacheEntry)}
}

// Hits reports lookups served from the cache.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses reports lookups that went downstream.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Stores reports responses admitted to the cache.
func (c *Cache) Stores() int64 { return c.stores.Load() }

// Expired reports lookups that found only a stale entry (counted within
// Misses as well).
func (c *Cache) Expired() int64 { return c.expired.Load() }

// Len reports the current number of live entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Flush drops every entry; the simulation calls this when it mutates
// zones between measurement days.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[key]cacheEntry)
}

// Exchange implements Exchanger with TTL-honoring response caching.
func (c *Cache) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	k, ok := queryKey(server, q)
	if !ok {
		return c.inner.Exchange(ctx, server, q)
	}
	now := c.opts.Now()
	c.mu.RLock()
	e, found := c.entries[k]
	c.mu.RUnlock()
	if found {
		if now.Before(e.expires) {
			c.hits.Add(1)
			return reply(e.resp, q), nil
		}
		c.expired.Add(1)
		c.mu.Lock()
		// Re-check under the write lock: a concurrent refresh may have
		// already replaced the stale entry.
		if cur, ok := c.entries[k]; ok && !now.Before(cur.expires) {
			delete(c.entries, k)
		}
		c.mu.Unlock()
	}
	c.misses.Add(1)
	resp, err := c.inner.Exchange(ctx, server, q)
	if err != nil {
		return nil, err
	}
	if ttl, cacheable := c.responseTTL(resp); cacheable {
		c.store(k, resp, now.Add(ttl))
	}
	return resp, nil
}

// store admits one response, evicting arbitrary entries if at capacity.
func (c *Cache) store(k key, resp *dnswire.Message, expires time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.opts.MaxEntries {
		drop := c.opts.MaxEntries / 10
		if drop < 1 {
			drop = 1
		}
		for victim := range c.entries {
			delete(c.entries, victim)
			if drop--; drop <= 0 {
				break
			}
		}
	}
	c.entries[k] = cacheEntry{resp: resp, expires: expires}
	c.stores.Add(1)
}

// responseTTL decides cacheability and lifetime for one response.
func (c *Cache) responseTTL(resp *dnswire.Message) (time.Duration, bool) {
	if resp.Truncated {
		return 0, false
	}
	switch resp.RCode {
	case dnswire.RCodeSuccess:
		if minTTL, ok := minRecordTTL(resp); ok {
			ttl := time.Duration(minTTL) * time.Second
			if c.opts.MaxTTL > 0 && ttl > c.opts.MaxTTL {
				ttl = c.opts.MaxTTL
			}
			return ttl, ttl > 0
		}
		// NODATA with no records beyond an OPT: negative-cacheable only
		// when an SOA vouches for it — handled below, but minRecordTTL
		// already failed to find any non-OPT record, so look for the SOA
		// explicitly (it would have been found). No SOA → uncacheable.
		return 0, false
	case dnswire.RCodeNameError:
		if ttl, ok := negativeTTL(resp); ok {
			if ttl > c.opts.NegTTL {
				ttl = c.opts.NegTTL
			}
			return ttl, ttl > 0
		}
		return 0, false
	default:
		// SERVFAIL, REFUSED, NOTIMP…: transient server conditions. RFC
		// 2308 §7 permits brief caching; we decline entirely so a flaky
		// moment is never replayed as policy.
		return 0, false
	}
}

// minRecordTTL returns the minimum TTL across every non-OPT record in the
// message; ok is false when there are none. An NXDOMAIN/NODATA SOA in the
// authority participates normally — RFC 2308 treats it as the negative
// TTL bound, and for positive answers it only ever lowers the minimum.
func minRecordTTL(m *dnswire.Message) (uint32, bool) {
	var min uint32
	found := false
	for _, sec := range [][]*dnswire.RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if rr.Type == dnswire.TypeOPT {
				continue // the OPT "TTL" field carries flags, not a lifetime
			}
			ttl := rr.TTL
			if rr.Type == dnswire.TypeSOA {
				// RFC 2308: the negative/default lifetime is the lesser of
				// the SOA minimum and the SOA record's own TTL.
				if soa, ok := rr.Data.(*dnswire.SOA); ok && soa.Minimum < ttl {
					ttl = soa.Minimum
				}
			}
			if !found || ttl < min {
				min, found = ttl, true
			}
		}
	}
	return min, found
}

// negativeTTL extracts the RFC 2308 negative-caching TTL from an NXDOMAIN
// response: min(SOA TTL, SOA.Minimum) of the authority SOA.
func negativeTTL(m *dnswire.Message) (time.Duration, bool) {
	for _, rr := range m.Authority {
		soa, ok := rr.Data.(*dnswire.SOA)
		if !ok {
			continue
		}
		ttl := rr.TTL
		if soa.Minimum < ttl {
			ttl = soa.Minimum
		}
		return time.Duration(ttl) * time.Second, true
	}
	return 0, false
}
