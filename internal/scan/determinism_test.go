package scan_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/faultnet"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
)

// runLossySweep scans the buildWorld population through a fault injector
// that drops half the queries aimed at domain nameservers (the TLD
// registry servers stay clean), optionally with the cache and dedup layers
// enabled, and returns the sweep's serialized TSV plus its reports.
//
// Faults are restricted to the domain NS hosts on purpose: the injector
// only consumes per-question attempt draws for matched servers, so a cache
// hit on a clean-server response cannot shift the fault schedule of any
// faulted query — the two configurations must observe identical network
// outcomes.
func runLossySweep(t *testing.T, cached bool) (string, *scan.SweepHealth, exchange.Counters) {
	t.Helper()
	eco, targets := buildWorld(t)
	inj := faultnet.New(nil, 7, nil, faultnet.Rule{Pattern: "*.net", Loss: 0.5})
	cfg := scan.Config{
		Exchange:   eco.Net,
		Middleware: []exchange.Middleware{inj.Middleware()},
		TLDServers: map[string]string{
			"com": dnstest.TLDServerAddr("com"),
			"nl":  dnstest.TLDServerAddr("nl"),
		},
		// One worker keeps record order a pure function of target order, so
		// the outputs can be compared byte for byte.
		Workers:     1,
		Clock:       eco.Clock.Day,
		Retry:       retry.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		MaxResweeps: 2,
	}
	if cached {
		cfg.Cache = &exchange.CacheOptions{}
		cfg.Dedup = true
	}
	s, err := scan.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, health, err := s.ScanDay(context.Background(), eco.Clock.Day(), targets)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), health, s.Stack().Counters()
}

// TestCachedSweepOutputIdenticalUnderFaults locks in the measurement-layer
// guarantee behind the cache and dedup optimizations: they may only remove
// redundant transport exchanges, never change what a sweep observes. A
// lossy sweep with the full stack enabled must produce a byte-identical
// TSV snapshot to the bare retry-only path.
func TestCachedSweepOutputIdenticalUnderFaults(t *testing.T) {
	plainTSV, plainHealth, plainCounters := runLossySweep(t, false)
	cachedTSV, cachedHealth, cachedCounters := runLossySweep(t, true)

	if plainTSV != cachedTSV {
		t.Errorf("cache/dedup changed sweep output\n--- uncached ---\n%s--- cached ---\n%s", plainTSV, cachedTSV)
	}
	for class, n := range plainHealth.ByClass {
		if cachedHealth.ByClass[class] != n {
			t.Errorf("failure class %s: %d uncached vs %d cached", class, n, cachedHealth.ByClass[class])
		}
	}
	// The faults must actually have bitten — a clean sweep would make the
	// equality vacuous — and recovery must have exercised the resweep path,
	// which is where the cache earns its keep (re-asked clean queries).
	if plainHealth.Retries == 0 {
		t.Error("no retries: fault injection did not engage")
	}
	if cachedHealth.Resweeps == 0 {
		t.Error("no resweeps: equality never exercised the warm cache")
	}
	if cachedCounters.Cache.Hits == 0 {
		t.Error("cache never hit during the cached sweep")
	}
	if cachedCounters.Transport.Exchanges >= plainCounters.Transport.Exchanges {
		t.Errorf("cache saved nothing: %d transport exchanges cached vs %d uncached",
			cachedCounters.Transport.Exchanges, plainCounters.Transport.Exchanges)
	}
}
