package scan_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/scan"
)

// buildWorld wires an ecosystem with registrars producing every deployment
// class, returning the ecosystem and the scan targets.
func buildWorld(t *testing.T) (*dnstest.Ecosystem, []scan.Target) {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{TLDs: []string{"com", "nl"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p registrar.Policy) *registrar.Registrar {
		if p.Roles == nil {
			p.Roles = map[string]registrar.Role{
				"com": {Kind: registrar.RoleRegistrar},
				"nl":  {Kind: registrar.RoleRegistrar},
			}
		}
		r, err := registrar.New(p, registrar.Deps{
			Registries: eco.Registries, Net: eco.Net, Clock: eco.Clock.Day,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.CreateAccount("c@x.net")
		return r
	}
	good := mk(registrar.Policy{
		ID: "good", Name: "Good", NSHosts: []string{"ns1.good.net"},
		HostedDNSSEC: registrar.SupportDefault,
	})
	partial := mk(registrar.Policy{
		ID: "partial", Name: "Partial", NSHosts: []string{"ns1.partial.net"},
		HostedDNSSEC:  registrar.SupportDefault,
		PublishDSTLDs: map[string]bool{"nl": true}, // signs, uploads DS only for .nl
	})
	plain := mk(registrar.Policy{
		ID: "plain", Name: "Plain", NSHosts: []string{"ns1.plain.net"},
	})
	var domains []string
	for _, d := range []struct {
		r      *registrar.Registrar
		domain string
	}{
		{good, "full1.com"}, {good, "full2.com"}, {good, "dutch.nl"},
		{partial, "half1.com"}, {partial, "half2.com"},
		{plain, "none1.com"}, {plain, "none2.com"}, {plain, "none3.com"},
		{plain, "victim.com"},
	} {
		if err := d.r.Purchase("c@x.net", d.domain, ""); err != nil {
			t.Fatalf("purchase %s: %v", d.domain, err)
		}
		domains = append(domains, d.domain)
	}
	// Break victim.com: an unsigned zone behind a garbage DS — what a
	// registrar that accepts anything produces.
	garbage := &dnswire.DS{KeyTag: 7, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32)}
	if err := eco.Registries["com"].SetDS("plain", "victim.com", []*dnswire.DS{garbage}); err != nil {
		t.Fatal(err)
	}
	// A never-registered domain should be skipped by the scanner.
	domains = append(domains, "ghost.com")
	return eco, scan.TargetsFromDomains(domains)
}

func newScanner(t *testing.T, eco *dnstest.Ecosystem, workers int) *scan.Scanner {
	t.Helper()
	s, err := scan.New(scan.Config{
		Exchange: eco.Net,
		TLDServers: map[string]string{
			"com": dnstest.TLDServerAddr("com"),
			"nl":  dnstest.TLDServerAddr("nl"),
		},
		Workers: workers,
		Clock:   eco.Clock.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanClassifiesDeployments(t *testing.T) {
	eco, targets := buildWorld(t)
	s := newScanner(t, eco, 4)
	snap, health, err := s.ScanDay(context.Background(), eco.Clock.Day(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 9 { // ghost.com skipped
		t.Fatalf("records: %d", len(snap.Records))
	}
	if health.Measured != 9 || health.Unregistered != 1 || len(health.Failures) != 0 {
		t.Fatalf("health: %s", health)
	}
	if health.Targets != len(targets) {
		t.Errorf("health targets: %d, want %d", health.Targets, len(targets))
	}
	byDomain := map[string]*dataset.Record{}
	for i := range snap.Records {
		byDomain[snap.Records[i].Domain] = &snap.Records[i]
	}
	cases := map[string]dnssec.Deployment{
		"full1.com":  dnssec.DeploymentFull,
		"full2.com":  dnssec.DeploymentFull,
		"dutch.nl":   dnssec.DeploymentFull,
		"half1.com":  dnssec.DeploymentPartial,
		"half2.com":  dnssec.DeploymentPartial,
		"none1.com":  dnssec.DeploymentNone,
		"victim.com": dnssec.DeploymentBroken,
	}
	for domain, want := range cases {
		rec, ok := byDomain[domain]
		if !ok {
			t.Errorf("%s missing from snapshot", domain)
			continue
		}
		if got := rec.Deployment(); got != want {
			t.Errorf("%s: %v, want %v", domain, got, want)
		}
	}
	// Operator grouping from the NS observed at the TLD.
	if byDomain["full1.com"].Operator != "good.net" {
		t.Errorf("operator: %q", byDomain["full1.com"].Operator)
	}
	// RRSIG presence follows signing.
	if !byDomain["half1.com"].HasRRSIG || byDomain["none1.com"].HasRRSIG {
		t.Error("HasRRSIG wrong")
	}
	if s.Queries() == 0 {
		t.Error("query counter not advanced")
	}
}

func TestScanWorkerCountsAgree(t *testing.T) {
	eco, targets := buildWorld(t)
	base, _, err := newScanner(t, eco, 1).ScanDay(context.Background(), eco.Clock.Day(), targets)
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := newScanner(t, eco, 16).ScanDay(context.Background(), eco.Clock.Day(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Records) != len(wide.Records) {
		t.Errorf("worker counts disagree: %d vs %d", len(base.Records), len(wide.Records))
	}
	count := func(snap *dataset.Snapshot, d dnssec.Deployment) int {
		n := 0
		for i := range snap.Records {
			if snap.Records[i].Deployment() == d {
				n++
			}
		}
		return n
	}
	for _, d := range []dnssec.Deployment{
		dnssec.DeploymentNone, dnssec.DeploymentPartial,
		dnssec.DeploymentFull, dnssec.DeploymentBroken,
	} {
		if count(base, d) != count(wide, d) {
			t.Errorf("%v: %d vs %d", d, count(base, d), count(wide, d))
		}
	}
}

func TestScanContextCancel(t *testing.T) {
	eco, targets := buildWorld(t)
	s := newScanner(t, eco, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.ScanDay(ctx, eco.Clock.Day(), targets); err == nil {
		t.Error("cancelled scan reported success")
	}
}

// cancelOnFirstExchanger cancels the sweep's context on its first exchange
// and fails every exchange on a dead context — a deterministic mid-sweep
// SIGINT.
type cancelOnFirstExchanger struct {
	inner  dnsserver.Exchanger
	cancel context.CancelFunc
	once   sync.Once
}

func (e *cancelOnFirstExchanger) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	e.once.Do(e.cancel)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.inner.Exchange(ctx, server, q)
}

// TestScanCancelAccountsEveryTarget interrupts a sweep at its very first
// exchange and checks the ledger: no target may vanish — each is either
// measured, unregistered, skipped, or itemized as a failure, and the
// interruption surfaces as the distinct "cancelled" class.
func TestScanCancelAccountsEveryTarget(t *testing.T) {
	eco, targets := buildWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := scan.New(scan.Config{
		Exchange: &cancelOnFirstExchanger{inner: eco.Net, cancel: cancel},
		TLDServers: map[string]string{
			"com": dnstest.TLDServerAddr("com"),
			"nl":  dnstest.TLDServerAddr("nl"),
		},
		Workers: 2,
		Clock:   eco.Clock.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, health, err := s.ScanDay(ctx, eco.Clock.Day(), targets)
	if err == nil {
		t.Fatal("interrupted scan reported success")
	}
	accounted := health.Measured + health.Unregistered + len(health.SkippedUnknownTLD) + len(health.Failures)
	if accounted != health.Targets {
		t.Errorf("ledger leak: %d targets, %d accounted (%s)", health.Targets, accounted, health)
	}
	if health.Cancelled() == 0 {
		t.Errorf("no cancelled class in %v", health.ByClass)
	}
	if health.Cancelled() != len(health.Failures) {
		t.Errorf("cancelled %d of %d failures; every failure of this run is a cancellation",
			health.Cancelled(), len(health.Failures))
	}
	// The snapshot carries the gap markers, none of them "measured".
	for i := range snap.Records {
		if r := &snap.Records[i]; !r.Failed || r.FailReason != string(scan.FailCancelled) {
			t.Errorf("record %s: Failed=%v reason=%q", r.Domain, r.Failed, r.FailReason)
		}
	}
}

// TestSweepHealthMerge checks the shard-aggregation arithmetic.
func TestSweepHealthMerge(t *testing.T) {
	a := &scan.SweepHealth{Targets: 5, Measured: 4, Unregistered: 1, Retries: 2,
		ByClass: map[scan.FailClass]int{scan.FailTimeout: 1}}
	b := &scan.SweepHealth{Targets: 3, Measured: 2, Resweeps: 1,
		Failures: []scan.Failure{{Class: scan.FailTimeout}},
		ByClass:  map[scan.FailClass]int{scan.FailTimeout: 1}}
	var sum scan.SweepHealth
	sum.Merge(a)
	sum.Merge(b)
	sum.Merge(nil)
	if sum.Targets != 8 || sum.Measured != 6 || sum.Unregistered != 1 ||
		sum.Retries != 2 || sum.Resweeps != 1 || len(sum.Failures) != 1 ||
		sum.ByClass[scan.FailTimeout] != 2 {
		t.Errorf("merge: %+v", sum)
	}
}

func TestScanConfigValidation(t *testing.T) {
	if _, err := scan.New(scan.Config{}); err == nil {
		t.Error("config without exchanger accepted")
	}
	eco, _ := buildWorld(t)
	if _, err := scan.New(scan.Config{Exchange: eco.Net}); err == nil {
		t.Error("config without TLD servers accepted")
	}
}

func TestTargetsFromDomains(t *testing.T) {
	ts := scan.TargetsFromDomains([]string{"A.COM", "b.nl", "justtld"})
	if len(ts) != 3 {
		t.Fatalf("targets: %v", ts)
	}
	if ts[0].Domain != "a.com" || ts[0].TLD != "com" {
		t.Errorf("target 0: %+v", ts[0])
	}
	if ts[2].TLD != "" {
		t.Errorf("single-label target: %+v", ts[2])
	}
}

func TestTargetsFromZone(t *testing.T) {
	eco, _ := buildWorld(t)
	z := eco.Registries["com"].Zone()
	targets := scan.TargetsFromZone(z)
	// buildWorld registers 7 .com domains (full1/2, half1/2, none1/2/3,
	// victim) = 8; dutch.nl is in the other registry.
	if len(targets) != 8 {
		t.Fatalf("targets: %d (%v)", len(targets), targets)
	}
	seen := map[string]bool{}
	for _, tg := range targets {
		if tg.TLD != "com" {
			t.Errorf("target %s has TLD %q", tg.Domain, tg.TLD)
		}
		if seen[tg.Domain] {
			t.Errorf("duplicate target %s", tg.Domain)
		}
		seen[tg.Domain] = true
	}
	if !seen["full1.com"] || !seen["victim.com"] {
		t.Errorf("missing expected targets: %v", seen)
	}
}

// TestAXFRDrivenScan reproduces the paper's actual pipeline head: obtain
// the TLD zone file (AXFR under agreement), derive the target list from its
// delegations, then sweep.
func TestAXFRDrivenScan(t *testing.T) {
	eco, _ := buildWorld(t)
	auth := eco.Registries["com"].Server()
	auth.EnableAXFR(func(origin string) bool { return origin == "com" })
	srv := &dnsserver.Server{Handler: auth}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &dnsserver.AXFRClient{Timeout: 5 * time.Second}
	z, err := client.Transfer(context.Background(), srv.Addr(), "com")
	if err != nil {
		t.Fatal(err)
	}
	targets := scan.TargetsFromZone(z)
	if len(targets) != 8 {
		t.Fatalf("targets from AXFR: %d", len(targets))
	}
	s := newScanner(t, eco, 4)
	snap, _, err := s.ScanDay(context.Background(), eco.Clock.Day(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 8 {
		t.Fatalf("scanned %d", len(snap.Records))
	}
	full := 0
	for i := range snap.Records {
		if snap.Records[i].Deployment() == dnssec.DeploymentFull {
			full++
		}
	}
	if full != 2 { // full1.com, full2.com (dutch.nl is outside .com)
		t.Errorf("full count via AXFR-driven scan: %d", full)
	}
}
