package scan_test

// Property-style tests for SweepHealth.Merge: aggregating per-shard health
// reports must be a fold that conserves every total and failure class, and
// must not care how the shards were partitioned among workers or in what
// order the partial aggregates arrive — the exact guarantee the
// distributed sweep's per-day and per-worker attribution relies on.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

var failClasses = []scan.FailClass{
	scan.FailTimeout, scan.FailNoRoute, scan.FailLame, scan.FailNoNS,
	scan.FailTransport, scan.FailUnknownTLD, scan.FailCancelled,
}

// genHealth fabricates one shard's health report from the rng.
func genHealth(rng *rand.Rand, day simtime.Day, shard int) *scan.SweepHealth {
	h := &scan.SweepHealth{
		Day:             day,
		Targets:         rng.Intn(50),
		Measured:        rng.Intn(50),
		Unregistered:    rng.Intn(5),
		Retries:         rng.Int63n(100),
		FailedExchanges: rng.Int63n(20),
		Resweeps:        rng.Intn(3),
		ByClass:         make(map[scan.FailClass]int),
		Exchange: exchange.Counters{
			Transport: exchange.TransportCounters{Exchanges: rng.Int63n(1000), Errors: rng.Int63n(50)},
			Cache:     exchange.CacheCounters{Hits: rng.Int63n(300), Misses: rng.Int63n(300)},
			Dedup:     exchange.DedupCounters{Hits: rng.Int63n(100), Misses: rng.Int63n(100)},
			Retry:     exchange.RetryCounters{Retries: rng.Int63n(80), Failures: rng.Int63n(10)},
		},
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		class := failClasses[rng.Intn(len(failClasses))]
		h.Failures = append(h.Failures, scan.Failure{
			Target: scan.Target{Domain: fmt.Sprintf("d%d-%d-%d.com", shard, i, rng.Intn(100)), TLD: "com"},
			Stage:  []string{"ns", "ds", "dnskey"}[rng.Intn(3)],
			Class:  class,
			Err:    "injected",
		})
		h.ByClass[class]++
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		h.SkippedUnknownTLD = append(h.SkippedUnknownTLD, fmt.Sprintf("x%d-%d.weird", shard, i))
	}
	return h
}

// mergeAll folds reports into a fresh aggregate.
func mergeAll(day simtime.Day, parts []*scan.SweepHealth) *scan.SweepHealth {
	agg := &scan.SweepHealth{Day: day}
	for _, p := range parts {
		agg.Merge(p)
	}
	return agg
}

// canonical normalizes order-carrying fields so two aggregates built from
// the same multiset of reports compare equal.
func canonical(h *scan.SweepHealth) *scan.SweepHealth {
	c := *h
	c.Failures = append([]scan.Failure(nil), h.Failures...)
	sort.Slice(c.Failures, func(i, j int) bool {
		a, b := c.Failures[i], c.Failures[j]
		if a.Target.Domain != b.Target.Domain {
			return a.Target.Domain < b.Target.Domain
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Class < b.Class
	})
	c.SkippedUnknownTLD = append([]string(nil), h.SkippedUnknownTLD...)
	sort.Strings(c.SkippedUnknownTLD)
	if c.ByClass == nil {
		c.ByClass = make(map[scan.FailClass]int)
	}
	for class, n := range c.ByClass {
		if n == 0 {
			delete(c.ByClass, class)
		}
	}
	return &c
}

func TestSweepHealthMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	day := simtime.Day(100)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		parts := make([]*scan.SweepHealth, n)
		for i := range parts {
			parts[i] = genHealth(rng, day, i)
		}
		want := canonical(mergeAll(day, parts))
		shuffled := append([]*scan.SweepHealth(nil), parts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := canonical(mergeAll(day, shuffled))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: merge order changed the aggregate:\nwant %+v\ngot  %+v", trial, want, got)
		}
	}
}

func TestSweepHealthMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	day := simtime.Day(200)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(16)
		parts := make([]*scan.SweepHealth, n)
		for i := range parts {
			parts[i] = genHealth(rng, day, i)
		}
		flat := canonical(mergeAll(day, parts))

		// Split the same shards across a random number of "workers", fold
		// each worker's share, then fold the per-worker aggregates — the
		// distributed sweep's two-level aggregation.
		workers := 1 + rng.Intn(n)
		groups := make([][]*scan.SweepHealth, workers)
		for _, p := range parts {
			w := rng.Intn(workers)
			groups[w] = append(groups[w], p)
		}
		var partials []*scan.SweepHealth
		for _, g := range groups {
			partials = append(partials, mergeAll(day, g))
		}
		twoLevel := canonical(mergeAll(day, partials))
		if !reflect.DeepEqual(flat, twoLevel) {
			t.Fatalf("trial %d: partitioning changed the aggregate:\nflat %+v\ntwo-level %+v", trial, flat, twoLevel)
		}

		// Conservation: the aggregate's scalars are exactly the sums.
		var targets, measured, unreg, failures int
		byClass := make(map[scan.FailClass]int)
		for _, p := range parts {
			targets += p.Targets
			measured += p.Measured
			unreg += p.Unregistered
			failures += len(p.Failures)
			for class, c := range p.ByClass {
				byClass[class] += c
			}
		}
		if flat.Targets != targets || flat.Measured != measured || flat.Unregistered != unreg || len(flat.Failures) != failures {
			t.Fatalf("trial %d: totals not conserved: %+v", trial, flat)
		}
		for class, c := range byClass {
			if flat.ByClass[class] != c {
				t.Fatalf("trial %d: class %s not conserved: %d != %d", trial, class, flat.ByClass[class], c)
			}
		}
	}
}

func TestSweepHealthMergeNilAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := genHealth(rng, simtime.Day(5), 0)
	want := canonical(h)
	h.Merge(nil)
	h.Merge(&scan.SweepHealth{Day: simtime.Day(5)})
	if got := canonical(h); !reflect.DeepEqual(want, got) {
		t.Fatalf("nil/zero merge changed the aggregate:\nwant %+v\ngot  %+v", want, got)
	}
}
