package scan_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// streamSweepSetup adapts sweepSetup's environment to the streaming
// interface: same scanner, the target list behind a cursor, no per-chunk
// prepare (the in-memory world serves every domain already).
func streamSweepSetup(t *testing.T, eco *dnstest.Ecosystem, targets []scan.Target, wrap func(dnsserver.Exchanger) dnsserver.Exchanger) scan.StreamDaySetup {
	inner := sweepSetup(t, eco, targets, wrap)
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, scan.TargetSource, scan.ChunkPrepare, error) {
		s, ts, err := inner(ctx, day)
		if err != nil {
			return nil, nil, nil, err
		}
		return s, scan.SliceTargets(ts), nil, nil
	}
}

// healthKey reduces a SweepHealth to an order-insensitive canonical form.
func healthKey(h *scan.SweepHealth) string {
	classes := make([]string, 0, len(h.ByClass))
	for c, n := range h.ByClass {
		if n != 0 {
			classes = append(classes, fmt.Sprintf("%s=%d", c, n))
		}
	}
	sort.Strings(classes)
	fails := make([]string, 0, len(h.Failures))
	for _, f := range h.Failures {
		fails = append(fails, f.Target.Domain+"/"+f.Stage+"/"+string(f.Class))
	}
	sort.Strings(fails)
	skipped := append([]string(nil), h.SkippedUnknownTLD...)
	sort.Strings(skipped)
	return fmt.Sprintf("t=%d m=%d u=%d by[%s] fail[%s] skip[%s] retries=%d",
		h.Targets, h.Measured, h.Unregistered, strings.Join(classes, ","),
		strings.Join(fails, ","), strings.Join(skipped, ","), h.Retries)
}

func TestScanDayStreamMatchesWholeDay(t *testing.T) {
	eco, targets := buildWorld(t)
	day := eco.Clock.Day()

	whole := newScanner(t, eco, 3)
	wantSnap, wantHealth, err := whole.ScanDay(context.Background(), day, targets)
	if err != nil {
		t.Fatal(err)
	}
	wantSnap.Canonicalize()
	var want bytes.Buffer
	if err := wantSnap.WriteArchiveSection(&want); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 2, 3, len(targets), len(targets) + 50} {
		s := newScanner(t, eco, 3)
		got := &dataset.Snapshot{Day: day}
		var chunkHealths []*scan.SweepHealth
		h, err := s.ScanDayStream(context.Background(), day, scan.SliceTargets(targets),
			scan.StreamOptions{Chunk: chunk},
			func(c int, snap *dataset.Snapshot, ch *scan.SweepHealth) error {
				got.Records = append(got.Records, snap.Records...)
				if !ch.Balanced() {
					t.Errorf("chunk=%d: chunk %d health unbalanced: %s", chunk, c, ch)
				}
				chunkHealths = append(chunkHealths, ch)
				return nil
			})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !h.Balanced() {
			t.Errorf("chunk=%d: aggregate health unbalanced: %s", chunk, h)
		}
		got.Canonicalize()
		var gotBuf bytes.Buffer
		if err := got.WriteArchiveSection(&gotBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), gotBuf.Bytes()) {
			t.Errorf("chunk=%d: streamed records differ from whole-day scan", chunk)
		}
		if gk, wk := healthKey(h), healthKey(wantHealth); gk != wk {
			t.Errorf("chunk=%d: aggregate health differs\n got %s\nwant %s", chunk, gk, wk)
		}
		wantChunks := (len(targets) + chunk - 1) / chunk
		if len(chunkHealths) != wantChunks {
			t.Errorf("chunk=%d: sink called %d times, want %d", chunk, len(chunkHealths), wantChunks)
		}
	}
}

// TestStreamHealthMergeProperty is the ledger property test: for random
// chunk sizes (including 1 and larger than the target count), merging the
// per-chunk health reports in any order yields the same balanced
// aggregate.
func TestStreamHealthMergeProperty(t *testing.T) {
	eco, targets := buildWorld(t)
	day := eco.Clock.Day()
	rng := rand.New(rand.NewSource(7))

	var wantKey string
	for trial := 0; trial < 8; trial++ {
		chunk := 1 + rng.Intn(len(targets)+3)
		if trial == 0 {
			chunk = 1
		}
		if trial == 1 {
			chunk = len(targets) + 17
		}
		s := newScanner(t, eco, 3)
		var parts []*scan.SweepHealth
		if _, err := s.ScanDayStream(context.Background(), day, scan.SliceTargets(targets),
			scan.StreamOptions{Chunk: chunk},
			func(c int, snap *dataset.Snapshot, h *scan.SweepHealth) error {
				parts = append(parts, h)
				return nil
			}); err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}

		// Merge the chunk reports in a few random orders; every order must
		// produce the same balanced aggregate.
		for perm := 0; perm < 4; perm++ {
			order := rng.Perm(len(parts))
			agg := &scan.SweepHealth{Day: day}
			for _, i := range order {
				agg.Merge(parts[i])
			}
			if !agg.Balanced() {
				t.Fatalf("chunk=%d perm=%v: merged health unbalanced: %s", chunk, order, agg)
			}
			if agg.Targets != len(targets) {
				t.Fatalf("chunk=%d: merged targets %d, want %d", chunk, agg.Targets, len(targets))
			}
			key := healthKey(agg)
			if wantKey == "" {
				wantKey = key
			}
			if key != wantKey {
				t.Fatalf("chunk=%d perm=%v: aggregate differs\n got %s\nwant %s", chunk, order, key, wantKey)
			}
		}
	}
}

// canonicalArchive renders a store as an archive with every day section
// fully canonicalized — the equivalence oracle RunStream's merged sections
// must match byte for byte. (Legacy Run returns days as concatenations of
// canonicalized shards; the global per-day sort is the canonical form.)
func canonicalArchive(t *testing.T, store *dataset.Store) []byte {
	t.Helper()
	for _, day := range store.Days() {
		store.Get(day).Canonicalize()
	}
	var buf bytes.Buffer
	if err := store.WriteArchive(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// archiveViaStream runs a streaming sweep into an on-disk archive and
// returns the file bytes.
func archiveViaStream(t *testing.T, rs *scan.ResumableSweep, days []simtime.Day) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.tsv")
	aw, err := dataset.NewArchiveWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.RunStream(context.Background(), days, func(day simtime.Day, sw *dataset.SpillWriter) error {
		return aw.Section(sw)
	}); err != nil {
		aw.Abort()
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunStreamByteIdenticalToLegacy(t *testing.T) {
	eco, targets := buildWorld(t)
	days := []simtime.Day{eco.Clock.Day(), eco.Clock.Day() + 1}

	legacy := &scan.ResumableSweep{Shards: 3, Setup: sweepSetup(t, eco, targets, nil)}
	store, err := legacy.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalArchive(t, store)

	for _, chunk := range []int{1, 3, len(targets) + 9} {
		for _, budget := range []int64{1, 1 << 20} {
			cp, err := checkpoint.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			var healths []*scan.SweepHealth
			rs := &scan.ResumableSweep{
				Checkpoint:  cp,
				Fingerprint: fmt.Sprintf("stream chunk=%d", chunk),
				Shards:      3,
				Chunk:       chunk,
				Spill:       dataset.SpillOptions{Dir: t.TempDir(), MemBudget: budget},
				StreamSetup: streamSweepSetup(t, eco, targets, nil),
				OnDayHealth: func(d simtime.Day, h *scan.SweepHealth) { healths = append(healths, h) },
			}
			got := archiveViaStream(t, rs, days)
			if !bytes.Equal(want, got) {
				t.Errorf("chunk=%d budget=%d: streaming archive differs from legacy run", chunk, budget)
			}
			if len(healths) != len(days) {
				t.Fatalf("chunk=%d: %d day healths, want %d", chunk, len(healths), len(days))
			}
			for _, h := range healths {
				if !h.Balanced() || h.Targets != len(targets) {
					t.Errorf("chunk=%d: day health wrong: %s", chunk, h)
				}
			}
		}
	}
}

func TestRunStreamKillResume(t *testing.T) {
	eco, targets := buildWorld(t)
	days := []simtime.Day{eco.Clock.Day(), eco.Clock.Day() + 1}

	legacy := &scan.ResumableSweep{Shards: 3, Setup: sweepSetup(t, eco, targets, nil)}
	store, err := legacy.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalArchive(t, store)

	// Calibrate the kill point to ~60% of one day's exchanges so several
	// chunks land before the cut.
	counter := &cancelAtExchanger{inner: eco.Net, at: -1}
	probe := &scan.ResumableSweep{Shards: 3, Chunk: 2,
		StreamSetup: streamSweepSetup(t, eco, targets, func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			counter.inner = ex
			return counter
		})}
	if err := probe.RunStream(context.Background(), []simtime.Day{days[0]}, nil); err != nil {
		t.Fatal(err)
	}
	killAt := counter.n.Load() * 6 / 10
	if killAt < 2 {
		killAt = 2
	}

	dir := t.TempDir()
	cp, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &cancelAtExchanger{cancel: cancel, at: killAt}
	var events []string
	interrupted := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: "stream-drill",
		Shards:      3,
		Chunk:       2,
		StreamSetup: streamSweepSetup(t, eco, targets, func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			killer.inner = ex
			return killer
		}),
		OnEvent: func(f string, a ...any) { events = append(events, fmt.Sprintf(f, a...)) },
	}
	if err := interrupted.RunStream(ctx, days, nil); err == nil {
		t.Fatal("interrupted streaming run reported success")
	}
	if !cp.Exists() {
		t.Fatal("no checkpoint persisted by the interrupted run")
	}
	st, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	doneChunks := 0
	for _, dp := range st.Days {
		for _, cpr := range dp.Partial {
			doneChunks += len(cpr.Done)
		}
	}
	if doneChunks == 0 {
		t.Fatal("kill landed before any chunk completed; cannot exercise chunk-level resume")
	}

	resumed := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: "stream-drill",
		Shards:      3,
		Chunk:       2,
		StreamSetup: streamSweepSetup(t, eco, targets, nil),
		OnEvent:     func(f string, a ...any) { events = append(events, fmt.Sprintf(f, a...)) },
	}
	got := archiveViaStream(t, resumed, days)
	if !bytes.Equal(want, got) {
		t.Errorf("resumed streaming archive differs from uninterrupted legacy run:\n--- want\n%s\n--- got\n%s", want, got)
	}
	chunkVerified := false
	for _, e := range events {
		if strings.Contains(e, "chunk") && strings.Contains(e, "verified from checkpoint") {
			chunkVerified = true
		}
	}
	if !chunkVerified {
		t.Errorf("no chunk-level verification events in %q", events)
	}

	// A full re-run verifies every chunk from checksum without scanning.
	again := archiveViaStream(t, resumed, days)
	if !bytes.Equal(want, again) {
		t.Error("checksum-verified streaming reload diverges")
	}
}

func TestRunStreamChunkGeometryGuard(t *testing.T) {
	eco, targets := buildWorld(t)
	day := eco.Clock.Day()
	cp, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt almost immediately so the day stays incomplete but has
	// recorded chunk geometry.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &cancelAtExchanger{cancel: cancel, at: 25}
	first := &scan.ResumableSweep{
		Checkpoint: cp, Fingerprint: "geom", Shards: 2, Chunk: 2,
		StreamSetup: streamSweepSetup(t, eco, targets, func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			killer.inner = ex
			return killer
		}),
	}
	if err := first.RunStream(ctx, []simtime.Day{day}, nil); err == nil {
		t.Fatal("interrupted run reported success")
	}
	st, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	hasGeometry := false
	for _, dp := range st.Days {
		if len(dp.Partial) > 0 {
			hasGeometry = true
		}
	}
	if !hasGeometry {
		t.Skip("kill landed before any shard recorded chunk geometry")
	}

	// Resuming with a different chunk size must be refused.
	second := &scan.ResumableSweep{
		Checkpoint: cp, Fingerprint: "geom", Shards: 2, Chunk: 5,
		StreamSetup: streamSweepSetup(t, eco, targets, nil),
	}
	err = second.RunStream(context.Background(), []simtime.Day{day}, nil)
	if err == nil || !strings.Contains(err.Error(), "chunked as") {
		t.Errorf("chunk-size change accepted on resume: %v", err)
	}
}

func TestShardBoundsMatchShardSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		shards := rng.Intn(12) - 1
		targets := make([]scan.Target, n)
		for i := range targets {
			targets[i] = scan.Target{Domain: fmt.Sprintf("d%d.com", i), TLD: "com"}
		}
		parts := scan.ShardSplit(targets, shards)
		spans := scan.ShardBounds(n, shards)
		if len(parts) != len(spans) {
			t.Fatalf("n=%d shards=%d: %d parts vs %d spans", n, shards, len(parts), len(spans))
		}
		off := 0
		for i, p := range parts {
			if spans[i].Lo != off || spans[i].Hi != off+len(p) {
				t.Fatalf("n=%d shards=%d shard %d: span %+v, slice [%d,%d)", n, shards, i, spans[i], off, off+len(p))
			}
			off += len(p)
		}
		got := scan.CollectTargets(scan.SliceTargets(targets), 0, n, nil)
		if !reflect.DeepEqual(got, targets) && n > 0 {
			t.Fatalf("CollectTargets round trip failed at n=%d", n)
		}
	}
}
