package scan

import (
	"context"
	"fmt"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// StreamDaySetup materializes the streaming scan environment for one day:
// the scanner, a random-access target cursor, and an optional per-chunk
// prepare hook (nil when the scanning substrate needs no per-chunk work).
// Like DaySetup it is called lazily — a day fully verified from the
// checkpoint never pays for a setup.
type StreamDaySetup func(ctx context.Context, day simtime.Day) (*Scanner, TargetSource, ChunkPrepare, error)

// DaySink receives each completed day of a streaming sweep as a spill
// writer holding the day's full record set. The sink typically calls
// sw.WriteSectionTo to stream the canonical day section into an archive;
// the writer is closed by the caller after the sink returns.
type DaySink func(day simtime.Day, sw *dataset.SpillWriter) error

// chunk returns the effective streaming chunk size.
func (rs *ResumableSweep) chunk() int {
	if rs.Chunk <= 0 {
		return DefaultChunk
	}
	return rs.Chunk
}

// RunStream executes the sweep over days with bounded memory: targets come
// off a cursor chunk by chunk, every completed chunk is durably
// checkpointed before the next starts, and each day's records accumulate
// in a spill writer (RAM up to Spill.MemBudget, sorted run files beyond)
// handed to sink when the day completes. A SIGKILL mid-shard loses at most
// the chunk in flight; the re-run verifies completed chunks by checksum
// and re-enters the shard at the first missing chunk. The final day
// sections are byte-identical to the in-RAM Run + Canonicalize path.
func (rs *ResumableSweep) RunStream(ctx context.Context, days []simtime.Day, sink DaySink) error {
	if rs.StreamSetup == nil {
		return fmt.Errorf("scan: RunStream requires a StreamSetup function")
	}
	st, release, err := rs.lockAndLoad()
	if err != nil {
		return err
	}
	defer release()
	for _, day := range days {
		if err := rs.runDayStream(ctx, day, st, sink); err != nil {
			return err
		}
	}
	return nil
}

// runDayStream completes one day chunk by chunk. In streaming mode the
// durable unit is the chunk: no shard-level files are written, and a
// completed day keeps its Partial chunk map as the record of what the day
// is made of.
func (rs *ResumableSweep) runDayStream(ctx context.Context, day simtime.Day, st *checkpoint.State, sink DaySink) (err error) {
	dp := st.Day(day)
	sw := dataset.NewSpillWriter(day, rs.Spill)
	defer func() {
		if cerr := sw.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// Fast path: the whole day is checkpointed — verify every chunk by
	// checksum and skip the scan (and the day's setup) entirely.
	if dp.Done && rs.Checkpoint != nil {
		ok, lerr := rs.loadDoneDayStream(day, dp, sw)
		if lerr != nil {
			return lerr
		}
		if ok {
			rs.event("resume: day %s verified from checkpoint (%d records), skipping scan", day, sw.Len())
			return rs.finishDayStream(day, sw, sink)
		}
		// Some chunk is damaged or missing: demote the day, discard
		// whatever the partial verification appended, and re-enter the
		// general path with a fresh writer.
		dp.Done = false
		if serr := rs.saveState(st); serr != nil {
			return serr
		}
		if cerr := sw.Close(); cerr != nil {
			return cerr
		}
		sw = dataset.NewSpillWriter(day, rs.Spill)
	}

	scanner, src, prepare, err := rs.StreamSetup(ctx, day)
	if err != nil {
		return err
	}
	chunkSz := rs.chunk()
	spans := ShardBounds(src.Len(), rs.shards())
	dayHealth := &SweepHealth{Day: day, ByClass: make(map[FailClass]int)}
	buf := make([]Target, 0, chunkSz)

	for k, span := range spans {
		cp, err := dp.ChunkShard(k, chunkSz, span.Len())
		if err != nil {
			// The checkpoint's chunk geometry disagrees with this run's
			// plan — the recorded chunk files mean something else. Refuse,
			// like a fingerprint mismatch, rather than fabricate a day out
			// of incompatible pieces.
			return fmt.Errorf("scan: day %s: %w", day, err)
		}
		for c := 0; c < cp.Chunks; c++ {
			clo := span.Lo + c*chunkSz
			chi := clo + chunkSz
			if chi > span.Hi {
				chi = span.Hi
			}
			if meta := cp.Done[c]; meta != nil && rs.Checkpoint != nil {
				snap, err := rs.Checkpoint.LoadChunk(day, k, c, meta)
				if err == nil {
					rs.event("resume: day %s shard %d chunk %d/%d verified from checkpoint (%d records)",
						day, k, c+1, cp.Chunks, len(snap.Records))
					if err := sw.Append(snap.Records...); err != nil {
						return err
					}
					dayHealth.Merge(HealthFromSnapshot(day, chi-clo, snap))
					continue
				}
				rs.event("resume: day %s shard %d chunk %d/%d damaged (%v), re-scanning", day, k, c+1, cp.Chunks, err)
				delete(cp.Done, c)
			}

			if prepare != nil {
				if err := prepare(ctx, clo, chi); err != nil {
					return err
				}
			}
			buf = CollectTargets(src, clo, chi, buf)
			snap, health, scanErr := scanner.ScanDay(ctx, day, buf)
			dayHealth.Merge(health)
			if scanErr != nil {
				// Interrupted mid-chunk: drop the partial chunk, persist
				// what is already complete, and hand the caller a clean
				// resume point.
				if saveErr := rs.saveState(st); saveErr != nil {
					return fmt.Errorf("scan: %w (and checkpoint save failed: %v)", scanErr, saveErr)
				}
				if rs.OnDayHealth != nil {
					rs.OnDayHealth(day, dayHealth)
				}
				return scanErr
			}
			snap.Canonicalize()
			if rs.Checkpoint != nil {
				meta, err := rs.Checkpoint.WriteChunk(day, k, c, snap)
				if err != nil {
					return err
				}
				cp.Done[c] = meta
				if err := rs.saveState(st); err != nil {
					return err
				}
			}
			if err := sw.Append(snap.Records...); err != nil {
				return err
			}
		}
	}

	dp.Done = true
	if err := rs.saveState(st); err != nil {
		return err
	}
	if rs.OnDayHealth != nil {
		rs.OnDayHealth(day, dayHealth)
	}
	return rs.finishDayStream(day, sw, sink)
}

// finishDayStream hands the completed day to the sink.
func (rs *ResumableSweep) finishDayStream(day simtime.Day, sw *dataset.SpillWriter, sink DaySink) error {
	if sink == nil {
		return nil
	}
	return sink(day, sw)
}

// loadDoneDayStream assembles a completed streaming day from its
// checkpointed chunks into sw, verifying each. ok is false if any chunk
// fails verification (damaged entries are removed so the caller re-scans
// just those). A day completed by the legacy shard path loads from its
// shard files instead.
func (rs *ResumableSweep) loadDoneDayStream(day simtime.Day, dp *checkpoint.DayProgress, sw *dataset.SpillWriter) (bool, error) {
	if len(dp.Partial) == 0 {
		// Legacy-completed day: stream its shard archives through sw.
		for k := 0; k < len(dp.Shards); k++ {
			meta := dp.Shards[k]
			if meta == nil {
				rs.event("resume: day %s shard %d missing from checkpoint state", day, k)
				return false, nil
			}
			snap, err := rs.Checkpoint.LoadShard(day, k, meta)
			if err != nil {
				rs.event("resume: day %s shard %d failed verification (%v)", day, k, err)
				delete(dp.Shards, k)
				return false, nil
			}
			if err := sw.Append(snap.Records...); err != nil {
				return false, err
			}
		}
		return len(dp.Shards) > 0, nil
	}
	for k := 0; k < len(dp.Partial); k++ {
		cp := dp.Partial[k]
		if cp == nil {
			rs.event("resume: day %s shard %d missing from chunk progress", day, k)
			return false, nil
		}
		for c := 0; c < cp.Chunks; c++ {
			meta := cp.Done[c]
			if meta == nil {
				rs.event("resume: day %s shard %d chunk %d missing from checkpoint state", day, k, c)
				return false, nil
			}
			snap, err := rs.Checkpoint.LoadChunk(day, k, c, meta)
			if err != nil {
				rs.event("resume: day %s shard %d chunk %d failed verification (%v)", day, k, c, err)
				delete(cp.Done, c)
				return false, nil
			}
			if err := sw.Append(snap.Records...); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}
