package scan

import (
	"context"
	"fmt"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// DaySetup materializes the scanning environment for one day: the scanner
// and the day's target population. It is called lazily — a resumed day
// whose every shard verifies from the checkpoint never pays for a setup.
type DaySetup func(ctx context.Context, day simtime.Day) (*Scanner, []Target, error)

// ResumableSweep drives a multi-day sweep in checkpointable shards. Each
// day's targets are split into a fixed number of shards; every completed
// shard is durably written to the checkpoint directory before the next
// one starts, so an interruption — SIGINT, crash, kill — loses at most
// the shard in flight. A re-run with the same configuration resumes from
// the last completed shard: finished days are verified by checksum
// instead of re-scanned, damaged or missing shards are re-scanned, and
// the in-flight shard of the interrupted run is re-done from scratch
// (partial shards are discarded, never persisted), which keeps the final
// archive byte-identical to an uninterrupted run.
type ResumableSweep struct {
	// Checkpoint persists progress; nil runs the sweep without durability
	// (still sharded and canonicalized, so output bytes are identical).
	Checkpoint *checkpoint.Store
	// Fingerprint identifies the sweep configuration. A checkpoint written
	// under a different fingerprint is refused rather than mixed in.
	Fingerprint string
	// Shards is the number of checkpoint units per day (default 4).
	Shards int
	// Setup builds the scanner and targets for one day.
	Setup DaySetup
	// StreamSetup is Setup's streaming counterpart (used by RunStream): it
	// yields a target cursor and an optional per-chunk prepare hook instead
	// of a materialized target slice.
	StreamSetup StreamDaySetup
	// Chunk is RunStream's targets-per-chunk size (default DefaultChunk).
	// It shapes the durable chunk files, so it must be covered by the
	// Fingerprint — resuming under a different chunk size is refused at
	// the shard level regardless.
	Chunk int
	// Spill configures RunStream's per-day spill-to-disk writers.
	Spill dataset.SpillOptions
	// OnDayHealth, when set, receives each day's aggregated health report.
	OnDayHealth func(day simtime.Day, h *SweepHealth)
	// OnEvent, when set, receives progress lines (resume skips, shard
	// completions, damage re-scans).
	OnEvent func(format string, args ...any)
}

// event emits a progress line if a sink is attached.
func (rs *ResumableSweep) event(format string, args ...any) {
	if rs.OnEvent != nil {
		rs.OnEvent(format, args...)
	}
}

// shards returns the effective shard count.
func (rs *ResumableSweep) shards() int {
	if rs.Shards <= 0 {
		return 4
	}
	return rs.Shards
}

// ShardSplit partitions targets into n contiguous shards (the first
// len(targets)%n shards get one extra element). The split is a pure
// function of the target list, so an interrupted run, its resume, and
// every worker of a distributed sweep agree on every shard boundary.
func ShardSplit(targets []Target, n int) [][]Target {
	if n > len(targets) && len(targets) > 0 {
		n = len(targets)
	}
	if n <= 0 {
		n = 1
	}
	parts := make([][]Target, 0, n)
	size, rem := len(targets)/n, len(targets)%n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		parts = append(parts, targets[start:end])
		start = end
	}
	return parts
}

// Run executes the sweep over days, returning the archived store. On
// context cancellation it persists a clean checkpoint (every finished
// shard recorded, the interrupted shard dropped) and returns the partial
// store together with the context's error; re-running Run with the same
// configuration picks up from there.
func (rs *ResumableSweep) Run(ctx context.Context, days []simtime.Day) (*dataset.Store, error) {
	if rs.Setup == nil {
		return nil, fmt.Errorf("scan: ResumableSweep requires a Setup function")
	}
	st, release, err := rs.lockAndLoad()
	if err != nil {
		return nil, err
	}
	defer release()
	store := dataset.NewStore()
	for _, day := range days {
		snap, err := rs.runDay(ctx, day, st)
		if snap != nil {
			store.Add(snap)
		}
		if err != nil {
			return store, err
		}
	}
	return store, nil
}

// lockAndLoad acquires the checkpoint's single-writer lock and loads (or
// creates) the state, refusing a state written under a different
// fingerprint. With no checkpoint configured it returns a fresh in-memory
// state and a no-op release.
func (rs *ResumableSweep) lockAndLoad() (*checkpoint.State, func() error, error) {
	if rs.Checkpoint == nil {
		return checkpoint.NewState(rs.Fingerprint), func() error { return nil }, nil
	}
	// The sweep is the sole mutator of the checkpoint state for its whole
	// run: a second process resuming the same directory must fail here,
	// not interleave Save calls with us.
	release, err := rs.Checkpoint.AcquireLock("resumable-sweep", rs.Fingerprint)
	if err != nil {
		return nil, nil, err
	}
	loaded, err := rs.Checkpoint.Load()
	if err != nil {
		release()
		return nil, nil, err
	}
	if loaded != nil {
		if loaded.Fingerprint != rs.Fingerprint {
			release()
			return nil, nil, fmt.Errorf("scan: checkpoint in %s belongs to a different sweep (fingerprint %q, this run %q)",
				rs.Checkpoint.Dir(), loaded.Fingerprint, rs.Fingerprint)
		}
		return loaded, release, nil
	}
	return checkpoint.NewState(rs.Fingerprint), release, nil
}

// saveState persists the checkpoint state if checkpointing is on.
func (rs *ResumableSweep) saveState(st *checkpoint.State) error {
	if rs.Checkpoint == nil {
		return nil
	}
	return rs.Checkpoint.Save(st)
}

// runDay completes one day: verified shards load from the checkpoint,
// everything else is scanned shard by shard with a durable checkpoint
// after each.
func (rs *ResumableSweep) runDay(ctx context.Context, day simtime.Day, st *checkpoint.State) (*dataset.Snapshot, error) {
	nShards := rs.shards()
	dp := st.Day(day)

	// Fast path: the whole day is checkpointed — verify every shard by
	// checksum and skip the scan (and the day's setup) entirely.
	if dp.Done && rs.Checkpoint != nil {
		if snap, ok := rs.loadDoneDay(day, dp); ok {
			rs.event("resume: day %s verified from checkpoint (%d records), skipping scan", day, len(snap.Records))
			return snap, nil
		}
		// Some shard is damaged or missing: demote the day and fall
		// through to re-scan exactly the broken shards.
		dp.Done = false
		if err := rs.saveState(st); err != nil {
			return nil, err
		}
	}

	scanner, targets, err := rs.Setup(ctx, day)
	if err != nil {
		return nil, err
	}
	parts := ShardSplit(targets, nShards)
	daySnap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, len(targets))}
	dayHealth := &SweepHealth{Day: day, Targets: 0, ByClass: make(map[FailClass]int)}

	for k, part := range parts {
		if meta := dp.Shards[k]; meta != nil && rs.Checkpoint != nil {
			snap, err := rs.Checkpoint.LoadShard(day, k, meta)
			if err == nil {
				rs.event("resume: day %s shard %d/%d verified from checkpoint (%d records)", day, k+1, len(parts), len(snap.Records))
				daySnap.Records = append(daySnap.Records, snap.Records...)
				dayHealth.Merge(HealthFromSnapshot(day, len(part), snap))
				continue
			}
			rs.event("resume: day %s shard %d/%d damaged (%v), re-scanning", day, k+1, len(parts), err)
			delete(dp.Shards, k)
		}

		snap, health, scanErr := scanner.ScanDay(ctx, day, part)
		dayHealth.Merge(health)
		if scanErr != nil {
			// Interrupted mid-shard: drop the partial shard, persist what
			// is already complete, and hand the caller a clean resume
			// point.
			if saveErr := rs.saveState(st); saveErr != nil {
				return nil, fmt.Errorf("scan: %w (and checkpoint save failed: %v)", scanErr, saveErr)
			}
			if rs.OnDayHealth != nil {
				rs.OnDayHealth(day, dayHealth)
			}
			return nil, scanErr
		}
		snap.Canonicalize()
		if rs.Checkpoint != nil {
			meta, err := rs.Checkpoint.WriteShard(day, k, snap)
			if err != nil {
				return nil, err
			}
			dp.Shards[k] = meta
			if err := rs.saveState(st); err != nil {
				return nil, err
			}
		}
		daySnap.Records = append(daySnap.Records, snap.Records...)
	}

	dp.Done = true
	if err := rs.saveState(st); err != nil {
		return nil, err
	}
	if rs.OnDayHealth != nil {
		rs.OnDayHealth(day, dayHealth)
	}
	return daySnap, nil
}

// loadDoneDay assembles a completed day from its checkpointed shards,
// verifying each; ok is false if any shard fails verification (the
// damaged entries are removed so the caller re-scans just those).
func (rs *ResumableSweep) loadDoneDay(day simtime.Day, dp *checkpoint.DayProgress) (*dataset.Snapshot, bool) {
	nShards := len(dp.Shards)
	snap := &dataset.Snapshot{Day: day}
	for k := 0; k < nShards; k++ {
		meta := dp.Shards[k]
		if meta == nil {
			rs.event("resume: day %s shard %d missing from checkpoint state", day, k)
			return nil, false
		}
		part, err := rs.Checkpoint.LoadShard(day, k, meta)
		if err != nil {
			rs.event("resume: day %s shard %d failed verification (%v)", day, k, err)
			delete(dp.Shards, k)
			return nil, false
		}
		snap.Records = append(snap.Records, part.Records...)
	}
	return snap, true
}

// HealthFromSnapshot reconstructs approximate health accounting for a
// shard or chunk restored from the checkpoint: measured and failed
// records are exact (they are in the snapshot); targets absent from the
// snapshot were unregistered or unknown-TLD at scan time and are folded
// into Unregistered, since the checkpoint does not persist that
// distinction. The reconstruction is always Balanced.
func HealthFromSnapshot(day simtime.Day, shardTargets int, snap *dataset.Snapshot) *SweepHealth {
	h := &SweepHealth{Day: day, Targets: shardTargets, ByClass: make(map[FailClass]int)}
	h.Measured = snap.MeasuredCount()
	for i := range snap.Records {
		r := &snap.Records[i]
		if !r.Failed {
			continue
		}
		class := FailClass(r.FailReason)
		if class == "" {
			class = FailTransport
		}
		h.Failures = append(h.Failures, Failure{
			Target: Target{Domain: r.Domain, TLD: r.TLD},
			Stage:  "checkpoint", Class: class,
		})
		h.ByClass[class]++
	}
	if absent := shardTargets - len(snap.Records); absent > 0 {
		h.Unregistered = absent
	}
	return h
}
