package scan_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// timeoutErr mimics a transport timeout.
type timeoutErr struct{}

func (timeoutErr) Error() string { return "scripted: i/o timeout" }
func (timeoutErr) Timeout() bool { return true }

// resweepWorld scripts a two-host domain: h1 is permanently dark, h2
// times out on its first flaky.test DNSKEY query and answers afterwards,
// and a second domain served by h2 alone establishes h2 as known-alive
// during pass one.
type resweepWorld struct {
	mu      sync.Mutex
	queries []string // "server|name|type" in arrival order
	h2Seen  int
}

func (w *resweepWorld) log(server string, q *dnswire.Message) {
	w.queries = append(w.queries, fmt.Sprintf("%s|%s|%v", server, q.Questions[0].Name, q.Questions[0].Type))
}

func (w *resweepWorld) Exchange(_ context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.log(server, q)
	name, qt := q.Questions[0].Name, q.Questions[0].Type
	resp := q.Reply()
	resp.Authoritative = true
	switch server {
	case "tld.server":
		if qt == dnswire.TypeNS {
			hosts := []string{"h2.example"}
			if name == "flaky.test" {
				hosts = []string{"h1.example", "h2.example"}
			}
			for _, h := range hosts {
				resp.Authority = append(resp.Authority, dnswire.NewRR(name, 300, &dnswire.NS{Host: h}))
			}
		}
		return resp, nil // DS: empty success (no DS)
	case "h1.example":
		return nil, timeoutErr{}
	case "h2.example":
		if server == "h2.example" && name == "flaky.test" {
			w.h2Seen++
			if w.h2Seen == 1 {
				return nil, timeoutErr{}
			}
		}
		if qt == dnswire.TypeDNSKEY {
			resp.Answers = append(resp.Answers, dnswire.NewRR(name, 300, &dnswire.DNSKEY{
				Flags: 257, Protocol: 3, Algorithm: dnswire.AlgED25519, PublicKey: make([]byte, 32),
			}))
		}
		return resp, nil
	}
	return nil, timeoutErr{}
}

// TestResweepOrdersKnownDeadHostsLast locks in the re-sweep contract: a
// server that answered nothing during the first pass must not lead DNSKEY
// failover on the re-sweep pass. h1 eats exactly one DNSKEY query (pass
// one); the re-sweep asks the known-alive h2 first, gets the keys, and
// never returns to h1.
func TestResweepOrdersKnownDeadHostsLast(t *testing.T) {
	world := &resweepWorld{}
	s, err := scan.New(scan.Config{
		Exchange:   world,
		TLDServers: map[string]string{"test": "tld.server", "example": "tld.server"},
		Workers:    1,
		Clock:      func() simtime.Day { return simtime.Day(1) },
		Retry:      retry.Policy{MaxAttempts: 1, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := []scan.Target{
		{Domain: "solo.test", TLD: "test"},
		{Domain: "flaky.test", TLD: "test"},
	}
	snap, health, err := s.ScanDay(context.Background(), simtime.Day(1), targets)
	if err != nil {
		t.Fatal(err)
	}
	if health.Resweeps != 1 {
		t.Fatalf("resweeps = %d, want 1 (%s)", health.Resweeps, health)
	}
	if health.Measured != 2 || len(health.Failures) != 0 {
		t.Fatalf("flaky target not recovered on resweep: %s", health)
	}
	h1 := 0
	for _, q := range world.queries {
		if q == "h1.example|flaky.test|DNSKEY" {
			h1++
		}
	}
	if h1 != 1 {
		t.Errorf("dark host got %d DNSKEY queries, want 1: resweep must try known-alive hosts first\n%v", h1, world.queries)
	}
	// The health layer's record backs the ordering decision.
	snapHealth := s.Stack().Health.Snapshot()
	if !snapHealth["h1.example"].Dead() {
		t.Errorf("h1 not recorded dead: %+v", snapHealth["h1.example"])
	}
	if snapHealth["h2.example"].Dead() {
		t.Errorf("h2 wrongly dead: %+v", snapHealth["h2.example"])
	}
	// Exchange counters ride along in the sweep report.
	if health.Exchange.Transport.Exchanges == 0 || health.Exchange.Retry.Failures == 0 {
		t.Errorf("sweep exchange counters empty: %+v", health.Exchange)
	}
	if got := len(snap.Records); got != 2 {
		t.Errorf("records = %d, want 2", got)
	}
}
