package scan_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"securepki.org/registrarsec/internal/checkpoint"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/scan"
	"securepki.org/registrarsec/internal/simtime"
)

// cancelAtExchanger cancels the context when the Nth exchange begins, then
// lets the exchange itself fail on the dead context — a deterministic kill
// point mid-sweep.
type cancelAtExchanger struct {
	inner  dnsserver.Exchanger
	cancel context.CancelFunc
	at     int64
	n      atomic.Int64
}

func (e *cancelAtExchanger) Exchange(ctx context.Context, server string, q *dnswire.Message) (*dnswire.Message, error) {
	if e.n.Add(1) == e.at {
		e.cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.inner.Exchange(ctx, server, q)
}

// sweepSetup returns a DaySetup over the fixed in-memory world, optionally
// wrapping the exchanger.
func sweepSetup(t *testing.T, eco *dnstest.Ecosystem, targets []scan.Target, wrap func(dnsserver.Exchanger) dnsserver.Exchanger) scan.DaySetup {
	return func(ctx context.Context, day simtime.Day) (*scan.Scanner, []scan.Target, error) {
		var ex dnsserver.Exchanger = eco.Net
		if wrap != nil {
			ex = wrap(ex)
		}
		s, err := scan.New(scan.Config{
			Exchange: ex,
			TLDServers: map[string]string{
				"com": dnstest.TLDServerAddr("com"),
				"nl":  dnstest.TLDServerAddr("nl"),
			},
			Workers: 3,
			Clock:   eco.Clock.Day,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, targets, nil
	}
}

func TestResumableSweepKillResume(t *testing.T) {
	eco, targets := buildWorld(t)
	days := []simtime.Day{eco.Clock.Day(), eco.Clock.Day() + 1}

	// Reference: an uninterrupted, checkpoint-less run.
	clean := &scan.ResumableSweep{Shards: 3, Setup: sweepSetup(t, eco, targets, nil)}
	cleanStore, err := clean.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := cleanStore.WriteArchive(&want); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the kill lands mid-sweep, after the first day's
	// worth of queries — deep enough that at least one shard completed.
	dir := t.TempDir()
	cp, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killAt := int64(1)
	// Count a clean run's exchanges to place the kill around 60% in.
	counter := &cancelAtExchanger{inner: eco.Net, at: -1}
	probe := &scan.ResumableSweep{Shards: 3, Setup: func(c context.Context, d simtime.Day) (*scan.Scanner, []scan.Target, error) {
		return sweepSetup(t, eco, targets, func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			counter.inner = ex
			return counter
		})(c, d)
	}}
	if _, err := probe.Run(context.Background(), []simtime.Day{days[0]}); err != nil {
		t.Fatal(err)
	}
	killAt = counter.n.Load() * 6 / 10
	if killAt < 2 {
		killAt = 2
	}

	killer := &cancelAtExchanger{cancel: cancel, at: killAt}
	var events []string
	interrupted := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: "drill-v1",
		Shards:      3,
		Setup: sweepSetup(t, eco, targets, func(ex dnsserver.Exchanger) dnsserver.Exchanger {
			killer.inner = ex
			return killer
		}),
		OnEvent: func(f string, a ...any) { events = append(events, f) },
	}
	if _, err := interrupted.Run(ctx, days); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if !cp.Exists() {
		t.Fatal("no checkpoint persisted by the interrupted run")
	}

	// Resume with a fresh context and no fault: must complete and produce
	// a byte-identical archive.
	resumed := &scan.ResumableSweep{
		Checkpoint:  cp,
		Fingerprint: "drill-v1",
		Shards:      3,
		Setup:       sweepSetup(t, eco, targets, nil),
		OnEvent:     func(f string, a ...any) { events = append(events, f) },
	}
	resumedStore, err := resumed.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := resumedStore.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("resumed archive differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want.String(), got.String())
	}

	// A second resume verifies everything from checksum without scanning.
	again, err := resumed.Run(context.Background(), days)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt bytes.Buffer
	if err := again.WriteArchive(&rebuilt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), rebuilt.Bytes()) {
		t.Error("checksum-verified reload diverges from the scan")
	}
	verified := false
	for _, e := range events {
		if strings.Contains(e, "verified from checkpoint") {
			verified = true
		}
	}
	if !verified {
		t.Errorf("no checkpoint verification events in %q", events)
	}
}

func TestResumableSweepFingerprintGuard(t *testing.T) {
	eco, targets := buildWorld(t)
	day := eco.Clock.Day()
	dir := t.TempDir()
	cp, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := &scan.ResumableSweep{Checkpoint: cp, Fingerprint: "cfg-a", Shards: 2,
		Setup: sweepSetup(t, eco, targets, nil)}
	if _, err := first.Run(context.Background(), []simtime.Day{day}); err != nil {
		t.Fatal(err)
	}
	other := &scan.ResumableSweep{Checkpoint: cp, Fingerprint: "cfg-b", Shards: 2,
		Setup: sweepSetup(t, eco, targets, nil)}
	if _, err := other.Run(context.Background(), []simtime.Day{day}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Errorf("foreign checkpoint accepted: %v", err)
	}
}

func TestResumableSweepDamagedShardRescanned(t *testing.T) {
	eco, targets := buildWorld(t)
	day := eco.Clock.Day()
	dir := t.TempDir()
	cp, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs := &scan.ResumableSweep{Checkpoint: cp, Fingerprint: "cfg", Shards: 2,
		Setup: sweepSetup(t, eco, targets, nil)}
	store, err := rs.Run(context.Background(), []simtime.Day{day})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := store.WriteArchive(&want); err != nil {
		t.Fatal(err)
	}

	// Bit-flip one shard file at rest.
	matches, err := filepath.Glob(filepath.Join(dir, "day-*-shard-000.tsv"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("shard files: %v, %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var events []string
	rs.OnEvent = func(f string, a ...any) { events = append(events, f) }
	redone, err := rs.Run(context.Background(), []simtime.Day{day})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := redone.WriteArchive(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("re-scan after shard damage diverges from original archive")
	}
	sawDamage := false
	for _, e := range events {
		if strings.Contains(e, "failed verification") || strings.Contains(e, "damaged") {
			sawDamage = true
		}
	}
	if !sawDamage {
		t.Errorf("damage not reported: %q", events)
	}
}
