package scan

import (
	"context"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// The streaming scan pipeline: at full-`.com` scale neither the target
// list nor a day's snapshot fits in RAM, so the sweep walks a random-access
// target cursor in fixed-size chunks, materializes each chunk's DNS lazily,
// scans it with the ordinary engine, and flushes the chunk's canonicalized
// records through a sink before touching the next chunk. Because every
// per-target outcome is a pure function of the zone data and the fault
// schedule (see the package determinism contract, and faultnet's
// per-question fault hashing), the concatenation of chunk results is
// record-identical to a whole-day ScanDay over the same targets — which is
// what makes the legacy path usable as the equivalence oracle.

// DefaultChunk is the streaming chunk size when none is configured:
// targets per materialize+scan+flush unit.
const DefaultChunk = 4096

// TargetSource is a random-access cursor over a day's scan targets. It is
// the streaming replacement for []Target: implementations index straight
// into a backing store (an mmap'd colstore.Index, a tldsim world, a slice)
// so the full target list is never materialized. Target returns bare
// strings rather than a Target struct so backing stores can implement the
// interface without importing this package.
type TargetSource interface {
	// Len is the number of targets.
	Len() int
	// Target returns target i's domain name and TLD.
	Target(i int) (domain, tld string)
}

// sliceTargets adapts a materialized []Target to the cursor interface.
type sliceTargets []Target

func (s sliceTargets) Len() int { return len(s) }
func (s sliceTargets) Target(i int) (string, string) {
	return s[i].Domain, s[i].TLD
}

// SliceTargets wraps an in-memory target list as a TargetSource — the
// bridge for small sweeps and tests.
func SliceTargets(ts []Target) TargetSource { return sliceTargets(ts) }

// CollectTargets materializes a cursor's span [lo, hi) into dst (reused if
// it has capacity). Intended for chunk-sized spans only.
func CollectTargets(src TargetSource, lo, hi int, dst []Target) []Target {
	dst = dst[:0]
	for i := lo; i < hi; i++ {
		d, tld := src.Target(i)
		dst = append(dst, Target{Domain: d, TLD: tld})
	}
	return dst
}

// ChunkPrepare readies the scanning environment for the cursor span
// [lo, hi) before it is scanned — the hook where a simulated world
// materializes just that chunk's signed DNS, bounding zone memory and
// signing cost by the chunk size instead of the day.
type ChunkPrepare func(ctx context.Context, lo, hi int) error

// ChunkSink receives each completed chunk: its canonicalized snapshot and
// its health report. The snapshot is not retained by the scanner — the
// sink owns it.
type ChunkSink func(chunk int, snap *dataset.Snapshot, h *SweepHealth) error

// StreamOptions configures ScanDayStream.
type StreamOptions struct {
	// Chunk is the targets-per-chunk size (default DefaultChunk).
	Chunk int
	// Prepare, when set, is called for each chunk's span before scanning.
	Prepare ChunkPrepare
}

// chunkSize returns the effective chunk size.
func (o *StreamOptions) chunkSize() int {
	if o.Chunk <= 0 {
		return DefaultChunk
	}
	return o.Chunk
}

// ScanDayStream sweeps the cursor's targets in chunks, flushing each
// chunk's canonicalized snapshot through sink as it completes, and returns
// the day's aggregated health. Peak memory is bounded by the chunk size
// (plus whatever the sink retains) rather than the day: no full target
// slice, no full day snapshot.
//
// The SweepHealth ledger stays exact under chunking: each chunk's ScanDay
// balances Targets == Measured + Unregistered + skipped + failed, and
// every counter in the report is commutative under Merge, so the returned
// aggregate balances too — including after a mid-day cancellation, where
// chunks never started simply do not enter the ledger (exactly like the
// shards a cancelled legacy sweep never reached).
func (s *Scanner) ScanDayStream(ctx context.Context, day simtime.Day, src TargetSource, opts StreamOptions, sink ChunkSink) (*SweepHealth, error) {
	chunk := opts.chunkSize()
	n := src.Len()
	total := &SweepHealth{Day: day, ByClass: make(map[FailClass]int)}
	buf := make([]Target, 0, chunk)
	for c, lo := 0, 0; lo < n; c, lo = c+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if opts.Prepare != nil {
			if err := opts.Prepare(ctx, lo, hi); err != nil {
				return total, err
			}
		}
		buf = CollectTargets(src, lo, hi, buf)
		snap, h, err := s.ScanDay(ctx, day, buf)
		total.Merge(h)
		if err != nil {
			return total, err
		}
		snap.Canonicalize()
		if sink != nil {
			if err := sink(c, snap, h); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Span is a half-open index range [Lo, Hi) over a TargetSource.
type Span struct{ Lo, Hi int }

// Len returns the span's target count.
func (s Span) Len() int { return s.Hi - s.Lo }

// ShardBounds partitions n cursor positions into contiguous shard spans
// with exactly the boundaries ShardSplit produces on a materialized slice
// of length n — the property that lets a streaming resume interoperate
// with shard indices computed anywhere else in the pipeline.
func ShardBounds(n, shards int) []Span {
	if shards > n && n > 0 {
		shards = n
	}
	if shards <= 0 {
		shards = 1
	}
	out := make([]Span, 0, shards)
	size, rem := n/shards, n%shards
	start := 0
	for i := 0; i < shards; i++ {
		end := start + size
		if i < rem {
			end++
		}
		out = append(out, Span{Lo: start, Hi: end})
		start = end
	}
	return out
}
