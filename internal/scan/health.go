package scan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/simtime"
)

// FailClass buckets why a target could not be measured.
type FailClass string

// Failure classes reported in SweepHealth.ByClass.
const (
	// FailTimeout is packet loss, an unresponsive server, or an outage.
	FailTimeout FailClass = "timeout"
	// FailNoRoute is a server address the transport cannot reach at all.
	FailNoRoute FailClass = "noroute"
	// FailLame is a SERVFAIL/REFUSED where an answer was required.
	FailLame FailClass = "lame"
	// FailNoNS is a registered domain whose referral carried no NS RRset.
	FailNoNS FailClass = "no-ns"
	// FailTransport is any other transport-level error.
	FailTransport FailClass = "transport"
	// FailUnknownTLD is a target under a TLD with no configured server —
	// a sweep configuration gap, distinct from NXDOMAIN.
	FailUnknownTLD FailClass = "unknown-tld"
	// FailCancelled is a target the sweep abandoned because its context
	// was cancelled — a SIGINT, a shutdown, or an upstream deadline. It is
	// a distinct class so resumed sweeps and health dashboards can tell
	// "the operator stopped the run" from "the network lost the target".
	FailCancelled FailClass = "cancelled"
)

// Failure is one target the sweep could not measure, after all retries and
// re-sweep passes.
type Failure struct {
	Target Target
	// Stage is the step that failed: "ns", "ds", or "dnskey".
	Stage string
	Class FailClass
	// Err is the last underlying error, for diagnostics.
	Err string
}

// SweepHealth is the failure accounting for one ScanDay: what was measured,
// what could not be, and what the retry layer spent getting there. It is
// how longitudinal series distinguish "no DNSKEY" from "could not measure"
// — the same role OpenINTEL's measurement-gap markers play for the paper's
// dataset.
type SweepHealth struct {
	Day simtime.Day
	// Targets is the sweep's input size.
	Targets int
	// Measured counts targets with a real observation in the snapshot.
	Measured int
	// Unregistered counts NXDOMAIN targets (absent from the zone — not a
	// failure, they are simply not registered).
	Unregistered int
	// SkippedUnknownTLD lists targets under TLDs missing from
	// Config.TLDServers.
	SkippedUnknownTLD []string
	// Failures lists the targets still unmeasured after every re-sweep.
	Failures []Failure
	// ByClass tallies failures (and unknown-TLD skips) per class.
	ByClass map[FailClass]int
	// Retries is the number of extra per-query attempts the retry layer
	// spent during this sweep.
	Retries int64
	// FailedExchanges counts queries that failed after exhausting their
	// attempt budget.
	FailedExchanges int64
	// Resweeps is how many bounded re-sweep passes ran over failed
	// targets.
	Resweeps int
	// Exchange is the exchange stack's per-layer interval accounting for
	// this sweep: transport exchanges, cache hit rate, dedup coalescing,
	// breaker activity. Retries/FailedExchanges above are its retry
	// section, kept as top-level fields for compatibility.
	Exchange exchange.Counters
}

// Complete reports whether every target was either measured or positively
// identified as unregistered.
func (h *SweepHealth) Complete() bool {
	return len(h.Failures) == 0 && len(h.SkippedUnknownTLD) == 0
}

// Balanced reports whether the ledger identity holds: every input target
// is accounted for exactly once as measured, unregistered, skipped
// (unknown TLD), or failed. ScanDay guarantees it per sweep — including
// under cancellation — and Merge preserves it, so any aggregation of
// chunk or shard reports must balance too.
func (h *SweepHealth) Balanced() bool {
	return h.Targets == h.Measured+h.Unregistered+len(h.SkippedUnknownTLD)+len(h.Failures)
}

// Cancelled reports how many targets were abandoned to context
// cancellation rather than lost to the network.
func (h *SweepHealth) Cancelled() int {
	return h.ByClass[FailCancelled]
}

// Merge folds another report into h — used to aggregate per-shard health
// into one per-day report in checkpointed sweeps.
func (h *SweepHealth) Merge(o *SweepHealth) {
	if o == nil {
		return
	}
	if h.ByClass == nil {
		h.ByClass = make(map[FailClass]int)
	}
	h.Targets += o.Targets
	h.Measured += o.Measured
	h.Unregistered += o.Unregistered
	h.SkippedUnknownTLD = append(h.SkippedUnknownTLD, o.SkippedUnknownTLD...)
	h.Failures = append(h.Failures, o.Failures...)
	for class, n := range o.ByClass {
		h.ByClass[class] += n
	}
	h.Retries += o.Retries
	h.FailedExchanges += o.FailedExchanges
	h.Resweeps += o.Resweeps
	h.Exchange = h.Exchange.Add(o.Exchange)
}

// FailureRate is the fraction of targets that could not be measured.
func (h *SweepHealth) FailureRate() float64 {
	if h.Targets == 0 {
		return 0
	}
	return float64(len(h.Failures)+len(h.SkippedUnknownTLD)) / float64(h.Targets)
}

// String renders a one-line summary for logs and CLI output.
func (h *SweepHealth) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep %s: %d/%d measured, %d unregistered",
		h.Day, h.Measured, h.Targets, h.Unregistered)
	if len(h.Failures) > 0 {
		classes := make([]string, 0, len(h.ByClass))
		for class, n := range h.ByClass {
			if class == FailUnknownTLD {
				continue
			}
			classes = append(classes, fmt.Sprintf("%s:%d", class, n))
		}
		sort.Strings(classes)
		fmt.Fprintf(&sb, ", %d failed (%s)", len(h.Failures), strings.Join(classes, " "))
	}
	if n := len(h.SkippedUnknownTLD); n > 0 {
		fmt.Fprintf(&sb, ", %d unknown-TLD skipped", n)
	}
	fmt.Fprintf(&sb, ", %d retries", h.Retries)
	if h.Resweeps > 0 {
		fmt.Fprintf(&sb, ", %d resweep(s)", h.Resweeps)
	}
	if h.Exchange.Transport.Exchanges > 0 {
		fmt.Fprintf(&sb, " [%s]", h.Exchange)
	}
	return sb.String()
}

// timeouter is the net.Error-style timeout marker implemented by transport
// and fault errors.
type timeouter interface{ Timeout() bool }

// classifyErr buckets a transport error into a failure class.
func classifyErr(err error) FailClass {
	switch {
	case errors.Is(err, context.Canceled):
		return FailCancelled
	case errors.Is(err, exchange.ErrNoRoute):
		return FailNoRoute
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	default:
		var to timeouter
		if errors.As(err, &to) && to.Timeout() {
			return FailTimeout
		}
		return FailTransport
	}
}
