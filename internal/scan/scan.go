// Package scan implements the OpenINTEL-style measurement engine: for every
// second-level domain in a TLD it collects the NS RRset and DS RRset from
// the TLD's authoritative servers and the DNSKEY RRset (with RRSIGs) from
// the domain's own nameservers, producing one dataset.Record per domain —
// the exact observable basis of the paper's longitudinal study (section
// 4.1).
//
// A worker pool issues the queries through an exchange.Build stack, so
// scans run identically against the in-memory simulation and against real
// UDP/TCP servers. The engine assumes an unhealthy network: every query
// runs under a retry policy, the DNSKEY step fails over across all NS
// hosts — consulting the stack's per-server health so re-sweep passes stop
// leading with known-dead servers — failed targets get bounded re-sweep
// passes, and each ScanDay returns a SweepHealth report accounting for
// everything it could not measure, including the exchange stack's
// per-layer counters.
//
// Determinism contract: the scanner's outputs are a pure function of the
// zone data and the fault schedule, independent of worker interleaving.
// The health layer therefore runs with fast-fail disabled (bookkeeping
// only), and re-sweep ordering consults a dead-server set frozen at each
// pass boundary — commutative counters whose pass-boundary values do not
// depend on scheduling.
package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/retry"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Target is one domain to scan.
type Target struct {
	Domain string
	TLD    string
}

// Config configures a Scanner.
type Config struct {
	// Exchange is the transport that carries queries.
	Exchange exchange.Exchanger
	// TLDServers maps each TLD to its authoritative server address.
	TLDServers map[string]string
	// Workers is the concurrency of the sweep (default 16).
	Workers int
	// Clock anchors RRSIG validity checking.
	Clock func() simtime.Day
	// Retry is the per-query retry policy (zero value → retry.Default()).
	Retry retry.Policy
	// MaxResweeps bounds the re-sweep passes over failed targets at the
	// end of a sweep (default 2; negative disables re-sweeping).
	MaxResweeps int
	// Middleware is composed into the exchange stack between the retry
	// layer and the transport — the slot a fault injector occupies, so
	// injected faults consume retry attempts exactly like real ones.
	Middleware []exchange.Middleware
	// Dedup coalesces identical in-flight queries across workers.
	Dedup bool
	// Cache adds a TTL message cache above everything (nil disables). The
	// scanner flushes it automatically when ScanDay's day changes, so a
	// longitudinal run can never serve yesterday's zone from cache.
	Cache *exchange.CacheOptions
}

// Scanner sweeps domain populations.
type Scanner struct {
	cfg     Config
	stack   *exchange.Stack
	queries atomic.Int64
	qid     atomic.Uint32

	mu      sync.Mutex
	lastDay simtime.Day
	hasDay  bool
}

// New creates a scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Exchange == nil {
		return nil, fmt.Errorf("scan: exchanger required")
	}
	if len(cfg.TLDServers) == 0 {
		return nil, fmt.Errorf("scan: no TLD servers configured")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = func() simtime.Day { return simtime.End }
	}
	switch {
	case cfg.MaxResweeps == 0:
		cfg.MaxResweeps = 2
	case cfg.MaxResweeps < 0:
		cfg.MaxResweeps = 0
	}
	// Lame rcodes and truncation are retried too: the in-memory transport
	// has no TCP fallback, and a transient SERVFAIL should cost a retry,
	// not a record. Health runs with fast-fail disabled — see the package
	// determinism contract.
	stack, err := exchange.Build(exchange.Options{
		Transport:      cfg.Exchange,
		Middleware:     cfg.Middleware,
		Retry:          &cfg.Retry,
		RetryLame:      true,
		RetryTruncated: true,
		Health:         &exchange.HealthOptions{DisableFastFail: true},
		Dedup:          cfg.Dedup,
		Cache:          cfg.Cache,
	})
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	return &Scanner{cfg: cfg, stack: stack}, nil
}

// Stack exposes the scanner's exchange stack: per-layer counters for
// benchmarks and health reports, the message cache for explicit flushes,
// and the per-server health record that persists across ScanDay calls.
func (s *Scanner) Stack() *exchange.Stack { return s.stack }

// Queries reports the total logical queries issued across all sweeps
// (retries of the same query are not double-counted).
func (s *Scanner) Queries() int64 { return s.queries.Load() }

// scanStatus is the outcome of one target's scan.
type scanStatus int

const (
	statusMeasured scanStatus = iota
	statusUnregistered
	statusUnknownTLD
	statusFailed
)

// ScanDay sweeps the targets and returns the day's snapshot together with
// its health report. Unregistered domains (NXDOMAIN at the TLD) are
// omitted from the snapshot, as they are absent from zone files; targets
// that could not be measured appear as Failed placeholder records and are
// itemized in the health report rather than silently dropped.
//
// ScanDay is fully context-cancellation-aware: on cancellation it stops
// dispatching, drains its workers, accounts every unprocessed target as a
// FailCancelled failure (so Targets == Measured + Unregistered + skipped +
// Failures still holds), and returns the partial snapshot with ctx's
// error — the clean-interruption contract the checkpoint/resume path
// builds on.
func (s *Scanner) ScanDay(ctx context.Context, day simtime.Day, targets []Target) (*dataset.Snapshot, *SweepHealth, error) {
	s.flushOnDayChange(day)
	snap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, len(targets))}
	health := &SweepHealth{Day: day, Targets: len(targets), ByClass: make(map[FailClass]int)}
	start := s.stack.Counters()
	defer func() {
		health.Measured = snap.MeasuredCount()
		health.Exchange = s.stack.Counters().Sub(start)
		health.Retries = health.Exchange.Retry.Retries
		health.FailedExchanges = health.Exchange.Retry.Failures
	}()

	pending := targets
	var failures []Failure
	// dead is the frozen known-dead server set consulted for DNSKEY host
	// ordering; empty on the first pass, refreshed from the health layer at
	// each re-sweep boundary so later passes stop leading with servers that
	// answered nothing all sweep.
	var dead map[string]bool
	for pass := 0; ; pass++ {
		failures = s.sweep(ctx, snap, health, pending, dead)
		if err := ctx.Err(); err != nil {
			s.recordFailures(snap, health, failures)
			return snap, health, err
		}
		if len(failures) == 0 || pass >= s.cfg.MaxResweeps {
			break
		}
		// Bounded re-sweep: give the failed targets a fresh pass — by now
		// a transient outage may have cleared, and retried queries draw
		// new network samples.
		health.Resweeps++
		dead = s.deadServers()
		pending = make([]Target, len(failures))
		for i := range failures {
			pending[i] = failures[i].Target
		}
	}
	s.recordFailures(snap, health, failures)
	return snap, health, nil
}

// flushOnDayChange drops the message cache when the simulated day moves:
// zone mutations between days must never be masked by yesterday's cached
// answers. Re-scans of the same day keep the warm cache.
func (s *Scanner) flushOnDayChange(day simtime.Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasDay && day != s.lastDay {
		s.stack.FlushCache()
	}
	s.lastDay, s.hasDay = day, true
}

// deadServers snapshots the health layer's known-dead set: servers that
// failed at least once and never answered. The totals are commutative, so
// at a pass boundary (workers quiesced) the set is a deterministic
// function of the completed passes' outcomes, not of worker interleaving.
func (s *Scanner) deadServers() map[string]bool {
	var dead map[string]bool
	for addr, sh := range s.stack.Health.Snapshot() {
		if sh.Dead() {
			if dead == nil {
				dead = make(map[string]bool)
			}
			dead[addr] = true
		}
	}
	return dead
}

// sweep runs one worker-pool pass over the targets, appending measured
// records to snap and returning the targets that failed.
func (s *Scanner) sweep(ctx context.Context, snap *dataset.Snapshot, health *SweepHealth, targets []Target, dead map[string]bool) []Failure {
	var mu sync.Mutex
	var failures []Failure
	jobs := make(chan Target)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				rec, status, fail := s.scanOne(ctx, t, dead)
				mu.Lock()
				switch status {
				case statusMeasured:
					snap.Records = append(snap.Records, rec)
				case statusUnregistered:
					health.Unregistered++
				case statusUnknownTLD:
					health.SkippedUnknownTLD = append(health.SkippedUnknownTLD, t.Domain)
					health.ByClass[FailUnknownTLD]++
				case statusFailed:
					failures = append(failures, *fail)
				}
				mu.Unlock()
			}
		}()
	}
	dispatched := len(targets)
	for i, t := range targets {
		if ctx.Err() != nil {
			dispatched = i
			break
		}
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	// Cancellation accounting: targets never handed to a worker are still
	// part of the sweep's input and must not vanish from the ledger — they
	// are failures of class "cancelled", resumable later, never silently
	// dropped. (Dispatched targets whose exchanges died on the cancelled
	// context classify themselves the same way via classifyErr.)
	for _, t := range targets[dispatched:] {
		failures = append(failures, Failure{
			Target: t, Stage: "dispatch", Class: FailCancelled,
			Err: context.Cause(ctx).Error(),
		})
	}
	return failures
}

// recordFailures folds the final failures into the health report and the
// snapshot (as Failed placeholder records carrying the failure class).
func (s *Scanner) recordFailures(snap *dataset.Snapshot, health *SweepHealth, failures []Failure) {
	for i := range failures {
		f := &failures[i]
		health.Failures = append(health.Failures, *f)
		health.ByClass[f.Class]++
		snap.Records = append(snap.Records, dataset.Record{
			Domain: f.Target.Domain, TLD: f.Target.TLD,
			Failed: true, FailReason: string(f.Class),
		})
	}
}

// exchange sends one query, counting it.
func (s *Scanner) exchange(ctx context.Context, server string, name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(uint16(s.qid.Add(1)), name, t)
	q.SetEDNS(4096, true)
	s.queries.Add(1)
	return s.stack.Exchange(ctx, server, q)
}

// failTarget builds a Failure for one target.
func failTarget(t Target, stage string, class FailClass, err error) *Failure {
	f := &Failure{Target: t, Stage: stage, Class: class}
	if err != nil {
		f.Err = err.Error()
	}
	return f
}

// orderHosts returns hosts with known-dead servers moved to the back,
// preserving relative order within each group; with no dead set it returns
// hosts unchanged. Dead servers are still tried last — a recovered server
// can answer and clear its record — but they no longer eat a timeout
// budget before every live host.
func orderHosts(hosts []string, dead map[string]bool) []string {
	if len(dead) == 0 || len(hosts) <= 1 {
		return hosts
	}
	alive := make([]string, 0, len(hosts))
	var down []string
	for _, h := range hosts {
		if dead[h] {
			down = append(down, h)
		} else {
			alive = append(alive, h)
		}
	}
	return append(alive, down...)
}

// scanOne collects the four facts for one domain. dead, when non-nil, is
// the pass-frozen known-dead server set used to order DNSKEY failover.
func (s *Scanner) scanOne(ctx context.Context, t Target, dead map[string]bool) (dataset.Record, scanStatus, *Failure) {
	rec := dataset.Record{Domain: t.Domain, TLD: t.TLD}
	tldServer, ok := s.cfg.TLDServers[t.TLD]
	if !ok {
		return rec, statusUnknownTLD, nil
	}
	// 1. NS from the TLD zone (a referral; the NS set rides in authority).
	resp, err := s.exchange(ctx, tldServer, t.Domain, dnswire.TypeNS)
	if err != nil {
		return rec, statusFailed, failTarget(t, "ns", classifyErr(err), err)
	}
	if resp.RCode == dnswire.RCodeNameError {
		return rec, statusUnregistered, nil
	}
	if resp.RCode != dnswire.RCodeSuccess {
		return rec, statusFailed, failTarget(t, "ns", FailLame,
			fmt.Errorf("%v from TLD server %s", resp.RCode, tldServer))
	}
	for _, section := range [][]*dnswire.RR{resp.Authority, resp.Answers} {
		for _, rr := range section {
			if rr.Type == dnswire.TypeNS && rr.Name == t.Domain {
				rec.NSHosts = append(rec.NSHosts, rr.Data.(*dnswire.NS).Host)
			}
		}
	}
	if len(rec.NSHosts) == 0 {
		// Registered (no NXDOMAIN) but no delegation NS: a lame entry in
		// the TLD zone — measurable domains always carry an NS RRset.
		return rec, statusFailed, failTarget(t, "ns", FailNoNS, nil)
	}
	rec.Operator = dataset.GroupOperatorAll(rec.NSHosts)

	// 2. DS from the TLD zone (answered authoritatively by the parent).
	// A failure here would silently turn "partial" into "none", so it
	// marks the whole target unmeasured.
	var dss []*dnswire.DS
	resp, err = s.exchange(ctx, tldServer, t.Domain, dnswire.TypeDS)
	if err != nil {
		return rec, statusFailed, failTarget(t, "ds", classifyErr(err), err)
	}
	if resp.RCode != dnswire.RCodeSuccess {
		return rec, statusFailed, failTarget(t, "ds", FailLame,
			fmt.Errorf("%v from TLD server %s", resp.RCode, tldServer))
	}
	for _, rr := range resp.Answers {
		if ds, ok := rr.Data.(*dnswire.DS); ok && rr.Name == t.Domain {
			dss = append(dss, ds)
			rec.HasDS = true
		}
	}

	// 3. DNSKEY (+RRSIG) from the domain's own nameservers. Every NS host
	// is tried before the domain is declared keyless: a lame or dark
	// first host must fail over, not misclassify. Re-sweep passes order
	// the hosts by the health layer's record so known-dead servers go
	// last instead of being re-probed first every pass.
	var keys []*dnswire.DNSKEY
	var keyRRs []*dnswire.RR
	var sigs []*dnswire.RRSIG
	responsive := false
	var lastHostErr error
	for _, host := range orderHosts(rec.NSHosts, dead) {
		resp, err := s.exchange(ctx, host, t.Domain, dnswire.TypeDNSKEY)
		if err != nil {
			lastHostErr = err
			continue
		}
		if resp.RCode != dnswire.RCodeSuccess {
			lastHostErr = fmt.Errorf("%v from %s", resp.RCode, host)
			continue
		}
		responsive = true
		for _, rr := range resp.Answers {
			switch d := rr.Data.(type) {
			case *dnswire.DNSKEY:
				keys = append(keys, d)
				keyRRs = append(keyRRs, rr)
			case *dnswire.RRSIG:
				if d.TypeCovered == dnswire.TypeDNSKEY {
					sigs = append(sigs, d)
				}
			}
		}
		if len(keys) > 0 {
			break
		}
		// A responsive host with no keys: ask the remaining hosts before
		// concluding the domain is unsigned (the RRset may live on a
		// sibling while this host is lame for the zone).
		keyRRs, sigs = nil, nil
	}
	if !responsive {
		class := FailTimeout
		if lastHostErr != nil {
			class = classifyErr(lastHostErr)
		}
		return rec, statusFailed, failTarget(t, "dnskey", class, lastHostErr)
	}
	rec.HasDNSKEY = len(keys) > 0
	rec.HasRRSIG = len(sigs) > 0

	// 4. Chain validity: some DS matches a served key AND the DNSKEY RRset
	// signature verifies — the paper's criterion for a correctly deployed
	// domain.
	if rec.HasDS && rec.HasDNSKEY && dnssec.MatchAnyDS(t.Domain, dss, keys) {
		now := s.cfg.Clock().Time()
		for _, sig := range sigs {
			if dnssec.VerifyWithAnyKey(keyRRs, sig, keys, now) == nil {
				rec.ChainValid = true
				break
			}
		}
	}
	return rec, statusMeasured, nil
}

// TargetsFromZone extracts the second-level scan targets from a TLD zone
// (e.g. one obtained via AXFR): every delegation directly below the apex.
func TargetsFromZone(z *zone.Zone) []Target {
	tld := z.Origin
	seen := map[string]bool{}
	var out []Target
	z.RRSets(func(name string, t dnswire.Type, _ []*dnswire.RR) {
		if t != dnswire.TypeNS || name == tld || seen[name] {
			return
		}
		if parent, _ := dnswire.Parent(name); parent != tld {
			return
		}
		seen[name] = true
		out = append(out, Target{Domain: name, TLD: tld})
	})
	return out
}

// TargetsFromDomains builds scan targets from bare domain names.
func TargetsFromDomains(domains []string) []Target {
	out := make([]Target, 0, len(domains))
	for _, d := range domains {
		d = dnswire.CanonicalName(d)
		tld, ok := dnswire.Parent(d)
		if !ok {
			continue
		}
		out = append(out, Target{Domain: d, TLD: tld})
	}
	return out
}
