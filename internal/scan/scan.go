// Package scan implements the OpenINTEL-style measurement engine: for every
// second-level domain in a TLD it collects the NS RRset and DS RRset from
// the TLD's authoritative servers and the DNSKEY RRset (with RRSIGs) from
// the domain's own nameservers, producing one dataset.Record per domain —
// the exact observable basis of the paper's longitudinal study (section
// 4.1).
//
// A worker pool issues the queries through a dnsserver.Exchanger, so scans
// run identically against the in-memory simulation and against real
// UDP/TCP servers.
package scan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Target is one domain to scan.
type Target struct {
	Domain string
	TLD    string
}

// Config configures a Scanner.
type Config struct {
	// Exchange carries queries.
	Exchange dnsserver.Exchanger
	// TLDServers maps each TLD to its authoritative server address.
	TLDServers map[string]string
	// Workers is the concurrency of the sweep (default 16).
	Workers int
	// Clock anchors RRSIG validity checking.
	Clock func() simtime.Day
}

// Scanner sweeps domain populations.
type Scanner struct {
	cfg     Config
	queries atomic.Int64
	qid     atomic.Uint32
}

// New creates a scanner.
func New(cfg Config) (*Scanner, error) {
	if cfg.Exchange == nil {
		return nil, fmt.Errorf("scan: exchanger required")
	}
	if len(cfg.TLDServers) == 0 {
		return nil, fmt.Errorf("scan: no TLD servers configured")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = func() simtime.Day { return simtime.End }
	}
	return &Scanner{cfg: cfg}, nil
}

// Queries reports the total queries issued across all sweeps.
func (s *Scanner) Queries() int64 { return s.queries.Load() }

// ScanDay sweeps the targets and returns the day's snapshot. Unregistered
// domains (NXDOMAIN at the TLD) are omitted, as they are absent from zone
// files.
func (s *Scanner) ScanDay(ctx context.Context, day simtime.Day, targets []Target) (*dataset.Snapshot, error) {
	snap := &dataset.Snapshot{Day: day, Records: make([]dataset.Record, 0, len(targets))}
	var mu sync.Mutex
	jobs := make(chan Target)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				rec, ok := s.scanOne(ctx, t)
				if !ok {
					continue
				}
				mu.Lock()
				snap.Records = append(snap.Records, rec)
				mu.Unlock()
			}
		}()
	}
	for _, t := range targets {
		if ctx.Err() != nil {
			break
		}
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return snap, err
	}
	return snap, nil
}

// exchange sends one query, counting it.
func (s *Scanner) exchange(ctx context.Context, server string, name string, t dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(uint16(s.qid.Add(1)), name, t)
	q.SetEDNS(4096, true)
	s.queries.Add(1)
	return s.cfg.Exchange.Exchange(ctx, server, q)
}

// scanOne collects the four facts for one domain.
func (s *Scanner) scanOne(ctx context.Context, t Target) (dataset.Record, bool) {
	rec := dataset.Record{Domain: t.Domain, TLD: t.TLD}
	tldServer, ok := s.cfg.TLDServers[t.TLD]
	if !ok {
		return rec, false
	}
	// 1. NS from the TLD zone (a referral; the NS set rides in authority).
	resp, err := s.exchange(ctx, tldServer, t.Domain, dnswire.TypeNS)
	if err != nil || resp.RCode == dnswire.RCodeNameError {
		return rec, false
	}
	for _, section := range [][]*dnswire.RR{resp.Authority, resp.Answers} {
		for _, rr := range section {
			if rr.Type == dnswire.TypeNS && rr.Name == t.Domain {
				rec.NSHosts = append(rec.NSHosts, rr.Data.(*dnswire.NS).Host)
			}
		}
	}
	if len(rec.NSHosts) == 0 {
		return rec, false
	}
	rec.Operator = dataset.GroupOperatorAll(rec.NSHosts)

	// 2. DS from the TLD zone (answered authoritatively by the parent).
	var dss []*dnswire.DS
	if resp, err := s.exchange(ctx, tldServer, t.Domain, dnswire.TypeDS); err == nil {
		for _, rr := range resp.Answers {
			if ds, ok := rr.Data.(*dnswire.DS); ok && rr.Name == t.Domain {
				dss = append(dss, ds)
				rec.HasDS = true
			}
		}
	}

	// 3. DNSKEY (+RRSIG) from the domain's own nameservers.
	var keys []*dnswire.DNSKEY
	var keyRRs []*dnswire.RR
	var sigs []*dnswire.RRSIG
	for _, host := range rec.NSHosts {
		resp, err := s.exchange(ctx, host, t.Domain, dnswire.TypeDNSKEY)
		if err != nil || resp.RCode != dnswire.RCodeSuccess {
			continue
		}
		for _, rr := range resp.Answers {
			switch d := rr.Data.(type) {
			case *dnswire.DNSKEY:
				keys = append(keys, d)
				keyRRs = append(keyRRs, rr)
			case *dnswire.RRSIG:
				if d.TypeCovered == dnswire.TypeDNSKEY {
					sigs = append(sigs, d)
				}
			}
		}
		break
	}
	rec.HasDNSKEY = len(keys) > 0
	rec.HasRRSIG = len(sigs) > 0

	// 4. Chain validity: some DS matches a served key AND the DNSKEY RRset
	// signature verifies — the paper's criterion for a correctly deployed
	// domain.
	if rec.HasDS && rec.HasDNSKEY && dnssec.MatchAnyDS(t.Domain, dss, keys) {
		now := s.cfg.Clock().Time()
		for _, sig := range sigs {
			if dnssec.VerifyWithAnyKey(keyRRs, sig, keys, now) == nil {
				rec.ChainValid = true
				break
			}
		}
	}
	return rec, true
}

// TargetsFromZone extracts the second-level scan targets from a TLD zone
// (e.g. one obtained via AXFR): every delegation directly below the apex.
func TargetsFromZone(z *zone.Zone) []Target {
	tld := z.Origin
	seen := map[string]bool{}
	var out []Target
	z.RRSets(func(name string, t dnswire.Type, _ []*dnswire.RR) {
		if t != dnswire.TypeNS || name == tld || seen[name] {
			return
		}
		if parent, _ := dnswire.Parent(name); parent != tld {
			return
		}
		seen[name] = true
		out = append(out, Target{Domain: name, TLD: tld})
	})
	return out
}

// TargetsFromDomains builds scan targets from bare domain names.
func TargetsFromDomains(domains []string) []Target {
	out := make([]Target, 0, len(domains))
	for _, d := range domains {
		d = dnswire.CanonicalName(d)
		tld, ok := dnswire.Parent(d)
		if !ok {
			continue
		}
		out = append(out, Target{Domain: d, TLD: tld})
	}
	return out
}
