package apiserv

// The ingest watermark records how far into the archive the daemon has
// committed, as a small checksummed JSON file written atomically beside
// the world file. The world file's own META section is the authoritative
// resume cursor — world and cursor commit in one atomic rename — so the
// watermark exists for cheap introspection (operators and the readiness
// probe can read it without mapping the world) and as a cross-check: a
// watermark that disagrees with the world META means someone swapped
// files underneath the daemon, which resets to a full re-ingest rather
// than trust either.

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// Watermark is the committed ingest position.
type Watermark struct {
	// Offset is the archive byte offset every committed section ends
	// before (dataset.TailResult.Offset).
	Offset int64 `json:"offset"`
	// Sections is the count of sections ingested into the world.
	Sections int `json:"sections"`
	// Quarantined is the count of damaged archive pieces skipped.
	Quarantined int `json:"quarantined"`
	// LastDay is the most recent ingested day, "" before the first.
	LastDay string `json:"last_day"`
	// CRC is the CRC-32C of the JSON encoding with this field zero,
	// rendered %08x. A torn or hand-edited watermark fails verification.
	CRC string `json:"crc32c"`
}

var watermarkCRC = crc32.MakeTable(crc32.Castagnoli)

// sum computes the checksum over the canonical encoding with CRC empty.
func (wm *Watermark) sum() (string, error) {
	clean := *wm
	clean.CRC = ""
	body, err := json.Marshal(&clean)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.Checksum(body, watermarkCRC)), nil
}

// WriteFile seals and atomically persists the watermark.
func (wm *Watermark) WriteFile(path string) error {
	sum, err := wm.sum()
	if err != nil {
		return err
	}
	sealed := *wm
	sealed.CRC = sum
	body, err := json.MarshalIndent(&sealed, "", "  ")
	if err != nil {
		return err
	}
	return dataset.WriteFileAtomic(path, append(body, '\n'))
}

// ReadWatermark loads and verifies a watermark file. A missing file is
// (nil, nil): no commit has happened yet. A corrupt file is an error; the
// caller decides whether to fall back to the world META or re-ingest.
func ReadWatermark(path string) (*Watermark, error) {
	body, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var wm Watermark
	if err := json.Unmarshal(body, &wm); err != nil {
		return nil, fmt.Errorf("apiserv: corrupt watermark %s: %w", path, err)
	}
	want, err := wm.sum()
	if err != nil {
		return nil, err
	}
	if wm.CRC != want {
		return nil, fmt.Errorf("apiserv: watermark %s checksum %s does not match contents (%s)", path, wm.CRC, want)
	}
	return &wm, nil
}

// lastDayString renders a day for the watermark ("" for Never).
func lastDayString(d simtime.Day) string {
	if d == simtime.Never {
		return ""
	}
	return d.String()
}
