package apiserv

// The chaos harness, in-process edition: the same failures the CI smoke
// job inflicts on the real binary — kill mid-ingest, corrupt the tail,
// rotate the archive, flood the query plane, poison a handler — driven
// deterministically through resumeOnce/pollOnce so every commit boundary
// is exercised, not just the ones a racing SIGKILL happens to hit.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// archiveBytes renders a full archive for the given days in memory.
func archiveBytes(t *testing.T, days []simtime.Day, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, d := range days {
		if err := mkSnap(d, n).WriteArchiveSection(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runToEnd drives a server's ingest synchronously over the current
// archive state: resume from disk, then poll once.
func runToEnd(t *testing.T, s *Server) {
	t.Helper()
	if err := s.resumeOnce(); err != nil {
		t.Fatal(err)
	}
	if err := s.pollOnce(); err != nil {
		t.Fatal(err)
	}
}

// worldFile reads the committed world bytes.
func worldFile(t *testing.T, s *Server) []byte {
	t.Helper()
	data, err := os.ReadFile(s.cfg.WorldPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosResumeAtEveryCommitPoint is the crash-equivalence oracle at
// the daemon layer: for every commit boundary in the archive, a daemon
// killed right after that commit and restarted over the grown archive
// must converge to a world file byte-identical to a clean single-pass
// daemon's, and serve identical Table 1 JSON.
func TestChaosResumeAtEveryCommitPoint(t *testing.T) {
	days := []simtime.Day{50, 80, 110, 140, 170}
	full := archiveBytes(t, days, 80)

	// Clean single-pass reference.
	cleanDir := t.TempDir()
	clean := newTestServer(t, cleanDir)
	if err := os.WriteFile(clean.cfg.ArchivePath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, clean)
	wantWorld := worldFile(t, clean)
	wantTable1 := get(clean.Handler(), "/v1/table1").Body.String()

	// Every event End is a commit boundary a SIGKILL could leave behind.
	res, err := dataset.TailArchive(clean.cfg.ArchivePath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != len(days) {
		t.Fatalf("%d events, want %d", len(res.Events), len(days))
	}
	cuts := []int64{0}
	for _, ev := range res.Events {
		cuts = append(cuts, ev.End)
	}

	for _, cut := range cuts {
		dir := t.TempDir()
		// Life before the crash: ingest the prefix and commit.
		first := newTestServer(t, dir)
		if err := os.WriteFile(first.cfg.ArchivePath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		runToEnd(t, first)
		// The crash: the first daemon is abandoned mid-flight, no shutdown,
		// no cleanup. The archive keeps growing while it is dead.
		if err := os.WriteFile(first.cfg.ArchivePath, full, 0o644); err != nil {
			t.Fatal(err)
		}
		// The restart: a fresh process resumes from the committed world.
		second := newTestServer(t, dir)
		runToEnd(t, second)
		if got := worldFile(t, second); !bytes.Equal(got, wantWorld) {
			t.Fatalf("cut %d: resumed world differs from clean world (%d vs %d bytes)", cut, len(got), len(wantWorld))
		}
		if got := get(second.Handler(), "/v1/table1").Body.String(); got != wantTable1 {
			t.Fatalf("cut %d: resumed Table 1 differs from clean run", cut)
		}
	}
}

// TestChaosWatermarkLost: a crash between the world save and the
// watermark write loses only the introspection copy — the world META is
// authoritative and the next run is still byte-identical.
func TestChaosWatermarkLost(t *testing.T) {
	days := []simtime.Day{400, 430, 460}
	full := archiveBytes(t, days, 50)
	half := archiveBytes(t, days[:2], 50)

	dir := t.TempDir()
	first := newTestServer(t, dir)
	if err := os.WriteFile(first.cfg.ArchivePath, half, 0o644); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, first)
	for name, mutate := range map[string]func() error{
		"missing": func() error { return os.Remove(first.watermarkPath()) },
		"corrupt": func() error {
			return os.WriteFile(first.watermarkPath(), []byte(`{"offset": 7, "crc32c": "00000000"}`), 0o644)
		},
	} {
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(first.cfg.ArchivePath, full, 0o644); err != nil {
			t.Fatal(err)
		}
		second := newTestServer(t, dir)
		runToEnd(t, second)
		s2 := decodeJSON[Status](t, get(second.Handler(), "/v1/status"))
		if s2.Sections != 3 || s2.Quarantined != 0 {
			t.Fatalf("%s watermark: status %+v after resume", name, s2)
		}
	}

	cleanDir := t.TempDir()
	clean := newTestServer(t, cleanDir)
	if err := os.WriteFile(clean.cfg.ArchivePath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, clean)
	second := newTestServer(t, dir)
	runToEnd(t, second)
	if !bytes.Equal(worldFile(t, second), worldFile(t, clean)) {
		t.Fatal("world after watermark loss differs from clean world")
	}
}

// TestChaosCorruptTailQuarantined: a corrupted section in the tail is
// quarantined and counted while ingest continues past it; the daemon
// stays up and serves the sections around the damage.
func TestChaosCorruptTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	appendSection(t, s.cfg.ArchivePath, mkSnap(500, 40))

	// Append a section and flip one byte in its body.
	var buf bytes.Buffer
	if err := mkSnap(530, 40).WriteArchiveSection(&buf); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[len(bad)/2] ^= 0x40
	f, err := os.OpenFile(s.cfg.ArchivePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatal(err)
	}
	f.Close()
	appendSection(t, s.cfg.ArchivePath, mkSnap(560, 40))

	runToEnd(t, s)
	st := decodeJSON[Status](t, get(s.Handler(), "/v1/status"))
	if st.Sections != 2 || st.Quarantined != 1 {
		t.Fatalf("status after corrupt tail: %+v, want 2 sections + 1 quarantined", st)
	}
	if st.LastDay != simtime.Day(560).String() {
		t.Fatalf("last day %s, want %s: ingest did not continue past the damage", st.LastDay, simtime.Day(560))
	}
	// The quarantine is itself committed: a restart does not re-count it.
	s2 := newTestServer(t, dir)
	runToEnd(t, s2)
	st2 := decodeJSON[Status](t, get(s2.Handler(), "/v1/status"))
	if st2.Sections != 2 || st2.Quarantined != 1 {
		t.Fatalf("status after restart: %+v", st2)
	}
}

// TestChaosArchiveRotated: an archive that shrinks below the committed
// offset resets the daemon to a clean full re-ingest of the new file.
func TestChaosArchiveRotated(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	appendSection(t, s.cfg.ArchivePath, mkSnap(600, 70))
	appendSection(t, s.cfg.ArchivePath, mkSnap(630, 70))
	runToEnd(t, s)

	// Rotation: the archive is replaced by a shorter, different file.
	if err := os.WriteFile(s.cfg.ArchivePath, archiveBytes(t, []simtime.Day{700}, 30), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.pollOnce(); err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[Status](t, get(s.Handler(), "/v1/status"))
	if st.Sections != 1 || st.LastDay != simtime.Day(700).String() {
		t.Fatalf("status after rotation: %+v, want 1 section at day %s", st, simtime.Day(700))
	}
	got := decodeJSON[table1Doc](t, get(s.Handler(), "/v1/table1"))
	total := 0
	for _, row := range got.TLDs {
		total += row.Domains
	}
	if wantDomains := 28; total != wantDomains { // 30 targets minus failed i=10,21
		t.Fatalf("%d domains after rotation, want %d", total, wantDomains)
	}
}

// TestChaosFloodShedsNotCrash: a flood against a tiny admission gate
// yields only 200s and 429s — nothing hangs, nothing dies, and the gate
// accounts for every shed request.
func TestChaosFloodShedsNotCrash(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	s.cfg.MaxInFlight = 2
	s.cfg.MaxQueue = 1
	s.cfg.QueueWait = time.Millisecond
	s.gate = newGate(s.cfg.MaxInFlight, s.cfg.MaxQueue, s.cfg.QueueWait)
	appendSection(t, s.cfg.ArchivePath, mkSnap(800, 40))
	runToEnd(t, s)

	// A deliberately slow route keeps slots occupied so the flood has
	// something to collide with.
	s.mux.HandleFunc("GET /v1/slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	h := s.Handler()

	const flood = 80
	var wg sync.WaitGroup
	codes := make(chan int, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slow", nil))
			codes <- rec.Code
		}()
	}
	wg.Wait()
	close(codes)
	ok, shed := 0, 0
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d under flood", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("flood: %d ok, %d shed — want both >0", ok, shed)
	}
	if _, gateShed := s.GateStats(); gateShed != uint64(shed) {
		t.Fatalf("gate shed counter %d, responses %d", gateShed, shed)
	}
	// The daemon still answers normally after the storm.
	if rec := get(h, "/v1/table1"); rec.Code != http.StatusOK {
		t.Fatalf("post-flood table1: %d", rec.Code)
	}
}

// TestChaosPoisonedHandler: a route that panics returns 500 and leaves
// the daemon fully functional; its admission slot is released.
func TestChaosPoisonedHandler(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	appendSection(t, s.cfg.ArchivePath, mkSnap(900, 20))
	runToEnd(t, s)
	s.mux.HandleFunc("GET /v1/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("poisoned request")
	})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec := get(h, "/v1/boom"); rec.Code != http.StatusInternalServerError {
			t.Fatalf("poisoned request %d: %d, want 500", i, rec.Code)
		}
	}
	if s.panics.Load() != 3 {
		t.Fatalf("panic counter %d, want 3", s.panics.Load())
	}
	if rec := get(h, "/v1/table1"); rec.Code != http.StatusOK {
		t.Fatalf("table1 after panics: %d", rec.Code)
	}
	st := decodeJSON[Status](t, get(h, "/v1/status"))
	if st.Panics != 3 {
		t.Fatalf("status panics %d, want 3", st.Panics)
	}
}

// TestChaosTailerPanicIsSupervised: a panic inside the ingest path takes
// down the component, not the process — the supervisor restarts it and
// ingest completes.
func TestChaosTailerPanicIsSupervised(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	appendSection(t, s.cfg.ArchivePath, mkSnap(950, 30))

	// A component that panics on its first run and then defers to the
	// real tailer stands in for a transient ingest bug.
	ran := false
	sup := &Supervisor{
		Backoff:   time.Millisecond,
		Logf:      t.Logf,
		OnRestart: func(string, error) { s.restarts.Add(1) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sup.Run(ctx, Component{Name: "tailer", Run: func(ctx context.Context) error {
		if !ran {
			ran = true
			panic("transient ingest bug")
		}
		return s.runTailer(ctx)
	}})
	h := s.Handler()
	waitFor(t, "recovery after tailer panic", func() bool {
		return get(h, "/readyz").Code == http.StatusOK
	})
	if s.restarts.Load() == 0 {
		t.Fatal("no restart recorded")
	}
	st := decodeJSON[Status](t, get(h, "/v1/status"))
	if st.Sections != 1 || st.Restarts == 0 {
		t.Fatalf("status after supervised recovery: %+v", st)
	}
}

// Stalled-reader chaos (slow clients holding connections) is covered at
// the listener layer by internal/httpx's slow-client test; the unit here
// is everything above the listener.
