package apiserv

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// mkSnap builds a deterministic scan day: n domains spread over three
// TLDs and three operators, with DNSSEC state that varies by index and
// advances with the day (so later days differ from earlier ones).
func mkSnap(day simtime.Day, n int) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: day}
	tlds := []string{"com", "net", "org"}
	ops := []string{"alpha-dns", "beta-dns", "gamma-dns"}
	for i := 0; i < n; i++ {
		r := dataset.Record{
			Domain:   fmt.Sprintf("d%03d.%s", i, tlds[i%3]),
			TLD:      tlds[i%3],
			Operator: ops[i%len(ops)],
			NSHosts:  []string{"ns1." + ops[i%len(ops)] + ".example"},
		}
		if i%11 == 10 {
			r.Failed, r.FailReason = true, "timeout"
		} else {
			r.HasDNSKEY = i%2 == 0
			r.HasRRSIG = r.HasDNSKEY
			r.HasDS = r.HasDNSKEY && (i%4 == 0 || int(day)%100 > i%100)
			r.ChainValid = r.HasDS && i%8 != 4
		}
		snap.Records = append(snap.Records, r)
	}
	snap.Canonicalize()
	return snap
}

// appendSection appends one archived section to path.
func appendSection(t *testing.T, path string, snap *dataset.Snapshot) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteArchiveSection(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a Server over dir with fast test cadences. Nothing
// is started; tests drive resumeOnce/pollOnce directly or call Run.
func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	return New(Config{
		ArchivePath:     filepath.Join(dir, "scans.tsv"),
		WorldPath:       filepath.Join(dir, "world.colstore"),
		PollInterval:    5 * time.Millisecond,
		RefreshInterval: 10 * time.Millisecond,
		ReadyMaxLag:     5 * time.Second,
		Logf:            t.Logf,
	})
}

// get runs one request through the server's full middleware stack.
func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func decodeJSON[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body.String(), err)
	}
	return v
}

type table1Doc struct {
	Day  string                 `json:"day"`
	TLDs []analysis.TLDOverview `json:"tlds"`
}

// TestServerLifecycleAndEndpoints runs the daemon end to end against a
// real archive: readiness transitions, then every query endpoint, with
// /v1/table1 checked against an independently built colstore world.
func TestServerLifecycleAndEndpoints(t *testing.T) {
	dir := t.TempDir()
	days := []simtime.Day{100, 130, 160}
	var snaps []*dataset.Snapshot
	s := newTestServer(t, dir)
	for _, d := range days {
		snap := mkSnap(d, 120)
		snaps = append(snaps, snap)
		appendSection(t, s.cfg.ArchivePath, snap)
	}
	h := s.Handler()

	if rec := get(h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz before Run: %d", rec.Code)
	}
	if rec := get(h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before Run: %d, want 503", rec.Code)
	}
	if rec := get(h, "/v1/table1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/table1 before Run: %d, want 503", rec.Code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); s.Run(ctx) }()
	waitFor(t, "readiness", func() bool { return get(h, "/readyz").Code == http.StatusOK })

	// Table 1 must match an index built directly from the same snapshots.
	ing := colstore.NewIngester()
	for _, snap := range snaps {
		if _, err := ing.AppendDay(snap); err != nil {
			t.Fatal(err)
		}
	}
	want := ing.Freeze()
	lastDay := days[len(days)-1]
	got := decodeJSON[table1Doc](t, get(h, "/v1/table1"))
	if got.Day != lastDay.String() {
		t.Fatalf("table1 day = %s, want %s", got.Day, lastDay)
	}
	wantRows := want.Overview(lastDay, []string{"com", "net", "org"})
	if !reflect.DeepEqual(got.TLDs, wantRows) {
		t.Fatalf("table1 rows = %+v, want %+v", got.TLDs, wantRows)
	}

	// Per-day query.
	got = decodeJSON[table1Doc](t, get(h, "/v1/table1?day=2015-04-11&tlds=com"))
	if got.Day != days[0].String() || len(got.TLDs) != 1 || got.TLDs[0].TLD != "com" {
		t.Fatalf("day/tld-filtered table1 = %+v", got)
	}

	// Operators: descending counts, limit respected.
	opsDoc := decodeJSON[struct {
		Operators []analysis.OperatorCount `json:"operators"`
	}](t, get(h, "/v1/operators?class=dnskey&limit=2"))
	if len(opsDoc.Operators) == 0 || len(opsDoc.Operators) > 2 {
		t.Fatalf("operators = %+v", opsDoc.Operators)
	}

	// Series for one operator.
	serDoc := decodeJSON[struct {
		Operator string                 `json:"operator"`
		Points   []analysis.SeriesPoint `json:"points"`
	}](t, get(h, "/v1/series?operator=alpha-dns&from=2015-04-11&to=2015-06-10&step=30"))
	if serDoc.Operator != "alpha-dns" || len(serDoc.Points) != 3 {
		t.Fatalf("series = %+v", serDoc)
	}
	if serDoc.Points[0].Total == 0 {
		t.Fatal("series has an empty population on an ingested day")
	}

	// Registrars: scan records carry no registrar attribution (that comes
	// from WHOIS enrichment), and the unnamed registrar is excluded from
	// the tally — the endpoint answers 200 with an empty list.
	regRec := get(h, "/v1/registrars")
	regDoc := decodeJSON[struct {
		Registrars []struct {
			Registrar string `json:"registrar"`
			Domains   int    `json:"domains"`
		} `json:"registrars"`
	}](t, regRec)
	if regRec.Code != http.StatusOK || len(regDoc.Registrars) != 0 {
		t.Fatalf("registrars: %d %+v, want 200 with no attributed rows", regRec.Code, regDoc.Registrars)
	}

	// DS gap.
	gapDoc := decodeJSON[struct {
		DSGapPct float64 `json:"ds_gap_pct"`
	}](t, get(h, "/v1/dsgap"))
	if wantGap := want.DSGapPct(lastDay); gapDoc.DSGapPct != wantGap {
		t.Fatalf("dsgap = %v, want %v", gapDoc.DSGapPct, wantGap)
	}

	// Status document.
	st := decodeJSON[Status](t, get(h, "/v1/status"))
	if !st.Ready || st.Sections != 3 || st.Quarantined != 0 || st.Domains != want.Len() {
		t.Fatalf("status = %+v", st)
	}

	// Malformed queries are 400s, not 500s.
	for _, path := range []string{
		"/v1/table1?day=bogus",
		"/v1/series",
		"/v1/series?operator=x&step=-1",
		"/v1/operators?class=nonsense",
	} {
		if rec := get(h, path); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", path, rec.Code)
		}
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// TestServerIncrementalIngest: sections appended while the daemon runs
// appear in served answers without a restart or world rebuild.
func TestServerIncrementalIngest(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	appendSection(t, s.cfg.ArchivePath, mkSnap(200, 60))
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	waitFor(t, "first section served", func() bool {
		return decodeJSON[Status](t, get(h, "/v1/status")).Sections == 1
	})

	appendSection(t, s.cfg.ArchivePath, mkSnap(230, 90))
	appendSection(t, s.cfg.ArchivePath, mkSnap(260, 90))
	waitFor(t, "appended sections ingested", func() bool {
		st := decodeJSON[Status](t, get(h, "/v1/status"))
		return st.Sections == 3 && st.Ready
	})
	got := decodeJSON[table1Doc](t, get(h, "/v1/table1"))
	if got.Day != simtime.Day(260).String() {
		t.Fatalf("table1 day = %s, want %s", got.Day, simtime.Day(260))
	}
	// 90 targets minus the 8 whose every measurement failed (i%11 == 10):
	// failed records never create rows.
	total := 0
	for _, row := range got.TLDs {
		total += row.Domains
	}
	if total != 82 {
		t.Fatalf("served %d domains, want 82", total)
	}
}

// TestReadinessGoesStaleWithoutPolls: readiness decays when the tailer
// stops confirming the archive, even though a world is still published.
func TestReadinessGoesStaleWithoutPolls(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	s.cfg.ReadyMaxLag = 30 * time.Millisecond
	appendSection(t, s.cfg.ArchivePath, mkSnap(300, 20))
	if err := s.resumeOnce(); err != nil {
		t.Fatal(err)
	}
	if ok, reason := s.ready(); ok || !strings.Contains(reason, "not polled") {
		t.Fatalf("ready before any poll: %v %q", ok, reason)
	}
	if err := s.pollOnce(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.ready(); !ok {
		t.Fatal("not ready after a successful poll")
	}
	waitFor(t, "staleness", func() bool {
		ok, reason := s.ready()
		return !ok && strings.Contains(reason, "stale")
	})
	if rec := get(s.Handler(), "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while stale: %d, want 503", rec.Code)
	}
	// Data keeps serving while not-ready: readiness gates rollout, not reads.
	if rec := get(s.Handler(), "/v1/table1"); rec.Code != http.StatusOK {
		t.Fatalf("/v1/table1 while stale: %d, want 200", rec.Code)
	}
}
