package apiserv

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateShedsAtCapacity: with every slot and queue position full,
// further requests are shed with 429 + Retry-After instead of piling up.
func TestGateShedsAtCapacity(t *testing.T) {
	g := newGate(1, 1, 10*time.Millisecond)
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	h := g.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
	}))

	// Occupy the single slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/table1", nil))
	}()
	<-started

	// Burst while the slot is held: at most one waits in the queue (and
	// times out after the queue wait), the rest shed immediately.
	const burst = 6
	codes := make(chan int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/table1", nil))
			if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			codes <- rec.Code
		}()
	}
	shed := 0
	for i := 0; i < burst; i++ {
		if c := <-codes; c == http.StatusTooManyRequests {
			shed++
		} else {
			t.Errorf("unexpected status %d during overload", c)
		}
	}
	if shed != burst {
		t.Fatalf("shed %d of %d burst requests", shed, burst)
	}
	if got := g.shed.Load(); got != burst {
		t.Fatalf("shed counter = %d, want %d", got, burst)
	}
	close(block)
	wg.Wait()

	// The gate recovers: a fresh request is admitted.
	rec := httptest.NewRecorder()
	h2 := g.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/table1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-overload request got %d", rec.Code)
	}
}

// TestGateQueueAdmitsWhenSlotFrees: a queued request is admitted once the
// in-flight one releases its slot within the queue wait.
func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := newGate(1, 1, 2*time.Second)
	release := make(chan struct{})
	entered := make(chan struct{})
	h := g.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}))
	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	<-entered

	done := make(chan int)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		done <- rec.Code
	}()
	time.Sleep(20 * time.Millisecond) // let it queue
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request got %d, want 200", code)
	}
	if g.admitted.Load() != 2 {
		t.Fatalf("admitted = %d, want 2", g.admitted.Load())
	}
}

// TestRecoverPanics: a panicking handler yields a 500, increments the
// counter, and the process (and subsequent requests) survive.
func TestRecoverPanics(t *testing.T) {
	var panics atomic.Uint64
	calls := 0
	h := recoverPanics(nil, &panics, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("handler bug")
		}
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/table1", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request got %d, want 500", rec.Code)
	}
	if panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", panics.Load())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/table1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request got %d, want 200", rec.Code)
	}
}

// TestWithDeadline: the per-request context carries a deadline and expires.
func TestWithDeadline(t *testing.T) {
	h := withDeadline(30*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			t.Error("request context has no deadline")
		}
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
			t.Error("request context never expired")
		}
		w.WriteHeader(http.StatusGatewayTimeout)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/series", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("got %d", rec.Code)
	}
}

// TestGateConcurrencyCeiling: under a sustained flood the number of
// handlers running at once never exceeds MaxInFlight.
func TestGateConcurrencyCeiling(t *testing.T) {
	const maxInFlight = 4
	g := newGate(maxInFlight, 2, time.Millisecond)
	var inFlight, peak atomic.Int32
	h := g.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	}))
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxInFlight {
		t.Fatalf("peak concurrency %d exceeds limit %d", p, maxInFlight)
	}
	if g.admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
}

// TestShedBodyMentionsOverload: the 429 body is a JSON error a client can
// read, not an empty response.
func TestShedBodyMentionsOverload(t *testing.T) {
	g := newGate(1, 0, time.Millisecond)
	block := make(chan struct{})
	entered := make(chan struct{})
	h := g.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
	}))
	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	<-entered
	defer close(block)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("got %d, want 429", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "overload") {
		t.Fatalf("shed body %q does not mention overload", body)
	}
}
