package apiserv

// The tailer is the write side of the daemon: it follows the checksummed
// scan archive, folds each newly completed section into the colstore
// ingester, and commits. One commit is:
//
//	freeze the ingester → publish the frozen index to readers (atomic
//	pointer swap) → SaveFile the world with the ingest cursor in its
//	META section (atomic rename) → write the checksummed watermark
//	(atomic rename)
//
// Commits land only on tail-event boundaries, where the ingested state is
// a pure function of the archive prefix before the committed offset — so
// a SIGKILL between any two instructions leaves a world file some clean
// prefix produced, and the next start replays the remainder to a
// byte-identical state (the equivalence oracle in colstore's ingest
// tests). A crash between world save and watermark write only loses the
// cheap introspection copy; the world META is authoritative and the
// watermark is rewritten at the next commit.
//
// Damage in the archive never stops ingest: torn or corrupt sections are
// quarantined (dataset.TailArchive) and counted, and an archive that
// shrank — rotation or operator intervention — resets the daemon to a
// clean full re-ingest.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// META keys carrying the ingest cursor inside the world file.
const (
	metaOffset      = "ingest_offset"
	metaSections    = "ingest_sections"
	metaQuarantined = "ingest_quarantined"
	metaLastDay     = "ingest_last_day"
)

// runTailer is the supervised ingest component.
func (s *Server) runTailer(ctx context.Context) error {
	if err := s.resumeOnce(); err != nil {
		return err
	}
	interval := s.cfg.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := s.pollOnce(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// resumeOnce restores the committed world and cursor, exactly once per
// process. The world file is loaded (mmap where possible), deep-copied
// into a fresh ingester, and closed again before any reader can hold it —
// the served indexes are always heap-backed frozen views.
func (s *Server) resumeOnce() error {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	if s.ing != nil {
		return nil
	}
	ing := colstore.NewIngester()
	wm := Watermark{}
	lastDay := simtime.Never

	idx, meta, err := colstore.Load(s.cfg.WorldPath)
	switch {
	case err == nil:
		resumed, metaWM, day, rerr := resumeFromWorld(idx, meta)
		closeErr := idx.Close()
		switch {
		case rerr != nil:
			s.logf("apiserv: world %s is not resumable (%v); re-ingesting from scratch", s.cfg.WorldPath, rerr)
		case closeErr != nil:
			return closeErr
		default:
			ing, wm, lastDay = resumed, metaWM, day
			// The watermark is the non-authoritative copy: cross-check it
			// against the world META and warn when they diverge (swapped
			// or hand-edited files).
			if disk, err := ReadWatermark(s.watermarkPath()); err != nil {
				s.logf("apiserv: %v (world META wins)", err)
			} else if disk != nil && *disk != sealedCopy(wm) {
				s.logf("apiserv: watermark %s disagrees with world META (offset %d vs %d); world META wins",
					s.watermarkPath(), disk.Offset, wm.Offset)
			}
			s.logf("apiserv: resumed world %s: %d domain(s), %d section(s), offset %d",
				s.cfg.WorldPath, ing.Len(), wm.Sections, wm.Offset)
		}
	case os.IsNotExist(err):
		// First boot: empty world, ingest everything.
	default:
		s.logf("apiserv: cannot load world %s (%v); re-ingesting from scratch", s.cfg.WorldPath, err)
	}

	s.ing = ing
	s.wm = wm
	s.lastDay = lastDay
	s.pending = 0
	s.publish(s.ing.Freeze(), lastDay)
	return nil
}

// resumeFromWorld reconstructs the ingester and cursor from a loaded
// world file.
func resumeFromWorld(idx *colstore.Index, meta map[string]string) (*colstore.Ingester, Watermark, simtime.Day, error) {
	var wm Watermark
	offset, err := strconv.ParseInt(meta[metaOffset], 10, 64)
	if err != nil || offset < 0 {
		return nil, wm, 0, fmt.Errorf("bad %s %q", metaOffset, meta[metaOffset])
	}
	sections, err := strconv.Atoi(meta[metaSections])
	if err != nil || sections < 0 {
		return nil, wm, 0, fmt.Errorf("bad %s %q", metaSections, meta[metaSections])
	}
	quarantined, err := strconv.Atoi(meta[metaQuarantined])
	if err != nil || quarantined < 0 {
		return nil, wm, 0, fmt.Errorf("bad %s %q", metaQuarantined, meta[metaQuarantined])
	}
	lastDay := simtime.Never
	if raw := meta[metaLastDay]; raw != "" {
		if lastDay, err = simtime.Parse(raw); err != nil {
			return nil, wm, 0, fmt.Errorf("bad %s %q", metaLastDay, raw)
		}
	}
	ing, err := colstore.NewIngesterFromIndex(idx)
	if err != nil {
		return nil, wm, 0, err
	}
	wm = Watermark{Offset: offset, Sections: sections, Quarantined: quarantined, LastDay: lastDayString(lastDay)}
	return ing, wm, lastDay, nil
}

// pollOnce consumes whatever complete tail events have appeared since the
// committed offset, committing every CommitEvery events and once more at
// the end of the batch.
func (s *Server) pollOnce() error {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()

	res, err := dataset.TailArchive(s.cfg.ArchivePath, s.wm.Offset)
	if errors.Is(err, dataset.ErrTailTruncated) {
		// The archive was rotated or rewritten underneath us: drop
		// everything, commit the empty state, and re-ingest the new file
		// from the top within this same poll.
		s.logf("apiserv: %v; resetting to a full re-ingest", err)
		s.ing = colstore.NewIngester()
		s.wm = Watermark{}
		s.lastDay = simtime.Never
		s.pending = 0
		if err := s.commitLocked(); err != nil {
			return err
		}
		res, err = dataset.TailArchive(s.cfg.ArchivePath, 0)
	}
	switch {
	case err == nil:
	case os.IsNotExist(err):
		s.markPolled()
		return nil
	default:
		return err
	}

	commitEvery := s.cfg.CommitEvery
	if commitEvery <= 0 {
		commitEvery = 1
	}
	for _, ev := range res.Events {
		if ev.Damage != nil {
			s.logf("apiserv: archive damage quarantined: %s", ev.Damage.String())
			s.wm.Quarantined++
		} else {
			skipped, err := s.ing.AppendDay(ev.Snap)
			if err != nil {
				return err
			}
			if skipped > 0 {
				s.logf("apiserv: day %s: %d failed record(s) skipped", ev.Snap.Day, skipped)
			}
			s.wm.Sections++
			s.lastDay = ev.Snap.Day
			s.wm.LastDay = lastDayString(s.lastDay)
		}
		s.wm.Offset = ev.End
		s.pending++
		if s.pending >= commitEvery {
			if err := s.commitLocked(); err != nil {
				return err
			}
		}
	}
	// Trailing blank lines advance the offset without an event; fold them
	// into a final commit along with any uncommitted remainder.
	if s.pending > 0 || res.Offset != s.wm.Offset {
		s.wm.Offset = res.Offset
		if err := s.commitLocked(); err != nil {
			return err
		}
	}
	s.markPolled()
	return nil
}

// commitLocked publishes and persists the current ingest state. Caller
// holds ingMu.
func (s *Server) commitLocked() error {
	idx := s.ing.Freeze()
	s.publish(idx, s.lastDay)
	meta := map[string]string{
		metaOffset:      strconv.FormatInt(s.wm.Offset, 10),
		metaSections:    strconv.Itoa(s.wm.Sections),
		metaQuarantined: strconv.Itoa(s.wm.Quarantined),
		metaLastDay:     s.wm.LastDay,
	}
	if err := idx.SaveFile(s.cfg.WorldPath, meta); err != nil {
		return err
	}
	if err := s.wm.WriteFile(s.watermarkPath()); err != nil {
		return err
	}
	s.pending = 0
	return nil
}

// sealedCopy returns wm with its CRC populated, for comparison against a
// watermark read back from disk.
func sealedCopy(wm Watermark) Watermark {
	if sum, err := wm.sum(); err == nil {
		wm.CRC = sum
	}
	return wm
}
