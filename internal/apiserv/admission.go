package apiserv

// Overload protection for the query plane. Three layers compose, outermost
// first:
//
//	recoverPanics → admission gate → per-request deadline → handler
//
// The gate bounds concurrent handler work and the memory behind it: up to
// MaxInFlight requests run, up to MaxQueue more wait at most QueueWait for
// a slot, and everything beyond that is shed immediately with 429 +
// Retry-After. Shedding is the design outcome, not a failure — under a
// flood the daemon serves MaxInFlight requests at full speed and answers
// the rest cheaply, instead of collapsing with ten thousand goroutines all
// too slow to matter.

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// gate is the concurrency-limited admission control.
type gate struct {
	slots    chan struct{}
	maxQueue int32
	wait     time.Duration

	queued   atomic.Int32
	admitted atomic.Uint64
	shed     atomic.Uint64
}

func newGate(maxInFlight, maxQueue int, wait time.Duration) *gate {
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	return &gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int32(maxQueue),
		wait:     wait,
	}
}

// admit tries to claim an execution slot within the queue-wait budget.
// The caller must release() after a true return.
func (g *gate) admit(r *http.Request) bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Add(1)
		return false
	}
	defer g.queued.Add(-1)
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	case <-t.C:
	case <-r.Context().Done():
	}
	g.shed.Add(1)
	return false
}

func (g *gate) release() { <-g.slots }

// wrap applies the gate to next. Shed responses carry Retry-After so
// well-behaved clients back off instead of hammering.
func (g *gate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !g.admit(r) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		defer g.release()
		next.ServeHTTP(w, r)
	})
}

// recoverPanics converts a handler panic into a 500 so one poisoned
// request cannot take the daemon down. (net/http would also recover, but
// only after killing the connection and without accounting; here the
// failure is logged, counted, and answered.)
func recoverPanics(logf func(string, ...any), counter *atomic.Uint64, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				counter.Add(1)
				if logf != nil {
					logf("apiserv: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				}
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds each admitted request's work: the context the
// handlers thread into SnapshotCtx/SeriesCtx expires, the scan aborts,
// and the slot frees for the next request.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
