package apiserv

// A minimal supervision tree for the daemon's internal components
// (tailer, snapshot refresher): each component runs in its own goroutine
// and is restarted with exponential backoff when it fails — by returning
// an error or by panicking. A panic in the ingest loop must never take
// down the query plane, and vice versa; the supervisor converts both into
// a logged restart.

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Component is one supervised unit of work. Run should block until it
// fails or ctx is canceled. Returning nil declares the component cleanly
// done: it is not restarted.
type Component struct {
	Name string
	Run  func(ctx context.Context) error
}

// Supervisor restarts failed components with exponential backoff.
type Supervisor struct {
	// Backoff is the delay before the first restart; it doubles per
	// consecutive failure up to MaxBackoff and resets once a run survives
	// longer than ResetAfter.
	Backoff    time.Duration
	MaxBackoff time.Duration
	ResetAfter time.Duration
	// Logf receives restart diagnostics; nil discards them.
	Logf func(format string, args ...any)

	// OnRestart, when non-nil, observes every restart (test hook and
	// health accounting).
	OnRestart func(component string, cause error)
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Run supervises every component until ctx is canceled and all of them
// have returned.
func (s *Supervisor) Run(ctx context.Context, components ...Component) {
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := s.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	resetAfter := s.ResetAfter
	if resetAfter <= 0 {
		resetAfter = 30 * time.Second
	}
	var wg sync.WaitGroup
	for _, c := range components {
		wg.Add(1)
		go func(c Component) {
			defer wg.Done()
			delay := backoff
			for {
				start := time.Now()
				err := s.runOnce(ctx, c)
				if err == nil || ctx.Err() != nil {
					return
				}
				if time.Since(start) > resetAfter {
					delay = backoff
				}
				s.logf("apiserv: component %s failed (%v), restarting in %v", c.Name, err, delay)
				if s.OnRestart != nil {
					s.OnRestart(c.Name, err)
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(delay):
				}
				if delay *= 2; delay > maxBackoff {
					delay = maxBackoff
				}
			}
		}(c)
	}
	wg.Wait()
}

// runOnce executes one attempt, converting a panic into an error so the
// supervisor's restart policy applies uniformly.
func (s *Supervisor) runOnce(ctx context.Context, c Component) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return c.Run(ctx)
}
