package apiserv

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSupervisorRestartsOnPanic: a component that panics is restarted
// (with backoff) instead of taking the process down, and a later clean
// return ends supervision of it.
func TestSupervisorRestartsOnPanic(t *testing.T) {
	var runs, restarts atomic.Int32
	sup := &Supervisor{
		Backoff: time.Millisecond,
		OnRestart: func(name string, cause error) {
			if name != "flaky" {
				t.Errorf("restarted component %q, want flaky", name)
			}
			if cause == nil {
				t.Error("restart with nil cause")
			}
			restarts.Add(1)
		},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(context.Background(), Component{Name: "flaky", Run: func(ctx context.Context) error {
			switch runs.Add(1) {
			case 1:
				panic("first run explodes")
			case 2:
				return errors.New("second run fails politely")
			}
			return nil
		}})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not converge")
	}
	if runs.Load() != 3 || restarts.Load() != 2 {
		t.Fatalf("runs=%d restarts=%d, want 3/2", runs.Load(), restarts.Load())
	}
}

// TestSupervisorStopsOnCancel: cancellation ends supervision even of a
// perpetually failing component.
func TestSupervisorStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &Supervisor{Backoff: time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(ctx, Component{Name: "doomed", Run: func(ctx context.Context) error {
			return errors.New("always fails")
		}})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor did not stop on cancel")
	}
}

// TestSupervisorBackoffGrows: consecutive failures space out; the delay
// doubles up to the cap.
func TestSupervisorBackoffGrows(t *testing.T) {
	var stamps []time.Time
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup := &Supervisor{Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(ctx, Component{Name: "flappy", Run: func(ctx context.Context) error {
			stamps = append(stamps, time.Now())
			if len(stamps) >= 4 {
				cancel()
				return nil
			}
			return errors.New("fail")
		}})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not converge")
	}
	if len(stamps) < 4 {
		t.Fatalf("only %d runs", len(stamps))
	}
	// The third gap (after two failures) must be at least the doubled
	// backoff; timer slop only ever makes gaps longer.
	if gap := stamps[2].Sub(stamps[1]); gap < 20*time.Millisecond {
		t.Fatalf("second restart after %v, want >= 20ms (doubled backoff)", gap)
	}
}
