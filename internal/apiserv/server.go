// Package apiserv is the always-on observatory daemon behind regsec-api:
// an HTTP/JSON query plane over a colstore-backed world that keeps
// growing as the scan archive does. The design splits cleanly into a
// write side and a read side joined by one atomic pointer:
//
//   - the tailer (tailer.go) follows the archive, ingests new sections
//     incrementally, and commits crash-safe world+watermark files;
//   - readers serve every query from the immutable frozen Index the
//     pointer currently holds — no locks, no coordination with ingest;
//   - a supervisor (supervisor.go) restarts either side on failure, and
//     the admission gate (admission.go) sheds load before overload can
//     take the process down.
//
// Health semantics: /healthz answers 200 whenever the process serves
// HTTP at all (liveness); /readyz answers 200 only once a world is
// published AND the tailer's last successful archive poll is fresh
// (readiness = the data is both present and current).
package apiserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/analysis"
	"securepki.org/registrarsec/internal/colstore"
	"securepki.org/registrarsec/internal/simtime"
)

// Config parameterizes a Server. Zero values get production defaults.
type Config struct {
	// ArchivePath is the trailered scan archive the tailer follows.
	ArchivePath string
	// WorldPath is the persisted colstore world (created on first
	// commit, resumed from on restart).
	WorldPath string
	// WatermarkPath overrides the default WorldPath+".watermark".
	WatermarkPath string

	// PollInterval is the tailer's archive poll cadence (default 500ms).
	PollInterval time.Duration
	// CommitEvery is how many tail events may accumulate before a
	// commit; default 1 (commit per section).
	CommitEvery int
	// ReadyMaxLag is how stale the last successful poll may be before
	// /readyz starts failing (default 10s).
	ReadyMaxLag time.Duration
	// RefreshInterval is the snapshot refresher cadence (default 2s).
	RefreshInterval time.Duration

	// MaxInFlight bounds concurrently executing requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot (default 256).
	MaxQueue int
	// QueueWait bounds how long a queued request may wait before being
	// shed (default 100ms).
	QueueWait time.Duration
	// RequestTimeout bounds each admitted request's work (default 10s).
	RequestTimeout time.Duration

	// Logf receives operational diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// worldView pairs a frozen index with the day its data reaches.
type worldView struct {
	idx *colstore.Index
	day simtime.Day // last ingested day, simtime.Never before the first
}

// Server is the daemon: the tailer's mutable ingest state, the published
// world, the admission gate, and the HTTP surface.
type Server struct {
	cfg  Config
	gate *gate
	mux  *http.ServeMux

	world        atomic.Pointer[worldView]
	lastPollNano atomic.Int64
	panics       atomic.Uint64
	restarts     atomic.Uint64

	// Tailer state; ingMu serializes the tailer against supervisor
	// restarts of itself.
	ingMu   sync.Mutex
	ing     *colstore.Ingester
	wm      Watermark
	lastDay simtime.Day
	pending int
}

// New builds a Server. It performs no I/O; the world is resumed when Run
// starts the tailer.
func New(cfg Config) *Server {
	s := &Server{
		cfg:  cfg,
		gate: newGate(cfg.MaxInFlight, orDefault(cfg.MaxQueue, 256), cfg.QueueWait),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/table1", s.guarded(s.handleTable1))
	s.mux.HandleFunc("GET /v1/series", s.guarded(s.handleSeries))
	s.mux.HandleFunc("GET /v1/operators", s.guarded(s.handleOperators))
	s.mux.HandleFunc("GET /v1/registrars", s.guarded(s.handleRegistrars))
	s.mux.HandleFunc("GET /v1/dsgap", s.guarded(s.handleDSGap))
	return s
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) watermarkPath() string {
	if s.cfg.WatermarkPath != "" {
		return s.cfg.WatermarkPath
	}
	return s.cfg.WorldPath + ".watermark"
}

// publish swaps the served world. The old view is simply dropped: frozen
// views are heap-backed, never mmap, so outstanding readers finish on the
// old one and the GC reclaims it.
func (s *Server) publish(idx *colstore.Index, day simtime.Day) {
	s.world.Store(&worldView{idx: idx, day: day})
}

func (s *Server) markPolled() { s.lastPollNano.Store(time.Now().UnixNano()) }

// ready evaluates readiness: a world has been published and the tailer
// has polled the archive recently.
func (s *Server) ready() (bool, string) {
	if s.world.Load() == nil {
		return false, "world not loaded"
	}
	lag := s.cfg.ReadyMaxLag
	if lag <= 0 {
		lag = 10 * time.Second
	}
	last := s.lastPollNano.Load()
	if last == 0 {
		return false, "ingest has not polled the archive yet"
	}
	if since := time.Since(time.Unix(0, last)); since > lag {
		return false, fmt.Sprintf("ingest watermark stale: last poll %v ago (max %v)", since.Round(time.Millisecond), lag)
	}
	return true, ""
}

// Run supervises the daemon's background components until ctx is
// canceled. The HTTP listener is the caller's (cmd/regsec-api pairs
// Handler with httpx.NewServer).
func (s *Server) Run(ctx context.Context) {
	sup := &Supervisor{
		Logf: s.cfg.Logf,
		OnRestart: func(string, error) {
			s.restarts.Add(1)
		},
	}
	sup.Run(ctx,
		Component{Name: "tailer", Run: s.runTailer},
		Component{Name: "refresher", Run: s.runRefresher},
	)
}

// runRefresher keeps the published world's snapshot cache warm: after
// every world swap the first snapshot query would otherwise pay the full
// materialization, so the refresher pays it off the request path.
func (s *Server) runRefresher(ctx context.Context) error {
	interval := s.cfg.RefreshInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
		if view := s.world.Load(); view != nil && view.idx.Len() > 0 {
			if _, err := view.idx.SnapshotCtx(ctx, s.queryDay(view)); err != nil && !errors.Is(err, ctx.Err()) {
				return err
			}
		}
	}
}

// Handler returns the full middleware stack: panic recovery outermost,
// then admission, then the per-request deadline, then routing.
func (s *Server) Handler() http.Handler {
	inner := withDeadline(orDuration(s.cfg.RequestTimeout, 10*time.Second), s.mux)
	return recoverPanics(s.cfg.Logf, &s.panics, s.gate.wrap(inner))
}

func orDuration(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	return v
}

// GateStats reports admission accounting (bench and status surface).
func (s *Server) GateStats() (admitted, shed uint64) {
	return s.gate.admitted.Load(), s.gate.shed.Load()
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.ready(); !ok {
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// Status is the /v1/status document.
type Status struct {
	Ready       bool   `json:"ready"`
	Reason      string `json:"reason,omitempty"`
	Domains     int    `json:"domains"`
	Operators   int    `json:"operators"`
	LastDay     string `json:"last_day,omitempty"`
	Sections    int    `json:"sections"`
	Quarantined int    `json:"quarantined"`
	Offset      int64  `json:"offset"`
	Admitted    uint64 `json:"requests_admitted"`
	Shed        uint64 `json:"requests_shed"`
	Panics      uint64 `json:"handler_panics"`
	Restarts    uint64 `json:"component_restarts"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := Status{
		Admitted: s.gate.admitted.Load(),
		Shed:     s.gate.shed.Load(),
		Panics:   s.panics.Load(),
		Restarts: s.restarts.Load(),
	}
	st.Ready, st.Reason = s.ready()
	if view := s.world.Load(); view != nil {
		st.Domains = view.idx.Len()
		st.Operators = view.idx.Operators()
		st.LastDay = lastDayString(view.day)
	}
	s.ingMu.Lock()
	st.Sections = s.wm.Sections
	st.Quarantined = s.wm.Quarantined
	st.Offset = s.wm.Offset
	s.ingMu.Unlock()
	writeJSON(w, &st)
}

// guarded wraps a data handler with the world-availability check shared
// by every query endpoint.
func (s *Server) guarded(h func(http.ResponseWriter, *http.Request, *worldView)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view := s.world.Load()
		if view == nil {
			http.Error(w, "world not loaded yet", http.StatusServiceUnavailable)
			return
		}
		h(w, r, view)
	}
}

// queryDay is the default day for aggregations: the last ingested day,
// or the paper's study end before any ingest.
func (s *Server) queryDay(view *worldView) simtime.Day {
	if view.day == simtime.Never {
		return simtime.End
	}
	return view.day
}

// parseDay reads a ?day=YYYY-MM-DD parameter.
func (s *Server) parseDay(r *http.Request, view *worldView) (simtime.Day, error) {
	raw := r.URL.Query().Get("day")
	if raw == "" {
		return s.queryDay(view), nil
	}
	return simtime.Parse(raw)
}

// parseTLDs reads a ?tlds=com,net parameter; empty means every TLD in
// the world.
func parseTLDs(r *http.Request, view *worldView) []string {
	raw := r.URL.Query().Get("tlds")
	if raw == "" {
		tlds := view.idx.TLDs()
		sort.Strings(tlds)
		return tlds
	}
	var out []string
	for _, t := range strings.Split(raw, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

var classNames = map[string]colstore.Class{
	"":        colstore.ClassFull,
	"any":     colstore.ClassAny,
	"dnskey":  colstore.ClassDNSKEY,
	"partial": colstore.ClassPartial,
	"full":    colstore.ClassFull,
	"broken":  colstore.ClassBroken,
	"none":    colstore.ClassNone,
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request, view *worldView) {
	day, err := s.parseDay(r, view)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Day  string                 `json:"day"`
		TLDs []analysis.TLDOverview `json:"tlds"`
	}{day.String(), view.idx.Overview(day, parseTLDs(r, view))})
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request, view *worldView) {
	q := r.URL.Query()
	operator := q.Get("operator")
	if operator == "" {
		http.Error(w, "missing required parameter: operator", http.StatusBadRequest)
		return
	}
	from, to := simtime.Day(0), s.queryDay(view)
	var err error
	if raw := q.Get("from"); raw != "" {
		if from, err = simtime.Parse(raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if raw := q.Get("to"); raw != "" {
		if to, err = simtime.Parse(raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	step := 1
	if raw := q.Get("step"); raw != "" {
		if step, err = strconv.Atoi(raw); err != nil || step <= 0 {
			http.Error(w, fmt.Sprintf("bad step %q", raw), http.StatusBadRequest)
			return
		}
	}
	points, err := view.idx.SeriesCtx(r.Context(), operator, q.Get("tld"), from, to, step)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, struct {
		Operator string                 `json:"operator"`
		TLD      string                 `json:"tld,omitempty"`
		Points   []analysis.SeriesPoint `json:"points"`
	}{operator, q.Get("tld"), points})
}

func (s *Server) handleOperators(w http.ResponseWriter, r *http.Request, view *worldView) {
	day, err := s.parseDay(r, view)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	class, ok := classNames[r.URL.Query().Get("class")]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown class %q", r.URL.Query().Get("class")), http.StatusBadRequest)
		return
	}
	counts := view.idx.CountByOperator(day, class, parseTLDs(r, view)...)
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err := strconv.Atoi(raw)
		if err != nil || limit < 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", raw), http.StatusBadRequest)
			return
		}
		if limit < len(counts) {
			counts = counts[:limit]
		}
	}
	writeJSON(w, struct {
		Day       string                   `json:"day"`
		Operators []analysis.OperatorCount `json:"operators"`
	}{day.String(), counts})
}

func (s *Server) handleRegistrars(w http.ResponseWriter, r *http.Request, view *worldView) {
	day, err := s.parseDay(r, view)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var tldList []string
	if r.URL.Query().Get("tlds") != "" {
		tldList = parseTLDs(r, view)
	}
	type regRow struct {
		Registrar string `json:"registrar"`
		Domains   int    `json:"domains"`
		DNSKEY    int    `json:"dnskey"`
	}
	domains := view.idx.DomainsByRegistrar(tldList...)
	keyed := view.idx.DNSKEYByRegistrar(day, tldList...)
	rows := make([]regRow, 0, len(domains))
	for reg, n := range domains {
		rows = append(rows, regRow{Registrar: reg, Domains: n, DNSKEY: keyed[reg]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Domains != rows[j].Domains {
			return rows[i].Domains > rows[j].Domains
		}
		return rows[i].Registrar < rows[j].Registrar
	})
	writeJSON(w, struct {
		Day        string   `json:"day"`
		Registrars []regRow `json:"registrars"`
	}{day.String(), rows})
}

func (s *Server) handleDSGap(w http.ResponseWriter, r *http.Request, view *worldView) {
	day, err := s.parseDay(r, view)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Day      string  `json:"day"`
		DSGapPct float64 `json:"ds_gap_pct"`
	}{day.String(), view.idx.DSGapPct(day, parseTLDs(r, view)...)})
}

// writeQueryError maps query-path errors onto HTTP statuses.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, colstore.ErrClosed):
		http.Error(w, "world is reloading, retry", http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query exceeded its deadline", http.StatusGatewayTimeout)
	default:
		// Client went away mid-query (context canceled) or similar; the
		// status is moot but 499-style bookkeeping helps logs.
		http.Error(w, err.Error(), http.StatusRequestTimeout)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
