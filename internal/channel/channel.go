// Package channel models the out-of-band mechanisms customers use to convey
// DS records to registrars: web forms, email, support tickets, live chat
// and phone dictation. The paper (sections 5.3 and 6.4) finds these
// channels to be the weak links of DNSSEC deployment — most registrars do
// not validate uploaded DS records, several accept unauthenticated email,
// one installed a DS record on the wrong customer's domain during a chat
// session, and a transcription error over the phone once broke isoc.org.
//
// Each channel carries a DS record payload in presentation form plus the
// metadata a registrar's backend would see (claimed sender, account
// binding, etc.). The failure modes are modeled explicitly and
// deterministically seeded so experiments reproduce.
package channel

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"securepki.org/registrarsec/internal/dnswire"
)

// Kind enumerates DS-upload channels.
type Kind int

const (
	// None: the registrar offers no way to convey a DS record.
	None Kind = iota
	// Web: an HTTPS form on the registrar's control panel.
	Web
	// Email: the customer emails the DS record to support.
	Email
	// Ticket: the customer attaches the DS record to a support ticket.
	Ticket
	// Chat: the customer pastes the DS record into a live-chat window.
	Chat
	// Phone: the customer dictates the DS record over the phone.
	Phone
)

// String names the channel.
func (k Kind) String() string {
	switch k {
	case Web:
		return "web"
	case Email:
		return "email"
	case Ticket:
		return "ticket"
	case Chat:
		return "chat"
	case Phone:
		return "phone"
	}
	return "none"
}

// EmailMessage is a minimal email with the property that matters for the
// study: the From header is attacker-controlled (SMTP does not authenticate
// it), while the registrar may or may not check it against the account on
// file.
type EmailMessage struct {
	// From is the claimed sender address; trivially forgeable.
	From string
	// To is the registrar support address.
	To string
	// Subject typically names the domain.
	Subject string
	// Body carries the DS record in presentation form.
	Body string
	// AuthCode is an optional account-bound security code some registrars
	// require (the one registrar in section 6.4 that verified email).
	AuthCode string
}

// TicketMessage is a support-ticket submission. Tickets are opened from
// inside the authenticated control panel, so the account binding is
// trustworthy — but the payload is still free text that a human processes.
type TicketMessage struct {
	AccountEmail string
	Domain       string
	Body         string
}

// dsPattern matches a DS record in presentation form inside free text:
// keytag algorithm digesttype hexdigest.
var dsPattern = regexp.MustCompile(`(?m)(\d{1,5})\s+(\d{1,3})\s+(\d{1,3})\s+([0-9A-Fa-f\s]{20,})`)

// ErrNoDS reports that no DS record could be recognized in a message body.
var ErrNoDS = errors.New("channel: no DS record found in message")

// ParseDSFromText extracts the first DS record found in free text, the way
// a registrar backend (or human agent) would read one out of an email or
// chat transcript.
func ParseDSFromText(text string) (*dnswire.DS, error) {
	m := dsPattern.FindStringSubmatch(text)
	if m == nil {
		return nil, ErrNoDS
	}
	var tag, alg, dt int
	fmt.Sscanf(m[1], "%d", &tag)
	fmt.Sscanf(m[2], "%d", &alg)
	fmt.Sscanf(m[3], "%d", &dt)
	hexStr := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' || r == '\r' {
			return -1
		}
		return r
	}, m[4])
	if len(hexStr)%2 == 1 {
		hexStr = hexStr[:len(hexStr)-1]
	}
	digest := make([]byte, len(hexStr)/2)
	if _, err := fmt.Sscanf(hexStr, "%x", &digest); err != nil {
		return nil, fmt.Errorf("channel: bad DS digest: %w", err)
	}
	if tag > 0xffff || alg > 0xff || dt > 0xff {
		return nil, fmt.Errorf("channel: DS fields out of range")
	}
	return &dnswire.DS{
		KeyTag:     uint16(tag),
		Algorithm:  dnswire.Algorithm(alg),
		DigestType: dnswire.DigestType(dt),
		Digest:     digest,
	}, nil
}

// FormatDS renders a DS record the way a customer would paste it.
func FormatDS(domain string, ds *dnswire.DS) string {
	return fmt.Sprintf("%s. IN DS %s", domain, ds.String())
}

// ChatSession models a live-chat with a human support agent. The paper
// observed an agent install a probe's DS record on an unrelated customer's
// domain; ErrorRate reproduces that class of mistake.
type ChatSession struct {
	// ErrorRate is the per-interaction probability that the agent applies
	// the DS to the wrong domain.
	ErrorRate float64
	// Rng drives the error model; required so runs are reproducible.
	Rng *rand.Rand
	// OtherDomains is the pool the agent can mis-target.
	OtherDomains []string
}

// Outcome describes what the agent actually did with the DS record.
type Outcome struct {
	// AppliedDomain is the domain the DS was installed on — possibly not
	// the one the customer asked about.
	AppliedDomain string
	// Misapplied is set when AppliedDomain differs from the request.
	Misapplied bool
}

// Submit hands a DS record to the agent for the given domain.
func (c *ChatSession) Submit(domain string, ds *dnswire.DS) Outcome {
	if c.Rng != nil && c.Rng.Float64() < c.ErrorRate {
		// The agent confuses the ticket with another customer's: pick a
		// uniformly random domain that is not the requested one.
		candidates := make([]string, 0, len(c.OtherDomains))
		for _, d := range c.OtherDomains {
			if d != domain {
				candidates = append(candidates, d)
			}
		}
		if len(candidates) > 0 {
			return Outcome{AppliedDomain: candidates[c.Rng.Intn(len(candidates))], Misapplied: true}
		}
	}
	return Outcome{AppliedDomain: domain}
}

// PhoneDictation models dictating a DS digest over the phone. Each hex
// digit is independently mis-transcribed with ErrorRate probability — the
// isoc.org anecdote (section 2, footnote 6).
type PhoneDictation struct {
	ErrorRate float64
	Rng       *rand.Rand
}

// Transcribe returns the digest as the agent heard it.
func (p *PhoneDictation) Transcribe(ds *dnswire.DS) *dnswire.DS {
	out := *ds
	out.Digest = append([]byte(nil), ds.Digest...)
	if p.Rng == nil {
		return &out
	}
	for i := range out.Digest {
		for nib := 0; nib < 2; nib++ {
			if p.Rng.Float64() < p.ErrorRate {
				shift := uint(4 * nib)
				repl := byte(p.Rng.Intn(16)) << shift
				out.Digest[i] = out.Digest[i]&^(0xf<<shift) | repl
			}
		}
	}
	return &out
}
