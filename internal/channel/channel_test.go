package channel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/dnswire"
)

func sampleDS() *dnswire.DS {
	return &dnswire.DS{
		KeyTag: 60485, Algorithm: dnswire.AlgRSASHA256,
		DigestType: dnswire.DigestSHA256,
		Digest: []byte{
			0x2b, 0xb1, 0x83, 0xaf, 0x5f, 0x22, 0x58, 0x81,
			0x79, 0xa5, 0x3b, 0x0a, 0x98, 0x63, 0x1f, 0xad,
			0x1a, 0x29, 0x21, 0x18, 0x2b, 0xb1, 0x83, 0xaf,
			0x5f, 0x22, 0x58, 0x81, 0x79, 0xa5, 0x3b, 0x0a,
		},
	}
}

func TestParseDSFromFormatted(t *testing.T) {
	ds := sampleDS()
	text := FormatDS("example.com", ds)
	got, err := ParseDSFromText(text)
	if err != nil {
		t.Fatalf("ParseDSFromText(%q): %v", text, err)
	}
	if got.KeyTag != ds.KeyTag || got.Algorithm != ds.Algorithm ||
		got.DigestType != ds.DigestType || !bytes.Equal(got.Digest, ds.Digest) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, ds)
	}
}

func TestParseDSFromChattyEmail(t *testing.T) {
	ds := sampleDS()
	body := "Hi support,\n\nplease install this DS record for my domain:\n\n" +
		"  " + ds.String() + "\n\nthanks!\n"
	got, err := ParseDSFromText(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.KeyTag != ds.KeyTag || !bytes.Equal(got.Digest, ds.Digest) {
		t.Error("DS mangled when embedded in prose")
	}
}

func TestParseDSRejectsJunk(t *testing.T) {
	for _, body := range []string{
		"",
		"please enable dnssec",
		"12 34", // too short to be a DS
	} {
		if _, err := ParseDSFromText(body); err == nil {
			t.Errorf("accepted %q", body)
		}
	}
}

func TestChatSessionMisapplies(t *testing.T) {
	ds := sampleDS()
	// Deterministic: rate 1 always misapplies when other domains exist.
	s := &ChatSession{
		ErrorRate:    1.0,
		Rng:          rand.New(rand.NewSource(3)),
		OtherDomains: []string{"victim.com", "bystander.com"},
	}
	out := s.Submit("mine.com", ds)
	if !out.Misapplied || out.AppliedDomain == "mine.com" {
		t.Errorf("expected misapply, got %+v", out)
	}
	// Rate 0 never misapplies.
	s.ErrorRate = 0
	out = s.Submit("mine.com", ds)
	if out.Misapplied || out.AppliedDomain != "mine.com" {
		t.Errorf("unexpected misapply: %+v", out)
	}
	// No rng: deterministic correct behaviour.
	s2 := &ChatSession{ErrorRate: 1}
	if out := s2.Submit("mine.com", ds); out.Misapplied {
		t.Error("misapplied without rng")
	}
}

func TestPhoneDictationNoise(t *testing.T) {
	ds := sampleDS()
	p := &PhoneDictation{ErrorRate: 0, Rng: rand.New(rand.NewSource(1))}
	if got := p.Transcribe(ds); !bytes.Equal(got.Digest, ds.Digest) {
		t.Error("zero error rate altered digest")
	}
	p.ErrorRate = 0.5
	altered := false
	for i := 0; i < 10 && !altered; i++ {
		if !bytes.Equal(p.Transcribe(ds).Digest, ds.Digest) {
			altered = true
		}
	}
	if !altered {
		t.Error("50% error rate never altered the digest")
	}
	// Original must never be mutated.
	if !bytes.Equal(ds.Digest, sampleDS().Digest) {
		t.Error("Transcribe mutated its input")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Web: "web", Email: "email", Ticket: "ticket", Chat: "chat", Phone: "phone",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestParseDSWithWrappedHex(t *testing.T) {
	// Digest hex wrapped across lines, as email clients do.
	body := "60485 8 2 2BB183AF5F22588179A53B0A98631FAD\n1A2921182BB183AF5F22588179A53B0A"
	got, err := ParseDSFromText(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Digest) != 32 {
		t.Errorf("digest length %d", len(got.Digest))
	}
	if !strings.HasPrefix(strings.ToUpper(got.String()), "60485 8 2 2BB183AF") {
		t.Errorf("reassembled DS: %s", got)
	}
}
