package probe

import (
	"fmt"
	"sort"
	"strings"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/registrar"
)

// This file renders probe observations as the paper's tables: Table 2
// (popular registrars), Table 3 (DNSSEC-heavy registrars) and Table 4
// (registrar-vs-reseller roles per TLD).

// glyph renders a boolean as the paper's ●/✗ cells (ASCII here).
func glyph(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// tri renders a TriState cell.
func tri(t TriState) string { return t.String() }

// renderTable lays out rows with aligned columns.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// SummarizeTable2 counts the headline findings of section 5: how many of
// the probed registrars support DNSSEC in each mode.
type Table2Summary struct {
	Probed         int
	HostedSupport  int // support DNSSEC when they are the DNS operator
	HostedDefault  int // ... by default (incl. plan-gated)
	HostedPaid     int
	OwnerSupport   int // support DS upload for external nameservers
	WebChannel     int
	EmailChannel   int
	TicketChannel  int
	ChatChannel    int
	ValidateDS     int // rejected the bogus DS
	NoValidateDS   int // accepted the bogus DS
	ForgedEmailOK  int // accepted the forged email
	EmailTested    int
	ChatMisapplied int
}

// Summarize tallies observations into the section-5 headline numbers.
func Summarize(obs []*Observation) Table2Summary {
	var s Table2Summary
	s.Probed = len(obs)
	for _, o := range obs {
		if o.HostedSigned {
			s.HostedSupport++
			if o.HostedByDefault || o.HostedPlanGated {
				s.HostedDefault++
			}
			if o.HostedNeededFee {
				s.HostedPaid++
			}
		}
		if o.OwnerSupported {
			s.OwnerSupport++
			switch o.ChannelUsed {
			case channel.Web:
				s.WebChannel++
			case channel.Email:
				s.EmailChannel++
			case channel.Ticket:
				s.TicketChannel++
			case channel.Chat:
				s.ChatChannel++
			}
			switch o.RejectsBogusDS {
			case ObservedYes:
				s.ValidateDS++
			case ObservedNo:
				s.NoValidateDS++
			}
			if o.RejectsForgedEmail != Untested {
				s.EmailTested++
				if o.RejectsForgedEmail == ObservedNo {
					s.ForgedEmailOK++
				}
			}
		}
		if o.ChatMisapplied {
			s.ChatMisapplied++
		}
	}
	return s
}

// RenderTable2 renders observations in the layout of the paper's Table 2,
// with the per-registrar domain counts (from the measurement dataset)
// alongside.
func RenderTable2(obs []*Observation, domainCounts map[string]int) string {
	header := []string{
		"Registrar", "Domains", "DNSSEC dflt", "DNSSEC opt", "Hosted OK",
		"Owner DS", "Channel", "Validates DS", "Email auth",
	}
	rows := make([][]string, 0, len(obs))
	for _, o := range obs {
		count := "-"
		if n, ok := domainCounts[o.Registrar]; ok {
			count = fmt.Sprintf("%d", n)
		}
		hostedDflt := o.HostedByDefault || o.HostedPlanGated
		dfltCell := glyph(hostedDflt)
		if o.HostedPlanGated {
			dfltCell = "some plans"
		}
		optCell := glyph(o.HostedSigned && !hostedDflt)
		if o.HostedNeededFee {
			optCell = "paid"
		}
		ch := "-"
		if o.OwnerSupported {
			ch = o.ChannelUsed.String()
			if o.FetchesDNSKEY {
				ch = "fetch"
			} else if o.AcceptsDNSKEY {
				ch = "dnskey"
			}
		}
		rows = append(rows, []string{
			o.Registrar, count, dfltCell, optCell,
			o.HostedDeployment.String(), glyph(o.OwnerSupported), ch,
			tri(o.RejectsBogusDS), tri(o.RejectsForgedEmail),
		})
	}
	return renderTable(header, rows)
}

// RenderTable3 renders the DNSSEC-heavy registrar table (Table 3): DNSSEC
// by default, whether DNSKEYs are published, whether DS records reach the
// registry, plus the owner-operator columns.
func RenderTable3(obs []*Observation, dnskeyCounts map[string]int) string {
	header := []string{
		"Registrar", "DNSKEY domains", "Default", "Publishes DNSKEY", "Uploads DS",
		"Owner DS", "Channel", "Validates DS",
	}
	rows := make([][]string, 0, len(obs))
	for _, o := range obs {
		count := "-"
		if n, ok := dnskeyCounts[o.Registrar]; ok {
			count = fmt.Sprintf("%d", n)
		}
		publishes := o.HostedDeployment == dnssec.DeploymentFull ||
			o.HostedDeployment == dnssec.DeploymentPartial
		ch := "-"
		if o.OwnerSupported {
			ch = o.ChannelUsed.String()
			if o.FetchesDNSKEY {
				ch = "fetch"
			}
		}
		rows = append(rows, []string{
			o.Registrar, count, glyph(o.HostedByDefault || o.HostedPlanGated),
			glyph(publishes), glyph(o.HostedUploadsDS),
			glyph(o.OwnerSupported), ch, tri(o.RejectsBogusDS),
		})
	}
	return renderTable(header, rows)
}

// SurveyRow is one Table 4 row: who a DNS operator uses per TLD.
type SurveyRow struct {
	Registrar string
	// PerTLD maps each TLD to "self", the partner's name, or "no support".
	PerTLD map[string]string
}

// Survey asks each registrar its standing per TLD — the questionnaire the
// authors ran for Table 4.
func Survey(regs []*registrar.Registrar, byID map[string]*registrar.Registrar, tlds []string) []SurveyRow {
	rows := make([]SurveyRow, 0, len(regs))
	for _, r := range regs {
		row := SurveyRow{Registrar: r.Name, PerTLD: make(map[string]string, len(tlds))}
		for _, tld := range tlds {
			role := r.RoleFor(tld)
			switch role.Kind {
			case registrar.RoleRegistrar:
				row.PerTLD[tld] = r.Name
			case registrar.RoleReseller:
				if p, ok := byID[role.Partner]; ok {
					row.PerTLD[tld] = p.Name
				} else {
					row.PerTLD[tld] = role.Partner
				}
			default:
				row.PerTLD[tld] = "no support"
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 renders the survey matrix.
func RenderTable4(rows []SurveyRow, tlds []string) string {
	header := append([]string{"DNS operator"}, tlds...)
	out := make([][]string, 0, len(rows))
	for _, row := range rows {
		cells := []string{row.Registrar}
		for _, tld := range tlds {
			cells = append(cells, row.PerTLD[tld])
		}
		out = append(out, cells)
	}
	return renderTable(header, out)
}

// SortObservations orders observations by registrar name for stable output.
func SortObservations(obs []*Observation) {
	sort.Slice(obs, func(i, j int) bool { return obs[i].Registrar < obs[j].Registrar })
}
