package probe_test

import (
	"context"
	"strings"
	"testing"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/probe"
	"securepki.org/registrarsec/internal/registrar"
)

type world struct {
	eco  *dnstest.Ecosystem
	env  *probe.Env
	byID map[string]*registrar.Registrar
	t    *testing.T
}

func newWorld(t *testing.T) *world {
	t.Helper()
	eco, err := dnstest.NewEcosystem(dnstest.EcosystemConfig{TLDs: []string{"com", "se"}})
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		eco: eco,
		env: &probe.Env{
			Net:        eco.Net,
			Registries: eco.Registries,
			Anchor:     eco.Anchor,
			Clock:      eco.Clock.Day,
		},
		byID: make(map[string]*registrar.Registrar),
		t:    t,
	}
}

func (w *world) reg(p registrar.Policy) *registrar.Registrar {
	w.t.Helper()
	if p.Roles == nil {
		p.Roles = map[string]registrar.Role{"com": {Kind: registrar.RoleRegistrar}}
	}
	r, err := registrar.New(p, registrar.Deps{
		Registries: w.eco.Registries, Net: w.eco.Net, Clock: w.eco.Clock.Day,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.byID[p.ID] = r
	return r
}

func TestProbeDiscoversGoDaddyLikePolicy(t *testing.T) {
	w := newWorld(t)
	r := w.reg(registrar.Policy{
		ID: "godaddy", Name: "GoDaddy", NSHosts: []string{"ns01.domaincontrol.com"},
		HostedDNSSEC: registrar.SupportPaid, DNSSECFee: 35,
		OwnerDNSSEC: false,
	})
	obs, err := probe.New(w.env).Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.HostedSigned || !obs.HostedNeededFee || obs.HostedByDefault {
		t.Errorf("hosted findings: %+v", obs)
	}
	if obs.HostedDeployment != dnssec.DeploymentFull {
		t.Errorf("hosted deployment: %v", obs.HostedDeployment)
	}
	if obs.OwnerSupported {
		t.Error("probe found owner DS support where none exists")
	}
}

func TestProbeDiscoversNameCheapLikePlanGating(t *testing.T) {
	w := newWorld(t)
	r := w.reg(registrar.Policy{
		ID: "namecheap", Name: "NameCheap", NSHosts: []string{"dns1.registrar-servers.com"},
		HostedDNSSEC: registrar.SupportDefaultSomePlans,
		DNSSECPlans:  map[string]bool{"premiumdns": true},
		DefaultPlan:  "freedns",
		OwnerDNSSEC:  true, DSChannel: channel.Web,
	})
	obs, err := probe.New(w.env).Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.HostedSigned || !obs.HostedPlanGated {
		t.Errorf("plan gating not discovered: %+v", obs)
	}
	if obs.HostedByDefault {
		t.Error("default-signing misreported for the free plan")
	}
}

func TestProbeDiscoversValidationBehaviour(t *testing.T) {
	w := newWorld(t)

	strict := w.reg(registrar.Policy{
		ID: "ovh", Name: "OVH", NSHosts: []string{"dns1.ovh.net"},
		HostedDNSSEC: registrar.SupportOptIn,
		OwnerDNSSEC:  true, DSChannel: channel.Web, ValidatesDS: true,
	})
	sloppy := w.reg(registrar.Policy{
		ID: "sloppy", Name: "Sloppy", NSHosts: []string{"ns1.sloppy.net"},
		OwnerDNSSEC: true, DSChannel: channel.Web, ValidatesDS: false,
	})
	p := probe.New(w.env)

	obsStrict, err := p.Run(context.Background(), strict)
	if err != nil {
		t.Fatal(err)
	}
	if obsStrict.RejectsBogusDS != probe.ObservedYes {
		t.Errorf("validating registrar: RejectsBogusDS = %v", obsStrict.RejectsBogusDS)
	}
	if obsStrict.OwnerDeployment != dnssec.DeploymentFull {
		t.Errorf("owner deployment: %v", obsStrict.OwnerDeployment)
	}

	obsSloppy, err := p.Run(context.Background(), sloppy)
	if err != nil {
		t.Fatal(err)
	}
	if obsSloppy.RejectsBogusDS != probe.ObservedNo {
		t.Errorf("sloppy registrar: RejectsBogusDS = %v", obsSloppy.RejectsBogusDS)
	}
	if !obsSloppy.HostedSigned == false && obsSloppy.HostedSigned {
		t.Error("hosted misreport")
	}
}

func TestProbeDiscoversEmailVulnerability(t *testing.T) {
	w := newWorld(t)
	lax := w.reg(registrar.Policy{
		ID: "laxmail", Name: "LaxMail", NSHosts: []string{"ns1.laxmail.net"},
		OwnerDNSSEC: true, DSChannel: channel.Email, EmailAuth: registrar.EmailAuthNone,
	})
	strict := w.reg(registrar.Policy{
		ID: "codereg", Name: "CodeReg", NSHosts: []string{"ns1.codereg.net"},
		OwnerDNSSEC: true, DSChannel: channel.Email, EmailAuth: registrar.EmailAuthCode,
	})
	p := probe.New(w.env)
	obsLax, err := p.Run(context.Background(), lax)
	if err != nil {
		t.Fatal(err)
	}
	if obsLax.ChannelUsed != channel.Email || obsLax.RejectsForgedEmail != probe.ObservedNo {
		t.Errorf("lax email registrar: channel=%v forged=%v", obsLax.ChannelUsed, obsLax.RejectsForgedEmail)
	}
	obsStrict, err := p.Run(context.Background(), strict)
	if err != nil {
		t.Fatal(err)
	}
	if obsStrict.RejectsForgedEmail != probe.ObservedYes {
		t.Errorf("code-auth registrar: forged=%v", obsStrict.RejectsForgedEmail)
	}
}

func TestProbeDiscoversAlternativeFlows(t *testing.T) {
	w := newWorld(t)
	fetcher := w.reg(registrar.Policy{
		ID: "pcx", Name: "PCExtreme", NSHosts: []string{"ns1.pcextreme.nl"},
		OwnerDNSSEC: true, FetchesDNSKEY: true,
	})
	keyup := w.reg(registrar.Policy{
		ID: "aws", Name: "Amazon", NSHosts: []string{"ns1.keyreg.net"},
		OwnerDNSSEC: true, AcceptsDNSKEY: true,
	})
	ticketer := w.reg(registrar.Policy{
		ID: "123reg", Name: "123-reg", NSHosts: []string{"ns1.123-reg.co.uk"},
		OwnerDNSSEC: true, DSChannel: channel.Ticket,
	})
	p := probe.New(w.env)

	obs, err := p.Run(context.Background(), fetcher)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.FetchesDNSKEY || obs.OwnerDeployment != dnssec.DeploymentFull {
		t.Errorf("fetch flow: %+v", obs)
	}
	if obs.RejectsBogusDS != probe.ObservedYes {
		t.Errorf("fetch flow bogus: %v", obs.RejectsBogusDS)
	}

	obs, err = p.Run(context.Background(), keyup)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.AcceptsDNSKEY || obs.OwnerDeployment != dnssec.DeploymentFull {
		t.Errorf("dnskey flow: %+v", obs)
	}

	obs, err = p.Run(context.Background(), ticketer)
	if err != nil {
		t.Fatal(err)
	}
	if obs.ChannelUsed != channel.Ticket || obs.OwnerDeployment != dnssec.DeploymentFull {
		t.Errorf("ticket flow: %+v", obs)
	}
	if obs.RejectsBogusDS != probe.ObservedNo {
		t.Errorf("ticket validation: %v", obs.RejectsBogusDS)
	}
}

func TestProbeRecordsChatMisapply(t *testing.T) {
	w := newWorld(t)
	r := w.reg(registrar.Policy{
		ID: "hostgator", Name: "HostGator", NSHosts: []string{"ns1.hostgator.com"},
		OwnerDNSSEC: true, DSChannel: channel.Chat, ChatErrorRate: 1.0,
	})
	// Seed victims so the agent has something to mis-target.
	r.CreateAccount("bystander@x.net")
	if err := r.Purchase("bystander@x.net", "innocent.com", ""); err != nil {
		t.Fatal(err)
	}
	obs, err := probe.New(w.env).Run(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.ChatMisapplied {
		t.Fatalf("misapply not recorded: %+v", obs.Notes)
	}
	if obs.MisappliedVictim == "" {
		t.Error("victim not recorded")
	}
}

func TestSummarizeAndRender(t *testing.T) {
	w := newWorld(t)
	regs := []*registrar.Registrar{
		w.reg(registrar.Policy{
			ID: "r1", Name: "Alpha", NSHosts: []string{"ns1.alpha.net"},
			HostedDNSSEC: registrar.SupportDefault,
			OwnerDNSSEC:  true, DSChannel: channel.Web, ValidatesDS: true,
		}),
		w.reg(registrar.Policy{
			ID: "r2", Name: "Beta", NSHosts: []string{"ns1.beta.net"},
			OwnerDNSSEC: true, DSChannel: channel.Email, EmailAuth: registrar.EmailAuthNone,
		}),
		w.reg(registrar.Policy{
			ID: "r3", Name: "Gamma", NSHosts: []string{"ns1.gamma.net"},
		}),
	}
	obs := probe.New(w.env).RunAll(context.Background(), regs)
	if len(obs) != 3 {
		t.Fatalf("observations: %d", len(obs))
	}
	s := probe.Summarize(obs)
	if s.Probed != 3 || s.HostedSupport != 1 || s.OwnerSupport != 2 {
		t.Errorf("summary: %+v", s)
	}
	if s.ValidateDS != 1 || s.NoValidateDS != 1 {
		t.Errorf("validation tallies: %+v", s)
	}
	if s.ForgedEmailOK != 1 || s.EmailTested != 1 {
		t.Errorf("email tallies: %+v", s)
	}
	table2 := probe.RenderTable2(obs, map[string]int{"Alpha": 12345})
	if !strings.Contains(table2, "Alpha") || !strings.Contains(table2, "12345") {
		t.Errorf("table2:\n%s", table2)
	}
	table3 := probe.RenderTable3(obs, nil)
	if !strings.Contains(table3, "Gamma") {
		t.Errorf("table3:\n%s", table3)
	}
	rows := probe.Survey(regs, w.byID, []string{"com", "se"})
	if rows[0].PerTLD["com"] != "Alpha" || rows[0].PerTLD["se"] != "no support" {
		t.Errorf("survey: %+v", rows[0])
	}
	t4 := probe.RenderTable4(rows, []string{"com", "se"})
	if !strings.Contains(t4, "no support") {
		t.Errorf("table4:\n%s", t4)
	}
}

func TestProbeResellerChain(t *testing.T) {
	w := newWorld(t)
	partner := w.reg(registrar.Policy{
		ID: "bigp", Name: "BigPartner", NSHosts: []string{"ns1.bigp.net"},
	})
	reseller := w.reg(registrar.Policy{
		ID: "shop", Name: "Shop", NSHosts: []string{"ns1.shop.net"},
		HostedDNSSEC: registrar.SupportDefault,
		OwnerDNSSEC:  true, DSChannel: channel.Web,
		Roles: map[string]registrar.Role{"com": {Kind: registrar.RoleReseller, Partner: "bigp"}},
	})
	reseller.SetPartner("com", partner)
	obs, err := probe.New(w.env).Run(context.Background(), reseller)
	if err != nil {
		t.Fatal(err)
	}
	if obs.HostedDeployment != dnssec.DeploymentFull {
		t.Errorf("reseller hosted deployment: %v", obs.HostedDeployment)
	}
	if !obs.OwnerSupported || obs.OwnerDeployment != dnssec.DeploymentFull {
		t.Errorf("reseller owner flow: %+v", obs)
	}
}
