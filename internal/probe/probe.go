// Package probe implements the paper's hands-on registrar methodology
// (section 5.1): buy a domain from a registrar, try to deploy DNSSEC with
// the registrar as DNS operator, verify the published chain, switch to an
// owner-run nameserver, convey a DS record through whatever channel the
// registrar offers, then stress the channel — upload a DS that matches no
// served key to test validation, and send the DS from a forged email
// address to test authentication.
//
// Every cell of the resulting Table 2/3 rows is an observed behaviour: the
// probe never inspects a registrar's policy configuration, only the effects
// of its actions as seen through the registry and live DNS queries.
package probe

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"securepki.org/registrarsec/internal/channel"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registrar"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/resolver"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Env gives the probe its view of the world: the network to host its own
// nameserver on, the registries to read delegations from, and a validating
// resolver anchor.
type Env struct {
	Net        *dnsserver.MemNet
	Registries map[string]*registry.Registry
	Anchor     []*dnswire.DS
	Clock      func() simtime.Day
	// AccountEmail is the identity the probe registers with (defaults to
	// probe@securepki.org).
	AccountEmail string
}

func (e *Env) email() string {
	if e.AccountEmail == "" {
		return "probe@securepki.org"
	}
	return e.AccountEmail
}

func (e *Env) now() time.Time {
	if e.Clock == nil {
		return simtime.End.Time()
	}
	return e.Clock().Time()
}

// TriState is an observation that may be untestable.
type TriState int

const (
	// Untested: the behaviour could not be exercised.
	Untested TriState = iota
	// ObservedYes and ObservedNo are test outcomes.
	ObservedYes
	ObservedNo
)

// String renders the tri-state for table output.
func (t TriState) String() string {
	switch t {
	case ObservedYes:
		return "yes"
	case ObservedNo:
		return "no"
	}
	return "-"
}

// Observation is one registrar's probe result: the raw material of a
// Table 2 / Table 3 row.
type Observation struct {
	Registrar string
	TLD       string

	// Registrar-as-DNS-operator findings.
	HostedSigned     bool              // some path produced a signed hosted zone
	HostedByDefault  bool              // signed with no customer action on the default plan
	HostedPlanGated  bool              // signed by default only on a non-default plan
	HostedNeededFee  bool              // payment was demanded
	HostedDeployment dnssec.Deployment // verified through the validating resolver
	HostedUploadsDS  bool              // the DS actually reached the registry

	// Owner-as-DNS-operator findings.
	OwnerSupported  bool
	ChannelUsed     channel.Kind
	AcceptsDNSKEY   bool
	FetchesDNSKEY   bool
	OwnerDeployment dnssec.Deployment

	// Security findings.
	RejectsBogusDS     TriState // step 7: mismatched DS upload
	RejectsForgedEmail TriState // step 8: DS from a different email address
	ChatMisapplied     bool
	MisappliedVictim   string

	Notes []string
}

func (o *Observation) note(format string, args ...any) {
	o.Notes = append(o.Notes, fmt.Sprintf(format, args...))
}

// Prober runs the methodology against registrar agents.
type Prober struct {
	Env *Env
}

// probeSeq distinguishes probe domains across probers and runs within one
// process, so repeated campaigns never collide at the registry.
var probeSeq atomic.Int64

func nextSeq() int64 { return probeSeq.Add(1) }

// New creates a prober.
func New(env *Env) *Prober { return &Prober{Env: env} }

// validating builds a validating resolver over the environment.
func (p *Prober) validating() *resolver.Validating {
	return &resolver.Validating{
		R: resolver.New(resolver.Config{
			Roots:    []string{"a.root-servers.net"},
			Exchange: p.Env.Net,
			DNSSEC:   true,
		}),
		Anchor: p.Env.Anchor,
		Now:    p.Env.now,
	}
}

// classify observes a domain's deployment state through registry data and
// live validated DNS — never through agent internals.
func (p *Prober) classify(ctx context.Context, domain, tld string) (dnssec.Deployment, error) {
	reg, ok := p.Env.Registries[tld].Registration(domain)
	if !ok {
		return dnssec.DeploymentNone, fmt.Errorf("probe: %s not registered", domain)
	}
	v := p.validating()
	res, chain, err := v.Lookup(ctx, domain, dnswire.TypeDNSKEY)
	if err != nil {
		return dnssec.DeploymentNone, err
	}
	hasKey := len(res.RRSet(domain, dnswire.TypeDNSKEY).RRs) > 0
	return dnssec.Classify(hasKey, len(reg.DS) > 0, chain.Status == dnssec.Secure), nil
}

// pickTLD chooses the TLD to probe: .com when offered, else the first TLD
// for which a registry exists.
func (p *Prober) pickTLD(r *registrar.Registrar) (string, error) {
	if r.RoleFor("com").Kind != registrar.RoleNone {
		if _, ok := p.Env.Registries["com"]; ok {
			return "com", nil
		}
	}
	for tld := range p.Env.Registries {
		if r.RoleFor(tld).Kind != registrar.RoleNone {
			return tld, nil
		}
	}
	return "", fmt.Errorf("probe: registrar %s offers no TLD we have a registry for", r.Name)
}

// ownNameserver deploys the probe's own signed authoritative nameserver for
// domain and returns its hostname, signer and correct DS.
func (p *Prober) ownNameserver(domain string) (string, *zone.Signer, *dnswire.DS, error) {
	host := fmt.Sprintf("ns1.probe%d.securepki.org", nextSeq())
	z := zone.New(domain)
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.SOA{
		MName: host, RName: "hostmaster." + domain,
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}))
	z.MustAdd(dnswire.NewRR(domain, 3600, &dnswire.NS{Host: host}))
	signer, err := zone.NewSigner(dnswire.AlgED25519, p.Env.now())
	if err != nil {
		return "", nil, nil, err
	}
	signer.Expiration = p.Env.now().AddDate(2, 0, 0)
	if err := signer.Sign(z); err != nil {
		return "", nil, nil, err
	}
	srv := dnsserver.NewAuthoritative()
	srv.AddZone(z)
	p.Env.Net.Register(host, srv)
	dss, err := signer.DSRecords(domain, dnswire.DigestSHA256)
	if err != nil {
		return "", nil, nil, err
	}
	return host, signer, dss[0], nil
}

// Run executes the full eight-step methodology against one registrar.
// ctx bounds every DNS lookup and channel interaction the probe performs —
// both the prober's own classification queries and the registrar-side
// fetch/validation lookups triggered through the channels.
func (p *Prober) Run(ctx context.Context, r *registrar.Registrar) (*Observation, error) {
	obs := &Observation{Registrar: r.Name}
	tld, err := p.pickTLD(r)
	if err != nil {
		return nil, err
	}
	obs.TLD = tld
	account := p.Env.email()
	r.CreateAccount(account)
	domain := fmt.Sprintf("rsprobe%d.%s", nextSeq(), tld)

	// Step 1: purchase with registrar hosting on the default plan.
	if err := r.Purchase(account, domain, ""); err != nil {
		return nil, fmt.Errorf("probe: purchasing %s at %s: %w", domain, r.Name, err)
	}

	// Step 2: is DNSSEC on by default? Otherwise, can we turn it on?
	dep, err := p.classify(ctx, domain, tld)
	if err != nil {
		return nil, err
	}
	if dep == dnssec.DeploymentFull || dep == dnssec.DeploymentPartial {
		obs.HostedSigned = true
		obs.HostedByDefault = true
	} else {
		if err := r.EnableHostedDNSSEC(account, domain, false); err == nil {
			obs.HostedSigned = true
			obs.note("DNSSEC is opt-in for hosted domains")
		} else if errors.Is(err, registrar.ErrPaymentRequired) {
			obs.HostedNeededFee = true
			if err := r.EnableHostedDNSSEC(account, domain, true); err == nil {
				obs.HostedSigned = true
				obs.note("DNSSEC sold as a paid add-on")
			}
		} else if errors.Is(err, registrar.ErrNotSupported) {
			// Maybe another advertised plan includes DNSSEC (NameCheap).
			for _, plan := range r.Plans() {
				if plan == "" {
					continue
				}
				alt := fmt.Sprintf("rsprobe%d.%s", nextSeq(), tld)
				if err := r.Purchase(account, alt, plan); err != nil {
					continue
				}
				if altDep, err := p.classify(ctx, alt, tld); err == nil &&
					(altDep == dnssec.DeploymentFull || altDep == dnssec.DeploymentPartial) {
					obs.HostedSigned = true
					obs.HostedPlanGated = true
					obs.note("DNSSEC by default only on plan %q", plan)
					domain = alt // continue the probe with the signed domain
					break
				}
			}
		}
	}

	// Step 3: verify what was actually deployed.
	if obs.HostedSigned {
		dep, err := p.classify(ctx, domain, tld)
		if err != nil {
			return nil, err
		}
		obs.HostedDeployment = dep
		obs.HostedUploadsDS = dep == dnssec.DeploymentFull || dep == dnssec.DeploymentBroken
		if dep == dnssec.DeploymentPartial {
			obs.note("hosted zone signed but DS never uploaded (partial deployment)")
		}
	}

	// Step 4: switch to our own nameserver, correctly signed.
	host, signer, goodDS, err := p.ownNameserver(domain)
	if err != nil {
		return nil, err
	}
	if err := r.UseExternalNameservers(account, domain, []string{host}); err != nil {
		obs.note("cannot switch to external nameservers: %v", err)
		return obs, nil
	}

	// Steps 5-6: convey the DS through each channel until one works, then
	// verify end to end.
	bogus := &dnswire.DS{
		KeyTag: goodDS.KeyTag + 1, Algorithm: goodDS.Algorithm,
		DigestType: goodDS.DigestType, Digest: make([]byte, len(goodDS.Digest)),
	}
	type attempt struct {
		kind   channel.Kind
		good   func() error
		bogus  func() error // nil if the channel cannot carry a bogus DS
		forged func() error // nil unless the channel is email
	}
	acct := r.CreateAccount(account) // fetch existing for the security code
	attempts := []attempt{
		{
			kind:  channel.Web,
			good:  func() error { return r.SubmitDSWeb(ctx, account, domain, goodDS) },
			bogus: func() error { return r.SubmitDSWeb(ctx, account, domain, bogus) },
		},
		{
			kind: channel.Email,
			good: func() error {
				return r.HandleSupportEmail(ctx, channel.EmailMessage{
					From: account, Subject: domain,
					Body:     channel.FormatDS(domain, goodDS),
					AuthCode: acct.SecurityCode,
				})
			},
			bogus: func() error {
				return r.HandleSupportEmail(ctx, channel.EmailMessage{
					From: account, Subject: domain,
					Body:     channel.FormatDS(domain, bogus),
					AuthCode: acct.SecurityCode,
				})
			},
			forged: func() error {
				// Step 8: same payload, different sender, no code — the
				// paper's forged-email test.
				return r.HandleSupportEmail(ctx, channel.EmailMessage{
					From: "someone-else@attacker.example", Subject: domain,
					Body: channel.FormatDS(domain, goodDS),
				})
			},
		},
		{
			kind: channel.Ticket,
			good: func() error {
				return r.HandleTicket(ctx, channel.TicketMessage{
					AccountEmail: account, Domain: domain,
					Body: "please install my DS:\n" + channel.FormatDS(domain, goodDS),
				})
			},
			bogus: func() error {
				return r.HandleTicket(ctx, channel.TicketMessage{
					AccountEmail: account, Domain: domain,
					Body: channel.FormatDS(domain, bogus),
				})
			},
		},
		{
			kind: channel.Chat,
			good: func() error {
				out, err := r.ChatUploadDS(ctx, account, domain, goodDS)
				if err == nil && out.Misapplied {
					obs.ChatMisapplied = true
					obs.MisappliedVictim = out.AppliedDomain
					obs.note("chat agent installed our DS on %s", out.AppliedDomain)
					return fmt.Errorf("probe: DS applied to wrong domain")
				}
				return err
			},
			bogus: func() error {
				out, err := r.ChatUploadDS(ctx, account, domain, bogus)
				if err == nil && out.Misapplied {
					return fmt.Errorf("probe: bogus DS applied to wrong domain")
				}
				return err
			},
		},
	}
	var used *attempt
	for i := range attempts {
		if err := attempts[i].good(); err == nil {
			used = &attempts[i]
			obs.ChannelUsed = attempts[i].kind
			break
		}
	}
	// Registrar-side alternatives to uploading a DS.
	if used == nil {
		if err := r.SubmitDNSKEYWeb(ctx, account, domain, signer.KSK.DNSKEY()); err == nil {
			obs.AcceptsDNSKEY = true
			obs.ChannelUsed = channel.Web
			obs.note("accepts DNSKEY uploads and derives the DS itself")
		} else if err := r.RequestDSFetch(ctx, account, domain); err == nil {
			obs.FetchesDNSKEY = true
			obs.ChannelUsed = channel.Web
			obs.note("fetches our DNSKEY and generates the DS itself")
		}
	}
	obs.OwnerSupported = used != nil || obs.AcceptsDNSKEY || obs.FetchesDNSKEY
	if !obs.OwnerSupported {
		obs.note("no way to convey a DS record; owner-operated DNSSEC impossible")
		return obs, nil
	}
	dep, err = p.classify(ctx, domain, tld)
	if err != nil {
		return nil, err
	}
	obs.OwnerDeployment = dep

	// Step 7: upload a DS matching nothing we serve.
	if used != nil && used.bogus != nil {
		if err := used.bogus(); err == nil {
			obs.RejectsBogusDS = ObservedNo
			obs.note("accepted a DS record that matches no served DNSKEY")
			// Repair, as the authors did for their own domains.
			_ = used.good()
		} else {
			obs.RejectsBogusDS = ObservedYes
		}
	} else if obs.FetchesDNSKEY {
		// The fetch flow cannot carry a bogus DS by construction.
		obs.RejectsBogusDS = ObservedYes
		obs.note("DS derived registrar-side; bogus upload impossible")
	}

	// Step 8: forged-sender email.
	if used != nil && used.forged != nil {
		if err := used.forged(); err == nil {
			obs.RejectsForgedEmail = ObservedNo
			obs.note("accepted a DS from an address that never registered the domain")
		} else {
			obs.RejectsForgedEmail = ObservedYes
		}
	}
	return obs, nil
}

// RunAll probes each registrar, collecting observations; individual
// failures are recorded as notes rather than aborting the campaign.
func (p *Prober) RunAll(ctx context.Context, regs []*registrar.Registrar) []*Observation {
	out := make([]*Observation, 0, len(regs))
	for _, r := range regs {
		obs, err := p.Run(ctx, r)
		if err != nil {
			obs = &Observation{Registrar: r.Name}
			obs.note("probe failed: %v", err)
		}
		out = append(out, obs)
	}
	return out
}
