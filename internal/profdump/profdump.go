// Package profdump wires the standard -cpuprofile/-memprofile flags into
// the command-line tools: one call starts CPU profiling, the returned stop
// function flushes both profiles. Keeping it in one place guarantees every
// command flushes profiles on every exit path (the tools return an exit
// code from run() instead of calling os.Exit mid-flight for exactly this
// reason).
package profdump

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty. The returned stop
// function ends the CPU profile and, when memPath is non-empty, writes a
// heap profile (after a GC, so it reflects live objects). stop is safe to
// call when both paths are empty; failures while writing the heap profile
// are reported to stderr rather than lost.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profdump: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profdump: starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profdump: closing %s: %v\n", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profdump: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profdump: writing heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profdump: closing %s: %v\n", memPath, err)
			}
		}
	}, nil
}
