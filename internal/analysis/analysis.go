// Package analysis computes the paper's measurements from dataset
// snapshots: per-operator cumulative distributions (Figure 3), deployment
// time series (Figures 4-8), and the per-TLD dataset overview (Table 1).
package analysis

import (
	"sort"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/simtime"
)

// Filter selects records for an analysis.
type Filter func(*dataset.Record) bool

// All accepts every record.
func All(*dataset.Record) bool { return true }

// Measured selects records that carry a real observation (not a sweep
// failure placeholder).
func Measured(r *dataset.Record) bool { return r.Measured() }

// PartiallyDeployed selects domains with DNSKEYs but no DS.
func PartiallyDeployed(r *dataset.Record) bool {
	return r.Deployment() == dnssec.DeploymentPartial
}

// FullyDeployed selects domains with a complete, matching chain.
func FullyDeployed(r *dataset.Record) bool {
	return r.Deployment() == dnssec.DeploymentFull
}

// WithDNSKEY selects domains publishing at least one DNSKEY.
func WithDNSKEY(r *dataset.Record) bool { return r.HasDNSKEY }

// InTLD restricts to one TLD.
func InTLD(tld string) Filter {
	return func(r *dataset.Record) bool { return r.TLD == tld }
}

// ByOperator restricts to one grouped DNS operator.
func ByOperator(op string) Filter {
	return func(r *dataset.Record) bool { return r.Operator == op }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(r *dataset.Record) bool {
		for _, f := range fs {
			if !f(r) {
				return false
			}
		}
		return true
	}
}

// OperatorCount is one operator's domain count under some filter.
type OperatorCount struct {
	Operator string
	Count    int
}

// CountByOperator tallies matching domains per operator, descending.
func CountByOperator(snap *dataset.Snapshot, f Filter) []OperatorCount {
	counts := make(map[string]int)
	for i := range snap.Records {
		r := &snap.Records[i]
		if r.Failed || !f(r) {
			continue
		}
		counts[r.Operator]++
	}
	out := make([]OperatorCount, 0, len(counts))
	for op, n := range counts {
		out = append(out, OperatorCount{Operator: op, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Operator < out[j].Operator
	})
	return out
}

// CDFPoint is one step of the operator-coverage CDF of Figure 3: after the
// top Rank operators, CumFrac of the matching domains are covered.
type CDFPoint struct {
	Rank     int
	Operator string
	Count    int
	CumFrac  float64
}

// OperatorCDF computes the cumulative distribution of domains over
// operators ranked by size — the exact construction of Figure 3.
func OperatorCDF(snap *dataset.Snapshot, f Filter) []CDFPoint {
	counts := CountByOperator(snap, f)
	total := 0
	for _, c := range counts {
		total += c.Count
	}
	if total == 0 {
		return nil
	}
	out := make([]CDFPoint, len(counts))
	cum := 0
	for i, c := range counts {
		cum += c.Count
		out[i] = CDFPoint{
			Rank: i + 1, Operator: c.Operator, Count: c.Count,
			CumFrac: float64(cum) / float64(total),
		}
	}
	return out
}

// OperatorsToCover returns how many top operators are needed to cover frac
// of the matching domains (e.g. the paper's "26 registrars cover 50% of all
// domains; 2 cover 50% of fully deployed ones").
func OperatorsToCover(cdf []CDFPoint, frac float64) int {
	for _, p := range cdf {
		if p.CumFrac >= frac {
			return p.Rank
		}
	}
	return len(cdf)
}

// CoverageOfTop returns the fraction covered by the top n operators.
func CoverageOfTop(cdf []CDFPoint, n int) float64 {
	if len(cdf) == 0 {
		return 0
	}
	if n > len(cdf) {
		n = len(cdf)
	}
	if n <= 0 {
		return 0
	}
	return cdf[n-1].CumFrac
}

// TopOverlap counts operators appearing in the top n of both CDFs — the
// paper observes only three registrars overlap between the top-25 overall
// and the top-25 fully deployed.
func TopOverlap(a, b []CDFPoint, n int) int {
	set := make(map[string]bool, n)
	for i := 0; i < n && i < len(a); i++ {
		set[a[i].Operator] = true
	}
	overlap := 0
	for i := 0; i < n && i < len(b); i++ {
		if set[b[i].Operator] {
			overlap++
		}
	}
	return overlap
}

// SeriesPoint is one day of a deployment time series.
type SeriesPoint struct {
	Day simtime.Day
	// Total matching domains (the filter's population).
	Total int
	// WithDNSKEY / WithDS / Full are deployment-state counts within it.
	WithDNSKEY int
	WithDS     int
	Full       int
}

// PctDNSKEY is the percentage of the population with DNSKEYs.
func (p SeriesPoint) PctDNSKEY() float64 { return pct(p.WithDNSKEY, p.Total) }

// PctFull is the percentage fully deployed (DNSKEY + matching DS).
func (p SeriesPoint) PctFull() float64 { return pct(p.Full, p.Total) }

// PctDSGivenDNSKEY is the share of DNSKEY-publishing domains that also have
// a DS — the complement of the paper's Cloudflare 39.3% gap.
func (p SeriesPoint) PctDSGivenDNSKEY() float64 { return pct(p.WithDS, p.WithDNSKEY) }

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Series extracts a time series from the store for records matching f.
func Series(store *dataset.Store, f Filter) []SeriesPoint {
	var out []SeriesPoint
	for _, day := range store.Days() {
		snap := store.Get(day)
		p := SeriesPoint{Day: day}
		for i := range snap.Records {
			r := &snap.Records[i]
			if r.Failed || !f(r) {
				continue
			}
			p.Total++
			if r.HasDNSKEY {
				p.WithDNSKEY++
			}
			if r.HasDS {
				p.WithDS++
			}
			if r.Deployment() == dnssec.DeploymentFull {
				p.Full++
			}
		}
		out = append(out, p)
	}
	return out
}

// DSGapPct computes the share of DNSKEY-publishing domains (under the
// filter) that have no DS at the registry — the paper's headline "nearly
// 30% of .com/.net/.org domains do not properly upload DS records even
// though they have DNSKEYs and RRSIGs" (section 1).
func DSGapPct(snap *dataset.Snapshot, f Filter) float64 {
	keyed, gap := 0, 0
	for i := range snap.Records {
		r := &snap.Records[i]
		if r.Failed || !f(r) || !r.HasDNSKEY {
			continue
		}
		keyed++
		if !r.HasDS {
			gap++
		}
	}
	return pct(gap, keyed)
}

// TLDOverview is one Table 1 row.
type TLDOverview struct {
	TLD        string
	Domains    int
	PctDNSKEY  float64
	PctFull    float64
	PctPartial float64
}

// Overview computes the Table 1 dataset summary from a snapshot.
func Overview(snap *dataset.Snapshot, tlds []string) []TLDOverview {
	byTLD := make(map[string]*TLDOverview)
	order := make([]string, 0, len(tlds))
	for _, tld := range tlds {
		byTLD[tld] = &TLDOverview{TLD: tld}
		order = append(order, tld)
	}
	counts := map[string][4]int{} // total, dnskey, full, partial
	for i := range snap.Records {
		r := &snap.Records[i]
		if r.Failed {
			continue
		}
		c := counts[r.TLD]
		c[0]++
		if r.HasDNSKEY {
			c[1]++
		}
		switch r.Deployment() {
		case dnssec.DeploymentFull:
			c[2]++
		case dnssec.DeploymentPartial:
			c[3]++
		}
		counts[r.TLD] = c
	}
	var out []TLDOverview
	for _, tld := range order {
		c := counts[tld]
		o := byTLD[tld]
		o.Domains = c[0]
		o.PctDNSKEY = pct(c[1], c[0])
		o.PctFull = pct(c[2], c[0])
		o.PctPartial = pct(c[3], c[0])
		out = append(out, *o)
	}
	return out
}
