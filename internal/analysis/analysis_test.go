package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"securepki.org/registrarsec/internal/dataset"
	"securepki.org/registrarsec/internal/simtime"
)

// mkSnap builds a snapshot with count domains per operator spec.
type opSpec struct {
	operator string
	tld      string
	none     int
	partial  int
	full     int
	broken   int
}

func mkSnap(day simtime.Day, specs []opSpec) *dataset.Snapshot {
	snap := &dataset.Snapshot{Day: day}
	add := func(op, tld string, n int, key, ds, valid bool) {
		for i := 0; i < n; i++ {
			snap.Records = append(snap.Records, dataset.Record{
				Domain: "d.tld", TLD: tld, Operator: op,
				HasDNSKEY: key, HasDS: ds, ChainValid: valid,
			})
		}
	}
	for _, s := range specs {
		add(s.operator, s.tld, s.none, false, false, false)
		add(s.operator, s.tld, s.partial, true, false, false)
		add(s.operator, s.tld, s.full, true, true, true)
		add(s.operator, s.tld, s.broken, true, true, false)
	}
	return snap
}

func TestCountByOperatorAndCDF(t *testing.T) {
	snap := mkSnap(0, []opSpec{
		{operator: "big.net", tld: "com", none: 50},
		{operator: "mid.net", tld: "com", none: 20, full: 10},
		{operator: "dnssec.net", tld: "com", full: 15},
		{operator: "tiny.net", tld: "com", none: 5},
	})
	counts := CountByOperator(snap, All)
	if counts[0].Operator != "big.net" || counts[0].Count != 50 {
		t.Errorf("top operator: %+v", counts[0])
	}
	cdf := OperatorCDF(snap, All)
	if len(cdf) != 4 {
		t.Fatalf("cdf size %d", len(cdf))
	}
	if math.Abs(cdf[len(cdf)-1].CumFrac-1.0) > 1e-12 {
		t.Errorf("CDF does not end at 1: %v", cdf[len(cdf)-1].CumFrac)
	}
	// 50/100 at rank 1 → covering 50% needs 1 operator.
	if n := OperatorsToCover(cdf, 0.5); n != 1 {
		t.Errorf("OperatorsToCover(all, 0.5) = %d", n)
	}
	// Fully deployed: dnssec.net 15, mid.net 10 → 50% needs 1.
	fullCDF := OperatorCDF(snap, FullyDeployed)
	if n := OperatorsToCover(fullCDF, 0.5); n != 1 {
		t.Errorf("OperatorsToCover(full, 0.5) = %d", n)
	}
	if fullCDF[0].Operator != "dnssec.net" {
		t.Errorf("top full operator: %v", fullCDF[0].Operator)
	}
	// Top-2: big.net (50) + mid.net (30 incl. its 10 full) = 80 of 100.
	if got := CoverageOfTop(cdf, 2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("CoverageOfTop(2) = %v", got)
	}
	if got := TopOverlap(cdf, fullCDF, 2); got != 1 { // mid.net appears in both top-2
		t.Errorf("TopOverlap = %d", got)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		snap := &dataset.Snapshot{}
		for i, n := range raw {
			for j := 0; j < int(n%16); j++ {
				snap.Records = append(snap.Records, dataset.Record{
					Operator: string(rune('a' + i%20)), TLD: "com",
				})
			}
		}
		cdf := OperatorCDF(snap, All)
		prevFrac := 0.0
		prevCount := 1 << 30
		for _, p := range cdf {
			if p.CumFrac < prevFrac || p.CumFrac > 1+1e-9 {
				return false
			}
			if p.Count > prevCount {
				return false // counts must be non-increasing by rank
			}
			prevFrac = p.CumFrac
			prevCount = p.Count
		}
		return len(cdf) == 0 || math.Abs(cdf[len(cdf)-1].CumFrac-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	store := dataset.NewStore()
	store.Add(mkSnap(simtime.Date(2016, 1, 1), []opSpec{
		{operator: "ovh.net", tld: "com", none: 80, full: 20},
	}))
	store.Add(mkSnap(simtime.Date(2016, 6, 1), []opSpec{
		{operator: "ovh.net", tld: "com", none: 70, full: 26, partial: 4},
	}))
	series := Series(store, ByOperator("ovh.net"))
	if len(series) != 2 {
		t.Fatalf("series length %d", len(series))
	}
	if series[0].Total != 100 || series[0].Full != 20 {
		t.Errorf("first point: %+v", series[0])
	}
	if math.Abs(series[0].PctFull()-20) > 1e-9 {
		t.Errorf("PctFull: %v", series[0].PctFull())
	}
	if math.Abs(series[1].PctDNSKEY()-30) > 1e-9 {
		t.Errorf("PctDNSKEY: %v", series[1].PctDNSKEY())
	}
	// DS-given-DNSKEY: 26 of 30.
	if math.Abs(series[1].PctDSGivenDNSKEY()-100*26.0/30.0) > 1e-9 {
		t.Errorf("PctDSGivenDNSKEY: %v", series[1].PctDSGivenDNSKEY())
	}
	// Filters compose.
	empty := Series(store, And(ByOperator("ovh.net"), InTLD("org")))
	if empty[0].Total != 0 {
		t.Errorf("And filter: %+v", empty[0])
	}
}

func TestOverview(t *testing.T) {
	snap := mkSnap(simtime.End, []opSpec{
		{operator: "a.net", tld: "com", none: 970, partial: 10, full: 18, broken: 2},
		{operator: "b.nl", tld: "nl", none: 50, full: 50},
	})
	rows := Overview(snap, []string{"com", "nl", "se"})
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	com := rows[0]
	if com.Domains != 1000 || math.Abs(com.PctDNSKEY-3.0) > 1e-9 {
		t.Errorf("com row: %+v", com)
	}
	if math.Abs(com.PctFull-1.8) > 1e-9 || math.Abs(com.PctPartial-1.0) > 1e-9 {
		t.Errorf("com pcts: %+v", com)
	}
	nl := rows[1]
	if math.Abs(nl.PctDNSKEY-50) > 1e-9 {
		t.Errorf("nl row: %+v", nl)
	}
	if rows[2].Domains != 0 {
		t.Errorf("se row: %+v", rows[2])
	}
}

func TestEmptyInputs(t *testing.T) {
	if cdf := OperatorCDF(&dataset.Snapshot{}, All); cdf != nil {
		t.Error("CDF of empty snapshot should be nil")
	}
	if n := OperatorsToCover(nil, 0.5); n != 0 {
		t.Errorf("OperatorsToCover(nil) = %d", n)
	}
	if CoverageOfTop(nil, 3) != 0 {
		t.Error("CoverageOfTop(nil)")
	}
}
