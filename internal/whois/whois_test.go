package whois

import (
	"errors"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Domain:      "example.com",
		Registrar:   "BigPartner Inc",
		Reseller:    "SmallShop",
		NameServers: []string{"ns1.small.net", "ns2.small.net"},
	}
}

func TestSchemasRender(t *testing.T) {
	for i := range Schemas {
		text := Schemas[i](sampleRecord())
		if text == "" {
			t.Errorf("schema %d produced nothing", i)
		}
	}
}

func TestParseLabelledSchemas(t *testing.T) {
	for i := 0; i < 2; i++ {
		text := Schemas[i](sampleRecord())
		p, err := Parse(text)
		if err != nil {
			t.Fatalf("schema %d: %v", i, err)
		}
		if p.Registrar != "BigPartner Inc" {
			t.Errorf("schema %d registrar: %q", i, p.Registrar)
		}
		if len(p.NameServers) != 2 || p.NameServers[0] != "ns1.small.net" {
			t.Errorf("schema %d nameservers: %v", i, p.NameServers)
		}
	}
}

func TestParseProseSchemaFails(t *testing.T) {
	text := Schemas[2](sampleRecord())
	if _, err := Parse(text); err == nil {
		t.Error("prose schema parsed — the methodology point is that it should not")
	}
}

func TestWHOISConflatesResellers(t *testing.T) {
	// The WHOIS registrar field names the accredited partner, hiding the
	// reseller — while the NS records reveal the actual DNS operator.
	p, err := Parse(Schemas[0](sampleRecord()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Registrar == "SmallShop" {
		t.Error("WHOIS exposed the reseller; expected conflation")
	}
	if p.NameServers[0] != "ns1.small.net" {
		t.Error("NS-based grouping lost the operator")
	}
}

func TestRateLimit(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	s := NewServer(0, 1, now) // 1 qps, burst 2
	s.Add(sampleRecord())
	for i := 0; i < 2; i++ {
		if _, err := s.Query("example.com"); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, err := s.Query("example.com"); !errors.Is(err, ErrRateLimited) {
		t.Errorf("burst exceeded: %v", err)
	}
	// Tokens refill with time.
	clock = clock.Add(3 * time.Second)
	if _, err := s.Query("example.com"); err != nil {
		t.Errorf("after refill: %v", err)
	}
	if _, err := s.Query("ghost.com"); !errors.Is(err, ErrNoRecord) {
		t.Errorf("missing record: %v", err)
	}
}
