// Package whois models the WHOIS ecosystem the paper deliberately avoids
// (section 4.2): per-registrar servers with inconsistent schemas, heavy
// rate limiting, and reseller records served by the partner registrar —
// which would conflate reseller and registrar behaviour. A best-effort
// parser demonstrates why NS-based operator grouping is the sounder
// methodology; the grouping-rule ablation benchmark quantifies it.
package whois

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Errors returned by lookups.
var (
	ErrRateLimited = errors.New("whois: query rate exceeded")
	ErrNoRecord    = errors.New("whois: no match for domain")
)

// Record is the ground truth behind a WHOIS entry.
type Record struct {
	Domain    string
	Registrar string
	// Reseller, when set, is hidden by schemas that report only the
	// accredited partner — the conflation the paper warns about.
	Reseller    string
	NameServers []string
}

// Schema renders a record in one registrar's house format.
type Schema func(Record) string

// Schemas used in the wild vary wildly; three representative ones.
var Schemas = []Schema{
	// ICANN-ish key: value.
	func(r Record) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "Domain Name: %s\n", strings.ToUpper(r.Domain))
		fmt.Fprintf(&sb, "Registrar: %s\n", r.Registrar)
		for _, ns := range r.NameServers {
			fmt.Fprintf(&sb, "Name Server: %s\n", strings.ToUpper(ns))
		}
		return sb.String()
	},
	// Terse European style with different labels.
	func(r Record) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "domain:   %s\n", r.Domain)
		fmt.Fprintf(&sb, "registrar:%s\n", r.Registrar)
		for _, ns := range r.NameServers {
			fmt.Fprintf(&sb, "nserver:  %s\n", ns)
		}
		return sb.String()
	},
	// Free-prose style that defeats naive parsers.
	func(r Record) string {
		return fmt.Sprintf("%s is registered through %s.\nDNS is handled by %s.\n",
			r.Domain, r.Registrar, strings.Join(r.NameServers, " and "))
	},
}

// Server is one registrar's WHOIS endpoint with a token-bucket rate limit.
type Server struct {
	schema Schema

	mu      sync.Mutex
	records map[string]Record
	tokens  float64
	rate    float64 // tokens per second
	burst   float64
	last    time.Time
	now     func() time.Time
}

// NewServer creates a WHOIS server using the given schema index and a
// queries-per-second limit.
func NewServer(schemaIdx int, qps float64, now func() time.Time) *Server {
	if now == nil {
		now = time.Now
	}
	return &Server{
		schema:  Schemas[schemaIdx%len(Schemas)],
		records: make(map[string]Record),
		rate:    qps,
		burst:   qps * 2,
		tokens:  qps * 2,
		now:     now,
	}
}

// Add registers a record.
func (s *Server) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[strings.ToLower(r.Domain)] = r
}

// Query returns the rendered WHOIS text for a domain, enforcing the rate
// limit the paper complains about.
func (s *Server) Query(domain string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if !s.last.IsZero() {
		s.tokens += now.Sub(s.last).Seconds() * s.rate
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
	}
	s.last = now
	if s.tokens < 1 {
		return "", ErrRateLimited
	}
	s.tokens--
	r, ok := s.records[strings.ToLower(domain)]
	if !ok {
		return "", ErrNoRecord
	}
	return s.schema(r), nil
}

// Parsed is the best-effort extraction from WHOIS text.
type Parsed struct {
	Registrar   string
	NameServers []string
}

// Parse extracts registrar and nameservers from arbitrary WHOIS output. It
// understands the common labelled formats; prose formats defeat it (by
// design — that is the measurement point).
func Parse(text string) (*Parsed, error) {
	p := &Parsed{}
	for _, line := range strings.Split(text, "\n") {
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "registrar:"):
			p.Registrar = strings.TrimSpace(line[len("registrar:"):])
		case strings.HasPrefix(lower, "name server:"):
			p.NameServers = append(p.NameServers, strings.ToLower(strings.TrimSpace(line[len("name server:"):])))
		case strings.HasPrefix(lower, "nserver:"):
			p.NameServers = append(p.NameServers, strings.ToLower(strings.TrimSpace(line[len("nserver:"):])))
		}
	}
	if p.Registrar == "" && len(p.NameServers) == 0 {
		return nil, fmt.Errorf("whois: unparseable record")
	}
	return p, nil
}
