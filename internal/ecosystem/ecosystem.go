// Package ecosystem assembles the live DNS substrate the study runs on: a
// signed root zone, one registry.Registry per TLD (each serving its signed
// TLD zone on the in-memory network), a shared simulation clock, and
// validating-resolver helpers anchored at the root key.
package ecosystem

import (
	"sync"
	"time"

	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/registry"
	"securepki.org/registrarsec/internal/resolver"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Clock is a mutable simulation clock shared by every agent in an
// ecosystem.
type Clock struct {
	mu  sync.RWMutex
	day simtime.Day
}

// NewClock starts a clock at day.
func NewClock(day simtime.Day) *Clock { return &Clock{day: day} }

// Day returns the current day.
func (c *Clock) Day() simtime.Day {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.day
}

// Set moves the clock.
func (c *Clock) Set(day simtime.Day) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.day = day
}

// Advance moves the clock forward by n days and returns the new day.
func (c *Clock) Advance(n simtime.Day) simtime.Day {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.day += n
	return c.day
}

// Func adapts the clock to the func() simtime.Day dependency used across
// the module.
func (c *Clock) Func() func() simtime.Day { return c.Day }

// TimeFunc adapts the clock to wall-clock time.
func (c *Clock) TimeFunc() func() time.Time {
	return func() time.Time { return c.Day().Time() }
}

// RootAddr is the address of the root nameserver on the in-memory network.
const RootAddr = "a.root-servers.net"

// TLDServerAddr returns the network address of a TLD's authoritative
// server ("ns1.<tld>-registry.example").
func TLDServerAddr(tld string) string { return "ns1." + tld + "-registry.example" }

// Config configures New.
type Config struct {
	// Start is the initial simulation day (default simtime.GTLDStart).
	Start simtime.Day
	// TLDs lists the registries to create. Default: the paper's five.
	TLDs []string
	// Incentives maps TLD → incentive program (the .nl/.se discounts).
	Incentives map[string]*registry.Incentive
	// CDSTLDs marks registries that poll CDS/CDNSKEY (".cz"-style).
	CDSTLDs map[string]bool
}

// Ecosystem is a live root + registries world on an in-memory network.
// It is the substrate on which registrar agents and the full paper
// simulation run.
type Ecosystem struct {
	Net        *dnsserver.MemNet
	Clock      *Clock
	Registries map[string]*registry.Registry
	Anchor     []*dnswire.DS

	RootZone   *zone.Zone
	RootSigner *zone.Signer
}

// New builds the world.
func New(cfg Config) (*Ecosystem, error) {
	if cfg.Start == 0 {
		cfg.Start = simtime.GTLDStart
	}
	if len(cfg.TLDs) == 0 {
		cfg.TLDs = []string{"com", "net", "org", "nl", "se"}
	}
	e := &Ecosystem{
		Net:        dnsserver.NewMemNet(),
		Clock:      NewClock(cfg.Start),
		Registries: make(map[string]*registry.Registry),
	}
	e.Net.Strict = true

	e.RootZone = zone.New("")
	e.RootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.SOA{
		MName: RootAddr, RName: "nstld.verisign-grs.com",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}))
	e.RootZone.MustAdd(dnswire.NewRR("", 86400, &dnswire.NS{Host: RootAddr}))
	rootSigner, err := zone.NewSigner(dnswire.AlgED25519, cfg.Start.Time())
	if err != nil {
		return nil, err
	}
	rootSigner.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	e.RootSigner = rootSigner

	for _, tld := range cfg.TLDs {
		reg, err := registry.New(registry.Config{
			TLD:         tld,
			NSHost:      TLDServerAddr(tld),
			AcceptsDS:   true,
			SupportsCDS: cfg.CDSTLDs[tld],
			Incentive:   cfg.Incentives[tld],
			Clock:       e.Clock.Day,
		}, e.Net)
		if err != nil {
			return nil, err
		}
		e.Registries[tld] = reg
		e.RootZone.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: TLDServerAddr(tld)}))
		dss, err := reg.DSRecords()
		if err != nil {
			return nil, err
		}
		for _, ds := range dss {
			e.RootZone.MustAdd(dnswire.NewRR(tld, 86400, ds))
		}
	}
	if err := rootSigner.Sign(e.RootZone); err != nil {
		return nil, err
	}
	rootSrv := dnsserver.NewAuthoritative()
	rootSrv.AddZone(e.RootZone)
	e.Net.Register(RootAddr, rootSrv)

	anchor, err := rootSigner.DSRecords("", dnswire.DigestSHA256)
	if err != nil {
		return nil, err
	}
	e.Anchor = anchor
	return e, nil
}

// Resolver builds an iterative resolver over the ecosystem's network.
func (e *Ecosystem) Resolver(dnssecOK bool) *resolver.Resolver {
	return resolver.New(resolver.Config{
		Roots:    []string{RootAddr},
		Exchange: e.Net,
		DNSSEC:   dnssecOK,
	})
}

// Validating builds a validating resolver anchored at the ecosystem root.
func (e *Ecosystem) Validating() *resolver.Validating {
	return &resolver.Validating{
		R:      e.Resolver(true),
		Anchor: e.Anchor,
		Now:    e.Clock.TimeFunc(),
	}
}
