package diagnose_test

import (
	"context"
	"testing"
	"time"

	"securepki.org/registrarsec/internal/diagnose"
	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnstest"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/zone"
)

var testNow = time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)

func newChecker(t *testing.T, h *dnstest.Hierarchy) *diagnose.Checker {
	t.Helper()
	return &diagnose.Checker{
		Exchange:     h.Net,
		ParentServer: dnstest.TLDServerAddr("com"),
		Now:          func() time.Time { return testNow },
	}
}

func hasCode(rep *diagnose.Report, code diagnose.Code) bool {
	for _, f := range rep.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

func TestCheckHealthyDomain(t *testing.T) {
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	// A fully deployed domain with an NSEC chain.
	child, _, err := h.AddDomain("healthy.com", "ns1.op.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := zone.NewSigner(dnswire.AlgED25519, testNow)
	if err != nil {
		t.Fatal(err)
	}
	signer.AddNSEC = true
	if err := signer.Sign(child); err != nil {
		t.Fatal(err)
	}
	tz := h.TLDZone("com")
	dss, _ := signer.DSRecords("healthy.com", dnswire.DigestSHA256)
	for _, ds := range dss {
		tz.MustAdd(dnswire.NewRR("healthy.com", 86400, ds))
	}
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}

	rep, err := newChecker(t, h).Check(context.Background(), "healthy.com")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deployment != dnssec.DeploymentFull {
		t.Errorf("deployment: %v", rep.Deployment)
	}
	if len(rep.Errors()) != 0 {
		t.Errorf("errors on healthy domain: %+v", rep.Errors())
	}
	if !hasCode(rep, diagnose.CodeHealthy) {
		t.Errorf("missing CHAIN_OK: %+v", rep.Findings)
	}
	if hasCode(rep, diagnose.CodeNoDenial) {
		t.Error("NSEC zone flagged for missing denial")
	}
}

func TestCheckMisconfigurations(t *testing.T) {
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct {
		name string
		mode dnstest.DomainMode
	}{
		{"plain.com", dnstest.Unsigned},
		{"partial.com", dnstest.Partial},
		{"full.com", dnstest.Full},
		{"bogus.com", dnstest.BogusDS},
	} {
		if _, _, err := h.AddDomain(d.name, "ns1.op.net", d.mode); err != nil {
			t.Fatal(err)
		}
	}
	c := newChecker(t, h)
	ctx := context.Background()

	cases := []struct {
		domain     string
		deployment dnssec.Deployment
		code       diagnose.Code
		severity   diagnose.Severity
	}{
		{"plain.com", dnssec.DeploymentNone, diagnose.CodeUnsigned, diagnose.Info},
		{"partial.com", dnssec.DeploymentPartial, diagnose.CodePartial, diagnose.Error},
		{"bogus.com", dnssec.DeploymentBroken, diagnose.CodeDSNoMatch, diagnose.Error},
	}
	for _, tc := range cases {
		rep, err := c.Check(ctx, tc.domain)
		if err != nil {
			t.Fatalf("%s: %v", tc.domain, err)
		}
		if rep.Deployment != tc.deployment {
			t.Errorf("%s: deployment %v, want %v", tc.domain, rep.Deployment, tc.deployment)
		}
		if !hasCode(rep, tc.code) {
			t.Errorf("%s: missing %s in %+v", tc.domain, tc.code, rep.Findings)
		}
	}
	// full.com is signed WITHOUT a denial chain: warn.
	rep, err := c.Check(ctx, "full.com")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deployment != dnssec.DeploymentFull {
		t.Errorf("full.com: %v", rep.Deployment)
	}
	if !hasCode(rep, diagnose.CodeNoDenial) {
		t.Errorf("full.com: missing NO_DENIAL_CHAIN warning: %+v", rep.Findings)
	}
	// Unregistered domain.
	rep, err = c.Check(ctx, "ghost.com")
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(rep, diagnose.CodeNoDelegation) {
		t.Errorf("ghost.com: %+v", rep.Findings)
	}
}

func TestCheckExpiredSignature(t *testing.T) {
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	child, _, err := h.AddDomain("stale.com", "ns1.op.net", dnstest.Unsigned)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := zone.NewSigner(dnswire.AlgED25519, testNow)
	if err != nil {
		t.Fatal(err)
	}
	signer.Inception = testNow.AddDate(0, -3, 0)
	signer.Expiration = testNow.AddDate(0, -1, 0)
	if err := signer.Sign(child); err != nil {
		t.Fatal(err)
	}
	tz := h.TLDZone("com")
	dss, _ := signer.DSRecords("stale.com", dnswire.DigestSHA256)
	for _, ds := range dss {
		tz.MustAdd(dnswire.NewRR("stale.com", 86400, ds))
	}
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}
	rep, err := newChecker(t, h).Check(context.Background(), "stale.com")
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(rep, diagnose.CodeSigExpired) {
		t.Errorf("missing RRSIG_EXPIRED: %+v", rep.Findings)
	}
	if rep.Deployment != dnssec.DeploymentBroken {
		t.Errorf("deployment: %v", rep.Deployment)
	}
}

func TestCheckOrphanDS(t *testing.T) {
	h, err := dnstest.NewHierarchy(testNow, "com")
	if err != nil {
		t.Fatal(err)
	}
	// Unsigned zone behind a DS record: the chat-misapply / stale-DS case.
	if _, _, err := h.AddDomain("orphan.com", "ns1.op.net", dnstest.Unsigned); err != nil {
		t.Fatal(err)
	}
	tz := h.TLDZone("com")
	tz.MustAdd(dnswire.NewRR("orphan.com", 86400, &dnswire.DS{
		KeyTag: 1, Algorithm: dnswire.AlgED25519, DigestType: dnswire.DigestSHA256, Digest: make([]byte, 32),
	}))
	if err := h.TLDSigner("com").Sign(tz); err != nil {
		t.Fatal(err)
	}
	rep, err := newChecker(t, h).Check(context.Background(), "orphan.com")
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(rep, diagnose.CodeDSOrphan) {
		t.Errorf("missing DS_WITHOUT_DNSKEY: %+v", rep.Findings)
	}
}
