// Package diagnose implements a DNSViz/DNSSEC-Debugger-style health check
// (the administrator tooling the paper's related work points to): given a
// domain, it pulls the delegation, DS, DNSKEY and RRSIG records through
// live queries and reports every misconfiguration in the chain — missing
// DS (partial deployment), DS matching no key, expired or invalid
// signatures, unsigned RRsets, missing denial-of-existence chains.
//
// The paper's probe uses the same checks to verify what a registrar
// actually deployed; this package packages them for an administrator
// audience (cmd/regsec-check).
package diagnose

import (
	"context"
	"fmt"
	"time"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/exchange"
)

// Severity grades a finding.
type Severity int

const (
	// Info: expected state worth reporting (e.g. "zone is unsigned").
	Info Severity = iota
	// Warning: works today but fragile (e.g. no denial chain).
	Warning
	// Error: validation fails for DNSSEC-aware resolvers.
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "info"
}

// Code identifies a finding class.
type Code string

// Finding codes.
const (
	CodeNoDelegation Code = "NO_DELEGATION"
	CodeUnsigned     Code = "UNSIGNED"
	CodePartial      Code = "PARTIAL_NO_DS"
	CodeDSNoMatch    Code = "DS_MATCHES_NO_KEY"
	CodeDSOrphan     Code = "DS_WITHOUT_DNSKEY"
	CodeKeyUnsigned  Code = "DNSKEY_UNSIGNED"
	CodeSigExpired   Code = "RRSIG_EXPIRED"
	CodeSigNotYet    Code = "RRSIG_NOT_YET_VALID"
	CodeSigInvalid   Code = "RRSIG_INVALID"
	CodeNoDenial     Code = "NO_DENIAL_CHAIN"
	CodeNoSEP        Code = "NO_SEP_KEY"
	CodeHealthy      Code = "CHAIN_OK"
)

// Finding is one diagnostic result.
type Finding struct {
	Severity Severity
	Code     Code
	Message  string
}

// Report is the outcome of a domain check.
type Report struct {
	Domain     string
	Deployment dnssec.Deployment
	Findings   []Finding
}

// Errors returns only the error-severity findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) add(sev Severity, code Code, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Severity: sev, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Checker runs diagnostics through an exchanger.
type Checker struct {
	// Exchange issues queries.
	Exchange exchange.Exchanger
	// ParentServer answers NS/DS queries for the domain (the TLD server).
	ParentServer string
	// Now anchors signature-window checks (time.Now when nil).
	Now func() time.Time

	qid uint16
}

func (c *Checker) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Checker) query(ctx context.Context, server, name string, t dnswire.Type) (*dnswire.Message, error) {
	c.qid++
	q := dnswire.NewQuery(c.qid, name, t)
	q.SetEDNS(4096, true)
	return c.Exchange.Exchange(ctx, server, q)
}

// Check diagnoses one domain.
func (c *Checker) Check(ctx context.Context, domain string) (*Report, error) {
	domain = dnswire.CanonicalName(domain)
	rep := &Report{Domain: domain}

	// 1. Delegation from the parent.
	resp, err := c.query(ctx, c.ParentServer, domain, dnswire.TypeNS)
	if err != nil {
		return nil, fmt.Errorf("diagnose: querying parent: %w", err)
	}
	var nsHosts []string
	for _, section := range [][]*dnswire.RR{resp.Authority, resp.Answers} {
		for _, rr := range section {
			if rr.Type == dnswire.TypeNS && rr.Name == domain {
				nsHosts = append(nsHosts, rr.Data.(*dnswire.NS).Host)
			}
		}
	}
	if len(nsHosts) == 0 {
		rep.add(Error, CodeNoDelegation, "no NS delegation for %s at the parent", domain)
		return rep, nil
	}

	// 2. DS from the parent.
	var dss []*dnswire.DS
	if resp, err := c.query(ctx, c.ParentServer, domain, dnswire.TypeDS); err == nil {
		for _, rr := range resp.Answers {
			if ds, ok := rr.Data.(*dnswire.DS); ok && rr.Name == domain {
				dss = append(dss, ds)
			}
		}
	}

	// 3. DNSKEY + RRSIGs from the child.
	var keys []*dnswire.DNSKEY
	var keyRRs []*dnswire.RR
	var sigs []*dnswire.RRSIG
	for _, host := range nsHosts {
		resp, err := c.query(ctx, host, domain, dnswire.TypeDNSKEY)
		if err != nil || resp.RCode != dnswire.RCodeSuccess {
			continue
		}
		for _, rr := range resp.Answers {
			switch d := rr.Data.(type) {
			case *dnswire.DNSKEY:
				keys = append(keys, d)
				keyRRs = append(keyRRs, rr)
			case *dnswire.RRSIG:
				if d.TypeCovered == dnswire.TypeDNSKEY {
					sigs = append(sigs, d)
				}
			}
		}
		break
	}

	chainValid := c.gradeChain(rep, domain, dss, keys, keyRRs, sigs)
	rep.Deployment = dnssec.Classify(len(keys) > 0, len(dss) > 0, chainValid)

	// 4. Denial-of-existence chain.
	if len(keys) > 0 {
		c.checkDenial(ctx, rep, domain, nsHosts)
	}

	if len(rep.Errors()) == 0 && rep.Deployment == dnssec.DeploymentFull {
		rep.add(Info, CodeHealthy, "chain of trust is complete and valid")
	}
	return rep, nil
}

// gradeChain evaluates the DS↔DNSKEY↔RRSIG linkage and reports whether it
// validates.
func (c *Checker) gradeChain(rep *Report, domain string, dss []*dnswire.DS, keys []*dnswire.DNSKEY, keyRRs []*dnswire.RR, sigs []*dnswire.RRSIG) bool {
	switch {
	case len(keys) == 0 && len(dss) == 0:
		rep.add(Info, CodeUnsigned, "%s is unsigned (no DNSKEY, no DS)", domain)
		return false
	case len(keys) == 0 && len(dss) > 0:
		rep.add(Error, CodeDSOrphan,
			"the parent publishes %d DS record(s) but %s serves no DNSKEY — validating resolvers cannot resolve this domain", len(dss), domain)
		return false
	case len(keys) > 0 && len(dss) == 0:
		rep.add(Error, CodePartial,
			"%s publishes DNSKEYs but no DS exists at the parent: the chain of trust is broken (partial deployment); ask your registrar to install the DS", domain)
	}
	hasSEP := false
	for _, k := range keys {
		if k.IsSEP() {
			hasSEP = true
		}
	}
	if len(keys) > 0 && !hasSEP {
		rep.add(Warning, CodeNoSEP, "no DNSKEY carries the SEP flag; key management tooling may mishandle rollovers")
	}
	if len(dss) > 0 && len(keys) > 0 && !dnssec.MatchAnyDS(domain, dss, keys) {
		rep.add(Error, CodeDSNoMatch,
			"none of the %d DS record(s) matches a served DNSKEY — a mis-uploaded DS; the domain is bogus for validating resolvers", len(dss))
		return false
	}
	if len(keys) > 0 && len(sigs) == 0 {
		rep.add(Error, CodeKeyUnsigned, "the DNSKEY RRset is not signed")
		return false
	}
	now := c.now()
	valid := false
	for _, sig := range sigs {
		err := dnssec.VerifyWithAnyKey(keyRRs, sig, keys, now)
		switch {
		case err == nil:
			valid = true
		case uint32(now.Unix()) > sig.Expiration:
			rep.add(Error, CodeSigExpired, "RRSIG over DNSKEY expired %s",
				time.Unix(int64(sig.Expiration), 0).UTC().Format("2006-01-02"))
		case uint32(now.Unix()) < sig.Inception:
			rep.add(Error, CodeSigNotYet, "RRSIG over DNSKEY not valid until %s",
				time.Unix(int64(sig.Inception), 0).UTC().Format("2006-01-02"))
		default:
			rep.add(Error, CodeSigInvalid, "RRSIG over DNSKEY does not verify: %v", err)
		}
	}
	return valid && len(dss) > 0 && dnssec.MatchAnyDS(domain, dss, keys)
}

// checkDenial probes a guaranteed-nonexistent name and checks that the zone
// offers NSEC or NSEC3 proofs.
func (c *Checker) checkDenial(ctx context.Context, rep *Report, domain string, nsHosts []string) {
	probe := "regsec-denial-probe." + domain
	for _, host := range nsHosts {
		resp, err := c.query(ctx, host, probe, dnswire.TypeA)
		if err != nil {
			continue
		}
		for _, rr := range resp.Authority {
			if rr.Type == dnswire.TypeNSEC || rr.Type == dnswire.TypeNSEC3 {
				return // denial material present
			}
		}
		rep.add(Warning, CodeNoDenial,
			"the zone is signed but offers no NSEC/NSEC3 proof for nonexistent names; negative answers cannot be authenticated")
		return
	}
}
