// Package registry models TLD registries: the organizations that maintain a
// TLD zone file, accredit registrars, accept delegations (NS) and DS
// records, and — for some ccTLDs — pay registrars financial incentives for
// correctly DNSSEC-signed domains.
//
// A Registry owns an authoritative, DNSSEC-signed TLD zone served through
// package dnsserver. Every state change a registrar makes (registration,
// nameserver change, DS upload) is reflected in the zone immediately, with
// the affected DS RRset re-signed incrementally, so the scanning and
// validation layers observe registry state strictly through DNS — exactly
// as OpenINTEL does in the paper.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"securepki.org/registrarsec/internal/dnssec"
	"securepki.org/registrarsec/internal/dnsserver"
	"securepki.org/registrarsec/internal/exchange"
	"securepki.org/registrarsec/internal/dnswire"
	"securepki.org/registrarsec/internal/simtime"
	"securepki.org/registrarsec/internal/zone"
)

// Errors returned by registry operations.
var (
	ErrNotAccredited    = errors.New("registry: registrar is not accredited for this TLD")
	ErrAlreadyExists    = errors.New("registry: domain is already registered")
	ErrNoSuchDomain     = errors.New("registry: domain is not registered")
	ErrWrongRegistrar   = errors.New("registry: domain is managed by another registrar")
	ErrOutsideTLD       = errors.New("registry: domain does not belong to this TLD")
	ErrNoDNSSEC         = errors.New("registry: registry does not accept DS records")
	ErrEmptyNameservers = errors.New("registry: at least one nameserver is required")
)

// Incentive is a ccTLD-style financial incentive program (section 6.3):
// a yearly discount per correctly signed domain, with an audit rule that
// suspends the discount for registrars failing validation too often
// (".nl registrars should not fail validations more than 14 times in six
// months").
type Incentive struct {
	// DiscountPerYear is the per-domain yearly discount (e.g. €0.28 for
	// .nl, 10 SEK for .se).
	DiscountPerYear float64
	// MaxFailures within WindowDays suspends a registrar's discount.
	MaxFailures int
	WindowDays  int
}

// Registration is one domain's entry in the registry database.
type Registration struct {
	Domain      string
	RegistrarID string
	NS          []string
	DS          []*dnswire.DS
	Created     simtime.Day
	Expires     simtime.Day
}

// clone returns a defensive copy.
func (r *Registration) clone() *Registration {
	c := *r
	c.NS = append([]string(nil), r.NS...)
	c.DS = append([]*dnswire.DS(nil), r.DS...)
	return &c
}

// Config configures a Registry.
type Config struct {
	// TLD is the zone this registry operates ("com", "nl", ...).
	TLD string
	// NSHost is the hostname of the TLD's authoritative server.
	NSHost string
	// Algorithm signs the TLD zone (default Ed25519 for speed at scale).
	Algorithm dnswire.Algorithm
	// AcceptsDS is true for DNSSEC-enabled registries (all five studied
	// TLDs accept DS records).
	AcceptsDS bool
	// SupportsCDS enables RFC 7344/8078 automated DS maintenance — at the
	// time of the paper only .cz had deployed this.
	SupportsCDS bool
	// Incentive enables a financial incentive program (nil for none).
	Incentive *Incentive
	// Clock supplies the current simulation day.
	Clock func() simtime.Day
	// RegistrationYears is the registration period (default 1 year).
	RegistrationYears int
}

// Registry is one TLD registry.
type Registry struct {
	cfg    Config
	signer *zone.Signer

	mu         sync.RWMutex
	zone       *zone.Zone
	regs       map[string]*Registration
	accredited map[string]bool
	// failures tracks validation-failure days per registrar for the
	// incentive audit window.
	failures map[string][]simtime.Day
	// discounts accrues paid incentives per registrar.
	discounts map[string]float64

	srv *dnsserver.Authoritative
}

// New builds a registry with a freshly signed TLD zone and registers its
// authoritative server on net.
func New(cfg Config, net *dnsserver.MemNet) (*Registry, error) {
	if cfg.Algorithm == 0 {
		cfg.Algorithm = dnswire.AlgED25519
	}
	if cfg.Clock == nil {
		cfg.Clock = func() simtime.Day { return simtime.GTLDStart }
	}
	if cfg.RegistrationYears == 0 {
		cfg.RegistrationYears = 1
	}
	tld := dnswire.CanonicalName(cfg.TLD)
	cfg.TLD = tld
	z := zone.New(tld)
	z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.SOA{
		MName: cfg.NSHost, RName: "hostmaster." + cfg.NSHost,
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 3600,
	}))
	z.MustAdd(dnswire.NewRR(tld, 86400, &dnswire.NS{Host: cfg.NSHost}))
	signer, err := zone.NewSigner(cfg.Algorithm, cfg.Clock().Time())
	if err != nil {
		return nil, err
	}
	// A registry's signatures must outlive the whole measurement window.
	signer.Expiration = simtime.End.Time().AddDate(1, 0, 0)
	if err := signer.Sign(z); err != nil {
		return nil, err
	}
	r := &Registry{
		cfg:        cfg,
		signer:     signer,
		zone:       z,
		regs:       make(map[string]*Registration),
		accredited: make(map[string]bool),
		failures:   make(map[string][]simtime.Day),
		discounts:  make(map[string]float64),
		srv:        dnsserver.NewAuthoritative(),
	}
	r.srv.AddZone(z)
	if net != nil {
		net.Register(cfg.NSHost, r.srv)
	}
	return r, nil
}

// TLD returns the TLD this registry operates.
func (r *Registry) TLD() string { return r.cfg.TLD }

// NSHost returns the registry nameserver hostname.
func (r *Registry) NSHost() string { return r.cfg.NSHost }

// Zone exposes the live TLD zone (for scan harnesses and wiring the root).
func (r *Registry) Zone() *zone.Zone { return r.zone }

// Server exposes the registry's authoritative server.
func (r *Registry) Server() *dnsserver.Authoritative { return r.srv }

// DSRecords returns the DS set the root should publish for this TLD.
func (r *Registry) DSRecords() ([]*dnswire.DS, error) {
	return r.signer.DSRecords(r.cfg.TLD, dnswire.DigestSHA256)
}

// SupportsCDS reports whether the registry polls CDS/CDNSKEY records.
func (r *Registry) SupportsCDS() bool { return r.cfg.SupportsCDS }

// Accredit grants a registrar write access to this registry.
func (r *Registry) Accredit(registrarID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accredited[registrarID] = true
}

// IsAccredited reports whether a registrar can write to this registry.
func (r *Registry) IsAccredited(registrarID string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.accredited[registrarID]
}

// checkDomain validates bailiwick and accreditation.
func (r *Registry) checkDomain(registrarID, domain string) (string, error) {
	domain = dnswire.CanonicalName(domain)
	parent, _ := dnswire.Parent(domain)
	if parent != r.cfg.TLD || dnswire.CountLabels(domain) != dnswire.CountLabels(r.cfg.TLD)+1 {
		return "", fmt.Errorf("%w: %s not in .%s", ErrOutsideTLD, domain, r.cfg.TLD)
	}
	if !r.accredited[registrarID] {
		return "", fmt.Errorf("%w: %s", ErrNotAccredited, registrarID)
	}
	return domain, nil
}

// Register creates a new registration with its delegation.
func (r *Registry) Register(registrarID, domain string, ns []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	domain, err := r.checkDomain(registrarID, domain)
	if err != nil {
		return err
	}
	if len(ns) == 0 {
		return ErrEmptyNameservers
	}
	if _, ok := r.regs[domain]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, domain)
	}
	now := r.cfg.Clock()
	r.regs[domain] = &Registration{
		Domain:      domain,
		RegistrarID: registrarID,
		NS:          normalizeHosts(ns),
		Created:     now,
		Expires:     now + simtime.Day(365*r.cfg.RegistrationYears),
	}
	return r.syncDelegationLocked(domain)
}

// Drop removes a registration entirely.
func (r *Registry) Drop(registrarID, domain string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	domain, err := r.ownedDomain(registrarID, domain)
	if err != nil {
		return err
	}
	delete(r.regs, domain)
	return r.syncDelegationLocked(domain)
}

// SetNS replaces a domain's delegation.
func (r *Registry) SetNS(registrarID, domain string, ns []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	domain, err := r.ownedDomain(registrarID, domain)
	if err != nil {
		return err
	}
	if len(ns) == 0 {
		return ErrEmptyNameservers
	}
	r.regs[domain].NS = normalizeHosts(ns)
	return r.syncDelegationLocked(domain)
}

// SetDS replaces a domain's DS RRset. The registry stores whatever the
// registrar sends — the paper shows that validation, when it happens at
// all, happens at the registrar.
func (r *Registry) SetDS(registrarID, domain string, ds []*dnswire.DS) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.cfg.AcceptsDS {
		return ErrNoDNSSEC
	}
	domain, err := r.ownedDomain(registrarID, domain)
	if err != nil {
		return err
	}
	r.regs[domain].DS = append([]*dnswire.DS(nil), ds...)
	return r.syncDelegationLocked(domain)
}

// DeleteDS removes a domain's DS RRset.
func (r *Registry) DeleteDS(registrarID, domain string) error {
	return r.SetDS(registrarID, domain, nil)
}

// Renew extends a registration by the registry's period. Resellers that
// switch partner registrars migrate domains at renewal (section 6.3), so
// renewal is an explicit event.
func (r *Registry) Renew(registrarID, domain string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	domain, err := r.ownedDomain(registrarID, domain)
	if err != nil {
		return err
	}
	r.regs[domain].Expires += simtime.Day(365 * r.cfg.RegistrationYears)
	return nil
}

// TransferRegistrar reassigns management of a domain to another accredited
// registrar (used by resellers switching partners).
func (r *Registry) TransferRegistrar(fromID, toID, domain string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	domain, err := r.ownedDomain(fromID, domain)
	if err != nil {
		return err
	}
	if !r.accredited[toID] {
		return fmt.Errorf("%w: %s", ErrNotAccredited, toID)
	}
	r.regs[domain].RegistrarID = toID
	return nil
}

// ownedDomain checks bailiwick, accreditation and ownership. Callers hold
// the lock.
func (r *Registry) ownedDomain(registrarID, domain string) (string, error) {
	domain, err := r.checkDomain(registrarID, domain)
	if err != nil {
		return "", err
	}
	reg, ok := r.regs[domain]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSuchDomain, domain)
	}
	if reg.RegistrarID != registrarID {
		return "", fmt.Errorf("%w: %s is managed by %s", ErrWrongRegistrar, domain, reg.RegistrarID)
	}
	return domain, nil
}

// Registration returns a copy of a domain's registry entry.
func (r *Registry) Registration(domain string) (*Registration, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.regs[dnswire.CanonicalName(domain)]
	if !ok {
		return nil, false
	}
	return reg.clone(), true
}

// Domains returns all registered domain names, sorted.
func (r *Registry) Domains() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.regs))
	for d := range r.regs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DomainCount returns the number of registrations.
func (r *Registry) DomainCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.regs)
}

// syncDelegationLocked rewrites the zone records for one domain from its
// registration and re-signs the DS RRset only. Callers hold the lock.
func (r *Registry) syncDelegationLocked(domain string) error {
	r.zone.Remove(domain, dnswire.TypeNS)
	r.zone.Remove(domain, dnswire.TypeDS)
	r.zone.RemoveSigs(domain, dnswire.TypeDS)
	reg, ok := r.regs[domain]
	if !ok {
		return nil
	}
	for _, host := range reg.NS {
		if err := r.zone.Add(dnswire.NewRR(domain, 86400, &dnswire.NS{Host: host})); err != nil {
			return err
		}
	}
	for _, ds := range reg.DS {
		d := *ds
		d.Digest = append([]byte(nil), ds.Digest...)
		if err := r.zone.Add(dnswire.NewRR(domain, 86400, &d)); err != nil {
			return err
		}
	}
	if len(reg.DS) > 0 {
		if err := r.signer.SignSet(r.zone, domain, dnswire.TypeDS); err != nil {
			return err
		}
	}
	r.zone.BumpSerial()
	return nil
}

// normalizeHosts canonicalizes and deduplicates NS hostnames.
func normalizeHosts(hosts []string) []string {
	seen := make(map[string]bool, len(hosts))
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		c := dnswire.CanonicalName(h)
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// HealthReport summarizes one incentive audit sweep.
type HealthReport struct {
	Day simtime.Day
	// Checked is the number of DS-bearing domains audited.
	Checked int
	// Valid counts domains whose chain validated.
	Valid int
	// FailuresByRegistrar counts broken domains per responsible registrar.
	FailuresByRegistrar map[string]int
	// DiscountsAccrued is the per-registrar discount granted for this day.
	DiscountsAccrued map[string]float64
}

// HealthCheck audits every DS-bearing domain by querying its nameservers
// for DNSKEYs over ex and checking the DS linkage and DNSKEY RRset
// signature — the daily compliance test .nl and .se run (section 6.3).
// Correctly signed domains accrue the pro-rated daily discount for their
// registrar unless the registrar is over the failure threshold.
func (r *Registry) HealthCheck(ctx context.Context, ex exchange.Exchanger, day simtime.Day) (*HealthReport, error) {
	if r.cfg.Incentive == nil {
		return nil, errors.New("registry: no incentive program configured")
	}
	r.mu.RLock()
	type item struct {
		domain      string
		registrarID string
		ns          []string
		ds          []*dnswire.DS
	}
	var items []item
	for d, reg := range r.regs {
		if len(reg.DS) > 0 {
			items = append(items, item{d, reg.RegistrarID, append([]string(nil), reg.NS...), append([]*dnswire.DS(nil), reg.DS...)})
		}
	}
	r.mu.RUnlock()

	report := &HealthReport{
		Day:                 day,
		FailuresByRegistrar: make(map[string]int),
		DiscountsAccrued:    make(map[string]float64),
	}
	var qid uint16
	perRegistrarValid := make(map[string]int)
	for _, it := range items {
		report.Checked++
		qid++
		if r.domainHealthy(ctx, ex, qid, it.domain, it.ns, it.ds, day) {
			report.Valid++
			perRegistrarValid[it.registrarID]++
		} else {
			report.FailuresByRegistrar[it.registrarID]++
			r.recordFailure(it.registrarID, day)
		}
	}
	// Grant the pro-rated daily discount for valid domains of registrars
	// under the audit threshold.
	daily := r.cfg.Incentive.DiscountPerYear / 365
	r.mu.Lock()
	for regID, n := range perRegistrarValid {
		if r.overThresholdLocked(regID, day) {
			continue
		}
		amount := float64(n) * daily
		r.discounts[regID] += amount
		report.DiscountsAccrued[regID] = amount
	}
	r.mu.Unlock()
	return report, nil
}

// domainHealthy checks one domain's DS↔DNSKEY linkage via live queries.
func (r *Registry) domainHealthy(ctx context.Context, ex exchange.Exchanger, qid uint16, domain string, ns []string, ds []*dnswire.DS, day simtime.Day) bool {
	q := dnswire.NewQuery(qid, domain, dnswire.TypeDNSKEY)
	q.SetEDNS(4096, true)
	var resp *dnswire.Message
	var err error
	for _, host := range ns {
		resp, err = ex.Exchange(ctx, host, q)
		if err == nil && resp.RCode == dnswire.RCodeSuccess {
			break
		}
	}
	if err != nil || resp == nil || resp.RCode != dnswire.RCodeSuccess {
		return false
	}
	var keys []*dnswire.DNSKEY
	var keyRRs []*dnswire.RR
	var sigs []*dnswire.RRSIG
	for _, rr := range resp.Answers {
		switch d := rr.Data.(type) {
		case *dnswire.DNSKEY:
			keys = append(keys, d)
			keyRRs = append(keyRRs, rr)
		case *dnswire.RRSIG:
			if d.TypeCovered == dnswire.TypeDNSKEY {
				sigs = append(sigs, d)
			}
		}
	}
	if len(keys) == 0 || !dnssec.MatchAnyDS(domain, ds, keys) {
		return false
	}
	for _, sig := range sigs {
		if dnssec.VerifyWithAnyKey(keyRRs, sig, keys, day.Time()) == nil {
			return true
		}
	}
	return false
}

func (r *Registry) recordFailure(registrarID string, day simtime.Day) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures[registrarID] = append(r.failures[registrarID], day)
}

func (r *Registry) overThreshold(registrarID string, day simtime.Day) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.overThresholdLocked(registrarID, day)
}

func (r *Registry) overThresholdLocked(registrarID string, day simtime.Day) bool {
	inc := r.cfg.Incentive
	if inc == nil || inc.MaxFailures <= 0 {
		return false
	}
	n := 0
	for _, d := range r.failures[registrarID] {
		if day-d <= simtime.Day(inc.WindowDays) {
			n++
		}
	}
	return n > inc.MaxFailures
}

// Discounts returns the accrued incentive payouts per registrar.
func (r *Registry) Discounts() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.discounts))
	for k, v := range r.discounts {
		out[k] = v
	}
	return out
}
